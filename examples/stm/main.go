// Software transactional memory on stock CAS — the paper's Section 5
// claim made concrete. A bank of accounts is updated by concurrent
// multi-word transactions (transfers and an audit that snapshots all
// accounts atomically); the total balance is conserved throughout, and a
// DCAS (the primitive Greenwald & Cheriton wanted in hardware) runs in
// software.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	llsc "repro"
)

const (
	accounts       = 16
	workers        = 8
	transfersEach  = 20000
	initialBalance = 1000
)

func main() {
	mem, err := llsc.NewMemory(accounts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stm:", err)
		os.Exit(1)
	}
	for a := 0; a < accounts; a++ {
		if err := mem.Write(a, initialBalance); err != nil {
			fmt.Fprintln(os.Stderr, "stm:", err)
			os.Exit(1)
		}
	}

	// A DCAS, as discussed in the paper's Section 5.
	ok, err := mem.DCAS(0, 1, initialBalance, initialBalance, initialBalance-100, initialBalance+100)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stm:", err)
		os.Exit(1)
	}
	fmt.Printf("software DCAS moved 100 units: committed=%v\n", ok)

	allAddrs := make([]int, accounts)
	for i := range allAddrs {
		allAddrs[i] = i
	}

	var wg sync.WaitGroup
	audits := make([]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfersEach; i++ {
				if i%1000 == 999 {
					// Audit transaction: snapshot every account atomically.
					snap, err := mem.Atomically(allAddrs, func(cur, next []uint64) {
						copy(next, cur) // read-only
					})
					if err != nil {
						fmt.Fprintln(os.Stderr, "audit:", err)
						os.Exit(1)
					}
					var total uint64
					for _, b := range snap {
						total += b
					}
					if total != accounts*initialBalance {
						fmt.Fprintf(os.Stderr, "audit saw torn total %d!\n", total)
						os.Exit(1)
					}
					audits[w]++
					continue
				}
				from, to := rng.Intn(accounts), rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(50) + 1)
				_, err := mem.Atomically([]int{from, to}, func(cur, next []uint64) {
					next[0], next[1] = cur[0], cur[1]
					if cur[0] >= amount {
						next[0] -= amount
						next[1] += amount
					}
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "transfer:", err)
					os.Exit(1)
				}
			}
		}(w)
	}
	wg.Wait()

	var total, auditTotal uint64
	for a := 0; a < accounts; a++ {
		v, err := mem.Read(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stm:", err)
			os.Exit(1)
		}
		total += v
	}
	for _, n := range audits {
		auditTotal += n
	}
	fmt.Printf("%d workers ran %d transactions over %d accounts\n",
		workers, workers*transfersEach, accounts)
	fmt.Printf("%d full-bank audit snapshots all saw a consistent total\n", auditTotal)
	fmt.Printf("final total balance: %d (expected %d) — conserved\n", total, accounts*initialBalance)
}
