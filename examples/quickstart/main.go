// Quickstart: the paper's Figure 4 primitive — LL/VL/SC built from CAS —
// running on real hardware atomics, including the Figure 1(a) pattern
// (two concurrent LL-SC sequences with an interleaved VL) that raw
// hardware LL/SC cannot express.
package main

import (
	"fmt"
	"sync"

	llsc "repro"
)

func main() {
	// An LL/SC variable. The layout choice is the paper's tag-size/data-size
	// trade-off: here a 32-bit tag (wraps after ~1.2h of continuous 1M/s
	// hammering on one LL-SC sequence — far beyond any real sequence)
	// leaves 32 bits of data. The paper's default is 48/16.
	v := llsc.MustNewVar(llsc.MustLayout(32), 0)

	// The basic read-modify-write loop: LL, compute, SC; retry if another
	// process's SC intervened. No ABA hazard, no version counters.
	const workers = 8
	const increments = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				for {
					val, keep := v.LL()
					if v.SC(keep, val+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("counter after %d concurrent increments: %d\n", workers*increments, v.Read())

	// Figure 1(a): interleaved LL-SC sequences on two variables, with a
	// validate in the middle. The paper's Section 1 explains why the
	// R4000/Alpha/PowerPC cannot run this directly — one reservation per
	// processor — and this implementation can.
	x := llsc.MustNewVar(llsc.DefaultLayout, 1)
	y := llsc.MustNewVar(llsc.DefaultLayout, 2)

	xv, kx := x.LL() // LL(X)
	yv, ky := y.LL() // LL(Y)
	fmt.Printf("figure 1(a): read x=%d y=%d, VL(x)=%v\n", xv, yv, x.VL(kx))
	fmt.Printf("figure 1(a): SC(y,20)=%v SC(x,10)=%v\n", y.SC(ky, 20), x.SC(kx, 10))
	fmt.Printf("figure 1(a): final x=%d y=%d\n", x.Read(), y.Read())

	// VL lets a reader validate a snapshot with no write traffic.
	val, keep := v.LL()
	if v.VL(keep) {
		fmt.Printf("validated read: %d\n", val)
	}

	// The tag trade-off, quantified (the paper's Section 1 example).
	fmt.Printf("48-bit tag at 1e6 updates/s wraps after %.1f years\n",
		llsc.TimeToWrap(48, 1e6).Hours()/24/365)
}
