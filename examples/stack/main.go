// A lock-free Treiber stack built on the paper's LL/SC primitive,
// demonstrating the headline simplification over CAS: no ABA problem, so
// popped nodes recycle immediately with no version counters or hazard
// pointers. A producer/consumer workload checks that no token is ever
// lost or duplicated even as the small node pool churns.
package main

import (
	"fmt"
	"os"
	"sync"

	llsc "repro"
)

func main() {
	const producers = 4
	const consumers = 4
	const perProducer = 50000

	// Capacity far below the total token count: nodes recycle constantly,
	// which is exactly the regime where CAS-based stacks suffer ABA.
	s, err := llsc.NewStack(256)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stack:", err)
		os.Exit(1)
	}

	var prodWG, consWG sync.WaitGroup
	seen := make([]map[uint64]bool, consumers)

	for c := 0; c < consumers; c++ {
		seen[c] = make(map[uint64]bool)
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			need := producers * perProducer / consumers
			for len(seen[c]) < need {
				if v, ok := s.Pop(); ok {
					if seen[c][v] {
						fmt.Fprintf(os.Stderr, "token %d seen twice by consumer %d!\n", v, c)
						os.Exit(1)
					}
					seen[c][v] = true
				}
			}
		}(c)
	}

	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				token := uint64(p*perProducer + i + 1)
				for s.Push(token) != nil {
					// Pool momentarily full; consumers are draining.
				}
			}
		}(p)
	}
	prodWG.Wait()
	consWG.Wait()

	total := 0
	union := make(map[uint64]bool)
	for c := range seen {
		total += len(seen[c])
		for v := range seen[c] {
			if union[v] {
				fmt.Fprintf(os.Stderr, "token %d popped by two consumers!\n", v)
				os.Exit(1)
			}
			union[v] = true
		}
	}
	fmt.Printf("pushed %d tokens through a %d-node pool across %d producers/%d consumers\n",
		producers*perProducer, s.Capacity(), producers, consumers)
	fmt.Printf("popped %d distinct tokens — no loss, no duplication, no ABA\n", total)
}
