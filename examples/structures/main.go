// A tour of the remaining non-blocking containers built on the paper's
// primitives: the hash map (claim-once LL/SC buckets), the MPMC ring
// buffer (LL/SC cursors), the deque (lifted through the universal
// construction), and atomic multi-variable snapshots — the canonical
// application of the VL instruction the paper insists implementations
// must provide.
package main

import (
	"fmt"
	"os"
	"sync"

	llsc "repro"
)

func main() {
	hashMapDemo()
	ringDemo()
	dequeDemo()
	snapshotDemo()
}

func hashMapDemo() {
	fmt.Println("== lock-free hash map ==")
	m, err := llsc.NewHashMap(1024)
	must(err)
	const workers = 4
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perWorker)
			for i := uint64(0); i < perWorker; i++ {
				if err := m.Put(base+i, (base+i)*3); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	bad := 0
	m.Range(func(k, v uint64) bool {
		if v != k*3 {
			bad++
		}
		return true
	})
	fmt.Printf("  %d concurrent inserts, Len=%d, corrupted=%d\n\n", workers*perWorker, m.Len(), bad)
}

func ringDemo() {
	fmt.Println("== MPMC ring buffer ==")
	r, err := llsc.NewRing(64)
	must(err)
	const items = 10000
	var wg sync.WaitGroup
	var sum uint64
	var mu sync.Mutex
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local uint64
			count := 0
			for count < items/2 {
				if v, ok := r.Dequeue(); ok {
					local += v
					count++
				}
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	for i := uint64(1); i <= items; i++ {
		for r.Enqueue(i) != nil {
		}
	}
	wg.Wait()
	fmt.Printf("  streamed %d items; checksum %d (expected %d)\n\n", items, sum, uint64(items)*(items+1)/2)
}

func dequeDemo() {
	fmt.Println("== deque via the universal construction ==")
	d, err := llsc.NewDeque(2, 16)
	must(err)
	p0, err := d.Proc(0)
	must(err)
	// A tiny work-stealing sketch: owner pushes/pops at the back,
	// a thief steals from the front.
	for i := uint64(1); i <= 10; i++ {
		d.PushBack(p0, i)
	}
	p1, err := d.Proc(1)
	must(err)
	stolen := 0
	for {
		if _, ok := d.PopFront(p1); !ok {
			break
		}
		stolen++
		if stolen == 4 {
			break
		}
	}
	owned := 0
	for {
		if _, ok := d.PopBack(p0); !ok {
			break
		}
		owned++
	}
	fmt.Printf("  10 tasks: thief stole %d from the front, owner drained %d from the back\n\n", stolen, owned)
}

func snapshotDemo() {
	fmt.Println("== atomic multi-variable snapshot (VL double-collect) ==")
	vars := make([]*llsc.Var, 4)
	for i := range vars {
		vars[i] = llsc.MustNewVar(llsc.MustLayout(32), 0)
	}
	s, err := llsc.NewSnapshot(vars)
	must(err)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: keeps all variables equal, one SC at a time
		defer wg.Done()
		for round := uint64(1); ; round++ {
			for _, v := range vars {
				select {
				case <-stop:
					return
				default:
				}
				for {
					_, k := v.LL()
					if v.SC(k, round) {
						break
					}
				}
			}
		}
	}()

	dst := make([]uint64, len(vars))
	collects := 0
	tornWavefronts := 0
	for i := 0; i < 200000; i++ {
		s.Collect(dst)
		collects++
		// Invariant of the writer's wavefront: v0 ≥ v1 ≥ v2 ≥ v3 ≥ v0-1.
		okWave := dst[0] >= dst[1] && dst[1] >= dst[2] && dst[2] >= dst[3] && dst[3]+1 >= dst[0]
		if !okWave {
			tornWavefronts++
		}
	}
	close(stop)
	wg.Wait()
	fmt.Printf("  %d snapshots under continuous writes, %d torn (must be 0)\n", collects, tornWavefronts)
	if tornWavefronts != 0 {
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "structures:", err)
		os.Exit(1)
	}
}
