// A lock-free multi-producer/multi-consumer FIFO (Michael–Scott shape)
// whose head, tail, and per-node links are all LL/SC variables. The demo
// runs a pipeline: producers enqueue work items, consumers dequeue and
// verify per-producer FIFO order.
package main

import (
	"fmt"
	"os"
	"sync"

	llsc "repro"
)

func main() {
	const producers = 4
	const consumers = 2
	const perProducer = 50000

	q, err := llsc.NewQueue(512)
	if err != nil {
		fmt.Fprintln(os.Stderr, "queue:", err)
		os.Exit(1)
	}

	var prodWG, consWG sync.WaitGroup
	var mu sync.Mutex
	lastSeq := make([]map[int]uint64, consumers)
	counts := make([]int, consumers)

	for c := 0; c < consumers; c++ {
		lastSeq[c] = make(map[int]uint64)
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			need := producers * perProducer / consumers
			for counts[c] < need {
				v, ok := q.Dequeue()
				if !ok {
					continue
				}
				producer := int(v >> 32)
				seq := v & 0xFFFFFFFF
				if last, ok := lastSeq[c][producer]; ok && seq <= last {
					fmt.Fprintf(os.Stderr, "FIFO violated: consumer %d saw producer %d seq %d after %d\n",
						c, producer, seq, last)
					os.Exit(1)
				}
				lastSeq[c][producer] = seq
				counts[c]++
			}
		}(c)
	}

	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				item := uint64(p)<<32 | uint64(i)
				for q.Enqueue(item) != nil {
					// Bounded pool momentarily full.
				}
			}
		}(p)
	}
	prodWG.Wait()
	consWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Printf("streamed %d items through a %d-slot lock-free FIFO\n", total, q.Capacity())
	fmt.Println("per-producer FIFO order verified at every consumer")
}
