// Figure 7 in action: bounded tags that can never wrap incorrectly. The
// demo first shows the failure the unbounded-tag algorithms risk — a
// stale LL-SC sequence held open across a full tag wrap is silently
// fooled — and then runs the identical adversarial workload against the
// bounded-tag implementation, whose announce/feedback machinery makes the
// error impossible with tags of comparable (tiny) size.
package main

import (
	"fmt"
	"os"

	llsc "repro"
)

func main() {
	// --- Part 1: the hazard, demonstrated with a deliberately tiny tag.
	// 3-bit tags wrap after 8 SCs; value 7 is restored each time.
	small := llsc.MustNewVar(llsc.MustLayout(3), 7)
	_, stale := small.LL()
	for i := 0; i < 8; i++ {
		_, k := small.LL()
		if !small.SC(k, 7) {
			fmt.Fprintln(os.Stderr, "setup SC failed")
			os.Exit(1)
		}
	}
	fooled := small.SC(stale, 99)
	fmt.Printf("figure 4 with a 3-bit tag: stale SC after 8 intervening SCs erroneously succeeded: %v\n", fooled)
	fmt.Println("  (with the default 48-bit tag this takes 2^48 modifications ≈ 9 years at 1M/s)")

	// --- Part 2: Figure 7 with a comparably tiny tag space (2Nk+1 = 5
	// tags for N=2, k=1) survives the same attack indefinitely.
	family, err := llsc.NewBoundedFamily(llsc.BoundedConfig{Procs: 2, K: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "boundedtag:", err)
		os.Exit(1)
	}
	fmt.Printf("\nfigure 7 family: N=2, k=1 → %d-bit tags (5 values), %d-bit data field\n",
		family.TagBits(), 64-int(family.TagBits())-7-1)

	v, err := family.NewVar(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boundedtag:", err)
		os.Exit(1)
	}
	p0, _ := family.Proc(0)
	p1, _ := family.Proc(1)

	// Seed a word written by p1 so the stale keep is maximally adversarial
	// (its pid field matches the attacker's).
	_, k, err := v.LL(p1)
	must(err)
	if !v.SC(p1, k, 7) {
		fmt.Fprintln(os.Stderr, "seed SC failed")
		os.Exit(1)
	}

	_, staleKeep, err := v.LL(p0)
	must(err)

	const attempts = 1_000_000
	errors := 0
	for i := 0; i < attempts; i++ {
		_, k, err := v.LL(p1)
		must(err)
		if !v.SC(p1, k, 7) { // restore the same value every time
			fmt.Fprintln(os.Stderr, "attacker SC failed unexpectedly")
			os.Exit(1)
		}
		if v.VL(p0, staleKeep) {
			errors++
		}
	}
	if v.SC(p0, staleKeep, 99) {
		errors++
	}
	fmt.Printf("after %d value-restoring SCs: %d erroneous validations (must be 0)\n", attempts, errors)
	fmt.Println("the announce array + tag queue guarantee no (tag,cnt,pid) triple is reused prematurely")

	// --- Part 3: CL — aborting a sequence returns its announce slot.
	_, k1, err := v.LL(p0)
	must(err)
	v.CL(p0, k1) // abandon the sequence
	fmt.Printf("\nCL returned the slot: p0 has %d/%d slots free\n", p0.FreeSlots(), family.K())

	if errors != 0 {
		os.Exit(1)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "boundedtag:", err)
		os.Exit(1)
	}
}
