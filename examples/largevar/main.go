// Figure 6 in action: atomic W-word variables. A 256-bit configuration
// record (8 segments × 32 bits) is updated atomically by writers and
// snapshot by readers, who must never observe a torn mix of two
// configurations — even when a writer stalls mid-update, because every
// process helps complete in-flight stores.
package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	llsc "repro"
)

func main() {
	const readers = 4
	const writers = 2
	const updates = 20000
	const w = 8 // 8 segments × 32 data bits = 256-bit values

	family, err := llsc.NewLargeFamily(llsc.LargeConfig{
		Procs:   readers + writers,
		Words:   w,
		TagBits: 32,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "largevar:", err)
		os.Exit(1)
	}
	fmt.Printf("family: N=%d processes, W=%d words, overhead %d words total (Θ(NW), shared by all variables)\n",
		family.Procs(), family.Words(), family.OverheadWords())

	// A "configuration" is 8 copies of one generation number: any torn
	// read is instantly visible as a mixed vector.
	config, err := family.NewVar(make([]uint64, w))
	if err != nil {
		fmt.Fprintln(os.Stderr, "largevar:", err)
		os.Exit(1)
	}

	var torn atomic.Uint64
	var snapshots atomic.Uint64
	var wg sync.WaitGroup
	done := make(chan struct{})

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := family.Proc(id)
			if err != nil {
				panic(err)
			}
			dst := make([]uint64, w)
			for {
				select {
				case <-done:
					return
				default:
				}
				config.Read(p, dst)
				for i := 1; i < w; i++ {
					if dst[i] != dst[0] {
						torn.Add(1)
					}
				}
				snapshots.Add(1)
			}
		}(r)
	}

	var writerWG sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		writerWG.Add(1)
		go func(id int) {
			defer writerWG.Done()
			p, err := family.Proc(readers + id)
			if err != nil {
				panic(err)
			}
			cur := make([]uint64, w)
			next := make([]uint64, w)
			for i := 0; i < updates; i++ {
				for {
					keep, res := config.WLL(p, cur)
					if res != llsc.Succ {
						// WLL tells us a concurrent SC doomed this attempt
						// — skip the wasted computation (the paper's
						// stated purpose for weakening LL).
						continue
					}
					gen := (cur[0] + 1) & family.MaxSegmentValue()
					for j := range next {
						next[j] = gen
					}
					if config.SC(p, keep, next) {
						break
					}
				}
			}
		}(wr)
	}
	writerWG.Wait()
	close(done)
	wg.Wait()

	final := make([]uint64, w)
	p, _ := family.Proc(0)
	config.Read(p, final)
	fmt.Printf("%d writers completed %d atomic 256-bit updates\n", writers, writers*updates)
	fmt.Printf("%d reader snapshots, %d torn (must be 0)\n", snapshots.Load(), torn.Load())
	fmt.Printf("final generation: %d (expected %d)\n", final[0], writers*updates)
	if torn.Load() != 0 || final[0] != writers*updates {
		os.Exit(1)
	}
}
