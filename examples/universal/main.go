// The universal construction (paper refs [3,7]) on the Figure 6 W-word
// primitive: any sequential object whose state fits W segments becomes
// lock-free. Here a small order book — best bid, best ask, spread
// statistics, and a trade counter — is updated atomically by concurrent
// market participants, with invariants (bid < ask; counters consistent)
// that would tear under non-atomic updates.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"

	llsc "repro"
)

// State layout: [bestBid, bestAsk, trades, volume].
const (
	sBid = iota
	sAsk
	sTrades
	sVolume
	stateWords
)

func main() {
	const traders = 6
	const opsEach = 20000

	book, err := llsc.NewObject(llsc.ObjectConfig{Procs: traders, Words: stateWords, TagBits: 32},
		[]uint64{100, 110, 0, 0})
	if err != nil {
		fmt.Fprintln(os.Stderr, "universal:", err)
		os.Exit(1)
	}

	var wg sync.WaitGroup
	violations := 0
	var mu sync.Mutex
	for tr := 0; tr < traders; tr++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := book.Proc(id)
			if err != nil {
				panic(err)
			}
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < opsEach; i++ {
				move := uint64(rng.Intn(3))
				size := uint64(rng.Intn(9) + 1)
				observed := book.Apply(p, func(cur, next []uint64) {
					copy(next, cur)
					switch move {
					case 0: // tighten the bid (never crossing the ask)
						if cur[sBid]+1 < cur[sAsk] {
							next[sBid] = cur[sBid] + 1
						}
					case 1: // tighten the ask (never crossing the bid)
						if cur[sAsk] > cur[sBid]+1 {
							next[sAsk] = cur[sAsk] - 1
						}
					default: // trade at the spread: widen both, count it
						next[sBid] = cur[sBid] - min(cur[sBid], size)
						next[sAsk] = cur[sAsk] + size
						next[sTrades] = cur[sTrades] + 1
						next[sVolume] = cur[sVolume] + size
					}
				})
				if observed[sBid] >= observed[sAsk] {
					mu.Lock()
					violations++
					mu.Unlock()
				}
			}
		}(tr)
	}
	wg.Wait()

	p, _ := book.Proc(0)
	final := make([]uint64, stateWords)
	book.Read(p, final)
	fmt.Printf("%d traders issued %d atomic order-book operations\n", traders, traders*opsEach)
	fmt.Printf("final book: bid=%d ask=%d trades=%d volume=%d\n",
		final[sBid], final[sAsk], final[sTrades], final[sVolume])
	fmt.Printf("bid<ask invariant violations observed: %d (must be 0)\n", violations)
	if final[sBid] >= final[sAsk] || violations != 0 {
		os.Exit(1)
	}
	fmt.Println("every operation saw and produced a consistent 4-word state — lock-free, no locks anywhere")
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
