// A tour of the simulated RLL/RSC multiprocessor (the paper's hardware
// model: MIPS R4000 / Alpha / PowerPC). Shows the four restrictions of
// the restricted instructions, why naive code breaks on them, and how the
// paper's Figures 3 and 5 run correctly on top — even under heavy
// injected spurious failure rates.
package main

import (
	"fmt"
	"os"
	"sync"

	llsc "repro"
)

func main() {
	fmt.Println("== the restrictions of real hardware LL/SC (Section 1) ==")

	m := llsc.MustNewMachine(llsc.MachineConfig{Procs: 2, Strict: true, Seed: 1})
	p0, p1 := m.Proc(0), m.Proc(1)
	x := m.NewWord(10)
	y := m.NewWord(20)

	// Restriction: one reservation per processor (the R4000's LLBit).
	p0.RLL(x)
	p0.RLL(y) // displaces the reservation on x
	//llsc:allow reservedpair(deliberate demo of the one-reservation-per-processor rule)
	fmt.Printf("RLL(x); RLL(y); RSC(x) succeeds? %v  (one LLBit per processor)\n", p0.RSC(x, 11))

	// Restriction: no memory access between RLL and RSC (strict mode).
	p0.RLL(x)
	//llsc:allow strictaccess(deliberate demo of the R4000 intervening-access rule)
	p0.Load(y) // an intervening load clears the reservation
	fmt.Printf("RLL(x); Load(y); RSC(x) succeeds? %v  (intervening access clears LLBit)\n", p0.RSC(x, 11))

	// Writes of the SAME value still invalidate (cache-line semantics).
	p0.RLL(x)
	p1.Store(x, 10) // same value!
	fmt.Printf("RLL(x); other proc stores same value; RSC(x) succeeds? %v  (no ABA in hardware)\n", p0.RSC(x, 11))

	fmt.Println("\n== Figure 3: a full CAS built from these restricted instructions ==")
	noisy := llsc.MustNewMachine(llsc.MachineConfig{Procs: 4, SpuriousFailProb: 0.3, Seed: 42})
	v, err := llsc.NewCASVar(noisy, llsc.MustLayout(32), 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	const procs = 4
	const rounds = 25000
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(p *llsc.MachineProc) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					old := v.Read(p)
					if v.CompareAndSwap(p, old, old+1) {
						break
					}
				}
			}
		}(noisy.Proc(i))
	}
	wg.Wait()
	st := noisy.Stats()
	fmt.Printf("4 procs × %d CAS increments at 30%% spurious-failure rate: counter = %d (exact)\n",
		rounds, v.Read(noisy.Proc(0)))
	fmt.Printf("machine stats: %d RSC successes, %d spurious failures, %d real failures\n",
		st.RSCSuccess, st.RSCSpurious, st.RSCRealFail)

	fmt.Println("\n== Figure 5: full LL/VL/SC on the same machine — concurrent sequences restored ==")
	m2 := llsc.MustNewMachine(llsc.MachineConfig{Procs: 1, SpuriousFailProb: 0.2, Seed: 7})
	a, err := llsc.NewRVar(m2, llsc.MustLayout(48), 1)
	must(err)
	b, err := llsc.NewRVar(m2, llsc.MustLayout(48), 2)
	must(err)
	p := m2.Proc(0)

	// The Figure 1(a) pattern, impossible with raw RLL/RSC, fine here:
	av, ka := a.LL(p)
	bv, kb := b.LL(p)
	fmt.Printf("LL(a)=%d LL(b)=%d VL(a)=%v\n", av, bv, a.VL(p, ka))
	fmt.Printf("SC(b,200)=%v SC(a,100)=%v → a=%d b=%d\n",
		b.SC(p, kb, 200), a.SC(p, ka, 100), a.Read(p), b.Read(p))

	fmt.Println("\n== Figures 6 and 7 also run on RLL/RSC (the paper's closing remark in Section 3) ==")
	m3 := llsc.MustNewMachine(llsc.MachineConfig{Procs: 2, SpuriousFailProb: 0.1, Seed: 3})
	lf, err := llsc.NewRLargeFamily(m3, 4, 0)
	must(err)
	lv, err := lf.NewVar([]uint64{1, 2, 3, 4})
	must(err)
	lp := m3.Proc(0)
	dst := make([]uint64, 4)
	keep, res := lv.WLL(lp, dst)
	if res != llsc.Succ {
		fmt.Fprintln(os.Stderr, "WLL failed")
		os.Exit(1)
	}
	lv.SC(lp, keep, []uint64{5, 6, 7, 8})
	lv.Read(lp, dst)
	fmt.Printf("4-word variable on RLL/RSC: %v\n", dst)

	bf, err := llsc.NewRBoundedFamily(m3, 1)
	must(err)
	bvr, err := bf.NewVar(0)
	must(err)
	bp, err := bf.Proc(0)
	must(err)
	val, bk, err := bvr.LL(bp)
	must(err)
	bvr.SC(bp, bk, val+42)
	fmt.Printf("bounded-tag variable on RLL/RSC: %d (tag field: %d bits)\n", bvr.Read(bp), bf.TagBits())
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulator:", err)
		os.Exit(1)
	}
}
