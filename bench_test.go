// Benchmarks reproducing the paper's per-figure/per-theorem claims.
// One benchmark family per experiment (E1-E8); see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results. The full
// parameter sweeps with formatted tables live in cmd/llscbench; these
// testing.B benches are the per-cell measurements.
package llsc

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/stm"
	"repro/internal/structures"
	"repro/internal/universal"
	"repro/internal/word"
)

// runWorkers distributes b.N operations over `workers` goroutines, calling
// fn(worker) once per operation. It reports wall time for the whole batch.
func runWorkers(b *testing.B, workers int, fn func(worker int)) {
	b.Helper()
	var next atomic.Int64
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for next.Add(1) <= int64(b.N) {
				fn(w)
			}
		}(w)
	}
	wg.Wait()
}

// --- E1: Figure 3 / Theorem 1 — CAS from RLL/RSC ------------------------

func BenchmarkE1_CASFromRLLRSC_Procs(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			m := machine.MustNew(machine.Config{Procs: procs})
			v, err := core.NewCASVar(m, word.DefaultLayout, 0)
			if err != nil {
				b.Fatal(err)
			}
			runWorkers(b, procs, func(w int) {
				p := m.Proc(w)
				for {
					old := v.Read(p)
					if v.CompareAndSwap(p, old, (old+1)&v.Layout().MaxVal()) {
						break
					}
				}
			})
		})
	}
}

func BenchmarkE1_CASFromRLLRSC_Spurious(b *testing.B) {
	for _, prob := range []float64{0, 0.01, 0.1, 0.5} {
		b.Run(fmt.Sprintf("p=%v", prob), func(b *testing.B) {
			m := machine.MustNew(machine.Config{Procs: 1, SpuriousFailProb: prob, Seed: 3})
			v, err := core.NewCASVar(m, word.DefaultLayout, 0)
			if err != nil {
				b.Fatal(err)
			}
			p := m.Proc(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				old := v.Read(p)
				v.CompareAndSwap(p, old, (old+1)&v.Layout().MaxVal())
			}
		})
	}
}

func BenchmarkE1_NativeMachineCAS(b *testing.B) {
	// The cost floor: the simulated machine's own CAS, no emulation layer.
	m := machine.MustNew(machine.Config{Procs: 1})
	w := m.NewWord(0)
	p := m.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := p.Load(w)
		p.CAS(w, old, old+1)
	}
}

func BenchmarkE1_HardwareCAS(b *testing.B) {
	// The real-hardware cost floor: sync/atomic CAS.
	var x atomic.Uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		old := x.Load()
		x.CompareAndSwap(old, old+1)
	}
}

// --- E2: Figure 4 / Theorem 2 — LL/VL/SC from CAS -----------------------

func BenchmarkE2_LLSCFromCAS_Procs(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			v := core.MustNewVar(word.MustLayout(32), 0)
			runWorkers(b, procs, func(w int) {
				for {
					val, keep := v.LL()
					if v.SC(keep, val+1) {
						break
					}
				}
			})
		})
	}
}

func BenchmarkE2_LLSCFromCAS_Ops(b *testing.B) {
	v := core.MustNewVar(word.DefaultLayout, 0)
	b.Run("LL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.LL()
		}
	})
	b.Run("VL", func(b *testing.B) {
		_, keep := v.LL()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.VL(keep)
		}
	})
	b.Run("LL+SC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, keep := v.LL()
			v.SC(keep, uint64(i)&v.Layout().MaxVal())
		}
	})
}

// --- E3: Figure 5 / Theorem 3 — direct vs composed ----------------------

func BenchmarkE3_DirectLLSCFromRLLRSC(b *testing.B) {
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			m := machine.MustNew(machine.Config{Procs: procs})
			v, err := core.NewRVar(m, word.MustLayout(48), 0)
			if err != nil {
				b.Fatal(err)
			}
			runWorkers(b, procs, func(w int) {
				p := m.Proc(w)
				for {
					val, keep := v.LL(p)
					if v.SC(p, keep, (val+1)&v.Layout().MaxVal()) {
						break
					}
				}
			})
		})
	}
}

func BenchmarkE3_ComposedLLSCFromRLLRSC(b *testing.B) {
	// Figure 4 over Figure 3: two tags per word (24+24 bits leaves 16 for
	// data, versus Figure 5's 48-bit single tag with the same 16 data
	// bits but vastly more wraparound headroom).
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			m := machine.MustNew(machine.Config{Procs: procs})
			v, err := baseline.NewComposed(m, 24, 24, 0)
			if err != nil {
				b.Fatal(err)
			}
			mask := uint64(1)<<v.DataBits() - 1
			runWorkers(b, procs, func(w int) {
				p := m.Proc(w)
				for {
					val, keep := v.LL(p)
					if v.SC(p, keep, (val+1)&mask) {
						break
					}
				}
			})
		})
	}
}

// --- E4: Figure 6 / Theorem 4 — W-word WLL/VL/SC ------------------------

func BenchmarkE4_LargeWLL_ByW(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			f := core.MustNewLargeFamily(core.LargeConfig{Procs: 1, Words: w})
			v, err := f.NewVar(make([]uint64, w))
			if err != nil {
				b.Fatal(err)
			}
			p, _ := f.Proc(0)
			dst := make([]uint64, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.WLL(p, dst)
			}
		})
	}
}

func BenchmarkE4_LargeSC_ByW(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			f := core.MustNewLargeFamily(core.LargeConfig{Procs: 1, Words: w})
			v, err := f.NewVar(make([]uint64, w))
			if err != nil {
				b.Fatal(err)
			}
			p, _ := f.Proc(0)
			dst := make([]uint64, w)
			val := make([]uint64, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				keep, res := v.WLL(p, dst)
				if res != core.Succ {
					b.Fatal("WLL failed uncontended")
				}
				val[0] = uint64(i) & f.MaxSegmentValue()
				if !v.SC(p, keep, val) {
					b.Fatal("SC failed uncontended")
				}
			}
		})
	}
}

func BenchmarkE4_LargeVL(b *testing.B) {
	// VL is Θ(1) regardless of W.
	for _, w := range []int{1, 32} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			f := core.MustNewLargeFamily(core.LargeConfig{Procs: 1, Words: w})
			v, err := f.NewVar(make([]uint64, w))
			if err != nil {
				b.Fatal(err)
			}
			p, _ := f.Proc(0)
			dst := make([]uint64, w)
			keep, _ := v.WLL(p, dst)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.VL(p, keep)
			}
		})
	}
}

func BenchmarkE4_LargeContended(b *testing.B) {
	const w = 4
	for _, procs := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			f := core.MustNewLargeFamily(core.LargeConfig{Procs: procs, Words: w})
			v, err := f.NewVar(make([]uint64, w))
			if err != nil {
				b.Fatal(err)
			}
			handles := make([]*core.LargeProc, procs)
			bufs := make([][]uint64, procs)
			vals := make([][]uint64, procs)
			for i := range handles {
				handles[i], _ = f.Proc(i)
				bufs[i] = make([]uint64, w)
				vals[i] = make([]uint64, w)
			}
			runWorkers(b, procs, func(id int) {
				p := handles[id]
				for {
					keep, res := v.WLL(p, bufs[id])
					if res != core.Succ {
						continue
					}
					copy(vals[id], bufs[id])
					vals[id][0] = (vals[id][0] + 1) & f.MaxSegmentValue()
					if v.SC(p, keep, vals[id]) {
						break
					}
				}
			})
		})
	}
}

// --- E5: Figure 7 / Theorem 5 — bounded tags ----------------------------

func BenchmarkE5_BoundedLLSC_Procs(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			f := core.MustNewBoundedFamily(core.BoundedConfig{Procs: procs, K: 2})
			v, err := f.NewVar(0)
			if err != nil {
				b.Fatal(err)
			}
			handles := make([]*core.BoundedProc, procs)
			for i := range handles {
				handles[i], _ = f.Proc(i)
			}
			mask := f.MaxVal()
			runWorkers(b, procs, func(id int) {
				p := handles[id]
				for {
					val, keep, err := v.LL(p)
					if err != nil {
						b.Error(err)
						return
					}
					if v.SC(p, keep, (val+1)&mask) {
						break
					}
				}
			})
		})
	}
}

func BenchmarkE5_UnboundedVsBounded(b *testing.B) {
	// Same workload on Figure 4 (unbounded tags) and Figure 7 (bounded):
	// the price of wraparound-proofness.
	b.Run("fig4-unbounded", func(b *testing.B) {
		v := core.MustNewVar(word.MustLayout(32), 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			val, keep := v.LL()
			v.SC(keep, val+1)
		}
	})
	b.Run("fig7-bounded", func(b *testing.B) {
		f := core.MustNewBoundedFamily(core.BoundedConfig{Procs: 1, K: 1})
		v, err := f.NewVar(0)
		if err != nil {
			b.Fatal(err)
		}
		p, _ := f.Proc(0)
		mask := f.MaxVal()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			val, keep, err := v.LL(p)
			if err != nil {
				b.Fatal(err)
			}
			v.SC(p, keep, (val+1)&mask)
		}
	})
}

// --- E6: disjoint-access parallelism ------------------------------------

func BenchmarkE6_SharedVsDisjoint(b *testing.B) {
	const procs = 8
	b.Run("shared-1var", func(b *testing.B) {
		v := core.MustNewVar(word.MustLayout(32), 0)
		runWorkers(b, procs, func(w int) {
			for {
				val, keep := v.LL()
				if v.SC(keep, val+1) {
					break
				}
			}
		})
	})
	b.Run("disjoint-vars", func(b *testing.B) {
		vars := make([]*core.Var, procs)
		for i := range vars {
			vars[i] = core.MustNewVar(word.MustLayout(32), 0)
		}
		runWorkers(b, procs, func(w int) {
			v := vars[w]
			for {
				val, keep := v.LL()
				if v.SC(keep, val+1) {
					break
				}
			}
		})
	})
}

// --- E7: tag wraparound -------------------------------------------------

func BenchmarkE7_TagWidthCostIsZero(b *testing.B) {
	// The tag width does not affect per-op cost — the trade-off is purely
	// headroom vs data bits.
	for _, bits := range []uint{8, 32, 48, 56} {
		b.Run(fmt.Sprintf("tagbits=%d", bits), func(b *testing.B) {
			v := core.MustNewVar(word.MustLayout(bits), 0)
			mask := v.Layout().MaxVal()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				val, keep := v.LL()
				v.SC(keep, (val+1)&mask)
			}
		})
	}
}

// --- E8: applications ----------------------------------------------------

func BenchmarkE8_Stack(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			s, err := structures.NewStack(procs * 4)
			if err != nil {
				b.Fatal(err)
			}
			runWorkers(b, procs, func(w int) {
				if err := s.Push(uint64(w)); err == nil {
					s.Pop()
				}
			})
		})
	}
}

func BenchmarkE8_Queue(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			q, err := structures.NewQueue(procs * 4)
			if err != nil {
				b.Fatal(err)
			}
			runWorkers(b, procs, func(w int) {
				if err := q.Enqueue(uint64(w)); err == nil {
					q.Dequeue()
				}
			})
		})
	}
}

func BenchmarkE8_Ring(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			r, err := structures.NewRing(64)
			if err != nil {
				b.Fatal(err)
			}
			runWorkers(b, procs, func(w int) {
				if err := r.Enqueue(uint64(w)); err == nil {
					r.Dequeue()
				}
			})
		})
	}
}

func BenchmarkE8_WaitFreeObject(b *testing.B) {
	apply := func(opcode, arg uint64, user []uint64) uint64 {
		old := user[0]
		user[0] = (user[0] + arg) & ((1 << 32) - 1)
		return old & 0xFFFF
	}
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			o, err := universal.NewWaitFree(universal.WaitFreeConfig{Procs: procs, UserWords: 1}, []uint64{0}, apply)
			if err != nil {
				b.Fatal(err)
			}
			handles := make([]*universal.WProc, procs)
			for i := range handles {
				handles[i], err = o.Proc(i)
				if err != nil {
					b.Fatal(err)
				}
			}
			runWorkers(b, procs, func(w int) {
				o.Invoke(handles[w], 0, 1)
			})
		})
	}
}

func BenchmarkE8_Counter_LLSCvsMutex(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("llsc/procs=%d", procs), func(b *testing.B) {
			c := structures.NewCounter(0)
			runWorkers(b, procs, func(w int) {
				c.Increment()
			})
		})
		b.Run(fmt.Sprintf("mutex/procs=%d", procs), func(b *testing.B) {
			v, err := baseline.NewMutexLLSC(procs, 0)
			if err != nil {
				b.Fatal(err)
			}
			runWorkers(b, procs, func(w int) {
				for {
					x := v.LL(w)
					if v.SC(w, x+1) {
						break
					}
				}
			})
		})
		b.Run(fmt.Sprintf("spec-globallock/procs=%d", procs), func(b *testing.B) {
			r := spec.MustNewRegister(procs, 0)
			runWorkers(b, procs, func(w int) {
				for {
					x := r.LL(w)
					if r.SC(w, x+1) {
						break
					}
				}
			})
		})
	}
}

func BenchmarkE8_SetOps(b *testing.B) {
	const keySpace = 128
	b.Run("contains", func(b *testing.B) {
		s, err := structures.NewSet(keySpace)
		if err != nil {
			b.Fatal(err)
		}
		for k := uint64(0); k < keySpace; k += 2 {
			if _, err := s.Insert(k); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Contains(uint64(i) % keySpace)
		}
	})
	b.Run("insert-delete", func(b *testing.B) {
		s, err := structures.NewSet(b.N + 2)
		if err != nil {
			b.Skip("capacity too large for a single run")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i) % keySpace
			if _, err := s.Insert(k); err != nil {
				b.Fatal(err)
			}
			s.Delete(k)
		}
	})
}

func BenchmarkE8_MCAS(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := stm.MustNew(n)
			addrs := make([]int, n)
			expected := make([]uint64, n)
			newvals := make([]uint64, n)
			for i := range addrs {
				addrs[i] = i
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range expected {
					expected[j] = uint64(i) & stm.MaxValue
					newvals[j] = uint64(i+1) & stm.MaxValue
				}
				ok, err := m.MCAS(addrs, expected, newvals)
				if err != nil || !ok {
					b.Fatalf("MCAS = (%v,%v)", ok, err)
				}
			}
		})
	}
}

func BenchmarkE8_STMTransfer(b *testing.B) {
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			const accounts = 16
			m := stm.MustNew(accounts)
			runWorkers(b, procs, func(w int) {
				from := w % accounts
				to := (w + 1) % accounts
				_, err := m.Atomically([]int{from, to}, func(cur, next []uint64) {
					next[0] = (cur[0] - 1) & stm.MaxValue
					next[1] = (cur[1] + 1) & stm.MaxValue
				})
				if err != nil {
					b.Error(err)
				}
			})
		})
	}
}

func BenchmarkE8_HashMap(b *testing.B) {
	b.Run("get-hit", func(b *testing.B) {
		m, err := structures.NewMap(1024)
		if err != nil {
			b.Fatal(err)
		}
		for k := uint64(0); k < 1024; k++ {
			if err := m.Put(k, k); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Get(uint64(i) & 1023)
		}
	})
	b.Run("put-overwrite", func(b *testing.B) {
		m, err := structures.NewMap(1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Put(uint64(i)&1023, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent-mixed", func(b *testing.B) {
		m, err := structures.NewMap(1024)
		if err != nil {
			b.Fatal(err)
		}
		runWorkers(b, 4, func(w int) {
			k := uint64(w) * 7 & 1023
			if w%2 == 0 {
				m.Put(k, k)
			} else {
				m.Get(k)
			}
		})
	})
}

func BenchmarkE8_Snapshot(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("vars=%d/quiescent", n), func(b *testing.B) {
			vars := make([]*core.Var, n)
			for i := range vars {
				vars[i] = core.MustNewVar(word.MustLayout(32), uint64(i))
			}
			s, err := structures.NewSnapshot(vars)
			if err != nil {
				b.Fatal(err)
			}
			dst := make([]uint64, n)
			keeps := make([]core.Keep, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.CollectWith(dst, keeps)
			}
		})
	}
	b.Run("vars=8/contended", func(b *testing.B) {
		vars := make([]*core.Var, 8)
		for i := range vars {
			vars[i] = core.MustNewVar(word.MustLayout(32), 0)
		}
		s, err := structures.NewSnapshot(vars)
		if err != nil {
			b.Fatal(err)
		}
		runWorkers(b, 4, func(w int) {
			if w == 0 { // one writer
				v := vars[0]
				val, keep := v.LL()
				v.SC(keep, val+1)
				return
			}
			dst := make([]uint64, 8)
			keeps := make([]core.Keep, 8)
			s.CollectWith(dst, keeps)
		})
	})
}

func BenchmarkE8_DynamicTx(b *testing.B) {
	m := stm.MustNew(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := m.RunTx(func(tx *stm.Tx) error {
			v, err := tx.Read(i & 15)
			if err != nil {
				return err
			}
			return tx.Write((i+1)&15, (v+1)&stm.MaxValue)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: what does the simulated machine cost? ---------------------

func BenchmarkAblation_SimulationOverhead(b *testing.B) {
	// The cost ladder from real hardware to the emulated primitives, so
	// every simulated number in EXPERIMENTS.md can be discounted by the
	// substrate's own overhead.
	b.Run("hardware-atomic-load", func(b *testing.B) {
		var x atomic.Uint64
		for i := 0; i < b.N; i++ {
			_ = x.Load()
		}
	})
	b.Run("machine-load", func(b *testing.B) {
		m := machine.MustNew(machine.Config{Procs: 1})
		w := m.NewWord(0)
		p := m.Proc(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Load(w)
		}
	})
	b.Run("hardware-cas", func(b *testing.B) {
		var x atomic.Uint64
		for i := 0; i < b.N; i++ {
			old := x.Load()
			x.CompareAndSwap(old, old+1)
		}
	})
	b.Run("machine-cas", func(b *testing.B) {
		m := machine.MustNew(machine.Config{Procs: 1})
		w := m.NewWord(0)
		p := m.Proc(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			old := p.Load(w)
			p.CAS(w, old, old+1)
		}
	})
	b.Run("machine-rll-rsc", func(b *testing.B) {
		m := machine.MustNew(machine.Config{Procs: 1})
		w := m.NewWord(0)
		p := m.Proc(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := p.RLL(w)
			p.RSC(w, v+1)
		}
	})
	b.Run("fig4-llsc-on-hardware", func(b *testing.B) {
		v := core.MustNewVar(word.MustLayout(32), 0)
		for i := 0; i < b.N; i++ {
			val, keep := v.LL()
			v.SC(keep, val+1)
		}
	})
	b.Run("fig5-llsc-on-machine", func(b *testing.B) {
		m := machine.MustNew(machine.Config{Procs: 1})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		if err != nil {
			b.Fatal(err)
		}
		p := m.Proc(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			val, keep := v.LL(p)
			v.SC(p, keep, val+1)
		}
	})
}

func BenchmarkE8_UniversalApply(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			o, err := universal.New(universal.Config{Procs: 1, Words: w}, make([]uint64, w))
			if err != nil {
				b.Fatal(err)
			}
			p, err := o.Proc(0)
			if err != nil {
				b.Fatal(err)
			}
			max := o.MaxSegmentValue()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Apply(p, func(cur, next []uint64) {
					copy(next, cur)
					next[0] = (next[0] + 1) & max
				})
			}
		})
	}
}
