// Package llsc is the public API of this repository: a Go reproduction of
// Mark Moir, "Practical Implementations of Non-Blocking Synchronization
// Primitives" (PODC 1997).
//
// The paper bridges the gap between the synchronization primitives assumed
// by designers of non-blocking algorithms — full-semantics Load-Linked /
// Validate / Store-Conditional with concurrent LL-SC sequences — and what
// hardware actually provides: either CAS, or a restricted RLL/RSC pair
// with spurious failures and one reservation per processor. This package
// re-exports the five constructions of the paper's Figures 3-7 together
// with the substrates and consumers built around them:
//
//   - Var (Figure 4): LL/VL/SC from CAS — runs on real sync/atomic, ready
//     for production use.
//   - CASVar (Figure 3) and RVar (Figure 5): CAS and LL/VL/SC from the
//     restricted RLL/RSC pair, running on the simulated multiprocessor in
//     Machine (no Go-visible hardware exposes LL/SC directly).
//   - LargeFamily (Figure 6): WLL/VL/SC on W-word values with Θ(NW) total
//     space overhead and helping.
//   - BoundedFamily (Figure 7): LL/VL/CL/SC with small bounded tags that
//     can never wrap around incorrectly, in Θ(N(k+T)) space.
//   - Stack, Queue, Ring, Deque, WSDeque, Set, HashMap, Counter,
//     Snapshot: non-blocking data structures built on the primitives (no
//     ABA counters or hazard pointers needed on the swing pointers).
//   - Object and WaitFreeObject: Herlihy-style universal constructions on
//     the W-word primitive (lock-free, and wait-free with helping);
//     RObject runs the same construction on an RLL/RSC machine.
//   - Memory: a software transactional memory with MCAS, DCAS, and
//     dynamic transactions (RunTx), substantiating the paper's Section 5
//     claim that STM is implementable on stock CAS hardware.
//
// Quick start (the production-ready Figure 4 primitive):
//
//	v := llsc.MustNewVar(llsc.DefaultLayout, 0)
//	for {
//	    val, keep := v.LL()
//	    if v.SC(keep, val+1) {
//	        break // atomically incremented
//	    }
//	}
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every claim in the paper.
package llsc

import (
	"repro/internal/baseline"
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/stm"
	"repro/internal/structures"
	"repro/internal/universal"
	"repro/internal/word"
)

// Word-layout utilities (Section 2 of the paper: tag|value machine words).
type (
	// Layout is a tag|value split of a 64-bit machine word.
	Layout = word.Layout
	// Fields is a general multi-field bit layout.
	Fields = word.Fields
)

var (
	// NewLayout builds a Layout with the given tag width.
	NewLayout = word.NewLayout
	// MustLayout is NewLayout panicking on error.
	MustLayout = word.MustLayout
	// DefaultLayout is the paper's running example: 48-bit tag, 16-bit value.
	DefaultLayout = word.DefaultLayout
	// TimeToWrap computes how long a tag width survives at a given update
	// rate (the paper's "about nine years" arithmetic).
	TimeToWrap = word.TimeToWrap
)

// The simulated multiprocessor providing restricted RLL/RSC (Section 1).
type (
	// Machine is a simulated shared-memory multiprocessor.
	Machine = machine.Machine
	// MachineConfig parametrizes a Machine.
	MachineConfig = machine.Config
	// MachineProc is one simulated processor.
	MachineProc = machine.Proc
	// MachineWord is one shared word on a Machine.
	MachineWord = machine.Word
	// MachineStats aggregates a Machine's operation counters.
	MachineStats = machine.Stats
	// FaultPlan injects deterministic adversity (spurious-failure bursts,
	// reservation interference, processor crashes) into a Machine via
	// MachineConfig.FaultPlan; internal/fault provides implementations.
	FaultPlan = machine.FaultPlan
	// FaultInjection is a FaultPlan's per-operation decision.
	FaultInjection = machine.FaultInjection
	// MachineOpKind identifies the machine operation a FaultPlan is
	// consulted about (load, store, CAS, RLL, RSC).
	MachineOpKind = machine.OpKind
)

// The machine operation kinds a FaultPlan distinguishes.
const (
	MachineOpLoad  = machine.OpLoad
	MachineOpStore = machine.OpStore
	MachineOpCAS   = machine.OpCAS
	MachineOpRLL   = machine.OpRLL
	MachineOpRSC   = machine.OpRSC
)

var (
	// NewMachine constructs a simulated machine.
	NewMachine = machine.New
	// MustNewMachine is NewMachine panicking on error.
	MustNewMachine = machine.MustNew
)

// The paper's five constructions (Figures 3-7).
type (
	// CASVar is Figure 3: CAS from RLL/RSC.
	CASVar = core.CASVar
	// Var is Figure 4: LL/VL/SC from CAS (real atomics).
	Var = core.Var
	// Keep is the private word of the paper's modified LL interface.
	Keep = core.Keep
	// RVar is Figure 5: LL/VL/SC directly from RLL/RSC.
	RVar = core.RVar
	// LargeFamily is Figure 6's shared context for W-word variables.
	LargeFamily = core.LargeFamily
	// LargeConfig parametrizes a LargeFamily.
	LargeConfig = core.LargeConfig
	// LargeVar is one W-word variable.
	LargeVar = core.LargeVar
	// LargeProc is a per-process handle for Figure 6.
	LargeProc = core.LargeProc
	// LKeep is the keep token of Figure 6's WLL.
	LKeep = core.LKeep
	// BoundedFamily is Figure 7's shared context for bounded-tag variables.
	BoundedFamily = core.BoundedFamily
	// BoundedConfig parametrizes a BoundedFamily.
	BoundedConfig = core.BoundedConfig
	// BoundedVar is one bounded-tag variable.
	BoundedVar = core.BoundedVar
	// BoundedProc is a per-process handle for Figure 7.
	BoundedProc = core.BoundedProc
	// BKeep is the keep token of Figure 7.
	BKeep = core.BKeep
	// RLargeFamily is Figure 6 realized over RLL/RSC (simulated machine).
	RLargeFamily = core.RLargeFamily
	// RLargeVar is one W-word variable of an RLargeFamily.
	RLargeVar = core.RLargeVar
	// RBoundedFamily is Figure 7 realized over RLL/RSC.
	RBoundedFamily = core.RBoundedFamily
	// RBoundedVar is one bounded-tag variable over RLL/RSC.
	RBoundedVar = core.RBoundedVar
	// RBoundedProc is a per-process handle for RBoundedFamily.
	RBoundedProc = core.RBoundedProc
)

var (
	// NewCASVar allocates a Figure 3 variable on a Machine.
	NewCASVar = core.NewCASVar
	// NewVar creates a Figure 4 variable.
	NewVar = core.NewVar
	// MustNewVar is NewVar panicking on error.
	MustNewVar = core.MustNewVar
	// NewRVar allocates a Figure 5 variable on a Machine.
	NewRVar = core.NewRVar
	// NewLargeFamily builds a Figure 6 family.
	NewLargeFamily = core.NewLargeFamily
	// MustNewLargeFamily is NewLargeFamily panicking on error.
	MustNewLargeFamily = core.MustNewLargeFamily
	// NewBoundedFamily builds a Figure 7 family.
	NewBoundedFamily = core.NewBoundedFamily
	// MustNewBoundedFamily is NewBoundedFamily panicking on error.
	MustNewBoundedFamily = core.MustNewBoundedFamily
	// NewRLargeFamily builds a Figure 6 family over a simulated RLL/RSC machine.
	NewRLargeFamily = core.NewRLargeFamily
	// NewRBoundedFamily builds a Figure 7 family over a simulated RLL/RSC machine.
	NewRBoundedFamily = core.NewRBoundedFamily
)

// Succ is the Figure 6 WLL result meaning a consistent value was read.
const Succ = core.Succ

// ErrTooManySequences is returned by BoundedVar.LL when a process exceeds
// its k concurrent LL-SC sequences.
var ErrTooManySequences = core.ErrTooManySequences

// Non-blocking data structures built on the primitives.
type (
	// Stack is a bounded lock-free Treiber stack.
	Stack = structures.Stack
	// Queue is a bounded lock-free MPMC FIFO.
	Queue = structures.Queue
	// Counter is a lock-free fetch-and-op counter.
	Counter = structures.Counter
	// Set is a lock-free sorted linked-list set.
	Set = structures.Set
	// Ring is a bounded MPMC ring buffer with LL/SC cursors.
	Ring = structures.Ring
	// HashMap is a bounded lock-free hash map with claim-once LL/SC buckets.
	HashMap = structures.Map
	// Snapshot atomically collects a set of Vars via LL/VL double-collect.
	Snapshot = structures.Snapshot
	// Deque is a bounded double-ended queue via the universal construction.
	Deque = structures.Deque
	// DequeProc is a per-process handle for Deque operations.
	DequeProc = structures.DequeProc
	// WSDeque is a Chase–Lev-style work-stealing deque on LL/SC cursors.
	WSDeque = structures.WSDeque
	// ShardedCounter is a combining counter: one failed SC on the base
	// diverts the add to a stripe, LongAdder-style.
	ShardedCounter = structures.ShardedCounter
)

var (
	// NewStack creates a bounded lock-free stack.
	NewStack = structures.NewStack
	// NewQueue creates a bounded lock-free queue.
	NewQueue = structures.NewQueue
	// NewCounter creates a lock-free counter.
	NewCounter = structures.NewCounter
	// NewShardedCounter creates a combining counter with the given number
	// of overflow stripes.
	NewShardedCounter = structures.NewShardedCounter
	// NewSet creates a lock-free ordered set.
	NewSet = structures.NewSet
	// NewRing creates a bounded MPMC ring buffer.
	NewRing = structures.NewRing
	// NewHashMap creates a bounded lock-free hash map.
	NewHashMap = structures.NewMap
	// NewSnapshot builds an atomic snapshotter over a set of Vars.
	NewSnapshot = structures.NewSnapshot
	// NewDeque creates a bounded lock-free double-ended queue.
	NewDeque = structures.NewDeque
	// NewWSDeque creates a bounded work-stealing deque.
	NewWSDeque = structures.NewWSDeque
	// ErrFull is returned when a container's capacity is exhausted.
	ErrFull = structures.ErrFull
)

// The universal construction (references [3,7] of the paper).
type (
	// Object is a lock-free shared object built on Figure 6.
	Object = universal.Object
	// ObjectConfig parametrizes an Object.
	ObjectConfig = universal.Config
	// ObjectProc is a per-process handle for Object operations.
	ObjectProc = universal.Proc
	// WaitFreeObject is the wait-free universal construction (announce +
	// helping, Herlihy-style).
	WaitFreeObject = universal.WaitFreeObject
	// WaitFreeConfig parametrizes a WaitFreeObject.
	WaitFreeConfig = universal.WaitFreeConfig
	// WaitFreeProc is a per-process handle for WaitFreeObject operations.
	WaitFreeProc = universal.WProc
	// ApplyFunc is a WaitFreeObject's sequential transition function.
	ApplyFunc = universal.ApplyFunc
	// RObject is the universal construction over an RLL/RSC machine.
	RObject = universal.RObject
	// RObjectProc is a per-process handle for RObject operations.
	RObjectProc = universal.RProc
)

var (
	// NewObject creates a lock-free shared object with W-segment state.
	NewObject = universal.New
	// NewWaitFree creates a wait-free shared object (announce + helping).
	NewWaitFree = universal.NewWaitFree
	// NewRObject creates a lock-free shared object on an RLL/RSC machine.
	NewRObject = universal.NewRObject
)

// Software transactional memory (Section 5, reference [14]).
type (
	// Memory is a word-addressed software transactional memory.
	Memory = stm.Memory
	// Tx is a dynamic transaction over a Memory (see Memory.RunTx).
	Tx = stm.Tx
)

var (
	// NewMemory creates a transactional memory of the given word count.
	NewMemory = stm.New
	// MustNewMemory is NewMemory panicking on error.
	MustNewMemory = stm.MustNew
)

// StmMaxValue is the largest value an stm.Memory word can hold.
const StmMaxValue = stm.MaxValue

// The contention-management policy layer consulted by every SC/CAS
// retry loop (none/spin/exponential-backoff/adaptive); attach with the
// SetContention method available on every primitive family, structure,
// and universal object. See docs/CONTENTION.md.
type (
	// ContentionPolicy paces SC retry loops; nil means "retry immediately".
	ContentionPolicy = contention.Policy
	// ContentionWaiter is the per-loop two-word wait state.
	ContentionWaiter = contention.Waiter
	// ContentionCause tells a policy why an SC attempt failed.
	ContentionCause = contention.Cause
)

var (
	// ContentionNone returns the explicit retry-immediately policy.
	ContentionNone = contention.None
	// ContentionSpin returns a fixed-spin policy.
	ContentionSpin = contention.Spin
	// ExponentialBackoff returns a jittered exponential-backoff policy.
	ExponentialBackoff = contention.ExponentialBackoff
	// AdaptiveBackoff returns a policy that backs off only when the
	// attached Metrics' SC-failure-cause split shows interference.
	AdaptiveBackoff = contention.Adaptive
	// ContentionPolicyByName maps the stable policy names (see
	// ContentionPolicyNames) to default-parameter instances.
	ContentionPolicyByName = contention.ByName
	// ContentionPolicyNames lists the stable policy names.
	ContentionPolicyNames = contention.Names
)

// The SC-failure causes a policy distinguishes.
const (
	// ContentionInterference marks a failure implying another process
	// succeeded.
	ContentionInterference = contention.Interference
	// ContentionSpurious marks a hardware-invented failure (RLL/RSC
	// substrates only); adaptive policies never back off on these.
	ContentionSpurious = contention.Spurious
)

// The unified observability layer: allocation-free striped counters that
// every primitive, structure, STM, and universal object can report into
// via its SetMetrics method. See docs/OBSERVABILITY.md for the counter
// taxonomy and its mapping onto the paper's Theorems 1-5.
type (
	// Metrics is a striped counter sink; nil means "metrics disabled".
	Metrics = obs.Metrics
	// MetricsCounter identifies one counter in the fixed taxonomy.
	MetricsCounter = obs.Counter
	// MetricsSnapshot is a point-in-time folding of a Metrics' stripes.
	MetricsSnapshot = obs.Snapshot
	// Hist is a lock-free log₂ histogram (retries, latencies).
	Hist = obs.Hist
)

var (
	// NewMetrics creates a Metrics with one stripe per processor.
	NewMetrics = obs.New
	// PublishMetrics registers a named Metrics with expvar.
	PublishMetrics = obs.Publish
	// ServeMetrics starts an HTTP server exporting expvar, a plain-text
	// /metrics endpoint, and pprof.
	ServeMetrics = obs.Serve
	// StartMetricsReporter periodically writes counter deltas to a Writer.
	StartMetricsReporter = obs.StartReporter
)

// Baselines for the comparison experiments.
type (
	// MutexLLSC is the lock-based LL/VL/SC of the paper's footnote 1.
	MutexLLSC = baseline.MutexLLSC
	// IsraeliRappoport is a valid-bits-in-word construction [10].
	IsraeliRappoport = baseline.IsraeliRappoport
)

var (
	// NewMutexLLSC creates a lock-based LL/VL/SC variable.
	NewMutexLLSC = baseline.NewMutexLLSC
	// NewIsraeliRappoport creates a valid-bits variable (N ≤ 32).
	NewIsraeliRappoport = baseline.NewIsraeliRappoport
)
