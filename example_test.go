package llsc_test

import (
	"fmt"

	llsc "repro"
)

// The canonical LL/SC read-modify-write loop on the Figure 4 primitive.
func ExampleVar() {
	v := llsc.MustNewVar(llsc.MustLayout(32), 10)
	for {
		val, keep := v.LL()
		if v.SC(keep, val*2) {
			break
		}
	}
	fmt.Println(v.Read())
	// Output: 20
}

// VL validates a snapshot without writing — and an intervening SC
// invalidates it even when the value is restored (no ABA).
func ExampleVar_vL() {
	v := llsc.MustNewVar(llsc.MustLayout(32), 7)
	_, stale := v.LL()

	_, k := v.LL()
	v.SC(k, 9)
	_, k = v.LL()
	v.SC(k, 7) // restore the original value

	fmt.Println(v.VL(stale))
	// Output: false
}

// CAS emulated from the restricted RLL/RSC instructions (Figure 3) on the
// simulated multiprocessor, surviving injected spurious failures.
func ExampleCASVar() {
	m := llsc.MustNewMachine(llsc.MachineConfig{Procs: 1, SpuriousFailProb: 0.3, Seed: 7})
	v, _ := llsc.NewCASVar(m, llsc.DefaultLayout, 100)
	p := m.Proc(0)

	ok := v.CompareAndSwap(p, 100, 200)
	fmt.Println(ok, v.Read(p))
	// Output: true 200
}

// A 4-word value updated atomically (Figure 6).
func ExampleLargeFamily() {
	f := llsc.MustNewLargeFamily(llsc.LargeConfig{Procs: 2, Words: 4})
	v, _ := f.NewVar([]uint64{1, 2, 3, 4})
	p, _ := f.Proc(0)

	cur := make([]uint64, 4)
	for {
		keep, res := v.WLL(p, cur)
		if res != llsc.Succ {
			continue
		}
		next := []uint64{cur[0] + 10, cur[1] + 10, cur[2] + 10, cur[3] + 10}
		if v.SC(p, keep, next) {
			break
		}
	}
	v.Read(p, cur)
	fmt.Println(cur)
	// Output: [11 12 13 14]
}

// Bounded tags (Figure 7): tiny tag fields, no wraparound hazard, and CL
// to abort a sequence.
func ExampleBoundedFamily() {
	f := llsc.MustNewBoundedFamily(llsc.BoundedConfig{Procs: 2, K: 2})
	v, _ := f.NewVar(5)
	p, _ := f.Proc(0)

	val, keep, _ := v.LL(p)
	v.SC(p, keep, val+1)

	_, keep2, _ := v.LL(p)
	v.CL(p, keep2) // abort: the slot returns to the pool

	fmt.Println(v.Read(), p.FreeSlots())
	// Output: 6 2
}

// A software DCAS on stock CAS hardware — the paper's Section 5 claim.
func ExampleMemory_dCAS() {
	mem := llsc.MustNewMemory(2)
	mem.Write(0, 100)
	mem.Write(1, 50)

	ok, _ := mem.DCAS(0, 1, 100, 50, 75, 75)
	a, _ := mem.Read(0)
	b, _ := mem.Read(1)
	fmt.Println(ok, a, b)
	// Output: true 75 75
}

// A transactional bank transfer with automatic retry.
func ExampleMemory_atomically() {
	mem := llsc.MustNewMemory(2)
	mem.Write(0, 100)

	mem.Atomically([]int{0, 1}, func(cur, next []uint64) {
		next[0] = cur[0] - 30
		next[1] = cur[1] + 30
	})
	a, _ := mem.Read(0)
	b, _ := mem.Read(1)
	fmt.Println(a, b)
	// Output: 70 30
}

// Any sequential object becomes lock-free via the universal construction.
func ExampleObject() {
	o, _ := llsc.NewObject(llsc.ObjectConfig{Procs: 1, Words: 2}, []uint64{0, 0})
	p, _ := o.Proc(0)

	// A tiny "max tracker": state = [current max, update count].
	observe := func(sample uint64) {
		o.Apply(p, func(cur, next []uint64) {
			next[0], next[1] = cur[0], cur[1]+1
			if sample > cur[0] {
				next[0] = sample
			}
		})
	}
	observe(3)
	observe(9)
	observe(4)

	state := make([]uint64, 2)
	o.Read(p, state)
	fmt.Println(state[0], state[1])
	// Output: 9 3
}

// The tag-size trade-off, quantified (the paper's Section 1 example).
func ExampleTimeToWrap() {
	d := llsc.TimeToWrap(48, 1e6)
	fmt.Printf("%.1f years\n", d.Hours()/24/365)
	// Output: 8.9 years
}
