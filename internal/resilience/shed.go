package resilience

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Mode is the shedder's admission mode, an escalation ladder.
type Mode uint8

const (
	// ModeHealthy admits everything.
	ModeHealthy Mode = iota
	// ModeShedWrites is the degraded mode: writes are shed, reads admitted
	// — reads preserve acknowledged state, writes grow the backlog.
	ModeShedWrites
	// ModeShedAll sheds everything but health checks; the service is
	// protecting itself.
	ModeShedAll
)

// String returns the mode's mnemonic.
func (m Mode) String() string {
	switch m {
	case ModeShedWrites:
		return "shed-writes"
	case ModeShedAll:
		return "shed-all"
	default:
		return "healthy"
	}
}

// Vitals is one sample of the signals admission control keys on. In the
// server they come from live obs counters and histograms; in tests they
// are scripted — the decision path never touches a socket or a clock.
type Vitals struct {
	// QueueDepth is the number of admitted requests still in flight.
	QueueDepth int
	// RetryRate is retries per attempt over the recent window, in [0,1+).
	RetryRate float64
	// P99Drift is the current p99 latency over its healthy baseline
	// (1.0 = at baseline; 3.0 = three times slower).
	P99Drift float64
}

// ShedderConfig sets the escalation and clearance lines for each vital.
// A vital at or above its Shed line votes to degrade one level; at or
// above its Hard line it votes for ModeShedAll. De-escalation happens one
// level per Reassess, and only when every vital is strictly below its
// Clear line — the Clear/Shed gap is the hysteresis band that stops the
// mode from flapping at the boundary.
type ShedderConfig struct {
	DepthShed, DepthHard, DepthClear int
	RetryShed, RetryHard, RetryClear float64
	DriftShed, DriftHard, DriftClear float64
}

// DefaultShedderConfig returns the service defaults, scaled to a target
// in-flight depth: degrade at depth (or 30% retry rate, or 3× p99 drift),
// hard-shed at 2× depth (or 60% retries, or 6× drift), clear at half the
// degrade line.
func DefaultShedderConfig(depth int) ShedderConfig {
	return ShedderConfig{
		DepthShed: depth, DepthHard: 2 * depth, DepthClear: depth / 2,
		RetryShed: 0.30, RetryHard: 0.60, RetryClear: 0.15,
		DriftShed: 3.0, DriftHard: 6.0, DriftClear: 1.5,
	}
}

func (c ShedderConfig) validate() error {
	if c.DepthShed < 1 || c.DepthHard < c.DepthShed || c.DepthClear < 0 || c.DepthClear >= c.DepthShed {
		return fmt.Errorf("resilience: depth lines must satisfy 0 <= clear < shed <= hard, got clear=%d shed=%d hard=%d", c.DepthClear, c.DepthShed, c.DepthHard)
	}
	if c.RetryShed <= 0 || c.RetryHard < c.RetryShed || c.RetryClear < 0 || c.RetryClear >= c.RetryShed {
		return fmt.Errorf("resilience: retry lines must satisfy 0 <= clear < shed <= hard, got clear=%g shed=%g hard=%g", c.RetryClear, c.RetryShed, c.RetryHard)
	}
	if c.DriftShed <= 1 || c.DriftHard < c.DriftShed || c.DriftClear < 0 || c.DriftClear >= c.DriftShed {
		return fmt.Errorf("resilience: drift lines must satisfy clear < shed <= hard and shed > 1, got clear=%g shed=%g hard=%g", c.DriftClear, c.DriftShed, c.DriftHard)
	}
	return nil
}

// Shedder is admission control with hysteresis. Reassess samples the
// vitals and walks the mode ladder; Admit applies the current mode to one
// request. The two are split so the decision cadence (periodic, cheap)
// is independent of the request rate, and so tests can drive scripted
// vitals through Reassess and assert on every Admit outcome
// deterministically.
type Shedder struct {
	vitals func() Vitals
	cfg    ShedderConfig
	mets   *obs.Metrics

	mu   sync.Mutex
	mode Mode

	onTransition func(from, to Mode, v Vitals)
}

// NewShedder builds a shedder sampling vitals (required) against cfg.
func NewShedder(vitals func() Vitals, cfg ShedderConfig) (*Shedder, error) {
	if vitals == nil {
		return nil, fmt.Errorf("resilience: vitals function is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Shedder{vitals: vitals, cfg: cfg}, nil
}

// SetMetrics attaches an optional metrics sink (nil disables):
// admissions mirror to load_admitted, sheds to load_shed_writes /
// load_shed_reads, mode changes to load_degraded_transitions.
func (s *Shedder) SetMetrics(m *obs.Metrics) { s.mets = m }

// OnTransition registers a hook fired (under the shedder's lock) on every
// mode change — the server uses it to arm the flight recorder on a
// shed-storm. Set before serving.
func (s *Shedder) OnTransition(f func(from, to Mode, v Vitals)) { s.onTransition = f }

// target returns the mode the vitals call for, ignoring hysteresis.
func (s *Shedder) target(v Vitals) Mode {
	if v.QueueDepth >= s.cfg.DepthHard || v.RetryRate >= s.cfg.RetryHard || v.P99Drift >= s.cfg.DriftHard {
		return ModeShedAll
	}
	if v.QueueDepth >= s.cfg.DepthShed || v.RetryRate >= s.cfg.RetryShed || v.P99Drift >= s.cfg.DriftShed {
		return ModeShedWrites
	}
	return ModeHealthy
}

// clear reports whether every vital is below its clearance line.
func (s *Shedder) clear(v Vitals) bool {
	return v.QueueDepth <= s.cfg.DepthClear && v.RetryRate <= s.cfg.RetryClear && v.P99Drift <= s.cfg.DriftClear
}

// Reassess samples the vitals and moves the mode: escalation jumps
// straight to the called-for mode (overload brooks no gradualism), while
// de-escalation steps down one level at a time and only once every vital
// has cleared — so recovery is gentle and boundary noise cannot flap the
// mode. Returns the mode now in force.
func (s *Shedder) Reassess() Mode {
	v := s.vitals()
	s.mu.Lock()
	defer s.mu.Unlock()
	from := s.mode
	switch target := s.target(v); {
	case target > s.mode:
		s.mode = target
	case s.mode > ModeHealthy && s.clear(v):
		s.mode--
	}
	if s.mode != from {
		s.mets.Inc(obs.CtrLoadDegradedTransitions)
		if s.onTransition != nil {
			s.onTransition(from, s.mode, v)
		}
	}
	return s.mode
}

// Mode returns the mode currently in force.
func (s *Shedder) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

// Admit applies the current mode to one request of class c: nil to
// proceed, ErrShed to refuse. Refusals and admissions are counted by
// class.
func (s *Shedder) Admit(c Class) error {
	s.mu.Lock()
	mode := s.mode
	s.mu.Unlock()
	switch {
	case mode == ModeShedAll, mode == ModeShedWrites && c == ClassWrite:
		if c == ClassWrite {
			s.mets.Inc(obs.CtrLoadShedWrites)
		} else {
			s.mets.Inc(obs.CtrLoadShedReads)
		}
		return fmt.Errorf("%w (mode %s, class %s)", ErrShed, mode, c)
	}
	s.mets.Inc(obs.CtrLoadAdmitted)
	return nil
}
