package resilience

import (
	"fmt"
	"sync/atomic"
)

// Budget is a deterministic count-based retry budget: at any point the
// total number of retries granted is at most base + ratio × (first
// attempts seen). Unlike token buckets refilled on a wall clock, the
// budget is a pure function of the request history, so tests replay it
// exactly and a retry storm can amplify offered load by at most a factor
// of (1 + ratio) regardless of timing.
type Budget struct {
	base  uint64
	ratio float64

	firsts  atomic.Uint64
	retries atomic.Uint64
	denied  atomic.Uint64
}

// NewBudget builds a retry budget granting at most base + ratio×firsts
// retries. base softens cold starts (the first few failures may retry
// even before any history accumulates); ratio is the steady-state retry
// fraction and must lie in [0, 1] — a ratio above 1 would let retries
// outnumber real work, which is the amplification spiral budgets exist
// to prevent.
func NewBudget(base uint64, ratio float64) (*Budget, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("resilience: retry ratio must be in [0,1], got %g", ratio)
	}
	return &Budget{base: base, ratio: ratio}, nil
}

// NoteAttempt records one first attempt (not a retry). Call once per
// operation before its first try.
func (b *Budget) NoteAttempt() { b.firsts.Add(1) }

// Allow tries to spend one retry from the budget, reporting whether the
// retry may proceed. Under concurrent callers the check is slightly
// conservative (a refused caller may have raced a granted one), never
// permissive: granted retries never exceed the budget line.
func (b *Budget) Allow() bool {
	granted := b.retries.Add(1)
	if float64(granted) > float64(b.base)+b.ratio*float64(b.firsts.Load()) {
		b.retries.Add(^uint64(0)) // refund
		b.denied.Add(1)
		return false
	}
	return true
}

// Stats reports the budget's history: first attempts, granted retries,
// and denied retries.
func (b *Budget) Stats() (firsts, retries, denied uint64) {
	return b.firsts.Load(), b.retries.Load(), b.denied.Load()
}
