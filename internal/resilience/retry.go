package resilience

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/contention"
	"repro/internal/obs"
)

// Retrier runs one operation under the full per-request contract: a
// context deadline checked between attempts, a server-wide retry Budget,
// and contention-policy backoff+jitter with the paper's cause split —
// chaos-injected spurious failures (ErrInjected) are backed off as
// contention.Spurious, which adaptive policies deliberately ignore
// (a spurious failure is not evidence of congestion), while real
// transient failures back off as contention.Interference.
type Retrier struct {
	// Policy is the backoff policy shared across attempts (nil = retry
	// immediately, the spin-equivalent).
	Policy *contention.Policy
	// Budget is the shared retry budget (nil = unlimited retries — only
	// sensible in tests).
	Budget *Budget
	// MaxAttempts caps attempts per operation, 0 for no cap (the budget
	// and deadline then bound the loop).
	MaxAttempts int

	mets *obs.Metrics
}

// SetMetrics attaches an optional metrics sink (nil disables): retries
// mirror to resilience_retries, budget refusals to
// resilience_budget_exhausted, deadline hits to
// resilience_deadline_exceeded.
func (r *Retrier) SetMetrics(m *obs.Metrics) { r.mets = m }

// Do runs op until it succeeds, fails permanently, exhausts the retry
// budget, or overruns ctx's deadline. proc attributes backoff waits and
// counters to a worker (contention.Ambient when anonymous). The first
// attempt is free — budgets gate retries, not work.
func (r *Retrier) Do(ctx context.Context, proc int, op func() error) error {
	if r.Budget != nil {
		r.Budget.NoteAttempt()
	}
	var w contention.Waiter
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		if r.MaxAttempts > 0 && attempt >= r.MaxAttempts {
			return fmt.Errorf("resilience: %d attempts exhausted: %w", attempt, err)
		}
		if ctx != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				r.mets.IncProc(proc, obs.CtrResDeadlineExceeded)
				return fmt.Errorf("resilience: deadline exceeded after %d attempt(s) (last failure: %v): %w", attempt, err, ctxErr)
			}
		}
		if r.Budget != nil && !r.Budget.Allow() {
			r.mets.IncProc(proc, obs.CtrResBudgetExhausted)
			return fmt.Errorf("%w (last failure: %v)", ErrBudgetExhausted, err)
		}
		r.mets.IncProc(proc, obs.CtrResRetries)
		cause := contention.Interference
		if errors.Is(err, ErrInjected) {
			cause = contention.Spurious
		}
		w.Wait(r.Policy, proc, cause)
	}
}
