package resilience

import (
	"fmt"
	"sync"
)

// BreakerState is the circuit breaker's state machine position.
type BreakerState uint8

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe is in flight; its outcome decides.
	BreakerHalfOpen
)

// String returns the state's mnemonic.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a client-side circuit breaker with half-open probing, driven
// by an injected monotone clock so tests (and deterministic load runs)
// replay exactly. The loadgen uses one Breaker per connection: threshold
// consecutive failures open the circuit; after cooldown clock units a
// single probe is admitted; a successful probe recloses the circuit,
// a failed one reopens it for another cooldown.
type Breaker struct {
	threshold int
	cooldown  uint64
	now       func() uint64

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt uint64
	probing  bool
	trips    uint64
}

// NewBreaker builds a breaker opening after threshold consecutive
// failures and probing after cooldown clock units.
func NewBreaker(threshold int, cooldown uint64, now func() uint64) (*Breaker, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("resilience: breaker threshold must be at least 1, got %d", threshold)
	}
	if cooldown < 1 {
		return nil, fmt.Errorf("resilience: breaker cooldown must be at least 1 clock unit, got %d", cooldown)
	}
	if now == nil {
		return nil, fmt.Errorf("resilience: breaker clock is required")
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}, nil
}

// Allow reports whether a request may be sent now. In BreakerOpen it
// starts the half-open probe once the cooldown has elapsed (the caller
// that receives true MUST report the outcome via Record); concurrent
// callers during a probe are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // a probe is already in flight
	default: // BreakerOpen
		if b.now()-b.openedAt < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	}
}

// Record reports the outcome of a request admitted by Allow.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if success {
			b.state = BreakerClosed
			b.fails = 0
		} else {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	case BreakerClosed:
		if success {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
	}
}

// State returns the breaker's current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
