package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

func TestBudgetDeterministicLine(t *testing.T) {
	if _, err := NewBudget(0, 1.5); err == nil {
		t.Error("ratio > 1 accepted")
	}
	if _, err := NewBudget(0, -0.1); err == nil {
		t.Error("negative ratio accepted")
	}

	b, err := NewBudget(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Cold start: the base grants 2 retries with no history.
	if !b.Allow() || !b.Allow() {
		t.Fatal("base allowance refused")
	}
	if b.Allow() {
		t.Fatal("budget exceeded its line on cold start")
	}
	// 10 first attempts extend the line to 2 + 5 = 7 total retries.
	for i := 0; i < 10; i++ {
		b.NoteAttempt()
	}
	granted := 0
	for b.Allow() {
		granted++
	}
	if granted != 5 {
		t.Fatalf("granted %d retries after 10 attempts, want 5 (line = base 2 + 0.5*10)", granted)
	}
	firsts, retries, denied := b.Stats()
	if firsts != 10 || retries != 7 || denied < 2 {
		t.Errorf("Stats = (%d, %d, %d), want (10, 7, >=2)", firsts, retries, denied)
	}
}

func TestRetrierTransientThenSuccess(t *testing.T) {
	m := obs.New()
	b, _ := NewBudget(10, 1)
	r := &Retrier{Budget: b}
	r.SetMetrics(m)

	calls := 0
	err := r.Do(context.Background(), 0, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("backend busy: %w", ErrTransient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success on call 3", err, calls)
	}
	if got := m.Snapshot().Get(obs.CtrResRetries); got != 2 {
		t.Errorf("resilience_retries = %d, want 2", got)
	}
}

func TestRetrierPermanentErrorNotRetried(t *testing.T) {
	r := &Retrier{}
	calls := 0
	sentinel := errors.New("no such key")
	err := r.Do(context.Background(), 0, func() error { calls++; return sentinel })
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want the permanent error after exactly 1", err, calls)
	}
}

func TestRetrierBudgetExhausted(t *testing.T) {
	m := obs.New()
	b, _ := NewBudget(1, 0) // one retry, ever
	r := &Retrier{Budget: b}
	r.SetMetrics(m)
	calls := 0
	err := r.Do(context.Background(), 0, func() error { calls++; return ErrTransient })
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Do = %v, want ErrBudgetExhausted", err)
	}
	if calls != 2 { // first attempt + the one budgeted retry
		t.Errorf("calls = %d, want 2", calls)
	}
	if got := m.Snapshot().Get(obs.CtrResBudgetExhausted); got != 1 {
		t.Errorf("resilience_budget_exhausted = %d, want 1", got)
	}
}

func TestRetrierDeadline(t *testing.T) {
	m := obs.New()
	r := &Retrier{}
	r.SetMetrics(m)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := r.Do(ctx, 0, func() error {
		calls++
		cancel() // deadline fires mid-operation
		return ErrTransient
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (no retry past the deadline)", calls)
	}
	if got := m.Snapshot().Get(obs.CtrResDeadlineExceeded); got != 1 {
		t.Errorf("resilience_deadline_exceeded = %d, want 1", got)
	}
}

func TestRetrierMaxAttempts(t *testing.T) {
	r := &Retrier{MaxAttempts: 3}
	calls := 0
	err := r.Do(context.Background(), 0, func() error { calls++; return ErrTransient })
	if err == nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want failure after exactly 3", err, calls)
	}
}

// TestShedderDecisionPath is the acceptance-criteria test: the load-shed
// decision path driven end to end on injected vitals and injected
// counters — no sockets, no clocks, fully deterministic.
func TestShedderDecisionPath(t *testing.T) {
	m := obs.New()
	v := Vitals{} // healthy
	s, err := NewShedder(func() Vitals { return v }, DefaultShedderConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	s.SetMetrics(m)
	var transitions []string
	s.OnTransition(func(from, to Mode, _ Vitals) {
		transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
	})

	// Healthy: everything admitted.
	if got := s.Reassess(); got != ModeHealthy {
		t.Fatalf("healthy vitals → %v", got)
	}
	if err := s.Admit(ClassWrite); err != nil {
		t.Fatalf("healthy write shed: %v", err)
	}
	if err := s.Admit(ClassRead); err != nil {
		t.Fatalf("healthy read shed: %v", err)
	}

	// Depth crosses the shed line → degraded: writes shed, reads flow.
	v = Vitals{QueueDepth: 100}
	if got := s.Reassess(); got != ModeShedWrites {
		t.Fatalf("depth at shed line → %v, want shed-writes", got)
	}
	if err := s.Admit(ClassWrite); !errors.Is(err, ErrShed) {
		t.Fatalf("degraded write admitted: %v", err)
	}
	if err := s.Admit(ClassRead); err != nil {
		t.Fatalf("degraded read shed: %v", err)
	}

	// Retry rate crosses the hard line → shed-all: reads shed too.
	v = Vitals{QueueDepth: 100, RetryRate: 0.7}
	if got := s.Reassess(); got != ModeShedAll {
		t.Fatalf("retry rate at hard line → %v, want shed-all", got)
	}
	if err := s.Admit(ClassRead); !errors.Is(err, ErrShed) {
		t.Fatalf("shed-all read admitted: %v", err)
	}

	// Hysteresis: vitals back under the shed lines but above clearance —
	// the mode must HOLD, not flap.
	v = Vitals{QueueDepth: 80, RetryRate: 0.2}
	if got := s.Reassess(); got != ModeShedAll {
		t.Fatalf("uncleared vitals de-escalated to %v", got)
	}

	// Full clearance: de-escalation is one level per reassessment.
	v = Vitals{QueueDepth: 10, RetryRate: 0.01, P99Drift: 1.0}
	if got := s.Reassess(); got != ModeShedWrites {
		t.Fatalf("first clear reassess → %v, want shed-writes", got)
	}
	if got := s.Reassess(); got != ModeHealthy {
		t.Fatalf("second clear reassess → %v, want healthy", got)
	}

	want := []string{
		"healthy->shed-writes",
		"shed-writes->shed-all",
		"shed-all->shed-writes",
		"shed-writes->healthy",
	}
	if fmt.Sprint(transitions) != fmt.Sprint(want) {
		t.Errorf("transitions = %v, want %v", transitions, want)
	}

	snap := m.Snapshot()
	if got := snap.Get(obs.CtrLoadDegradedTransitions); got != 4 {
		t.Errorf("load_degraded_transitions = %d, want 4", got)
	}
	if got := snap.Get(obs.CtrLoadShedWrites); got != 1 {
		t.Errorf("load_shed_writes = %d, want 1", got)
	}
	if got := snap.Get(obs.CtrLoadShedReads); got != 1 {
		t.Errorf("load_shed_reads = %d, want 1", got)
	}
	if got := snap.Get(obs.CtrLoadAdmitted); got != 3 {
		t.Errorf("load_admitted = %d, want 3", got)
	}
}

func TestShedderConfigValidation(t *testing.T) {
	vitals := func() Vitals { return Vitals{} }
	bad := DefaultShedderConfig(100)
	bad.DepthClear = 100 // clear >= shed kills the hysteresis band
	if _, err := NewShedder(vitals, bad); err == nil {
		t.Error("clear >= shed accepted")
	}
	if _, err := NewShedder(nil, DefaultShedderConfig(100)); err == nil {
		t.Error("nil vitals accepted")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	var now uint64
	b, err := NewBreaker(3, 10, func() uint64 { return now })
	if err != nil {
		t.Fatal(err)
	}

	// Two failures: still closed (threshold is 3).
	b.Record(false)
	b.Record(false)
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("breaker opened before threshold")
	}
	// A success resets the consecutive count.
	b.Record(true)
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the failure count")
	}
	// Third consecutive failure trips it.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("breaker not open after threshold failures")
	}

	// Cooldown not yet elapsed: still refusing.
	now = 9
	if b.Allow() {
		t.Fatal("breaker admitted during cooldown")
	}
	// Cooldown elapsed: exactly one probe goes through.
	now = 10
	if !b.Allow() {
		t.Fatal("half-open probe refused")
	}
	if b.State() != BreakerHalfOpen || b.Allow() {
		t.Fatal("second request admitted during probe")
	}
	// Failed probe: open again, new cooldown.
	b.Record(false)
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not reopen")
	}
	now = 25
	if !b.Allow() {
		t.Fatal("second probe refused after cooldown")
	}
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not reclose")
	}
	if b.Trips() != 2 {
		t.Errorf("Trips = %d, want 2", b.Trips())
	}
}

func TestBreakerValidation(t *testing.T) {
	clock := func() uint64 { return 0 }
	if _, err := NewBreaker(0, 1, clock); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := NewBreaker(1, 0, clock); err == nil {
		t.Error("cooldown 0 accepted")
	}
	if _, err := NewBreaker(1, 1, nil); err == nil {
		t.Error("nil clock accepted")
	}
}

func TestChaosInjection(t *testing.T) {
	m := obs.New()

	// Off: a nil plan injects nothing.
	off := NewChaos(nil)
	off.SetMetrics(m)
	if inj := off.Inject(0); inj != (Injection{}) {
		t.Fatalf("nil-plan chaos injected %+v", inj)
	}

	// burst∘kill against 2 workers: worker 0 eats the spurious storm
	// (burst targets proc 0), worker 1 is the kill victim.
	plan, err := fault.ParsePlan("burst∘kill", fault.PlanParams{Procs: 2, BurstLen: 3, CrashAt: 2, KillBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := NewChaos(plan)
	c.SetMetrics(m)

	spurious := 0
	for i := 0; i < 5; i++ {
		if c.Inject(0).Spurious {
			spurious++
		}
	}
	if spurious != 3 {
		t.Errorf("worker 0 saw %d spurious injections, want 3 (burst length)", spurious)
	}

	kills := 0
	for i := 0; i < 5; i++ {
		if c.Inject(1).Kill {
			kills++
		}
	}
	if kills != 1 {
		t.Errorf("worker 1 saw %d kills, want 1 (kill budget)", kills)
	}

	snap := m.Snapshot()
	if got := snap.Get(obs.CtrResChaosSpurious); got != 3 {
		t.Errorf("resilience_chaos_spurious = %d, want 3", got)
	}
	if got := snap.Get(obs.CtrResChaosKills); got != 1 {
		t.Errorf("resilience_chaos_kills = %d, want 1", got)
	}
	if st := c.Injected(); st.Spurious != 3 || st.Crashes != 1 {
		t.Errorf("plan accounting = %+v, want 3 spurious / 1 crash", st)
	}
	c.Release() // no crash component: must be a no-op, not a panic
}

// TestChaosCrashComponentWedges: the crash component blocks Inject — from
// the service's viewpoint a wedged worker — and Release unblocks it for
// teardown.
func TestChaosCrashComponentWedges(t *testing.T) {
	plan, err := fault.ParsePlan("crash", fault.PlanParams{Procs: 1, CrashAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := NewChaos(plan)
	if inj := c.Inject(0); inj != (Injection{}) { // op 0: before the crash point
		t.Fatalf("pre-crash op injected %+v", inj)
	}
	wedged := make(chan struct{})
	go func() {
		c.Inject(0) // op 1: blocks until Release
		close(wedged)
	}()
	select {
	case <-wedged:
		t.Fatal("crash component did not wedge the worker")
	case <-time.After(20 * time.Millisecond):
		// Still blocked after a generous scheduling window: wedged.
	}
	c.Release()
	<-wedged // must now unblock; test hangs (and times out) otherwise
}
