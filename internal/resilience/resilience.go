// Package resilience is the end-to-end robustness layer for services
// built on the repo's non-blocking structures — the contract ROADMAP item
// 2 asks every request path to satisfy: a deadline, a retry budget, an
// overload response, and a crash-recovery story, all observable through
// the obs counter taxonomy and all chaos-testable.
//
// The pieces compose but do not know about each other:
//
//   - Budget:  a deterministic, count-based retry budget — retries are a
//     fixed fraction of first attempts plus a burst allowance, so retry
//     storms amplify load by at most (1 + ratio) no matter how hard the
//     backend struggles.
//   - Retrier: a deadline- and budget-aware retry loop around one
//     operation, reusing internal/contention policies for backoff+jitter
//     and their cause split (injected spurious failures back off
//     differently from real interference, exactly like SC retry loops).
//   - Shedder: admission control keyed on injected vitals (live obs
//     counters in production, scripted values in tests) with hysteresis
//     and a degraded mode that sheds writes before reads.
//   - Breaker: a client-side circuit breaker with half-open probing,
//     driven by an injected monotone clock for determinism.
//   - Chaos:   a fault.Plan adapter that replays the in-process adversary
//     vocabulary (burst, interference, kill, crash, tagpressure) at the
//     service operation boundary, turning fault plans into end-to-end
//     service-level fault injection.
//
// Everything here is allocation-light, deterministic under injected
// clocks/vitals, and mirrors into the resilience_* / load_* counters.
package resilience

import "errors"

// Class is the admission class of a request: degraded mode sheds writes
// before reads because reads preserve acknowledged state while writes
// grow it.
type Class uint8

const (
	// ClassRead covers operations that do not grow shared state.
	ClassRead Class = iota
	// ClassWrite covers operations that allocate or mutate shared state.
	ClassWrite
)

// String returns the class's mnemonic.
func (c Class) String() string {
	if c == ClassWrite {
		return "write"
	}
	return "read"
}

var (
	// ErrTransient marks a failure worth retrying (backend contention,
	// transient exhaustion). Wrap it: fmt.Errorf("...: %w", ErrTransient).
	ErrTransient = errors.New("resilience: transient failure")

	// ErrInjected marks a chaos-injected spurious failure — transient,
	// but backed off like a spurious SC failure (no congestion signal).
	ErrInjected = errors.New("resilience: injected spurious failure")

	// ErrShed is returned when admission control refuses a request; the
	// caller should surface 503 and the client should back off.
	ErrShed = errors.New("resilience: request shed, server overloaded")

	// ErrBudgetExhausted is returned when the retry budget refuses
	// another attempt; the request fails without amplifying load.
	ErrBudgetExhausted = errors.New("resilience: retry budget exhausted")
)

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrInjected)
}
