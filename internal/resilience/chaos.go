package resilience

import (
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Injection is a chaos verdict for one service operation.
type Injection struct {
	// Spurious: fail the operation spuriously before it runs — the
	// service surfaces ErrInjected and the retry layer treats it as a
	// spurious (non-congestion) failure.
	Spurious bool
	// Interfere: adversarial pressure — the service surfaces a
	// congestion-class transient failure (backed off like real
	// interference), standing in for the plan's silent word rewrite.
	Interfere bool
	// Kill: fail-stop the worker's incarnation mid-operation; the
	// supervisor fences its lease, reclaims figure-level state, and
	// starts a fresh incarnation.
	Kill bool
}

// Chaos replays the in-process fault-plan vocabulary at the service
// operation boundary. The native substrate rejects machine-level
// FaultPlans by design (no simulated step to hook), so end-to-end chaos
// re-enters one level up: each worker consults the plan once per
// operation, with the worker id as the processor and the operation
// counted as one RSC attempt. burst → seeded spurious-failure storms,
// interference/tagpressure → congestion-class transient failures, kill →
// deterministic fail-stop worker kills, crash → a worker that blocks
// inside the plan forever (the wedge the watchdog must catch).
type Chaos struct {
	plan fault.Plan
	mets *obs.Metrics
}

// NewChaos wraps plan (typically from fault.ParsePlan). A nil plan gives
// a chaos layer that injects nothing — callers need no nil checks.
func NewChaos(plan fault.Plan) *Chaos { return &Chaos{plan: plan} }

// SetMetrics attaches an optional metrics sink (nil disables) to the
// chaos layer (resilience_chaos_spurious / resilience_chaos_kills) and to
// the plan itself (fault_inj_*), so service chaos shows up in the same
// counters as in-process chaos.
func (c *Chaos) SetMetrics(m *obs.Metrics) {
	c.mets = m
	if c.plan != nil {
		c.plan.SetMetrics(m)
	}
}

// Plan returns the wrapped plan (nil when chaos is off).
func (c *Chaos) Plan() fault.Plan { return c.plan }

// Inject consults the plan for worker's next operation. A crash
// component blocks in here forever — deliberately: that is the wedge
// signature the watchdog exists to detect, arising at a real operation
// boundary rather than inside a simulated step.
func (c *Chaos) Inject(worker int) Injection {
	if c == nil || c.plan == nil {
		return Injection{}
	}
	inj := c.plan.BeforeOp(worker, machine.OpRSC, 0)
	out := Injection{Spurious: inj.SpuriousRSC, Interfere: inj.Interfere, Kill: inj.Crash}
	if out.Spurious {
		c.mets.IncProc(worker, obs.CtrResChaosSpurious)
	}
	if out.Kill {
		c.mets.IncProc(worker, obs.CtrResChaosKills)
	}
	return out
}

// Injected returns the plan's own injection accounting (zero when chaos
// is off).
func (c *Chaos) Injected() fault.Stats {
	if c == nil || c.plan == nil {
		return fault.Stats{}
	}
	return c.plan.Injected()
}

// Release unblocks any crash components (idempotent), so teardown can
// drain workers wedged inside Inject.
func (c *Chaos) Release() {
	if c == nil {
		return
	}
	releasePlan(c.plan)
}

func releasePlan(p fault.Plan) {
	switch v := p.(type) {
	case *fault.Crash:
		v.Release()
	case *fault.Composed:
		for _, sub := range v.Plans() {
			releasePlan(sub)
		}
	}
}
