package spec

import (
	"sync"
	"testing"
)

func TestNewRegisterValidation(t *testing.T) {
	if _, err := NewRegister(0, 0); err == nil {
		t.Error("NewRegister(0) should error")
	}
	if _, err := NewRegister(1, 0); err != nil {
		t.Errorf("NewRegister(1) unexpected error: %v", err)
	}
}

func TestMustNewRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewRegister(-1) did not panic")
		}
	}()
	MustNewRegister(-1, 0)
}

func TestReadWrite(t *testing.T) {
	r := MustNewRegister(2, 10)
	if got := r.Read(); got != 10 {
		t.Errorf("initial Read = %d, want 10", got)
	}
	r.Write(20)
	if got := r.Read(); got != 20 {
		t.Errorf("Read after Write = %d, want 20", got)
	}
}

func TestCASSemantics(t *testing.T) {
	r := MustNewRegister(1, 5)
	if !r.CAS(5, 6) {
		t.Error("CAS with matching old failed")
	}
	if r.CAS(5, 7) {
		t.Error("CAS with stale old succeeded")
	}
	if got := r.Read(); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
	// No-op CAS succeeds.
	if !r.CAS(6, 6) {
		t.Error("no-op CAS failed")
	}
}

func TestLLSCBasic(t *testing.T) {
	r := MustNewRegister(2, 0)
	v := r.LL(0)
	if v != 0 {
		t.Fatalf("LL = %d, want 0", v)
	}
	if !r.VL(0) {
		t.Fatal("VL false immediately after LL")
	}
	if !r.SC(0, 1) {
		t.Fatal("uncontended SC failed")
	}
	if got := r.Read(); got != 1 {
		t.Errorf("value = %d, want 1", got)
	}
}

func TestSCInvalidatesAllProcesses(t *testing.T) {
	r := MustNewRegister(3, 0)
	r.LL(0)
	r.LL(1)
	r.LL(2)
	if !r.SC(1, 5) {
		t.Fatal("SC by p1 failed")
	}
	if r.VL(0) || r.VL(2) {
		t.Error("VL true for other processes after successful SC")
	}
	if r.SC(0, 6) {
		t.Error("SC by p0 succeeded after p1's SC")
	}
	if r.SC(2, 7) {
		t.Error("SC by p2 succeeded after p1's SC")
	}
}

func TestWriteInvalidates(t *testing.T) {
	r := MustNewRegister(2, 0)
	r.LL(0)
	r.Write(9)
	if r.VL(0) {
		t.Error("VL true after Write")
	}
	if r.SC(0, 1) {
		t.Error("SC succeeded after Write")
	}
}

func TestSuccessfulCASInvalidates(t *testing.T) {
	r := MustNewRegister(2, 0)
	r.LL(0)
	if !r.CAS(0, 3) {
		t.Fatal("CAS failed")
	}
	if r.VL(0) {
		t.Error("VL true after value-changing CAS")
	}
}

func TestNoOpCASDoesNotInvalidate(t *testing.T) {
	// Figure 2's CAS only stores when it changes the value; a CAS(v,v)
	// linearizes as a read and must not clear valid bits.
	r := MustNewRegister(2, 4)
	r.LL(0)
	if !r.CAS(4, 4) {
		t.Fatal("no-op CAS failed")
	}
	if !r.VL(0) {
		t.Error("VL false after no-op CAS")
	}
	if !r.SC(0, 5) {
		t.Error("SC failed after no-op CAS")
	}
}

func TestFailedCASDoesNotInvalidate(t *testing.T) {
	r := MustNewRegister(2, 4)
	r.LL(0)
	if r.CAS(9, 1) {
		t.Fatal("stale CAS succeeded")
	}
	if !r.VL(0) {
		t.Error("VL false after failed CAS")
	}
}

func TestConcurrentSCCounter(t *testing.T) {
	const procs = 8
	const rounds = 2000
	r := MustNewRegister(procs, 0)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for {
					v := r.LL(p)
					if r.SC(p, v+1) {
						break
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if got := r.Read(); got != procs*rounds {
		t.Errorf("final counter = %d, want %d", got, procs*rounds)
	}
}
