// Package spec implements the paper's Figure 2: the "normal" atomic
// semantics of CAS and LL/VL/SC, realized with a single lock per variable.
//
// This implementation is intentionally blocking — it is the trivially
// correct construction the paper's footnote 1 dismisses ("it is
// straightforward to implement LL and SC using locks, but this defeats the
// purpose of the non-blocking algorithms that use them"). It serves two
// roles in this repository:
//
//   - the sequential/atomic oracle that every non-blocking implementation
//     is cross-checked against in randomized stress tests and in the
//     linearizability checker's sequential model; and
//   - the lock-based baseline for the application benchmarks (E8).
//
// Semantics (Figure 2, for process p; valid is a per-variable array of
// booleans, one per process):
//
//	CAS(X,v,w) ≡ if X = v then X := w; return true else return false
//	LL(X)      ≡ valid[p] := true; return X
//	VL(X)      ≡ return valid[p]
//	SC(X,v)    ≡ if valid[p] then X := v; valid[i] := false for all i;
//	             return true else return false
//
// The semantics of VL and SC are undefined if p has not executed an LL
// since its most recent SC; like the paper, this implementation leaves that
// usage to the caller (it behaves as if the last LL were still pending).
package spec

import (
	"fmt"
	"sync"
)

// Register is one shared variable with Figure 2 semantics for N processes.
type Register struct {
	mu    sync.Mutex
	val   uint64
	valid []bool
}

// NewRegister creates a Register for n processes holding initial.
func NewRegister(n int, initial uint64) (*Register, error) {
	if n < 1 {
		return nil, fmt.Errorf("spec: process count must be at least 1, got %d", n)
	}
	return &Register{val: initial, valid: make([]bool, n)}, nil
}

// MustNewRegister is NewRegister for statically valid arguments.
func MustNewRegister(n int, initial uint64) *Register {
	r, err := NewRegister(n, initial)
	if err != nil {
		panic(err)
	}
	return r
}

// Read returns the current value (an atomic read).
func (r *Register) Read() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

// Write sets the value and invalidates all outstanding LLs, as any
// successful store must under Figure 2 semantics.
func (r *Register) Write(v uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.val = v
	r.invalidateAll()
}

// CAS atomically compares the value with old and, if equal, replaces it
// with new. A successful CAS that changes the value invalidates all
// outstanding LLs (it is a store); a no-op CAS (old == new) does not.
func (r *Register) CAS(old, new uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.val != old {
		return false
	}
	if old != new {
		r.val = new
		r.invalidateAll()
	}
	return true
}

// LL performs a load-linked for process p.
func (r *Register) LL(p int) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.valid[p] = true
	return r.val
}

// VL reports whether process p's outstanding LL is still valid.
func (r *Register) VL(p int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.valid[p]
}

// SC attempts process p's store-conditional of v. It succeeds iff no
// successful SC (or other store) has occurred since p's last LL, in which
// case it stores v and invalidates all outstanding LLs.
func (r *Register) SC(p int, v uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.valid[p] {
		return false
	}
	r.val = v
	r.invalidateAll()
	return true
}

func (r *Register) invalidateAll() {
	for i := range r.valid {
		r.valid[i] = false
	}
}
