package word

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewLayoutBounds(t *testing.T) {
	tests := []struct {
		name    string
		tagBits uint
		wantErr bool
	}{
		{"min", 1, false},
		{"default", 48, false},
		{"max", 63, false},
		{"zero", 0, true},
		{"full word", 64, true},
		{"over", 70, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l, err := NewLayout(tt.tagBits)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewLayout(%d) error = %v, wantErr %v", tt.tagBits, err, tt.wantErr)
			}
			if err == nil && l.TagBits+l.ValBits != WordBits {
				t.Errorf("TagBits+ValBits = %d, want %d", l.TagBits+l.ValBits, WordBits)
			}
		})
	}
}

func TestMustLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLayout(0) did not panic")
		}
	}()
	MustLayout(0)
}

func TestPackUnpackExamples(t *testing.T) {
	l := MustLayout(48)
	w := l.Pack(0x123456789ABC, 0xDEF0)
	if got := l.Tag(w); got != 0x123456789ABC {
		t.Errorf("Tag = %#x, want %#x", got, 0x123456789ABC)
	}
	if got := l.Val(w); got != 0xDEF0 {
		t.Errorf("Val = %#x, want %#x", got, 0xDEF0)
	}
}

func TestPackMasksOverflow(t *testing.T) {
	l := MustLayout(8)
	w := l.Pack(0x1FF, math.MaxUint64)
	if got := l.Tag(w); got != 0xFF {
		t.Errorf("overflowed tag = %#x, want masked %#x", got, 0xFF)
	}
	if got := l.Val(w); got != l.MaxVal() {
		t.Errorf("overflowed val = %#x, want masked %#x", got, l.MaxVal())
	}
}

func TestPackRoundTripQuick(t *testing.T) {
	for _, tagBits := range []uint{1, 8, 16, 32, 48, 63} {
		l := MustLayout(tagBits)
		f := func(tag, val uint64) bool {
			tag &= l.MaxTag()
			val &= l.MaxVal()
			w := l.Pack(tag, val)
			return l.Tag(w) == tag && l.Val(w) == val
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("tagBits=%d: %v", tagBits, err)
		}
	}
}

func TestIncDecTagWrap(t *testing.T) {
	l := MustLayout(4)
	if got := l.IncTag(l.MaxTag()); got != 0 {
		t.Errorf("IncTag(max) = %d, want 0", got)
	}
	if got := l.DecTag(0); got != l.MaxTag() {
		t.Errorf("DecTag(0) = %d, want %d", got, l.MaxTag())
	}
	// ⊕1 then ⊖1 is the identity on the tag domain.
	f := func(tag uint64) bool {
		tag &= l.MaxTag()
		return l.DecTag(l.IncTag(tag)) == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBump(t *testing.T) {
	l := MustLayout(48)
	w := l.Pack(7, 100)
	b := l.Bump(w, 200)
	if l.Tag(b) != 8 || l.Val(b) != 200 {
		t.Errorf("Bump = (tag %d, val %d), want (8, 200)", l.Tag(b), l.Val(b))
	}
	// Bump at tag boundary wraps to zero.
	w = l.Pack(l.MaxTag(), 1)
	b = l.Bump(w, 2)
	if l.Tag(b) != 0 || l.Val(b) != 2 {
		t.Errorf("Bump at max tag = (tag %d, val %d), want (0, 2)", l.Tag(b), l.Val(b))
	}
}

func TestAddSubMod(t *testing.T) {
	tests := []struct {
		x, delta, m, wantAdd, wantSub uint64
	}{
		{0, 1, 5, 1, 4},
		{4, 1, 5, 0, 3},
		{4, 7, 5, 1, 2},
		{3, 0, 5, 3, 3},
		{0, 10, 1, 0, 0},
	}
	for _, tt := range tests {
		if got := AddMod(tt.x, tt.delta, tt.m); got != tt.wantAdd {
			t.Errorf("AddMod(%d,%d,%d) = %d, want %d", tt.x, tt.delta, tt.m, got, tt.wantAdd)
		}
		if got := SubMod(tt.x, tt.delta, tt.m); got != tt.wantSub {
			t.Errorf("SubMod(%d,%d,%d) = %d, want %d", tt.x, tt.delta, tt.m, got, tt.wantSub)
		}
	}
}

func TestAddSubModInverseQuick(t *testing.T) {
	f := func(x, delta uint64, m16 uint16) bool {
		m := uint64(m16) + 1 // modulus in [1, 65536]
		x %= m
		return SubMod(AddMod(x, delta, m), delta, m) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddModPanicsOnZeroModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddMod with modulus 0 did not panic")
		}
	}()
	AddMod(1, 1, 0)
}

func TestBitsFor(t *testing.T) {
	tests := []struct {
		n    uint64
		want uint
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {math.MaxUint64, 64},
	}
	for _, tt := range tests {
		if got := BitsFor(tt.n); got != tt.want {
			t.Errorf("BitsFor(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestBitsForCoversRangeQuick(t *testing.T) {
	f := func(n uint64) bool {
		bits := BitsFor(n)
		return maxOf(bits) >= n && (bits == 1 || maxOf(bits-1) < n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeToWrapNineYears(t *testing.T) {
	// The paper: a 48-bit tag at a million updates per second wraps after
	// about nine years.
	d := TimeToWrap(48, 1e6)
	years := d.Hours() / 24 / 365
	if years < 8.5 || years > 9.5 {
		t.Errorf("48-bit tag at 1e6 updates/s wraps after %.2f years, want ~9", years)
	}
}

func TestTimeToWrapSmallTags(t *testing.T) {
	// An 8-bit tag at a million updates per second wraps in 256 µs.
	d := TimeToWrap(8, 1e6)
	if d != 256*time.Microsecond {
		t.Errorf("8-bit tag wrap = %v, want 256µs", d)
	}
}

func TestTimeToWrapSaturates(t *testing.T) {
	if d := TimeToWrap(63, 1); d != time.Duration(math.MaxInt64) {
		t.Errorf("wide tag should saturate, got %v", d)
	}
	if d := TimeToWrap(48, 0); d != time.Duration(math.MaxInt64) {
		t.Errorf("zero rate should saturate, got %v", d)
	}
}

func TestNewFieldsValidation(t *testing.T) {
	if _, err := NewFields(); err == nil {
		t.Error("NewFields() with no fields should error")
	}
	if _, err := NewFields(8, 0, 8); err == nil {
		t.Error("NewFields with zero-width field should error")
	}
	if _, err := NewFields(32, 32, 1); err == nil {
		t.Error("NewFields exceeding 64 bits should error")
	}
	if _, err := NewFields(32, 32); err != nil {
		t.Errorf("NewFields(32,32) unexpected error: %v", err)
	}
}

func TestFieldsPackGet(t *testing.T) {
	// Figure 7's layout: tag | cnt | pid | val.
	f, err := NewFields(8, 7, 4, 45)
	if err != nil {
		t.Fatal(err)
	}
	w := f.Pack(0xAB, 0x55, 0xC, 0x123456789AB)
	want := []uint64{0xAB, 0x55, 0xC, 0x123456789AB}
	for i, wv := range want {
		if got := f.Get(w, i); got != wv {
			t.Errorf("Get(field %d) = %#x, want %#x", i, got, wv)
		}
	}
}

func TestFieldsSet(t *testing.T) {
	f, err := NewFields(16, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	w := f.Pack(1, 2, 3)
	w = f.Set(w, 1, 0xFFFF)
	if got := f.Get(w, 0); got != 1 {
		t.Errorf("field 0 disturbed: %d", got)
	}
	if got := f.Get(w, 1); got != 0xFFFF {
		t.Errorf("field 1 = %#x, want 0xFFFF", got)
	}
	if got := f.Get(w, 2); got != 3 {
		t.Errorf("field 2 disturbed: %d", got)
	}
}

func TestFieldsPackPanicsOnArity(t *testing.T) {
	f, err := NewFields(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Pack with wrong arity did not panic")
		}
	}()
	f.Pack(1, 2, 3)
}

func TestFieldsRoundTripQuick(t *testing.T) {
	f, err := NewFields(8, 7, 4, 45)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c, d uint64) bool {
		a &= f.Max(0)
		b &= f.Max(1)
		c &= f.Max(2)
		d &= f.Max(3)
		w := f.Pack(a, b, c, d)
		return f.Get(w, 0) == a && f.Get(w, 1) == b && f.Get(w, 2) == c && f.Get(w, 3) == d
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldsSetPreservesOthersQuick(t *testing.T) {
	f, err := NewFields(10, 10, 10, 34)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(w, v uint64, which uint8) bool {
		i := int(which) % f.NumFields()
		updated := f.Set(w, i, v)
		for j := 0; j < f.NumFields(); j++ {
			if j == i {
				if f.Get(updated, j) != v&f.Max(j) {
					return false
				}
			} else if f.Get(updated, j) != f.Get(w, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
