// Package word provides bit-field layouts for packing tags and data values
// into single 64-bit machine words, together with the modular tag arithmetic
// (the paper's ⊕ and ⊖ operators) used by every algorithm in Moir's
// "Practical Implementations of Non-Blocking Synchronization Primitives"
// (PODC 1997).
//
// All of the paper's one-word algorithms store a record
//
//	wordtype = record tag: tagtype; val: valtype end
//
// in a single machine word. Layout describes one such split. Fields
// generalizes it to an arbitrary sequence of bit fields, which the
// bounded-tag algorithm (the paper's Figure 7) needs for its
// tag|cnt|pid|val words.
package word

import (
	"fmt"
	"math"
	"time"
)

// WordBits is the machine word size assumed throughout: every shared word
// manipulated by the implementations is a uint64.
const WordBits = 64

// Layout is a tag|value split of a 64-bit word. The tag occupies the high
// TagBits bits and the value the low ValBits bits, so that packed words with
// equal tags compare like their values.
type Layout struct {
	TagBits uint
	ValBits uint
}

// NewLayout returns a Layout reserving tagBits of each 64-bit word for the
// tag and the remainder for the value. Both fields must be at least one bit
// wide.
func NewLayout(tagBits uint) (Layout, error) {
	if tagBits < 1 || tagBits > WordBits-1 {
		return Layout{}, fmt.Errorf("word: tag width %d out of range [1,%d]", tagBits, WordBits-1)
	}
	return Layout{TagBits: tagBits, ValBits: WordBits - tagBits}, nil
}

// MustLayout is NewLayout for statically known widths; it panics on an
// invalid width and is intended for package-level defaults and tests.
func MustLayout(tagBits uint) Layout {
	l, err := NewLayout(tagBits)
	if err != nil {
		panic(err)
	}
	return l
}

// DefaultLayout is the split used by the paper's running example: a 48-bit
// tag (wraparound takes ~9 years at one million updates per second) and 16
// bits of data.
var DefaultLayout = MustLayout(48)

// MaxTag returns the largest representable tag; tags live in [0, MaxTag]
// and increment modulo MaxTag+1.
func (l Layout) MaxTag() uint64 {
	return maxOf(l.TagBits)
}

// MaxVal returns the largest representable data value.
func (l Layout) MaxVal() uint64 {
	return maxOf(l.ValBits)
}

func maxOf(bits uint) uint64 {
	if bits >= WordBits {
		return math.MaxUint64
	}
	return (1 << bits) - 1
}

// Pack combines a tag and a value into one word. Arguments are masked to
// their field widths, mirroring the silent modular behaviour of fixed-width
// hardware fields.
func (l Layout) Pack(tag, val uint64) uint64 {
	return (tag&l.MaxTag())<<l.ValBits | val&l.MaxVal()
}

// Tag extracts the tag field of a packed word.
func (l Layout) Tag(w uint64) uint64 {
	return w >> l.ValBits
}

// Val extracts the value field of a packed word.
func (l Layout) Val(w uint64) uint64 {
	return w & l.MaxVal()
}

// IncTag returns tag ⊕ 1: the successor of tag modulo the tag range.
func (l Layout) IncTag(tag uint64) uint64 {
	return (tag + 1) & l.MaxTag()
}

// DecTag returns tag ⊖ 1: the predecessor of tag modulo the tag range.
func (l Layout) DecTag(tag uint64) uint64 {
	return (tag - 1) & l.MaxTag()
}

// Bump returns the packed word with the tag incremented (mod range) and the
// value replaced — exactly the new word prepared by a successful SC in the
// paper's Figures 3-5.
func (l Layout) Bump(w, newVal uint64) uint64 {
	return l.Pack(l.IncTag(l.Tag(w)), newVal)
}

// AddMod returns (x + delta) mod m. It is the paper's ⊕ operator for
// arbitrary (not power-of-two) ranges, as needed by Figure 7's
// cnt: 0..Nk and tag: 0..2Nk fields.
func AddMod(x, delta, m uint64) uint64 {
	if m == 0 {
		panic("word: AddMod modulus must be positive")
	}
	return (x + delta%m) % m
}

// SubMod returns (x - delta) mod m, the ⊖ operator.
func SubMod(x, delta, m uint64) uint64 {
	if m == 0 {
		panic("word: SubMod modulus must be positive")
	}
	d := delta % m
	return (x + m - d) % m
}

// BitsFor returns the number of bits needed to represent all values in
// [0, n], i.e. ceil(log2(n+1)) with a minimum of 1.
func BitsFor(n uint64) uint {
	bits := uint(1)
	for maxOf(bits) < n {
		bits++
	}
	return bits
}

// TimeToWrap returns how long a tag of the given width survives before
// wrapping around, assuming the variable is modified updatesPerSecond times
// per second. This reproduces the paper's Section 1 arithmetic: a 48-bit tag
// at 10^6 updates/second wraps only after roughly nine years.
//
// The returned duration saturates at the maximum representable
// time.Duration (about 292 years) for wide tags.
func TimeToWrap(tagBits uint, updatesPerSecond float64) time.Duration {
	if updatesPerSecond <= 0 {
		return time.Duration(math.MaxInt64)
	}
	updates := math.Pow(2, float64(tagBits))
	seconds := updates / updatesPerSecond
	if seconds >= float64(math.MaxInt64)/float64(time.Second) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(seconds * float64(time.Second))
}

// Fields is a general sequence of bit fields packed into one 64-bit word,
// field 0 occupying the most significant bits. Figure 7's
// wordtype = record tag: 0..2Nk; cnt: 0..Nk; pid: 0..N-1; val: valtype end
// is a four-field instance.
type Fields struct {
	widths []uint
	shifts []uint
}

// NewFields builds a Fields layout from the given widths, most significant
// first. The widths must each be at least 1 and sum to at most 64.
func NewFields(widths ...uint) (Fields, error) {
	if len(widths) == 0 {
		return Fields{}, fmt.Errorf("word: NewFields requires at least one field")
	}
	var total uint
	for i, w := range widths {
		if w < 1 {
			return Fields{}, fmt.Errorf("word: field %d has zero width", i)
		}
		total += w
	}
	if total > WordBits {
		return Fields{}, fmt.Errorf("word: fields total %d bits, exceeding the %d-bit word", total, WordBits)
	}
	f := Fields{
		widths: append([]uint(nil), widths...),
		shifts: make([]uint, len(widths)),
	}
	shift := total
	for i, w := range widths {
		shift -= w
		f.shifts[i] = shift
	}
	return f, nil
}

// NumFields returns the number of fields in the layout.
func (f Fields) NumFields() int { return len(f.widths) }

// Width returns the width in bits of field i.
func (f Fields) Width(i int) uint { return f.widths[i] }

// Max returns the largest value representable in field i.
func (f Fields) Max(i int) uint64 { return maxOf(f.widths[i]) }

// Pack combines one value per field into a single word. It panics if the
// number of values differs from the number of fields; values are masked to
// their field widths.
func (f Fields) Pack(vals ...uint64) uint64 {
	if len(vals) != len(f.widths) {
		panic(fmt.Sprintf("word: Pack got %d values for %d fields", len(vals), len(f.widths)))
	}
	var w uint64
	for i, v := range vals {
		w |= (v & f.Max(i)) << f.shifts[i]
	}
	return w
}

// Get extracts field i from a packed word.
func (f Fields) Get(w uint64, i int) uint64 {
	return (w >> f.shifts[i]) & f.Max(i)
}

// Set returns the packed word with field i replaced by v (masked to the
// field width).
func (f Fields) Set(w uint64, i int, v uint64) uint64 {
	mask := f.Max(i) << f.shifts[i]
	return w&^mask | (v&f.Max(i))<<f.shifts[i]
}
