package word

import "testing"

// FuzzLayoutRoundTrip checks pack/unpack identity over the full input
// space for every legal tag width.
func FuzzLayoutRoundTrip(f *testing.F) {
	f.Add(uint(48), uint64(123), uint64(456))
	f.Add(uint(1), uint64(0), uint64(^uint64(0)))
	f.Add(uint(63), uint64(^uint64(0)), uint64(1))
	f.Fuzz(func(t *testing.T, tagBits uint, tag, val uint64) {
		tagBits = tagBits%63 + 1 // [1,63]
		l := MustLayout(tagBits)
		tag &= l.MaxTag()
		val &= l.MaxVal()
		w := l.Pack(tag, val)
		if l.Tag(w) != tag || l.Val(w) != val {
			t.Fatalf("roundtrip failed: tagBits=%d tag=%#x val=%#x word=%#x -> (%#x,%#x)",
				tagBits, tag, val, w, l.Tag(w), l.Val(w))
		}
		// Bump increments the tag modulo range and replaces the value.
		b := l.Bump(w, val)
		if l.Tag(b) != l.IncTag(tag) || l.Val(b) != val {
			t.Fatalf("bump failed: %#x -> %#x", w, b)
		}
	})
}

// FuzzFieldsRoundTrip checks the general multi-field layout: pack then
// get recovers every field, and set disturbs only its target.
func FuzzFieldsRoundTrip(f *testing.F) {
	f.Add(uint(8), uint(7), uint(4), uint64(1), uint64(2), uint64(3), uint64(4))
	f.Fuzz(func(t *testing.T, w1, w2, w3 uint, a, b, c, d uint64) {
		w1, w2, w3 = w1%16+1, w2%16+1, w3%16+1
		w4 := uint(64) - w1 - w2 - w3
		fl, err := NewFields(w1, w2, w3, w4)
		if err != nil {
			t.Fatalf("NewFields(%d,%d,%d,%d): %v", w1, w2, w3, w4, err)
		}
		vals := []uint64{a & fl.Max(0), b & fl.Max(1), c & fl.Max(2), d & fl.Max(3)}
		w := fl.Pack(vals...)
		for i, want := range vals {
			if got := fl.Get(w, i); got != want {
				t.Fatalf("field %d = %#x, want %#x", i, got, want)
			}
		}
		w2x := fl.Set(w, 1, d)
		if fl.Get(w2x, 1) != d&fl.Max(1) {
			t.Fatal("Set target wrong")
		}
		for _, i := range []int{0, 2, 3} {
			if fl.Get(w2x, i) != vals[i] {
				t.Fatalf("Set disturbed field %d", i)
			}
		}
	})
}

// FuzzModularArithmetic checks ⊕/⊖ inversion for arbitrary moduli.
func FuzzModularArithmetic(f *testing.F) {
	f.Add(uint64(3), uint64(7), uint64(5))
	f.Fuzz(func(t *testing.T, x, delta, m uint64) {
		m = m%100000 + 1
		x %= m
		if got := SubMod(AddMod(x, delta, m), delta, m); got != x {
			t.Fatalf("SubMod(AddMod(%d,%d,%d)) = %d", x, delta, m, got)
		}
	})
}
