package word

import "testing"

func BenchmarkLayoutPack(b *testing.B) {
	l := MustLayout(48)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = l.Pack(uint64(i), uint64(i))
	}
	_ = sink
}

func BenchmarkLayoutUnpack(b *testing.B) {
	l := MustLayout(48)
	w := l.Pack(123, 456)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = l.Tag(w) + l.Val(w)
	}
	_ = sink
}

func BenchmarkLayoutBump(b *testing.B) {
	l := MustLayout(48)
	w := l.Pack(0, 0)
	for i := 0; i < b.N; i++ {
		w = l.Bump(w, uint64(i))
	}
	_ = w
}

func BenchmarkFieldsPackGet(b *testing.B) {
	f, err := NewFields(8, 7, 4, 45)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		w := f.Pack(uint64(i), uint64(i), uint64(i), uint64(i))
		sink = f.Get(w, 0) + f.Get(w, 3)
	}
	_ = sink
}
