// Package contention provides pluggable contention management for the
// SC/CAS retry loops that realize the paper's Figures 3-7 and the data
// structures built on them.
//
// Every algorithm in the paper is an optimistic loop: LL (or RLL), compute,
// SC (or RSC), retry on failure. The theorems guarantee such loops are
// lock-free — an SC fails only because another SC succeeded — but they say
// nothing about *throughput* under contention, and in practice naked retry
// loops collapse at high processor counts: every failed SC re-enters the
// race immediately, so the window of each winner is crowded with losers
// whose retries invalidate each other. Related work on scalable primitives
// (Ha, Tsigas & Anshus, NB-FEB) identifies retry-loop contention, not
// primitive semantics, as the dominant scalability limit.
//
// This package separates the *what to do on a failed attempt* decision
// from the loops themselves. A retry site keeps a Waiter (a two-word,
// allocation-free value) and calls Waiter.Wait after each failed attempt,
// passing the configured Policy and the failure's Cause. The policies:
//
//   - None: retry immediately (the pre-contention-management behaviour),
//     except that every noneYieldEvery-th consecutive failure yields the
//     processor, so a retry loop can never starve the very goroutine whose
//     SC it is waiting on when GOMAXPROCS=1.
//   - Spin: a fixed busy-wait between attempts — classic constant backoff.
//   - ExponentialBackoff: the busy-wait doubles with each consecutive
//     failure, up to a cap, with jitter drawn from a deterministic
//     per-process PRNG (see "Determinism" below) so that symmetric losers
//     don't re-collide in lockstep.
//   - Adaptive: backs off like ExponentialBackoff but only on
//     Interference failures — never on Spurious ones. The paper proves
//     (Theorems 1, 3) that spurious RSC failures cost only bounded extra
//     loops and carry no information about other processes, so backing
//     off on them wastes exactly the latency the theorems bound; an
//     interference failure, by contrast, proves another process succeeded
//     and predicts a crowded variable. When a metrics sink is attached,
//     Adaptive additionally samples the obs SC-failure-by-cause counters
//     (sc_fail_interference vs sc_fail_spurious/sc_retry) and raises or
//     lowers a shared congestion level, so its ceiling tracks the
//     observed interference mix of the whole workload.
//
// # Lock-freedom
//
// Policies only ever insert a finite wait (at most Policy.WaitBound spin
// units — the cap is a hard bound, not a heuristic) between attempts, and
// never acquire anything: a process that stalls or crashes mid-wait delays
// nobody else. Threading a policy through a lock-free loop therefore
// preserves lock-freedom: in any schedule in which a successful SC is
// enabled, the process attempting it reaches the SC after a bounded number
// of wait units. The exhaustive-interleaving tests in sched_test.go check
// this for every policy over every schedule of small workloads.
//
// # Determinism
//
// Waits perform no shared-memory operations on the simulated machine and
// hit no scheduling points of the internal/sched controller, so a policy
// never changes the scheduling tree: the exhaustive explorer's replayed
// decision prefixes reach identical ready sets with or without contention
// management (the schedule-determinism tests assert this). Backoff jitter
// comes from a per-Waiter xorshift PRNG seeded from the policy seed and
// the caller's process id (or a policy-level sequence for ambient
// callers), never from the wall clock or math/rand's global state.
package contention

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Cause classifies a failed SC/CAS attempt, mirroring the obs taxonomy's
// split of SC failures.
type Cause uint8

const (
	// Interference: the attempt failed because another process's SC
	// succeeded (sc_fail_interference) — the variable is contended.
	Interference Cause = iota
	// Spurious: the attempt failed spuriously (sc_fail_spurious /
	// sc_retry) — injected RSC failures on the simulated machine,
	// impossible on real CAS hardware. Carries no contention signal.
	Spurious
)

// Ambient is the proc argument for call sites without a paper-style
// process identity (the hardware-path primitives of Figure 4). Jitter
// seeds then come from a policy-level sequence instead of the process id.
const Ambient = -1

// Kind enumerates the built-in policies.
type Kind uint8

const (
	KindNone Kind = iota
	KindSpin
	KindBackoff
	KindAdaptive
)

// Tuning constants. A "unit" is one execution of relax (roughly tens of
// nanoseconds of pure computation); yields are interleaved so that large
// waits release the processor on GOMAXPROCS=1 hosts.
const (
	// noneYieldEvery: under None (or no policy), every this-many
	// consecutive failures trigger a runtime.Gosched. This is the audit
	// fix for unbounded naked spinning: bounded spinning between yields.
	noneYieldEvery = 64
	// yieldEveryUnits: within one wait, every this-many spin units yield
	// instead of spinning.
	yieldEveryUnits = 8
	// relaxIters: iterations of the mixing loop per spin unit.
	relaxIters = 24
	// maxShift caps the backoff exponent so base<<e cannot overflow.
	maxShift = 16
	// adaptiveSampleEvery: Adaptive consults the metrics snapshot every
	// this-many waits (per policy, across all waiters).
	adaptiveSampleEvery = 32
	// adaptiveMaxLevel bounds the shared congestion level.
	adaptiveMaxLevel = 8

	// DefaultBase and DefaultMax are the default backoff window in spin
	// units for ExponentialBackoff and Adaptive.
	DefaultBase = 16
	DefaultMax  = 4096
	// DefaultSpin is the default fixed wait for Spin.
	DefaultSpin = 64
)

// Policy is an immutable-after-setup description of one contention-
// management strategy plus its shared adaptive state and observability
// sinks. A nil *Policy is valid everywhere and behaves exactly like
// None(): retry at once, yielding every noneYieldEvery-th failure.
//
// A single Policy may be shared by any number of loops and goroutines;
// per-loop state lives in the caller's Waiter.
type Policy struct {
	kind Kind
	spin uint32 // fixed wait for KindSpin
	base uint32 // initial backoff window
	max  uint32 // backoff cap (hard bound on any single wait)
	seed uint64

	seq   atomic.Uint64 // ambient waiter seed sequence
	waits atomic.Uint64 // total waits, drives adaptive sampling
	level atomic.Int32  // adaptive congestion level (0..adaptiveMaxLevel)

	lastInterf atomic.Uint64 // counter values at the previous sample
	lastSpur   atomic.Uint64

	m     *obs.Metrics
	hist  *obs.Hist
	sleep Sleeper
}

// Sleeper consumes one wait on behalf of process proc instead of
// busy-spinning it: units is the wait length in spin units as resolved
// by the policy (jitter, backoff window, and adaptive gating already
// applied). A virtual-time simulator installs one via SetSleeper so that
// backoff costs simulated ticks rather than wall-clock cycles; waits
// routed through a Sleeper skip the backoff histogram (there is no
// meaningful wall-clock duration to record) but still count under
// backoff_waits.
type Sleeper func(proc int, units uint32)

// None returns the do-nothing policy: retry immediately, with the
// periodic yield that bounds naked spinning.
func None() *Policy { return &Policy{kind: KindNone} }

// Spin returns a constant-backoff policy waiting the given number of spin
// units (DefaultSpin if units <= 0) between attempts.
func Spin(units int) *Policy {
	if units <= 0 {
		units = DefaultSpin
	}
	return &Policy{kind: KindSpin, spin: uint32(units)}
}

// ExponentialBackoff returns a policy whose wait doubles with each
// consecutive failure from base up to max spin units (defaults for
// non-positive arguments), with deterministic jitter.
func ExponentialBackoff(base, max int) *Policy {
	b, m := clampWindow(base, max)
	return &Policy{kind: KindBackoff, base: b, max: m}
}

// Adaptive returns a policy that backs off exponentially on Interference
// failures only, never on Spurious ones, and — when a metrics sink is
// attached — adapts its ceiling to the observed failure-cause mix.
func Adaptive(base, max int) *Policy {
	b, m := clampWindow(base, max)
	return &Policy{kind: KindAdaptive, base: b, max: m}
}

func clampWindow(base, max int) (uint32, uint32) {
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	if max < base {
		max = base
	}
	return uint32(base), uint32(max)
}

// ByName builds a policy with default parameters from its stable name, as
// used by the llscbench -policy flag.
func ByName(name string) (*Policy, error) {
	switch name {
	case "none":
		return None(), nil
	case "spin":
		return Spin(0), nil
	case "backoff":
		return ExponentialBackoff(0, 0), nil
	case "adaptive":
		return Adaptive(0, 0), nil
	}
	return nil, fmt.Errorf("contention: unknown policy %q (want one of %v)", name, Names())
}

// ParsePolicy converts a -policy flag value into a ready-to-use Policy
// with default parameters — the CLI-boundary counterpart of ByName,
// mirroring machine.ParseSubstrate. It rejects the empty string with a
// distinct message (a missing flag value is a different user error than a
// misspelled policy), so every binary taking -policy fails fast at flag
// validation instead of minutes into a run.
func ParsePolicy(name string) (*Policy, error) {
	if name == "" {
		return nil, fmt.Errorf("contention: empty policy name (want one of %v)", Names())
	}
	return ByName(name)
}

// Names returns the stable policy names accepted by ByName.
func Names() []string { return []string{"none", "spin", "backoff", "adaptive"} }

// Name returns the policy's stable name. Safe on nil (reports "none").
func (p *Policy) Name() string {
	if p == nil {
		return "none"
	}
	switch p.kind {
	case KindSpin:
		return "spin"
	case KindBackoff:
		return "backoff"
	case KindAdaptive:
		return "adaptive"
	}
	return "none"
}

// Kind returns the policy kind. Safe on nil (reports KindNone).
func (p *Policy) Kind() Kind {
	if p == nil {
		return KindNone
	}
	return p.kind
}

// WithSeed sets the jitter seed (for reproducible experiments) and
// returns the policy for chaining. Call before the policy is shared.
func (p *Policy) WithSeed(seed uint64) *Policy {
	p.seed = seed
	return p
}

// SetMetrics attaches an optional metrics sink (nil disables, the
// default): waits are counted under backoff_waits, and Adaptive consults
// the sink's SC-failure-by-cause counters. Attach before the policy is
// shared between goroutines.
func (p *Policy) SetMetrics(m *obs.Metrics) {
	if p != nil {
		p.m = m
	}
}

// SetBackoffHist attaches an optional histogram recording the wall-clock
// nanoseconds of each wait (backoff_ns_hist in bench records). Recording
// costs two clock reads per wait; nil (the default) disables. Safe on
// nil policies.
func (p *Policy) SetBackoffHist(h *obs.Hist) {
	if p != nil {
		p.hist = h
	}
}

// SetSleeper installs an alternative wait executor (nil restores the
// default busy-spin), redirecting every Wait/WaitTimed through fn. The
// wait-boundedness contract is unchanged: fn receives at most WaitBound
// units per call. Attach before the policy is shared between goroutines.
// Safe on nil policies.
func (p *Policy) SetSleeper(fn Sleeper) {
	if p != nil {
		p.sleep = fn
	}
}

// Params is the flattened, comparable description of a policy's tuning
// knobs, the exchange format for parameter injection: a sweep engine
// (internal/sim) perturbs a Params value and realizes it with FromParams
// instead of reaching into the policy's internals.
type Params struct {
	Kind Kind
	// Spin is the fixed wait in spin units (KindSpin only; 0 = DefaultSpin).
	Spin int
	// Base and Max bound the backoff window in spin units
	// (KindBackoff/KindAdaptive; 0 = DefaultBase/DefaultMax).
	Base int
	Max  int
	// Seed seeds the deterministic jitter streams (see WithSeed).
	Seed uint64
}

// FromParams realizes a fresh policy from its tuning knobs. Fields
// irrelevant to the kind are ignored, and zero values select the same
// defaults as the named constructors.
func FromParams(ps Params) *Policy {
	var p *Policy
	switch ps.Kind {
	case KindSpin:
		p = Spin(ps.Spin)
	case KindBackoff:
		p = ExponentialBackoff(ps.Base, ps.Max)
	case KindAdaptive:
		p = Adaptive(ps.Base, ps.Max)
	default:
		p = None()
	}
	return p.WithSeed(ps.Seed)
}

// Params returns the policy's tuning knobs in exchange form. Safe on nil
// (reports the None policy).
func (p *Policy) Params() Params {
	if p == nil {
		return Params{}
	}
	return Params{Kind: p.kind, Spin: int(p.spin), Base: int(p.base), Max: int(p.max), Seed: p.seed}
}

// ParseKind resolves a stable policy name (see Names) to its Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "none":
		return KindNone, nil
	case "spin":
		return KindSpin, nil
	case "backoff":
		return KindBackoff, nil
	case "adaptive":
		return KindAdaptive, nil
	}
	return KindNone, fmt.Errorf("contention: unknown policy %q (want one of %v)", name, Names())
}

// WaitBound returns the hard upper bound, in spin units, of any single
// wait this policy can insert — the quantity the lock-freedom argument
// rests on. Safe on nil (0: no wait beyond the periodic yield).
func (p *Policy) WaitBound() int {
	if p == nil {
		return 0
	}
	switch p.kind {
	case KindSpin:
		return int(p.spin)
	case KindBackoff, KindAdaptive:
		return int(p.max)
	}
	return 0
}

// Level returns Adaptive's current shared congestion level (always 0 for
// other kinds). Exposed for tests and reports.
func (p *Policy) Level() int {
	if p == nil {
		return 0
	}
	return int(p.level.Load())
}

// Waiter is the per-retry-loop state: a consecutive-failure count and a
// jitter PRNG. The zero value is ready to use; a Waiter must not be
// shared between goroutines. It is deliberately a small value type so
// retry loops can keep one on the stack without allocating.
type Waiter struct {
	attempt uint32
	rng     uint64
}

// Attempts returns the number of failed attempts waited on so far.
func (w *Waiter) Attempts() int { return int(w.attempt) }

// Reset clears the consecutive-failure count (the jitter PRNG keeps its
// state). Call it when the loop makes progress by other means, e.g. after
// an elimination hit.
func (w *Waiter) Reset() { w.attempt = 0 }

// Wait is called after a failed SC/CAS attempt: it blocks the calling
// goroutine for the policy-determined bounded duration (possibly zero)
// before the loop retries. proc is the caller's paper-style process id,
// or Ambient. Safe with a nil policy.
func (w *Waiter) Wait(p *Policy, proc int, cause Cause) {
	units, active := w.prepare(p, proc, cause)
	if !active {
		return
	}
	if p.sleep != nil {
		p.sleep(proc, units)
		return
	}
	if p.hist != nil {
		t0 := time.Now()
		w.spinWait(units)
		p.hist.ObserveDuration(time.Since(t0))
		return
	}
	w.spinWait(units)
}

// WaitTimed is Wait, additionally returning the wall-clock duration of
// the wait it inserted (0 when the policy inserted none). Traced retry
// loops use it to attribute backoff time to the enclosing span
// (trace.Span.AddWait); untraced loops call Wait, which reads no clocks
// unless a backoff histogram is attached. The llscvet retrypolicy check
// accepts WaitTimed wherever it accepts Wait.
func (w *Waiter) WaitTimed(p *Policy, proc int, cause Cause) time.Duration {
	units, active := w.prepare(p, proc, cause)
	if !active {
		return 0
	}
	if p.sleep != nil {
		p.sleep(proc, units)
		return 0
	}
	t0 := time.Now()
	w.spinWait(units)
	d := time.Since(t0)
	p.hist.ObserveDuration(d)
	return d
}

// prepare runs the shared front half of Wait/WaitTimed: count the
// attempt, resolve the wait length, handle the no-wait paths (periodic
// yield), and count the wait. active reports whether a wait is due.
func (w *Waiter) prepare(p *Policy, proc int, cause Cause) (units uint32, active bool) {
	w.attempt++
	if p == nil || p.kind == KindNone {
		if w.attempt%noneYieldEvery == 0 {
			runtime.Gosched()
		}
		return 0, false
	}
	if w.rng == 0 {
		if proc >= 0 {
			w.Seed(p, proc)
		} else {
			w.seedAmbient(p)
		}
	}
	units = p.waitUnits(w, cause)
	if units == 0 {
		// Cause-gated to nothing (Adaptive on Spurious): keep the
		// periodic yield so bounded spinning still holds.
		if w.attempt%noneYieldEvery == 0 {
			runtime.Gosched()
		}
		return 0, false
	}
	if proc >= 0 {
		p.m.IncProc(proc, obs.CtrBackoffWaits)
	} else {
		p.m.Inc(obs.CtrBackoffWaits)
	}
	return units, true
}

// waitUnits computes the length of this wait in spin units.
func (p *Policy) waitUnits(w *Waiter, cause Cause) uint32 {
	switch p.kind {
	case KindSpin:
		return p.spin
	case KindBackoff:
		return p.backoffUnits(w, 0)
	case KindAdaptive:
		if cause == Spurious {
			// Theorems 1 and 3: spurious failures cost bounded extra
			// loops and imply nothing about contention. Retry at once.
			return 0
		}
		p.sampleMaybe()
		return p.backoffUnits(w, uint32(p.level.Load()))
	}
	return 0
}

// backoffUnits returns base << (attempt-1+boost), capped at max, with
// jitter drawn uniformly from [u/2, u).
func (p *Policy) backoffUnits(w *Waiter, boost uint32) uint32 {
	e := w.attempt - 1 + boost
	if e > maxShift {
		e = maxShift
	}
	u := p.base << e
	if u > p.max || u < p.base { // "< base" catches shift overflow
		u = p.max
	}
	if half := u / 2; half > 0 {
		u = half + uint32(w.next()%uint64(half))
	}
	return u
}

// sampleMaybe periodically folds the metrics' failure-cause split into the
// shared congestion level: interference-dominated intervals raise it,
// spurious-dominated (or quiet) intervals lower it.
func (p *Policy) sampleMaybe() {
	if p.m == nil {
		return
	}
	if p.waits.Add(1)%adaptiveSampleEvery != 0 {
		return
	}
	s := p.m.Snapshot()
	interf := s.Get(obs.CtrSCFailInterference) + s.Get(obs.CtrRSCFailInterference) + s.Get(obs.CtrCASRetry)
	spur := s.Get(obs.CtrSCFailSpurious) + s.Get(obs.CtrRSCFailSpurious) + s.Get(obs.CtrSCRetry)
	dInterf := interf - p.lastInterf.Swap(interf)
	dSpur := spur - p.lastSpur.Swap(spur)
	switch {
	case dInterf > dSpur:
		if lv := p.level.Load(); lv < adaptiveMaxLevel {
			p.level.CompareAndSwap(lv, lv+1)
		}
	default:
		if lv := p.level.Load(); lv > 0 {
			p.level.CompareAndSwap(lv, lv-1)
		}
	}
}

// next advances the waiter's xorshift64* jitter PRNG, lazily seeding it
// from the policy seed and (via Wait's caller) the ambient sequence.
func (w *Waiter) next() uint64 {
	x := w.rng
	if x == 0 {
		x = 0x9E3779B97F4A7C15 // overwritten below by the first step
	}
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	w.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Seed deterministically seeds the waiter's jitter PRNG for process proc
// under policy p. Retry sites that carry a process id call this once
// before the loop; ambient sites skip it and get a policy-sequence seed
// on first use via Wait.
func (w *Waiter) Seed(p *Policy, proc int) {
	var seed uint64
	if p != nil {
		seed = p.seed
	}
	w.rng = splitmix64(seed ^ (uint64(proc+2) * 0xBF58476D1CE4E5B9))
}

// seedAmbient gives unseeded waiters a policy-unique stream.
func (w *Waiter) seedAmbient(p *Policy) {
	w.rng = splitmix64(p.seed ^ p.seq.Add(1)*0x94D049BB133111EB)
}

// ambientSeq seeds waiters that call Rand with no policy attached, so
// distinct waiters still get distinct streams.
var ambientSeq atomic.Uint64

// Rand returns the next value of the waiter's deterministic PRNG, lazily
// seeding it exactly as Wait does (distinct waiters get distinct
// streams). Retry sites use it for randomized choices that should stay
// reproducible alongside the backoff jitter — elimination-slot and
// combining-stripe selection. p may be nil.
func (w *Waiter) Rand(p *Policy) uint64 {
	if w.rng == 0 {
		if p != nil {
			w.seedAmbient(p)
		} else {
			w.rng = splitmix64(ambientSeq.Add(1) * 0x9E3779B97F4A7C15)
		}
	}
	return w.next()
}

// splitmix64 is the standard seed scrambler; output is never 0 for the
// inputs used here (and a 0 rng self-heals in next).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// spinWait burns the given number of spin units, yielding the processor
// every yieldEveryUnits-th unit so large backoffs release a single-P
// runtime to the very goroutines whose SCs this loop is yielding to.
func (w *Waiter) spinWait(units uint32) {
	s := w.rng
	for u := uint32(0); u < units; u++ {
		if u%yieldEveryUnits == yieldEveryUnits-1 {
			runtime.Gosched()
			continue
		}
		for i := 0; i < relaxIters; i++ {
			s = s*2862933555777941757 + 3037000493
		}
	}
	// Fold the mixing result back into the PRNG state so the compiler
	// cannot elide the busy loop.
	w.rng ^= s | 1
}
