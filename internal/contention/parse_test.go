package contention

import (
	"strings"
	"testing"
)

// TestParsePolicy pins the CLI-boundary parser: every stable name round
// trips to a policy reporting that name, while unknown and empty names
// fail with errors that list the valid choices (the CLIs turn these into
// exit 2 at flag validation).
func TestParsePolicy(t *testing.T) {
	for _, name := range Names() {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) error: %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("ParsePolicy(%q).Name() = %q; round trip broken", name, p.Name())
		}
	}

	tests := []struct {
		name    string
		in      string
		wantSub string
	}{
		{"unknown", "exponential", "unknown policy"},
		{"case sensitive", "Spin", "unknown policy"},
		{"whitespace not trimmed", " spin", "unknown policy"},
		{"empty", "", "empty policy name"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParsePolicy(tc.in)
			if err == nil {
				t.Fatalf("ParsePolicy(%q) = %v, want error", tc.in, p)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("ParsePolicy(%q) error %q does not mention %q", tc.in, err, tc.wantSub)
			}
			if !strings.Contains(err.Error(), "adaptive") {
				t.Errorf("ParsePolicy(%q) error %q does not list the valid policies", tc.in, err)
			}
		})
	}
}
