package contention

import (
	"testing"
	"time"
)

// TestSleeperReceivesResolvedWaits: with a Sleeper installed, every
// active wait is routed through it with the policy-resolved unit count
// (≤ WaitBound), and no wait busy-spins.
func TestSleeperReceivesResolvedWaits(t *testing.T) {
	p := ExponentialBackoff(4, 64).WithSeed(7)
	var got []uint32
	p.SetSleeper(func(proc int, units uint32) {
		if proc != 2 {
			t.Errorf("sleeper saw proc %d, want 2", proc)
		}
		got = append(got, units)
	})
	var w Waiter
	for i := 0; i < 10; i++ {
		w.Wait(p, 2, Interference)
	}
	if len(got) != 10 {
		t.Fatalf("sleeper called %d times, want 10", len(got))
	}
	bound := uint32(p.WaitBound())
	for i, u := range got {
		if u == 0 || u > bound {
			t.Errorf("wait %d: %d units, want in [1,%d]", i, u, bound)
		}
	}
	// The window still doubles: later waits must be able to exceed the
	// base (jitter picks within the window, so compare maxima).
	max := got[0]
	for _, u := range got {
		if u > max {
			max = u
		}
	}
	if max <= 4 {
		t.Errorf("max wait %d units never exceeded base 4; backoff window not growing", max)
	}
}

// TestSleeperSkipsWallClock: WaitTimed under a Sleeper reports no
// wall-clock duration (there is none) and gated-to-zero waits never
// reach the sleeper.
func TestSleeperSkipsWallClock(t *testing.T) {
	p := Adaptive(4, 64).WithSeed(1)
	calls := 0
	p.SetSleeper(func(proc int, units uint32) { calls++ })
	var w Waiter
	if d := w.WaitTimed(p, 0, Spurious); d != 0 {
		t.Errorf("spurious-gated wait reported %v, want 0", d)
	}
	if calls != 0 {
		t.Errorf("spurious-gated wait reached the sleeper (%d calls); Adaptive must retry at once", calls)
	}
	if d := w.WaitTimed(p, 0, Interference); d != 0 {
		t.Errorf("sleeper wait reported wall-clock %v, want 0", d)
	}
	if calls != 1 {
		t.Errorf("interference wait: %d sleeper calls, want 1", calls)
	}
}

// TestSleeperNilRestoresSpin: clearing the sleeper restores the
// busy-spin path (observable via its wall-clock cost being measurable —
// bounded above by a generous margin so the test stays robust).
func TestSleeperNilRestoresSpin(t *testing.T) {
	p := Spin(8).WithSeed(3)
	p.SetSleeper(func(proc int, units uint32) {})
	var w Waiter
	w.Wait(p, 0, Interference)
	p.SetSleeper(nil)
	done := make(chan struct{})
	go func() {
		var w2 Waiter
		w2.Wait(p, 0, Interference)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("busy-spin wait did not complete after sleeper removal")
	}
}

// TestParamsRoundTrip pins the parameter-injection exchange format:
// FromParams(p.Params()) reproduces the policy's behaviourally relevant
// configuration for every kind, and zero values select the documented
// defaults.
func TestParamsRoundTrip(t *testing.T) {
	cases := []*Policy{
		None(),
		Spin(32).WithSeed(5),
		ExponentialBackoff(8, 128).WithSeed(6),
		Adaptive(2, 16).WithSeed(7),
	}
	for _, want := range cases {
		got := FromParams(want.Params())
		if got.Kind() != want.Kind() || got.Name() != want.Name() {
			t.Errorf("%s: round-trip kind %v/%s, want %v/%s", want.Name(), got.Kind(), got.Name(), want.Kind(), want.Name())
		}
		if got.WaitBound() != want.WaitBound() {
			t.Errorf("%s: round-trip WaitBound %d, want %d", want.Name(), got.WaitBound(), want.WaitBound())
		}
		if got.Params() != want.Params() {
			t.Errorf("%s: Params not a fixed point: %+v vs %+v", want.Name(), got.Params(), want.Params())
		}
	}
	// Zero values select defaults.
	def := FromParams(Params{Kind: KindBackoff})
	if def.WaitBound() != DefaultMax {
		t.Errorf("zero-valued backoff Params: WaitBound %d, want DefaultMax %d", def.WaitBound(), DefaultMax)
	}
}

// TestParseKind pins the stable names.
func TestParseKind(t *testing.T) {
	for _, name := range Names() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if FromParams(Params{Kind: k}).Name() != name {
			t.Errorf("ParseKind(%q) → kind %v does not round-trip", name, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded, want error")
	}
}
