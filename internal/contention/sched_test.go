package contention_test

import (
	"testing"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/word"
)

// These tests pin down the two properties that make a contention policy
// safe to thread through every SC retry loop in the repository:
//
//  1. Schedule determinism. A policy wait is pure computation plus
//     runtime.Gosched — it performs no shared-memory machine operation
//     and never calls Controller.Step — so the scheduling tree of any
//     workload is byte-for-byte identical with and without a policy, and
//     identical across repeated explorations. If a future policy change
//     broke this (say, by probing a shared word while waiting), the
//     exhaustive explorer would see a different tree shape and these
//     tests would fail.
//
//  2. Lock-freedom preservation. In every reachable schedule the
//     workload terminates with the correct final value: there is no
//     schedule in which a successful SC exists but every process waits
//     forever, because each wait is bounded (WaitBound) and each failed
//     SC implies some other SC succeeded (interference) or the failure
//     was spurious and injected finitely often.
var testLayout = word.MustLayout(16)

// explore runs the canonical increment workload — 2 processes, 2 LL/SC
// increments each, one injected spurious RSC failure per process — under
// pol and returns the exploration result. Every complete schedule checks
// the final counter value.
func explore(t *testing.T, mkPolicy func() *contention.Policy, maxRuns int) sched.ExhaustiveResult {
	t.Helper()
	const procs, incs = 2, 1
	res, err := sched.ExploreExhaustive(procs, maxRuns, func(ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: procs, Scheduler: ctrl})
		v, err := core.NewRVar(m, testLayout, 0)
		if err != nil {
			t.Fatal(err)
		}
		pol := mkPolicy()
		met := obs.New()
		pol.SetMetrics(met)
		v.SetMetrics(met)
		v.SetContention(pol)
		workload := func(id int) {
			p := m.Proc(id)
			p.FailNext(1) // deterministic spurious RSC failure
			for i := 0; i < incs; i++ {
				var w contention.Waiter
				for ; ; w.Wait(pol, id, contention.Interference) {
					old, keep := v.LL(p)
					if v.SC(p, keep, old+1) {
						break
					}
				}
			}
		}
		check := func() error {
			if got := v.Read(m.Proc(0)); got != procs*incs {
				t.Errorf("final value %d, want %d", got, procs*incs)
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPolicyScheduleDeterminism explores the workload twice per policy and
// requires identical tree shapes — and, across policies, the same shape as
// the no-policy baseline, proving waits are invisible to the scheduler.
func TestPolicyScheduleDeterminism(t *testing.T) {
	const maxRuns = 200000
	baseline := explore(t, func() *contention.Policy { return nil }, maxRuns)
	if !baseline.Exhausted {
		t.Fatalf("baseline tree not exhausted in %d schedules", baseline.Schedules)
	}
	t.Logf("baseline: %d schedules, max depth %d", baseline.Schedules, baseline.MaxDepth)
	for _, name := range contention.Names() {
		t.Run(name, func(t *testing.T) {
			mk := func() *contention.Policy {
				p, err := contention.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				return p.WithSeed(1)
			}
			first := explore(t, mk, maxRuns)
			second := explore(t, mk, maxRuns)
			if !first.Exhausted || !second.Exhausted {
				t.Fatalf("tree not exhausted: first %+v second %+v", first, second)
			}
			if first != second {
				t.Fatalf("policy %q not schedule-deterministic: %+v vs %+v", name, first, second)
			}
			if first != baseline {
				t.Fatalf("policy %q perturbed the scheduling tree: %+v vs baseline %+v", name, first, baseline)
			}
		})
	}
}

// TestPolicyPreservesLockFreedom drives a single process through a burst
// of injected spurious failures under each policy and requires the SC
// loop to terminate — with nobody else running, every wait must return
// and the retry must eventually succeed. Combined with the exhaustive
// exploration above (which proves every 2-process schedule terminates
// with the correct value), this checks the paper's progress guarantee
// survives the policy layer: waits are bounded, so a process waits
// forever only if SC fails forever, which interference cannot cause
// without another SC succeeding.
func TestPolicyPreservesLockFreedom(t *testing.T) {
	for _, name := range contention.Names() {
		t.Run(name, func(t *testing.T) {
			pol, err := contention.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if pol.Kind() != contention.KindNone && pol.WaitBound() == 0 {
				t.Fatalf("policy %q reports an unbounded wait", name)
			}
			m := machine.MustNew(machine.Config{Procs: 1})
			v, err := core.NewRVar(m, testLayout, 0)
			if err != nil {
				t.Fatal(err)
			}
			v.SetContention(pol)
			p := m.Proc(0)
			const incs = 50
			for i := 0; i < incs; i++ {
				p.FailNext(3)
				var w contention.Waiter
				for ; ; w.Wait(pol, 0, contention.Interference) {
					old, keep := v.LL(p)
					if v.SC(p, keep, old+1) {
						break
					}
				}
				// Solo with 3 injected spurious failures, SC must land by
				// the 4th outer attempt; more means lost progress.
				if a := w.Attempts(); a > 4 {
					t.Fatalf("inc %d took %d outer attempts solo", i, a)
				}
			}
			if got := v.Read(p); got != incs {
				t.Fatalf("final value %d, want %d", got, incs)
			}
		})
	}
}
