package contention

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func TestNamesRoundTrip(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got := p.Name(); got != name {
			t.Fatalf("ByName(%q).Name() = %q", name, got)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope): want error")
	}
}

func TestNilPolicySafe(t *testing.T) {
	var p *Policy
	if p.Name() != "none" || p.Kind() != KindNone || p.WaitBound() != 0 || p.Level() != 0 {
		t.Fatal("nil policy accessors")
	}
	p.SetMetrics(obs.New())
	p.SetBackoffHist(&obs.Hist{})
	var w Waiter
	for i := 0; i < 3*noneYieldEvery; i++ {
		w.Wait(p, Ambient, Interference)
	}
	if w.Attempts() != 3*noneYieldEvery {
		t.Fatalf("attempts = %d", w.Attempts())
	}
}

func TestWaitBound(t *testing.T) {
	cases := []struct {
		p    *Policy
		want int
	}{
		{None(), 0},
		{Spin(100), 100},
		{Spin(0), DefaultSpin},
		{ExponentialBackoff(8, 256), 256},
		{ExponentialBackoff(0, 0), DefaultMax},
		{Adaptive(32, 64), 64},
		{Adaptive(128, 4), 128}, // max < base clamps up to base
	}
	for _, c := range cases {
		if got := c.p.WaitBound(); got != c.want {
			t.Errorf("%s WaitBound = %d, want %d", c.p.Name(), got, c.want)
		}
	}
}

// Backoff windows must grow exponentially with consecutive failures, stay
// within [base/2, max), and be jittered deterministically: the same seed
// and proc reproduce the same wait sequence exactly.
func TestBackoffDeterministicJitter(t *testing.T) {
	sequence := func(seed uint64, proc int) []uint32 {
		p := ExponentialBackoff(16, 4096).WithSeed(seed)
		var w Waiter
		w.Seed(p, proc)
		var out []uint32
		for i := 0; i < 12; i++ {
			w.attempt++
			out = append(out, p.backoffUnits(&w, 0))
		}
		return out
	}
	a := sequence(1, 0)
	b := sequence(1, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := sequence(1, 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct procs produced identical jitter streams")
	}
	// Envelope: attempt k draws from [u/2, u) with u = min(16<<(k-1), 4096).
	for k, got := range a {
		u := uint32(16) << k
		if u > 4096 {
			u = 4096
		}
		if got < u/2 || got >= u {
			t.Fatalf("attempt %d: wait %d outside [%d,%d)", k+1, got, u/2, u)
		}
	}
}

func TestSpinWaitsFixedUnits(t *testing.T) {
	p := Spin(7)
	var w Waiter
	for i := 0; i < 5; i++ {
		w.attempt++
		if got := p.waitUnits(&w, Interference); got != 7 {
			t.Fatalf("spin wait = %d, want 7", got)
		}
	}
}

// Adaptive must never back off on spurious failures (Theorems 1, 3: they
// carry no contention information) and must back off on interference.
func TestAdaptiveCauseGating(t *testing.T) {
	p := Adaptive(16, 4096)
	var w Waiter
	w.Seed(p, 0)
	w.attempt = 5
	if got := p.waitUnits(&w, Spurious); got != 0 {
		t.Fatalf("adaptive wait on spurious = %d, want 0", got)
	}
	if got := p.waitUnits(&w, Interference); got == 0 {
		t.Fatal("adaptive wait on interference = 0, want > 0")
	}
}

// Waits with zero units (None, Adaptive-on-spurious) must not count as
// backoff_waits; waits with units must.
func TestBackoffWaitsCounter(t *testing.T) {
	m := obs.NewWithStripes(1)

	p := Adaptive(1, 2)
	p.SetMetrics(m)
	var w Waiter
	w.Seed(p, 3)
	w.Wait(p, 3, Spurious)
	if got := m.Snapshot().Get(obs.CtrBackoffWaits); got != 0 {
		t.Fatalf("spurious wait counted: backoff_waits = %d", got)
	}
	w.Wait(p, 3, Interference)
	w.Wait(p, Ambient, Interference)
	if got := m.Snapshot().Get(obs.CtrBackoffWaits); got != 2 {
		t.Fatalf("backoff_waits = %d, want 2", got)
	}
}

func TestBackoffHist(t *testing.T) {
	p := ExponentialBackoff(1, 4)
	h := &obs.Hist{}
	p.SetBackoffHist(h)
	var w Waiter
	w.Seed(p, 0)
	for i := 0; i < 10; i++ {
		w.Wait(p, 0, Interference)
	}
	if h.Count() == 0 {
		t.Fatal("histogram recorded nothing")
	}
}

func TestResetClearsAttempts(t *testing.T) {
	p := ExponentialBackoff(16, 4096)
	var w Waiter
	w.Seed(p, 0)
	for i := 0; i < 8; i++ {
		w.Wait(p, 0, Interference)
	}
	if w.Attempts() != 8 {
		t.Fatalf("attempts = %d", w.Attempts())
	}
	w.Reset()
	if w.Attempts() != 0 {
		t.Fatal("Reset did not clear attempts")
	}
	// After reset the window restarts at base.
	w.attempt = 1
	if got := p.backoffUnits(&w, 0); got >= 16 {
		t.Fatalf("post-reset wait %d, want < base 16", got)
	}
}

// Adaptive's shared congestion level must rise when the observed failure
// mix is interference-dominated and fall when it is spurious-dominated.
func TestAdaptiveLevelTracksCauseMix(t *testing.T) {
	m := obs.NewWithStripes(1)
	p := Adaptive(1, 2)
	p.SetMetrics(m)
	var w Waiter
	w.Seed(p, 0)

	drive := func(ctr obs.Counter) {
		for i := 0; i < 4*adaptiveSampleEvery; i++ {
			m.Add(ctr, 10)
			w.Wait(p, 0, Interference)
		}
	}
	drive(obs.CtrSCFailInterference)
	if p.Level() == 0 {
		t.Fatal("level did not rise under interference-dominated mix")
	}
	drive(obs.CtrSCFailSpurious)
	if p.Level() != 0 {
		t.Fatalf("level = %d, want 0 after spurious-dominated mix", p.Level())
	}
}

// A wait must actually take time proportional to its units (sanity check
// that the busy loop is not compiled away), yet stay bounded.
func TestSpinWaitBurnsTime(t *testing.T) {
	var w Waiter
	w.rng = 1
	t0 := time.Now()
	for i := 0; i < 1000; i++ {
		w.spinWait(4)
	}
	if time.Since(t0) <= 0 {
		t.Fatal("spinWait took no measurable time")
	}
}

// The hot path must not allocate: a Waiter lives on the caller's stack and
// Wait performs no heap allocation for any policy.
func TestWaitAllocFree(t *testing.T) {
	m := obs.NewWithStripes(1)
	for _, name := range Names() {
		p, _ := ByName(name)
		p.SetMetrics(m)
		var w Waiter
		w.Seed(p, 0)
		allocs := testing.AllocsPerRun(200, func() {
			w.Wait(p, 0, Interference)
		})
		if allocs != 0 {
			t.Errorf("policy %s: Wait allocates %.1f/op", name, allocs)
		}
	}
}
