package machine

import (
	"fmt"
	"strings"
)

// Substrate selects the backend a Machine executes its word operations
// on. The machine API — Proc handles, Word allocation, the
// Load/Store/CAS/RLL/RSC instruction set — is identical on every
// substrate, so algorithm code written against it runs unmodified on
// either; what changes is what the substrate guarantees underneath.
//
// The two substrates trade fidelity against speed:
//
//   - SubstrateSim (the zero value, and the default) is the simulated
//     multiprocessor this package has always provided: every operation is
//     a scheduling point (Config.Scheduler), a fault-injection point
//     (Config.FaultPlan), an observation point (Config.Observer), and a
//     tick of the global step clock (Machine.Steps) that lease TTLs and
//     the wedge watchdog are measured in. Reservations are cell-pointer
//     based and therefore ABA-immune, exactly like hardware cache-line
//     invalidation. This is the substrate the verification stack
//     (internal/sched, internal/fault, internal/stress, cmd/llscsoak)
//     requires.
//
//   - SubstrateNative maps the same operations straight onto sync/atomic:
//     Load/Store/CAS become hardware atomics on the word, and RLL/RSC are
//     emulated with a per-processor value reservation resolved by a
//     hardware CAS. The hot path performs no step accounting, consults no
//     scheduler or fault plan, and emits no events — it is the "run the
//     figure code on the real machine" substrate, within ~2x of a bare
//     sync/atomic loop. The paper's constructions tolerate the one
//     semantic difference (see the native RSC comment in native.go): the
//     value-based reservation admits ABA, which Figures 3/5/6/7 already
//     defend against with tags, exactly as they must on real CAS
//     hardware.
//
// Configuration features that only the simulation can honor (Scheduler,
// FaultPlan, Observer, SpuriousFailProb, Strict) are rejected by New when
// combined with SubstrateNative rather than silently ignored, so a test
// that thinks it is injecting faults can never accidentally measure a
// machine that is not listening. See docs: DESIGN.md "Machine substrates".
type Substrate uint8

const (
	// SubstrateSim is the simulated multiprocessor (default).
	SubstrateSim Substrate = iota
	// SubstrateNative runs word operations on hardware sync/atomic.
	SubstrateNative
)

// String returns the substrate's flag spelling ("sim" or "native").
func (s Substrate) String() string {
	switch s {
	case SubstrateSim:
		return "sim"
	case SubstrateNative:
		return "native"
	default:
		return fmt.Sprintf("substrate(%d)", uint8(s))
	}
}

// Substrates lists the valid substrate names in flag order, for CLI
// usage strings.
func Substrates() []string { return []string{"sim", "native"} }

// ParseSubstrate converts a -substrate flag value into a Substrate.
func ParseSubstrate(name string) (Substrate, error) {
	switch name {
	case "sim":
		return SubstrateSim, nil
	case "native":
		return SubstrateNative, nil
	default:
		return SubstrateSim, fmt.Errorf("machine: unknown substrate %q (want %s)",
			name, strings.Join(Substrates(), " or "))
	}
}

// validateNative rejects configuration features the native substrate
// cannot honor. Called by New when cfg.Substrate == SubstrateNative.
func validateNative(cfg Config) error {
	var refused []string
	if cfg.Scheduler != nil {
		refused = append(refused, "Scheduler (every op is a scheduling point only on the simulation)")
	}
	if cfg.FaultPlan != nil {
		refused = append(refused, "FaultPlan (fault injection needs the simulated op boundary)")
	}
	if cfg.Observer != nil {
		refused = append(refused, "Observer (the native hot path emits no events)")
	}
	if cfg.SpuriousFailProb != 0 {
		refused = append(refused, "SpuriousFailProb (hardware CAS has no spurious failures; use Proc.FailNext for deterministic tests)")
	}
	if cfg.Strict {
		refused = append(refused, "Strict (the R4000 access-window model is a simulation feature)")
	}
	if len(refused) > 0 {
		return fmt.Errorf("machine: the native substrate cannot honor: %s", strings.Join(refused, "; "))
	}
	return nil
}
