package machine

import (
	"strings"
	"testing"
)

func newNativeMachine(t *testing.T, procs int) *Machine {
	t.Helper()
	m, err := New(Config{Procs: procs, Substrate: SubstrateNative})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSubstrateString(t *testing.T) {
	if got := SubstrateSim.String(); got != "sim" {
		t.Errorf("SubstrateSim.String() = %q, want \"sim\"", got)
	}
	if got := SubstrateNative.String(); got != "native" {
		t.Errorf("SubstrateNative.String() = %q, want \"native\"", got)
	}
	if got := Substrate(99).String(); got != "substrate(99)" {
		t.Errorf("Substrate(99).String() = %q, want \"substrate(99)\"", got)
	}
}

func TestParseSubstrate(t *testing.T) {
	for _, name := range Substrates() {
		s, err := ParseSubstrate(name)
		if err != nil {
			t.Fatalf("ParseSubstrate(%q) error: %v", name, err)
		}
		if s.String() != name {
			t.Errorf("ParseSubstrate(%q).String() = %q; round trip broken", name, s.String())
		}
	}
	if _, err := ParseSubstrate("hardware"); err == nil {
		t.Error("ParseSubstrate(\"hardware\") succeeded, want error")
	}
}

// TestNativeConfigValidation pins that every simulation-only configuration
// feature is rejected — not silently ignored — under SubstrateNative, and
// that the error names the offending field.
func TestNativeConfigValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantSub string // substring the error must mention, "" for success
	}{
		{"plain native ok", Config{Procs: 4, Substrate: SubstrateNative}, ""},
		{"seed is harmless", Config{Procs: 1, Substrate: SubstrateNative, Seed: 42}, ""},
		{"scheduler refused", Config{Procs: 1, Substrate: SubstrateNative, Scheduler: schedFunc(func(int) {})}, "Scheduler"},
		{"fault plan refused", Config{Procs: 1, Substrate: SubstrateNative, FaultPlan: planFunc(func(int, OpKind, uint64) FaultInjection { return FaultInjection{} })}, "FaultPlan"},
		{"observer refused", Config{Procs: 1, Substrate: SubstrateNative, Observer: func(Event) {}}, "Observer"},
		{"spurious prob refused", Config{Procs: 1, Substrate: SubstrateNative, SpuriousFailProb: 0.1}, "SpuriousFailProb"},
		{"strict refused", Config{Procs: 1, Substrate: SubstrateNative, Strict: true}, "Strict"},
		{"unknown substrate refused", Config{Procs: 1, Substrate: Substrate(7)}, "unknown substrate"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if tt.wantSub == "" {
				if err != nil {
					t.Fatalf("New(%+v) error: %v", tt.cfg, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("New(%+v) succeeded, want error mentioning %q", tt.cfg, tt.wantSub)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

type schedFunc func(int)

func (f schedFunc) Step(proc int) { f(proc) }

type planFunc func(int, OpKind, uint64) FaultInjection

func (f planFunc) BeforeOp(proc int, op OpKind, word uint64) FaultInjection {
	return f(proc, op, word)
}

func TestNativeLoadStoreCAS(t *testing.T) {
	m := newNativeMachine(t, 2)
	if m.Substrate() != SubstrateNative {
		t.Fatalf("Substrate() = %v, want native", m.Substrate())
	}
	w := m.NewWord(42)
	p0, p1 := m.Proc(0), m.Proc(1)
	if got := p0.Load(w); got != 42 {
		t.Errorf("initial Load = %d, want 42", got)
	}
	p0.Store(w, 7)
	if got := p1.Load(w); got != 7 {
		t.Errorf("Load after Store = %d, want 7", got)
	}
	if !p1.CAS(w, 7, 8) {
		t.Error("CAS with matching old failed")
	}
	if p0.CAS(w, 7, 9) {
		t.Error("CAS with stale old succeeded")
	}
	if got := p0.Load(w); got != 8 {
		t.Errorf("final value = %d, want 8", got)
	}
}

func TestNativeRLLRSC(t *testing.T) {
	m := newNativeMachine(t, 2)
	w := m.NewWord(10)
	p0, p1 := m.Proc(0), m.Proc(1)

	// Uncontended success.
	if v := p0.RLL(w); v != 10 {
		t.Fatalf("RLL = %d, want 10", v)
	}
	if !p0.HoldsReservation(w) {
		t.Error("HoldsReservation false after RLL")
	}
	if !p0.RSC(w, 11) {
		t.Error("uncontended RSC failed")
	}
	if p0.HoldsReservation(w) {
		t.Error("reservation survived a successful RSC")
	}

	// Real failure: intervening write to a different value.
	p0.RLL(w)
	p1.Store(w, 99)
	if p0.RSC(w, 12) {
		t.Error("RSC succeeded after an intervening write changed the value")
	}

	// No reservation at all.
	if p0.RSC(w, 13) {
		t.Error("RSC with no reservation succeeded")
	}

	// Displacement: a second RLL moves the single reservation.
	w2 := m.NewWord(5)
	p0.RLL(w)
	p0.RLL(w2)
	if p0.HoldsReservation(w) {
		t.Error("reservation on first word survived RLL on second")
	}
	if p0.RSC(w, 14) {
		t.Error("RSC on displaced reservation succeeded")
	}
	// As on the simulation, any RSC — even one that fails for lack of a
	// reservation — clears the processor's single reservation slot.
	if p0.HoldsReservation(w2) {
		t.Error("reservation survived an RSC attempt (any outcome must clear it)")
	}
}

// TestNativeRSCClearsReservationOnAnyOutcome pins that RSC is
// one-shot on both substrates: even a failing RSC consumes the
// reservation.
func TestNativeRSCClearsReservationOnAnyOutcome(t *testing.T) {
	m := newNativeMachine(t, 2)
	w := m.NewWord(1)
	p0, p1 := m.Proc(0), m.Proc(1)
	p0.RLL(w)
	p1.Store(w, 2)
	if p0.RSC(w, 3) {
		t.Fatal("RSC succeeded despite intervening write")
	}
	if p0.HoldsReservation(w) {
		t.Error("reservation survived a failed RSC")
	}
}

// TestNativeABA documents the one semantic divergence from the
// simulation: the native reservation is value-based, so a word rewritten
// to its reserved value lets the RSC succeed. The simulation's
// cell-pointer reservation fails the same schedule. The paper's figures
// are immune because their tags make values non-recurring; this test
// exists so the divergence is pinned, visible, and intentional.
func TestNativeABA(t *testing.T) {
	// Native: A -> B -> A, RSC succeeds.
	m := newNativeMachine(t, 2)
	w := m.NewWord(100)
	p0, p1 := m.Proc(0), m.Proc(1)
	p0.RLL(w)
	p1.Store(w, 200)
	p1.Store(w, 100)
	if !p0.RSC(w, 300) {
		t.Error("native RSC failed under ABA; value-based emulation should succeed")
	}

	// Simulation: identical schedule, RSC fails (write-sensitive).
	sm := newTestMachine(t, Config{Procs: 2})
	sw := sm.NewWord(100)
	sp0, sp1 := sm.Proc(0), sm.Proc(1)
	sp0.RLL(sw)
	sp1.Store(sw, 200)
	sp1.Store(sw, 100)
	if sp0.RSC(sw, 300) {
		t.Error("simulated RSC succeeded under ABA; cell-pointer reservation should fail")
	}
}

func TestNativeFailNext(t *testing.T) {
	m := newNativeMachine(t, 1)
	w := m.NewWord(0)
	p := m.Proc(0)
	p.FailNext(2)
	for i := 0; i < 2; i++ {
		p.RLL(w)
		if p.RSC(w, 1) {
			t.Fatalf("RSC %d succeeded during a FailNext(2) burst", i)
		}
	}
	p.RLL(w)
	if !p.RSC(w, 1) {
		t.Error("RSC failed after the FailNext burst was exhausted")
	}
	if got := p.Load(w); got != 1 {
		t.Errorf("value = %d, want 1", got)
	}
}

// TestNativeNoAccounting pins the hot-path contract: the native
// substrate counts nothing — no steps, no stats — no matter how many
// operations run.
func TestNativeNoAccounting(t *testing.T) {
	m := newNativeMachine(t, 1)
	w := m.NewWord(0)
	p := m.Proc(0)
	for i := 0; i < 100; i++ {
		p.Load(w)
		p.Store(w, uint64(i))
		p.CAS(w, uint64(i), uint64(i+1))
		p.RLL(w)
		p.RSC(w, uint64(i))
	}
	if got := m.Steps(); got != 0 {
		t.Errorf("Steps() = %d on native, want 0", got)
	}
	if got := m.Stats(); got != (Stats{}) {
		t.Errorf("Stats() = %+v on native, want zero", got)
	}
}

// TestNativeZeroAllocs pins the acceptance requirement that the native
// hot path allocates nothing per operation.
func TestNativeZeroAllocs(t *testing.T) {
	m := newNativeMachine(t, 1)
	w := m.NewWord(0)
	p := m.Proc(0)
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		p.Load(w)
		p.Store(w, i)
		p.CAS(w, i, i+1)
		p.RLL(w)
		p.RSC(w, i)
		i++
	})
	if allocs != 0 {
		t.Errorf("native op sequence allocates %v allocs/op, want 0", allocs)
	}
}

func TestNativeCrashRefused(t *testing.T) {
	m := newNativeMachine(t, 1)
	p := m.Proc(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Crash on a native proc did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "simulation-substrate") {
			t.Errorf("Crash panic = %v, want message naming the simulation substrate", r)
		}
	}()
	p.Crash()
}

func TestNativeRegistryRefused(t *testing.T) {
	m := newNativeMachine(t, 2)
	if _, err := NewRegistry(m, 100); err == nil {
		t.Fatal("NewRegistry on a native machine succeeded, want error (step clock never advances)")
	}
}
