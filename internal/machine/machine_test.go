package machine

import (
	"sync"
	"testing"
)

func newTestMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok", Config{Procs: 4}, false},
		{"single proc", Config{Procs: 1}, false},
		{"zero procs", Config{Procs: 0}, true},
		{"negative procs", Config{Procs: -1}, true},
		{"prob too high", Config{Procs: 1, SpuriousFailProb: 1.1}, true},
		{"prob negative", Config{Procs: 1, SpuriousFailProb: -0.1}, true},
		{"prob ok", Config{Procs: 1, SpuriousFailProb: 0.5}, false},
		{"prob one (always-fail adversary)", Config{Procs: 1, SpuriousFailProb: 1.0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%+v) error = %v, wantErr %v", tt.cfg, err, tt.wantErr)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{Procs: 0})
}

func TestLoadStore(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2})
	w := m.NewWord(42)
	p0, p1 := m.Proc(0), m.Proc(1)
	if got := p0.Load(w); got != 42 {
		t.Errorf("initial Load = %d, want 42", got)
	}
	p0.Store(w, 7)
	if got := p1.Load(w); got != 7 {
		t.Errorf("Load after Store = %d, want 7", got)
	}
}

func TestRLLRSCBasicSuccess(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	w := m.NewWord(10)
	p := m.Proc(0)
	if got := p.RLL(w); got != 10 {
		t.Fatalf("RLL = %d, want 10", got)
	}
	if !p.RSC(w, 11) {
		t.Fatal("uncontended RSC failed")
	}
	if got := p.Load(w); got != 11 {
		t.Errorf("value after RSC = %d, want 11", got)
	}
}

func TestRSCFailsAfterInterveningWrite(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2})
	w := m.NewWord(10)
	p0, p1 := m.Proc(0), m.Proc(1)
	p0.RLL(w)
	p1.Store(w, 20)
	if p0.RSC(w, 11) {
		t.Fatal("RSC succeeded despite intervening write")
	}
	if got := p0.Load(w); got != 20 {
		t.Errorf("value = %d, want 20 (p1's write preserved)", got)
	}
}

func TestRSCFailsAfterSameValueWrite(t *testing.T) {
	// A write of the SAME value still invalidates the reservation: the
	// model must track writes, not values (no ABA).
	m := newTestMachine(t, Config{Procs: 2})
	w := m.NewWord(10)
	p0, p1 := m.Proc(0), m.Proc(1)
	p0.RLL(w)
	p1.Store(w, 10) // same value
	if p0.RSC(w, 11) {
		t.Fatal("RSC succeeded despite same-value write (ABA leak)")
	}
}

func TestRSCFailsAfterABACycle(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2})
	w := m.NewWord(10)
	p0, p1 := m.Proc(0), m.Proc(1)
	p0.RLL(w)
	p1.Store(w, 99)
	p1.Store(w, 10) // back to the original value
	if p0.RSC(w, 11) {
		t.Fatal("RSC succeeded across an ABA cycle")
	}
}

func TestRSCWithoutReservationFails(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	w := m.NewWord(0)
	p := m.Proc(0)
	if p.RSC(w, 1) {
		t.Fatal("RSC with no prior RLL succeeded")
	}
}

func TestRSCConsumesReservation(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	w := m.NewWord(0)
	p := m.Proc(0)
	p.RLL(w)
	if !p.RSC(w, 1) {
		t.Fatal("first RSC failed")
	}
	if p.RSC(w, 2) {
		t.Fatal("second RSC without new RLL succeeded")
	}
}

func TestSingleReservationPerProcessor(t *testing.T) {
	// The R4000 has one LLBit: a second RLL displaces the first.
	m := newTestMachine(t, Config{Procs: 1})
	x := m.NewWord(1)
	y := m.NewWord(2)
	p := m.Proc(0)
	p.RLL(x)
	p.RLL(y) // displaces reservation on x
	if p.RSC(x, 10) {
		t.Fatal("RSC on x succeeded after reservation moved to y")
	}
	p.RLL(y)
	if !p.RSC(y, 20) {
		t.Fatal("RSC on y failed despite intact reservation")
	}
}

func TestStrictModeClearsReservation(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, Strict: true})
	w := m.NewWord(0)
	z := m.NewWord(0)
	p := m.Proc(0)

	p.RLL(w)
	p.Load(z) // intervening access
	if p.RSC(w, 1) {
		t.Fatal("strict mode: RSC succeeded after intervening Load")
	}

	p.RLL(w)
	p.Store(z, 5)
	if p.RSC(w, 1) {
		t.Fatal("strict mode: RSC succeeded after intervening Store")
	}

	p.RLL(w)
	p.CAS(z, 5, 6)
	if p.RSC(w, 1) {
		t.Fatal("strict mode: RSC succeeded after intervening CAS")
	}

	// A clean RLL-RSC pair still works in strict mode.
	p.RLL(w)
	if !p.RSC(w, 1) {
		t.Fatal("strict mode: clean RLL/RSC pair failed")
	}
}

func TestNonStrictModeAllowsIntermediateAccess(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	w := m.NewWord(0)
	z := m.NewWord(0)
	p := m.Proc(0)
	p.RLL(w)
	p.Load(z)
	if !p.RSC(w, 1) {
		t.Fatal("non-strict mode: RSC failed after unrelated Load")
	}
}

func TestHoldsReservation(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	w := m.NewWord(0)
	p := m.Proc(0)
	if p.HoldsReservation(w) {
		t.Fatal("fresh proc holds a reservation")
	}
	p.RLL(w)
	if !p.HoldsReservation(w) {
		t.Fatal("RLL did not establish reservation")
	}
	p.RSC(w, 1)
	if p.HoldsReservation(w) {
		t.Fatal("RSC did not clear reservation")
	}
}

func TestFailNextInjectsSpuriousFailures(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	w := m.NewWord(0)
	p := m.Proc(0)
	p.FailNext(2)

	p.RLL(w)
	if p.RSC(w, 1) {
		t.Fatal("first injected RSC should fail")
	}
	p.RLL(w)
	if p.RSC(w, 1) {
		t.Fatal("second injected RSC should fail")
	}
	p.RLL(w)
	if !p.RSC(w, 1) {
		t.Fatal("RSC after injection window should succeed")
	}
	st := m.Stats()
	if st.RSCSpurious != 2 {
		t.Errorf("spurious count = %d, want 2", st.RSCSpurious)
	}
	if st.RSCSuccess != 1 {
		t.Errorf("success count = %d, want 1", st.RSCSuccess)
	}
}

func TestProbabilisticSpuriousFailures(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1, SpuriousFailProb: 0.5, Seed: 1})
	w := m.NewWord(0)
	p := m.Proc(0)
	const attempts = 2000
	for i := 0; i < attempts; i++ {
		p.RLL(w)
		p.RSC(w, uint64(i))
	}
	st := m.Stats()
	if st.RSCSpurious == 0 {
		t.Fatal("no spurious failures at p=0.5")
	}
	if st.RSCSuccess == 0 {
		t.Fatal("no successes at p=0.5")
	}
	frac := float64(st.RSCSpurious) / float64(attempts)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("spurious fraction = %.3f, want ≈0.5", frac)
	}
}

func TestDeterministicSeeding(t *testing.T) {
	run := func() []bool {
		m := MustNew(Config{Procs: 1, SpuriousFailProb: 0.3, Seed: 42})
		w := m.NewWord(0)
		p := m.Proc(0)
		out := make([]bool, 100)
		for i := range out {
			p.RLL(w)
			out[i] = p.RSC(w, uint64(i))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at op %d despite identical seed", i)
		}
	}
}

func TestNativeCAS(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	w := m.NewWord(5)
	p := m.Proc(0)
	if !p.CAS(w, 5, 6) {
		t.Fatal("CAS with matching old failed")
	}
	if p.CAS(w, 5, 7) {
		t.Fatal("CAS with stale old succeeded")
	}
	if got := p.Load(w); got != 6 {
		t.Errorf("value = %d, want 6", got)
	}
}

func TestCASInvalidatesReservations(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 2})
	w := m.NewWord(0)
	p0, p1 := m.Proc(0), m.Proc(1)
	p0.RLL(w)
	if !p1.CAS(w, 0, 9) {
		t.Fatal("p1 CAS failed")
	}
	if p0.RSC(w, 1) {
		t.Fatal("RSC succeeded after another processor's CAS")
	}
}

func TestConcurrentRSCAtMostOneWinner(t *testing.T) {
	// Many processors race RLL/RSC on one word; exactly the winners'
	// increments must be applied, and the word must never lose updates.
	const procs = 8
	const rounds = 5000
	m := newTestMachine(t, Config{Procs: procs})
	w := m.NewWord(0)

	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					v := p.RLL(w)
					if p.RSC(w, v+1) {
						break
					}
				}
			}
		}(m.Proc(i))
	}
	wg.Wait()
	if got := m.Proc(0).Load(w); got != procs*rounds {
		t.Errorf("final counter = %d, want %d (lost or duplicated updates)", got, procs*rounds)
	}
	st := m.Stats()
	if st.RSCSuccess != procs*rounds {
		t.Errorf("RSC successes = %d, want %d", st.RSCSuccess, procs*rounds)
	}
}

func TestConcurrentCASCounter(t *testing.T) {
	const procs = 8
	const rounds = 5000
	m := newTestMachine(t, Config{Procs: procs})
	w := m.NewWord(0)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					v := p.Load(w)
					if p.CAS(w, v, v+1) {
						break
					}
				}
			}
		}(m.Proc(i))
	}
	wg.Wait()
	if got := m.Proc(0).Load(w); got != procs*rounds {
		t.Errorf("final counter = %d, want %d", got, procs*rounds)
	}
}

func TestStatsCounts(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 1})
	w := m.NewWord(0)
	p := m.Proc(0)
	p.Load(w)
	p.Store(w, 1)
	p.CAS(w, 1, 2)
	p.RLL(w)
	p.RSC(w, 3)
	st := m.Stats()
	if st.Loads != 1 || st.Stores != 1 || st.CASOps != 1 || st.RLLs != 1 || st.RSCSuccess != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProcIdentity(t *testing.T) {
	m := newTestMachine(t, Config{Procs: 3})
	if m.NumProcs() != 3 {
		t.Errorf("NumProcs = %d, want 3", m.NumProcs())
	}
	for i := 0; i < 3; i++ {
		p := m.Proc(i)
		if p.ID() != i {
			t.Errorf("Proc(%d).ID() = %d", i, p.ID())
		}
		if p.Machine() != m {
			t.Errorf("Proc(%d).Machine() mismatch", i)
		}
		if m.Proc(i) != p {
			t.Errorf("Proc(%d) not stable", i)
		}
	}
}

func TestSpuriousFailProbOneAlwaysFails(t *testing.T) {
	// 1.0 is the always-fail adversary: every RSC with an intact
	// reservation fails spuriously, forever.
	m := newTestMachine(t, Config{Procs: 1, SpuriousFailProb: 1.0, Seed: 9})
	p := m.Proc(0)
	w := m.NewWord(3)
	for i := 0; i < 50; i++ {
		p.RLL(w)
		if p.RSC(w, 4) {
			t.Fatalf("RSC %d succeeded under SpuriousFailProb=1.0", i)
		}
	}
	if s := m.Stats(); s.RSCSpurious != 50 || s.RSCSuccess != 0 {
		t.Fatalf("stats = %+v, want 50 spurious and 0 successes", s)
	}
	if got := p.Load(w); got != 3 {
		t.Fatalf("value = %d, want 3 (no RSC may have landed)", got)
	}
}

// recordingPlan is a scriptable FaultPlan: it logs every BeforeOp call and
// replies from a per-(proc,op-index) script.
type recordingPlan struct {
	mu    sync.Mutex
	calls []faultCall
	reply func(call faultCall) FaultInjection
}

type faultCall struct {
	N    int // per-proc op index (0-based)
	Proc int
	Op   OpKind
	Word uint64
}

func (r *recordingPlan) BeforeOp(proc int, op OpKind, word uint64) FaultInjection {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.calls {
		if c.Proc == proc {
			n++
		}
	}
	call := faultCall{N: n, Proc: proc, Op: op, Word: word}
	r.calls = append(r.calls, call)
	if r.reply == nil {
		return FaultInjection{}
	}
	return r.reply(call)
}

func TestFaultPlanSeesEveryOperation(t *testing.T) {
	plan := &recordingPlan{}
	m := newTestMachine(t, Config{Procs: 2, FaultPlan: plan})
	w := m.NewWord(0)
	p0, p1 := m.Proc(0), m.Proc(1)
	p0.Load(w)
	p0.Store(w, 1)
	p1.RLL(w)
	p1.RSC(w, 2)
	p0.CAS(w, 2, 3)
	want := []faultCall{
		{0, 0, OpLoad, w.ID()},
		{1, 0, OpStore, w.ID()},
		{0, 1, OpRLL, w.ID()},
		{1, 1, OpRSC, w.ID()},
		{2, 0, OpCAS, w.ID()},
	}
	if len(plan.calls) != len(want) {
		t.Fatalf("plan saw %d calls, want %d: %+v", len(plan.calls), len(want), plan.calls)
	}
	for i, c := range plan.calls {
		if c != want[i] {
			t.Errorf("call %d = %+v, want %+v", i, c, want[i])
		}
	}
}

func TestFaultPlanForcedSpuriousRSC(t *testing.T) {
	// Force the first two RSCs of proc 0 to fail spuriously; the third
	// proceeds normally.
	plan := &recordingPlan{reply: func(c faultCall) FaultInjection {
		return FaultInjection{SpuriousRSC: c.Op == OpRSC && c.N < 4}
	}}
	m := newTestMachine(t, Config{Procs: 1, FaultPlan: plan})
	p := m.Proc(0)
	w := m.NewWord(0)
	fails := 0
	for {
		p.RLL(w)
		if p.RSC(w, 7) {
			break
		}
		fails++
	}
	if fails != 2 { // ops 0..3 are RLL,RSC,RLL,RSC; op 5 is the passing RSC
		t.Fatalf("forced spurious failures = %d, want 2", fails)
	}
	s := m.Stats()
	if s.RSCSpurious != 2 || s.RSCSuccess != 1 || s.RSCRealFail != 0 {
		t.Fatalf("stats = %+v, want 2 spurious / 1 success / 0 real", s)
	}
	if got := p.Load(w); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestFaultPlanSpuriousIgnoredForNonRSC(t *testing.T) {
	plan := &recordingPlan{reply: func(c faultCall) FaultInjection {
		return FaultInjection{SpuriousRSC: true} // demanded everywhere
	}}
	m := newTestMachine(t, Config{Procs: 1, FaultPlan: plan})
	p := m.Proc(0)
	w := m.NewWord(5)
	if got := p.Load(w); got != 5 {
		t.Fatalf("Load = %d, want 5 (SpuriousRSC must not affect loads)", got)
	}
	p.Store(w, 6)
	if !p.CAS(w, 6, 8) {
		t.Fatal("CAS failed (SpuriousRSC must not affect CAS)")
	}
}

func TestFaultPlanInterferenceStealsReservation(t *testing.T) {
	// Interfere exactly at proc 0's RSC: the silent rewrite invalidates the
	// reservation, so the RSC fails for REAL (not spuriously) and the word
	// keeps its value.
	steals := 0
	plan := &recordingPlan{reply: func(c faultCall) FaultInjection {
		if c.Op == OpRSC && steals < 3 {
			steals++
			return FaultInjection{Interfere: true}
		}
		return FaultInjection{}
	}}
	m := newTestMachine(t, Config{Procs: 1, FaultPlan: plan})
	p := m.Proc(0)
	w := m.NewWord(11)
	fails := 0
	for {
		if got := p.RLL(w); got != 11 {
			t.Fatalf("RLL = %d, want 11 (interference rewrites silently)", got)
		}
		if p.RSC(w, 12) {
			break
		}
		fails++
	}
	if fails != 3 {
		t.Fatalf("interfered failures = %d, want 3", fails)
	}
	s := m.Stats()
	if s.RSCRealFail != 3 || s.RSCSpurious != 0 || s.RSCSuccess != 1 {
		t.Fatalf("stats = %+v, want 3 real / 0 spurious / 1 success", s)
	}
	if got := p.Load(w); got != 12 {
		t.Fatalf("value = %d, want 12", got)
	}
}

func TestFaultPlanInterferenceKeepsValue(t *testing.T) {
	// The interference write is silent: observers of the VALUE never see it
	// change, only reservations are lost.
	plan := &recordingPlan{reply: func(c faultCall) FaultInjection {
		return FaultInjection{Interfere: true}
	}}
	m := newTestMachine(t, Config{Procs: 2, FaultPlan: plan})
	w := m.NewWord(99)
	for i := 0; i < 10; i++ {
		if got := m.Proc(i % 2).Load(w); got != 99 {
			t.Fatalf("Load %d = %d, want 99", i, got)
		}
	}
}
