// Package machine simulates a shared-memory multiprocessor whose only
// strong synchronization primitives are the restricted RLL/RSC pair
// described in Section 1 of Moir (PODC 1997), plus a native CAS used for
// baseline comparisons.
//
// No CPU reachable from Go exposes LL/SC directly (Go compiles the
// sync/atomic operations to CAS-style loops even on LL/SC hardware), so
// this package substitutes a faithful software model of the hardware the
// paper targets — the MIPS R4000, DEC Alpha, and PowerPC families — with
// exactly the paper's four restrictions:
//
//  1. a processor may not access memory between an RLL and the subsequent
//     RSC (modelled by Strict mode: any intervening access through the
//     processor clears its reservation, as real cache activity can);
//  2. no VL instruction is provided;
//  3. RSC may fail spuriously (modelled by seeded probabilistic injection
//     and by deterministic FailNext bursts for tests); and
//  4. variables accessed by RLL/RSC are single machine words.
//
// The reservation model follows the R4000's per-processor LLBit: each
// processor holds at most one reservation, set by RLL and cleared by any
// write to the reserved word by any processor (even a write of the same
// value — a silent rewrite still invalidates the cache line, so the model
// is deliberately immune to ABA, like the hardware). Internally each Word
// holds an atomically replaced cell pointer, so "has this word been
// written" is pointer identity, not value equality.
//
// The simulation is one of two substrates the machine API can execute on.
// Config.Substrate selects between SubstrateSim (everything above) and
// SubstrateNative, which maps the same Load/Store/CAS/RLL/RSC instruction
// set directly onto hardware sync/atomic for algorithm code that needs
// real-machine throughput rather than the simulator's instrumentation;
// see the Substrate type and native.go for the exact semantics traded
// away.
package machine

import (
	"fmt"
	"math/rand"
	"sync/atomic" //llsc:allow nakedatomic(this package is the substrate: the simulated machine's cell pointers and counters, and the native substrate's words, are built from raw atomics by definition)
)

// Config parametrizes a simulated machine.
type Config struct {
	// Procs is the number of simulated processors (the paper's N). Each
	// Proc handle must be driven by at most one goroutine at a time.
	Procs int

	// Substrate selects the execution backend: SubstrateSim (zero value)
	// runs the full simulated multiprocessor; SubstrateNative runs the
	// same instruction set on hardware sync/atomic. Under SubstrateNative
	// the simulation-only fields below (SpuriousFailProb, Strict,
	// Scheduler, Observer, FaultPlan) must be zero — New rejects the
	// configuration otherwise, so nothing is silently ignored.
	Substrate Substrate

	// SpuriousFailProb is the probability that any given RSC fails even
	// though its reservation is intact. Zero gives an ideal machine; real
	// hardware sits near zero but nonzero. The full closed range [0,1] is
	// accepted: 1.0 is the always-fail adversary, under which no RSC ever
	// succeeds — useless for running the algorithms to completion (their
	// termination bounds assume finitely many spurious failures) but a
	// legitimate extreme for fault-injection experiments that measure
	// behaviour under unbounded adversity.
	SpuriousFailProb float64

	// Strict, when set, clears a processor's reservation on any Load,
	// Store, or CAS it performs between RLL and RSC — the R4000 manual's
	// "no memory access between LL and SC" restriction. Algorithms from
	// the paper never trip this; tests use it to prove they don't.
	Strict bool

	// Seed seeds the per-processor spurious-failure generators, making
	// runs reproducible.
	Seed int64

	// Scheduler, when non-nil, is consulted before every shared-memory
	// operation: the processor blocks in Step until the scheduler grants
	// it the next step. With a serializing scheduler (internal/sched)
	// this yields fully deterministic, replayable interleavings for
	// systematic testing. Nil (the default) lets the Go runtime schedule
	// freely.
	Scheduler Scheduler

	// Observer, when non-nil, receives an Event after every shared-memory
	// operation completes. internal/trace provides a ring-buffer recorder.
	// The callback runs on the operating processor's goroutine and must be
	// safe for concurrent use.
	Observer func(Event)

	// FaultPlan, when non-nil, is consulted before every shared-memory
	// operation and may inject adversarial faults: forced spurious RSC
	// failures, targeted interference writes to the operation's word, and
	// processor stalls/crashes (BeforeOp blocking). internal/fault provides
	// deterministic, seed-free plans (burst storms, reservation stealing,
	// crash-at-step, tag pressure). The plan runs after Scheduler.Step, on
	// the operating processor's goroutine, and must be safe for concurrent
	// use by distinct processors.
	FaultPlan FaultPlan
}

// FaultInjection describes the faults a FaultPlan injects at one
// operation. The zero value injects nothing.
type FaultInjection struct {
	// SpuriousRSC forces the operation — if it is an RSC holding an intact
	// reservation — to fail spuriously, exactly as Proc.FailNext would.
	// Ignored for other operation kinds.
	SpuriousRSC bool

	// Interfere silently rewrites the operation's target word (same value,
	// fresh write) immediately before the operation executes. Like any
	// write, the rewrite invalidates every reservation on the word, so an
	// interfered RSC fails for real — the "targeted reservation stealing"
	// adversary. The rewrite is the adversary's action, not the
	// processor's: it is not counted in Stats and emits no Event.
	Interfere bool

	// Crash kills the processor before the operation executes: the
	// operation never happens, the processor's crashed flag is set, and the
	// machine panics with a CrashPanic that the driving goroutine is
	// expected to recover — modelling a process failing mid-algorithm
	// without ever completing its in-flight instruction. Unlike a blocking
	// stall (fault.Crash), a crashed processor can later be replaced with a
	// fresh incarnation via Machine.Restart.
	Crash bool
}

// FaultPlan decides, operation by operation, what faults to inject into a
// simulated machine. Implementations must be deterministic given the
// sequence of BeforeOp calls per processor so that runs replay under a
// serialized scheduler.
type FaultPlan interface {
	// BeforeOp is called on processor proc's goroutine before the
	// operation executes (after any Scheduler.Step), with the operation
	// kind and the target word's id. It may block to model a stalled or
	// crashed processor; when it blocks under a serializing scheduler the
	// whole machine stops, so crash plans are meant for free-running
	// (Scheduler == nil) executions.
	BeforeOp(proc int, op OpKind, word uint64) FaultInjection
}

// OpKind identifies a machine operation in an Event.
type OpKind uint8

// Operation kinds reported to observers. OpCrash and OpRestart are
// lifecycle transitions rather than shared-memory operations: they carry
// no Word, Val holds the incarnation generation, and they do not advance
// Steps or Stats. Observers that switch on the kind ignore them for free.
const (
	OpLoad OpKind = iota + 1
	OpStore
	OpCAS
	OpRLL
	OpRSC
	OpCrash
	OpRestart
)

// String returns the mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "LOAD"
	case OpStore:
		return "STORE"
	case OpCAS:
		return "CAS"
	case OpRLL:
		return "RLL"
	case OpRSC:
		return "RSC"
	case OpCrash:
		return "CRASH"
	case OpRestart:
		return "RESTART"
	default:
		return "?"
	}
}

// Event describes one completed shared-memory operation.
type Event struct {
	Seq      uint64 // global order stamp (total order of completions)
	Proc     int
	Op       OpKind
	Word     uint64 // the word's machine-assigned id
	Val      uint64 // value read or written (CAS: new value)
	Old      uint64 // CAS: expected old value
	OK       bool   // CAS/RSC outcome (true for loads/stores)
	Spurious bool   // RSC failed by injection
}

// Scheduler serializes processor steps; see Config.Scheduler.
type Scheduler interface {
	// Step blocks until processor proc may execute its next
	// shared-memory operation.
	Step(proc int)
}

// OpStepper is an optional refinement of Scheduler for virtual-time
// simulators: when the configured Scheduler also implements OpStepper,
// the machine calls StepOp instead of Step, passing the operation kind
// and target word so the scheduler can charge an op-dependent cost to
// its virtual clock (internal/sim builds its discrete-event engine on
// this). The blocking contract is Step's: StepOp returns only when proc
// may execute the operation.
type OpStepper interface {
	Scheduler
	StepOp(proc int, op OpKind, word uint64)
}

// Machine is a simulated multiprocessor. Create one with New, obtain Proc
// handles with Proc, and allocate shared words with NewWord.
type Machine struct {
	cfg      Config
	procs    []atomic.Pointer[Proc] // slots are swapped by Restart
	wordIDs  atomic.Uint64
	eventSeq atomic.Uint64
	steps    atomic.Uint64
	retired  procStats // counters of crashed incarnations, folded by Restart
	stepper  OpStepper // cfg.Scheduler's OpStepper refinement, resolved once at New
}

// CrashPanic is the panic value delivered when a crashed processor (see
// FaultInjection.Crash and Proc.Crash) attempts a shared-memory operation.
// Drivers of crash-restart experiments recover it at the top of the
// processor's goroutine; any other panic must be re-raised.
type CrashPanic struct {
	Proc int // processor id
	Gen  int // incarnation that died (0 for the original)
}

// Error makes an unrecovered CrashPanic readable in test output.
func (c CrashPanic) Error() string {
	return fmt.Sprintf("machine: processor %d (incarnation %d) crashed", c.Proc, c.Gen)
}

// cell is one immutable snapshot of a word's contents. Every write
// allocates a fresh cell, so pointer identity answers "was this word
// written since I read it" with no ABA ambiguity — the same property the
// hardware gets from cache-line invalidation.
type cell struct {
	val uint64
}

// Word is one shared machine word. The zero value is not usable; allocate
// words with Machine.NewWord. A word belongs to the machine that allocated
// it: on the simulation its contents live in the cell pointer, on the
// native substrate in nat, and only the owning machine's procs know which
// side is live.
type Word struct {
	cell atomic.Pointer[cell] // simulation contents (nil on native words)
	nat  atomic.Uint64        // native contents (unused on simulated words)
	id   uint64
}

// ID returns the word's machine-assigned identifier (allocation order).
func (w *Word) ID() uint64 { return w.id }

// New constructs a machine on the configured substrate.
func New(cfg Config) (*Machine, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("machine: Procs must be at least 1, got %d", cfg.Procs)
	}
	if cfg.SpuriousFailProb < 0 || cfg.SpuriousFailProb > 1 {
		return nil, fmt.Errorf("machine: SpuriousFailProb must be in [0,1], got %v", cfg.SpuriousFailProb)
	}
	switch cfg.Substrate {
	case SubstrateSim:
	case SubstrateNative:
		if err := validateNative(cfg); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("machine: unknown substrate %v", cfg.Substrate)
	}
	m := &Machine{cfg: cfg, procs: make([]atomic.Pointer[Proc], cfg.Procs)}
	if os, ok := cfg.Scheduler.(OpStepper); ok {
		m.stepper = os
	}
	for i := range m.procs {
		m.procs[i].Store(m.newProc(i, 0))
	}
	return m, nil
}

// newProc builds incarnation gen of processor id with a deterministic
// per-incarnation RNG stream.
func (m *Machine) newProc(id, gen int) *Proc {
	return &Proc{
		m:      m,
		id:     id,
		gen:    gen,
		native: m.cfg.Substrate == SubstrateNative,
		rng:    rand.New(rand.NewSource(m.cfg.Seed + int64(id)*0x9E3779B9 + int64(gen)*0x85EBCA6B)),
	}
}

// MustNew is New for statically valid configurations; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NumProcs returns the number of processors.
func (m *Machine) NumProcs() int { return m.cfg.Procs }

// Substrate returns the execution backend this machine runs on.
func (m *Machine) Substrate() Substrate { return m.cfg.Substrate }

// Proc returns the current handle for processor id. Handles are stable
// between restarts: repeated calls return the same *Proc until a
// Restart(id) installs a fresh incarnation.
func (m *Machine) Proc(id int) *Proc {
	return m.procs[id].Load()
}

// Steps returns the machine-wide count of shared-memory operations
// attempted so far — the global logical clock that lease TTLs and the
// wedge watchdog are measured in. It advances on every Load/Store/CAS/
// RLL/RSC by any processor, including operations that subsequently fail.
// On the native substrate the clock never advances (the hot path does no
// accounting), so step-denominated facilities — Registry leases, the
// wedge watchdog — are simulation-only.
func (m *Machine) Steps() uint64 { return m.steps.Load() }

// Restart replaces a crashed processor with a fresh incarnation: the new
// Proc has no reservation, wiped private registers (failNext), a fresh
// deterministic RNG stream, and an incremented generation. The dead
// incarnation's operation counters are folded into the machine totals so
// Stats never loses history. It is an error to restart a processor that
// has not crashed — a live instruction stream must not be yanked away.
func (m *Machine) Restart(id int) (*Proc, error) {
	if id < 0 || id >= len(m.procs) {
		return nil, fmt.Errorf("machine: processor id %d out of range [0,%d)", id, len(m.procs))
	}
	old := m.procs[id].Load()
	if !old.crashed.Load() {
		return nil, fmt.Errorf("machine: processor %d has not crashed; refusing to restart a live processor", id)
	}
	m.retired.Loads.Add(old.stats.Loads.Load())
	m.retired.Stores.Add(old.stats.Stores.Load())
	m.retired.CASOps.Add(old.stats.CASOps.Load())
	m.retired.RLLs.Add(old.stats.RLLs.Load())
	m.retired.RSCSuccess.Add(old.stats.RSCSuccess.Load())
	m.retired.RSCRealFail.Add(old.stats.RSCRealFail.Load())
	m.retired.RSCSpurious.Add(old.stats.RSCSpurious.Load())
	p := m.newProc(id, old.gen+1)
	m.procs[id].Store(p)
	p.emitLifecycle(OpRestart)
	return p, nil
}

// NewWord allocates a shared word initialized to v. Simulated words get
// an initial cell; native words hold their contents inline (no
// allocation beyond the Word itself, and none ever again: the native
// operations are 0 allocs/op).
func (m *Machine) NewWord(v uint64) *Word {
	w := &Word{id: m.wordIDs.Add(1)}
	if m.cfg.Substrate == SubstrateNative {
		w.nat.Store(v)
	} else {
		w.cell.Store(&cell{val: v})
	}
	return w
}

// Stats aggregates operation counters across all processors, including
// the folded counters of crashed-and-replaced incarnations. On the
// native substrate all counters stay zero: the hot path counts nothing.
func (m *Machine) Stats() Stats {
	total := Stats{
		Loads:       m.retired.Loads.Load(),
		Stores:      m.retired.Stores.Load(),
		CASOps:      m.retired.CASOps.Load(),
		RLLs:        m.retired.RLLs.Load(),
		RSCSuccess:  m.retired.RSCSuccess.Load(),
		RSCRealFail: m.retired.RSCRealFail.Load(),
		RSCSpurious: m.retired.RSCSpurious.Load(),
	}
	for i := range m.procs {
		p := m.procs[i].Load()
		total.Loads += p.stats.Loads.Load()
		total.Stores += p.stats.Stores.Load()
		total.CASOps += p.stats.CASOps.Load()
		total.RLLs += p.stats.RLLs.Load()
		total.RSCSuccess += p.stats.RSCSuccess.Load()
		total.RSCRealFail += p.stats.RSCRealFail.Load()
		total.RSCSpurious += p.stats.RSCSpurious.Load()
	}
	return total
}

// Stats is a snapshot of operation counters.
type Stats struct {
	Loads       uint64
	Stores      uint64
	CASOps      uint64
	RLLs        uint64
	RSCSuccess  uint64
	RSCRealFail uint64 // RSC failed because the word was written or no reservation held
	RSCSpurious uint64 // RSC failed by injection despite an intact reservation
}

// procStats holds per-processor counters; they are atomics only so that
// Machine.Stats may be called concurrently with running processors.
type procStats struct {
	Loads       atomic.Uint64
	Stores      atomic.Uint64
	CASOps      atomic.Uint64
	RLLs        atomic.Uint64
	RSCSuccess  atomic.Uint64
	RSCRealFail atomic.Uint64
	RSCSpurious atomic.Uint64
}

// Proc is one simulated processor. A Proc must be driven by at most one
// goroutine at a time (it models a hardware CPU executing one instruction
// stream); distinct Procs may run fully in parallel.
type Proc struct {
	m   *Machine
	id  int
	gen int
	rng *rand.Rand

	// crashed, once set, makes every subsequent shared-memory operation
	// through this handle panic with a CrashPanic: the incarnation is dead
	// and only Machine.Restart can produce a usable successor.
	crashed atomic.Bool

	// native routes the processor's operations to the native substrate
	// fast paths in native.go. Fixed at construction from the machine's
	// Config.Substrate.
	native bool

	// reservation state (the R4000 LLBit + reserved address + snapshot).
	// The simulation snapshots the cell pointer (write-sensitive); the
	// native substrate records the loaded value (resVal, value-based).
	resWord *Word
	resCell *cell
	resVal  uint64

	// failNext forces the next n RSCs with intact reservations to fail
	// spuriously; used by tests and failure-injection experiments.
	failNext int

	stats procStats
}

// ID returns the processor's identifier in [0, Procs).
func (p *Proc) ID() int { return p.id }

// Generation returns which incarnation of the processor this handle is:
// 0 for the original, incremented by each Restart.
func (p *Proc) Generation() int { return p.gen }

// Machine returns the machine this processor belongs to.
func (p *Proc) Machine() *Machine { return p.m }

// Crash marks the processor crashed. The flag may be set from any
// goroutine (it is how a supervisor kills a victim); the panic itself is
// raised on the processor's own goroutine at its next shared-memory
// operation, so the in-flight algorithm never completes another step.
// Idempotent. The reservation dies with the incarnation: a restarted
// processor starts with no reservation, and the dead handle can never
// reach RSC again to exploit the stale one.
func (p *Proc) Crash() {
	if p.native {
		panic("machine: Crash is a simulation-substrate feature; fail-stop modeling needs the simulated operation boundary (a native processor is just a goroutine)")
	}
	if !p.crashed.Swap(true) {
		p.emitLifecycle(OpCrash)
	}
}

// Crashed reports whether the processor's current incarnation is dead.
func (p *Proc) Crashed() bool { return p.crashed.Load() }

// FailNext forces the next n RSC attempts that would otherwise succeed (or
// fail for real reasons) to fail spuriously instead. Deterministic
// counterpart of SpuriousFailProb.
func (p *Proc) FailNext(n int) { p.failNext += n }

// Load reads a shared word. In Strict mode it clears any reservation, as
// an intervening memory access may on real hardware.
func (p *Proc) Load(w *Word) uint64 {
	if p.native {
		return p.nativeLoad(w)
	}
	p.step(OpLoad, w)
	p.fault(OpLoad, w)
	p.stats.Loads.Add(1)
	if p.m.cfg.Strict {
		p.clearReservation()
	}
	v := w.cell.Load().val
	p.emit(OpLoad, w, v, 0, true, false)
	return v
}

// Store writes a shared word. The write installs a fresh cell, so every
// reservation on w — including stores of an identical value — is
// invalidated, exactly as a cache invalidation clears LLBits. In Strict
// mode the writer's own reservation is cleared too.
func (p *Proc) Store(w *Word, v uint64) {
	if p.native {
		p.nativeStore(w, v)
		return
	}
	p.step(OpStore, w)
	p.fault(OpStore, w)
	p.stats.Stores.Add(1)
	if p.m.cfg.Strict {
		p.clearReservation()
	}
	w.cell.Store(&cell{val: v})
	p.emit(OpStore, w, v, 0, true, false)
}

// CAS is the machine's native compare-and-swap, provided for baselines and
// for machines configured as CAS-only hardware. It is lock-free: it
// retries only when another write lands between its load and its pointer
// swap, in which case some other operation succeeded.
func (p *Proc) CAS(w *Word, old, new uint64) bool {
	if p.native {
		return p.nativeCAS(w, old, new)
	}
	p.step(OpCAS, w)
	p.fault(OpCAS, w)
	p.stats.CASOps.Add(1)
	if p.m.cfg.Strict {
		p.clearReservation()
	}
	for {
		c := w.cell.Load()
		if c.val != old {
			p.emit(OpCAS, w, new, old, false, false)
			return false
		}
		if w.cell.CompareAndSwap(c, &cell{val: new}) {
			p.emit(OpCAS, w, new, old, true, false)
			return true
		}
	}
}

// RLL performs a restricted load-linked: it reads w and establishes this
// processor's single reservation on it, displacing any previous
// reservation (one LLBit per processor).
func (p *Proc) RLL(w *Word) uint64 {
	if p.native {
		return p.nativeRLL(w)
	}
	p.step(OpRLL, w)
	p.fault(OpRLL, w)
	p.stats.RLLs.Add(1)
	c := w.cell.Load()
	p.resWord = w
	p.resCell = c
	p.emit(OpRLL, w, c.val, 0, true, false)
	return c.val
}

// RSC performs a restricted store-conditional of v to w. It succeeds only
// if the processor holds a reservation on w, the word has not been written
// since the RLL, and no spurious failure is injected. Any outcome clears
// the reservation. On success the write is atomic with the reservation
// check (pointer CAS on the cell).
func (p *Proc) RSC(w *Word, v uint64) bool {
	if p.native {
		return p.nativeRSC(w, v)
	}
	p.step(OpRSC, w)
	forced := p.fault(OpRSC, w)
	resWord, resCell := p.resWord, p.resCell
	p.clearReservation()
	if resWord != w || resCell == nil {
		// No reservation on this word: real failure (e.g. reservation was
		// displaced by a later RLL, or cleared by Strict-mode accesses).
		p.stats.RSCRealFail.Add(1)
		p.emit(OpRSC, w, v, 0, false, false)
		return false
	}
	if p.failNext > 0 {
		p.failNext--
		p.stats.RSCSpurious.Add(1)
		p.emit(OpRSC, w, v, 0, false, true)
		return false
	}
	if forced {
		p.stats.RSCSpurious.Add(1)
		p.emit(OpRSC, w, v, 0, false, true)
		return false
	}
	if pr := p.m.cfg.SpuriousFailProb; pr > 0 && p.rng.Float64() < pr {
		p.stats.RSCSpurious.Add(1)
		p.emit(OpRSC, w, v, 0, false, true)
		return false
	}
	if w.cell.CompareAndSwap(resCell, &cell{val: v}) {
		p.stats.RSCSuccess.Add(1)
		p.emit(OpRSC, w, v, 0, true, false)
		return true
	}
	p.stats.RSCRealFail.Add(1)
	p.emit(OpRSC, w, v, 0, false, false)
	return false
}

// HoldsReservation reports whether the processor currently holds a
// reservation on w. Intended for tests asserting the restriction model.
func (p *Proc) HoldsReservation(w *Word) bool {
	if p.native {
		return p.resWord == w
	}
	return p.resWord == w && p.resCell != nil
}

// emit reports a completed operation to the configured observer, if any.
func (p *Proc) emit(op OpKind, w *Word, val, old uint64, ok, spurious bool) {
	obs := p.m.cfg.Observer
	if obs == nil {
		return
	}
	obs(Event{
		Seq:      p.m.eventSeq.Add(1),
		Proc:     p.id,
		Op:       op,
		Word:     w.id,
		Val:      val,
		Old:      old,
		OK:       ok,
		Spurious: spurious,
	})
}

// emitLifecycle reports a crash or restart transition to the observer:
// no word, Val = the incarnation generation that died (OpCrash) or came
// up (OpRestart), OK true only for restarts.
func (p *Proc) emitLifecycle(op OpKind) {
	obs := p.m.cfg.Observer
	if obs == nil {
		return
	}
	obs(Event{
		Seq:  p.m.eventSeq.Add(1),
		Proc: p.id,
		Op:   op,
		Val:  uint64(p.gen),
		OK:   op == OpRestart,
	})
}

// step advances the machine's global logical clock, enforces the crash
// flag, and consults the configured scheduler, if any, before a
// shared-memory operation. op and w identify the operation about to
// execute, forwarded to an OpStepper scheduler for virtual-time cost
// accounting.
func (p *Proc) step(op OpKind, w *Word) {
	if p.crashed.Load() {
		panic(CrashPanic{Proc: p.id, Gen: p.gen})
	}
	p.m.steps.Add(1)
	if os := p.m.stepper; os != nil {
		os.StepOp(p.id, op, w.id)
	} else if s := p.m.cfg.Scheduler; s != nil {
		s.Step(p.id)
	}
}

// fault consults the configured fault plan, if any, before a shared-memory
// operation, applying any interference write and reporting whether a
// spurious RSC failure was demanded.
func (p *Proc) fault(op OpKind, w *Word) (spuriousRSC bool) {
	fp := p.m.cfg.FaultPlan
	if fp == nil {
		return false
	}
	inj := fp.BeforeOp(p.id, op, w.id)
	if inj.Crash {
		if !p.crashed.Swap(true) {
			p.emitLifecycle(OpCrash)
		}
		panic(CrashPanic{Proc: p.id, Gen: p.gen})
	}
	if inj.Interfere {
		// Silent rewrite: same value, fresh cell. Every reservation on w is
		// invalidated (cache-line invalidation does not inspect values).
		w.cell.Store(&cell{val: w.cell.Load().val})
	}
	return inj.SpuriousRSC
}

func (p *Proc) clearReservation() {
	p.resWord = nil
	p.resCell = nil
}
