package machine

import (
	"fmt"
	"sync"
)

// LeaseState is the lifecycle state of one processor's registry lease.
type LeaseState uint8

// Lease states. A processor moves Free → Live on Join, Live → Free on a
// clean Leave, and Live → Expired when it stops heartbeating for longer
// than the TTL (ExpireStale) — the signal that its per-process resources
// are orphaned and may be reclaimed. Expired → Live requires a fresh Join,
// which recovery performs after Machine.Restart.
const (
	LeaseFree LeaseState = iota
	LeaseLive
	LeaseExpired
)

// String returns the state's mnemonic.
func (s LeaseState) String() string {
	switch s {
	case LeaseFree:
		return "free"
	case LeaseLive:
		return "live"
	case LeaseExpired:
		return "expired"
	default:
		return "?"
	}
}

// Registry is a lease-based membership view of a machine's processors, so
// the active population can change mid-run: processors Join before
// driving operations, Heartbeat while they run, and Leave when done. Time
// is the machine's global step counter (Machine.Steps), not wall clock,
// so lease expiry is deterministic for a deterministic execution: a
// processor that has not heartbeat for ttl global steps — while the rest
// of the machine demonstrably kept executing — is presumed crashed.
//
// The registry is a pure detector: it never kills or restarts anything
// itself. internal/recovery couples it to the wedge watchdog and to the
// per-construction reclamation paths.
type Registry struct {
	m   *Machine
	ttl uint64

	//llsc:allow nakedatomic(supervisory bookkeeping, not algorithm code: the lease-table mutex never guards shared words, so nothing on the verified non-blocking path can block on it)
	mu     sync.Mutex
	leases []leaseEntry

	joins    uint64
	leaves   uint64
	beats    uint64
	expiries uint64
}

type leaseEntry struct {
	state    LeaseState
	lastBeat uint64 // machine step of the last Join/Heartbeat
}

// NewRegistry builds a registry over m's processors with the given lease
// TTL in machine steps. A TTL below 1 is rejected: it would expire a
// lease the instant it was granted.
func NewRegistry(m *Machine, ttl uint64) (*Registry, error) {
	if ttl < 1 {
		return nil, fmt.Errorf("machine: lease TTL must be at least 1 step, got %d", ttl)
	}
	if m.Substrate() == SubstrateNative {
		return nil, fmt.Errorf("machine: registry leases are denominated in machine steps, and the native substrate's step clock never advances; leases are simulation-only")
	}
	return &Registry{m: m, ttl: ttl, leases: make([]leaseEntry, m.NumProcs())}, nil
}

// TTL returns the lease time-to-live in machine steps.
func (r *Registry) TTL() uint64 { return r.ttl }

func (r *Registry) check(id int) error {
	if id < 0 || id >= len(r.leases) {
		return fmt.Errorf("machine: processor id %d out of range [0,%d)", id, len(r.leases))
	}
	return nil
}

// Join grants processor id a fresh lease. Joining over an expired lease
// is the restart path and is allowed; joining over a live lease is a
// double-join programming error.
func (r *Registry) Join(id int) error {
	if err := r.check(id); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.leases[id].state == LeaseLive {
		return fmt.Errorf("machine: processor %d already holds a live lease", id)
	}
	r.leases[id] = leaseEntry{state: LeaseLive, lastBeat: r.m.Steps()}
	r.joins++
	return nil
}

// Heartbeat renews processor id's lease. If the lease has already lapsed
// (the heartbeat arrives more than TTL steps after the previous one), the
// renewal is REFUSED and the lease marked expired: this is lease fencing
// — a process that outlived its lease must assume it has been declared
// dead, abandon its in-flight work, and rejoin through recovery, because
// reclamation may already have begun on its resources.
func (r *Registry) Heartbeat(id int) error {
	if err := r.check(id); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	l := &r.leases[id]
	if l.state != LeaseLive {
		return fmt.Errorf("machine: processor %d has no live lease to heartbeat (state %s)", id, l.state)
	}
	now := r.m.Steps()
	if now-l.lastBeat > r.ttl {
		l.state = LeaseExpired
		r.expiries++
		return fmt.Errorf("machine: processor %d lease lapsed (%d steps since last beat, ttl %d); rejoin required", id, now-l.lastBeat, r.ttl)
	}
	l.lastBeat = now
	r.beats++
	return nil
}

// Leave releases processor id's lease cleanly (no reclamation needed).
func (r *Registry) Leave(id int) error {
	if err := r.check(id); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.leases[id].state != LeaseLive {
		return fmt.Errorf("machine: processor %d has no live lease to leave (state %s)", id, r.leases[id].state)
	}
	r.leases[id] = leaseEntry{state: LeaseFree}
	r.leaves++
	return nil
}

// ExpireStale sweeps the registry, marking every live lease that has not
// heartbeat for more than TTL steps as expired, and returns the ids newly
// expired by this sweep. Supervisors call it periodically; an expired id
// is the trigger for restart-and-reclaim.
func (r *Registry) ExpireStale() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.m.Steps()
	var expired []int
	for id := range r.leases {
		l := &r.leases[id]
		if l.state == LeaseLive && now-l.lastBeat > r.ttl {
			l.state = LeaseExpired
			r.expiries++
			expired = append(expired, id)
		}
	}
	return expired
}

// State returns processor id's current lease state (LeaseFree for an
// out-of-range id, which cannot hold a lease).
func (r *Registry) State(id int) LeaseState {
	if r.check(id) != nil {
		return LeaseFree
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leases[id].state
}

// Live returns the number of live leases.
func (r *Registry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, l := range r.leases {
		if l.state == LeaseLive {
			n++
		}
	}
	return n
}

// RegistryStats is a snapshot of the registry's event counters.
type RegistryStats struct {
	Joins    uint64 `json:"joins"`
	Leaves   uint64 `json:"leaves"`
	Beats    uint64 `json:"beats"`
	Expiries uint64 `json:"expiries"`
}

// Stats returns the registry's event counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{Joins: r.joins, Leaves: r.leaves, Beats: r.beats, Expiries: r.expiries}
}
