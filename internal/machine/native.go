package machine

// This file is the SubstrateNative backend: the machine instruction set
// mapped straight onto hardware sync/atomic, with no step accounting,
// scheduling, fault injection, or event emission on the hot path. It is
// the audited home of the raw atomics that realize the native substrate;
// llscvet's nakedatomic fence covers this package precisely so that
// atomics anywhere else must either route through machine.Word or carry
// their own justification.
//
// Semantics relative to the simulation, in full:
//
//   - Load/Store/CAS are exactly the hardware operations on the word.
//   - RLL records a per-processor (word, value) reservation; RSC resolves
//     it with CompareAndSwap against the recorded value. Go exposes no
//     true LL/SC on any supported architecture (sync/atomic compiles to
//     CAS loops even on LL/SC hardware), so this is the strongest
//     emulation available — and it is value-based, meaning a native RSC
//     is NOT write-sensitive: if the word is rewritten to its reserved
//     value (ABA), the RSC succeeds where the simulation's cell-pointer
//     reservation would fail. The paper's constructions are immune by
//     design — every figure packs a tag next to the data exactly so that
//     values never recur while a sequence could compare against them —
//     which is why the figure code runs unmodified here. Code that relies
//     on write-sensitivity itself (rather than via tags) is simulation-
//     only and must say so.
//   - RSC never fails spuriously on its own: hardware CAS either
//     conflicts or succeeds. Proc.FailNext is still honored, so tests
//     that inject deterministic spurious bursts (Theorem 1's "constant
//     time after the last spurious failure" experiments, the contention
//     policies' spurious-cause handling) exercise identical code paths on
//     both substrates.
//   - Nothing counts: Machine.Steps stays 0, Machine.Stats stays zero,
//     no Event is emitted, and no reservation survives a crash because
//     Crash itself is refused (a native processor is a real goroutine;
//     fail-stop modeling needs the simulated op boundary).
//
// The hot path allocates nothing (native_test.go pins 0 allocs/op) and
// adds one predicted branch per operation over a bare sync/atomic call.

// nativeLoad is Proc.Load on the native substrate.
func (p *Proc) nativeLoad(w *Word) uint64 {
	return w.nat.Load()
}

// nativeStore is Proc.Store on the native substrate. Unlike the
// simulation there is no cell to replace, so other processors' value
// reservations on w survive a store that happens to write the reserved
// value back (the ABA caveat above).
func (p *Proc) nativeStore(w *Word, v uint64) {
	w.nat.Store(v)
}

// nativeCAS is Proc.CAS on the native substrate: the hardware operation
// itself, one shot, no retry loop (the simulation's loop exists only to
// make its two-step pointer emulation atomic).
func (p *Proc) nativeCAS(w *Word, old, new uint64) bool {
	return w.nat.CompareAndSwap(old, new)
}

// nativeRLL is Proc.RLL on the native substrate: load the word and
// record a (word, value) reservation, displacing any previous one — one
// reservation per processor, as on the simulated machine.
func (p *Proc) nativeRLL(w *Word) uint64 {
	v := w.nat.Load()
	p.resWord = w
	p.resVal = v
	return v
}

// nativeRSC is Proc.RSC on the native substrate: succeed iff a
// reservation on w is held, no deterministic spurious failure is queued,
// and the word still holds the reserved value at the CAS. Any outcome
// clears the reservation.
func (p *Proc) nativeRSC(w *Word, v uint64) bool {
	resWord, resVal := p.resWord, p.resVal
	p.resWord = nil
	if resWord != w {
		return false
	}
	if p.failNext > 0 {
		p.failNext--
		return false
	}
	return w.nat.CompareAndSwap(resVal, v)
}
