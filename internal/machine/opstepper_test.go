package machine

import (
	"reflect"
	"testing"
)

// recordingStepper implements OpStepper and records every (proc, op, word)
// triple it is consulted for. Single-goroutine use only.
type recordingStepper struct {
	procs []int
	ops   []OpKind
	words []uint64
	steps int // Step calls (must stay 0: the machine must prefer StepOp)
}

func (r *recordingStepper) Step(proc int) { r.steps++ }

func (r *recordingStepper) StepOp(proc int, op OpKind, word uint64) {
	r.procs = append(r.procs, proc)
	r.ops = append(r.ops, op)
	r.words = append(r.words, word)
}

// TestOpStepperReceivesOps pins the virtual-time hook contract: a
// Scheduler that also implements OpStepper sees every shared-memory
// operation with its kind and target word, in program order, and its
// plain Step method is never used.
func TestOpStepperReceivesOps(t *testing.T) {
	rec := &recordingStepper{}
	m := MustNew(Config{Procs: 1, Scheduler: rec})
	p := m.Proc(0)
	w := m.NewWord(7)
	w2 := m.NewWord(0)

	p.Load(w)
	p.Store(w2, 3)
	p.CAS(w, 7, 8)
	p.RLL(w)
	p.RSC(w, 9)

	wantOps := []OpKind{OpLoad, OpStore, OpCAS, OpRLL, OpRSC}
	wantWords := []uint64{w.ID(), w2.ID(), w.ID(), w.ID(), w.ID()}
	if !reflect.DeepEqual(rec.ops, wantOps) {
		t.Errorf("ops = %v, want %v", rec.ops, wantOps)
	}
	if !reflect.DeepEqual(rec.words, wantWords) {
		t.Errorf("words = %v, want %v", rec.words, wantWords)
	}
	for i, pr := range rec.procs {
		if pr != 0 {
			t.Errorf("call %d reported proc %d, want 0", i, pr)
		}
	}
	if rec.steps != 0 {
		t.Errorf("plain Step called %d times; an OpStepper scheduler must be driven through StepOp only", rec.steps)
	}
	if got := m.Steps(); got != 5 {
		t.Errorf("Steps() = %d, want 5 (the logical clock still advances)", got)
	}
}

// plainScheduler implements only Scheduler.
type plainScheduler struct{ steps int }

func (s *plainScheduler) Step(proc int) { s.steps++ }

// TestPlainSchedulerStillStepped: a Scheduler without the OpStepper
// refinement keeps the original Step contract.
func TestPlainSchedulerStillStepped(t *testing.T) {
	s := &plainScheduler{}
	m := MustNew(Config{Procs: 1, Scheduler: s})
	p := m.Proc(0)
	w := m.NewWord(0)
	p.Store(w, 1)
	p.Load(w)
	if s.steps != 2 {
		t.Errorf("Step called %d times, want 2", s.steps)
	}
}
