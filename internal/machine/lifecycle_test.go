package machine

import (
	"testing"
)

// recoverCrash runs f and returns the CrashPanic it panicked with, failing
// the test if f completed or panicked with anything else.
func recoverCrash(t *testing.T, f func()) (cp CrashPanic) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected CrashPanic, got normal completion")
		}
		var ok bool
		cp, ok = r.(CrashPanic)
		if !ok {
			t.Fatalf("expected CrashPanic, got %v", r)
		}
	}()
	f()
	return
}

func TestCrashPanicsOnNextOp(t *testing.T) {
	m := MustNew(Config{Procs: 1})
	p := m.Proc(0)
	w := m.NewWord(1)
	p.Store(w, 2) // works while alive
	p.Crash()
	if !p.Crashed() {
		t.Fatal("Crashed() false after Crash()")
	}
	cp := recoverCrash(t, func() { p.Load(w) })
	if cp.Proc != 0 || cp.Gen != 0 {
		t.Fatalf("CrashPanic = %+v, want Proc 0 Gen 0", cp)
	}
	// Still dead: every subsequent op panics too.
	recoverCrash(t, func() { p.RLL(w) })
	if got := w.cell.Load().val; got != 2 {
		t.Fatalf("word mutated by dead processor: %d", got)
	}
}

func TestRestartLifecycle(t *testing.T) {
	m := MustNew(Config{Procs: 2, Seed: 7})
	p := m.Proc(0)
	w := m.NewWord(10)

	if _, err := m.Restart(0); err == nil {
		t.Fatal("Restart of a live processor must fail")
	}
	if _, err := m.Restart(5); err == nil {
		t.Fatal("Restart out of range must fail")
	}

	p.RLL(w) // hold a reservation across the crash
	p.FailNext(3)
	p.Crash()
	recoverCrash(t, func() { p.RSC(w, 11) })

	before := m.Stats()
	p2, err := m.Restart(0)
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if p2.Generation() != 1 || p2.ID() != 0 {
		t.Fatalf("restarted handle gen=%d id=%d, want 1/0", p2.Generation(), p2.ID())
	}
	if m.Proc(0) != p2 {
		t.Fatal("Machine.Proc(0) does not return the new incarnation")
	}
	if p2.Crashed() {
		t.Fatal("fresh incarnation is born crashed")
	}
	if p2.HoldsReservation(w) {
		t.Fatal("reservation leaked across restart")
	}
	// Private registers wiped: the old FailNext(3) must not affect the new
	// incarnation, so an RLL/RSC pair succeeds immediately.
	if p2.RLL(w); !p2.RSC(w, 99) {
		t.Fatal("fresh incarnation's RSC failed: failNext leaked across restart")
	}
	// Stats history preserved: nothing the dead incarnation did was lost.
	after := m.Stats()
	if after.RLLs < before.RLLs || after.RSCSuccess != before.RSCSuccess+1 {
		t.Fatalf("stats lost across restart: before %+v after %+v", before, after)
	}

	// The dead handle stays dead even after the slot was replaced.
	recoverCrash(t, func() { p.Load(w) })

	// A second crash-restart increments the generation again.
	p2.Crash()
	recoverCrash(t, func() { p2.Load(w) })
	p3, err := m.Restart(0)
	if err != nil {
		t.Fatalf("second Restart: %v", err)
	}
	if p3.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", p3.Generation())
	}
}

func TestStepsAdvance(t *testing.T) {
	m := MustNew(Config{Procs: 1})
	p := m.Proc(0)
	w := m.NewWord(0)
	if m.Steps() != 0 {
		t.Fatalf("fresh machine Steps = %d", m.Steps())
	}
	p.Load(w)
	p.Store(w, 1)
	p.RLL(w)
	p.RSC(w, 2)
	if got := m.Steps(); got != 4 {
		t.Fatalf("Steps = %d after 4 ops, want 4", got)
	}
}

// crashAtPlan crashes one processor at its nth operation.
type crashAtPlan struct {
	victim int
	at     int
	seen   int
}

func (c *crashAtPlan) BeforeOp(proc int, op OpKind, word uint64) FaultInjection {
	if proc != c.victim {
		return FaultInjection{}
	}
	c.seen++
	return FaultInjection{Crash: c.seen == c.at}
}

func TestFaultPlanCrash(t *testing.T) {
	m := MustNew(Config{Procs: 1, FaultPlan: &crashAtPlan{victim: 0, at: 2}})
	p := m.Proc(0)
	w := m.NewWord(5)
	p.Load(w)
	cp := recoverCrash(t, func() { p.Store(w, 6) })
	if cp.Proc != 0 {
		t.Fatalf("CrashPanic.Proc = %d", cp.Proc)
	}
	if !p.Crashed() {
		t.Fatal("plan-injected crash did not set the crashed flag")
	}
	if got := w.cell.Load().val; got != 5 {
		t.Fatalf("crashed store took effect: word = %d", got)
	}
	if _, err := m.Restart(0); err != nil {
		t.Fatalf("Restart after plan crash: %v", err)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	m := MustNew(Config{Procs: 3})
	if _, err := NewRegistry(m, 0); err == nil {
		t.Fatal("TTL 0 must be rejected")
	}
	r, err := NewRegistry(m, 10)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	if r.TTL() != 10 {
		t.Fatalf("TTL = %d", r.TTL())
	}

	if err := r.Heartbeat(0); err == nil {
		t.Fatal("Heartbeat before Join must fail")
	}
	if err := r.Leave(0); err == nil {
		t.Fatal("Leave before Join must fail")
	}
	if err := r.Join(0); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := r.Join(0); err == nil {
		t.Fatal("double Join must fail")
	}
	if err := r.Join(3); err == nil {
		t.Fatal("out-of-range Join must fail")
	}
	if got := r.State(0); got != LeaseLive {
		t.Fatalf("State(0) = %v", got)
	}
	if got := r.State(1); got != LeaseFree {
		t.Fatalf("State(1) = %v", got)
	}
	if r.Live() != 1 {
		t.Fatalf("Live = %d", r.Live())
	}

	p := m.Proc(0)
	w := m.NewWord(0)
	// Within TTL: heartbeats renew.
	for i := 0; i < 5; i++ {
		p.Store(w, uint64(i))
		if err := r.Heartbeat(0); err != nil {
			t.Fatalf("in-TTL Heartbeat: %v", err)
		}
	}
	// Nothing stale yet.
	if exp := r.ExpireStale(); len(exp) != 0 {
		t.Fatalf("ExpireStale expired %v with fresh leases", exp)
	}

	// Advance the global clock past the TTL without heartbeating 0.
	for i := 0; i < 11; i++ {
		p.Store(w, uint64(i))
	}
	exp := r.ExpireStale()
	if len(exp) != 1 || exp[0] != 0 {
		t.Fatalf("ExpireStale = %v, want [0]", exp)
	}
	if got := r.State(0); got != LeaseExpired {
		t.Fatalf("State after expiry = %v", got)
	}
	// Fencing: the expired holder cannot heartbeat or leave its way back.
	if err := r.Heartbeat(0); err == nil {
		t.Fatal("Heartbeat on expired lease must fail")
	}
	if err := r.Leave(0); err == nil {
		t.Fatal("Leave on expired lease must fail")
	}
	// Rejoin over an expired lease is the restart path.
	if err := r.Join(0); err != nil {
		t.Fatalf("rejoin after expiry: %v", err)
	}
	if got := r.State(0); got != LeaseLive {
		t.Fatalf("State after rejoin = %v", got)
	}
	if err := r.Leave(0); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if got := r.State(0); got != LeaseFree {
		t.Fatalf("State after Leave = %v", got)
	}

	st := r.Stats()
	want := RegistryStats{Joins: 2, Leaves: 1, Beats: 5, Expiries: 1}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

func TestHeartbeatLapseFences(t *testing.T) {
	m := MustNew(Config{Procs: 1})
	r, _ := NewRegistry(m, 3)
	if err := r.Join(0); err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	w := m.NewWord(0)
	for i := 0; i < 4; i++ {
		p.Store(w, 0)
	}
	// The lease lapsed before this heartbeat: it must be refused AND the
	// lease transitioned to expired, without an ExpireStale sweep.
	err := r.Heartbeat(0)
	if err == nil {
		t.Fatal("lapsed Heartbeat must be refused")
	}
	if got := r.State(0); got != LeaseExpired {
		t.Fatalf("State after lapsed heartbeat = %v, want expired", got)
	}
	if r.Stats().Expiries != 1 {
		t.Fatalf("Expiries = %d", r.Stats().Expiries)
	}
}
