package linearizability

import (
	"fmt"
	"sort"

	"repro/internal/history"
)

// This file extends the Wing–Gong checker to long histories via windowed
// checking. Check is exact but exponential; stress runs record thousands
// of operations. The classic escape hatch is to cut the history at
// quiescent points — instants where every earlier operation has returned
// before any later one is called — because every linearization must order
// all operations before such a cut ahead of all operations after it.
// Checking each window independently is therefore sound, PROVIDED the
// windows are chained correctly: a window generally has several legal
// linearizations ending in DIFFERENT abstract states, and picking a single
// witness's final state can wrongly reject the next window. FinalStates
// computes the full set of reachable final states; CheckWindows threads
// that set through the cuts, which makes the decomposition exact.

// FinalStates returns every abstract state in which some legal
// linearization of ops can end, starting from any of the given initial
// states. An empty result means no initial state admits a linearization.
// The result is sorted (by Val, then Valid) for determinism. Structural
// limits are the same as Check's.
func FinalStates(ops []history.Op, initials []State) ([]State, error) {
	if len(ops) > MaxOps {
		return nil, fmt.Errorf("linearizability: history has %d ops, checker supports at most %d", len(ops), MaxOps)
	}
	for _, op := range ops {
		if op.Proc < 0 || op.Proc >= MaxProcs {
			return nil, fmt.Errorf("linearizability: process id %d out of range [0,%d)", op.Proc, MaxProcs)
		}
		if op.Return < op.Call {
			return nil, fmt.Errorf("linearizability: op %v returns before it is called", op)
		}
	}
	c := &collector{ops: ops, visited: make(map[node]struct{}), finals: make(map[State]struct{})}
	for _, s := range initials {
		c.explore(0, s)
	}
	out := make([]State, 0, len(c.finals))
	for s := range c.finals {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Val != out[j].Val {
			return out[i].Val < out[j].Val
		}
		return out[i].Valid < out[j].Valid
	})
	return out, nil
}

// collector is the all-linearizations variant of checker: instead of
// stopping at the first complete order it records the final state of every
// one. The (mask, state) memoization stays valid because the reachable
// final-state set from a node depends only on the node.
type collector struct {
	ops     []history.Op
	visited map[node]struct{}
	finals  map[State]struct{}
}

func (c *collector) explore(mask uint64, s State) {
	if mask == (uint64(1)<<uint(len(c.ops)))-1 {
		c.finals[s] = struct{}{}
		return
	}
	n := node{mask: mask, state: s}
	if _, seen := c.visited[n]; seen {
		return
	}
	c.visited[n] = struct{}{}

	minReturn := int64(1<<63 - 1)
	for i, op := range c.ops {
		if mask&(1<<uint(i)) == 0 && op.Return < minReturn {
			minReturn = op.Return
		}
	}
	for i, op := range c.ops {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		if op.Call > minReturn {
			continue
		}
		if next, legal := Step(s, op); legal {
			c.explore(mask|1<<uint(i), next)
		}
	}
}

// WindowResult reports CheckWindows's verdict.
type WindowResult struct {
	// Ok is true iff the whole history is linearizable.
	Ok bool
	// Windows is the number of windows the history was cut into.
	Windows int
	// FailedWindow, when !Ok, is the index of the first window with no
	// legal linearization from the states reachable so far; -1 otherwise.
	FailedWindow int
	// FinalStates holds the reachable final states of the last window
	// when Ok — callers chaining several histories can feed them back in
	// via CheckWindowsFrom.
	FinalStates []State
}

// CheckWindows reports whether ops is linearizable starting from initial,
// decomposing the history at quiescent cuts into windows of at most window
// operations each. It is exact — equivalent to Check — whenever the
// decomposition succeeds; it returns an error if some concurrent burst
// (a stretch with no quiescent cut) exceeds MaxOps, since that burst
// cannot be windowed.
func CheckWindows(ops []history.Op, initial State, window int) (WindowResult, error) {
	return CheckWindowsFrom(ops, []State{initial}, window)
}

// CheckWindowsFrom is CheckWindows from a set of candidate initial states,
// accepting if any of them admits a linearization.
func CheckWindowsFrom(ops []history.Op, initials []State, window int) (WindowResult, error) {
	if window <= 0 || window > MaxOps {
		return WindowResult{}, fmt.Errorf("linearizability: window size %d out of range [1,%d]", window, MaxOps)
	}
	if len(ops) == 0 {
		return WindowResult{Ok: true, FailedWindow: -1, FinalStates: append([]State(nil), initials...)}, nil
	}

	// Operations must be scanned in call order for cut detection; the
	// checker itself does not care about slice order.
	sorted := append([]history.Op(nil), ops...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })

	// A cut before index i is quiescent iff every op before i returned
	// before every op from i on was called.
	maxRet := make([]int64, len(sorted))
	for i, op := range sorted {
		maxRet[i] = op.Return
		if i > 0 && maxRet[i-1] > maxRet[i] {
			maxRet[i] = maxRet[i-1]
		}
	}
	var cuts []int // segment boundaries, exclusive of 0, inclusive of len
	for i := 1; i < len(sorted); i++ {
		if maxRet[i-1] < sorted[i].Call {
			cuts = append(cuts, i)
		}
	}
	cuts = append(cuts, len(sorted))

	// Greedily merge segments into windows of at most window ops. A lone
	// segment may exceed the requested window; it is checked whole as long
	// as it fits the checker's hard limit.
	states := append([]State(nil), initials...)
	res := WindowResult{FailedWindow: -1}
	start, prev := 0, 0
	flush := func(end int) error {
		if start == end {
			return nil
		}
		fs, err := FinalStates(sorted[start:end], states)
		if err != nil {
			return fmt.Errorf("window %d (ops [%d,%d)): %w", res.Windows, start, end, err)
		}
		res.Windows++
		if len(fs) == 0 {
			res.FailedWindow = res.Windows - 1
			return errNotLinearizable
		}
		states = fs
		start = end
		return nil
	}
	for _, cut := range cuts {
		if cut-start > window && prev > start {
			// Adding this segment would overflow; close the window at the
			// previous cut.
			if err := flush(prev); err != nil {
				return finish(res, err)
			}
		}
		prev = cut
	}
	if err := flush(len(sorted)); err != nil {
		return finish(res, err)
	}
	res.Ok = true
	res.FinalStates = states
	return res, nil
}

// errNotLinearizable is an internal sentinel: the window machinery uses it
// to distinguish "checked and rejected" from structural errors.
var errNotLinearizable = fmt.Errorf("not linearizable")

func finish(res WindowResult, err error) (WindowResult, error) {
	if err == errNotLinearizable {
		res.Ok = false
		return res, nil
	}
	return WindowResult{}, err
}
