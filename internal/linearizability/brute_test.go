package linearizability

import (
	"math/rand"
	"testing"

	"repro/internal/history"
)

// bruteCheck decides linearizability by trying every permutation of the
// history that respects real-time order — exponential, usable only for
// tiny histories, and therefore a perfect differential oracle for the
// memoized Wing–Gong search.
func bruteCheck(ops []history.Op, initial State) bool {
	n := len(ops)
	used := make([]bool, n)
	var rec func(s State, done int) bool
	rec = func(s State, done int) bool {
		if done == n {
			return true
		}
		// minimality: an op may go next only if no unused op returned
		// before it was invoked.
		minReturn := int64(1<<63 - 1)
		for i, op := range ops {
			if !used[i] && op.Return < minReturn {
				minReturn = op.Return
			}
		}
		for i, op := range ops {
			if used[i] || op.Call > minReturn {
				continue
			}
			next, legal := Step(s, op)
			if !legal {
				continue
			}
			used[i] = true
			if rec(next, done+1) {
				used[i] = false
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(initial, 0)
}

// randomHistory builds a small random history with overlapping intervals
// and results that may or may not be legal.
func randomHistory(rng *rand.Rand, nOps, nProcs int) []history.Op {
	ops := make([]history.Op, nOps)
	ts := int64(1)
	for i := range ops {
		proc := rng.Intn(nProcs)
		kind := history.Kind(rng.Intn(6) + 1)
		op := history.Op{
			Proc:    proc,
			Kind:    kind,
			Arg1:    uint64(rng.Intn(3)),
			Arg2:    uint64(rng.Intn(3)),
			RetVal:  uint64(rng.Intn(3)),
			RetBool: rng.Intn(2) == 0,
			Call:    ts,
		}
		ts++
		op.Return = ts
		ts++
		ops[i] = op
	}
	// Randomly stretch some intervals to create overlap.
	for i := range ops {
		if rng.Intn(2) == 0 {
			ops[i].Return += int64(rng.Intn(6))
		}
	}
	return ops
}

func TestCheckerMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	agree, legalCount := 0, 0
	for trial := 0; trial < 3000; trial++ {
		nOps := rng.Intn(5) + 2 // 2..6 ops
		ops := randomHistory(rng, nOps, 2)
		initial := State{Val: uint64(rng.Intn(3))}
		want := bruteCheck(ops, initial)
		res, err := Check(ops, initial)
		if err != nil {
			t.Fatalf("trial %d: checker error: %v", trial, err)
		}
		if res.Ok != want {
			t.Fatalf("trial %d: Wing-Gong=%v brute=%v for history:\n%v", trial, res.Ok, want, ops)
		}
		agree++
		if want {
			legalCount++
		}
	}
	if legalCount == 0 || legalCount == agree {
		t.Fatalf("degenerate distribution: %d/%d linearizable (want a mix)", legalCount, agree)
	}
	t.Logf("checker agreed with brute force on %d histories (%d linearizable)", agree, legalCount)
}
