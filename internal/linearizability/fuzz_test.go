package linearizability

import (
	"testing"

	"repro/internal/history"
)

// FuzzCheckerAgainstBruteForce decodes a byte string into a tiny history
// and cross-checks the memoized Wing–Gong search against the exponential
// brute-force reference on it.
func FuzzCheckerAgainstBruteForce(f *testing.F) {
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9A})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeHistory(data)
		if len(ops) == 0 {
			return
		}
		initial := State{Val: uint64(len(data) % 3)}
		want := bruteCheck(ops, initial)
		res, err := Check(ops, initial)
		if err != nil {
			t.Fatalf("checker error: %v", err)
		}
		if res.Ok != want {
			t.Fatalf("Wing-Gong=%v brute=%v for:\n%v", res.Ok, want, ops)
		}
	})
}

// decodeHistory turns fuzz bytes into a well-timed history of at most 6
// ops over 2 processes with values in [0,3).
func decodeHistory(data []byte) []history.Op {
	var ops []history.Op
	ts := int64(1)
	for i := 0; i+1 < len(data) && len(ops) < 6; i += 2 {
		a, b := data[i], data[i+1]
		op := history.Op{
			Proc:    int(a & 1),
			Kind:    history.Kind(a>>1&7%6 + 1),
			Arg1:    uint64(b & 3),
			Arg2:    uint64(b >> 2 & 3),
			RetVal:  uint64(b >> 4 & 3),
			RetBool: b>>6&1 == 1,
			Call:    ts,
		}
		ts++
		op.Return = ts + int64(b>>7)*3 // occasionally stretch for overlap
		ts++
		ops = append(ops, op)
	}
	return ops
}
