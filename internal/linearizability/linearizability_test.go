package linearizability

import (
	"testing"

	"repro/internal/history"
)

// op builds a history.Op tersely for tests.
func op(proc int, kind history.Kind, call, ret int64) history.Op {
	return history.Op{Proc: proc, Kind: kind, Call: call, Return: ret}
}

func read(proc int, val uint64, call, ret int64) history.Op {
	o := op(proc, history.KindRead, call, ret)
	o.RetVal = val
	return o
}

func write(proc int, val uint64, call, ret int64) history.Op {
	o := op(proc, history.KindWrite, call, ret)
	o.Arg1 = val
	return o
}

func cas(proc int, old, new uint64, ok bool, call, ret int64) history.Op {
	o := op(proc, history.KindCAS, call, ret)
	o.Arg1, o.Arg2, o.RetBool = old, new, ok
	return o
}

func ll(proc int, val uint64, call, ret int64) history.Op {
	o := op(proc, history.KindLL, call, ret)
	o.RetVal = val
	return o
}

func vl(proc int, ok bool, call, ret int64) history.Op {
	o := op(proc, history.KindVL, call, ret)
	o.RetBool = ok
	return o
}

func sc(proc int, val uint64, ok bool, call, ret int64) history.Op {
	o := op(proc, history.KindSC, call, ret)
	o.Arg1, o.RetBool = val, ok
	return o
}

func mustCheck(t *testing.T, ops []history.Op, initial State) Result {
	t.Helper()
	res, err := Check(ops, initial)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEmptyHistory(t *testing.T) {
	if res := mustCheck(t, nil, State{}); !res.Ok {
		t.Error("empty history must be linearizable")
	}
}

func TestSequentialReads(t *testing.T) {
	ops := []history.Op{
		read(0, 5, 1, 2),
		read(1, 5, 3, 4),
	}
	if res := mustCheck(t, ops, State{Val: 5}); !res.Ok {
		t.Error("sequential matching reads must be linearizable")
	}
	// Wrong value is not.
	ops[1].RetVal = 6
	if res := mustCheck(t, ops, State{Val: 5}); res.Ok {
		t.Error("read of a never-written value accepted")
	}
}

func TestConcurrentWriteRead(t *testing.T) {
	// Write(7) overlaps Read()=7: the read may linearize after the write.
	ops := []history.Op{
		write(0, 7, 1, 4),
		read(1, 7, 2, 3),
	}
	if res := mustCheck(t, ops, State{Val: 0}); !res.Ok {
		t.Error("overlapping write/read must be linearizable")
	}
	// But a read that STRICTLY PRECEDES the write cannot see it.
	ops = []history.Op{
		read(1, 7, 1, 2),
		write(0, 7, 3, 4),
	}
	if res := mustCheck(t, ops, State{Val: 0}); res.Ok {
		t.Error("read before write saw the future")
	}
}

func TestCASSemanticsInModel(t *testing.T) {
	// Successful then failing CAS.
	ops := []history.Op{
		cas(0, 0, 1, true, 1, 2),
		cas(1, 0, 2, false, 3, 4),
		read(0, 1, 5, 6),
	}
	if res := mustCheck(t, ops, State{}); !res.Ok {
		t.Error("CAS chain must be linearizable")
	}
	// Two successful CASes from the same old value with no restore: not
	// linearizable.
	ops = []history.Op{
		cas(0, 0, 1, true, 1, 2),
		cas(1, 0, 2, true, 3, 4),
	}
	if res := mustCheck(t, ops, State{}); res.Ok {
		t.Error("double successful CAS from same old accepted")
	}
}

func TestNoOpCASIsARead(t *testing.T) {
	// p0 LLs, then a no-op CAS happens, then p0's SC must still be able
	// to succeed (no invalidation).
	ops := []history.Op{
		ll(0, 4, 1, 2),
		cas(1, 4, 4, true, 3, 4),
		sc(0, 5, true, 5, 6),
	}
	if res := mustCheck(t, ops, State{Val: 4}); !res.Ok {
		t.Error("no-op CAS must not invalidate LL")
	}
	// A value-changing CAS does invalidate.
	ops = []history.Op{
		ll(0, 4, 1, 2),
		cas(1, 4, 9, true, 3, 4),
		sc(0, 5, true, 5, 6),
	}
	if res := mustCheck(t, ops, State{Val: 4}); res.Ok {
		t.Error("SC succeeded after a value-changing CAS")
	}
}

func TestLLSCMutualExclusion(t *testing.T) {
	// Two processes LL the same value; both SCs succeed sequentially —
	// illegal: the first success invalidates the second.
	ops := []history.Op{
		ll(0, 0, 1, 2),
		ll(1, 0, 3, 4),
		sc(0, 1, true, 5, 6),
		sc(1, 2, true, 7, 8),
	}
	if res := mustCheck(t, ops, State{}); res.Ok {
		t.Error("two successful SCs from overlapping LLs accepted")
	}
	// If the second SC reports failure, the history is fine.
	ops[3].RetBool = false
	if res := mustCheck(t, ops, State{}); !res.Ok {
		t.Error("failing second SC rejected")
	}
}

func TestOverlappingSCsOneWinner(t *testing.T) {
	// Concurrent SCs after concurrent LLs: either may win, exactly one.
	ops := []history.Op{
		ll(0, 0, 1, 3),
		ll(1, 0, 2, 4),
		sc(0, 1, true, 5, 8),
		sc(1, 2, false, 6, 9),
		read(0, 1, 10, 11),
	}
	if res := mustCheck(t, ops, State{}); !res.Ok {
		t.Error("winner/loser SC pair rejected")
	}
}

func TestVLSemantics(t *testing.T) {
	// VL true before an intervening SC, false after.
	ops := []history.Op{
		ll(0, 0, 1, 2),
		vl(0, true, 3, 4),
		ll(1, 0, 5, 6),
		sc(1, 7, true, 7, 8),
		vl(0, false, 9, 10),
		sc(0, 9, false, 11, 12),
	}
	if res := mustCheck(t, ops, State{}); !res.Ok {
		t.Error("VL true/false sequence rejected")
	}
	// VL claiming true after the intervening SC is illegal.
	ops[4].RetBool = true
	if res := mustCheck(t, ops, State{}); res.Ok {
		t.Error("stale VL=true accepted")
	}
}

func TestRealTimeOrderRespected(t *testing.T) {
	// p1's CAS(1,2) succeeds, but p0's Write(1) returns strictly after —
	// wait, construct: Write(1) completes at t=2; CAS(1,2) at [3,4] is
	// fine. If instead CAS completes before the write begins, reject.
	ops := []history.Op{
		cas(1, 1, 2, true, 1, 2),
		write(0, 1, 3, 4),
	}
	if res := mustCheck(t, ops, State{Val: 0}); res.Ok {
		t.Error("CAS observed a write that had not begun")
	}
}

func TestWitnessIsLegal(t *testing.T) {
	ops := []history.Op{
		write(0, 3, 1, 4),
		read(1, 3, 2, 5),
		cas(0, 3, 4, true, 6, 7),
	}
	res := mustCheck(t, ops, State{})
	if !res.Ok {
		t.Fatal("history rejected")
	}
	if len(res.Witness) != len(ops) {
		t.Fatalf("witness has %d entries, want %d", len(res.Witness), len(ops))
	}
	// Replay the witness and confirm legality.
	s := State{}
	for _, idx := range res.Witness {
		var legal bool
		s, legal = Step(s, ops[idx])
		if !legal {
			t.Fatalf("witness step %d (%v) illegal", idx, ops[idx])
		}
	}
}

func TestCheckRejectsOversizedHistory(t *testing.T) {
	ops := make([]history.Op, MaxOps+1)
	for i := range ops {
		ops[i] = read(0, 0, int64(2*i), int64(2*i+1))
	}
	if _, err := Check(ops, State{}); err == nil {
		t.Error("oversized history accepted")
	}
}

func TestCheckRejectsBadTimestamps(t *testing.T) {
	ops := []history.Op{read(0, 0, 5, 3)}
	if _, err := Check(ops, State{}); err == nil {
		t.Error("return-before-call accepted")
	}
	ops = []history.Op{read(MaxProcs, 0, 1, 2)}
	if _, err := Check(ops, State{}); err == nil {
		t.Error("out-of-range proc accepted")
	}
}

func TestStepTable(t *testing.T) {
	tests := []struct {
		name      string
		s         State
		op        history.Op
		wantLegal bool
		wantState State
	}{
		{"read ok", State{Val: 3}, read(0, 3, 1, 2), true, State{Val: 3}},
		{"read bad", State{Val: 3}, read(0, 4, 1, 2), false, State{Val: 3}},
		{"write clears valid", State{Val: 1, Valid: 0b11}, write(0, 9, 1, 2), true, State{Val: 9}},
		{"ll sets bit", State{Val: 2}, ll(1, 2, 1, 2), true, State{Val: 2, Valid: 0b10}},
		{"ll wrong val", State{Val: 2}, ll(1, 3, 1, 2), false, State{Val: 2}},
		{"sc no bit fails", State{Val: 2}, sc(0, 5, false, 1, 2), true, State{Val: 2}},
		{"sc no bit cannot succeed", State{Val: 2}, sc(0, 5, true, 1, 2), false, State{Val: 2}},
		{"sc with bit", State{Val: 2, Valid: 0b1}, sc(0, 5, true, 1, 2), true, State{Val: 5}},
		{"sc with bit may fail?", State{Val: 2, Valid: 0b1}, sc(0, 5, false, 1, 2), false, State{Val: 2, Valid: 0b1}},
		{"cas fail legal", State{Val: 2}, cas(0, 3, 4, false, 1, 2), true, State{Val: 2}},
		{"cas fail illegal", State{Val: 3}, cas(0, 3, 4, false, 1, 2), false, State{Val: 3}},
		{"cas success", State{Val: 3, Valid: 0b1}, cas(0, 3, 4, true, 1, 2), true, State{Val: 4}},
		{"noop cas keeps valid", State{Val: 3, Valid: 0b1}, cas(0, 3, 3, true, 1, 2), true, State{Val: 3, Valid: 0b1}},
		{"vl true", State{Valid: 0b1}, vl(0, true, 1, 2), true, State{Valid: 0b1}},
		{"vl false", State{}, vl(0, false, 1, 2), true, State{}},
		{"vl wrong", State{}, vl(0, true, 1, 2), false, State{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, legal := Step(tt.s, tt.op)
			if legal != tt.wantLegal {
				t.Fatalf("legal = %v, want %v", legal, tt.wantLegal)
			}
			if legal && got != tt.wantState {
				t.Errorf("state = %+v, want %+v", got, tt.wantState)
			}
		})
	}
}
