package linearizability

import (
	"testing"

	"repro/internal/history"
)

// seqOp builds a non-overlapping op occupying logical time [2t, 2t+1].
func seqOp(t int64, proc int, kind history.Kind, arg1, retVal uint64, retBool bool) history.Op {
	return history.Op{
		Proc: proc, Kind: kind, Arg1: arg1, RetVal: retVal, RetBool: retBool,
		Call: 2 * t, Return: 2*t + 1,
	}
}

func TestFinalStatesEnumeratesAmbiguity(t *testing.T) {
	// Two concurrent writes: either order is legal, so both final values
	// are reachable.
	ops := []history.Op{
		{Proc: 0, Kind: history.KindWrite, Arg1: 1, Call: 0, Return: 10},
		{Proc: 1, Kind: history.KindWrite, Arg1: 2, Call: 0, Return: 10},
	}
	fs, err := FinalStates(ops, []State{{}})
	if err != nil {
		t.Fatal(err)
	}
	want := []State{{Val: 1}, {Val: 2}}
	if len(fs) != len(want) || fs[0] != want[0] || fs[1] != want[1] {
		t.Fatalf("FinalStates = %v, want %v", fs, want)
	}
}

func TestFinalStatesEmptyOnIllegalHistory(t *testing.T) {
	ops := []history.Op{
		seqOp(0, 0, history.KindWrite, 1, 0, false),
		seqOp(1, 0, history.KindRead, 0, 7, false), // reads a value never written
	}
	fs, err := FinalStates(ops, []State{{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("FinalStates = %v, want empty", fs)
	}
}

func TestCheckWindowsAgreesWithCheck(t *testing.T) {
	histories := [][]history.Op{
		// Linearizable: sequential write/LL/SC/read.
		{
			seqOp(0, 0, history.KindWrite, 3, 0, false),
			seqOp(1, 1, history.KindLL, 0, 3, false),
			{Proc: 1, Kind: history.KindSC, Arg1: 4, RetBool: true, Call: 4, Return: 5},
			seqOp(3, 0, history.KindRead, 0, 4, false),
		},
		// Not linearizable: SC succeeds with no prior LL.
		{
			seqOp(0, 0, history.KindWrite, 3, 0, false),
			{Proc: 1, Kind: history.KindSC, Arg1: 4, RetBool: true, Call: 2, Return: 3},
		},
		// Not linearizable: stale read after a quiescent cut.
		{
			seqOp(0, 0, history.KindWrite, 1, 0, false),
			seqOp(1, 0, history.KindWrite, 2, 0, false),
			seqOp(2, 1, history.KindRead, 0, 1, false),
		},
	}
	for i, ops := range histories {
		res, err := Check(ops, State{})
		if err != nil {
			t.Fatal(err)
		}
		for _, window := range []int{1, 2, 64} {
			wres, err := CheckWindows(ops, State{}, window)
			if err != nil {
				t.Fatal(err)
			}
			if wres.Ok != res.Ok {
				t.Errorf("history %d window %d: CheckWindows=%v Check=%v", i, window, wres.Ok, res.Ok)
			}
		}
	}
}

func TestCheckWindowsChainsStateSets(t *testing.T) {
	// Window 1 is ambiguous (concurrent writes of 1 and 2); window 2 is a
	// read of 1. A naive single-witness chainer that happened to pick the
	// "2 last" order would wrongly reject; the state-set chain must accept.
	ops := []history.Op{
		{Proc: 0, Kind: history.KindWrite, Arg1: 1, Call: 0, Return: 10},
		{Proc: 1, Kind: history.KindWrite, Arg1: 2, Call: 0, Return: 10},
		{Proc: 0, Kind: history.KindRead, RetVal: 1, Call: 20, Return: 21},
	}
	res, err := CheckWindows(ops, State{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatal("state-set chaining rejected a linearizable history")
	}
	if res.Windows != 2 {
		t.Fatalf("Windows = %d, want 2", res.Windows)
	}
	if len(res.FinalStates) != 1 || res.FinalStates[0].Val != 1 {
		t.Fatalf("FinalStates = %v, want exactly {Val:1}", res.FinalStates)
	}
}

func TestCheckWindowsReportsFailedWindow(t *testing.T) {
	ops := []history.Op{
		seqOp(0, 0, history.KindWrite, 5, 0, false),
		seqOp(1, 0, history.KindRead, 0, 5, false),
		seqOp(2, 0, history.KindRead, 0, 9, false), // impossible
	}
	res, err := CheckWindows(ops, State{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok {
		t.Fatal("accepted a non-linearizable history")
	}
	if res.FailedWindow != 2 {
		t.Fatalf("FailedWindow = %d, want 2", res.FailedWindow)
	}
}

func TestCheckWindowsLongHistory(t *testing.T) {
	// 300 sequential ops — far beyond Check's MaxOps — verified through
	// windowing: an LL/SC counter incremented by alternating processes.
	var ops []history.Op
	val := uint64(0)
	for i := 0; i < 150; i++ {
		p := i % 2
		ops = append(ops,
			seqOp(int64(2*i), p, history.KindLL, 0, val, false),
			history.Op{Proc: p, Kind: history.KindSC, Arg1: val + 1, RetBool: true,
				Call: int64(4*i + 2), Return: int64(4*i + 3)},
		)
		val++
	}
	res, err := CheckWindows(ops, State{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("rejected a legal 300-op history (failed window %d)", res.FailedWindow)
	}
	if res.Windows < 300/16 {
		t.Fatalf("Windows = %d, expected at least %d", res.Windows, 300/16)
	}
	if len(res.FinalStates) != 1 || res.FinalStates[0].Val != 150 {
		t.Fatalf("FinalStates = %v, want exactly {Val:150, Valid:0}", res.FinalStates)
	}
}

func TestCheckWindowsBurstExceedsHardLimit(t *testing.T) {
	// 65 mutually overlapping ops: no quiescent cut, burst > MaxOps.
	var ops []history.Op
	for i := 0; i < MaxOps+1; i++ {
		ops = append(ops, history.Op{Proc: i % 2, Kind: history.KindWrite, Arg1: 1, Call: 0, Return: 1000})
	}
	if _, err := CheckWindows(ops, State{}, 8); err == nil {
		t.Fatal("expected an error for an unwindowable burst")
	}
}

func TestCheckWindowsValidatesWindowSize(t *testing.T) {
	for _, w := range []int{0, -1, MaxOps + 1} {
		if _, err := CheckWindows(nil, State{}, w); err == nil {
			t.Fatalf("window %d accepted", w)
		}
	}
}
