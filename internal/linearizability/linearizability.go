// Package linearizability checks recorded concurrent histories against the
// sequential semantics of the combined CAS + LL/VL/SC register (the
// paper's Figure 2), in the sense of Herlihy & Wing [9].
//
// The checker is the classic Wing–Gong search with memoization on
// (linearized-set, abstract-state) pairs: it looks for a permutation of
// the history that (a) respects real-time order — an operation may be
// linearized only if no other pending operation returned before it was
// invoked — and (b) is legal for the sequential specification. Histories
// are expected to be small (tens of operations); stress tests check many
// small histories rather than one large one.
package linearizability

import (
	"fmt"

	"repro/internal/history"
)

// State is the abstract state of the Figure 2 register: a value plus one
// valid bit per process (packed as a bitmask, so N ≤ 64).
type State struct {
	Val   uint64
	Valid uint64
}

// MaxOps bounds the history length the checker accepts (the linearized
// set is tracked as a 64-bit mask).
const MaxOps = 64

// MaxProcs bounds the process count (valid bits are a 64-bit mask).
const MaxProcs = 64

// Step applies op to s, returning the successor state and whether op's
// recorded results are legal from s. It encodes Figure 2:
//
//	Read      returns Val
//	Write(v)  sets Val, clears all valid bits
//	CAS(o,n)  if Val==o: true, and if o!=n sets Val=n clearing valid bits
//	          (a no-op CAS linearizes as a read); else false
//	LL        sets the caller's valid bit, returns Val
//	VL        returns the caller's valid bit
//	SC(v)     if the caller's valid bit is set: sets Val, clears all valid
//	          bits, true; else false
func Step(s State, op history.Op) (State, bool) {
	bit := uint64(1) << uint(op.Proc)
	switch op.Kind {
	case history.KindRead:
		return s, op.RetVal == s.Val
	case history.KindWrite:
		return State{Val: op.Arg1}, true
	case history.KindCAS:
		if s.Val != op.Arg1 {
			return s, !op.RetBool
		}
		if !op.RetBool {
			return s, false
		}
		if op.Arg1 == op.Arg2 {
			return s, true // no-op CAS is a read
		}
		return State{Val: op.Arg2}, true
	case history.KindLL:
		if op.RetVal != s.Val {
			return s, false
		}
		return State{Val: s.Val, Valid: s.Valid | bit}, true
	case history.KindVL:
		return s, op.RetBool == (s.Valid&bit != 0)
	case history.KindSC:
		if s.Valid&bit == 0 {
			return s, !op.RetBool
		}
		if !op.RetBool {
			return s, false
		}
		return State{Val: op.Arg1}, true
	default:
		return s, false
	}
}

// Result reports the checker's verdict.
type Result struct {
	// Ok is true iff the history is linearizable.
	Ok bool
	// Witness, when Ok, is one legal linearization order (indices into
	// the input history).
	Witness []int
	// StatesExplored counts memoized search nodes, for diagnostics.
	StatesExplored int
}

// Check reports whether ops is linearizable with respect to Step starting
// from initial. It returns an error for histories that exceed the
// checker's structural limits.
func Check(ops []history.Op, initial State) (Result, error) {
	if len(ops) > MaxOps {
		return Result{}, fmt.Errorf("linearizability: history has %d ops, checker supports at most %d", len(ops), MaxOps)
	}
	for _, op := range ops {
		if op.Proc < 0 || op.Proc >= MaxProcs {
			return Result{}, fmt.Errorf("linearizability: process id %d out of range [0,%d)", op.Proc, MaxProcs)
		}
		if op.Return < op.Call {
			return Result{}, fmt.Errorf("linearizability: op %v returns before it is called", op)
		}
	}
	c := &checker{ops: ops, visited: make(map[node]struct{})}
	order := make([]int, 0, len(ops))
	if c.search(0, initial, order, &order) {
		return Result{Ok: true, Witness: append([]int(nil), order...), StatesExplored: len(c.visited)}, nil
	}
	return Result{Ok: false, StatesExplored: len(c.visited)}, nil
}

type node struct {
	mask  uint64
	state State
}

type checker struct {
	ops     []history.Op
	visited map[node]struct{}
}

// search tries to extend the linearization. mask marks already-linearized
// ops; order accumulates the witness (via the out pointer so the final
// content survives unwinding).
func (c *checker) search(mask uint64, s State, order []int, out *[]int) bool {
	if mask == (uint64(1)<<uint(len(c.ops)))-1 {
		*out = order
		return true
	}
	n := node{mask: mask, state: s}
	if _, seen := c.visited[n]; seen {
		return false
	}
	c.visited[n] = struct{}{}

	// An op may be linearized next only if no other pending op returned
	// before it was invoked.
	minReturn := int64(1<<63 - 1)
	for i, op := range c.ops {
		if mask&(1<<uint(i)) == 0 && op.Return < minReturn {
			minReturn = op.Return
		}
	}
	for i, op := range c.ops {
		if mask&(1<<uint(i)) != 0 {
			continue
		}
		if op.Call > minReturn {
			continue
		}
		next, legal := Step(s, op)
		if !legal {
			continue
		}
		if c.search(mask|1<<uint(i), next, append(order, i), out) {
			return true
		}
	}
	return false
}
