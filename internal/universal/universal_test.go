package universal

import (
	"sync"
	"testing"
)

func newObject(t *testing.T, procs, words int, initial []uint64) *Object {
	t.Helper()
	o, err := New(Config{Procs: procs, Words: words}, initial)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func proc(t *testing.T, o *Object, id int) *Proc {
	t.Helper()
	p, err := o.Proc(id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0, Words: 1}, []uint64{0}); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := New(Config{Procs: 1, Words: 2}, []uint64{0}); err == nil {
		t.Error("wrong-length initial accepted")
	}
}

func TestApplySequential(t *testing.T) {
	o := newObject(t, 1, 2, []uint64{10, 20})
	p := proc(t, o, 0)
	observed := o.Apply(p, func(cur, next []uint64) {
		next[0] = cur[0] + 1
		next[1] = cur[1] + 2
	})
	if observed[0] != 10 || observed[1] != 20 {
		t.Errorf("observed = %v, want [10 20]", observed)
	}
	dst := make([]uint64, 2)
	o.Read(p, dst)
	if dst[0] != 11 || dst[1] != 22 {
		t.Errorf("state = %v, want [11 22]", dst)
	}
}

func TestApplyPanicsOnOversizedResult(t *testing.T) {
	o := newObject(t, 1, 1, []uint64{0})
	p := proc(t, o, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized op result did not panic")
		}
	}()
	o.Apply(p, func(cur, next []uint64) {
		next[0] = o.MaxSegmentValue() + 1
	})
}

func TestApplyConcurrentBankTransfers(t *testing.T) {
	// A 4-account bank; each Apply moves one unit between accounts. The
	// total must be conserved — the classic multi-word atomicity demo.
	const procs = 4
	const rounds = 2000
	const accounts = 4
	initial := []uint64{1000, 1000, 1000, 1000}
	o := newObject(t, procs, accounts, initial)

	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := o.Proc(id)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				from := (id + r) % accounts
				to := (id + r + 1) % accounts
				o.Apply(p, func(cur, next []uint64) {
					copy(next, cur)
					if next[from] > 0 {
						next[from]--
						next[to]++
					}
				})
			}
		}(id)
	}
	wg.Wait()

	p := proc(t, o, 0)
	dst := make([]uint64, accounts)
	o.Read(p, dst)
	var total uint64
	for _, x := range dst {
		total += x
	}
	if total != 4000 {
		t.Errorf("total = %d, want 4000 (money was created or destroyed)", total)
	}
}

func TestApplyReturnsObservedState(t *testing.T) {
	// Fetch-and-add via Apply: the returned observed states, collected
	// across all workers, must be exactly {0, 1, ..., total-1} — each
	// increment saw a distinct predecessor state.
	const procs = 4
	const rounds = 1000
	o := newObject(t, procs, 1, []uint64{0})

	var mu sync.Mutex
	seen := make(map[uint64]bool, procs*rounds)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := o.Proc(id)
			if err != nil {
				t.Error(err)
				return
			}
			local := make([]uint64, 0, rounds)
			for r := 0; r < rounds; r++ {
				obs := o.Apply(p, func(cur, next []uint64) {
					next[0] = cur[0] + 1
				})
				local = append(local, obs[0])
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				if seen[v] {
					t.Errorf("state %d observed by two increments", v)
				}
				seen[v] = true
			}
		}(id)
	}
	wg.Wait()
	if len(seen) != procs*rounds {
		t.Fatalf("saw %d distinct states, want %d", len(seen), procs*rounds)
	}
	for i := uint64(0); i < procs*rounds; i++ {
		if !seen[i] {
			t.Fatalf("state %d never observed", i)
		}
	}
}

func TestSharedDequeOnObject(t *testing.T) {
	// A bounded deque encoded in segments: [len, d0, d1, ..., d6]. Shows
	// that arbitrary sequential objects gain lock-freedom.
	o := newObject(t, 2, 8, make([]uint64, 8))
	p := proc(t, o, 0)

	pushBack := func(v uint64) bool {
		var ok bool
		o.Apply(p, func(cur, next []uint64) {
			copy(next, cur)
			n := cur[0]
			ok = n < 7
			if ok {
				next[1+n] = v
				next[0] = n + 1
			}
		})
		return ok
	}
	popFront := func() (uint64, bool) {
		var v uint64
		var ok bool
		o.Apply(p, func(cur, next []uint64) {
			n := cur[0]
			ok = n > 0
			if !ok {
				copy(next, cur)
				return
			}
			v = cur[1]
			next[0] = n - 1
			copy(next[1:], cur[2:])
			next[7] = 0
		})
		return v, ok
	}

	for i := uint64(1); i <= 7; i++ {
		if !pushBack(i * 11) {
			t.Fatalf("pushBack(%d) reported full", i*11)
		}
	}
	if pushBack(99) {
		t.Error("pushBack on full deque succeeded")
	}
	for i := uint64(1); i <= 7; i++ {
		v, ok := popFront()
		if !ok || v != i*11 {
			t.Fatalf("popFront = (%d,%v), want (%d,true)", v, ok, i*11)
		}
	}
	if _, ok := popFront(); ok {
		t.Error("popFront on empty deque succeeded")
	}
}
