package universal

import (
	"testing"

	"repro/internal/obs"
)

// addApply is a counter object: opcode ignored, arg added, result = total.
func addApply(_, arg uint64, user []uint64) uint64 {
	user[0] += arg
	return user[0]
}

func TestRecoverProcCompletesPending(t *testing.T) {
	o, err := NewWaitFree(WaitFreeConfig{Procs: 2, UserWords: 1}, []uint64{0}, addApply)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewWithStripes(2)
	o.SetMetrics(met)
	p0, err := o.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := o.Proc(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Invoke(p0, 0, 5); got != 5 {
		t.Fatalf("Invoke = %d, want 5", got)
	}

	// Simulate p0 crashing mid-Invoke: the operation (seq 2, add 7) is
	// announced but p0 dies before driving it to completion.
	crashedSeq := p0.seq + 1
	o.announce[0].Store(annFields.Pack(crashedSeq, 0, 7))

	// Peers steal the dead process's operation: p1's next Invoke batches
	// every announced operation, applying p0's add-7 (in process order,
	// before its own add-100).
	if got := o.Invoke(p1, 0, 100); got != 112 {
		t.Fatalf("peer Invoke = %d, want 112 (5+7+100)", got)
	}

	// The restarted incarnation resyncs its sequence number and retrieves
	// the pending operation's result.
	r0, err := o.RecoverProc(0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.seq != crashedSeq {
		t.Fatalf("recovered seq = %d, want %d", r0.seq, crashedSeq)
	}
	res, ok := o.CompletePending(r0)
	if !ok {
		t.Fatal("CompletePending found nothing despite an announced operation")
	}
	if res != 12 {
		t.Fatalf("pending result = %d, want 12 (5+7)", res)
	}
	if got := met.Snapshot().Get(obs.CtrRecoveryPendingCompleted); got != 1 {
		t.Fatalf("recovery_pending_completed = %d, want 1", got)
	}

	// Fresh operations from the recovered handle use fresh sequence
	// numbers: no stale fast-path match, results stay exact.
	if got := o.Invoke(r0, 0, 1); got != 113 {
		t.Fatalf("post-recovery Invoke = %d, want 113", got)
	}
	var dst [1]uint64
	o.Read(p1, dst[:])
	if dst[0] != 113 {
		t.Fatalf("state = %d, want 113", dst[0])
	}
}

func TestCompletePendingNothingAnnounced(t *testing.T) {
	o, err := NewWaitFree(WaitFreeConfig{Procs: 2, UserWords: 1}, []uint64{0}, addApply)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := o.RecoverProc(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.CompletePending(r1); ok {
		t.Fatal("CompletePending invented a pending operation")
	}
	if _, err := o.RecoverProc(7); err == nil {
		t.Fatal("RecoverProc out of range must fail")
	}
}
