package universal

import (
	"sync"
	"testing"

	"repro/internal/contention"
	"repro/internal/machine"
)

// TestRObjectNativeSubstrate runs the RLL/RSC universal construction on
// the native substrate: the full Figure 6 stack — announce array, copy
// protocol, large-variable WLL/SC — executing on hardware sync/atomic.
// Each of P free-running processors applies ops multi-word transfers
// (seg0 -= 1, seg1 += 1, seg2 += 2 counts total applies), so the final
// state pins both atomicity (no torn application ever visible) and
// exactness.
func TestRObjectNativeSubstrate(t *testing.T) {
	const procs, ops, words = 4, 400, 3
	m, err := machine.New(machine.Config{Procs: procs, Substrate: machine.SubstrateNative})
	if err != nil {
		t.Fatal(err)
	}
	const start = procs * ops
	o, err := NewRObject(m, words, 0, []uint64{start, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	o.SetContention(contention.ExponentialBackoff(2, 64).WithSeed(11))
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(h *RProc) {
			defer wg.Done()
			for k := 0; k < ops; k++ {
				o.Apply(h, func(cur, next []uint64) {
					next[0] = cur[0] - 1
					next[1] = cur[1] + 1
					next[2] = cur[2] + 2
				})
			}
		}(o.Proc(m.Proc(i)))
	}
	wg.Wait()
	got := make([]uint64, words)
	o.Read(o.Proc(m.Proc(0)), got)
	want := []uint64{0, procs * ops, 2 * procs * ops}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("segment %d = %d, want %d (state %v)", i, got[i], want[i], got)
		}
	}
	// Conservation: every installed SC's copy ran to completion.
	if err := o.family.CheckConservation(m.Proc(0)); err != nil {
		t.Errorf("conservation after native run: %v", err)
	}
}
