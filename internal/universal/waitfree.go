package universal

import (
	"fmt"
	"sync/atomic" //llsc:allow nakedatomic(announce slots are single-writer registers per Herlihy's construction; synchronization goes through core LL/SC)

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/word"
)

// WaitFreeObject is a wait-free universal construction in the style of
// Herlihy's methodology (the paper's reference [7]), built on the Figure 6
// W-word primitive. Where Object is merely lock-free (an unlucky process
// can retry forever), WaitFreeObject bounds every invocation:
//
//   - a process announces its operation (sequence number, opcode,
//     argument) in a single-writer announce word;
//   - every SC attempt batches ALL pending announced operations into the
//     next state, in process order; and
//   - the state carries one packed (sequence, result) slot per process,
//     recording its last applied operation.
//
// Wait-freedom argument. Each failed WLL or SC by the caller overlaps a
// distinct successful SC by someone else. The second successful SC that
// begins after the caller's announce must scan the announce array after
// the announce was visible (its WLL postdates the first one's commit), so
// it applies the operation; and before a third can commit, every segment
// of the generation holding the result has been copied (an SC requires a
// complete copy of the predecessor generation). The caller's packed
// (seq,result) slot is then readable with a single atomic segment load
// (LargeVar.ReadSegment), so the invocation returns after a constant
// number of its own steps regardless of other processes' behaviour.
//
// The transition function must be a pure, deterministic function of
// (opcode, arg, state): helpers run it redundantly and rely on computing
// identical results.
type WaitFreeObject struct {
	family   *core.LargeFamily
	state    *core.LargeVar
	announce []atomic.Uint64
	apply    ApplyFunc
	n        int
	userW    int
	slot     word.Fields // seq(16) | result(segValBits-16), within a segment value
	cm       *contention.Policy
	mets     *obs.Metrics
}

// ApplyFunc is the sequential object's transition function: it mutates
// user in place according to (opcode, arg) and returns the operation's
// result (which must fit ResultMask). It must be deterministic and must
// not retain user.
type ApplyFunc func(opcode, arg uint64, user []uint64) (result uint64)

// announce word layout: seq(16) | opcode(16) | arg(32).
var annFields = mustFields(16, 16, 32)

func mustFields(widths ...uint) word.Fields {
	f, err := word.NewFields(widths...)
	if err != nil {
		panic(err)
	}
	return f
}

const (
	annSeq = iota
	annOp
	annArg
)

const (
	slotSeq = iota
	slotRes
)

// seqBits is the width of per-operation sequence numbers. Sequence
// numbers only ever compare for equality against the caller's own latest
// announce (a process never has two operations outstanding), so the
// width only needs to make an accidental equality after wrap impossible
// within one outstanding operation — any width ≥ 1 is correct; 16 keeps
// the packed slot roomy.
const seqBits = 16

// WaitFreeConfig parametrizes a WaitFreeObject.
type WaitFreeConfig struct {
	// Procs is the number of processes N.
	Procs int
	// UserWords is the number of state segments available to the object.
	UserWords int
	// TagBits optionally overrides the Figure 6 tag width. The default of
	// 32 leaves 32-bit state words and 16-bit operation results.
	TagBits uint
}

// NewWaitFree creates a wait-free object with the given initial user
// state (length UserWords) and transition function.
func NewWaitFree(cfg WaitFreeConfig, initial []uint64, apply ApplyFunc) (*WaitFreeObject, error) {
	if apply == nil {
		return nil, fmt.Errorf("universal: apply function must not be nil")
	}
	if len(initial) != cfg.UserWords {
		return nil, fmt.Errorf("universal: initial state has %d words, want %d", len(initial), cfg.UserWords)
	}
	tagBits := cfg.TagBits
	if tagBits == 0 {
		tagBits = 32
	}
	segValBits := word.WordBits - tagBits
	if segValBits <= seqBits {
		return nil, fmt.Errorf("universal: tag width %d leaves no room for results (need > %d value bits)", tagBits, seqBits)
	}
	slot, err := word.NewFields(seqBits, segValBits-seqBits)
	if err != nil {
		return nil, err
	}
	// State layout: [user 0..W) [slot W..W+N).
	segs := cfg.UserWords + cfg.Procs
	family, err := core.NewLargeFamily(core.LargeConfig{Procs: cfg.Procs, Words: segs, TagBits: tagBits})
	if err != nil {
		return nil, err
	}
	full := make([]uint64, segs)
	copy(full, initial)
	state, err := family.NewVar(full)
	if err != nil {
		return nil, err
	}
	return &WaitFreeObject{
		family:   family,
		state:    state,
		announce: make([]atomic.Uint64, cfg.Procs),
		apply:    apply,
		n:        cfg.Procs,
		userW:    cfg.UserWords,
		slot:     slot,
	}, nil
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// object's underlying Figure 6 family, exposing the WLL/SC and
// copy-helping traffic of every Invoke.
func (o *WaitFreeObject) SetMetrics(m *obs.Metrics) {
	o.mets = m
	o.family.SetMetrics(m)
}

// SetContention attaches a contention-management policy (nil disables).
// Invoke's loop is already bounded by the helping protocol, so only its
// retry pacing changes — wait-freedom is unaffected (policy waits are
// themselves bounded); Read's lock-free loop backs off like Object's.
func (o *WaitFreeObject) SetContention(p *contention.Policy) {
	o.cm = p
	o.family.SetContention(p)
}

// MaxStateValue returns the largest value one user state word can hold.
func (o *WaitFreeObject) MaxStateValue() uint64 { return o.family.MaxSegmentValue() }

// ResultMask returns the largest operation result representable.
func (o *WaitFreeObject) ResultMask() uint64 { return o.slot.Max(slotRes) }

// WProc is a per-process handle with private scratch buffers.
type WProc struct {
	inner *core.LargeProc
	id    int
	seq   uint64
	cur   []uint64
	next  []uint64
}

// Proc returns a handle for process id; each must be driven by one
// goroutine at a time.
func (o *WaitFreeObject) Proc(id int) (*WProc, error) {
	inner, err := o.family.Proc(id)
	if err != nil {
		return nil, err
	}
	segs := o.userW + o.n
	return &WProc{inner: inner, id: id, cur: make([]uint64, segs), next: make([]uint64, segs)}, nil
}

// Invoke applies (opcode, arg) to the object and returns the operation's
// result. Wait-free: it completes within a bounded number of its own
// steps regardless of the behaviour of other processes.
func (o *WaitFreeObject) Invoke(p *WProc, opcode, arg uint64) uint64 {
	// Sequence numbers cycle through 1..2^16-1, never 0: zero marks both
	// "never announced" (announce word) and "nothing applied" (slots).
	p.seq = p.seq%(1<<seqBits-1) + 1
	o.announce[p.id].Store(annFields.Pack(p.seq, opcode, arg))
	return o.complete(p)
}

// complete drives p's currently announced operation (sequence p.seq) to
// completion and returns its result — the helping loop shared by Invoke
// and crash-recovery's CompletePending.
func (o *WaitFreeObject) complete(p *WProc) uint64 {
	mySlot := o.userW + p.id
	var w contention.Waiter
	for ; ; w.Wait(o.cm, p.id, contention.Interference) {
		// Fast path: the packed (seq,result) slot is single-writer-stable
		// once applied, so one atomic segment read suffices.
		if s := o.state.ReadSegment(mySlot); o.slot.Get(s, slotSeq) == p.seq {
			return o.slot.Get(s, slotRes)
		}
		keep, res := o.state.WLL(p.inner, p.cur)
		if res != core.Succ {
			continue // a concurrent SC won; the fast path will see its effect
		}
		if o.slot.Get(p.cur[mySlot], slotSeq) == p.seq {
			return o.slot.Get(p.cur[mySlot], slotRes)
		}
		o.applyPending(p)
		if o.state.SC(p.inner, keep, p.next) {
			return o.slot.Get(p.next[mySlot], slotRes)
		}
	}
}

// RecoverProc builds a fresh handle for process id after a crash. Unlike
// Proc, it resynchronizes the private sequence number from the shared
// announce word — a handle that restarted at seq 1 could collide with a
// sequence number the dead incarnation already used, and the fast path
// would then return a stale result for a brand-new operation. A restarted
// process MUST obtain its handle here, never via Proc.
func (o *WaitFreeObject) RecoverProc(id int) (*WProc, error) {
	p, err := o.Proc(id)
	if err != nil {
		return nil, err
	}
	if a := o.announce[id].Load(); a != 0 {
		p.seq = annFields.Get(a, annSeq)
	}
	return p, nil
}

// CompletePending finishes the operation the crashed incarnation had
// announced, if any: peers may already have applied it (every SC batches
// all announced operations — the "steal/complete a dead process's
// operation" guarantee), in which case this is one atomic read; otherwise
// the recovered process helps it through itself. ok is false when the
// process had never announced an operation. Call on a handle fresh from
// RecoverProc, before any new Invoke overwrites the announce word.
func (o *WaitFreeObject) CompletePending(p *WProc) (result uint64, ok bool) {
	if o.announce[p.id].Load() == 0 {
		return 0, false
	}
	result = o.complete(p)
	o.mets.IncProc(p.id, obs.CtrRecoveryPendingCompleted)
	return result, true
}

// applyPending fills p.next from p.cur by applying, in process order,
// every announced operation not yet reflected in the state.
func (o *WaitFreeObject) applyPending(p *WProc) {
	copy(p.next, p.cur)
	user := p.next[:o.userW]
	for i := 0; i < o.n; i++ {
		a := o.announce[i].Load()
		if a == 0 {
			continue // process i has never announced
		}
		aseq := annFields.Get(a, annSeq)
		if aseq == o.slot.Get(p.next[o.userW+i], slotSeq) {
			continue // already applied
		}
		result := o.apply(annFields.Get(a, annOp), annFields.Get(a, annArg), user)
		for j, x := range user {
			if x > o.MaxStateValue() {
				panic(fmt.Sprintf("universal: apply produced state[%d] = %d exceeding the segment field", j, x))
			}
		}
		p.next[o.userW+i] = o.slot.Pack(aseq, result)
	}
}

// Read fills dst (length UserWords) with a consistent snapshot of the
// user state. Lock-free.
func (o *WaitFreeObject) Read(p *WProc, dst []uint64) {
	if len(dst) != o.userW {
		panic(fmt.Sprintf("universal: Read destination has %d words, want %d", len(dst), o.userW))
	}
	var w contention.Waiter
	for {
		if _, res := o.state.WLL(p.inner, p.cur); res == core.Succ {
			copy(dst, p.cur[:o.userW])
			return
		}
		w.Wait(o.cm, p.id, contention.Interference)
	}
}
