package universal

import (
	"sync"
	"testing"
)

// counterApply: opcode 0 = add arg, return the pre-add value (fetch-add);
// opcode 1 = read, return current.
func counterApply(opcode, arg uint64, user []uint64) uint64 {
	switch opcode {
	case 0:
		old := user[0]
		user[0] = (user[0] + arg) & ((1 << 32) - 1)
		return old & ((1 << 16) - 1) // results are 16-bit by default
	default:
		return user[0] & ((1 << 16) - 1)
	}
}

func newWFCounter(t *testing.T, procs int) *WaitFreeObject {
	t.Helper()
	o, err := NewWaitFree(WaitFreeConfig{Procs: procs, UserWords: 1}, []uint64{0}, counterApply)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestNewWaitFreeValidation(t *testing.T) {
	if _, err := NewWaitFree(WaitFreeConfig{Procs: 1, UserWords: 1}, []uint64{0}, nil); err == nil {
		t.Error("nil apply accepted")
	}
	if _, err := NewWaitFree(WaitFreeConfig{Procs: 1, UserWords: 2}, []uint64{0}, counterApply); err == nil {
		t.Error("wrong-length initial accepted")
	}
	if _, err := NewWaitFree(WaitFreeConfig{Procs: 1, UserWords: 1, TagBits: 50}, []uint64{0}, counterApply); err == nil {
		t.Error("tag width leaving no result room accepted")
	}
	if _, err := NewWaitFree(WaitFreeConfig{Procs: 0, UserWords: 1}, nil, counterApply); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestWaitFreeSequential(t *testing.T) {
	o := newWFCounter(t, 1)
	p, err := o.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if got := o.Invoke(p, 0, 1); got != i {
			t.Fatalf("fetch-add %d returned %d", i, got)
		}
	}
	if got := o.Invoke(p, 1, 0); got != 100 {
		t.Errorf("read = %d, want 100", got)
	}
	dst := make([]uint64, 1)
	o.Read(p, dst)
	if dst[0] != 100 {
		t.Errorf("snapshot = %d, want 100", dst[0])
	}
}

func TestWaitFreeResultMask(t *testing.T) {
	o := newWFCounter(t, 1)
	if o.ResultMask() != (1<<16)-1 {
		t.Errorf("ResultMask = %#x, want 16 bits", o.ResultMask())
	}
	if o.MaxStateValue() != (1<<32)-1 {
		t.Errorf("MaxStateValue = %#x, want 32 bits", o.MaxStateValue())
	}
}

func TestWaitFreeFetchAddUniqueResults(t *testing.T) {
	// Every fetch-add must observe a distinct predecessor value, and the
	// union of observed values must be exactly 0..total-1 — even though
	// operations may be applied by helpers rather than their callers.
	const procs = 4
	const each = 2000 // total 8000 < 2^16 so results fit the 16-bit field
	o := newWFCounter(t, procs)

	var mu sync.Mutex
	seen := make(map[uint64]bool, procs*each)
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := o.Proc(id)
			if err != nil {
				t.Error(err)
				return
			}
			local := make([]uint64, 0, each)
			for i := 0; i < each; i++ {
				local = append(local, o.Invoke(p, 0, 1))
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				if seen[v] {
					t.Errorf("fetch-add result %d duplicated", v)
				}
				seen[v] = true
			}
		}(id)
	}
	wg.Wait()
	if len(seen) != procs*each {
		t.Fatalf("got %d distinct results, want %d", len(seen), procs*each)
	}
	for i := uint64(0); i < procs*each; i++ {
		if !seen[i] {
			t.Fatalf("result %d missing", i)
		}
	}
}

func TestWaitFreeHelpingAppliesStalledOps(t *testing.T) {
	// p0 announces an operation but performs NO further steps; p1's next
	// invocation must apply p0's op for it (helping), after which p0's
	// Invoke completes on its fast path having taken no SC of its own.
	o := newWFCounter(t, 2)
	p0, err := o.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := o.Proc(1)
	if err != nil {
		t.Fatal(err)
	}

	// Manually announce for p0 (simulating a stall right after announce).
	p0.seq = 1
	o.announce[0].Store(annFields.Pack(1, 0, 7)) // fetch-add 7

	// p1 invokes once; its SC must batch p0's pending op.
	if got := o.Invoke(p1, 0, 1); got != 7 {
		// p1's op may be ordered before or after p0's: result is 0 or 7.
		if got != 0 {
			t.Fatalf("p1's fetch-add returned %d, want 0 or 7", got)
		}
	}
	dst := make([]uint64, 1)
	o.Read(p1, dst)
	if dst[0] != 8 {
		t.Fatalf("state = %d, want 8 (7 from p0's helped op + 1 from p1)", dst[0])
	}

	// p0 "wakes up": the fast path must return its result without help.
	s := o.state.ReadSegment(o.userW + 0)
	if o.slot.Get(s, slotSeq) != 1 {
		t.Fatal("p0's op was not applied by the helper")
	}
}

func TestWaitFreeMultiWordObject(t *testing.T) {
	// A 3-word stats object: ops update min/max/count atomically.
	apply := func(opcode, arg uint64, user []uint64) uint64 {
		switch opcode {
		case 0: // observe(arg)
			if user[2] == 0 || arg < user[0] {
				user[0] = arg
			}
			if arg > user[1] {
				user[1] = arg
			}
			user[2]++
			return user[2] & 0xFFFF
		default:
			return user[2] & 0xFFFF
		}
	}
	o, err := NewWaitFree(WaitFreeConfig{Procs: 4, UserWords: 3}, []uint64{0, 0, 0}, apply)
	if err != nil {
		t.Fatal(err)
	}
	const procs = 4
	const each = 1000
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := o.Proc(id)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < each; i++ {
				o.Invoke(p, 0, uint64(id*each+i+10))
			}
		}(id)
	}
	wg.Wait()
	p, _ := o.Proc(0)
	dst := make([]uint64, 3)
	o.Read(p, dst)
	if dst[0] != 10 {
		t.Errorf("min = %d, want 10", dst[0])
	}
	if dst[1] != uint64(procs*each+9) {
		t.Errorf("max = %d, want %d", dst[1], procs*each+9)
	}
	if dst[2] != procs*each {
		t.Errorf("count = %d, want %d", dst[2], procs*each)
	}
}

func TestWaitFreeSeqWrap(t *testing.T) {
	// Drive one process through more than 2^16 operations so its sequence
	// number wraps; results must stay exact throughout.
	o, err := NewWaitFree(WaitFreeConfig{Procs: 1, UserWords: 1}, []uint64{0},
		func(opcode, arg uint64, user []uint64) uint64 {
			user[0] = (user[0] + 1) & ((1 << 32) - 1)
			return user[0] & 0xFFFF
		})
	if err != nil {
		t.Fatal(err)
	}
	p, err := o.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	const total = 1<<16 + 100
	for i := 1; i <= total; i++ {
		if got := o.Invoke(p, 0, 0); got != uint64(i)&0xFFFF {
			t.Fatalf("op %d returned %d, want %d", i, got, uint64(i)&0xFFFF)
		}
	}
	dst := make([]uint64, 1)
	o.Read(p, dst)
	if dst[0] != total {
		t.Errorf("state = %d, want %d", dst[0], total)
	}
}
