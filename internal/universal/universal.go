// Package universal provides a Herlihy-style universal construction for
// small shared objects, built on the paper's Figure 6 W-word WLL/VL/SC
// primitive (the construction of the paper's references [3, 7] that
// motivates Figure 6 in the first place).
//
// Any sequential object whose state fits in W machine-word segments
// becomes lock-free: an operation WLLs the state, applies a pure
// transition function to a private copy, and SCs the result, retrying on
// interference. WLL's early-failure return means a doomed attempt skips
// the transition computation entirely — the paper's stated purpose for
// weakening LL.
package universal

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/obs"
)

// Object is a lock-free shared object with W-segment state.
type Object struct {
	family *core.LargeFamily
	state  *core.LargeVar
	cm     *contention.Policy
}

// Config parametrizes an Object.
type Config struct {
	// Procs is the number of processes that may operate on the object.
	Procs int
	// Words is the number of state segments W.
	Words int
	// TagBits optionally overrides the Figure 6 tag width (0 = default).
	TagBits uint
}

// New creates an object with the given initial state (length W, each
// segment within the family's segment-value range).
func New(cfg Config, initial []uint64) (*Object, error) {
	family, err := core.NewLargeFamily(core.LargeConfig{
		Procs:   cfg.Procs,
		Words:   cfg.Words,
		TagBits: cfg.TagBits,
	})
	if err != nil {
		return nil, err
	}
	state, err := family.NewVar(initial)
	if err != nil {
		return nil, err
	}
	return &Object{family: family, state: state}, nil
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// object's underlying Figure 6 family, exposing the WLL/SC retry and
// copy-helping behaviour of every Apply.
func (o *Object) SetMetrics(m *obs.Metrics) { o.family.SetMetrics(m) }

// SetContention attaches a contention-management policy (nil disables) to
// the Apply retry loop and the underlying Figure 6 family's Read loop.
// Set before the object is shared.
func (o *Object) SetContention(p *contention.Policy) {
	o.cm = p
	o.family.SetContention(p)
}

// MaxSegmentValue returns the largest value one state segment can hold.
func (o *Object) MaxSegmentValue() uint64 { return o.family.MaxSegmentValue() }

// Words returns the number of state segments.
func (o *Object) Words() int { return o.family.Words() }

// Proc is a per-process handle with private scratch state (the paper's
// "one word per LL-SC sequence ... on the execution stack", hoisted into
// the handle so Apply performs zero allocations).
type Proc struct {
	inner *core.LargeProc
	cur   []uint64
	next  []uint64
}

// Proc returns a handle for process id. Each handle must be driven by one
// goroutine at a time.
func (o *Object) Proc(id int) (*Proc, error) {
	inner, err := o.family.Proc(id)
	if err != nil {
		return nil, err
	}
	w := o.family.Words()
	return &Proc{inner: inner, cur: make([]uint64, w), next: make([]uint64, w)}, nil
}

// Apply atomically replaces the state S with op(S). The op receives the
// current state and a destination buffer to fill; it must be a pure
// function of its input (it may run several times under contention, and
// losing attempts are discarded). It returns the state the operation
// observed (the input to the winning op call). Lock-free: a retry implies
// another process's Apply succeeded.
func (o *Object) Apply(p *Proc, op func(cur []uint64, next []uint64)) []uint64 {
	var w contention.Waiter
	for ; ; w.Wait(o.cm, p.inner.ID(), contention.Interference) {
		keep, res := o.state.WLL(p.inner, p.cur)
		if res != core.Succ {
			continue // a concurrent SC won; retry without computing op
		}
		op(p.cur, p.next)
		for i, x := range p.next {
			if x > o.family.MaxSegmentValue() {
				panic(fmt.Sprintf("universal: op produced segment[%d] = %d exceeding the state field", i, x))
			}
		}
		if o.state.SC(p.inner, keep, p.next) {
			return p.cur
		}
	}
}

// Read returns a consistent snapshot of the state into dst (length W).
func (o *Object) Read(p *Proc, dst []uint64) {
	o.state.Read(p.inner, dst)
}
