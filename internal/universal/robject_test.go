package universal

import (
	"sync"
	"testing"

	"repro/internal/machine"
)

func TestRObjectSequential(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1, SpuriousFailProb: 0.3, Seed: 9})
	o, err := NewRObject(m, 2, 0, []uint64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	p := o.Proc(m.Proc(0))
	observed := o.Apply(p, func(cur, next []uint64) {
		next[0], next[1] = cur[0]+1, cur[1]+2
	})
	if observed[0] != 10 || observed[1] != 20 {
		t.Errorf("observed = %v, want [10 20]", observed)
	}
	dst := make([]uint64, 2)
	o.Read(p, dst)
	if dst[0] != 11 || dst[1] != 22 {
		t.Errorf("state = %v, want [11 22]", dst)
	}
	if o.Words() != 2 {
		t.Errorf("Words = %d", o.Words())
	}
}

func TestRObjectValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	if _, err := NewRObject(m, 0, 0, nil); err == nil {
		t.Error("zero words accepted")
	}
	if _, err := NewRObject(m, 2, 0, []uint64{1}); err == nil {
		t.Error("wrong-length initial accepted")
	}
}

func TestRObjectConcurrentTransfersOnNoisyMachine(t *testing.T) {
	// The bank-conservation invariant, on the RLL/RSC substrate with
	// spurious failures injected.
	const procs = 3
	const rounds = 800
	const accounts = 3
	m := machine.MustNew(machine.Config{Procs: procs, SpuriousFailProb: 0.1, Seed: 33})
	o, err := NewRObject(m, accounts, 0, []uint64{500, 500, 500})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := o.Proc(m.Proc(id))
			for r := 0; r < rounds; r++ {
				from := (id + r) % accounts
				to := (id + r + 1) % accounts
				o.Apply(p, func(cur, next []uint64) {
					copy(next, cur)
					if next[from] > 0 {
						next[from]--
						next[to]++
					}
				})
			}
		}(id)
	}
	wg.Wait()
	p := o.Proc(m.Proc(0))
	dst := make([]uint64, accounts)
	o.Read(p, dst)
	var total uint64
	for _, x := range dst {
		total += x
	}
	if total != 1500 {
		t.Errorf("total = %d, want 1500", total)
	}
	if st := m.Stats(); st.RSCSpurious == 0 {
		t.Error("expected spurious failures at p=0.1")
	}
}
