package universal

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

// RObject is the lock-free universal construction running entirely on a
// machine that provides only the restricted RLL/RSC pair — completing the
// paper's claim matrix: any algorithm based on LL/VL/SC runs on any
// machine with either CAS (see Object) or RLL/RSC (this type). It is
// Object over core.RLargeFamily instead of core.LargeFamily.
type RObject struct {
	family *core.RLargeFamily
	state  *core.RLargeVar
	cm     *contention.Policy
}

// NewRObject creates a lock-free shared object with W-segment state on
// machine m. tagBits = 0 selects the default Figure 6 layout.
func NewRObject(m *machine.Machine, words int, tagBits uint, initial []uint64) (*RObject, error) {
	family, err := core.NewRLargeFamily(m, words, tagBits)
	if err != nil {
		return nil, err
	}
	state, err := family.NewVar(initial)
	if err != nil {
		return nil, err
	}
	return &RObject{family: family, state: state}, nil
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// object's underlying RLL/RSC Figure 6 family.
func (o *RObject) SetMetrics(m *obs.Metrics) { o.family.SetMetrics(m) }

// SetContention attaches a contention-management policy (nil disables) to
// the Apply retry loop and the underlying family's rcas/Read loops.
func (o *RObject) SetContention(p *contention.Policy) {
	o.cm = p
	o.family.SetContention(p)
}

// MaxSegmentValue returns the largest value one state segment can hold.
func (o *RObject) MaxSegmentValue() uint64 { return o.family.MaxSegmentValue() }

// Words returns the number of state segments.
func (o *RObject) Words() int { return o.family.Words() }

// RProc is a per-process handle with private scratch buffers; drive each
// from one goroutine, using the matching machine processor.
type RProc struct {
	p    *machine.Proc
	cur  []uint64
	next []uint64
}

// Proc returns a handle bound to machine processor p.
func (o *RObject) Proc(p *machine.Proc) *RProc {
	w := o.family.Words()
	return &RProc{p: p, cur: make([]uint64, w), next: make([]uint64, w)}
}

// Apply atomically replaces the state S with op(S); see Object.Apply.
// Termination additionally assumes only finitely many spurious RSC
// failures per operation, as everywhere on this substrate.
func (o *RObject) Apply(p *RProc, op func(cur, next []uint64)) []uint64 {
	var w contention.Waiter
	for ; ; w.Wait(o.cm, p.p.ID(), contention.Interference) {
		keep, res := o.state.WLL(p.p, p.cur)
		if res != core.Succ {
			continue
		}
		op(p.cur, p.next)
		for i, x := range p.next {
			if x > o.family.MaxSegmentValue() {
				panic(fmt.Sprintf("universal: op produced segment[%d] = %d exceeding the state field", i, x))
			}
		}
		if o.state.SC(p.p, keep, p.next) {
			return p.cur
		}
	}
}

// Read fills dst with a consistent snapshot of the state.
func (o *RObject) Read(p *RProc, dst []uint64) {
	o.state.Read(p.p, dst)
}
