package structures

import (
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// --- Stack -------------------------------------------------------------

func TestStackBasic(t *testing.T) {
	s, err := NewStack(10)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Error("new stack not empty")
	}
	if _, ok := s.Pop(); ok {
		t.Error("Pop on empty stack succeeded")
	}
	for i := uint64(1); i <= 3; i++ {
		if err := s.Push(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint64(30); want >= 10; want -= 10 {
		v, ok := s.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if !s.Empty() {
		t.Error("stack not empty after draining")
	}
}

func TestStackCapacity(t *testing.T) {
	s, err := NewStack(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 2 {
		t.Errorf("Capacity = %d, want 2", s.Capacity())
	}
	if err := s.Push(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(3); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull Push error = %v, want ErrFull", err)
	}
	// Pop frees a node; Push works again (nodes recycle).
	s.Pop()
	if err := s.Push(3); err != nil {
		t.Fatalf("Push after Pop failed: %v", err)
	}
}

func TestStackValidation(t *testing.T) {
	if _, err := NewStack(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewStack(maxNodes + 1); err == nil {
		t.Error("oversized capacity accepted")
	}
}

func TestStackSequentialLIFOQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 200 {
			vals = vals[:200]
		}
		s, err := NewStack(len(vals) + 1)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if err := s.Push(v); err != nil {
				return false
			}
		}
		for i := len(vals) - 1; i >= 0; i-- {
			v, ok := s.Pop()
			if !ok || v != vals[i] {
				return false
			}
		}
		_, ok := s.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStackConcurrentConservation(t *testing.T) {
	// Each producer pushes distinct tokens; consumers pop until all are
	// seen. No token may be lost or duplicated, and pool recycling must
	// never corrupt values.
	const producers = 4
	const consumers = 4
	const perProducer = 3000
	s, err := NewStack(512)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	seen := make([][]uint64, consumers)
	var popped sync.WaitGroup

	for c := 0; c < consumers; c++ {
		popped.Add(1)
		go func(c int) {
			defer popped.Done()
			count := 0
			for count < producers*perProducer/consumers {
				if v, ok := s.Pop(); ok {
					seen[c] = append(seen[c], v)
					count++
				} else {
					runtime.Gosched()
				}
			}
		}(c)
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				token := uint64(p*perProducer + i + 1)
				for {
					if err := s.Push(token); err == nil {
						break
					}
					runtime.Gosched() // pool full: let consumers drain
				}
			}
		}(p)
	}
	wg.Wait()
	popped.Wait()

	all := make(map[uint64]bool, producers*perProducer)
	for _, lane := range seen {
		for _, v := range lane {
			if all[v] {
				t.Fatalf("token %d popped twice", v)
			}
			all[v] = true
		}
	}
	if len(all) != producers*perProducer {
		t.Fatalf("popped %d distinct tokens, want %d", len(all), producers*perProducer)
	}
}

// --- Queue -------------------------------------------------------------

func TestQueueBasic(t *testing.T) {
	q, err := NewQueue(10)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Empty() {
		t.Error("new queue not empty")
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("Dequeue on empty queue succeeded")
	}
	for i := uint64(1); i <= 5; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	for want := uint64(1); want <= 5; want++ {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if !q.Empty() {
		t.Error("queue not empty after draining")
	}
}

func TestQueueCapacityAndRecycling(t *testing.T) {
	q, err := NewQueue(3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Capacity() != 3 {
		t.Errorf("Capacity = %d, want 3", q.Capacity())
	}
	for i := uint64(0); i < 3; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Enqueue(9); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull Enqueue error = %v, want ErrFull", err)
	}
	// Cycle the queue many times through its small pool.
	for i := uint64(3); i < 100; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i-3 {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i-3)
		}
		if err := q.Enqueue(i); err != nil {
			t.Fatalf("Enqueue(%d) failed: %v", i, err)
		}
	}
}

func TestQueueFIFOQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 200 {
			vals = vals[:200]
		}
		q, err := NewQueue(len(vals) + 1)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if err := q.Enqueue(v); err != nil {
				return false
			}
		}
		for _, want := range vals {
			v, ok := q.Dequeue()
			if !ok || v != want {
				return false
			}
		}
		_, ok := q.Dequeue()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueConcurrentConservationAndOrder(t *testing.T) {
	// MPMC conservation plus per-producer FIFO: each producer's tokens
	// must be dequeued in increasing sequence order.
	const producers = 4
	const consumers = 4
	const perProducer = 3000
	q, err := NewQueue(512)
	if err != nil {
		t.Fatal(err)
	}
	var prodWG, consWG sync.WaitGroup
	seen := make([][]uint64, consumers)

	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			count := 0
			for count < producers*perProducer/consumers {
				if v, ok := q.Dequeue(); ok {
					seen[c] = append(seen[c], v)
					count++
				} else {
					runtime.Gosched()
				}
			}
		}(c)
	}
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				token := uint64(p)<<32 | uint64(i)
				for {
					if err := q.Enqueue(token); err == nil {
						break
					}
					runtime.Gosched()
				}
			}
		}(p)
	}
	prodWG.Wait()
	consWG.Wait()

	all := make(map[uint64]bool, producers*perProducer)
	lastSeq := make([]map[int]uint64, consumers)
	for c, lane := range seen {
		lastSeq[c] = make(map[int]uint64)
		prev := lastSeq[c]
		for _, v := range lane {
			if all[v] {
				t.Fatalf("token %#x dequeued twice", v)
			}
			all[v] = true
			p := int(v >> 32)
			seq := v & 0xFFFFFFFF
			if last, ok := prev[p]; ok && seq <= last {
				t.Fatalf("consumer %d saw producer %d's tokens out of order: %d then %d", c, p, last, seq)
			}
			prev[p] = seq
		}
	}
	if len(all) != producers*perProducer {
		t.Fatalf("dequeued %d distinct tokens, want %d", len(all), producers*perProducer)
	}
}

// --- Counter -----------------------------------------------------------

func TestCounterSequential(t *testing.T) {
	c := NewCounter(10)
	if got := c.Load(); got != 10 {
		t.Fatalf("Load = %d, want 10", got)
	}
	if got := c.Increment(); got != 11 {
		t.Errorf("Increment = %d, want 11", got)
	}
	if got := c.Add(5); got != 16 {
		t.Errorf("Add(5) = %d, want 16", got)
	}
	if got := c.Decrement(); got != 15 {
		t.Errorf("Decrement = %d, want 15", got)
	}
	if got := c.FetchOp(func(v uint64) uint64 { return v * 2 }); got != 30 {
		t.Errorf("FetchOp(double) = %d, want 30", got)
	}
}

func TestCounterWraps32Bits(t *testing.T) {
	c := NewCounter((1 << 32) - 1)
	if got := c.Increment(); got != 0 {
		t.Errorf("Increment at max = %d, want 0 (mod 2^32)", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	const workers = 8
	const rounds = 10000
	c := NewCounter(0)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				c.Increment()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*rounds {
		t.Errorf("final = %d, want %d", got, workers*rounds)
	}
}

// --- Set ---------------------------------------------------------------

func TestSetBasic(t *testing.T) {
	s, err := NewSet(16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Contains(5) {
		t.Error("empty set contains 5")
	}
	ok, err := s.Insert(5)
	if err != nil || !ok {
		t.Fatalf("Insert(5) = (%v,%v)", ok, err)
	}
	ok, err = s.Insert(5)
	if err != nil || ok {
		t.Fatalf("duplicate Insert(5) = (%v,%v), want (false,nil)", ok, err)
	}
	if !s.Contains(5) {
		t.Error("set missing 5 after insert")
	}
	if !s.Delete(5) {
		t.Error("Delete(5) failed")
	}
	if s.Contains(5) {
		t.Error("set contains 5 after delete")
	}
	if s.Delete(5) {
		t.Error("second Delete(5) succeeded")
	}
}

func TestSetSortedOrderMaintained(t *testing.T) {
	s, err := NewSet(64)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{50, 10, 30, 20, 40, 5, 45}
	for _, k := range keys {
		if ok, err := s.Insert(k); err != nil || !ok {
			t.Fatalf("Insert(%d) = (%v,%v)", k, ok, err)
		}
	}
	if got := s.Len(); got != len(keys) {
		t.Errorf("Len = %d, want %d", got, len(keys))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if !s.Contains(k) {
			t.Errorf("missing key %d", k)
		}
	}
	if s.Contains(25) {
		t.Error("contains never-inserted 25")
	}
}

func TestSetRejectsSentinelKey(t *testing.T) {
	s, err := NewSet(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(^uint64(0)); err == nil {
		t.Error("sentinel key accepted")
	}
}

func TestSetLifetimeBudget(t *testing.T) {
	s, err := NewSet(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		if ok, err := s.Insert(i); err != nil || !ok {
			t.Fatalf("Insert(%d) = (%v,%v)", i, ok, err)
		}
	}
	// Deleting does not reclaim (documented); the 4th insert fails.
	s.Delete(0)
	if _, err := s.Insert(99); !errors.Is(err, ErrFull) {
		t.Fatalf("Insert past budget error = %v, want ErrFull", err)
	}
	// Re-inserting a duplicate of a live key still works (no alloc).
	if ok, err := s.Insert(1); err != nil || ok {
		t.Fatalf("duplicate Insert(1) = (%v,%v), want (false,nil)", ok, err)
	}
}

func TestSetSequentialRandomOpsAgainstMap(t *testing.T) {
	s, err := NewSet(4096)
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64]bool)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(64))
		switch rng.Intn(3) {
		case 0:
			ok, err := s.Insert(k)
			if err != nil {
				t.Fatalf("op %d: Insert(%d): %v", i, k, err)
			}
			if ok == oracle[k] {
				t.Fatalf("op %d: Insert(%d) = %v, oracle has=%v", i, k, ok, oracle[k])
			}
			oracle[k] = true
		case 1:
			ok := s.Delete(k)
			if ok != oracle[k] {
				t.Fatalf("op %d: Delete(%d) = %v, oracle has=%v", i, k, ok, oracle[k])
			}
			delete(oracle, k)
		default:
			if got := s.Contains(k); got != oracle[k] {
				t.Fatalf("op %d: Contains(%d) = %v, oracle has=%v", i, k, got, oracle[k])
			}
		}
	}
	if got := s.Len(); got != len(oracle) {
		t.Errorf("Len = %d, oracle %d", got, len(oracle))
	}
}

func TestSetConcurrentDisjointKeys(t *testing.T) {
	// Each worker owns a key range: inserts all, verifies, deletes half.
	const workers = 4
	const perWorker = 500
	s, err := NewSet(workers * perWorker)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perWorker)
			for i := uint64(0); i < perWorker; i++ {
				if ok, err := s.Insert(base + i); err != nil || !ok {
					t.Errorf("Insert(%d) = (%v,%v)", base+i, ok, err)
					return
				}
			}
			for i := uint64(0); i < perWorker; i++ {
				if !s.Contains(base + i) {
					t.Errorf("missing %d", base+i)
					return
				}
			}
			for i := uint64(0); i < perWorker; i += 2 {
				if !s.Delete(base + i) {
					t.Errorf("Delete(%d) failed", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != workers*perWorker/2 {
		t.Errorf("Len = %d, want %d", got, workers*perWorker/2)
	}
}

func TestSetConcurrentContendedKeys(t *testing.T) {
	// All workers fight over the same small key space; afterwards the net
	// effect per key must be consistent (present iff inserts-deletes
	// bookkeeping says so is impossible to track exactly, so instead we
	// verify structural integrity: Len matches a fresh traversal and all
	// remaining keys are in range).
	const workers = 8
	const opsPerWorker = 2000
	const keySpace = 16
	s, err := NewSet(workers * opsPerWorker)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < opsPerWorker; i++ {
				k := uint64(rng.Intn(keySpace))
				switch rng.Intn(3) {
				case 0:
					if _, err := s.Insert(k); err != nil {
						t.Errorf("Insert(%d): %v", k, err)
						return
					}
				case 1:
					s.Delete(k)
				default:
					s.Contains(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// Structural integrity: traversal terminates, keys are sorted and
	// within range, and no key repeats.
	var prev int64 = -1
	cur := setIdx(s.p.nodes[s.head].next.Read())
	for cur != s.tail {
		link := s.p.nodes[cur].next.Read()
		if !setMarked(link) {
			k := s.p.nodes[cur].key
			if int64(k) <= prev {
				t.Fatalf("keys out of order: %d after %d", k, prev)
			}
			if k >= keySpace {
				t.Fatalf("alien key %d", k)
			}
			prev = int64(k)
		}
		cur = setIdx(link)
	}
}
