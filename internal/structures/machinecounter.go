package structures

import (
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// MachineCounter is Counter's machine-backed sibling: a lock-free
// fetch-and-op counter built on the paper's Figure 3 CAS (core.CASVar)
// rather than on the Figure 4 Var. Where Counter hardwires the native
// sync/atomic path, MachineCounter inherits its machine's substrate —
// the same structure runs deterministically scheduled, fault-injected,
// and step-clocked on machine.SubstrateSim, or at hardware speed on
// machine.SubstrateNative — which makes it the unit under test for the
// substrate-differential suites and the sim-vs-native benchmark.
//
// The price of substrate pluggability is the paper's process model:
// every operation names the executing processor, and each *machine.Proc
// must be driven by one goroutine at a time. Values are 32-bit and wrap
// modulo 2³², like Counter.
type MachineCounter struct {
	v  *core.CASVar
	cm *contention.Policy
}

// NewMachineCounter creates a counter on machine m holding initial
// (masked to 32 bits).
func NewMachineCounter(m *machine.Machine, initial uint64) (*MachineCounter, error) {
	v, err := core.NewCASVar(m, counterLayout, initial&counterLayout.MaxVal())
	if err != nil {
		return nil, err // unreachable: the value is masked
	}
	return &MachineCounter{v: v}, nil
}

// SetMetrics attaches an optional metrics sink (nil disables), shared
// with the underlying CASVar. Set before the counter is shared.
func (c *MachineCounter) SetMetrics(m *obs.Metrics) { c.v.SetMetrics(m) }

// SetContention attaches a contention-management policy: the underlying
// CASVar consults it for spurious-failure retries, and the fetch-and-op
// loop here consults it for interference retries. Set before the counter
// is shared.
func (c *MachineCounter) SetContention(p *contention.Policy) {
	c.cm = p
	c.v.SetContention(p)
}

// SetTracer attaches an optional span tracer (nil disables) on the
// underlying CASVar. Set before the counter is shared.
func (c *MachineCounter) SetTracer(t *trace.Tracer) { c.v.SetTracer(t) }

// Load returns the current value, executed by processor p.
func (c *MachineCounter) Load(p *machine.Proc) uint64 { return c.v.Read(p) }

// Add atomically adds delta and returns the new value. Lock-free.
func (c *MachineCounter) Add(p *machine.Proc, delta uint64) uint64 {
	return c.FetchOp(p, func(v uint64) uint64 { return v + delta })
}

// Increment is Add(1).
func (c *MachineCounter) Increment(p *machine.Proc) uint64 { return c.Add(p, 1) }

// Decrement is Add(-1) modulo 2³².
func (c *MachineCounter) Decrement(p *machine.Proc) uint64 {
	return c.FetchOp(p, func(v uint64) uint64 { return v - 1 })
}

// FetchOp atomically replaces the value v with f(v) (masked to 32 bits)
// and returns the new value, executed by processor p. f may be called
// multiple times under contention and must be pure. Lock-free: a failed
// CAS means another processor's operation succeeded.
func (c *MachineCounter) FetchOp(p *machine.Proc, f func(uint64) uint64) uint64 {
	var w contention.Waiter
	for ; ; w.Wait(c.cm, p.ID(), contention.Interference) {
		v := c.v.Read(p)
		next := f(v) & counterLayout.MaxVal()
		if c.v.CompareAndSwap(p, v, next) {
			return next
		}
	}
}
