package structures

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/word"
)

func snapshotVars(t *testing.T, n int, initial uint64) []*core.Var {
	t.Helper()
	vars := make([]*core.Var, n)
	for i := range vars {
		vars[i] = core.MustNewVar(word.MustLayout(32), initial)
	}
	return vars
}

func TestSnapshotValidation(t *testing.T) {
	if _, err := NewSnapshot(nil); err == nil {
		t.Error("empty variable set accepted")
	}
	if _, err := NewSnapshot([]*core.Var{nil}); err == nil {
		t.Error("nil variable accepted")
	}
}

func TestSnapshotQuiescent(t *testing.T) {
	vars := snapshotVars(t, 4, 0)
	for i, v := range vars {
		_, k := v.LL()
		if !v.SC(k, uint64(i*10)) {
			t.Fatal("setup SC failed")
		}
	}
	s, err := NewSnapshot(vars)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 4 {
		t.Errorf("Size = %d, want 4", s.Size())
	}
	dst := make([]uint64, 4)
	s.Collect(dst)
	for i := range dst {
		if dst[i] != uint64(i*10) {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], i*10)
		}
	}
}

func TestSnapshotPanicsOnShortDst(t *testing.T) {
	s, err := NewSnapshot(snapshotVars(t, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	s.Collect(make([]uint64, 2))
}

func TestSnapshotNeverTears(t *testing.T) {
	// Writers keep all variables equal (each update writes the same new
	// value to every variable, one SC at a time, so the set passes
	// through unequal intermediate states constantly). Snapshots must
	// nevertheless always observe... unequal states ARE committed here,
	// so instead use a stronger invariant: writers maintain
	// vars = [x, x+1, x+2] by updating them in sequence x→x+1→...; a torn
	// snapshot could see an impossible combination. Use the pair
	// invariant: vars[1] - vars[0] ∈ {0, 1} and vars[2] - vars[1] ∈ {0,1},
	// and vars[0] can lead only after both others caught up:
	// monotone wavefront. Simpler airtight check: a snapshot must equal
	// some prefix state of the single writer's deterministic write
	// sequence — with ONE writer, every committed state is
	// (k0, k1, k2) with k0 ≥ k1 ≥ k2 ≥ k0-1 (writer bumps 0, then 1,
	// then 2, round-robin).
	vars := snapshotVars(t, 3, 0)
	s, err := NewSnapshot(vars)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for round := uint64(1); ; round++ {
			for _, v := range vars {
				select {
				case <-stop:
					return
				default:
				}
				_, k := v.LL()
				if !v.SC(k, round) {
					return
				}
			}
		}
	}()

	dst := make([]uint64, 3)
	keeps := make([]core.Keep, 3)
	for i := 0; i < 30000; i++ {
		s.CollectWith(dst, keeps)
		// Wavefront invariant: v0 ≥ v1 ≥ v2 ≥ v0-1.
		if !(dst[0] >= dst[1] && dst[1] >= dst[2] && dst[2]+1 >= dst[0]) {
			t.Fatalf("iteration %d: torn snapshot %v violates the wavefront invariant", i, dst)
		}
	}
	close(stop)
	writer.Wait()
}

func TestSnapshotConcurrentCollectors(t *testing.T) {
	const collectors = 3
	const updates = 5000
	vars := snapshotVars(t, 2, 0)
	s, err := NewSnapshot(vars)
	if err != nil {
		t.Fatal(err)
	}
	// The writer bumps var1 to round r, then var0, so the committed
	// states are (r-1, r-1) → (r-1, r) → (r, r). A consistent cut (a, b)
	// therefore satisfies b ≥ a ≥ b-1; anything else is a torn snapshot.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < collectors; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]uint64, 2)
			keeps := make([]core.Keep, 2)
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.CollectWith(dst, keeps)
				a, b := dst[0], dst[1]
				if !(b >= a && a+1 >= b) {
					t.Errorf("snapshot (%d,%d) violates b ≥ a ≥ b-1", a, b)
					return
				}
			}
		}()
	}
	for r := uint64(1); r <= updates; r++ {
		for _, idx := range []int{1, 0} { // var1 first, then var0
			v := vars[idx]
			for {
				_, k := v.LL()
				if v.SC(k, r) {
					break
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
