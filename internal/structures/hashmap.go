package structures

import (
	"fmt"
	"sync/atomic" //llsc:allow nakedatomic(bucket value cells are plain payload registers; synchronization goes through core LL/SC)

	"repro/internal/contention"
	"repro/internal/core"
)

// Map is a bounded lock-free hash map with open addressing and linear
// probing. Each bucket's key word is an LL/SC variable claimed exactly
// once (empty → key), so the probe structure is append-only and lookups
// need no synchronization beyond atomic loads; values are plain 64-bit
// atomics with last-writer-wins semantics per key.
//
// A Put of a new key claims its bucket first (LL/SC) and publishes the
// value second; a Get that observes the claimed key before the value
// treats the entry as absent (the Put has not linearized yet — Put
// linearizes at its value store). The claim-once design means keys are
// never physically removed: Delete stores a tombstone in the value word,
// and the bucket is reused only by a later Put of the SAME key. Capacity
// therefore bounds the number of distinct keys over the map's lifetime.
type Map struct {
	keys []core.Var // key+1 in the 24-bit value field; 0 = empty
	vals []atomic.Uint64
	mask uint64
	cm   *contention.Policy
}

// MaxMapKey is the largest storable key (the key+1 encoding must fit the
// 24-bit link field).
const MaxMapKey = 1<<24 - 2

// Reserved value-word sentinels. Caller values must avoid both.
const (
	tombstone = ^uint64(0)     // deleted
	unsetVal  = ^uint64(0) - 1 // bucket claimed, value not yet published
)

// NewMap creates a map supporting capacity distinct keys over its
// lifetime; the bucket array is sized to keep the load factor at or below
// 1/2. Capacity must be in [1, 2^22].
func NewMap(capacity int) (*Map, error) {
	if capacity < 1 || capacity > 1<<22 {
		return nil, fmt.Errorf("structures: map capacity must be in [1,%d], got %d", 1<<22, capacity)
	}
	buckets := 2
	for buckets < 2*capacity {
		buckets *= 2
	}
	m := &Map{
		keys: make([]core.Var, buckets),
		vals: make([]atomic.Uint64, buckets),
		mask: uint64(buckets) - 1,
	}
	for i := range m.keys {
		if err := m.keys[i].Init(indexLayout, 0); err != nil {
			return nil, err
		}
		m.vals[i].Store(unsetVal)
	}
	return m, nil
}

// hash mixes the key (Fibonacci hashing) into a bucket index.
func (m *Map) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 40 & m.mask
}

// probe finds the bucket holding key (claimed=true), or the first empty
// bucket on its probe path (claimed=false). A full cycle with neither
// returns ok=false.
func (m *Map) probe(key uint64) (idx uint64, claimed bool, ok bool) {
	h := m.hash(key)
	for i := uint64(0); i <= m.mask; i++ {
		b := (h + i) & m.mask
		switch m.keys[b].Read() {
		case key + 1:
			return b, true, true
		case 0:
			return b, false, true
		}
	}
	return 0, false, false
}

// Put sets key to value. It returns ErrFull when no bucket can be
// claimed. Lock-free; linearizes at the value store.
func (m *Map) Put(key, value uint64) error {
	if key > MaxMapKey {
		return fmt.Errorf("structures: key %d exceeds MaxMapKey", key)
	}
	if value == tombstone || value == unsetVal {
		return fmt.Errorf("structures: value %#x is reserved", value)
	}
	var w contention.Waiter
	for ; ; w.Wait(m.cm, contention.Ambient, contention.Interference) {
		b, claimed, ok := m.probe(key)
		if !ok {
			return ErrFull
		}
		if claimed {
			m.vals[b].Store(value)
			return nil
		}
		got, keep := m.keys[b].LL()
		if got != 0 {
			continue // someone claimed it between probe and LL; re-probe
		}
		if m.keys[b].SC(keep, key+1) {
			// We own the bucket; publish the value (the linearization point).
			m.vals[b].Store(value)
			return nil
		}
		// Lost the claim race (possibly to a different key); re-probe.
	}
}

// Get returns the value stored for key. An entry whose Put has claimed
// its bucket but not yet published a value reads as absent.
func (m *Map) Get(key uint64) (uint64, bool) {
	if key > MaxMapKey {
		return 0, false
	}
	b, claimed, ok := m.probe(key)
	if !ok || !claimed {
		return 0, false
	}
	v := m.vals[b].Load()
	if v == tombstone || v == unsetVal {
		return 0, false
	}
	return v, true
}

// Delete removes key, reporting whether it was present. The bucket
// remains dedicated to the key (tombstoned), so Delete does not recover
// capacity for other keys; a later Put of the same key resurrects it.
func (m *Map) Delete(key uint64) bool {
	if key > MaxMapKey {
		return false
	}
	b, claimed, ok := m.probe(key)
	if !ok || !claimed {
		return false
	}
	old := m.vals[b].Swap(tombstone)
	return old != tombstone && old != unsetVal
}

// Len counts the live keys — O(buckets), exact when quiescent.
func (m *Map) Len() int {
	n := 0
	for i := range m.keys {
		if m.keys[i].Read() == 0 {
			continue
		}
		if v := m.vals[i].Load(); v != tombstone && v != unsetVal {
			n++
		}
	}
	return n
}

// Range calls fn for every live key/value pair until fn returns false.
// Iteration is weakly consistent: concurrent updates may or may not be
// observed.
func (m *Map) Range(fn func(key, value uint64) bool) {
	for i := range m.keys {
		k := m.keys[i].Read()
		if k == 0 {
			continue
		}
		v := m.vals[i].Load()
		if v == tombstone || v == unsetVal {
			continue
		}
		if !fn(k-1, v) {
			return
		}
	}
}
