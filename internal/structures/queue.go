package structures

import (
	"repro/internal/contention"
	"repro/internal/core"
)

// Queue is a bounded lock-free multi-producer multi-consumer FIFO in the
// style of Michael & Scott, with every link — head, tail, and the per-node
// next words — an LL/SC variable. The LL/SC tags make stale swings fail
// even across node recycling, so dequeued nodes return to the pool
// immediately (the CAS version needs counted pointers or hazard pointers
// for the same guarantee).
type Queue struct {
	p    *pool
	head core.Var
	tail core.Var
	cm   *contention.Policy
}

// NewQueue creates a queue holding at most capacity elements. One pool
// node is reserved for the FIFO's dummy node, so the pool is sized
// capacity+1.
func NewQueue(capacity int) (*Queue, error) {
	p, err := newPool(capacity + 1)
	if err != nil {
		return nil, err
	}
	q := &Queue{p: p}
	dummy, err := p.alloc()
	if err != nil {
		return nil, err
	}
	p.setNext(dummy, 0)
	if err := q.head.Init(indexLayout, dummy); err != nil {
		return nil, err
	}
	if err := q.tail.Init(indexLayout, dummy); err != nil {
		return nil, err
	}
	return q, nil
}

// Enqueue appends v. It returns ErrFull when the pool is exhausted.
// Lock-free.
func (q *Queue) Enqueue(v uint64) error {
	idx, err := q.p.alloc()
	if err != nil {
		return err
	}
	q.p.nodes[idx].val.Store(v)
	q.p.setNext(idx, 0)
	var w contention.Waiter
	for ; ; w.Wait(q.cm, contention.Ambient, contention.Interference) {
		t, kt := q.tail.LL()
		next, kn := q.p.nodes[t].next.LL()
		if !q.tail.VL(kt) {
			continue // t is stale; its next word may belong to a recycled node
		}
		if next != 0 {
			// Tail is lagging: help swing it, then retry.
			q.tail.SC(kt, next)
			continue
		}
		if q.p.nodes[t].next.SC(kn, idx) {
			// Linked. Swing the tail; failure means someone helped.
			q.tail.SC(kt, idx)
			return nil
		}
	}
}

// Dequeue removes and returns the oldest element; ok is false if the
// queue is empty. Lock-free.
func (q *Queue) Dequeue() (v uint64, ok bool) {
	var w contention.Waiter
	for ; ; w.Wait(q.cm, contention.Ambient, contention.Interference) {
		h, kh := q.head.LL()
		t := q.tail.Read()
		next := q.p.nodes[h].next.Read()
		if !q.head.VL(kh) {
			continue // h may have been recycled; next is untrustworthy
		}
		if h == t {
			if next == 0 {
				return 0, false // empty
			}
			// Tail lagging behind an in-flight enqueue: help it forward.
			tt, ktt := q.tail.LL()
			if tt == t {
				q.tail.SC(ktt, next)
			}
			continue
		}
		if next == 0 {
			continue // transiently inconsistent snapshot; retry
		}
		val := q.p.nodes[next].val.Load()
		if q.head.SC(kh, next) {
			q.p.freeNode(h)
			return val, true
		}
	}
}

// Empty reports whether the queue was empty at the linearization point of
// the underlying reads (head == tail with no in-flight successor).
func (q *Queue) Empty() bool {
	h := q.head.Read()
	return h == q.tail.Read() && q.p.nodes[h].next.Read() == 0
}

// Capacity returns the queue's fixed element capacity.
func (q *Queue) Capacity() int { return q.p.capacity() - 1 }
