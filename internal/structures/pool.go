// Package structures provides non-blocking data structures built purely on
// the LL/VL/SC primitives of internal/core — the class of algorithms the
// paper exists to make runnable on real hardware (its Section 1 motivation
// cites stacks, queues, sets and universal constructions that assume full
// LL/VL/SC semantics).
//
// Two properties of LL/SC make these algorithms simpler and safer than
// their CAS counterparts:
//
//   - no ABA problem: SC fails if the variable was written at all since
//     the LL, even if the value was restored, so no version counters or
//     hazard pointers are needed for the central swing pointers; and
//   - cheap validation: VL lets a traversal confirm its snapshot without
//     write traffic.
//
// Nodes live in fixed arrays and are addressed by index, not Go pointer —
// exactly the paper's observation that "a relatively small range of data
// values must be stored (for example array indices)" fits the one-word
// primitives. All containers here are bounded-capacity and lock-free.
package structures

import (
	"errors"
	"fmt"
	"sync/atomic" //llsc:allow nakedatomic(node payload cells are plain registers published via LL/SC-guarded indices)

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/word"
)

// ErrFull is returned when a container's node pool is exhausted.
var ErrFull = errors.New("structures: capacity exhausted")

// indexLayout is the tag|value split used for all link words: 40-bit tags
// (wraparound ≈ 12 days at 10^9 updates/s — far beyond any LL-SC sequence)
// and 24-bit values, giving 16M addressable nodes. The top value bit
// serves as the Harris mark in Set, leaving 23 bits ≈ 8M nodes there.
var indexLayout = word.MustLayout(40)

// maxNodes is the largest supported pool capacity (indices are 1-based,
// 0 is the nil sentinel, and Set steals the top bit for marks).
const maxNodes = 1<<23 - 2

// node is one pooled cell: an LL/SC link word, a data word, and an
// immutable key (used only by Set).
type node struct {
	next core.Var
	val  atomic.Uint64
	key  uint64
}

// pool is a bounded allocator whose free list is itself a Treiber stack
// maintained with LL/SC — no locks anywhere.
type pool struct {
	nodes []node // nodes[0] unused; indices are 1-based, 0 = nil
	free  core.Var
	cm    *contention.Policy
}

func newPool(capacity int) (*pool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("structures: capacity must be at least 1, got %d", capacity)
	}
	if capacity > maxNodes {
		return nil, fmt.Errorf("structures: capacity %d exceeds maximum %d", capacity, maxNodes)
	}
	p := &pool{nodes: make([]node, capacity+1)}
	// Chain all nodes onto the free list: free -> 1 -> 2 -> ... -> n -> nil.
	for i := 1; i <= capacity; i++ {
		nxt := uint64(0)
		if i < capacity {
			nxt = uint64(i + 1)
		}
		if err := p.nodes[i].next.Init(indexLayout, nxt); err != nil {
			return nil, err
		}
	}
	if err := p.free.Init(indexLayout, 1); err != nil {
		return nil, err
	}
	return p, nil
}

// alloc pops a node index from the free list. Lock-free: a retry implies
// another alloc or free succeeded.
func (p *pool) alloc() (uint64, error) {
	var w contention.Waiter
	for ; ; w.Wait(p.cm, contention.Ambient, contention.Interference) {
		top, keep := p.free.LL()
		if top == 0 {
			return 0, ErrFull
		}
		next := p.nodes[top].next.Read()
		if p.free.SC(keep, next) {
			return top, nil
		}
	}
}

// freeNode resets the node's link and pushes it back. The reset uses an
// SC loop rather than a plain store so the link word's tag keeps
// advancing — a plain store would break the tag protection that makes
// stale SCs by other processes fail.
func (p *pool) freeNode(idx uint64) {
	p.setNext(idx, 0)
	var w contention.Waiter
	for ; ; w.Wait(p.cm, contention.Ambient, contention.Interference) {
		top, keep := p.free.LL()
		p.setNext(idx, top)
		if p.free.SC(keep, idx) {
			return
		}
	}
}

// setNext forces node idx's link to v via the tag-preserving Store.
func (p *pool) setNext(idx, v uint64) {
	p.nodes[idx].next.Store(v)
}

// capacity returns the pool's node capacity.
func (p *pool) capacity() int { return len(p.nodes) - 1 }
