package structures

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/sched"
)

// forEachSubstrate runs fn once per machine substrate, as a subtest named
// for the substrate, so every MachineCounter property is pinned on both
// the simulated multiprocessor and hardware sync/atomic.
func forEachSubstrate(t *testing.T, procs int, fn func(t *testing.T, m *machine.Machine)) {
	for _, sub := range []machine.Substrate{machine.SubstrateSim, machine.SubstrateNative} {
		t.Run(sub.String(), func(t *testing.T) {
			fn(t, machine.MustNew(machine.Config{Procs: procs, Substrate: sub, Seed: 7}))
		})
	}
}

func TestMachineCounterSequential(t *testing.T) {
	forEachSubstrate(t, 1, func(t *testing.T, m *machine.Machine) {
		c, err := NewMachineCounter(m, 10)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Proc(0)
		if got := c.Load(p); got != 10 {
			t.Errorf("initial Load = %d, want 10", got)
		}
		if got := c.Increment(p); got != 11 {
			t.Errorf("Increment = %d, want 11", got)
		}
		if got := c.Add(p, 5); got != 16 {
			t.Errorf("Add(5) = %d, want 16", got)
		}
		if got := c.Decrement(p); got != 15 {
			t.Errorf("Decrement = %d, want 15", got)
		}
		if got := c.FetchOp(p, func(v uint64) uint64 { return v * 2 }); got != 30 {
			t.Errorf("FetchOp(double) = %d, want 30", got)
		}
		// No-op fetch-and-op linearizes at the read (Figure 3 line 3).
		if got := c.FetchOp(p, func(v uint64) uint64 { return v }); got != 30 {
			t.Errorf("identity FetchOp = %d, want 30", got)
		}
	})
}

func TestMachineCounterWraps(t *testing.T) {
	forEachSubstrate(t, 1, func(t *testing.T, m *machine.Machine) {
		c, err := NewMachineCounter(m, (1<<32)-1)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Proc(0)
		if got := c.Increment(p); got != 0 {
			t.Errorf("Increment at 2³²-1 = %d, want 0 (wrap)", got)
		}
		if got := c.Decrement(p); got != (1<<32)-1 {
			t.Errorf("Decrement at 0 = %d, want 2³²-1 (wrap)", got)
		}
	})
}

// TestMachineCounterConcurrent pins exactness under contention on both
// substrates: each of P free-running processors adds K times, and every
// add lands exactly once. On the native substrate this is the suite the
// -race builds exercise against real hardware atomics.
func TestMachineCounterConcurrent(t *testing.T) {
	const procs, perProc = 4, 2000
	forEachSubstrate(t, procs, func(t *testing.T, m *machine.Machine) {
		c, err := NewMachineCounter(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(p *machine.Proc) {
				defer wg.Done()
				for k := 0; k < perProc; k++ {
					c.Increment(p)
				}
			}(m.Proc(i))
		}
		wg.Wait()
		if got := c.Load(m.Proc(0)); got != procs*perProc {
			t.Errorf("final count = %d, want %d", got, procs*perProc)
		}
	})
}

// TestMachineCounterExhaustiveConformanceSim is the sim cell of the
// MachineCounter conformance pair: the machine's scheduler is wired to
// an exhaustive controller, so every interleaving of the counter's
// *individual machine instructions* (not whole ops — each Load, RLL and
// RSC is a scheduling point) is enumerated and each schedule's Add
// return values are checked against some legal serialization. This is
// coverage only the simulation substrate can provide.
func TestMachineCounterExhaustiveConformanceSim(t *testing.T) {
	scripts := [][]uint64{{1, 2}, {4}} // deltas per proc; distinct powers of two
	type rec struct {
		proc  int
		delta uint64
		ret   uint64
	}
	res, err := sched.ExploreExhaustive(len(scripts), 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		m := machine.MustNew(machine.Config{Procs: len(scripts), Scheduler: ctrl})
		c, err := NewMachineCounter(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var log []rec
		workload := func(p int) {
			mp := m.Proc(p)
			for _, d := range scripts[p] {
				got := c.Add(mp, d)
				mu.Lock()
				log = append(log, rec{proc: p, delta: d, ret: got})
				mu.Unlock()
			}
		}
		check := func() error {
			// Some permutation of the ops must explain every return value
			// as its running total (each Add returns the post-add value).
			var ok func(done []bool, total uint64, left int) bool
			ok = func(done []bool, total uint64, left int) bool {
				if left == 0 {
					return true
				}
				for i, r := range log {
					if !done[i] && r.ret == total+r.delta {
						done[i] = true
						if ok(done, total+r.delta, left-1) {
							return true
						}
						done[i] = false
					}
				}
				return false
			}
			if !ok(make([]bool, len(log)), 0, len(log)) {
				return fmt.Errorf("no serialization explains %v", log)
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
	t.Logf("exhausted %d instruction-level schedules", res.Schedules)
}

// TestMachineCounterLinearizableWindowsNative is the native cell of the
// pair: free-running goroutines on hardware sync/atomic record windowed
// histories that must linearize against the counter model — the same
// Wing–Gong style check the Figure 4 containers use, here exercising the
// machine-backed path under real schedules (and -race in CI).
func TestMachineCounterLinearizableWindowsNative(t *testing.T) {
	const procs = 3
	m := machine.MustNew(machine.Config{Procs: procs, Substrate: machine.SubstrateNative})
	c, err := NewMachineCounter(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &linRecorder{}
	driver := func(p int, rng *rand.Rand) {
		mp := m.Proc(p)
		for i := 0; i < 4; i++ {
			if rng.Intn(3) == 0 {
				rec.do(p, "load", 0, 0, func() (uint64, bool) { return c.Load(mp), false })
			} else {
				d := uint64(rng.Intn(5) + 1)
				rec.do(p, "add", d, 0, func() (uint64, bool) { return c.Add(mp, d), false })
			}
		}
	}
	runLinRounds(t, procs, 30, rec,
		func() string { return fmt.Sprintf("%d", c.Load(m.Proc(0))) },
		driver, counterStep)
}

// TestMachineCounterSpuriousBurst pins the cross-substrate invariant that
// deterministic spurious-failure bursts (Proc.FailNext) are honored by
// both backends: the add retries through the burst and still lands.
func TestMachineCounterSpuriousBurst(t *testing.T) {
	forEachSubstrate(t, 1, func(t *testing.T, m *machine.Machine) {
		c, err := NewMachineCounter(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Proc(0)
		p.FailNext(3)
		if got := c.Increment(p); got != 1 {
			t.Errorf("Increment through a FailNext(3) burst = %d, want 1", got)
		}
	})
}
