package structures

import (
	"fmt"

	"repro/internal/universal"
)

// Deque is a bounded lock-free double-ended queue. General lock-free
// deques are notoriously hard from raw CAS (they motivated Barnes's
// method and Herlihy's methodology — the paper's references [4] and [7]);
// here the sequential deque is simply lifted through the universal
// construction on the W-word primitive, which makes every operation an
// atomic WLL/compute/SC on the whole state.
//
// The cost model is the universal construction's: O(capacity) work per
// operation, so Deque suits small bounded deques (work-stealing stubs,
// small schedulers), not bulk storage. Values must fit 32 bits.
type Deque struct {
	o   *universal.Object
	cap int
}

// dequeMeta packs (head, length) into state segment 0.
const dequeMetaShift = 16

// MaxDequeCapacity bounds the deque size (head and length each pack into
// 16 bits of the meta segment).
const MaxDequeCapacity = 1<<15 - 1

// NewDeque creates a deque for n processes with the given capacity.
func NewDeque(procs, capacity int) (*Deque, error) {
	if capacity < 1 || capacity > MaxDequeCapacity {
		return nil, fmt.Errorf("structures: deque capacity must be in [1,%d], got %d", MaxDequeCapacity, capacity)
	}
	o, err := universal.New(universal.Config{
		Procs:   procs,
		Words:   1 + capacity,
		TagBits: 32, // 32-bit segment values
	}, make([]uint64, 1+capacity))
	if err != nil {
		return nil, err
	}
	return &Deque{o: o, cap: capacity}, nil
}

// MaxValue returns the largest storable value.
func (d *Deque) MaxValue() uint64 { return d.o.MaxSegmentValue() }

// Capacity returns the deque's fixed capacity.
func (d *Deque) Capacity() int { return d.cap }

// DequeProc is a per-process handle; one goroutine at a time.
type DequeProc struct {
	p *universal.Proc
}

// Proc returns the handle for process id.
func (d *Deque) Proc(id int) (*DequeProc, error) {
	p, err := d.o.Proc(id)
	if err != nil {
		return nil, err
	}
	return &DequeProc{p: p}, nil
}

func dequeUnpack(meta uint64) (head, length int) {
	return int(meta >> dequeMetaShift), int(meta & (1<<dequeMetaShift - 1))
}

func dequePack(head, length int) uint64 {
	return uint64(head)<<dequeMetaShift | uint64(length)
}

// slot maps a logical offset from head to a state segment index.
func (d *Deque) slot(head, off int) int {
	return 1 + (head+off)%d.cap
}

// PushBack appends v at the tail, reporting false when full.
func (d *Deque) PushBack(p *DequeProc, v uint64) bool {
	return d.push(p, v, false)
}

// PushFront prepends v at the head, reporting false when full.
func (d *Deque) PushFront(p *DequeProc, v uint64) bool {
	return d.push(p, v, true)
}

func (d *Deque) push(p *DequeProc, v uint64, front bool) bool {
	if v > d.MaxValue() {
		panic(fmt.Sprintf("structures: deque value %d exceeds 32-bit field", v))
	}
	var ok bool
	d.o.Apply(p.p, func(cur, next []uint64) {
		copy(next, cur)
		head, length := dequeUnpack(cur[0])
		ok = length < d.cap
		if !ok {
			return
		}
		if front {
			head = (head - 1 + d.cap) % d.cap
			next[d.slot(head, 0)] = v
		} else {
			next[d.slot(head, length)] = v
		}
		next[0] = dequePack(head, length+1)
	})
	return ok
}

// PopFront removes and returns the head element.
func (d *Deque) PopFront(p *DequeProc) (uint64, bool) {
	return d.pop(p, true)
}

// PopBack removes and returns the tail element.
func (d *Deque) PopBack(p *DequeProc) (uint64, bool) {
	return d.pop(p, false)
}

func (d *Deque) pop(p *DequeProc, front bool) (uint64, bool) {
	var v uint64
	var ok bool
	d.o.Apply(p.p, func(cur, next []uint64) {
		copy(next, cur)
		head, length := dequeUnpack(cur[0])
		ok = length > 0
		if !ok {
			return
		}
		if front {
			v = cur[d.slot(head, 0)]
			head = (head + 1) % d.cap
		} else {
			v = cur[d.slot(head, length-1)]
		}
		next[0] = dequePack(head, length-1)
	})
	return v, ok
}

// Len returns the length at the operation's linearization point.
func (d *Deque) Len(p *DequeProc) int {
	dst := make([]uint64, 1+d.cap)
	d.o.Read(p.p, dst)
	_, length := dequeUnpack(dst[0])
	return length
}
