package structures

import (
	"fmt"
	"sync/atomic" //llsc:allow nakedatomic(slot sequence and value cells are plain payload registers; cursor synchronization goes through core LL/SC)

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/word"
)

// Ring is a bounded lock-free MPMC ring buffer. The head and tail cursors
// are LL/SC variables; each slot carries a sequence word (plain atomic)
// in the style of bounded MPMC queues, marking whether the slot is ready
// to produce into or consume from. Unlike the linked Queue it allocates
// nothing after construction and touches exactly one slot per operation.
type Ring struct {
	slots []ringSlot
	mask  uint64
	head  core.Var // next slot to consume
	tail  core.Var // next slot to produce
	cm    *contention.Policy
}

type ringSlot struct {
	seq atomic.Uint64
	val atomic.Uint64
}

// ringLayout gives cursors 24 value bits (like the other containers).
var ringLayout = word.MustLayout(40)

// NewRing creates a ring with the given capacity, which must be a power
// of two in [2, 2^22] (cursors wrap within the 24-bit value field; the
// capacity bound keeps cursor arithmetic exact across the wrap).
func NewRing(capacity int) (*Ring, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("structures: ring capacity must be a power of two ≥ 2, got %d", capacity)
	}
	if capacity > 1<<22 {
		return nil, fmt.Errorf("structures: ring capacity %d exceeds maximum %d", capacity, 1<<22)
	}
	r := &Ring{slots: make([]ringSlot, capacity), mask: uint64(capacity) - 1}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	if err := r.head.Init(ringLayout, 0); err != nil {
		return nil, err
	}
	if err := r.tail.Init(ringLayout, 0); err != nil {
		return nil, err
	}
	return r, nil
}

// cursorMask bounds cursor values to the 24-bit field; capacity ≤ 2^22
// guarantees (cursor + capacity) never collides across the wrap.
const cursorMask = 1<<24 - 1

// Enqueue appends v; it returns ErrFull if the ring is full. Lock-free.
func (r *Ring) Enqueue(v uint64) error {
	var w contention.Waiter
	for ; ; w.Wait(r.cm, contention.Ambient, contention.Interference) {
		t, keep := r.tail.LL()
		slot := &r.slots[t&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == t:
			// Slot free: claim it by advancing the tail.
			if r.tail.SC(keep, (t+1)&cursorMask) {
				slot.val.Store(v)
				slot.seq.Store((t + 1) & cursorMask)
				return nil
			}
		case seqBehind(seq, t):
			// Slot still holds an unconsumed element: full (unless the
			// tail moved under us, in which case retry).
			if r.tail.VL(keep) {
				return ErrFull
			}
		default:
			// The tail cursor is stale; retry.
		}
	}
}

// Dequeue removes the oldest element; ok is false if the ring is empty.
// Lock-free.
func (r *Ring) Dequeue() (v uint64, ok bool) {
	var w contention.Waiter
	for ; ; w.Wait(r.cm, contention.Ambient, contention.Interference) {
		h, keep := r.head.LL()
		slot := &r.slots[h&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == (h+1)&cursorMask:
			// Slot published: claim it by advancing the head.
			val := slot.val.Load()
			if r.head.SC(keep, (h+1)&cursorMask) {
				slot.seq.Store((h + uint64(len(r.slots))) & cursorMask)
				return val, true
			}
		case seqBehind(seq, (h+1)&cursorMask):
			// Slot not yet published: empty (unless the head moved).
			if r.head.VL(keep) {
				return 0, false
			}
		default:
			// Stale head cursor; retry.
		}
	}
}

// seqBehind reports whether a precedes b in the 24-bit circular cursor
// space (distance under half the range).
func seqBehind(a, b uint64) bool {
	return (b-a)&cursorMask != 0 && (b-a)&cursorMask < 1<<23
}

// Capacity returns the ring's fixed capacity.
func (r *Ring) Capacity() int { return len(r.slots) }

// Empty reports whether the ring was empty at the underlying reads'
// linearization point.
func (r *Ring) Empty() bool {
	h := r.head.Read()
	return r.slots[h&r.mask].seq.Load() != (h+1)&cursorMask
}
