package structures

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/contention"
	"repro/internal/sim"
)

// TestSingleProcEliminationStackHotspotTrace replays the simulator's
// hotspot scenario — 90% of the load on one key, inc/dec-heavy — as an
// elimination-stack workload on GOMAXPROCS(1): each simulated processor
// becomes a goroutine, incs become pushes and decs pops, in the
// scenario's sampled per-processor order. The hotspot regime maximizes
// both central-stack interference and elimination-array traffic, so
// this pins the termination property (no retry or collision-window loop
// monopolizes the only processor) under exactly the arrival pattern the
// sweep engine scores. The stall hook widens the LL-SC window to force
// the interference that makes retries — and thus the yield path —
// actually happen.
func TestSingleProcEliminationStackHotspotTrace(t *testing.T) {
	sc, ok := sim.Builtin("hotspot")
	if !ok {
		t.Fatal("sim hotspot builtin missing")
	}
	trace, err := sim.SampleTrace(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Per-processor streams in arrival order, hot key only (key 0): the
	// contended core of the scenario, one shared stack.
	perProc := make([][]sim.ReqKind, sc.Procs)
	pushes := 0
	for _, r := range trace {
		if r.Key != 0 {
			continue
		}
		perProc[r.Proc] = append(perProc[r.Proc], r.Kind)
		if r.Kind == sim.ReqInc {
			pushes++
		}
	}
	if pushes == 0 {
		t.Fatal("hotspot trace has no inc requests on the hot key")
	}

	s, err := NewStack(pushes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableElimination(2); err != nil {
		t.Fatal(err)
	}
	s.SetContention(contention.ExponentialBackoff(4, 64))
	s.SetStallHook(runtime.Gosched)

	runSingleProc(t, "elimination-stack/sim-hotspot-trace", func() {
		var wg sync.WaitGroup
		for p := 0; p < sc.Procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i, kind := range perProc[p] {
					switch kind {
					case sim.ReqInc:
						if err := s.Push(uint64(p)<<32 | uint64(i)); err != nil {
							t.Error(err)
							return
						}
					case sim.ReqDec:
						s.Pop()
					default: // read
						s.Empty()
					}
				}
			}(p)
		}
		wg.Wait()
	})
}
