package structures

import "fmt"

// Crash recovery for the pool-backed containers, mirroring the
// figure-level Recover/CheckConservation contract in internal/core.
//
// Both Queue and Stack have a structural leak window: Enqueue/Push first
// alloc a node from the pool and only then link it into the container. A
// process killed inside that window (or between a successful Dequeue SC
// and the trailing freeNode) leaves a node that is neither reachable from
// the container nor on the free list. No live operation ever touches such
// a node again — the tags on the link words guarantee any stale SC by the
// dead process's incarnation fails — so at quiescence the node is
// provably garbage and may be swept back to the free list.
//
// Both methods MUST be called at quiescence (no operation in flight on
// the container): a node held by an in-flight Enqueue is
// indistinguishable from a leaked one, and reclaiming it would hand the
// same node to two owners. Service supervisors get quiescence by parking
// workers at operation boundaries before running a recovery epoch.

// ConservationStats describes one audit of a pool-backed container.
type ConservationStats struct {
	// Reachable is the number of nodes reachable from the container's
	// entry pointer(s), including structural dummies.
	Reachable int
	// Free is the number of nodes on the pool's free list.
	Free int
	// Leaked is Capacity - Reachable - Free: nodes owned by nobody.
	Leaked int
}

// chainLen walks a next-chain from idx, marking visited nodes, and
// returns the number of nodes visited. A walk longer than the pool could
// possibly satisfy, an out-of-range index, or a revisit of an
// already-marked node means the chain is corrupt (or the container was
// not quiescent), reported as an error.
func (p *pool) chainLen(idx uint64, marks []bool, what string) (int, error) {
	n := 0
	for idx != 0 {
		if idx >= uint64(len(p.nodes)) {
			return n, fmt.Errorf("structures: %s chain holds out-of-range node %d (capacity %d)", what, idx, p.capacity())
		}
		if marks[idx] {
			return n, fmt.Errorf("structures: node %d visited twice on the %s chain — cycle or cross-link (is the container quiescent?)", idx, what)
		}
		marks[idx] = true
		n++
		idx = p.nodes[idx].next.Read()
	}
	return n, nil
}

// audit marks every node reachable from the free list and from the
// container chain rooted at root, and reports the conservation split.
func (p *pool) audit(root uint64, what string) (ConservationStats, []bool, error) {
	marks := make([]bool, len(p.nodes))
	var st ConservationStats
	var err error
	if st.Reachable, err = p.chainLen(root, marks, what); err != nil {
		return st, nil, err
	}
	if st.Free, err = p.chainLen(p.free.Read(), marks, "free-list"); err != nil {
		return st, nil, err
	}
	st.Leaked = p.capacity() - st.Reachable - st.Free
	if st.Leaked < 0 {
		return st, nil, fmt.Errorf("structures: %s audit counted %d reachable + %d free of %d nodes — chains overlap", what, st.Reachable, st.Free, p.capacity())
	}
	return st, marks, nil
}

// sweep returns every unmarked node to the free list and reports how many
// it reclaimed.
func (p *pool) sweep(marks []bool) int {
	reclaimed := 0
	for idx := 1; idx < len(p.nodes); idx++ {
		if !marks[idx] {
			p.freeNode(uint64(idx))
			reclaimed++
		}
	}
	return reclaimed
}

// Audit counts the queue's node ownership split at quiescence.
func (q *Queue) Audit() (ConservationStats, error) {
	st, _, err := q.p.audit(q.head.Read(), "queue")
	return st, err
}

// CheckConservation verifies at quiescence that every pool node is
// accounted for: reachable from head (including the dummy) or on the free
// list. A nonzero leak means some incarnation died inside Enqueue's
// alloc-to-link window or Dequeue's unlink-to-free window.
func (q *Queue) CheckConservation() error {
	st, err := q.Audit()
	if err != nil {
		return err
	}
	if st.Leaked != 0 {
		return fmt.Errorf("structures: queue leaked %d node(s) (%d reachable, %d free, capacity %d)", st.Leaked, st.Reachable, st.Free, q.p.capacity())
	}
	return nil
}

// Recover sweeps leaked nodes back to the free list at quiescence and
// returns how many it reclaimed. After Recover, CheckConservation holds.
func (q *Queue) Recover() (reclaimed int, err error) {
	_, marks, err := q.p.audit(q.head.Read(), "queue")
	if err != nil {
		return 0, err
	}
	return q.p.sweep(marks), nil
}

// Audit counts the stack's node ownership split at quiescence.
func (s *Stack) Audit() (ConservationStats, error) {
	st, _, err := s.p.audit(s.top.Read(), "stack")
	return st, err
}

// CheckConservation verifies at quiescence that every pool node is
// either on the stack or on the free list. A nonzero leak means some
// incarnation died inside Push's alloc-to-link window or Pop's
// unlink-to-free window.
func (s *Stack) CheckConservation() error {
	st, err := s.Audit()
	if err != nil {
		return err
	}
	if st.Leaked != 0 {
		return fmt.Errorf("structures: stack leaked %d node(s) (%d reachable, %d free, capacity %d)", st.Leaked, st.Reachable, st.Free, s.p.capacity())
	}
	return nil
}

// Recover sweeps leaked nodes back to the free list at quiescence and
// returns how many it reclaimed. After Recover, CheckConservation holds.
func (s *Stack) Recover() (reclaimed int, err error) {
	_, marks, err := s.p.audit(s.top.Read(), "stack")
	if err != nil {
		return 0, err
	}
	return s.p.sweep(marks), nil
}
