package structures

import (
	"fmt"
	"sync/atomic" //llsc:allow nakedatomic(item cells and the owner-local bottom cursor are plain registers; the steal path synchronizes through core LL/SC)

	"repro/internal/core"
	"repro/internal/word"
)

// WSDeque is a bounded work-stealing deque in the Chase–Lev style: the
// owner pushes and pops at the bottom with plain atomics (no
// synchronization in the common case), while thieves steal from the top
// through an LL/SC variable. In the CAS formulation the top pointer needs
// an epoch/tag to avoid ABA between a thief's read and its CAS; with
// LL/SC the tag is built in — a stale SC simply fails — which is exactly
// the simplification the paper's primitives exist to provide.
//
// The owner must call PushBottom/PopBottom from a single goroutine;
// Steal is safe from any number of goroutines concurrently.
type WSDeque struct {
	items  []atomic.Uint64
	mask   uint64
	top    core.Var      // steal cursor, LL/SC-protected
	bottom atomic.Uint64 // owner cursor
}

// wsLayout gives the top cursor a 40-bit tag and 24-bit position.
var wsLayout = word.MustLayout(40)

// wsCursorMask bounds cursors to the 24-bit field.
const wsCursorMask = 1<<24 - 1

// NewWSDeque creates a work-stealing deque with the given capacity, a
// power of two in [2, 2^20].
func NewWSDeque(capacity int) (*WSDeque, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 || capacity > 1<<20 {
		return nil, fmt.Errorf("structures: ws-deque capacity must be a power of two in [2,%d], got %d", 1<<20, capacity)
	}
	d := &WSDeque{items: make([]atomic.Uint64, capacity), mask: uint64(capacity) - 1}
	if err := d.top.Init(wsLayout, 0); err != nil {
		return nil, err
	}
	return d, nil
}

// Capacity returns the deque's fixed capacity.
func (d *WSDeque) Capacity() int { return len(d.items) }

// wsDiff computes bottom - top as a signed count in the 24-bit circular
// cursor space (|count| is always far below half the range).
func wsDiff(top, bottom uint64) int {
	d := (bottom - top) & wsCursorMask
	if d >= 1<<23 {
		return int(d) - (1 << 24)
	}
	return int(d)
}

// PushBottom appends v at the owner's end; false when full. Owner-only.
func (d *WSDeque) PushBottom(v uint64) bool {
	b := d.bottom.Load()
	t := d.top.Read()
	if wsDiff(t, b) >= len(d.items) {
		return false // a stale top only over-estimates the size: safe
	}
	d.items[b&d.mask].Store(v)
	d.bottom.Store((b + 1) & wsCursorMask)
	return true
}

// PopBottom removes the most recently pushed element; owner-only.
//
// Order matters (the classic Chase–Lev subtlety): the owner must publish
// the decremented bottom BEFORE reading top. A thief that could race for
// the same slot must have loaded top ≥ slot, which orders its bottom read
// after our decrement, so it sees the deque as empty; conversely, when
// only one element remains the owner arbitrates through the same SC the
// thieves use, so exactly one side wins.
func (d *WSDeque) PopBottom() (uint64, bool) {
	b := (d.bottom.Load() - 1) & wsCursorMask
	d.bottom.Store(b) // claim slot b before examining top
	t, keep := d.top.LL()
	switch sz := wsDiff(t, b); {
	case sz < 0: // deque was empty; restore bottom
		d.bottom.Store(t)
		return 0, false
	case sz > 0: // at least two elements existed: slot b is private
		return d.items[b&d.mask].Load(), true
	default: // last element: race thieves via SC on top
		v := d.items[b&d.mask].Load()
		won := d.top.SC(keep, (t+1)&wsCursorMask)
		d.bottom.Store((t + 1) & wsCursorMask)
		if !won {
			return 0, false // a thief got it
		}
		return v, true
	}
}

// Steal removes the oldest element; safe from any goroutine. It returns
// ok=false when the deque is (or appears) empty, and retry=true when it
// lost a race and the caller may retry immediately.
func (d *WSDeque) Steal() (v uint64, ok bool, retry bool) {
	t, keep := d.top.LL()
	b := d.bottom.Load()
	if wsDiff(t, b) <= 0 {
		return 0, false, false
	}
	v = d.items[t&d.mask].Load()
	if d.top.SC(keep, (t+1)&wsCursorMask) {
		return v, true, false
	}
	return 0, false, true
}

// Size returns an instantaneous (racy) element count; never negative.
func (d *WSDeque) Size() int {
	if n := wsDiff(d.top.Read(), d.bottom.Load()); n > 0 {
		return n
	}
	return 0
}
