package structures

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
)

// Set is a lock-free sorted linked-list set (Harris-style) whose link
// words are LL/SC variables. A node is deleted logically by setting a
// mark bit in its link word (an SC) and unlinked physically by later
// traversals.
//
// Reclamation: deleted nodes are NOT returned to the pool. Safe recycling
// under concurrent traversals needs hazard pointers or epochs, which are
// orthogonal to the paper; like Harris's original algorithm (which assumes
// GC), this Set trades space for simplicity. Capacity therefore bounds the
// total number of Inserts over the set's lifetime.
type Set struct {
	p    *pool
	head uint64 // sentinel node index, key = -inf (never marked, never removed)
	tail uint64 // sentinel node index, key = +inf
	cm   *contention.Policy
}

// Link-word encoding: bit 23 of the 24-bit value field is the Harris mark;
// the low 23 bits are the successor index.
const (
	setMarkBit = 1 << 23
	setIdxMask = setMarkBit - 1
)

func setMarked(link uint64) bool { return link&setMarkBit != 0 }
func setIdx(link uint64) uint64  { return link & setIdxMask }
func setMark(link uint64) uint64 { return link | setMarkBit }

// NewSet creates a set supporting at most capacity Inserts over its
// lifetime (plus two internal sentinels).
func NewSet(capacity int) (*Set, error) {
	if capacity > maxNodes-2 {
		return nil, fmt.Errorf("structures: capacity %d exceeds maximum %d", capacity, maxNodes-2)
	}
	p, err := newPool(capacity + 2)
	if err != nil {
		return nil, err
	}
	s := &Set{p: p}
	s.head, err = p.alloc()
	if err != nil {
		return nil, err
	}
	s.tail, err = p.alloc()
	if err != nil {
		return nil, err
	}
	p.nodes[s.head].key = 0 // head's key is never compared
	p.nodes[s.tail].key = ^uint64(0)
	p.setNext(s.tail, 0)
	p.setNext(s.head, s.tail)
	return s, nil
}

// search locates the first unmarked node with key ≥ key, snipping marked
// nodes along the way. It returns prev (the last unmarked node with a
// smaller key), cur (the candidate), and the keep for prev's link word
// whose snapshot points (unmarked) at cur — ready for an SC that inserts
// before cur or unlinks it.
func (s *Set) search(key uint64) (prev, cur uint64, kprev core.Keep) {
	var w contention.Waiter
outer:
	for ; ; w.Wait(s.cm, contention.Ambient, contention.Interference) {
		prev = s.head
		link, kp := s.p.nodes[prev].next.LL()
		if setMarked(link) {
			continue // head is never marked; defensive
		}
		cur = setIdx(link)
		//llsc:allow retrypolicy(traversal loop: every SC failure exits via continue outer, whose post clause is the Waiter.Wait retry path)
		for {
			if cur == s.tail {
				return prev, cur, kp
			}
			curLink, kc := s.p.nodes[cur].next.LL()
			if setMarked(curLink) {
				// cur is logically deleted: snip it out of prev.
				if !s.p.nodes[prev].next.SC(kp, setIdx(curLink)) {
					continue outer // prev changed; restart
				}
				// Re-LL prev to continue traversal with a fresh keep.
				link, kp = s.p.nodes[prev].next.LL()
				if setMarked(link) || setIdx(link) != setIdx(curLink) {
					continue outer
				}
				cur = setIdx(link)
				continue
			}
			if s.p.nodes[cur].key >= key {
				return prev, cur, kp
			}
			prev, kp = cur, kc
			cur = setIdx(curLink)
		}
	}
}

// Contains reports whether key is in the set. Lock-free; read-mostly
// traversals write only to snip already-marked nodes.
func (s *Set) Contains(key uint64) bool {
	_, cur, _ := s.search(key)
	return cur != s.tail && s.p.nodes[cur].key == key
}

// Insert adds key. It returns false if the key is already present and
// ErrFull when the lifetime insert budget is exhausted. Lock-free.
func (s *Set) Insert(key uint64) (bool, error) {
	if key == ^uint64(0) {
		return false, fmt.Errorf("structures: key %d is reserved for the tail sentinel", key)
	}
	var idx uint64 // allocated lazily, reused across retries
	var w contention.Waiter
	for ; ; w.Wait(s.cm, contention.Ambient, contention.Interference) {
		prev, cur, kprev := s.search(key)
		if cur != s.tail && s.p.nodes[cur].key == key {
			if idx != 0 {
				s.p.freeNode(idx) // never published; safe to recycle
			}
			return false, nil
		}
		if idx == 0 {
			var err error
			idx, err = s.p.alloc()
			if err != nil {
				return false, err
			}
			s.p.nodes[idx].key = key
		}
		s.p.setNext(idx, cur)
		if s.p.nodes[prev].next.SC(kprev, idx) {
			return true, nil
		}
	}
}

// Delete removes key, returning whether it was present. The node is
// marked (logical deletion) and then unlinked if possible; stragglers are
// unlinked by later searches. Lock-free.
func (s *Set) Delete(key uint64) bool {
	var w contention.Waiter
	for ; ; w.Wait(s.cm, contention.Ambient, contention.Interference) {
		prev, cur, kprev := s.search(key)
		if cur == s.tail || s.p.nodes[cur].key != key {
			return false
		}
		link, kc := s.p.nodes[cur].next.LL()
		if setMarked(link) {
			continue // someone else is deleting it; re-search to confirm
		}
		if !s.p.nodes[cur].next.SC(kc, setMark(link)) {
			continue // lost a race on cur's link; retry
		}
		// Logically deleted. Attempt the physical unlink; on failure a
		// later search will snip it.
		s.p.nodes[prev].next.SC(kprev, setIdx(link))
		return true
	}
}

// Len counts the unmarked nodes — O(n), approximate under concurrency
// (exact when quiescent).
func (s *Set) Len() int {
	n := 0
	cur := setIdx(s.p.nodes[s.head].next.Read())
	for cur != s.tail && cur != 0 {
		link := s.p.nodes[cur].next.Read()
		if !setMarked(link) {
			n++
		}
		cur = setIdx(link)
	}
	return n
}
