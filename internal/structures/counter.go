package structures

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/word"
)

// counterLayout gives counters 32 data bits with a 32-bit tag.
var counterLayout = word.MustLayout(32)

// Counter is a lock-free fetch-and-op counter built on one LL/SC variable
// — the canonical one-word consumer of the paper's primitives. Values are
// 32-bit and wrap modulo 2³².
type Counter struct {
	v  core.Var
	cm *contention.Policy
}

// NewCounter creates a counter holding initial (masked to 32 bits).
func NewCounter(initial uint64) *Counter {
	c := &Counter{}
	if err := c.v.Init(counterLayout, initial&counterLayout.MaxVal()); err != nil {
		panic(err) // unreachable: the value is masked
	}
	return c
}

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Read() }

// Add atomically adds delta and returns the new value. Lock-free.
func (c *Counter) Add(delta uint64) uint64 {
	return c.FetchOp(func(v uint64) uint64 { return v + delta })
}

// Increment is Add(1).
func (c *Counter) Increment() uint64 { return c.Add(1) }

// Decrement is Add(-1) modulo 2³².
func (c *Counter) Decrement() uint64 {
	return c.FetchOp(func(v uint64) uint64 { return v - 1 })
}

// FetchOp atomically replaces the value v with f(v) (masked to 32 bits)
// and returns the new value. f may be called multiple times under
// contention and must be pure. Lock-free.
func (c *Counter) FetchOp(f func(uint64) uint64) uint64 {
	var w contention.Waiter
	for ; ; w.Wait(c.cm, contention.Ambient, contention.Interference) {
		v, keep := c.v.LL()
		next := f(v) & counterLayout.MaxVal()
		if c.v.SC(keep, next) {
			return next
		}
	}
}

// ShardedCounter is a striped/combining variant of Counter in the spirit
// of LongAdder: an uncontended add goes straight to the base variable
// (one LL/SC attempt, same cost as Counter), but the first SC failure
// diverts the delta to one of several stripe variables instead of
// re-fighting for the base — combining the contenders' updates across
// distinct words. Load folds base plus stripes.
//
// The trade: Add no longer returns the post-add total (there is no single
// word that holds it), and Load is Θ(stripes) and only guaranteed exact
// at quiescence — concurrent adds may or may not be included, each
// exactly once. Values wrap modulo 2³² like Counter.
type ShardedCounter struct {
	base    Counter
	stripes []counterStripe
	m       *obs.Metrics
	cm      *contention.Policy
}

// counterStripe pads each stripe variable onto its own cache line.
type counterStripe struct {
	v core.Var
	_ [40]byte
}

// NewShardedCounter creates a sharded counter holding initial, with the
// given number of stripes (≥ 1; a few per expected contending worker is
// plenty — contenders spread across stripes by a per-waiter PRNG).
func NewShardedCounter(initial uint64, stripes int) (*ShardedCounter, error) {
	if stripes < 1 {
		return nil, fmt.Errorf("structures: sharded counter needs at least 1 stripe, got %d", stripes)
	}
	c := &ShardedCounter{stripes: make([]counterStripe, stripes)}
	if err := c.base.v.Init(counterLayout, initial&counterLayout.MaxVal()); err != nil {
		return nil, err
	}
	for i := range c.stripes {
		if err := c.stripes[i].v.Init(counterLayout, 0); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Add atomically adds delta. Lock-free; see the type comment for why no
// total is returned.
func (c *ShardedCounter) Add(delta uint64) {
	var w contention.Waiter
	c.add(&w, delta)
}

// AddProc is Add for callers with a paper-style process identity: stripe
// spill and backoff jitter become deterministic functions of proc.
func (c *ShardedCounter) AddProc(proc int, delta uint64) {
	var w contention.Waiter
	w.Seed(c.cm, proc)
	c.add(&w, delta)
}

func (c *ShardedCounter) add(w *contention.Waiter, delta uint64) {
	v, keep := c.base.v.LL()
	if c.base.v.SC(keep, (v+delta)&counterLayout.MaxVal()) {
		return // fast path: base uncontended
	}
	// Base contended: combine into a stripe instead of retrying there.
	c.m.Inc(obs.CtrCombineBatched)
	s := &c.stripes[int(w.Rand(c.cm)%uint64(len(c.stripes)))].v
	for {
		v, keep := s.LL()
		if s.SC(keep, (v+delta)&counterLayout.MaxVal()) {
			return
		}
		w.Wait(c.cm, contention.Ambient, contention.Interference)
	}
}

// Increment is Add(1).
func (c *ShardedCounter) Increment() { c.Add(1) }

// Load returns base plus all stripes, modulo 2³². Exact at quiescence;
// under concurrency each add is counted at most once and missing adds are
// exactly the not-yet-linearized ones.
func (c *ShardedCounter) Load() uint64 {
	sum := c.base.v.Read()
	for i := range c.stripes {
		sum += c.stripes[i].v.Read()
	}
	return sum & counterLayout.MaxVal()
}

// Stripes returns the stripe count.
func (c *ShardedCounter) Stripes() int { return len(c.stripes) }
