package structures

import (
	"repro/internal/core"
	"repro/internal/word"
)

// counterLayout gives counters 32 data bits with a 32-bit tag.
var counterLayout = word.MustLayout(32)

// Counter is a lock-free fetch-and-op counter built on one LL/SC variable
// — the canonical one-word consumer of the paper's primitives. Values are
// 32-bit and wrap modulo 2³².
type Counter struct {
	v core.Var
}

// NewCounter creates a counter holding initial (masked to 32 bits).
func NewCounter(initial uint64) *Counter {
	c := &Counter{}
	if err := c.v.Init(counterLayout, initial&counterLayout.MaxVal()); err != nil {
		panic(err) // unreachable: the value is masked
	}
	return c
}

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Read() }

// Add atomically adds delta and returns the new value. Lock-free.
func (c *Counter) Add(delta uint64) uint64 {
	return c.FetchOp(func(v uint64) uint64 { return v + delta })
}

// Increment is Add(1).
func (c *Counter) Increment() uint64 { return c.Add(1) }

// Decrement is Add(-1) modulo 2³².
func (c *Counter) Decrement() uint64 {
	return c.FetchOp(func(v uint64) uint64 { return v - 1 })
}

// FetchOp atomically replaces the value v with f(v) (masked to 32 bits)
// and returns the new value. f may be called multiple times under
// contention and must be pure. Lock-free.
func (c *Counter) FetchOp(f func(uint64) uint64) uint64 {
	for {
		v, keep := c.v.LL()
		next := f(v) & counterLayout.MaxVal()
		if c.v.SC(keep, next) {
			return next
		}
	}
}
