package structures

import (
	"fmt"
	"runtime"
	"sync/atomic" //llsc:allow nakedatomic(elimination slot payloads are plain transfer registers; synchronization goes through core LL/SC)

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/obs"
)

// Elimination layer for Stack (Hendler/Shavit/Yerushalmi-style collision
// array, simplified to the asymmetric rendezvous this stack needs): a
// push and a pop that both failed an SC on the central top word pair up
// in a random slot and cancel — the pop returns the push's value, and
// neither touches the top again. LIFO stays intact because an eliminated
// pair linearizes as push immediately followed by pop at the moment the
// taker's SC succeeds; the stack's state is unchanged by the pair.
//
// Each slot's state word is a core.Var, so the rendezvous protocol gets
// the same tag-based ABA immunity the rest of the repository leans on: a
// slot can be taken, reset, and re-offered, and a stale SC from an
// earlier encounter still fails. The state machine per slot:
//
//	EMPTY --SC(pusher claims)--> PREP --owner stores val--> OFFER
//	OFFER --SC(popper)--> TAKEN --owner observes--> EMPTY
//	OFFER --SC(owner, timeout)--> EMPTY (withdrawn, a miss)
//
// Only the owner moves PREP→OFFER and TAKEN→EMPTY (plain tag-advancing
// Stores: no other process writes the word in those states), so every
// contended transition is an SC race on a tagged word.
const (
	elimEmpty = iota
	elimPrep
	elimOffer
	elimTaken
)

// elimSpinBudget is how many poll-yield rounds an offering pusher waits
// for a taker before withdrawing. Each round yields the processor, so the
// budget is a scheduling opportunity count, not a pure spin.
const elimSpinBudget = 32

type elimSlot struct {
	state core.Var
	val   atomic.Uint64
	_     [24]byte // keep slots off each other's cache lines
}

type elimArray struct {
	slots []elimSlot
	m     *obs.Metrics
	cm    *contention.Policy
}

// EnableElimination attaches a collision array with the given number of
// slots (sized around the expected number of concurrently colliding
// pairs; a handful suffices). Must be called before the stack is shared,
// and after SetMetrics/SetContention if those are used — or simply call
// those afterwards; they propagate to the array.
func (s *Stack) EnableElimination(slots int) error {
	if slots < 1 {
		return fmt.Errorf("structures: elimination needs at least 1 slot, got %d", slots)
	}
	e := &elimArray{slots: make([]elimSlot, slots), m: s.m, cm: s.cm}
	for i := range e.slots {
		// Slot state words deliberately carry no metrics sink: collision
		// traffic is reported through elim_hits/elim_misses, not ll/sc.
		if err := e.slots[i].state.Init(indexLayout, elimEmpty); err != nil {
			return err
		}
	}
	s.elim = e
	return nil
}

// EliminationEnabled reports whether the stack has a collision array.
func (s *Stack) EliminationEnabled() bool { return s.elim != nil }

// tryPush offers v in a random slot and waits briefly for a taker.
// Returns true iff a concurrent Pop consumed the offer (the push is
// complete). Called by Push after a failed SC on the central top.
func (e *elimArray) tryPush(w *contention.Waiter, v uint64) bool {
	s := &e.slots[int(w.Rand(e.cm)%uint64(len(e.slots)))]
	st, keep := s.state.LL()
	if st != elimEmpty || !s.state.SC(keep, elimPrep) {
		e.m.Inc(obs.CtrElimMiss)
		return false
	}
	// We own the slot. Publish the value, then open the offer.
	s.val.Store(v)
	s.state.Store(elimOffer)
	for i := 0; i < elimSpinBudget; i++ {
		if s.state.Read() == elimTaken {
			s.state.Store(elimEmpty)
			e.m.Inc(obs.CtrElimHit)
			return true
		}
		runtime.Gosched()
	}
	// Timed out: withdraw. A failed withdrawal means a popper's
	// OFFER→TAKEN SC won the race — the handoff happened after all.
	st2, keep2 := s.state.LL()
	if st2 == elimOffer && s.state.SC(keep2, elimEmpty) {
		e.m.Inc(obs.CtrElimMiss)
		return false
	}
	for s.state.Read() != elimTaken {
		runtime.Gosched() // taker is between its SC and nothing: state IS taken; defensive
	}
	s.state.Store(elimEmpty)
	e.m.Inc(obs.CtrElimHit)
	return true
}

// tryPop probes a random slot for an open offer and claims it. ok is true
// iff a value was taken (the pop is complete). Called by Pop after a
// failed SC on the central top.
func (e *elimArray) tryPop(w *contention.Waiter) (v uint64, ok bool) {
	s := &e.slots[int(w.Rand(e.cm)%uint64(len(e.slots)))]
	st, keep := s.state.LL()
	if st != elimOffer {
		e.m.Inc(obs.CtrElimMiss)
		return 0, false
	}
	// Read the value before claiming: if the SC below succeeds, the state
	// word — and therefore the offer this value belongs to — was
	// unchanged since the LL (the tag would have advanced otherwise).
	v = s.val.Load()
	if s.state.SC(keep, elimTaken) {
		e.m.Inc(obs.CtrElimHit)
		return v, true
	}
	e.m.Inc(obs.CtrElimMiss)
	return 0, false
}
