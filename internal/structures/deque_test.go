package structures

import (
	"container/list"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func newDeque(t *testing.T, procs, capacity int) *Deque {
	t.Helper()
	d, err := NewDeque(procs, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func dequeProc(t *testing.T, d *Deque, id int) *DequeProc {
	t.Helper()
	p, err := d.Proc(id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDequeValidation(t *testing.T) {
	if _, err := NewDeque(1, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewDeque(1, MaxDequeCapacity+1); err == nil {
		t.Error("oversized capacity accepted")
	}
	if _, err := NewDeque(0, 4); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestDequeBothEnds(t *testing.T) {
	d := newDeque(t, 1, 8)
	p := dequeProc(t, d, 0)

	if _, ok := d.PopFront(p); ok {
		t.Error("PopFront on empty succeeded")
	}
	if _, ok := d.PopBack(p); ok {
		t.Error("PopBack on empty succeeded")
	}
	// Build 1,2,3 via mixed pushes: PushBack(2), PushBack(3), PushFront(1).
	if !d.PushBack(p, 2) || !d.PushBack(p, 3) || !d.PushFront(p, 1) {
		t.Fatal("pushes failed")
	}
	if got := d.Len(p); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	if v, ok := d.PopFront(p); !ok || v != 1 {
		t.Fatalf("PopFront = (%d,%v), want (1,true)", v, ok)
	}
	if v, ok := d.PopBack(p); !ok || v != 3 {
		t.Fatalf("PopBack = (%d,%v), want (3,true)", v, ok)
	}
	if v, ok := d.PopFront(p); !ok || v != 2 {
		t.Fatalf("PopFront = (%d,%v), want (2,true)", v, ok)
	}
	if d.Len(p) != 0 {
		t.Error("deque not empty at end")
	}
}

func TestDequeFull(t *testing.T) {
	d := newDeque(t, 1, 2)
	p := dequeProc(t, d, 0)
	if !d.PushBack(p, 1) || !d.PushFront(p, 2) {
		t.Fatal("pushes failed")
	}
	if d.PushBack(p, 3) {
		t.Error("PushBack on full succeeded")
	}
	if d.PushFront(p, 3) {
		t.Error("PushFront on full succeeded")
	}
	if d.Capacity() != 2 {
		t.Errorf("Capacity = %d", d.Capacity())
	}
}

func TestDequeWrapsAroundRing(t *testing.T) {
	d := newDeque(t, 1, 3)
	p := dequeProc(t, d, 0)
	// Rotate through the ring many times from both ends.
	for i := uint64(0); i < 100; i++ {
		if !d.PushBack(p, i) {
			t.Fatalf("PushBack(%d) failed", i)
		}
		if v, ok := d.PopFront(p); !ok || v != i {
			t.Fatalf("PopFront = (%d,%v), want (%d,true)", v, ok, i)
		}
		if !d.PushFront(p, i) {
			t.Fatalf("PushFront(%d) failed", i)
		}
		if v, ok := d.PopBack(p); !ok || v != i {
			t.Fatalf("PopBack = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestDequeAgainstListOracle(t *testing.T) {
	d := newDeque(t, 1, 16)
	p := dequeProc(t, d, 0)
	oracle := list.New()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1000))
		switch rng.Intn(4) {
		case 0:
			got := d.PushFront(p, v)
			want := oracle.Len() < 16
			if got != want {
				t.Fatalf("op %d PushFront: %v vs oracle %v", i, got, want)
			}
			if want {
				oracle.PushFront(v)
			}
		case 1:
			got := d.PushBack(p, v)
			want := oracle.Len() < 16
			if got != want {
				t.Fatalf("op %d PushBack: %v vs oracle %v", i, got, want)
			}
			if want {
				oracle.PushBack(v)
			}
		case 2:
			gv, gok := d.PopFront(p)
			if e := oracle.Front(); e != nil {
				oracle.Remove(e)
				if !gok || gv != e.Value.(uint64) {
					t.Fatalf("op %d PopFront: (%d,%v) vs oracle %d", i, gv, gok, e.Value)
				}
			} else if gok {
				t.Fatalf("op %d PopFront succeeded on empty", i)
			}
		default:
			gv, gok := d.PopBack(p)
			if e := oracle.Back(); e != nil {
				oracle.Remove(e)
				if !gok || gv != e.Value.(uint64) {
					t.Fatalf("op %d PopBack: (%d,%v) vs oracle %d", i, gv, gok, e.Value)
				}
			} else if gok {
				t.Fatalf("op %d PopBack succeeded on empty", i)
			}
		}
		if d.Len(p) != oracle.Len() {
			t.Fatalf("op %d Len: %d vs oracle %d", i, d.Len(p), oracle.Len())
		}
	}
}

func TestDequeConcurrentConservation(t *testing.T) {
	// Producers push tokens at random ends; consumers pop from random
	// ends. Every token must come out exactly once.
	const producers = 2
	const consumers = 2
	const perProducer = 1500
	d := newDeque(t, producers+consumers, 32)
	var prodWG, consWG sync.WaitGroup
	seen := make([]map[uint64]bool, consumers)

	for c := 0; c < consumers; c++ {
		seen[c] = make(map[uint64]bool)
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			p, err := d.Proc(producers + c)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(c) + 500))
			need := producers * perProducer / consumers
			for len(seen[c]) < need {
				var v uint64
				var ok bool
				if rng.Intn(2) == 0 {
					v, ok = d.PopFront(p)
				} else {
					v, ok = d.PopBack(p)
				}
				if ok {
					if seen[c][v] {
						t.Errorf("token %d popped twice by consumer %d", v, c)
						return
					}
					seen[c][v] = true
				} else {
					runtime.Gosched()
				}
			}
		}(c)
	}
	for pr := 0; pr < producers; pr++ {
		prodWG.Add(1)
		go func(pr int) {
			defer prodWG.Done()
			p, err := d.Proc(pr)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(pr)))
			for i := 0; i < perProducer; i++ {
				token := uint64(pr*perProducer + i + 1)
				for {
					var ok bool
					if rng.Intn(2) == 0 {
						ok = d.PushFront(p, token)
					} else {
						ok = d.PushBack(p, token)
					}
					if ok {
						break
					}
					runtime.Gosched()
				}
			}
		}(pr)
	}
	prodWG.Wait()
	consWG.Wait()

	union := make(map[uint64]bool)
	for _, lane := range seen {
		for v := range lane {
			if union[v] {
				t.Fatalf("token %d popped by two consumers", v)
			}
			union[v] = true
		}
	}
	if len(union) != producers*perProducer {
		t.Fatalf("popped %d distinct tokens, want %d", len(union), producers*perProducer)
	}
}
