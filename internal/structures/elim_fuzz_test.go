package structures

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/contention"
	"repro/internal/obs"
)

// forceCollision drives the collision array white-box until one push/pop
// pair eliminates, guaranteeing elim_hits > 0 deterministically — the
// scheduler alone cannot be trusted to produce a collision in a short
// fuzz run, especially on one processor.
func forceCollision(t *testing.T, s *Stack, m *obs.Metrics) {
	t.Helper()
	var pushed sync.WaitGroup
	pushed.Add(1)
	go func() {
		defer pushed.Done()
		var w contention.Waiter
		for !s.elim.tryPush(&w, 42) {
			runtime.Gosched()
		}
	}()
	var w contention.Waiter
	for {
		if v, ok := s.elim.tryPop(&w); ok {
			if v != 42 {
				t.Errorf("eliminated value %d, want 42", v)
			}
			break
		}
		runtime.Gosched()
	}
	pushed.Wait()
	if hits := m.Snapshot().Get(obs.CtrElimHit); hits == 0 {
		t.Error("forced collision recorded no elim_hits")
	}
}

// FuzzStackElimination checks the elimination-enabled stack two ways per
// input. First the fuzz bytes run as a sequential script against both the
// real stack and the in-memory model from linearizability_test.go, so any
// ordering or value bug surfaces with a minimal reproducer. Then the same
// bytes drive concurrent workers (with a stall hook widening the LL-SC
// window so the elimination path actually runs) and the test checks
// element conservation: every distinct pushed value is popped or still on
// the stack, exactly once. A guaranteed white-box collision asserts
// elim_hits > 0 on every run.
func FuzzStackElimination(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 1, 1})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{1, 1, 0, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 256 {
			script = script[:256]
		}

		// Part 1: sequential conformance against the model. Capacity
		// covers part 2's worst case: every concurrent worker pushing the
		// whole script.
		const workers = 3
		s, err := NewStack(workers*len(script) + 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnableElimination(2); err != nil {
			t.Fatal(err)
		}
		m := obs.New()
		s.SetMetrics(m)
		s.SetContention(contention.ExponentialBackoff(2, 16))
		state := ""
		for i, b := range script {
			if b%2 == 0 {
				v := uint64(i + 1)
				if err := s.Push(v); err != nil {
					t.Fatal(err)
				}
				state, _ = stackStep(state, linOp{name: "push", arg1: v})
			} else {
				got, ok := s.Pop()
				next, legal := stackStep(state, linOp{name: "pop", retVal: got, retBool: ok})
				if !legal {
					t.Fatalf("op %d: pop=(%d,%v) illegal from model state %q", i, got, ok, state)
				}
				state = next
			}
		}

		// Part 2: guaranteed collision, then concurrent conservation.
		forceCollision(t, s, m)
		for { // reset to empty
			if _, ok := s.Pop(); !ok {
				break
			}
		}
		s.SetStallHook(runtime.Gosched)
		var (
			wg     sync.WaitGroup
			popped [workers]map[uint64]int
		)
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				popped[g] = make(map[uint64]int)
				for i, b := range script {
					if (int(b)+g)%2 == 0 {
						if err := s.Push(uint64(g)<<32 | uint64(i+1)); err != nil {
							t.Error(err)
							return
						}
					} else if v, ok := s.Pop(); ok {
						popped[g][v]++
					}
				}
			}(g)
		}
		wg.Wait()
		seen := make(map[uint64]int)
		for g := range popped {
			for v, n := range popped[g] {
				seen[v] += n
			}
		}
		for {
			v, ok := s.Pop()
			if !ok {
				break
			}
			seen[v]++
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("value %#x surfaced %d times, want exactly 1", v, n)
			}
			g, i := v>>32, v&0xffffffff
			if g >= workers || i == 0 || int(i) > len(script) {
				t.Fatalf("value %#x was never pushed", v)
			}
		}
		if hits := m.Snapshot().Get(obs.CtrElimHit); hits == 0 {
			t.Error("elim_hits = 0 after forced collision")
		}
	})
}

// TestShardedCounterSum is the combining-counter race test: concurrent
// workers apply private deltas through the striped fast path (stall hook
// on the base forces diversion), and at quiescence Load must equal the
// sum of every worker's deltas mod 2³². Run under -race this also proves
// the stripe spill publishes without data races.
func TestShardedCounterSum(t *testing.T) {
	const workers, ops = 8, 2000
	c, err := NewShardedCounter(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New()
	c.SetMetrics(m)
	c.SetContention(contention.Adaptive(2, 64))
	c.SetStallHook(runtime.Gosched)
	var (
		wg     sync.WaitGroup
		totals [workers]uint64
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var sum uint64
			for i := 0; i < ops; i++ {
				d := uint64(g*ops+i)%97 + 1
				c.AddProc(g, d)
				sum += d
			}
			totals[g] = sum
		}(g)
	}
	wg.Wait()
	want := uint64(7)
	for _, s := range totals {
		want += s
	}
	want &= 1<<32 - 1
	if got := c.Load(); got != want {
		t.Fatalf("Load() = %d, want sum of deltas %d", got, want)
	}
	t.Logf("combine_batched = %d", m.Snapshot().Get(obs.CtrCombineBatched))
}
