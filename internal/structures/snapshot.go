package structures

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
)

// Snapshot produces atomic snapshots of a fixed set of LL/SC variables —
// the canonical application of the VL instruction, and the reason the
// paper insists implementations provide it: a collect validated by VL
// costs no writes, whereas CAS-only snapshots must modify every variable
// or maintain version records.
//
// Collect LLs every variable and then VLs every variable; if all
// validations pass, variable i was unchanged from its LL through its VL,
// and since every LL precedes every VL, all variables simultaneously held
// the collected values at the moment of the last LL — a linearizable
// snapshot. A failed VL implies a successful SC by someone, so retrying
// is lock-free.
type Snapshot struct {
	vars []*core.Var
	cm   *contention.Policy
}

// NewSnapshot builds a snapshotter over the given variables (at least
// one; the slice is not copied and must not be mutated).
func NewSnapshot(vars []*core.Var) (*Snapshot, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("structures: snapshot needs at least one variable")
	}
	for i, v := range vars {
		if v == nil {
			return nil, fmt.Errorf("structures: snapshot variable %d is nil", i)
		}
	}
	return &Snapshot{vars: vars}, nil
}

// Size returns the number of variables in the set.
func (s *Snapshot) Size() int { return len(s.vars) }

// Collect fills dst (length Size) with an atomic snapshot. Lock-free.
func (s *Snapshot) Collect(dst []uint64) {
	if len(dst) != len(s.vars) {
		panic(fmt.Sprintf("structures: Collect destination has %d words, want %d", len(dst), len(s.vars)))
	}
	keeps := make([]core.Keep, len(s.vars))
	s.collect(dst, keeps)
}

// CollectWith is Collect with a caller-provided keep buffer, for
// allocation-free steady state.
func (s *Snapshot) CollectWith(dst []uint64, keeps []core.Keep) {
	if len(dst) != len(s.vars) || len(keeps) != len(s.vars) {
		panic(fmt.Sprintf("structures: CollectWith buffers have %d/%d words, want %d", len(dst), len(keeps), len(s.vars)))
	}
	s.collect(dst, keeps)
}

func (s *Snapshot) collect(dst []uint64, keeps []core.Keep) {
	var w contention.Waiter
retry:
	for ; ; w.Wait(s.cm, contention.Ambient, contention.Interference) {
		for i, v := range s.vars {
			dst[i], keeps[i] = v.LL()
		}
		for i, v := range s.vars {
			if !v.VL(keeps[i]) {
				continue retry
			}
		}
		return
	}
}
