package structures

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// This file extends the linearizability conformance coverage of
// linearizability_test.go to the structures it left out: Stack, Queue,
// Deque, Ring, and Snapshot. Each gets the same two techniques —
// exhaustive serialized orders under sched.ExploreExhaustive, and
// concurrent windowed rounds — with the windowed rounds additionally run
// under an adversity matrix mirroring the PR-2 fault plans. Those plans
// (internal/fault) drive the simulated machine; these structures run on
// real CAS hardware where spurious failures cannot be injected, so each
// plan is realized by its hardware analogue:
//
//   - none:  free-running goroutines, the baseline.
//   - burst: a scheduling storm. Where the structure exposes a stall
//     hook, runtime.Gosched runs inside the central LL-SC window (the
//     E6b technique), guaranteeing interference even on one processor;
//     otherwise the drivers yield between operations.
//   - crash: process 0 stops after one operation each round — the
//     fault.Crash analogue. Lock-freedom means the survivors' histories
//     must still linearize with no help from the stopped process.
type linPlan struct {
	name  string
	burst bool
	crash bool
}

var linPlans = []linPlan{{name: "none"}, {name: "burst", burst: true}, {name: "crash", crash: true}}

// planOps returns how many ops proc p performs in one round under the
// plan, and planYield yields between ops for burst plans without a stall
// hook.
func (pl linPlan) ops(p, normal int) int {
	if pl.crash && p == 0 {
		return 1
	}
	return normal
}

func (pl linPlan) yield() {
	if pl.burst {
		runtime.Gosched()
	}
}

// seqList is a tiny helper for list-shaped abstract states: "" is empty,
// elements are comma-separated decimals.
func listPush(state string, v uint64, front bool) string {
	el := fmt.Sprintf("%d", v)
	if state == "" {
		return el
	}
	if front {
		return el + "," + state
	}
	return state + "," + el
}

func listPop(state string, front bool) (string, uint64, bool) {
	if state == "" {
		return state, 0, false
	}
	parts := strings.Split(state, ",")
	var el string
	if front {
		el, parts = parts[0], parts[1:]
	} else {
		el, parts = parts[len(parts)-1], parts[:len(parts)-1]
	}
	var v uint64
	fmt.Sscanf(el, "%d", &v)
	return strings.Join(parts, ","), v, true
}

func listLen(state string) int {
	if state == "" {
		return 0
	}
	return strings.Count(state, ",") + 1
}

// --- Stack ---

// Stack abstract state: contents top-first.
func stackStep(state string, op linOp) (string, bool) {
	switch op.name {
	case "push":
		return listPush(state, op.arg1, true), true
	case "pop":
		next, v, ok := listPop(state, true)
		if op.retBool != ok {
			return state, false
		}
		if !ok {
			return state, true
		}
		return next, op.retVal == v
	default:
		return state, false
	}
}

func TestStackExhaustiveConformance(t *testing.T) {
	res, err := sched.ExploreExhaustive(2, 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		s, err := NewStack(8)
		if err != nil {
			t.Fatal(err)
		}
		var log []linOp
		workload := func(p int) {
			v := uint64(p + 1)
			ctrl.Step(p)
			if err := s.Push(v); err != nil {
				panic(err)
			}
			log = append(log, linOp{proc: p, name: "push", arg1: v})
			ctrl.Step(p)
			got, ok := s.Pop()
			log = append(log, linOp{proc: p, name: "pop", retVal: got, retBool: ok})
		}
		check := func() error {
			state := ""
			for _, op := range log {
				next, ok := stackStep(state, op)
				if !ok {
					return fmt.Errorf("%v: illegal from state %q", op, state)
				}
				state = next
			}
			if state != "" {
				return fmt.Errorf("final state %q, want empty", state)
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
}

func TestStackLinearizableWindows(t *testing.T) {
	for _, plan := range linPlans {
		t.Run(plan.name, func(t *testing.T) {
			s, err := NewStack(64)
			if err != nil {
				t.Fatal(err)
			}
			if plan.burst {
				s.SetStallHook(runtime.Gosched) // interference inside the LL-SC window
			}
			rec := &linRecorder{}
			driver := func(p int, rng *rand.Rand) {
				for i := 0; i < plan.ops(p, 4); i++ {
					if rng.Intn(2) == 0 {
						v := uint64(rng.Intn(90) + 10)
						rec.do(p, "push", v, 0, func() (uint64, bool) {
							if err := s.Push(v); err != nil {
								panic(err)
							}
							return 0, false
						})
					} else {
						rec.do(p, "pop", 0, 0, func() (uint64, bool) { return s.Pop() })
					}
					plan.yield()
				}
			}
			runLinRounds(t, 3, 20, rec,
				func() string {
					for { // drain: each round starts from the empty stack
						if _, ok := s.Pop(); !ok {
							return ""
						}
					}
				},
				driver, stackStep)
		})
	}
}

// --- Queue ---

// Queue abstract state: contents front-first.
func queueStep(state string, op linOp) (string, bool) {
	switch op.name {
	case "enq":
		return listPush(state, op.arg1, false), true
	case "deq":
		next, v, ok := listPop(state, true)
		if op.retBool != ok {
			return state, false
		}
		if !ok {
			return state, true
		}
		return next, op.retVal == v
	default:
		return state, false
	}
}

func TestQueueExhaustiveConformance(t *testing.T) {
	res, err := sched.ExploreExhaustive(2, 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		q, err := NewQueue(8)
		if err != nil {
			t.Fatal(err)
		}
		var log []linOp
		workload := func(p int) {
			if p == 0 {
				for _, v := range []uint64{1, 2} {
					ctrl.Step(p)
					if err := q.Enqueue(v); err != nil {
						panic(err)
					}
					log = append(log, linOp{proc: p, name: "enq", arg1: v})
				}
			} else {
				for i := 0; i < 2; i++ {
					ctrl.Step(p)
					got, ok := q.Dequeue()
					log = append(log, linOp{proc: p, name: "deq", retVal: got, retBool: ok})
				}
			}
		}
		check := func() error {
			state := ""
			for _, op := range log {
				next, ok := queueStep(state, op)
				if !ok {
					return fmt.Errorf("%v: illegal from state %q", op, state)
				}
				state = next
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
}

func TestQueueLinearizableWindows(t *testing.T) {
	for _, plan := range linPlans {
		t.Run(plan.name, func(t *testing.T) {
			q, err := NewQueue(64)
			if err != nil {
				t.Fatal(err)
			}
			rec := &linRecorder{}
			driver := func(p int, rng *rand.Rand) {
				for i := 0; i < plan.ops(p, 4); i++ {
					if rng.Intn(2) == 0 {
						v := uint64(rng.Intn(90) + 10)
						rec.do(p, "enq", v, 0, func() (uint64, bool) {
							if err := q.Enqueue(v); err != nil {
								panic(err)
							}
							return 0, false
						})
					} else {
						rec.do(p, "deq", 0, 0, func() (uint64, bool) { return q.Dequeue() })
					}
					plan.yield()
				}
			}
			runLinRounds(t, 3, 20, rec,
				func() string {
					for {
						if _, ok := q.Dequeue(); !ok {
							return ""
						}
					}
				},
				driver, queueStep)
		})
	}
}

// --- Ring ---

// Ring abstract state: contents front-first; capacity bounds enqueues.
func ringStep(cap int) func(string, linOp) (string, bool) {
	return func(state string, op linOp) (string, bool) {
		switch op.name {
		case "enq":
			if !op.retBool { // ErrFull: legal only at capacity
				return state, listLen(state) == cap
			}
			if listLen(state) == cap {
				return state, false
			}
			return listPush(state, op.arg1, false), true
		case "deq":
			next, v, ok := listPop(state, true)
			if op.retBool != ok {
				return state, false
			}
			if !ok {
				return state, true
			}
			return next, op.retVal == v
		default:
			return state, false
		}
	}
}

func TestRingExhaustiveConformance(t *testing.T) {
	// Capacity 2 with three enqueues in flight, so some schedules must
	// legally observe ErrFull.
	step := ringStep(2)
	res, err := sched.ExploreExhaustive(2, 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		r, err := NewRing(2)
		if err != nil {
			t.Fatal(err)
		}
		var log []linOp
		workload := func(p int) {
			if p == 0 {
				for _, v := range []uint64{1, 2} {
					ctrl.Step(p)
					err := r.Enqueue(v)
					log = append(log, linOp{proc: p, name: "enq", arg1: v, retBool: err == nil})
				}
			} else {
				ctrl.Step(p)
				err := r.Enqueue(9)
				log = append(log, linOp{proc: p, name: "enq", arg1: 9, retBool: err == nil})
				ctrl.Step(p)
				got, ok := r.Dequeue()
				log = append(log, linOp{proc: p, name: "deq", retVal: got, retBool: ok})
			}
		}
		check := func() error {
			state := ""
			for _, op := range log {
				next, ok := step(state, op)
				if !ok {
					return fmt.Errorf("%v: illegal from state %q", op, state)
				}
				state = next
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
}

func TestRingLinearizableWindows(t *testing.T) {
	for _, plan := range linPlans {
		t.Run(plan.name, func(t *testing.T) {
			r, err := NewRing(4) // small: ErrFull paths get exercised
			if err != nil {
				t.Fatal(err)
			}
			rec := &linRecorder{}
			driver := func(p int, rng *rand.Rand) {
				for i := 0; i < plan.ops(p, 4); i++ {
					if rng.Intn(2) == 0 {
						v := uint64(rng.Intn(90) + 10)
						rec.do(p, "enq", v, 0, func() (uint64, bool) {
							return 0, r.Enqueue(v) == nil
						})
					} else {
						rec.do(p, "deq", 0, 0, func() (uint64, bool) { return r.Dequeue() })
					}
					plan.yield()
				}
			}
			runLinRounds(t, 3, 20, rec,
				func() string {
					for {
						if _, ok := r.Dequeue(); !ok {
							return ""
						}
					}
				},
				driver, ringStep(4))
		})
	}
}

// --- Deque ---

// Deque abstract state: contents front-first; capacity bounds pushes.
func dequeStep(cap int) func(string, linOp) (string, bool) {
	return func(state string, op linOp) (string, bool) {
		push := func(front bool) (string, bool) {
			if !op.retBool {
				return state, listLen(state) == cap
			}
			if listLen(state) == cap {
				return state, false
			}
			return listPush(state, op.arg1, front), true
		}
		pop := func(front bool) (string, bool) {
			next, v, ok := listPop(state, front)
			if op.retBool != ok {
				return state, false
			}
			if !ok {
				return state, true
			}
			return next, op.retVal == v
		}
		switch op.name {
		case "pushf":
			return push(true)
		case "pushb":
			return push(false)
		case "popf":
			return pop(true)
		case "popb":
			return pop(false)
		default:
			return state, false
		}
	}
}

func TestDequeExhaustiveConformance(t *testing.T) {
	step := dequeStep(4)
	res, err := sched.ExploreExhaustive(2, 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		d, err := NewDeque(2, 4)
		if err != nil {
			t.Fatal(err)
		}
		var log []linOp
		workload := func(p int) {
			h, err := d.Proc(p)
			if err != nil {
				panic(err)
			}
			if p == 0 {
				ctrl.Step(p)
				log = append(log, linOp{proc: p, name: "pushb", arg1: 1, retBool: d.PushBack(h, 1)})
				ctrl.Step(p)
				got, ok := d.PopFront(h)
				log = append(log, linOp{proc: p, name: "popf", retVal: got, retBool: ok})
			} else {
				ctrl.Step(p)
				log = append(log, linOp{proc: p, name: "pushf", arg1: 2, retBool: d.PushFront(h, 2)})
				ctrl.Step(p)
				got, ok := d.PopBack(h)
				log = append(log, linOp{proc: p, name: "popb", retVal: got, retBool: ok})
			}
		}
		check := func() error {
			state := ""
			for _, op := range log {
				next, ok := step(state, op)
				if !ok {
					return fmt.Errorf("%v: illegal from state %q", op, state)
				}
				state = next
			}
			if state != "" {
				return fmt.Errorf("final state %q, want empty", state)
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
}

func TestDequeLinearizableWindows(t *testing.T) {
	const procs = 3
	for _, plan := range linPlans {
		t.Run(plan.name, func(t *testing.T) {
			d, err := NewDeque(procs, 4)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]*DequeProc, procs)
			for p := range handles {
				if handles[p], err = d.Proc(p); err != nil {
					t.Fatal(err)
				}
			}
			rec := &linRecorder{}
			driver := func(p int, rng *rand.Rand) {
				h := handles[p]
				for i := 0; i < plan.ops(p, 4); i++ {
					v := uint64(rng.Intn(90) + 10)
					switch rng.Intn(4) {
					case 0:
						rec.do(p, "pushf", v, 0, func() (uint64, bool) { return 0, d.PushFront(h, v) })
					case 1:
						rec.do(p, "pushb", v, 0, func() (uint64, bool) { return 0, d.PushBack(h, v) })
					case 2:
						rec.do(p, "popf", 0, 0, func() (uint64, bool) { return d.PopFront(h) })
					default:
						rec.do(p, "popb", 0, 0, func() (uint64, bool) { return d.PopBack(h) })
					}
					plan.yield()
				}
			}
			runLinRounds(t, procs, 20, rec,
				func() string {
					for {
						if _, ok := d.PopFront(handles[0]); !ok {
							return ""
						}
					}
				},
				driver, dequeStep(4))
		})
	}
}

// --- Snapshot ---

// Snapshot abstract state: "v0,v1". A collect must return a pair that the
// variables simultaneously held; writers update one variable at a time.
func snapshotStep(state string, op linOp) (string, bool) {
	var v0, v1 uint64
	fmt.Sscanf(state, "%d,%d", &v0, &v1)
	switch op.name {
	case "store0":
		return fmt.Sprintf("%d,%d", op.arg1, v1), true
	case "store1":
		return fmt.Sprintf("%d,%d", v0, op.arg1), true
	case "collect":
		return state, op.retVal == v0|v1<<8
	default:
		return state, false
	}
}

func TestSnapshotExhaustiveConformance(t *testing.T) {
	res, err := sched.ExploreExhaustive(2, 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		vars := []*core.Var{core.MustNewVar(indexLayout, 0), core.MustNewVar(indexLayout, 0)}
		snap, err := NewSnapshot(vars)
		if err != nil {
			t.Fatal(err)
		}
		var log []linOp
		workload := func(p int) {
			if p == 0 {
				for _, v := range []uint64{1, 2} {
					ctrl.Step(p)
					vars[0].Store(v)
					log = append(log, linOp{proc: p, name: "store0", arg1: v})
				}
			} else {
				ctrl.Step(p)
				vars[1].Store(7)
				log = append(log, linOp{proc: p, name: "store1", arg1: 7})
				ctrl.Step(p)
				dst := make([]uint64, 2)
				snap.Collect(dst)
				log = append(log, linOp{proc: p, name: "collect", retVal: dst[0] | dst[1]<<8})
			}
		}
		check := func() error {
			state := "0,0"
			for _, op := range log {
				next, ok := snapshotStep(state, op)
				if !ok {
					return fmt.Errorf("%v: illegal from state %q", op, state)
				}
				state = next
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
}

func TestSnapshotLinearizableWindows(t *testing.T) {
	for _, plan := range linPlans {
		t.Run(plan.name, func(t *testing.T) {
			vars := []*core.Var{core.MustNewVar(indexLayout, 0), core.MustNewVar(indexLayout, 0)}
			if plan.burst {
				// Interference inside the collect's LL...VL window.
				vars[0].SetStallHook(runtime.Gosched)
			}
			snap, err := NewSnapshot(vars)
			if err != nil {
				t.Fatal(err)
			}
			rec := &linRecorder{}
			driver := func(p int, rng *rand.Rand) {
				for i := 0; i < plan.ops(p, 4); i++ {
					which := rng.Intn(2)
					if rng.Intn(2) == 0 {
						v := uint64(rng.Intn(200) + 1)
						rec.do(p, fmt.Sprintf("store%d", which), v, 0, func() (uint64, bool) {
							vars[which].Store(v)
							return 0, false
						})
					} else {
						rec.do(p, "collect", 0, 0, func() (uint64, bool) {
							dst := make([]uint64, 2)
							snap.Collect(dst)
							return dst[0] | dst[1]<<8, false
						})
					}
					plan.yield()
				}
			}
			runLinRounds(t, 3, 20, rec,
				func() string { return fmt.Sprintf("%d,%d", vars[0].Read(), vars[1].Read()) },
				driver, snapshotStep)
		})
	}
}
