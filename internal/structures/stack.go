package structures

import (
	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/obs"
)

// Stack is a bounded lock-free LIFO (a Treiber stack) whose top pointer is
// an LL/SC variable. Because SC is immune to ABA, popped nodes are
// recycled immediately with no version counters or hazard pointers — the
// simplification the paper's primitives buy over raw CAS.
type Stack struct {
	p    *pool
	top  core.Var
	cm   *contention.Policy
	m    *obs.Metrics
	elim *elimArray // optional, EnableElimination
}

// NewStack creates a stack holding at most capacity elements.
func NewStack(capacity int) (*Stack, error) {
	p, err := newPool(capacity)
	if err != nil {
		return nil, err
	}
	s := &Stack{p: p}
	if err := s.top.Init(indexLayout, 0); err != nil {
		return nil, err
	}
	return s, nil
}

// Push adds v to the top of the stack. It returns ErrFull when the pool is
// exhausted. Lock-free.
func (s *Stack) Push(v uint64) error {
	idx, err := s.p.alloc()
	if err != nil {
		return err
	}
	s.p.nodes[idx].val.Store(v)
	var w contention.Waiter
	for {
		top, keep := s.top.LL()
		s.p.setNext(idx, top)
		if s.top.SC(keep, idx) {
			return nil
		}
		// The central top is contended: before backing off, try to hand
		// the value straight to a concurrent Pop via the elimination
		// array (a hit completes both operations off the hot word).
		if s.elim != nil && s.elim.tryPush(&w, v) {
			s.p.freeNode(idx) // value handed over; node never published
			return nil
		}
		w.Wait(s.cm, contention.Ambient, contention.Interference)
	}
}

// Pop removes and returns the top element; ok is false if the stack is
// empty. Lock-free.
func (s *Stack) Pop() (v uint64, ok bool) {
	var w contention.Waiter
	for {
		top, keep := s.top.LL()
		if top == 0 {
			return 0, false
		}
		next := s.p.nodes[top].next.Read()
		if s.top.SC(keep, next) {
			v := s.p.nodes[top].val.Load()
			s.p.freeNode(top)
			return v, true
		}
		// Contended: try to catch an in-flight Push in the elimination
		// array instead of fighting for the top word.
		if s.elim != nil {
			if v, ok := s.elim.tryPop(&w); ok {
				return v, true
			}
		}
		w.Wait(s.cm, contention.Ambient, contention.Interference)
	}
}

// Empty reports whether the stack was empty at the linearization point of
// the underlying read.
func (s *Stack) Empty() bool {
	return s.top.Read() == 0
}

// Capacity returns the stack's fixed capacity.
func (s *Stack) Capacity() int { return s.p.capacity() }
