package structures

import "repro/internal/obs"

// This file wires the optional metrics sink (internal/obs) through every
// container to its underlying LL/SC variables. The pattern is uniform:
// SetMetrics(nil) disables (the default), and the sink must be attached
// before the container is shared between goroutines, mirroring
// core.Var.SetMetrics. Attaching one sink to a whole container makes the
// aggregate LL/SC traffic of its operations visible — e.g. a Stack push
// contributes one ll+sc pair per attempt, so sc_fail_interference/sc is
// the stack's contention rate.

// setMetrics attaches m to the pool's free-list head and every node link.
func (p *pool) setMetrics(m *obs.Metrics) {
	p.free.SetMetrics(m)
	for i := range p.nodes {
		p.nodes[i].next.SetMetrics(m)
	}
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// stack's top pointer, node pool, and — when elimination is enabled — the
// collision array's elim_hits/elim_misses counters.
func (s *Stack) SetMetrics(m *obs.Metrics) {
	s.m = m
	s.top.SetMetrics(m)
	s.p.setMetrics(m)
	if s.elim != nil {
		s.elim.m = m
	}
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// queue's head, tail, and node pool.
func (q *Queue) SetMetrics(m *obs.Metrics) {
	q.head.SetMetrics(m)
	q.tail.SetMetrics(m)
	q.p.setMetrics(m)
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// counter's variable.
func (c *Counter) SetMetrics(m *obs.Metrics) { c.v.SetMetrics(m) }

// SetMetrics attaches an optional metrics sink (nil disables) to the
// sharded counter's base and stripe variables; diverted adds are counted
// under combine_batched.
func (c *ShardedCounter) SetMetrics(m *obs.Metrics) {
	c.m = m
	c.base.SetMetrics(m)
	for i := range c.stripes {
		c.stripes[i].v.SetMetrics(m)
	}
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// ring's head and tail cursors.
func (r *Ring) SetMetrics(m *obs.Metrics) {
	r.head.SetMetrics(m)
	r.tail.SetMetrics(m)
}

// SetMetrics attaches an optional metrics sink (nil disables) to every
// bucket key word.
func (m *Map) SetMetrics(mx *obs.Metrics) {
	for i := range m.keys {
		m.keys[i].SetMetrics(mx)
	}
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// set's node pool (which owns all link words, including the sentinels').
func (s *Set) SetMetrics(m *obs.Metrics) { s.p.setMetrics(m) }

// SetMetrics attaches an optional metrics sink (nil disables) to the
// deque's underlying universal-construction object.
func (d *Deque) SetMetrics(m *obs.Metrics) { d.o.SetMetrics(m) }

// SetMetrics attaches an optional metrics sink (nil disables) to the
// work-stealing deque's top (steal) cursor — the only LL/SC word; owner
// operations on bottom are plain atomics and are deliberately uncounted.
func (d *WSDeque) SetMetrics(m *obs.Metrics) { d.top.SetMetrics(m) }

// SetMetrics attaches an optional metrics sink (nil disables) to every
// variable in the snapshot's set. Note the Vars are caller-owned, so this
// also affects reads and writes made outside the snapshot.
func (s *Snapshot) SetMetrics(m *obs.Metrics) {
	for _, v := range s.vars {
		v.SetMetrics(m)
	}
}
