package structures

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
)

// Regression test for the SC retry-loop spin audit: with GOMAXPROCS(1) a
// retry loop that spins without ever yielding can monopolize the only
// processor and livelock the program (the SC it is waiting on can only
// succeed when the interfering goroutine runs again). Every retry loop in
// this package funnels through contention.Waiter.Wait, which yields
// periodically even with no policy attached, so these workloads must
// terminate on a single processor — each runs under a watchdog, with a
// stall hook widening the LL-SC window to force the interference that
// makes retries (and thus the yield path) actually happen.
func runSingleProc(t *testing.T, name string, workload func()) {
	t.Run(name, func(t *testing.T) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		done := make(chan struct{})
		go func() {
			workload()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			buf := make([]byte, 1<<16)
			t.Fatalf("workload %q did not terminate on GOMAXPROCS(1); stacks:\n%s",
				name, buf[:runtime.Stack(buf, true)])
		}
	})
}

func TestSingleProcTermination(t *testing.T) {
	const workers, ops = 4, 300
	pol := contention.ExponentialBackoff(4, 64)

	spawn := func(body func(g int)) {
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				body(g)
			}(g)
		}
		wg.Wait()
	}

	runSingleProc(t, "stack", func() {
		s, err := NewStack(workers * ops)
		if err != nil {
			t.Error(err)
			return
		}
		if err := s.EnableElimination(2); err != nil {
			t.Error(err)
			return
		}
		s.SetContention(pol)
		s.SetStallHook(runtime.Gosched)
		spawn(func(g int) {
			for i := 0; i < ops; i++ {
				if err := s.Push(uint64(i + 1)); err != nil {
					t.Error(err)
					return
				}
				s.Pop()
			}
		})
	})

	runSingleProc(t, "queue", func() {
		q, err := NewQueue(workers * ops)
		if err != nil {
			t.Error(err)
			return
		}
		q.SetContention(pol)
		spawn(func(g int) {
			for i := 0; i < ops; i++ {
				if err := q.Enqueue(uint64(i + 1)); err != nil {
					t.Error(err)
					return
				}
				q.Dequeue()
			}
		})
	})

	runSingleProc(t, "counter", func() {
		c := NewCounter(0)
		c.SetContention(pol)
		c.SetStallHook(runtime.Gosched)
		spawn(func(g int) {
			for i := 0; i < ops; i++ {
				c.Increment()
			}
		})
	})

	runSingleProc(t, "sharded-counter", func() {
		c, err := NewShardedCounter(0, 4)
		if err != nil {
			t.Error(err)
			return
		}
		c.SetContention(pol)
		c.SetStallHook(runtime.Gosched)
		spawn(func(g int) {
			for i := 0; i < ops; i++ {
				c.AddProc(g, 1)
			}
		})
	})

	runSingleProc(t, "ring", func() {
		r, err := NewRing(8)
		if err != nil {
			t.Error(err)
			return
		}
		r.SetContention(pol)
		spawn(func(g int) {
			for i := 0; i < ops; i++ {
				r.Enqueue(uint64(i + 1))
				r.Dequeue()
			}
		})
	})

	runSingleProc(t, "snapshot", func() {
		vars := []*core.Var{core.MustNewVar(indexLayout, 0), core.MustNewVar(indexLayout, 0)}
		vars[0].SetStallHook(runtime.Gosched)
		snap, err := NewSnapshot(vars)
		if err != nil {
			t.Error(err)
			return
		}
		snap.SetContention(pol)
		spawn(func(g int) {
			dst := make([]uint64, 2)
			for i := 0; i < ops; i++ {
				vars[g%2].Store(uint64(i))
				snap.Collect(dst)
			}
		})
	})
}
