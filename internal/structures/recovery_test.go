package structures

import (
	"testing"
)

// killOp runs op expecting the panic planted by a stall hook — the
// in-process stand-in for a worker killed mid-operation.
func killOp(t *testing.T, op func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("operation completed; expected the stall-hook kill to fire")
		}
	}()
	op()
}

// TestQueueRecoverMidEnqueueLeak builds the exact leak the service
// supervisor must heal: a process killed between Enqueue's pool alloc and
// the link SC. The node is owned by nobody; CheckConservation must say
// so, Recover must reclaim exactly that node, and the queue must then
// accept a full complement of elements again.
func TestQueueRecoverMidEnqueueLeak(t *testing.T) {
	const capacity = 4
	q, err := NewQueue(capacity)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(100); err != nil {
		t.Fatal(err)
	}

	// Arm a one-shot kill inside the LL window after the alloc.
	armed := true
	q.SetStallHook(func() {
		if armed {
			armed = false
			panic("chaos: killed mid-enqueue")
		}
	})
	killOp(t, func() { _ = q.Enqueue(200) })
	q.SetStallHook(nil)

	st, err := q.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	// 1 element + the dummy reachable; one node leaked by the kill.
	if st.Leaked != 1 || st.Reachable != 2 {
		t.Fatalf("after mid-enqueue kill: %+v, want 1 leaked / 2 reachable", st)
	}
	if err := q.CheckConservation(); err == nil {
		t.Fatal("CheckConservation passed on a leaky queue")
	}

	reclaimed, err := q.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if reclaimed != 1 {
		t.Fatalf("Recover reclaimed %d nodes, want 1", reclaimed)
	}
	if err := q.CheckConservation(); err != nil {
		t.Fatalf("CheckConservation after Recover: %v", err)
	}

	// The surviving element is intact and the full capacity is usable.
	if v, ok := q.Dequeue(); !ok || v != 100 {
		t.Fatalf("Dequeue after recovery = (%d, %v), want (100, true)", v, ok)
	}
	for i := 0; i < capacity; i++ {
		if err := q.Enqueue(uint64(i)); err != nil {
			t.Fatalf("Enqueue %d after recovery: %v (capacity not restored)", i, err)
		}
	}
	if err := q.Enqueue(99); err != ErrFull {
		t.Fatalf("Enqueue past capacity = %v, want ErrFull", err)
	}
}

// TestStackRecoverMidPushLeak is the stack version of the leak window:
// killed after alloc, before the top SC links the node.
func TestStackRecoverMidPushLeak(t *testing.T) {
	const capacity = 3
	s, err := NewStack(capacity)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Push(7); err != nil {
		t.Fatal(err)
	}

	armed := true
	s.SetStallHook(func() {
		if armed {
			armed = false
			panic("chaos: killed mid-push")
		}
	})
	killOp(t, func() { _ = s.Push(8) })
	s.SetStallHook(nil)

	st, err := s.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if st.Leaked != 1 || st.Reachable != 1 {
		t.Fatalf("after mid-push kill: %+v, want 1 leaked / 1 reachable", st)
	}
	if err := s.CheckConservation(); err == nil {
		t.Fatal("CheckConservation passed on a leaky stack")
	}

	reclaimed, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if reclaimed != 1 {
		t.Fatalf("Recover reclaimed %d nodes, want 1", reclaimed)
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatalf("CheckConservation after Recover: %v", err)
	}
	if v, ok := s.Pop(); !ok || v != 7 {
		t.Fatalf("Pop after recovery = (%d, %v), want (7, true)", v, ok)
	}
	for i := 0; i < capacity; i++ {
		if err := s.Push(uint64(i)); err != nil {
			t.Fatalf("Push %d after recovery: %v (capacity not restored)", i, err)
		}
	}
	if err := s.Push(99); err != ErrFull {
		t.Fatalf("Push past capacity = %v, want ErrFull", err)
	}
}

// TestConservationCleanAtRest: a healthy container audits clean through
// arbitrary churn, and Recover on a clean container reclaims nothing.
func TestConservationCleanAtRest(t *testing.T) {
	q, err := NewQueue(16)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if err := q.Enqueue(uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			if _, ok := q.Dequeue(); !ok {
				t.Fatal("unexpected empty queue")
			}
		}
		if err := q.CheckConservation(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if n, err := q.Recover(); err != nil || n != 0 {
		t.Fatalf("Recover on clean queue = (%d, %v), want (0, nil)", n, err)
	}

	s, err := NewStack(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Push(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, ok := s.Pop(); !ok {
			t.Fatal("unexpected empty stack")
		}
	}
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Recover(); err != nil || n != 0 {
		t.Fatalf("Recover on clean stack = (%d, %v), want (0, nil)", n, err)
	}
}
