package structures

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingValidation(t *testing.T) {
	for _, bad := range []int{0, 1, 3, 100, 1 << 23} {
		if _, err := NewRing(bad); err == nil {
			t.Errorf("capacity %d accepted", bad)
		}
	}
	r, err := NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Capacity() != 8 {
		t.Errorf("Capacity = %d, want 8", r.Capacity())
	}
}

func TestRingBasicFIFO(t *testing.T) {
	r, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Empty() {
		t.Error("new ring not empty")
	}
	if _, ok := r.Dequeue(); ok {
		t.Error("Dequeue on empty ring succeeded")
	}
	for i := uint64(1); i <= 4; i++ {
		if err := r.Enqueue(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Enqueue(99); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull Enqueue error = %v, want ErrFull", err)
	}
	for want := uint64(10); want <= 40; want += 10 {
		v, ok := r.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if !r.Empty() {
		t.Error("ring not empty after draining")
	}
}

func TestRingWrapsManyGenerations(t *testing.T) {
	// Cycle a tiny ring through far more elements than its capacity,
	// crossing the 24-bit cursor wrap region is impractical, but slot
	// generation reuse is exercised thousands of times.
	r, err := NewRing(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10000; i++ {
		if err := r.Enqueue(i); err != nil {
			t.Fatalf("Enqueue(%d): %v", i, err)
		}
		v, ok := r.Dequeue()
		if !ok || v != i {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestRingFIFOQuick(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 128 {
			vals = vals[:128]
		}
		r, err := NewRing(256)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if err := r.Enqueue(v); err != nil {
				return false
			}
		}
		for _, want := range vals {
			v, ok := r.Dequeue()
			if !ok || v != want {
				return false
			}
		}
		_, ok := r.Dequeue()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingConcurrentConservation(t *testing.T) {
	const producers = 4
	const consumers = 4
	const perProducer = 3000
	r, err := NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	var prodWG, consWG sync.WaitGroup
	seen := make([][]uint64, consumers)

	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			count := 0
			for count < producers*perProducer/consumers {
				if v, ok := r.Dequeue(); ok {
					seen[c] = append(seen[c], v)
					count++
				} else {
					runtime.Gosched()
				}
			}
		}(c)
	}
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < perProducer; i++ {
				token := uint64(p)<<32 | uint64(i)
				for {
					if err := r.Enqueue(token); err == nil {
						break
					}
					runtime.Gosched()
				}
			}
		}(p)
	}
	prodWG.Wait()
	consWG.Wait()

	all := make(map[uint64]bool, producers*perProducer)
	for c, lane := range seen {
		last := make(map[int]uint64)
		for _, v := range lane {
			if all[v] {
				t.Fatalf("token %#x dequeued twice", v)
			}
			all[v] = true
			p := int(v >> 32)
			seq := v & 0xFFFFFFFF
			if prev, ok := last[p]; ok && seq <= prev {
				t.Fatalf("consumer %d saw producer %d out of order: %d then %d", c, p, prev, seq)
			}
			last[p] = seq
		}
	}
	if len(all) != producers*perProducer {
		t.Fatalf("dequeued %d tokens, want %d", len(all), producers*perProducer)
	}
}

func TestSeqBehind(t *testing.T) {
	tests := []struct {
		a, b uint64
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{cursorMask, 0, true},  // wrap: a just before b
		{0, cursorMask, false}, // b far "ahead" means a is not behind
		{0, 1 << 22, true},     // within half range
		{0, 1<<23 + 1, false},  // beyond half range
	}
	for _, tt := range tests {
		if got := seqBehind(tt.a, tt.b); got != tt.want {
			t.Errorf("seqBehind(%d,%d) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}
