package structures

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// This file adds linearizability conformance tests for the containers
// that previously had only sequential and smoke coverage: Counter, Set,
// Map, and the shared node pool. Two complementary techniques:
//
//   - Exhaustive serialized orders: sched.ExploreExhaustive enumerates
//     every interleaving of whole operations (one Controller step per op,
//     so ops execute serialized in every possible global order) and each
//     order is replayed against a trivial sequential oracle. This covers
//     the full scheduling tree of a small script.
//   - Concurrent windows: free-running goroutines record small per-round
//     histories (rounds separated by barriers, so the pre-round state is
//     read exactly at quiescence) which a Wing–Gong style search checks
//     against the structure's abstract model. This covers real intra-op
//     interleavings the serialized tree cannot.

// linOp is one completed structure operation with its logical interval.
type linOp struct {
	proc    int
	name    string
	arg1    uint64
	arg2    uint64
	retVal  uint64
	retBool bool
	call    int64
	ret     int64
}

func (o linOp) String() string {
	return fmt.Sprintf("p%d %s(%d,%d)=(%d,%v) @[%d,%d]", o.proc, o.name, o.arg1, o.arg2, o.retVal, o.retBool, o.call, o.ret)
}

// linearizableHistory reports whether ops has a legal linearization from
// the abstract state initial, where step applies one op to a state key
// and reports whether its recorded results are legal. States are opaque
// comparable strings; histories are expected to stay small (≤ ~20 ops).
func linearizableHistory(ops []linOp, initial string, step func(state string, op linOp) (string, bool)) bool {
	if len(ops) > 30 {
		panic("linearizableHistory: history too large")
	}
	type nodeKey struct {
		mask  uint32
		state string
	}
	full := uint32(1)<<uint(len(ops)) - 1
	visited := make(map[nodeKey]struct{})
	var dfs func(mask uint32, state string) bool
	dfs = func(mask uint32, state string) bool {
		if mask == full {
			return true
		}
		k := nodeKey{mask, state}
		if _, seen := visited[k]; seen {
			return false
		}
		visited[k] = struct{}{}
		minRet := int64(1<<63 - 1)
		for i, op := range ops {
			if mask&(1<<uint(i)) == 0 && op.ret < minRet {
				minRet = op.ret
			}
		}
		for i, op := range ops {
			if mask&(1<<uint(i)) != 0 || op.call > minRet {
				continue
			}
			if next, ok := step(state, op); ok && dfs(mask|1<<uint(i), next) {
				return true
			}
		}
		return false
	}
	return dfs(0, initial)
}

// linRecorder collects ops from concurrent drivers with a logical clock.
type linRecorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []linOp
}

func (r *linRecorder) do(p int, name string, arg1, arg2 uint64, invoke func() (uint64, bool)) (uint64, bool) {
	op := linOp{proc: p, name: name, arg1: arg1, arg2: arg2, call: r.clock.Add(1)}
	rv, rb := invoke()
	op.retVal, op.retBool, op.ret = rv, rb, r.clock.Add(1)
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
	return rv, rb
}

func (r *linRecorder) drain() []linOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	ops := r.ops
	r.ops = nil
	return ops
}

// runLinRounds drives procs goroutines for rounds barrier-separated
// rounds. Each round, initial() reads the abstract state at quiescence,
// driver(p, rng) performs a few recorded ops, and the round's history
// must linearize from that state.
func runLinRounds(t *testing.T, procs, rounds int, rec *linRecorder,
	initial func() string,
	driver func(p int, rng *rand.Rand),
	step func(state string, op linOp) (string, bool)) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		init := initial()
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				driver(p, rand.New(rand.NewSource(int64(round)*131+int64(p))))
			}(p)
		}
		wg.Wait()
		ops := rec.drain()
		if !linearizableHistory(ops, init, step) {
			t.Fatalf("round %d: history not linearizable from state %q:\n%v", round, init, ops)
		}
	}
}

// --- Counter ---

const counterMask = uint64(1)<<32 - 1

func counterStep(state string, op linOp) (string, bool) {
	var v uint64
	fmt.Sscanf(state, "%d", &v)
	switch op.name {
	case "add":
		next := (v + op.arg1) & counterMask
		return fmt.Sprintf("%d", next), op.retVal == next
	case "load":
		return state, op.retVal == v
	default:
		return state, false
	}
}

func TestCounterExhaustiveConformance(t *testing.T) {
	scripts := [][]uint64{{1, 2}, {4, 8}, {16, 32}} // deltas per proc
	res, err := sched.ExploreExhaustive(len(scripts), 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		c := NewCounter(0)
		var log []linOp // controller serializes ops, so plain append is safe
		workload := func(p int) {
			for _, d := range scripts[p] {
				ctrl.Step(p)
				got := c.Add(d)
				log = append(log, linOp{proc: p, name: "add", arg1: d, retVal: got})
			}
		}
		check := func() error {
			var v uint64
			for _, op := range log {
				v = (v + op.arg1) & counterMask
				if op.retVal != v {
					return fmt.Errorf("%v: oracle value %d", op, v)
				}
			}
			if got := c.Load(); got != v {
				return fmt.Errorf("final value %d, oracle %d", got, v)
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
	t.Logf("exhausted %d schedules", res.Schedules)
}

func TestCounterLinearizableWindows(t *testing.T) {
	c := NewCounter(0)
	rec := &linRecorder{}
	driver := func(p int, rng *rand.Rand) {
		for i := 0; i < 4; i++ {
			if rng.Intn(3) == 0 {
				rec.do(p, "load", 0, 0, func() (uint64, bool) { return c.Load(), false })
			} else {
				d := uint64(rng.Intn(5) + 1)
				rec.do(p, "add", d, 0, func() (uint64, bool) { return c.Add(d), false })
			}
		}
	}
	runLinRounds(t, 3, 30, rec,
		func() string { return fmt.Sprintf("%d", c.Load()) },
		driver, counterStep)
}

// --- Set ---

// Set abstract state: bitmask of present keys (universe 1..3), rendered
// as a decimal string.
func setStep(state string, op linOp) (string, bool) {
	var mask uint64
	fmt.Sscanf(state, "%d", &mask)
	bit := uint64(1) << op.arg1
	switch op.name {
	case "insert":
		if mask&bit != 0 {
			return state, !op.retBool
		}
		if !op.retBool {
			return state, false
		}
		return fmt.Sprintf("%d", mask|bit), true
	case "delete":
		if mask&bit == 0 {
			return state, !op.retBool
		}
		if !op.retBool {
			return state, false
		}
		return fmt.Sprintf("%d", mask&^bit), true
	case "contains":
		return state, op.retBool == (mask&bit != 0)
	default:
		return state, false
	}
}

func TestSetExhaustiveConformance(t *testing.T) {
	// Both procs fight over key 1; proc 1 also touches key 2.
	res, err := sched.ExploreExhaustive(2, 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		s, err := NewSet(8)
		if err != nil {
			t.Fatal(err)
		}
		var log []linOp
		record := func(p int, name string, key uint64, ok bool) {
			log = append(log, linOp{proc: p, name: name, arg1: key, retBool: ok})
		}
		workload := func(p int) {
			if p == 0 {
				ctrl.Step(p)
				ok, err := s.Insert(1)
				if err != nil {
					panic(err)
				}
				record(p, "insert", 1, ok)
				ctrl.Step(p)
				record(p, "delete", 1, s.Delete(1))
			} else {
				ctrl.Step(p)
				ok, err := s.Insert(1)
				if err != nil {
					panic(err)
				}
				record(p, "insert", 1, ok)
				ctrl.Step(p)
				record(p, "contains", 1, s.Contains(1))
				ctrl.Step(p)
				ok, err = s.Insert(2)
				if err != nil {
					panic(err)
				}
				record(p, "insert", 2, ok)
			}
		}
		check := func() error {
			state := "0"
			for _, op := range log {
				next, ok := setStep(state, op)
				if !ok {
					return fmt.Errorf("%v: illegal from state %s", op, state)
				}
				state = next
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
}

func TestSetLinearizableWindows(t *testing.T) {
	// Deleted nodes are never returned to the pool (the set has a lifetime
	// insert budget), so capacity must cover every insert the drivers can
	// attempt: 3 procs x 4 ops x 30 rounds.
	s, err := NewSet(512)
	if err != nil {
		t.Fatal(err)
	}
	rec := &linRecorder{}
	driver := func(p int, rng *rand.Rand) {
		for i := 0; i < 4; i++ {
			key := uint64(rng.Intn(3) + 1)
			switch rng.Intn(3) {
			case 0:
				rec.do(p, "insert", key, 0, func() (uint64, bool) {
					ok, err := s.Insert(key)
					if err != nil {
						panic(err)
					}
					return 0, ok
				})
			case 1:
				rec.do(p, "delete", key, 0, func() (uint64, bool) { return 0, s.Delete(key) })
			default:
				rec.do(p, "contains", key, 0, func() (uint64, bool) { return 0, s.Contains(key) })
			}
		}
	}
	runLinRounds(t, 3, 30, rec,
		func() string {
			var mask uint64
			for key := uint64(1); key <= 3; key++ {
				if s.Contains(key) {
					mask |= 1 << key
				}
			}
			return fmt.Sprintf("%d", mask)
		},
		driver, setStep)
}

// --- Map ---

// Map abstract state: values of keys 1 and 2, 0 meaning absent (drivers
// only store non-zero values).
func mapStep(state string, op linOp) (string, bool) {
	var v1, v2 uint64
	fmt.Sscanf(state, "%d,%d", &v1, &v2)
	get := func(k uint64) uint64 {
		if k == 1 {
			return v1
		}
		return v2
	}
	set := func(k, v uint64) string {
		if k == 1 {
			return fmt.Sprintf("%d,%d", v, v2)
		}
		return fmt.Sprintf("%d,%d", v1, v)
	}
	switch op.name {
	case "put":
		return set(op.arg1, op.arg2), true
	case "get":
		cur := get(op.arg1)
		if op.retBool != (cur != 0) {
			return state, false
		}
		return state, !op.retBool || op.retVal == cur
	case "delete":
		if op.retBool != (get(op.arg1) != 0) {
			return state, false
		}
		return set(op.arg1, 0), true
	default:
		return state, false
	}
}

func TestMapExhaustiveConformance(t *testing.T) {
	res, err := sched.ExploreExhaustive(2, 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		m, err := NewMap(8)
		if err != nil {
			t.Fatal(err)
		}
		var log []linOp
		workload := func(p int) {
			if p == 0 {
				ctrl.Step(p)
				if err := m.Put(1, 10); err != nil {
					panic(err)
				}
				log = append(log, linOp{proc: p, name: "put", arg1: 1, arg2: 10})
				ctrl.Step(p)
				log = append(log, linOp{proc: p, name: "delete", arg1: 1, retBool: m.Delete(1)})
			} else {
				ctrl.Step(p)
				if err := m.Put(1, 20); err != nil {
					panic(err)
				}
				log = append(log, linOp{proc: p, name: "put", arg1: 1, arg2: 20})
				ctrl.Step(p)
				v, ok := m.Get(1)
				log = append(log, linOp{proc: p, name: "get", arg1: 1, retVal: v, retBool: ok})
			}
		}
		check := func() error {
			state := "0,0"
			for _, op := range log {
				next, ok := mapStep(state, op)
				if !ok {
					return fmt.Errorf("%v: illegal from state %s", op, state)
				}
				state = next
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
}

func TestMapLinearizableWindows(t *testing.T) {
	m, err := NewMap(32)
	if err != nil {
		t.Fatal(err)
	}
	rec := &linRecorder{}
	driver := func(p int, rng *rand.Rand) {
		for i := 0; i < 4; i++ {
			key := uint64(rng.Intn(2) + 1)
			switch rng.Intn(3) {
			case 0:
				val := uint64(rng.Intn(9) + 1)
				rec.do(p, "put", key, val, func() (uint64, bool) {
					if err := m.Put(key, val); err != nil {
						panic(err)
					}
					return 0, false
				})
			case 1:
				rec.do(p, "get", key, 0, func() (uint64, bool) { return m.Get(key) })
			default:
				rec.do(p, "delete", key, 0, func() (uint64, bool) { return 0, m.Delete(key) })
			}
		}
	}
	runLinRounds(t, 3, 30, rec,
		func() string {
			v1, _ := m.Get(1)
			v2, _ := m.Get(2)
			return fmt.Sprintf("%d,%d", v1, v2)
		},
		driver, mapStep)
}

// --- pool (white-box) ---

// Pool abstract state: bitmask of free node indices. An alloc must return
// some currently-free index; a free returns it. ErrFull is legal only
// when nothing is free.
func poolStep(state string, op linOp) (string, bool) {
	var free uint64
	fmt.Sscanf(state, "%d", &free)
	bit := uint64(1) << op.retVal
	switch op.name {
	case "alloc":
		if !op.retBool { // ErrFull
			return state, free == 0
		}
		if free&bit == 0 {
			return state, false
		}
		return fmt.Sprintf("%d", free&^bit), true
	case "free":
		return fmt.Sprintf("%d", free|uint64(1)<<op.arg1), true
	default:
		return state, false
	}
}

func TestPoolExhaustiveConformance(t *testing.T) {
	// Capacity 1: two procs race alloc/free over a single node, so one
	// alloc of each pair must observe ErrFull in some schedules.
	res, err := sched.ExploreExhaustive(2, 100000, func(ctrl *sched.Controller) (func(int), func() error) {
		p, err := newPool(1)
		if err != nil {
			t.Fatal(err)
		}
		var log []linOp
		workload := func(proc int) {
			ctrl.Step(proc)
			idx, err := p.alloc()
			log = append(log, linOp{proc: proc, name: "alloc", retVal: idx, retBool: err == nil})
			if err != nil {
				return
			}
			ctrl.Step(proc)
			p.freeNode(idx)
			log = append(log, linOp{proc: proc, name: "free", arg1: idx})
		}
		check := func() error {
			state := "2" // node 1 free: bit 1
			for _, op := range log {
				next, ok := poolStep(state, op)
				if !ok {
					return fmt.Errorf("%v: illegal from state %s", op, state)
				}
				state = next
			}
			if state != "2" {
				return fmt.Errorf("final free mask %s, want 2", state)
			}
			return nil
		}
		return workload, check
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("schedule tree not exhausted in %d runs", res.Schedules)
	}
}

func TestPoolLinearizableWindows(t *testing.T) {
	const capacity = 4
	p, err := newPool(capacity)
	if err != nil {
		t.Fatal(err)
	}
	rec := &linRecorder{}
	driver := func(proc int, rng *rand.Rand) {
		var held []uint64
		for i := 0; i < 3; i++ {
			idx, ok := rec.do(proc, "alloc", 0, 0, func() (uint64, bool) {
				idx, err := p.alloc()
				return idx, err == nil
			})
			if ok {
				held = append(held, idx)
			}
		}
		// Everything allocated is freed before the barrier, so the
		// quiescent free set is always the full pool.
		for _, idx := range held {
			rec.do(proc, "free", idx, 0, func() (uint64, bool) { p.freeNode(idx); return 0, false })
		}
	}
	full := fmt.Sprintf("%d", (uint64(1)<<(capacity+1))-2) // bits 1..capacity
	runLinRounds(t, 3, 30, rec,
		func() string { return full },
		driver, poolStep)
}
