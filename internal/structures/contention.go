package structures

import "repro/internal/contention"

// This file wires the optional contention-management policy
// (internal/contention) through every container, mirroring obs.go's
// SetMetrics pattern: SetContention(nil) disables (the default — retry
// immediately, with the bounded-spin periodic yield), and the policy must
// be attached before the container is shared between goroutines. One
// policy instance per container is the intended granularity — its
// adaptive state then reflects that container's contention, and all of
// the container's retry loops (including its pool's) consult it.

// setContention attaches p to the pool's free-list loops.
func (p *pool) setContention(cp *contention.Policy) { p.cm = cp }

// SetContention attaches a contention-management policy (nil disables) to
// the stack's push/pop loops, its node pool, and — when elimination is
// enabled — the collision array's slot choice.
func (s *Stack) SetContention(cp *contention.Policy) {
	s.cm = cp
	s.p.setContention(cp)
	if s.elim != nil {
		s.elim.cm = cp
	}
}

// SetContention attaches a contention-management policy (nil disables) to
// the queue's enqueue/dequeue loops and its node pool.
func (q *Queue) SetContention(cp *contention.Policy) {
	q.cm = cp
	q.p.setContention(cp)
}

// SetContention attaches a contention-management policy (nil disables) to
// the counter's FetchOp loop.
func (c *Counter) SetContention(cp *contention.Policy) { c.cm = cp }

// SetContention attaches a contention-management policy (nil disables) to
// the sharded counter's stripe-spill loops and stripe selection.
func (c *ShardedCounter) SetContention(cp *contention.Policy) {
	c.cm = cp
	c.base.SetContention(cp)
}

// SetContention attaches a contention-management policy (nil disables) to
// the ring's cursor loops.
func (r *Ring) SetContention(cp *contention.Policy) { r.cm = cp }

// SetContention attaches a contention-management policy (nil disables) to
// the map's bucket-claim loop.
func (m *Map) SetContention(cp *contention.Policy) { m.cm = cp }

// SetContention attaches a contention-management policy (nil disables) to
// the set's search/insert/delete loops and its node pool.
func (s *Set) SetContention(cp *contention.Policy) {
	s.cm = cp
	s.p.setContention(cp)
}

// SetContention attaches a contention-management policy (nil disables) to
// the deque's underlying universal-construction object.
func (d *Deque) SetContention(cp *contention.Policy) { d.o.SetContention(cp) }

// SetContention attaches a contention-management policy (nil disables) to
// the snapshot's collect loop.
func (s *Snapshot) SetContention(cp *contention.Policy) { s.cm = cp }

// The SetStallHook pass-throughs below mirror core.Var.SetStallHook for
// the structures the contention sweep measures: benchmarks and fault
// harnesses install runtime.Gosched (or a fault-plan stall) inside the
// central word's LL-SC window to force the interference that a single
// processor otherwise almost never exhibits (see EXPERIMENTS.md, E6b).
// Production code leaves them nil. Set before sharing.

// SetStallHook widens the LL-SC window of the stack's top pointer.
func (s *Stack) SetStallHook(f func()) { s.top.SetStallHook(f) }

// SetStallHook widens the LL-SC window of the queue's tail pointer. The
// hook fires inside Enqueue's first LL after the node is allocated but
// before it is linked — exactly the window where a killed process leaks a
// pool node — so chaos tests can place a kill in the leak window
// deterministically.
func (q *Queue) SetStallHook(f func()) { q.tail.SetStallHook(f) }

// SetStallHook widens the LL-SC window of the counter's variable.
func (c *Counter) SetStallHook(f func()) { c.v.SetStallHook(f) }

// SetStallHook widens the LL-SC window of the sharded counter's base
// variable only — the stripes are the contention escape valve and stay
// unstalled, exactly the asymmetry the combining fast path exploits.
func (c *ShardedCounter) SetStallHook(f func()) { c.base.v.SetStallHook(f) }
