package structures

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestWSDequeValidation(t *testing.T) {
	for _, bad := range []int{0, 1, 3, 100, 1 << 21} {
		if _, err := NewWSDeque(bad); err == nil {
			t.Errorf("capacity %d accepted", bad)
		}
	}
	d, err := NewWSDeque(8)
	if err != nil {
		t.Fatal(err)
	}
	if d.Capacity() != 8 {
		t.Errorf("Capacity = %d", d.Capacity())
	}
}

func TestWSDequeOwnerLIFO(t *testing.T) {
	d, err := NewWSDeque(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.PopBottom(); ok {
		t.Error("PopBottom on empty succeeded")
	}
	for i := uint64(1); i <= 5; i++ {
		if !d.PushBottom(i) {
			t.Fatalf("PushBottom(%d) failed", i)
		}
	}
	if d.Size() != 5 {
		t.Errorf("Size = %d, want 5", d.Size())
	}
	for want := uint64(5); want >= 1; want-- {
		v, ok := d.PopBottom()
		if !ok || v != want {
			t.Fatalf("PopBottom = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := d.PopBottom(); ok {
		t.Error("PopBottom after drain succeeded")
	}
}

func TestWSDequeStealFIFO(t *testing.T) {
	d, err := NewWSDeque(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 4; i++ {
		d.PushBottom(i)
	}
	for want := uint64(1); want <= 4; want++ {
		v, ok, _ := d.Steal()
		if !ok || v != want {
			t.Fatalf("Steal = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok, _ := d.Steal(); ok {
		t.Error("Steal on empty succeeded")
	}
}

func TestWSDequeFull(t *testing.T) {
	d, err := NewWSDeque(2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.PushBottom(1) || !d.PushBottom(2) {
		t.Fatal("pushes failed")
	}
	if d.PushBottom(3) {
		t.Error("PushBottom on full succeeded")
	}
	// Stealing frees space for the owner.
	if _, ok, _ := d.Steal(); !ok {
		t.Fatal("Steal failed")
	}
	if !d.PushBottom(3) {
		t.Error("PushBottom after steal failed")
	}
}

func TestWSDequeMixedSequential(t *testing.T) {
	d, err := NewWSDeque(16)
	if err != nil {
		t.Fatal(err)
	}
	oracle := []uint64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		switch rng.Intn(3) {
		case 0:
			v := uint64(rng.Intn(1000))
			got := d.PushBottom(v)
			want := len(oracle) < 16
			if got != want {
				t.Fatalf("op %d PushBottom: %v vs %v", i, got, want)
			}
			if want {
				oracle = append(oracle, v)
			}
		case 1:
			v, ok := d.PopBottom()
			if len(oracle) > 0 {
				want := oracle[len(oracle)-1]
				oracle = oracle[:len(oracle)-1]
				if !ok || v != want {
					t.Fatalf("op %d PopBottom: (%d,%v), want (%d,true)", i, v, ok, want)
				}
			} else if ok {
				t.Fatalf("op %d PopBottom succeeded on empty", i)
			}
		default:
			v, ok, _ := d.Steal()
			if len(oracle) > 0 {
				want := oracle[0]
				oracle = oracle[1:]
				if !ok || v != want {
					t.Fatalf("op %d Steal: (%d,%v), want (%d,true)", i, v, ok, want)
				}
			} else if ok {
				t.Fatalf("op %d Steal succeeded on empty", i)
			}
		}
	}
}

func TestWSDequeConcurrentConservation(t *testing.T) {
	// One owner pushing and popping, several thieves stealing: every
	// pushed token is consumed exactly once (by the owner or a thief).
	const thieves = 3
	const tokens = 30000
	d, err := NewWSDeque(128)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	consumed := make(map[uint64]int, tokens)
	take := func(v uint64) {
		mu.Lock()
		consumed[v]++
		mu.Unlock()
	}

	done := make(chan struct{})
	var thiefWG sync.WaitGroup
	for th := 0; th < thieves; th++ {
		thiefWG.Add(1)
		go func() {
			defer thiefWG.Done()
			for {
				v, ok, retry := d.Steal()
				if ok {
					take(v)
					continue
				}
				if !retry {
					select {
					case <-done:
						// Drain once more to catch stragglers.
						for {
							v, ok, _ := d.Steal()
							if !ok {
								return
							}
							take(v)
						}
					default:
						runtime.Gosched()
					}
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(99))
	for i := uint64(1); i <= tokens; i++ {
		for !d.PushBottom(i) {
			runtime.Gosched()
		}
		if rng.Intn(3) == 0 {
			if v, ok := d.PopBottom(); ok {
				take(v)
			}
		}
	}
	// Owner drains what it can; thieves take the rest.
	for {
		v, ok := d.PopBottom()
		if !ok {
			break
		}
		take(v)
	}
	close(done)
	thiefWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(consumed) != tokens {
		t.Fatalf("consumed %d distinct tokens, want %d", len(consumed), tokens)
	}
	for v, n := range consumed {
		if n != 1 {
			t.Fatalf("token %d consumed %d times", v, n)
		}
	}
}

func TestWSDequeSingleElementRace(t *testing.T) {
	// Hammer the owner-vs-thief race on the last element: exactly one
	// side must win each round.
	const rounds = 20000
	d, err := NewWSDeque(4)
	if err != nil {
		t.Fatal(err)
	}
	var ownerGot, thiefGot int
	var wg sync.WaitGroup
	start := make(chan struct{})
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, ok, _ := d.Steal(); ok {
				thiefGot++
			}
		}
	}()
	close(start)
	for i := 0; i < rounds; i++ {
		for !d.PushBottom(uint64(i)) {
			runtime.Gosched()
		}
		if _, ok := d.PopBottom(); ok {
			ownerGot++
		}
	}
	close(stop)
	wg.Wait()
	// Whatever the thief didn't get before stop is still in the deque.
	remaining := 0
	for {
		if _, ok := d.PopBottom(); !ok {
			break
		}
		remaining++
	}
	if ownerGot+thiefGot+remaining != rounds {
		t.Fatalf("owner %d + thief %d + remaining %d != %d (duplicate or lost element)",
			ownerGot, thiefGot, remaining, rounds)
	}
}
