package structures

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMapValidation(t *testing.T) {
	if _, err := NewMap(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewMap(1<<22 + 1); err == nil {
		t.Error("oversized capacity accepted")
	}
	m, err := NewMap(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(MaxMapKey+1, 1); err == nil {
		t.Error("oversized key accepted")
	}
	if err := m.Put(1, tombstone); err == nil {
		t.Error("reserved value accepted")
	}
	if err := m.Put(1, unsetVal); err == nil {
		t.Error("reserved value accepted")
	}
}

func TestMapBasicOps(t *testing.T) {
	m, err := NewMap(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(5); ok {
		t.Error("empty map Get(5) found something")
	}
	if err := m.Put(5, 500); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(5); !ok || v != 500 {
		t.Errorf("Get(5) = (%d,%v), want (500,true)", v, ok)
	}
	if err := m.Put(5, 501); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(5); v != 501 {
		t.Errorf("overwrite: Get(5) = %d, want 501", v)
	}
	if !m.Delete(5) {
		t.Error("Delete(5) failed")
	}
	if _, ok := m.Get(5); ok {
		t.Error("Get(5) found deleted key")
	}
	if m.Delete(5) {
		t.Error("second Delete(5) succeeded")
	}
	// Resurrect.
	if err := m.Put(5, 555); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(5); !ok || v != 555 {
		t.Errorf("resurrected Get(5) = (%d,%v), want (555,true)", v, ok)
	}
}

func TestMapZeroKeyAndValue(t *testing.T) {
	m, err := NewMap(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(0, 0); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(0); !ok || v != 0 {
		t.Errorf("Get(0) = (%d,%v), want (0,true)", v, ok)
	}
}

func TestMapCollisionsProbe(t *testing.T) {
	// Force many keys into a tiny table: linear probing must resolve.
	m, err := NewMap(8) // 16 buckets
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 8; k++ {
		if err := m.Put(k, k*10); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	for k := uint64(0); k < 8; k++ {
		if v, ok := m.Get(k); !ok || v != k*10 {
			t.Errorf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, k*10)
		}
	}
	if got := m.Len(); got != 8 {
		t.Errorf("Len = %d, want 8", got)
	}
}

func TestMapFull(t *testing.T) {
	m, err := NewMap(1) // 2 buckets
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(3, 3); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull Put error = %v, want ErrFull", err)
	}
	// Existing keys still writable when full.
	if err := m.Put(1, 11); err != nil {
		t.Fatalf("overwrite when full: %v", err)
	}
}

func TestMapRange(t *testing.T) {
	m, err := NewMap(16)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		if err := m.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	m.Put(4, 40)
	m.Delete(4)
	got := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range saw %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early termination.
	count := 0
	m.Range(func(k, v uint64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("Range after false continued: %d calls", count)
	}
}

func TestMapAgainstOracleQuick(t *testing.T) {
	type op struct {
		Kind  uint8
		Key   uint16
		Value uint32
	}
	f := func(ops []op) bool {
		// 2^16 possible keys can collide into a smaller table; the probe
		// path handles overflow via ErrFull, which the oracle can't
		// model, so size generously relative to quick's op counts.
		m, err := NewMap(1 << 10)
		if err != nil {
			return false
		}
		oracle := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o.Key)
			switch o.Kind % 3 {
			case 0:
				if err := m.Put(k, uint64(o.Value)); err != nil {
					return false
				}
				oracle[k] = uint64(o.Value)
			case 1:
				got := m.Delete(k)
				_, want := oracle[k]
				if got != want {
					return false
				}
				delete(oracle, k)
			default:
				v, ok := m.Get(k)
				wv, wok := oracle[k]
				if ok != wok || (ok && v != wv) {
					return false
				}
			}
		}
		return m.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMapConcurrentDistinctKeys(t *testing.T) {
	const workers = 4
	const perWorker = 2000
	m, err := NewMap(workers * perWorker)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * perWorker)
			for i := uint64(0); i < perWorker; i++ {
				if err := m.Put(base+i, base+i+1); err != nil {
					t.Errorf("Put(%d): %v", base+i, err)
					return
				}
			}
			for i := uint64(0); i < perWorker; i++ {
				if v, ok := m.Get(base + i); !ok || v != base+i+1 {
					t.Errorf("Get(%d) = (%d,%v)", base+i, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.Len(); got != workers*perWorker {
		t.Errorf("Len = %d, want %d", got, workers*perWorker)
	}
}

func TestMapConcurrentSameKeys(t *testing.T) {
	// All workers fight over a small key set with mixed ops; afterwards
	// every key must either be absent or hold a value some worker wrote.
	const workers = 8
	const keySpace = 32
	const opsEach = 3000
	m, err := NewMap(keySpace)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				k := uint64(rng.Intn(keySpace))
				switch rng.Intn(3) {
				case 0:
					if err := m.Put(k, k*1000+uint64(w)); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					m.Delete(k)
				default:
					if v, ok := m.Get(k); ok {
						if v/1000 != k {
							t.Errorf("Get(%d) returned alien value %d", k, v)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	m.Range(func(k, v uint64) bool {
		if v/1000 != k {
			t.Errorf("final state: key %d holds alien value %d", k, v)
		}
		return true
	})
}
