package obs

import "repro/internal/machine"

// MachineObserver returns a machine.Config.Observer callback that folds
// the simulated machine's event stream into m's counters, so simulator
// runs and real-hardware runs report through the same taxonomy:
//
//	machine.Config{Observer: metrics.MachineObserver()}
//
// Mapping: every event increments its machine-level counter (MachLoad,
// MachStore, MachCAS, RLL, RSC); a failed RSC additionally increments
// RSCFailSpurious or RSCFailInterference by cause. A spurious RSC failure
// is precisely a spuriously failed store-conditional, so it also feeds
// SCFailSpurious — the simulator-side half of the SC-failure-by-cause
// split (on real CAS hardware that counter is structurally zero).
//
// The callback stripes by the event's processor id and is allocation-free,
// so it is safe to leave enabled during measurement runs. Safe on a nil
// receiver: returns nil, which machine.Config treats as "no observer".
func (m *Metrics) MachineObserver() func(machine.Event) {
	if m == nil {
		return nil
	}
	return func(e machine.Event) {
		switch e.Op {
		case machine.OpLoad:
			m.IncProc(e.Proc, CtrMachLoad)
		case machine.OpStore:
			m.IncProc(e.Proc, CtrMachStore)
		case machine.OpCAS:
			m.IncProc(e.Proc, CtrMachCAS)
		case machine.OpRLL:
			m.IncProc(e.Proc, CtrRLL)
		case machine.OpRSC:
			m.IncProc(e.Proc, CtrRSC)
			if !e.OK {
				if e.Spurious {
					m.IncProc(e.Proc, CtrRSCFailSpurious)
					m.IncProc(e.Proc, CtrSCFailSpurious)
				} else {
					m.IncProc(e.Proc, CtrRSCFailInterference)
				}
			}
		}
	}
}

// TeeObservers fans one machine event stream out to several observers
// (e.g. a trace.Recorder and a Metrics.MachineObserver). Nil entries are
// skipped; with zero non-nil entries it returns nil, which machine.Config
// treats as "no observer".
func TeeObservers(obs ...func(machine.Event)) func(machine.Event) {
	live := obs[:0]
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e machine.Event) {
		for _, o := range live {
			o(e)
		}
	}
}
