package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Prometheus text exposition (version 0.0.4, the format every Prometheus
// scraper and the OpenMetrics parsers accept) of the full counter
// taxonomy and any published histograms, served at /metrics/prometheus
// beside the legacy plain-text /metrics and the expvar /debug/vars.
//
// Naming: counter c of the Metrics published under sink name s becomes
//
//	llsc_<c>_total{sink="<s>"} <value>
//
// Every counter in the taxonomy is exposed for every sink, zeros
// included, so dashboards and alerts can rely on series existing from
// scrape one. Histograms published with PublishHist become classic
// Prometheus histograms whose le edges are the log₂ bucket upper bounds:
//
//	llsc_<name>_bucket{sink="<s>",le="<hi>"} <cumulative>
//	llsc_<name>_bucket{sink="<s>",le="+Inf"} <count>
//	llsc_<name>_sum / llsc_<name>_count
var (
	histRegistryMu sync.Mutex
	histRegistry   = map[string]map[string]*Hist{} // sink → hist name → hist
)

// PublishHist registers h for Prometheus export under the given sink and
// histogram name (e.g. "latency_ns"). Re-publishing replaces; a nil Hist
// removes. The plain /metrics and expvar endpoints are unaffected.
func PublishHist(sink, name string, h *Hist) {
	histRegistryMu.Lock()
	defer histRegistryMu.Unlock()
	if h == nil {
		if m := histRegistry[sink]; m != nil {
			delete(m, name)
			if len(m) == 0 {
				delete(histRegistry, sink)
			}
		}
		return
	}
	if histRegistry[sink] == nil {
		histRegistry[sink] = map[string]*Hist{}
	}
	histRegistry[sink][name] = h
}

// publishedHists snapshots the histogram registry under its lock.
func publishedHists() map[string]map[string]HistSnapshot {
	histRegistryMu.Lock()
	defer histRegistryMu.Unlock()
	out := make(map[string]map[string]HistSnapshot, len(histRegistry))
	for sink, hists := range histRegistry {
		out[sink] = make(map[string]HistSnapshot, len(hists))
		for name, h := range hists {
			out[sink][name] = h.Snapshot()
		}
	}
	return out
}

// WritePrometheus writes the Prometheus text exposition of every
// published Metrics (all taxonomy counters, zeros included) and every
// published histogram, in deterministic order.
func WritePrometheus(w io.Writer) error {
	snaps := publishedSnapshots()
	sinks := make([]string, 0, len(snaps))
	for name := range snaps {
		sinks = append(sinks, name)
	}
	sort.Strings(sinks)

	for c := Counter(0); c < NumCounters; c++ {
		metric := "llsc_" + counterNames[c] + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", metric); err != nil {
			return err
		}
		for _, sink := range sinks {
			if _, err := fmt.Fprintf(w, "%s{sink=%q} %d\n", metric, sink, snaps[sink][counterNames[c]]); err != nil {
				return err
			}
		}
	}

	hists := publishedHists()
	hsinks := make([]string, 0, len(hists))
	for sink := range hists {
		hsinks = append(hsinks, sink)
	}
	sort.Strings(hsinks)
	typed := map[string]bool{}
	for _, sink := range hsinks {
		names := make([]string, 0, len(hists[sink]))
		for name := range hists[sink] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := writePrometheusHist(w, sink, name, hists[sink][name], typed); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePrometheusHist renders one histogram snapshot. Buckets are
// cumulative as the format requires; only non-empty log₂ buckets get an
// explicit le edge (edges stay strictly increasing), and the mandatory
// +Inf bucket always carries the total count.
func writePrometheusHist(w io.Writer, sink, name string, s HistSnapshot, typed map[string]bool) error {
	metric := "llsc_" + name
	if !typed[metric] {
		typed[metric] = true
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", metric); err != nil {
			return err
		}
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.N
		if _, err := fmt.Fprintf(w, "%s_bucket{sink=%q,le=\"%d\"} %d\n", metric, sink, b.Hi, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{sink=%q,le=\"+Inf\"} %d\n", metric, sink, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{sink=%q} %d\n", metric, sink, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{sink=%q} %d\n", metric, sink, s.Count)
	return err
}

// prometheusText is the /metrics/prometheus handler.
func prometheusText(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WritePrometheus(w)
}

// healthz is the /healthz handler: 200 "ok" while the process serves.
func healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
