package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistBucketEdges(t *testing.T) {
	cases := []struct {
		v      uint64
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 4, 7},
		{1023, 512, 1023},
		{1024, 1024, 2047},
		{math.MaxUint64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		b := bucketOf(c.v)
		if bucketLo(b) != c.lo || bucketHi(b) != c.hi {
			t.Errorf("value %d → bucket %d [%d,%d], want [%d,%d]",
				c.v, b, bucketLo(b), bucketHi(b), c.lo, c.hi)
		}
	}
}

func TestHistObserveAndQuantile(t *testing.T) {
	var h Hist
	for i := uint64(0); i < 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
	if want := uint64(99 * 100 / 2); h.Sum() != want {
		t.Errorf("sum = %d, want %d", h.Sum(), want)
	}
	// Quantile is an upper bound accurate to one power-of-two bucket.
	if q := h.Quantile(0.5); q < 49 || q > 127 {
		t.Errorf("p50 = %d, want within one bucket of 49", q)
	}
	if q := h.Quantile(1); q < 99 || q > 127 {
		t.Errorf("p100 = %d, want within one bucket of 99", q)
	}
	if h.Quantile(-1) > h.Quantile(2) {
		t.Error("clamped quantiles out of order")
	}
}

func TestHistQuantileBoundaries(t *testing.T) {
	// Nearest-rank semantics: Quantile(q) is the bucket upper bound of the
	// ⌈q·count⌉-th smallest observation, rank clamped to [1, count].
	cases := []struct {
		name string
		obs  []uint64
		q    float64
		want uint64
	}{
		// q=0 and q=1 pin to the min and max observation's bucket.
		{"q0-min", []uint64{1, 8, 64}, 0, 1},
		{"q1-max", []uint64{1, 8, 64}, 1, 127},
		{"clamp-below", []uint64{1, 8, 64}, -0.5, 1},
		{"clamp-above", []uint64{1, 8, 64}, 1.5, 127},
		// Exact rank boundary resolves to the LOWER rank: ⌈0.5·4⌉ = 2.
		{"even-median-lower", []uint64{1, 2, 4, 8}, 0.5, 3},
		// Just past the boundary moves up one rank: ⌈0.51·4⌉ = 3.
		{"past-median", []uint64{1, 2, 4, 8}, 0.51, 7},
		// Odd count median is the middle element: ⌈0.5·3⌉ = 2.
		{"odd-median", []uint64{1, 4, 16}, 0.5, 7},
		// Exact bucket-edge values report their own bucket's upper bound.
		{"edge-lo", []uint64{4, 4, 4}, 0.5, 7},
		{"edge-hi", []uint64{7, 7, 7}, 0.5, 7},
		{"zero-bucket", []uint64{0, 0, 5}, 0.5, 0},
		{"zero-bucket-q1", []uint64{0, 0, 5}, 1, 7},
		// Single observation: every q returns its bucket.
		{"single-q0", []uint64{1000}, 0, 1023},
		{"single-q05", []uint64{1000}, 0.5, 1023},
		{"single-q1", []uint64{1000}, 1, 1023},
		// Rank boundary at q=0.9 with count=10 must not depend on
		// floating-point noise in q·count: ⌈9.0…⌉ = 9 exactly.
		{"tenth-rank", []uint64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1 << 20}, 0.9, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var h Hist
			for _, v := range c.obs {
				h.Observe(v)
			}
			if got := h.Quantile(c.q); got != c.want {
				t.Errorf("Quantile(%v) over %v = %d, want %d", c.q, c.obs, got, c.want)
			}
		})
	}
}

func TestHistNilAndEmpty(t *testing.T) {
	var nilH *Hist
	nilH.Observe(5)
	nilH.ObserveDuration(time.Second)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 {
		t.Error("nil Hist should read as empty")
	}
	if s := nilH.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	var h Hist
	if h.Quantile(0.99) != 0 {
		t.Error("empty Hist quantile should be 0")
	}
}

func TestHistObserveAllocationFree(t *testing.T) {
	var h Hist
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(42)
		h.ObserveDuration(100 * time.Nanosecond)
	}); n != 0 {
		t.Errorf("Observe allocates %.1f objects per op, want 0", n)
	}
}

func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 5000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Errorf("count = %d, want %d", h.Count(), goroutines*perG)
	}
}

func TestHistSnapshotJSONStable(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)
	h.Observe(5)
	snap := h.Snapshot()
	if snap.Count != 4 || snap.Sum != 11 {
		t.Errorf("snapshot count=%d sum=%d, want 4/11", snap.Count, snap.Sum)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back HistSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != snap.Count || back.Sum != snap.Sum || len(back.Buckets) != len(snap.Buckets) {
		t.Errorf("round trip lost data: %+v vs %+v", back, snap)
	}
	var total uint64
	for i, b := range back.Buckets {
		total += b.N
		if i > 0 && back.Buckets[i-1].Hi >= b.Lo {
			t.Errorf("buckets not ascending: %+v", back.Buckets)
		}
	}
	if total != snap.Count {
		t.Errorf("bucket sum %d != count %d", total, snap.Count)
	}
}
