package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of log₂ buckets: bucket 0 holds the value 0,
// bucket b (1 ≤ b ≤ 64) holds values v with bits.Len64(v) == b, i.e.
// v ∈ [2^(b-1), 2^b - 1]. Every uint64 has exactly one bucket.
const HistBuckets = 65

// Hist is a log₂-bucketed histogram for retry counts and latencies:
// lock-free, allocation-free Observe, exact count and sum, quantiles
// accurate to one power-of-two bucket. Buckets are plain atomics rather
// than stripes — distinct observed magnitudes already land on distinct
// words, and retry/latency recording is far off the LL/SC hot path.
//
// The zero value is ready to use. A nil *Hist is valid and means
// "recording disabled".
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// bucketOf maps a value to its bucket index, bits.Len64 (compiles to a
// single LZCNT-style instruction).
func bucketOf(v uint64) int {
	return bits.Len64(v)
}

// Observe records one value. Safe on nil.
func (h *Hist) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds (negative durations
// clamp to 0). Safe on nil.
func (h *Hist) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Nanoseconds()))
}

// Count returns the number of observations. Safe on nil.
func (h *Hist) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Safe on nil.
func (h *Hist) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value (0 when empty). Safe on nil.
func (h *Hist) Mean() float64 {
	c := h.Count()
	if c == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(c)
}

// Quantile returns an upper bound on the q-quantile, exact to the
// containing power-of-two bucket, using nearest-rank semantics: the
// result is bucketHi(b) for the bucket b holding the ⌈q·count⌉-th
// smallest observation (rank clamped to [1, count]). Boundary behaviour
// is pinned by TestHistQuantileBoundaries:
//
//   - q ≤ 0 returns the bucket upper bound of the minimum observation
//     (rank 1), and q ≥ 1 that of the maximum (rank count) — q outside
//     [0,1] clamps rather than erroring.
//   - At an exact rank boundary the lower bucket wins: with count = 4,
//     q = 0.5 selects rank 2 (⌈0.5·4⌉ = 2), not rank 3. The previous
//     implementation used floor(q·count)+1, which at exact multiples
//     resolved one rank higher and made p50 of an even count depend on
//     floating-point rounding of q·count.
//   - An empty (or nil) histogram returns 0.
//
// Because buckets are closed power-of-two ranges, the returned value is
// ≥ the true quantile and < 2× the true quantile (for values ≥ 1).
// Safe on nil.
func (h *Hist) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var seen uint64
	for b := 0; b < HistBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen >= rank {
			return bucketHi(b)
		}
	}
	return bucketHi(HistBuckets - 1)
}

// bucketLo returns the smallest value in bucket b.
func bucketLo(b int) uint64 {
	if b == 0 {
		return 0
	}
	return 1 << (b - 1)
}

// bucketHi returns the largest value in bucket b.
func bucketHi(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return math.MaxUint64
	}
	return 1<<b - 1
}

// HistBucket is one non-empty bucket in a snapshot: the closed value range
// [Lo, Hi] and the observation count N.
type HistBucket struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	N  uint64 `json:"n"`
}

// HistSnapshot is the schema-stable serialized form of a Hist: exact count
// and sum plus the non-empty log₂ buckets in ascending order.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Safe on nil (returns an empty
// snapshot). Concurrent writers may make count and the bucket sum differ
// transiently; post-run snapshotting (the normal use) is exact.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for b := 0; b < HistBuckets; b++ {
		if n := h.buckets[b].Load(); n != 0 {
			s.Buckets = append(s.Buckets, HistBucket{Lo: bucketLo(b), Hi: bucketHi(b), N: n})
		}
	}
	return s
}

// String summarizes the distribution.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50≤%d p99≤%d max≤%d",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(1))
}
