// Package obs is the unified observability layer for every LL/SC
// implementation in this repository: a near-zero-overhead metrics sink
// that the production-path CAS-based primitives (internal/core), the data
// structures, the STM, and the universal constructions all report through,
// mirroring the machine.Observer pattern the simulator already has — so
// simulated and real executions become comparable through one counter
// taxonomy.
//
// The paper's central claims are complexity bounds on retry behaviour
// (Theorems 1-5: an SC fails only if another SC succeeds; spurious RSC
// failures cause only bounded extra loops). This package makes those
// quantities measurable on live workloads: LL/VL/SC attempt counts, SC
// failures split by cause (interference vs. spurious), CAS retries,
// bounded-tag recycles (Figure 7), and large-variable copy work
// (Figure 6).
//
// Design constraints, in order:
//
//  1. Nil is off. Every hot-path method is safe on a nil *Metrics and
//     reduces to a single branch, so un-instrumented code pays (almost)
//     nothing and call sites need no conditionals.
//  2. No locks, no allocation on the increment path (asserted by
//     testing.AllocsPerRun in this package's tests and extended to the
//     instrumented core primitives in internal/core/alloc_test.go).
//  3. Increments scale: counters are striped across cache-line-padded
//     shards. Callers that know a process id use IncProc/AddProc (the
//     paper's algorithms are written "for process p", so most do); ambient
//     callers use Inc/Add, which stripes by a hash of the goroutine's
//     stack address — distinct goroutines land on distinct shards with
//     high probability, and a collision costs contention, not correctness.
//
// Snapshot folds the stripes into exact totals at read time; readers pay,
// writers do not.
package obs

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Counter identifies one metric in the fixed taxonomy. The zero value is
// the first real counter; there is no sentinel.
type Counter uint8

// The counter taxonomy. docs/OBSERVABILITY.md maps each counter onto the
// paper's theorems; the short story:
//
//   - LL/VL/SC/Read/CL count primitive invocations at the algorithm level
//     (Figures 3-7 and their RLL/RSC realizations alike).
//   - SCFailInterference counts SC invocations that returned false — by
//     Theorems 1-5 each one implies another process's SC succeeded.
//   - SCFailSpurious counts spuriously failed store-conditionals (injected
//     RSC failures on the simulated machine; impossible on real CAS
//     hardware, hence always 0 for Figure 4). A spurious failure does not
//     make the enclosing SC return false — it costs an extra loop, which
//     SCRetry counts.
//   - SCRetry counts extra RLL/RSC loop iterations inside one SC
//     (Figure 5 line 6-7 loop), the paper's "constant time after the last
//     spurious failure" quantity.
//   - CASAttempt/CASRetry count algorithm-level CAS invocations and their
//     internal retries (Figure 3's RLL/RSC loop, rcas, Var.CompareAndSwap).
//   - TagRecycle counts Figure 7 tag-queue rotations (one per SC attempt
//     that reaches line 12) — the bounded-tag feedback work.
//   - CopyWords/CopyFixes count Figure 6 Copy work: segment words scanned,
//     and stale segments repaired by CAS (helping).
//   - RLL/RSC/RSCFailInterference/RSCFailSpurious and MachLoad/MachStore/
//     MachCAS are machine-level counters fed by the MachineObserver
//     adapter, one-to-one with machine.Stats.
//   - TxCommit/TxMismatch/TxAbort/TxHelp mirror the STM's transaction
//     outcome counters (internal/stm).
const (
	CtrLL Counter = iota
	CtrVL
	CtrSC
	CtrSCFailInterference
	CtrSCFailSpurious
	CtrSCRetry
	CtrRead
	CtrCL
	CtrCASAttempt
	CtrCASRetry
	CtrTagRecycle
	CtrCopyWords
	CtrCopyFixes
	CtrRLL
	CtrRSC
	CtrRSCFailInterference
	CtrRSCFailSpurious
	CtrMachLoad
	CtrMachStore
	CtrMachCAS
	CtrTxCommit
	CtrTxMismatch
	CtrTxAbort
	CtrTxHelp

	// Injected-fault counters, fed by the internal/fault plans: forced
	// spurious RSC failures, targeted interference writes, and processor
	// stalls/crashes. They count the adversary's actions, so a fault run's
	// JSON record shows exactly how much adversity the algorithms absorbed
	// (compare fault_inj_spurious with sc_retry, and fault_inj_interference
	// with sc_fail_interference).
	CtrFaultInjSpurious
	CtrFaultInjInterference
	CtrFaultInjStall

	// Contention-management counters (PR 3). BackoffWaits counts non-zero
	// waits inserted by an internal/contention policy between failed SC/CAS
	// attempts (the per-wait duration distribution is the separate
	// backoff_ns_hist histogram in bench records). ElimHit/ElimMiss count
	// stack elimination-slot outcomes: a hit is a push/pop pair that
	// cancelled without touching the central Treiber top, a miss is an
	// offer that timed out and fell back. CombineBatched counts counter
	// increments diverted from the contended base variable to a stripe.
	CtrBackoffWaits
	CtrElimHit
	CtrElimMiss
	CtrCombineBatched

	// Crash-recovery counters (see docs/RECOVERY.md). RecoveryRestarts
	// counts processor incarnations replaced via Machine.Restart.
	// RecoveryTagsRequeued counts bounded-construction tags conservatively
	// moved to the back of a restarted process's fresh tag queue because
	// they were announced at recovery time (Figure 7 reclamation).
	// RecoverySlotsReclaimed counts announce slots a dead incarnation held
	// at crash time, returned to its successor's free pool.
	// RecoveryCopiesCompleted counts orphaned Figure 6 copies (header still
	// naming the dead process) completed on its behalf during reclamation.
	// RecoveryPendingCompleted counts announced universal-construction
	// operations of crashed processes driven to completion after restart.
	CtrRecoveryRestarts
	CtrRecoveryTagsRequeued
	CtrRecoverySlotsReclaimed
	CtrRecoveryCopiesCompleted
	CtrRecoveryPendingCompleted

	// Wedge-watchdog counters (internal/recovery). WatchdogChecks counts
	// verdicts rendered; WatchdogWedged counts Wedged verdicts — global
	// steps advancing with zero operation progress, the livelock/blocked
	// signature that triggers lease expiry and reclamation.
	CtrWatchdogChecks
	CtrWatchdogWedged

	// Lease-registry counters (machine.Registry mirrored by
	// internal/recovery): grants, renewals, and expiries of per-process
	// leases measured in machine steps.
	CtrLeaseJoins
	CtrLeaseHeartbeats
	CtrLeaseExpiries

	// CtrFaultInjCrash counts kill-style crash injections
	// (fault.CrashRestart / machine.FaultInjection.Crash): the processor's
	// incarnation dies and must be restarted, as opposed to the permanent
	// blocking stall that CtrFaultInjStall counts. Appended at the end of
	// the taxonomy per the schema rule, not beside its fault_inj_* kin.
	CtrFaultInjCrash

	// Span-tracing and flight-recorder counters (internal/obs/trace).
	// TraceSpans counts spans begun (after sampling); TraceEvents counts
	// events written into trace rings; TraceDrops counts ring-buffer events
	// overwritten before any snapshot read them; TraceSampledOut counts
	// spans skipped by the sampling rate (so spans+sampled_out = operations
	// offered to the tracer); FlightDumps counts flight-recorder dumps
	// written (wedge, linearizability, or conservation triggers). Appended
	// at the end of the taxonomy per the schema rule.
	CtrTraceSpans
	CtrTraceEvents
	CtrTraceDrops
	CtrTraceSampledOut
	CtrFlightDumps

	// Discrete-event simulator counters (internal/sim). SimRequests
	// counts requests offered by the arrival processes; SimCompleted
	// those that finished inside the horizon (requests − completed =
	// abandoned, the wedge-freedom deficit); SimEliminated those that
	// completed by pairing with a complementary request at the dispatch
	// layer instead of touching the register; SimRestarts counts
	// crash-storm incarnation replacements performed by the sim's
	// recovery driver. Appended at the end of the taxonomy per the
	// schema rule.
	CtrSimRequests
	CtrSimCompleted
	CtrSimEliminated
	CtrSimRestarts

	// Service resilience counters (internal/resilience, docs/SERVICE.md).
	// ResRetries counts server-side retry attempts consumed by transient
	// failures; ResBudgetExhausted requests failed because the shared
	// retry budget ran dry; ResDeadlineExceeded requests abandoned at a
	// deadline check (admission, queue, or between retry attempts);
	// ResChaosSpurious chaos-injected transient failures at the service
	// op boundary; ResChaosKills chaos-injected worker incarnation kills;
	// ResWedgeKills workers force-killed after a watchdog Wedged verdict;
	// ResRecoveryEpochs stop-the-world reclamation epochs run by the
	// service supervisor. Appended at the end of the taxonomy per the
	// schema rule.
	CtrResRetries
	CtrResBudgetExhausted
	CtrResDeadlineExceeded
	CtrResChaosSpurious
	CtrResChaosKills
	CtrResWedgeKills
	CtrResRecoveryEpochs

	// Admission-control counters (resilience.Shedder). LoadAdmitted
	// counts requests admitted past the shedder; LoadShedWrites and
	// LoadShedReads count requests refused by class (degraded mode sheds
	// writes before reads); LoadDegradedTransitions counts mode changes
	// (healthy ↔ shed-writes ↔ shed-all). Appended at the end of the
	// taxonomy per the schema rule.
	CtrLoadAdmitted
	CtrLoadShedWrites
	CtrLoadShedReads
	CtrLoadDegradedTransitions

	// NumCounters is the size of the taxonomy; Snapshot is indexed by
	// Counter in [0, NumCounters).
	NumCounters
)

// counterNames are the stable machine-readable names used in expvar and
// JSON output. Renaming one is a schema break; add new counters at the end
// of the taxonomy instead.
var counterNames = [NumCounters]string{
	CtrLL:                   "ll",
	CtrVL:                   "vl",
	CtrSC:                   "sc",
	CtrSCFailInterference:   "sc_fail_interference",
	CtrSCFailSpurious:       "sc_fail_spurious",
	CtrSCRetry:              "sc_retry",
	CtrRead:                 "read",
	CtrCL:                   "cl",
	CtrCASAttempt:           "cas_attempt",
	CtrCASRetry:             "cas_retry",
	CtrTagRecycle:           "tag_recycle",
	CtrCopyWords:            "copy_words",
	CtrCopyFixes:            "copy_fixes",
	CtrRLL:                  "rll",
	CtrRSC:                  "rsc",
	CtrRSCFailInterference:  "rsc_fail_interference",
	CtrRSCFailSpurious:      "rsc_fail_spurious",
	CtrMachLoad:             "mach_load",
	CtrMachStore:            "mach_store",
	CtrMachCAS:              "mach_cas",
	CtrTxCommit:             "tx_commit",
	CtrTxMismatch:           "tx_mismatch",
	CtrTxAbort:              "tx_abort",
	CtrTxHelp:               "tx_help",
	CtrFaultInjSpurious:     "fault_inj_spurious",
	CtrFaultInjInterference: "fault_inj_interference",
	CtrFaultInjStall:        "fault_inj_stall",
	CtrBackoffWaits:         "backoff_waits",
	CtrElimHit:              "elim_hits",
	CtrElimMiss:             "elim_misses",
	CtrCombineBatched:       "combine_batched",

	CtrRecoveryRestarts:         "recovery_restarts",
	CtrRecoveryTagsRequeued:     "recovery_tags_requeued",
	CtrRecoverySlotsReclaimed:   "recovery_slots_reclaimed",
	CtrRecoveryCopiesCompleted:  "recovery_copies_completed",
	CtrRecoveryPendingCompleted: "recovery_pending_completed",
	CtrWatchdogChecks:           "watchdog_checks",
	CtrWatchdogWedged:           "watchdog_wedged",
	CtrLeaseJoins:               "lease_joins",
	CtrLeaseHeartbeats:          "lease_heartbeats",
	CtrLeaseExpiries:            "lease_expiries",
	CtrFaultInjCrash:            "fault_inj_crash",
	CtrTraceSpans:               "trace_spans",
	CtrTraceEvents:              "trace_events",
	CtrTraceDrops:               "trace_drops",
	CtrTraceSampledOut:          "trace_sampled_out",
	CtrFlightDumps:              "flight_dumps",
	CtrSimRequests:              "sim_requests",
	CtrSimCompleted:             "sim_completed",
	CtrSimEliminated:            "sim_eliminated",
	CtrSimRestarts:              "sim_restarts",

	CtrResRetries:              "resilience_retries",
	CtrResBudgetExhausted:      "resilience_budget_exhausted",
	CtrResDeadlineExceeded:     "resilience_deadline_exceeded",
	CtrResChaosSpurious:        "resilience_chaos_spurious",
	CtrResChaosKills:           "resilience_chaos_kills",
	CtrResWedgeKills:           "resilience_wedge_kills",
	CtrResRecoveryEpochs:       "resilience_recovery_epochs",
	CtrLoadAdmitted:            "load_admitted",
	CtrLoadShedWrites:          "load_shed_writes",
	CtrLoadShedReads:           "load_shed_reads",
	CtrLoadDegradedTransitions: "load_degraded_transitions",
}

// String returns the counter's stable snake_case name.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("counter(%d)", uint8(c))
}

// cacheLine is the assumed cache-line size for padding. 64 bytes is right
// for every platform this repository targets; being wrong only costs a
// little false sharing, never correctness.
const cacheLine = 64

// stripe is one padded shard of counters. The pad rounds the struct up to
// a cache-line multiple so adjacent stripes never share a line.
type stripe struct {
	counters [NumCounters]atomic.Uint64
	_        [(cacheLine - (int(NumCounters)*8)%cacheLine) % cacheLine]byte
}

// Metrics is a set of striped counters. The zero value is NOT usable;
// create one with New. A nil *Metrics is valid everywhere and means
// "metrics disabled": all increment methods become no-ops.
type Metrics struct {
	stripes []stripe
	mask    uint32
}

// New creates a Metrics with one stripe per processor (rounded up to a
// power of two), the right default for production use.
func New() *Metrics {
	return NewWithStripes(runtime.GOMAXPROCS(0))
}

// NewWithStripes creates a Metrics with at least n stripes (rounded up to
// a power of two, minimum 1). Tests use 1 stripe for determinism of
// per-stripe placement; totals are exact regardless.
func NewWithStripes(n int) *Metrics {
	s := 1
	for s < n {
		s <<= 1
	}
	return &Metrics{stripes: make([]stripe, s), mask: uint32(s - 1)}
}

// Stripes returns the stripe count (a power of two).
func (m *Metrics) Stripes() int { return len(m.stripes) }

// stripeIdx picks a stripe for an ambient (no process id) increment by
// hashing the address of a stack variable: goroutine stacks are distinct
// allocations, so concurrent goroutines spread across stripes without any
// shared state, TLS, or allocation. Within one goroutine the index may
// vary with call depth; that is harmless (any stripe is correct).
func (m *Metrics) stripeIdx() uint32 {
	var x byte
	h := uint64(uintptr(unsafe.Pointer(&x))) * 0x9E3779B97F4A7C15
	return uint32(h>>32) & m.mask
}

// Inc adds 1 to counter c on the calling goroutine's stripe. Safe on nil.
func (m *Metrics) Inc(c Counter) {
	if m == nil {
		return
	}
	m.stripes[m.stripeIdx()].counters[c].Add(1)
}

// Add adds n to counter c on the calling goroutine's stripe. Safe on nil.
func (m *Metrics) Add(c Counter, n uint64) {
	if m == nil {
		return
	}
	m.stripes[m.stripeIdx()].counters[c].Add(n)
}

// IncProc adds 1 to counter c on the stripe for process proc. Safe on nil.
// Call sites that carry a paper-style process identity use this: it is
// cheaper than Inc and contention-free as long as each process runs on
// one goroutine, which is exactly the per-proc handle contract in
// internal/core and internal/machine.
func (m *Metrics) IncProc(proc int, c Counter) {
	if m == nil {
		return
	}
	m.stripes[uint32(proc)&m.mask].counters[c].Add(1)
}

// AddProc adds n to counter c on the stripe for process proc. Safe on nil.
func (m *Metrics) AddProc(proc int, c Counter, n uint64) {
	if m == nil {
		return
	}
	m.stripes[uint32(proc)&m.mask].counters[c].Add(n)
}

// Snapshot is an exact point-in-time total of every counter (stripes
// folded). Indexed by Counter.
type Snapshot [NumCounters]uint64

// Snapshot folds all stripes into exact totals. Safe on nil (returns the
// zero Snapshot). It may run concurrently with writers; each counter is
// individually exact, the set is approximately simultaneous.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	for i := range m.stripes {
		st := &m.stripes[i]
		for c := range s {
			s[c] += st.counters[c].Load()
		}
	}
	return s
}

// Get returns the value of counter c.
func (s Snapshot) Get(c Counter) uint64 { return s[c] }

// Sub returns the counter-wise difference s - earlier, the standard way to
// attribute counts to one measured interval.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	var d Snapshot
	for i := range s {
		d[i] = s[i] - earlier[i]
	}
	return d
}

// Map returns the snapshot as a name → value map including zero-valued
// counters, the schema-stable form used by expvar and JSON bench records.
func (s Snapshot) Map() map[string]uint64 {
	out := make(map[string]uint64, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		out[counterNames[c]] = s[c]
	}
	return out
}

// NonZero returns only the counters with non-zero values, for compact
// human-facing reports.
func (s Snapshot) NonZero() map[string]uint64 {
	out := make(map[string]uint64)
	for c := Counter(0); c < NumCounters; c++ {
		if s[c] != 0 {
			out[counterNames[c]] = s[c]
		}
	}
	return out
}

// Total returns the sum of all counters — a cheap "did anything happen"
// signal for reporters.
func (s Snapshot) Total() uint64 {
	var t uint64
	for _, v := range s {
		t += v
	}
	return t
}

// String renders the non-zero counters in taxonomy order.
func (s Snapshot) String() string {
	out := ""
	for c := Counter(0); c < NumCounters; c++ {
		if s[c] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", counterNames[c], s[c])
	}
	if out == "" {
		return "(all zero)"
	}
	return out
}
