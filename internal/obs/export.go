package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// The package-level registry backs both the expvar export and the
// plain-text /metrics handler: a process typically has one Metrics per
// subsystem under test, registered by name.
var (
	registryMu sync.Mutex
	registry   = map[string]*Metrics{}
	expvarOnce sync.Once
)

// Publish registers m under name for export (expvar variable
// "llsc.<name>", /metrics text, reporters started with nil metrics).
// Re-publishing a name replaces the previous registration; publishing a
// nil Metrics removes it.
func Publish(name string, m *Metrics) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if m == nil {
		delete(registry, name)
		return
	}
	registry[name] = m
	expvarOnce.Do(func() {
		expvar.Publish("llsc", expvar.Func(func() any {
			return publishedSnapshots()
		}))
	})
}

// Published returns the Metrics registered under name, or nil.
func Published(name string) *Metrics {
	registryMu.Lock()
	defer registryMu.Unlock()
	return registry[name]
}

// publishedSnapshots captures every registered Metrics as name → counter
// map, the expvar payload.
func publishedSnapshots() map[string]map[string]uint64 {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make(map[string]map[string]uint64, len(registry))
	for name, m := range registry {
		out[name] = m.Snapshot().Map()
	}
	return out
}

// Server is a live metrics endpoint: expvar at /debug/vars, pprof at
// /debug/pprof/, a plain-text counter dump at /metrics, Prometheus text
// exposition at /metrics/prometheus, and a liveness probe at /healthz.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Serve starts the export server on addr (e.g. "localhost:6060"; a ":0"
// port picks a free one — read it back with Addr). The server runs until
// Close and serves every Metrics registered with Publish, including ones
// published after it starts.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", metricsText)
	mux.HandleFunc("/metrics/prometheus", prometheusText)
	mux.HandleFunc("/healthz", healthz)
	s := &Server{srv: &http.Server{Handler: mux}, ln: ln}
	go s.srv.Serve(ln) //nolint:errcheck // Close returns ErrServerClosed here by design
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// metricsText writes every registered Metrics as "name.counter value"
// lines in deterministic order.
func metricsText(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	snaps := publishedSnapshots()
	names := make([]string, 0, len(snaps))
	for name := range snaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		counters := snaps[name]
		keys := make([]string, 0, len(counters))
		for k := range counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s.%s %d\n", name, k, counters[k])
		}
	}
}

// StartReporter launches a goroutine that writes a plain-text delta report
// of m's counters to w every interval, skipping intervals where nothing
// changed. It returns a stop function that halts the reporter and flushes
// one final report (idempotent). Pass the Metrics directly; the reporter
// does not require Publish.
func StartReporter(w io.Writer, m *Metrics, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		prev := m.Snapshot()
		report := func(final bool) {
			cur := m.Snapshot()
			delta := cur.Sub(prev)
			prev = cur
			if delta.Total() == 0 && !final {
				return
			}
			tag := "interval"
			if final {
				tag = "final"
			}
			fmt.Fprintf(w, "[obs %s] Δ %s | total %s\n", tag, delta, cur)
		}
		for {
			select {
			case <-ticker.C:
				report(false)
			case <-done:
				report(true)
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}
