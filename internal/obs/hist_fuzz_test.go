package obs

import (
	"math"
	"sort"
	"testing"
)

// FuzzHistQuantile checks Quantile against a brute-force nearest-rank
// oracle on the raw observations: for any observation multiset and any
// q, the histogram's answer must be exactly bucketHi(bucketOf(x)) where
// x is the ⌈q·n⌉-th smallest observation (rank clamped to [1, n]) — the
// documented contract — which also implies the upper-bound guarantee
// x ≤ Quantile(q) < 2x (for x ≥ 1).
//
// The corpus feeds the value stream as bytes (exercising the dense
// small-value buckets) with three magnitude escalations mixed in from
// the byte values themselves, so high buckets and the 64-bit edge get
// traffic too.
func FuzzHistQuantile(f *testing.F) {
	f.Add([]byte{0}, float64(0.5))
	f.Add([]byte{1, 2, 3, 4}, float64(0.5))
	f.Add([]byte{255, 0, 128}, float64(0.99))
	f.Add([]byte{7, 7, 7}, float64(0))
	f.Add([]byte{9}, float64(1))
	f.Add([]byte{200, 100, 50, 25}, float64(-3)) // clamps to rank 1
	f.Add([]byte{200, 100, 50, 25}, float64(42)) // clamps to rank n
	f.Add([]byte{13, 77, 254, 3, 3, 90}, float64(0.25))
	f.Fuzz(func(t *testing.T, raw []byte, q float64) {
		if len(raw) > 1024 {
			raw = raw[:1024]
		}
		if math.IsNaN(q) {
			t.Skip("NaN quantile: ceil(NaN·n) has no defined rank")
		}
		var h Hist
		var values []uint64
		for i, b := range raw {
			v := uint64(b)
			// Escalate some values into high buckets, derived purely from
			// the input so the corpus stays reproducible.
			switch i % 4 {
			case 1:
				v *= 1 << 20
			case 2:
				v *= 1 << 50
			case 3:
				if b%5 == 0 {
					v = math.MaxUint64 - v
				}
			}
			h.Observe(v)
			values = append(values, v)
		}
		got := h.Quantile(q)
		if len(values) == 0 {
			if got != 0 {
				t.Fatalf("empty histogram Quantile(%v) = %d, want 0", q, got)
			}
			return
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		qq := q
		if qq < 0 {
			qq = 0
		}
		if qq > 1 {
			qq = 1
		}
		rank := uint64(math.Ceil(qq * float64(len(values))))
		if rank < 1 {
			rank = 1
		}
		if rank > uint64(len(values)) {
			rank = uint64(len(values))
		}
		x := values[rank-1]
		want := bucketHi(bucketOf(x))
		if got != want {
			t.Fatalf("Quantile(%v) over %d values = %d; oracle rank %d value %d buckets to %d",
				q, len(values), got, rank, x, want)
		}
		// The documented upper-bound guarantee.
		if got < x {
			t.Fatalf("Quantile(%v) = %d below the true quantile %d", q, got, x)
		}
		if x >= 1 && got >= 2*x && bucketOf(x) < 64 {
			t.Fatalf("Quantile(%v) = %d not within 2× of the true quantile %d", q, got, x)
		}
		// Count/sum bookkeeping stays exact under the same stream.
		var sum uint64
		for _, v := range values {
			sum += v
		}
		if h.Count() != uint64(len(values)) || h.Sum() != sum {
			t.Fatalf("count/sum %d/%d, want %d/%d", h.Count(), h.Sum(), len(values), sum)
		}
	})
}
