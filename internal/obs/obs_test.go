package obs

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
)

func TestCounterTotalsExactAcrossStripes(t *testing.T) {
	m := NewWithStripes(8)
	for i := 0; i < 1000; i++ {
		m.Inc(CtrLL)
		m.IncProc(i, CtrSC)
		m.Add(CtrCopyWords, 3)
		m.AddProc(i, CtrCASRetry, 2)
	}
	s := m.Snapshot()
	if s.Get(CtrLL) != 1000 || s.Get(CtrSC) != 1000 {
		t.Errorf("ll=%d sc=%d, want 1000 each", s.Get(CtrLL), s.Get(CtrSC))
	}
	if s.Get(CtrCopyWords) != 3000 || s.Get(CtrCASRetry) != 2000 {
		t.Errorf("copy_words=%d cas_retry=%d, want 3000/2000", s.Get(CtrCopyWords), s.Get(CtrCASRetry))
	}
}

func TestNilMetricsIsSafeAndSilent(t *testing.T) {
	var m *Metrics
	m.Inc(CtrLL)
	m.Add(CtrSC, 5)
	m.IncProc(3, CtrVL)
	m.AddProc(3, CtrRead, 7)
	if got := m.Snapshot().Total(); got != 0 {
		t.Errorf("nil Metrics snapshot total = %d, want 0", got)
	}
	if obs := m.MachineObserver(); obs != nil {
		t.Error("nil Metrics MachineObserver should be nil")
	}
}

func TestIncrementAllocationFree(t *testing.T) {
	m := New()
	if n := testing.AllocsPerRun(1000, func() {
		m.Inc(CtrLL)
		m.IncProc(2, CtrSC)
		m.Add(CtrCopyWords, 4)
		m.AddProc(2, CtrCASRetry, 1)
	}); n != 0 {
		t.Errorf("increment path allocates %.1f objects per op, want 0", n)
	}
	var nilM *Metrics
	if n := testing.AllocsPerRun(1000, func() {
		nilM.Inc(CtrLL)
		nilM.IncProc(0, CtrSC)
	}); n != 0 {
		t.Errorf("nil (disabled) path allocates %.1f objects per op, want 0", n)
	}
}

// TestConcurrentIncrements exercises the striped counters under the race
// detector: many goroutines over few stripes, plus concurrent Snapshot
// readers, must be race-free and sum exactly.
func TestConcurrentIncrements(t *testing.T) {
	m := NewWithStripes(2)
	const goroutines = 16
	const perG = 10000
	var wg sync.WaitGroup
	stopReads := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stopReads:
				return
			default:
				_ = m.Snapshot()
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < perG; i++ {
				m.Inc(CtrLL)
				m.IncProc(g, CtrSC)
			}
		}(g)
	}
	workers.Wait()
	close(stopReads)
	wg.Wait()
	s := m.Snapshot()
	if want := uint64(goroutines * perG); s.Get(CtrLL) != want || s.Get(CtrSC) != want {
		t.Errorf("ll=%d sc=%d, want %d each", s.Get(CtrLL), s.Get(CtrSC), want)
	}
}

func TestSnapshotSubMapString(t *testing.T) {
	m := NewWithStripes(1)
	m.Inc(CtrLL)
	m.Inc(CtrLL)
	before := m.Snapshot()
	m.Inc(CtrLL)
	m.Inc(CtrSCFailInterference)
	delta := m.Snapshot().Sub(before)
	if delta.Get(CtrLL) != 1 || delta.Get(CtrSCFailInterference) != 1 {
		t.Errorf("delta = %v, want ll=1 sc_fail_interference=1", delta)
	}
	mp := delta.Map()
	if len(mp) != int(NumCounters) {
		t.Errorf("Map has %d keys, want %d (schema-stable: all counters present)", len(mp), NumCounters)
	}
	if mp["ll"] != 1 || mp["sc_fail_interference"] != 1 || mp["sc_fail_spurious"] != 0 {
		t.Errorf("Map = %v", mp)
	}
	nz := delta.NonZero()
	if len(nz) != 2 {
		t.Errorf("NonZero has %d keys, want 2: %v", len(nz), nz)
	}
	str := delta.String()
	if !strings.Contains(str, "ll=1") || !strings.Contains(str, "sc_fail_interference=1") {
		t.Errorf("String() = %q", str)
	}
	var zero Snapshot
	if zero.String() != "(all zero)" {
		t.Errorf("zero String() = %q", zero.String())
	}
}

func TestCounterNamesCompleteAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "counter(") {
			t.Errorf("counter %d has no name", c)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if got := Counter(200).String(); got != "counter(200)" {
		t.Errorf("out-of-range name = %q", got)
	}
}

// TestMachineObserver runs a real simulated-machine workload through the
// adapter and checks the obs counters agree with machine.Stats — the
// "one interface" property the layer exists for.
func TestMachineObserver(t *testing.T) {
	m := NewWithStripes(4)
	mach := machine.MustNew(machine.Config{Procs: 2, Observer: m.MachineObserver()})
	w := mach.NewWord(0)
	p0 := mach.Proc(0)

	p0.Load(w)
	p0.Store(w, 1)
	p0.CAS(w, 1, 2)
	v := p0.RLL(w)
	if !p0.RSC(w, v+1) {
		t.Fatal("uncontended RSC failed")
	}
	p0.FailNext(1)
	p0.RLL(w)
	if p0.RSC(w, 9) {
		t.Fatal("FailNext RSC unexpectedly succeeded")
	}
	p0.RSC(w, 9) // no reservation: real failure

	st := mach.Stats()
	s := m.Snapshot()
	checks := []struct {
		c    Counter
		want uint64
	}{
		{CtrMachLoad, st.Loads},
		{CtrMachStore, st.Stores},
		{CtrMachCAS, st.CASOps},
		{CtrRLL, st.RLLs},
		{CtrRSC, st.RSCSuccess + st.RSCRealFail + st.RSCSpurious},
		{CtrRSCFailInterference, st.RSCRealFail},
		{CtrRSCFailSpurious, st.RSCSpurious},
		{CtrSCFailSpurious, st.RSCSpurious},
	}
	for _, ck := range checks {
		if got := s.Get(ck.c); got != ck.want {
			t.Errorf("%s = %d, machine.Stats says %d", ck.c, got, ck.want)
		}
	}
	if s.Get(CtrRSCFailSpurious) != 1 || s.Get(CtrRSCFailInterference) != 1 {
		t.Errorf("expected exactly one spurious and one real RSC failure, got %v", s.NonZero())
	}
}

func TestTeeObservers(t *testing.T) {
	var a, b int
	fa := func(machine.Event) { a++ }
	fb := func(machine.Event) { b++ }
	if TeeObservers() != nil || TeeObservers(nil, nil) != nil {
		t.Error("empty tee should be nil")
	}
	tee := TeeObservers(fa, nil, fb)
	tee(machine.Event{})
	tee(machine.Event{})
	if a != 2 || b != 2 {
		t.Errorf("a=%d b=%d, want 2 each", a, b)
	}
}
