package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func TestWritePrometheusExposesFullTaxonomy(t *testing.T) {
	m := NewWithStripes(1)
	m.Inc(CtrSC)
	m.Add(CtrSCRetry, 3)
	Publish("test_prom", m)
	defer Publish("test_prom", nil)

	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Every counter in the taxonomy must be exposed, zeros included.
	for _, name := range CounterNames() {
		series := fmt.Sprintf("llsc_%s_total{sink=\"test_prom\"}", name)
		if !strings.Contains(out, series) {
			t.Errorf("prometheus output missing %s", series)
		}
	}
	if !strings.Contains(out, "llsc_sc_total{sink=\"test_prom\"} 1") {
		t.Errorf("sc counter wrong:\n%s", out)
	}
	if !strings.Contains(out, "llsc_sc_retry_total{sink=\"test_prom\"} 3") {
		t.Errorf("sc_retry counter wrong:\n%s", out)
	}

	// Format sanity: every non-comment line is "<metric>{labels} <value>".
	line := regexp.MustCompile(`^[a-z_][a-z0-9_]*\{[^}]*\} \d+$`)
	for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(l, "# TYPE ") {
			continue
		}
		if !line.MatchString(l) {
			t.Errorf("malformed exposition line: %q", l)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	var h Hist
	h.Observe(1)
	h.Observe(5)
	h.Observe(5)
	PublishHist("test_prom_h", "latency_ns", &h)
	defer PublishHist("test_prom_h", "latency_ns", nil)

	var sb strings.Builder
	if err := WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	wants := []string{
		"# TYPE llsc_latency_ns histogram",
		`llsc_latency_ns_bucket{sink="test_prom_h",le="1"} 1`,
		`llsc_latency_ns_bucket{sink="test_prom_h",le="7"} 3`,
		`llsc_latency_ns_bucket{sink="test_prom_h",le="+Inf"} 3`,
		`llsc_latency_ns_sum{sink="test_prom_h"} 11`,
		`llsc_latency_ns_count{sink="test_prom_h"} 3`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus histogram output missing %q:\n%s", want, out)
		}
	}
}

func TestServePrometheusAndHealthz(t *testing.T) {
	m := NewWithStripes(1)
	m.Inc(CtrLL)
	Publish("test_prom_serve", m)
	defer Publish("test_prom_serve", nil)

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q, want ok", body)
	}
	if body := get("/metrics/prometheus"); !strings.Contains(body, `llsc_ll_total{sink="test_prom_serve"} 1`) {
		t.Errorf("/metrics/prometheus missing counter:\n%.400s", body)
	}
}
