package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeExpvarAndMetricsText(t *testing.T) {
	m := NewWithStripes(1)
	m.Inc(CtrLL)
	m.Inc(CtrSC)
	m.Inc(CtrSCFailInterference)
	Publish("test_serve", m)
	defer Publish("test_serve", nil)

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// expvar: the "llsc" variable carries every published Metrics.
	var vars struct {
		LLSC map[string]map[string]uint64 `json:"llsc"`
	}
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("expvar payload not JSON: %v", err)
	}
	counters := vars.LLSC["test_serve"]
	if counters == nil {
		t.Fatalf("expvar missing test_serve: %v", vars.LLSC)
	}
	if counters["ll"] != 1 || counters["sc"] != 1 || counters["sc_fail_interference"] != 1 {
		t.Errorf("expvar counters = %v", counters)
	}

	// Counters published while serving are visible live.
	m.Inc(CtrLL)
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatal(err)
	}
	if vars.LLSC["test_serve"]["ll"] != 2 {
		t.Errorf("live counter not updated: %v", vars.LLSC["test_serve"])
	}

	// Plain-text /metrics.
	text := get("/metrics")
	if !strings.Contains(text, "test_serve.ll 2") || !strings.Contains(text, "test_serve.sc 1") {
		t.Errorf("/metrics output:\n%s", text)
	}

	// pprof index responds.
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("pprof index missing profiles:\n%.200s", body)
	}
}

func TestPublishedLookupAndReplace(t *testing.T) {
	m1 := NewWithStripes(1)
	m2 := NewWithStripes(1)
	Publish("test_lookup", m1)
	if Published("test_lookup") != m1 {
		t.Error("lookup did not return published metrics")
	}
	Publish("test_lookup", m2)
	if Published("test_lookup") != m2 {
		t.Error("re-publish did not replace")
	}
	Publish("test_lookup", nil)
	if Published("test_lookup") != nil {
		t.Error("nil publish did not remove")
	}
}

func TestStartReporter(t *testing.T) {
	m := NewWithStripes(1)
	var sb strings.Builder
	stop := StartReporter(&sb, m, 10*time.Millisecond)
	m.Inc(CtrLL)
	m.Inc(CtrSCFailInterference)
	time.Sleep(35 * time.Millisecond)
	m.Inc(CtrLL)
	stop()
	stop() // idempotent
	out := sb.String()
	if !strings.Contains(out, "ll=") {
		t.Errorf("reporter output missing counters:\n%s", out)
	}
	if !strings.Contains(out, "[obs final]") {
		t.Errorf("reporter output missing final report:\n%s", out)
	}
	if !strings.Contains(out, "ll=2") {
		t.Errorf("final totals should show ll=2:\n%s", out)
	}
}
