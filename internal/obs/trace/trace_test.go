package trace

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTracerSpanLifecycle(t *testing.T) {
	tr := MustNew(Config{Procs: 2, EventsPerProc: 64})
	met := obs.NewWithStripes(1)
	tr.SetMetrics(met)

	sp := tr.Begin(0, OpSC)
	if !sp.Active() {
		t.Fatal("span should be active")
	}
	sp.Retry(CauseSpurious)
	sp.AddWait(5 * time.Microsecond)
	sp.AddHelp(3, 2*time.Microsecond)
	sp.Retry(CauseInterference)
	sp.End(true)
	sp.End(true) // idempotent: ended spans are inert
	sp.Retry(CauseSpurious)

	events := tr.Snapshot()
	// begin + 2 retries + wait + help + end = 6, with nothing after End.
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6: %+v", len(events), events)
	}
	kinds := []Kind{KindBegin, KindRetry, KindWait, KindHelp, KindRetry, KindEnd}
	for i, k := range kinds {
		if events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, events[i].Kind, k)
		}
		if events[i].Proc != 0 {
			t.Errorf("event %d proc = %d, want 0", i, events[i].Proc)
		}
		if events[i].Span != sp.id {
			t.Errorf("event %d span = %d, want %d", i, events[i].Span, sp.id)
		}
	}
	end := events[5]
	if !end.OK || end.Op != OpSC || end.Dur <= 0 {
		t.Errorf("end event = %+v", end)
	}
	if events[1].Cause != CauseSpurious || events[4].Cause != CauseInterference {
		t.Errorf("retry causes = %v, %v", events[1].Cause, events[4].Cause)
	}
	if events[2].Dur != int64(5*time.Microsecond) {
		t.Errorf("wait dur = %d", events[2].Dur)
	}
	if events[3].Arg != 3 {
		t.Errorf("help units = %d", events[3].Arg)
	}

	snap := met.Snapshot()
	if snap.Get(obs.CtrTraceSpans) != 1 {
		t.Errorf("trace_spans = %d, want 1", snap.Get(obs.CtrTraceSpans))
	}
	if snap.Get(obs.CtrTraceEvents) != 6 {
		t.Errorf("trace_events = %d, want 6", snap.Get(obs.CtrTraceEvents))
	}
}

func TestTracerNilAndZeroSpan(t *testing.T) {
	var tr *Tracer
	tr.SetMetrics(obs.NewWithStripes(1))
	tr.SetAttribution(&Attribution{})
	sp := tr.Begin(0, OpSC)
	if sp.Active() {
		t.Error("nil tracer must yield inactive span")
	}
	sp.Retry(CauseSpurious)
	sp.AddWait(time.Millisecond)
	sp.AddHelp(1, time.Millisecond)
	sp.End(true)
	tr.Emit(0, KindCrash, OpNone, 0, 0)
	tr.Transition(1, KindWedge)
	if ev := tr.Snapshot(); ev != nil {
		t.Errorf("nil tracer snapshot = %v", ev)
	}
	if tr.Dropped() != 0 || tr.Spans() != 0 {
		t.Error("nil tracer counters must read 0")
	}
}

func TestTracerAmbientAndOutOfRangeProcs(t *testing.T) {
	tr := MustNew(Config{Procs: 1, EventsPerProc: 16})
	a := tr.Begin(Ambient, OpStore)
	a.End(true)
	far := tr.Begin(7, OpCAS) // beyond Procs: shares the ambient ring
	far.End(false)
	events := tr.Snapshot()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	for _, e := range events {
		if e.Proc != -1 && e.Proc != 7 {
			t.Errorf("unexpected proc %d", e.Proc)
		}
	}
}

func TestTracerRingWrapCountsDrops(t *testing.T) {
	tr := MustNew(Config{Procs: 1, EventsPerProc: 8})
	met := obs.NewWithStripes(1)
	tr.SetMetrics(met)
	for i := 0; i < 20; i++ {
		sp := tr.Begin(0, OpSC)
		sp.End(true)
	}
	// 40 events through an 8-slot ring: 32 dropped, 8 retained.
	events := tr.Snapshot()
	if len(events) != 8 {
		t.Errorf("retained %d events, want 8", len(events))
	}
	if tr.Dropped() != 32 {
		t.Errorf("dropped = %d, want 32", tr.Dropped())
	}
	if got := met.Snapshot().Get(obs.CtrTraceDrops); got != 32 {
		t.Errorf("trace_drops = %d, want 32", got)
	}
	// Retained events are the newest, in order.
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Errorf("events out of order at %d", i)
		}
	}
}

func TestTracerSampling(t *testing.T) {
	tr := MustNew(Config{Procs: 1, EventsPerProc: 256, SampleEvery: 4})
	met := obs.NewWithStripes(1)
	tr.SetMetrics(met)
	recorded := 0
	for i := 0; i < 100; i++ {
		sp := tr.Begin(0, OpSC)
		if sp.Active() {
			recorded++
		}
		sp.End(true)
	}
	if recorded != 25 {
		t.Errorf("recorded %d spans of 100 at SampleEvery=4, want 25", recorded)
	}
	snap := met.Snapshot()
	if snap.Get(obs.CtrTraceSpans) != 25 || snap.Get(obs.CtrTraceSampledOut) != 75 {
		t.Errorf("spans=%d sampled_out=%d, want 25/75",
			snap.Get(obs.CtrTraceSpans), snap.Get(obs.CtrTraceSampledOut))
	}
}

func TestTracerAttribution(t *testing.T) {
	tr := MustNew(Config{Procs: 1})
	att := &Attribution{OpNs: &obs.Hist{}, RetryNs: &obs.Hist{}, WaitNs: &obs.Hist{}, HelpNs: &obs.Hist{}}
	tr.SetAttribution(att)
	sp := tr.Begin(0, OpSC)
	sp.Retry(CauseInterference)
	sp.AddWait(10 * time.Microsecond)
	sp.AddHelp(1, 3*time.Microsecond)
	sp.End(true)
	for name, h := range map[string]*obs.Hist{
		"op": att.OpNs, "retry": att.RetryNs, "wait": att.WaitNs, "help": att.HelpNs,
	} {
		if h.Count() != 1 {
			t.Errorf("%s hist count = %d, want 1 (one observation per span)", name, h.Count())
		}
	}
	if att.WaitNs.Sum() != uint64(10*time.Microsecond) {
		t.Errorf("wait sum = %d", att.WaitNs.Sum())
	}
	if att.HelpNs.Sum() != uint64(3*time.Microsecond) {
		t.Errorf("help sum = %d", att.HelpNs.Sum())
	}
}

func TestTracerConcurrentSnapshot(t *testing.T) {
	tr := MustNew(Config{Procs: 4, EventsPerProc: 64})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sp := tr.Begin(p, OpSC)
				sp.Retry(CauseInterference)
				sp.End(true)
			}
		}(p)
	}
	// Snapshot under fire: must not race (run under -race in CI) and
	// must only yield well-formed events.
	for i := 0; i < 50; i++ {
		for _, e := range tr.Snapshot() {
			if e.Kind < KindBegin || e.Kind > KindWedge {
				t.Errorf("torn event surfaced: %+v", e)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestTracerDisabledZeroAlloc pins the disabled hot path: a nil tracer's
// Begin/Retry/End must not allocate (the instrumented core primitives
// extend this assertion in internal/core/alloc_test.go).
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(0, OpSC)
		sp.Retry(CauseInterference)
		sp.AddWait(0)
		sp.End(true)
	}); n != 0 {
		t.Errorf("disabled tracing allocates %.1f objects per op, want 0", n)
	}
}

// TestTracerEnabledBoundedAlloc pins the enabled (and sampled) path:
// recording into the pre-allocated rings must not allocate either — the
// bounded-memory guarantee is that all allocation happens in New.
func TestTracerEnabledBoundedAlloc(t *testing.T) {
	tr := MustNew(Config{Procs: 1, EventsPerProc: 64})
	tr.SetMetrics(obs.NewWithStripes(1))
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(0, OpSC)
		sp.Retry(CauseSpurious)
		sp.End(true)
	}); n != 0 {
		t.Errorf("enabled tracing allocates %.1f objects per op, want 0", n)
	}
	sampled := MustNew(Config{Procs: 1, EventsPerProc: 64, SampleEvery: 8})
	if n := testing.AllocsPerRun(1000, func() {
		sp := sampled.Begin(0, OpSC)
		sp.End(true)
	}); n != 0 {
		t.Errorf("sampled tracing allocates %.1f objects per op, want 0", n)
	}
}
