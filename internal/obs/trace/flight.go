package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
)

// FlightSchema identifies the flight-recorder dump format. The contract
// mirrors llsc-bench/v1 (docs/OBSERVABILITY.md): within v1, fields are
// only ever ADDED, never renamed, retyped, or removed, and the stable
// mnemonic strings of Kind, Op, and Cause are part of the schema.
// Consumers must ignore unknown fields and unknown mnemonic values. A
// breaking change bumps the version string.
const FlightSchema = "llsc-flight/v1"

// FlightConfig describes one flight recorder.
type FlightConfig struct {
	// Dir is the directory dumps are written into (created if missing).
	// Required.
	Dir string
	// Label tags the dumps (workload or cell name); it appears in the
	// JSON and keeps dumps from concurrent cells distinguishable.
	Label string
	// Tracer is the span tracer whose rings are snapshotted. Optional:
	// a dump without spans still carries counters and the machine tail.
	Tracer *Tracer
	// Machine is an optional machine-event recorder whose tail (the
	// recent raw LL/SC/CAS interleaving) is embedded in dumps;
	// internal/trace.Recorder implements it.
	Machine MachineTail
	// Metrics is an optional counter sink; a snapshot is embedded in
	// dumps, and flight_dumps is incremented per dump written.
	Metrics *obs.Metrics
	// MaxDumps caps the total dumps this recorder will write (default
	// 4): a wedged soak loop must not fill the disk with near-identical
	// snapshots.
	MaxDumps int
}

// MachineTail is the source of the raw machine-event tail embedded in
// dumps (the recent low-level interleaving). internal/trace.Recorder
// implements it; the indirection keeps this package importable from
// that one's tests without a cycle.
type MachineTail interface {
	Events() []machine.Event
	Dropped() uint64
}

// Flight is the crash/wedge flight recorder: it sits armed beside a
// running workload and Trigger snapshots everything — trace rings,
// machine tail, counters — into a schema-stable llsc-flight/v1 JSON dump
// plus a Chrome trace-event export, when a supervisor-level invariant
// breaks (watchdog Wedged, linearizability violation, conservation
// audit).
//
// Triggering is deduplicated per reason: the first trigger for a reason
// writes a dump, repeats of the same reason are dropped. This makes "a
// forced wedge produces exactly one dump" a property, not an accident of
// polling frequency.
type Flight struct {
	cfg FlightConfig

	mu        sync.Mutex
	seq       int
	triggered map[string]bool
	dumps     []string
}

// NewFlight creates an armed flight recorder, creating Dir if needed.
func NewFlight(cfg FlightConfig) (*Flight, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("trace: flight recorder requires a dump directory")
	}
	if cfg.MaxDumps <= 0 {
		cfg.MaxDumps = 4
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: flight dir: %w", err)
	}
	return &Flight{cfg: cfg, triggered: make(map[string]bool)}, nil
}

// flightDump is the on-disk llsc-flight/v1 document. Additive changes
// only; see FlightSchema.
type flightDump struct {
	Schema  string `json:"schema"`
	Reason  string `json:"reason"`
	Label   string `json:"label,omitempty"`
	UnixNs  int64  `json:"unix_ns"`
	Seq     int    `json:"seq"`
	Dropped uint64 `json:"spans_dropped"`

	Events []wireEvent `json:"events,omitempty"`

	MachineTail    []wireMachineEvent `json:"machine_tail,omitempty"`
	MachineDropped uint64             `json:"machine_dropped,omitempty"`

	Counters map[string]uint64 `json:"counters,omitempty"`
}

// wireEvent is Event with the enums rendered as their stable mnemonics.
type wireEvent struct {
	Span  uint64 `json:"span,omitempty"`
	T     int64  `json:"t_ns"`
	Dur   int64  `json:"dur_ns,omitempty"`
	Proc  int32  `json:"proc"`
	Kind  string `json:"kind"`
	Op    string `json:"op,omitempty"`
	Cause string `json:"cause,omitempty"`
	OK    bool   `json:"ok,omitempty"`
	Arg   uint64 `json:"arg,omitempty"`
}

func toWire(e Event) wireEvent {
	return wireEvent{
		Span: e.Span, T: e.T, Dur: e.Dur, Proc: e.Proc,
		Kind: e.Kind.String(), Op: e.Op.String(), Cause: e.Cause.String(),
		OK: e.OK, Arg: e.Arg,
	}
}

// wireMachineEvent is machine.Event with the kind as its mnemonic.
type wireMachineEvent struct {
	Seq      uint64 `json:"seq"`
	Proc     int    `json:"proc"`
	Op       string `json:"op"`
	Word     uint64 `json:"word,omitempty"`
	Val      uint64 `json:"val,omitempty"`
	Old      uint64 `json:"old,omitempty"`
	OK       bool   `json:"ok,omitempty"`
	Spurious bool   `json:"spurious,omitempty"`
}

// Trigger snapshots the rings and writes one dump for reason (a short
// slug: "wedged", "linearizability", "conservation"). It returns the
// dump path and true if a dump was written, or "" and false when the
// reason already fired or MaxDumps is reached. Errors writing the dump
// are returned with path ""; the recorder stays armed.
func (f *Flight) Trigger(reason string) (string, bool, error) {
	if f == nil {
		return "", false, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.triggered[reason] || len(f.dumps) >= f.cfg.MaxDumps {
		return "", false, nil
	}
	f.triggered[reason] = true
	f.seq++

	d := flightDump{
		Schema: FlightSchema,
		Reason: reason,
		Label:  f.cfg.Label,
		UnixNs: time.Now().UnixNano(),
		Seq:    f.seq,
	}
	events := f.cfg.Tracer.Snapshot()
	d.Dropped = f.cfg.Tracer.Dropped()
	d.Events = make([]wireEvent, 0, len(events))
	for _, e := range events {
		d.Events = append(d.Events, toWire(e))
	}
	if f.cfg.Machine != nil {
		for _, e := range f.cfg.Machine.Events() {
			d.MachineTail = append(d.MachineTail, wireMachineEvent{
				Seq: e.Seq, Proc: e.Proc, Op: e.Op.String(), Word: e.Word,
				Val: e.Val, Old: e.Old, OK: e.OK, Spurious: e.Spurious,
			})
		}
		d.MachineDropped = f.cfg.Machine.Dropped()
	}
	if f.cfg.Metrics != nil {
		d.Counters = f.cfg.Metrics.Snapshot().Map()
	}

	// The label joins the filename so recorders for different cells can
	// share one dump directory without colliding.
	stem := fmt.Sprintf("flight-%d-%s", f.seq, sanitize(reason))
	if f.cfg.Label != "" {
		stem = fmt.Sprintf("flight-%s-%d-%s", sanitize(f.cfg.Label), f.seq, sanitize(reason))
	}
	base := filepath.Join(f.cfg.Dir, stem)
	path := base + ".json"
	raw, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", false, fmt.Errorf("trace: marshal flight dump: %w", err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return "", false, fmt.Errorf("trace: write flight dump: %w", err)
	}

	// Chrome trace-event export beside the dump; validated before
	// writing so a malformed export can never ship silently.
	chrome, err := ChromeTrace(events)
	if err == nil {
		err = os.WriteFile(base+".chrome.json", chrome, 0o644)
	}
	if err != nil {
		return path, true, fmt.Errorf("trace: chrome export: %w", err)
	}

	f.cfg.Metrics.Inc(obs.CtrFlightDumps)
	f.dumps = append(f.dumps, path)
	return path, true, nil
}

// Dumps returns the paths of the dumps written so far. Safe on nil.
func (f *Flight) Dumps() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.dumps))
	copy(out, f.dumps)
	return out
}

// sanitize keeps reason slugs filename-safe.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	if len(out) == 0 {
		return "trigger"
	}
	return string(out)
}
