// Package trace is the span/event layer of the observability substrate:
// a lock-free, per-process ring-buffer recorder of operation *lifetimes*,
// where internal/obs alone records aggregates. A span covers one
// algorithm-level operation (an SC, a CAS, a Store loop, a transaction)
// from begin to end; inside it the instrumented retry loops record each
// retry iteration with its failure cause (interference vs spurious), each
// contention.Waiter wait with its duration, and each helping event
// (Figure 6 copy fixes). Crash, restart, and watchdog-wedge transitions
// are recorded as standalone events. The result answers the question the
// counters cannot: *which* LL..SC lifetime stalled, who interfered, and
// what happened in the steps before a wedge.
//
// The paper's claims are per-operation temporal claims — an SC is
// "constant time after the last spurious failure" (Theorems 1, 3), and
// lock-freedom means some operation always completes — so the evidence
// for them is per-operation timelines, not totals.
//
// Cost model, mirroring internal/obs:
//
//   - Nil is off. Every method is safe on a nil *Tracer and on the zero
//     Span; the disabled hot path is a single branch and 0 allocations
//     (asserted by TestTracerDisabledZeroAlloc and the extended
//     internal/core/alloc_test.go).
//   - Recording never allocates and never locks: rings are fixed arrays
//     of seqlock-protected slots written with atomics, so a snapshot
//     taken while processors are recording (the flight-recorder case)
//     is race-free and simply skips slots caught mid-write.
//   - Memory is bounded: capacity is fixed at construction; when a ring
//     wraps, the oldest events are overwritten and counted (trace_drops).
//   - Sampling bounds the enabled cost: SampleEvery = N records every
//     N-th offered span; skipped spans cost one atomic add
//     (trace_sampled_out) and record nothing.
//
// One writer caveat, accepted deliberately: per-slot seqlock versions are
// derived from the global write cursor, so a writer that stalls for an
// entire ring lap while another writer reclaims its slot can interleave
// field writes. Readers detect the torn slot by its version mismatch and
// drop it — at worst one diagnostic event per lap is lost, never a data
// race and never a torn read surfacing as a plausible event.
package trace

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Ambient is the proc value for spans recorded without a paper-style
// process identity (mirrors contention.Ambient). Such events land in the
// shared ambient ring.
const Ambient = -1

// Kind classifies one trace event.
type Kind uint8

const (
	// KindBegin opens a span: an algorithm-level operation started.
	KindBegin Kind = iota + 1
	// KindEnd closes a span; Dur is the whole operation's wall time and
	// OK its outcome. A span with a Begin and no End was in flight when
	// the ring was snapshotted — exactly the stalled-lifetime evidence a
	// flight dump is for.
	KindEnd
	// KindRetry is one failed attempt inside a span's retry loop; Cause
	// says why and Dur is the time since the previous attempt boundary.
	KindRetry
	// KindWait is one contention.Waiter wait; Dur is its duration.
	KindWait
	// KindHelp is helping work performed for another process (Figure 6
	// copy fixes, universal-construction helping); Arg counts units.
	KindHelp
	// KindCrash is a processor crash (fault injection or lease expiry).
	KindCrash
	// KindRestart is a processor restart (Machine.Restart).
	KindRestart
	// KindWedge is a recovery.Watchdog Wedged verdict.
	KindWedge
)

// String returns the kind's stable mnemonic (used in flight dumps).
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindEnd:
		return "end"
	case KindRetry:
		return "retry"
	case KindWait:
		return "wait"
	case KindHelp:
		return "help"
	case KindCrash:
		return "crash"
	case KindRestart:
		return "restart"
	case KindWedge:
		return "wedge"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op names the algorithm-level operation a span covers.
type Op uint8

const (
	OpNone Op = iota
	OpLL
	OpVL
	OpSC
	OpCAS
	OpRead
	OpStore
	OpApply
	OpTx
	OpOther
)

// String returns the op's stable mnemonic (used in flight dumps).
func (o Op) String() string {
	switch o {
	case OpNone:
		return ""
	case OpLL:
		return "ll"
	case OpVL:
		return "vl"
	case OpSC:
		return "sc"
	case OpCAS:
		return "cas"
	case OpRead:
		return "read"
	case OpStore:
		return "store"
	case OpApply:
		return "apply"
	case OpTx:
		return "tx"
	case OpOther:
		return "op"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Cause classifies a retry, mirroring contention.Cause / the obs
// taxonomy's failure split.
type Cause uint8

const (
	CauseNone Cause = iota
	// CauseInterference: another process's SC succeeded.
	CauseInterference
	// CauseSpurious: the underlying RSC failed spuriously.
	CauseSpurious
)

// String returns the cause's stable mnemonic (used in flight dumps).
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return ""
	case CauseInterference:
		return "interference"
	case CauseSpurious:
		return "spurious"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// Event is one decoded trace event. T is nanoseconds since the tracer's
// construction (a monotonic, per-tracer timebase); Dur is the event's
// duration where meaningful (End: whole span; Retry: time since the
// previous attempt boundary; Wait/Help: the wait/help itself).
type Event struct {
	Span  uint64
	T     int64
	Dur   int64
	Proc  int32
	Kind  Kind
	Op    Op
	Cause Cause
	OK    bool
	Arg   uint64
}

// slot is one seqlock-protected ring entry. seq is 2·idx+1 while the
// writer owning write index idx is mid-write and 2·idx+2 once that write
// is complete; readers reject any other value.
type slot struct {
	seq  atomic.Uint64
	span atomic.Uint64
	t    atomic.Uint64
	dur  atomic.Uint64
	meta atomic.Uint64
	arg  atomic.Uint64
}

// meta packing: bits 0-31 proc (int32), 32-39 kind, 40-47 op, 48-55
// cause, 56 ok.
func packMeta(e Event) uint64 {
	m := uint64(uint32(e.Proc))
	m |= uint64(e.Kind) << 32
	m |= uint64(e.Op) << 40
	m |= uint64(e.Cause) << 48
	if e.OK {
		m |= 1 << 56
	}
	return m
}

func unpackMeta(m uint64, e *Event) {
	e.Proc = int32(uint32(m))
	e.Kind = Kind(m >> 32)
	e.Op = Op(m >> 40)
	e.Cause = Cause(m >> 48)
	e.OK = m>>56&1 == 1
}

// ring is one bounded event buffer. cursor counts events ever written;
// slot i holds write index idx with idx & mask == i.
type ring struct {
	cursor atomic.Uint64
	mask   uint64
	slots  []slot
}

func newRing(capacity int) *ring {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &ring{mask: uint64(c - 1), slots: make([]slot, c)}
}

func (r *ring) record(e Event) (dropped bool) {
	idx := r.cursor.Add(1) - 1
	s := &r.slots[idx&r.mask]
	s.seq.Store(2*idx + 1)
	s.span.Store(e.Span)
	s.t.Store(uint64(e.T))
	s.dur.Store(uint64(e.Dur))
	s.meta.Store(packMeta(e))
	s.arg.Store(e.Arg)
	s.seq.Store(2*idx + 2)
	return idx >= uint64(len(r.slots))
}

// snapshot appends the ring's retained events (oldest first) to out,
// skipping slots caught mid-write or already reclaimed by a newer lap.
func (r *ring) snapshot(out []Event) []Event {
	n := r.cursor.Load()
	start := uint64(0)
	if n > uint64(len(r.slots)) {
		start = n - uint64(len(r.slots))
	}
	for idx := start; idx < n; idx++ {
		s := &r.slots[idx&r.mask]
		want := 2*idx + 2
		if s.seq.Load() != want {
			continue
		}
		var e Event
		e.Span = s.span.Load()
		e.T = int64(s.t.Load())
		e.Dur = int64(s.dur.Load())
		unpackMeta(s.meta.Load(), &e)
		e.Arg = s.arg.Load()
		if s.seq.Load() != want {
			continue
		}
		out = append(out, e)
	}
	return out
}

func (r *ring) dropped() uint64 {
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return n - uint64(len(r.slots))
	}
	return 0
}

// Attribution is an optional set of histograms a tracer feeds at span
// end, the latency-attribution payload of bench records: where did the
// operation's wall time go? Each non-nil histogram receives exactly one
// observation per ended span (zeros included, so counts stay aligned
// with the span count and means are per-operation).
type Attribution struct {
	// OpNs is the whole span duration.
	OpNs *obs.Hist
	// RetryNs is the time spent in failed attempts (attempt boundaries
	// to the next attempt, excluding waits).
	RetryNs *obs.Hist
	// WaitNs is the time spent in contention.Waiter waits.
	WaitNs *obs.Hist
	// HelpNs is the time spent helping other processes.
	HelpNs *obs.Hist
}

// Config sizes a Tracer.
type Config struct {
	// Procs is the number of dedicated per-process rings. Spans begun
	// with proc in [0, Procs) record into their process's ring,
	// single-writer; everything else shares the ambient ring.
	Procs int
	// EventsPerProc is each ring's capacity in events, rounded up to a
	// power of two. Default 1024. Memory is bounded by
	// (Procs+1) · EventsPerProc · 48 bytes.
	EventsPerProc int
	// SampleEvery records every N-th offered span (1 = all, the
	// default). Skipped spans are counted (trace_sampled_out) and cost
	// one atomic add.
	SampleEvery uint64
}

// DefaultEventsPerProc is the ring capacity used when Config leaves
// EventsPerProc zero.
const DefaultEventsPerProc = 1024

// Tracer records spans and events into per-process rings. A nil *Tracer
// is valid everywhere and means "tracing disabled": Begin returns the
// inert zero Span and every other method is a no-op.
type Tracer struct {
	rings       []*ring // rings[0..procs-1] per-proc, rings[procs] ambient
	procs       int
	sampleEvery uint64
	sampleCtr   atomic.Uint64
	spanSeq     atomic.Uint64
	t0          time.Time
	mets        *obs.Metrics
	att         *Attribution
}

// New creates a tracer. Procs < 0 or a zero capacity after defaulting is
// rejected.
func New(cfg Config) (*Tracer, error) {
	if cfg.Procs < 0 {
		return nil, fmt.Errorf("trace: Procs must be >= 0, got %d", cfg.Procs)
	}
	if cfg.EventsPerProc == 0 {
		cfg.EventsPerProc = DefaultEventsPerProc
	}
	if cfg.EventsPerProc < 1 {
		return nil, fmt.Errorf("trace: EventsPerProc must be >= 1, got %d", cfg.EventsPerProc)
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 1
	}
	t := &Tracer{
		rings:       make([]*ring, cfg.Procs+1),
		procs:       cfg.Procs,
		sampleEvery: cfg.SampleEvery,
		t0:          time.Now(),
	}
	for i := range t.rings {
		t.rings[i] = newRing(cfg.EventsPerProc)
	}
	return t, nil
}

// MustNew is New for statically valid configs; it panics on error.
func MustNew(cfg Config) *Tracer {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// SetMetrics attaches an optional metrics sink (nil disables): spans,
// events, drops, and sampled-out spans feed the trace_* counters. Safe
// on nil tracers. Attach before the tracer is shared.
func (t *Tracer) SetMetrics(m *obs.Metrics) {
	if t != nil {
		t.mets = m
	}
}

// SetAttribution attaches optional latency-attribution histograms fed at
// span end. Safe on nil tracers. Attach before the tracer is shared.
func (t *Tracer) SetAttribution(a *Attribution) {
	if t != nil {
		t.att = a
	}
}

// now returns nanoseconds since construction (monotonic).
func (t *Tracer) now() int64 { return int64(time.Since(t.t0)) }

func (t *Tracer) ringFor(proc int) *ring {
	if proc >= 0 && proc < t.procs {
		return t.rings[proc]
	}
	return t.rings[t.procs]
}

func (t *Tracer) inc(proc int, c obs.Counter) {
	if proc >= 0 {
		t.mets.IncProc(proc, c)
	} else {
		t.mets.Inc(c)
	}
}

func (t *Tracer) record(r *ring, proc int, e Event) {
	if r.record(e) {
		t.inc(proc, obs.CtrTraceDrops)
	}
	t.inc(proc, obs.CtrTraceEvents)
}

// Begin opens a span for one algorithm-level operation by process proc
// (or Ambient). On a nil tracer, or when sampling skips the span, it
// returns the inert zero Span — the single-branch disabled path. The
// returned Span is a value; keep it on the caller's stack and do not
// copy it after the first method call.
//
// The nil check lives in this thin wrapper so it inlines at every call
// site: tracing-off figure code pays one predicted branch, not a call.
func (t *Tracer) Begin(proc int, op Op) Span {
	if t == nil {
		return Span{}
	}
	return t.begin(proc, op)
}

func (t *Tracer) begin(proc int, op Op) Span {
	if t.sampleEvery > 1 && t.sampleCtr.Add(1)%t.sampleEvery != 0 {
		t.inc(proc, obs.CtrTraceSampledOut)
		return Span{}
	}
	now := t.now()
	s := Span{
		t:        t,
		ring:     t.ringFor(proc),
		id:       t.spanSeq.Add(1),
		proc:     int32(proc),
		op:       op,
		start:    now,
		lastMark: now,
	}
	t.record(s.ring, proc, Event{Span: s.id, T: now, Proc: s.proc, Kind: KindBegin, Op: op})
	t.inc(proc, obs.CtrTraceSpans)
	return s
}

// Emit records a standalone (span-less) event: crash, restart, wedge, or
// help performed outside any traced operation. Safe on nil tracers.
func (t *Tracer) Emit(proc int, k Kind, op Op, dur time.Duration, arg uint64) {
	if t == nil {
		return
	}
	t.record(t.ringFor(proc), proc, Event{
		T: t.now(), Dur: int64(dur), Proc: int32(proc), Kind: k, Op: op, Arg: arg,
	})
}

// Transition records a lifecycle transition (KindCrash, KindRestart,
// KindWedge) for process proc. Safe on nil tracers.
func (t *Tracer) Transition(proc int, k Kind) { t.Emit(proc, k, OpNone, 0, 0) }

// Snapshot returns every retained event across all rings, oldest first
// per ring, rings concatenated in proc order (ambient last). It is safe
// to call while processors are recording; slots caught mid-write are
// skipped.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, r := range t.rings {
		out = r.snapshot(out)
	}
	return out
}

// Dropped returns the total number of events overwritten before they
// could be snapshotted. Safe on nil.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var d uint64
	for _, r := range t.rings {
		d += r.dropped()
	}
	return d
}

// Spans returns the number of spans begun (after sampling). Safe on nil.
func (t *Tracer) Spans() uint64 {
	if t == nil {
		return 0
	}
	return t.spanSeq.Load()
}

// Span is the per-operation recording handle, a stack value returned by
// Begin. The zero Span is inert: every method is a cheap no-op, so call
// sites need no conditionals. Methods use a pointer receiver only to
// mutate the accumulators in place; the value must stay on one
// goroutine's stack.
type Span struct {
	t        *Tracer
	ring     *ring
	id       uint64
	proc     int32
	op       Op
	start    int64
	lastMark int64
	retryNs  int64
	waitNs   int64
	helpNs   int64
	retries  uint32
}

// Active reports whether the span is recording (false for the zero Span).
func (s *Span) Active() bool { return s.t != nil }

// Retry records one failed attempt with its cause; the attempt's
// duration is the time since the previous attempt boundary (Begin, the
// last Retry, or the end of the last wait).
func (s *Span) Retry(c Cause) {
	if s.t == nil {
		return
	}
	now := s.t.now()
	d := now - s.lastMark
	s.lastMark = now
	s.retryNs += d
	s.retries++
	s.t.record(s.ring, int(s.proc), Event{
		Span: s.id, T: now, Dur: d, Proc: s.proc, Kind: KindRetry, Op: s.op, Cause: c,
	})
}

// AddWait records one contention wait of duration d (as returned by
// contention.Waiter.WaitTimed) and excludes it from subsequent retry
// attribution. Zero-duration waits are attributed but not recorded as
// events.
func (s *Span) AddWait(d time.Duration) {
	if s.t == nil {
		return
	}
	now := s.t.now()
	s.lastMark = now
	s.waitNs += int64(d)
	if d == 0 {
		return
	}
	s.t.record(s.ring, int(s.proc), Event{
		Span: s.id, T: now, Dur: int64(d), Proc: s.proc, Kind: KindWait, Op: s.op,
	})
}

// AddHelp records helping work of duration d covering units items
// (Figure 6 copy fixes, universal helping) performed inside this span.
func (s *Span) AddHelp(units uint64, d time.Duration) {
	if s.t == nil {
		return
	}
	now := s.t.now()
	s.lastMark = now
	s.helpNs += int64(d)
	s.t.record(s.ring, int(s.proc), Event{
		Span: s.id, T: now, Dur: int64(d), Proc: s.proc, Kind: KindHelp, Op: s.op, Arg: units,
	})
}

// Retries returns the number of failed attempts recorded so far.
func (s *Span) Retries() int { return int(s.retries) }

// End closes the span with its outcome and feeds the attribution
// histograms. Further method calls on the span are no-ops. As with
// Begin, the nil check inlines so the inert zero Span costs a branch.
func (s *Span) End(ok bool) {
	if s.t == nil {
		return
	}
	s.end(ok)
}

func (s *Span) end(ok bool) {
	t := s.t
	s.t = nil
	now := t.now()
	dur := now - s.start
	t.record(s.ring, int(s.proc), Event{
		Span: s.id, T: now, Dur: dur, Proc: s.proc, Kind: KindEnd, Op: s.op, OK: ok,
	})
	if a := t.att; a != nil {
		a.OpNs.Observe(uint64(dur))
		a.RetryNs.Observe(uint64(s.retryNs))
		a.WaitNs.Observe(uint64(s.waitNs))
		a.HelpNs.Observe(uint64(s.helpNs))
	}
}
