package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
)

// stubTail is a canned MachineTail.
type stubTail struct {
	events  []machine.Event
	dropped uint64
}

func (s *stubTail) Events() []machine.Event { return s.events }
func (s *stubTail) Dropped() uint64         { return s.dropped }

func TestFlightDumpContents(t *testing.T) {
	dir := t.TempDir()
	tr := MustNew(Config{Procs: 2, EventsPerProc: 64})
	met := obs.NewWithStripes(1)
	tr.SetMetrics(met)

	sp := tr.Begin(0, OpSC)
	sp.Retry(CauseInterference)
	sp.AddWait(3 * time.Microsecond)
	sp.End(true)
	inflight := tr.Begin(1, OpCAS) // left open: must surface in the dump
	_ = inflight

	tail := &stubTail{
		events: []machine.Event{
			{Seq: 1, Proc: 0, Op: machine.OpRLL, Word: 2, Val: 7},
			{Seq: 2, Proc: 0, Op: machine.OpRSC, Word: 2, Val: 9, OK: true},
		},
		dropped: 5,
	}
	fl, err := NewFlight(FlightConfig{Dir: dir, Label: "cell-0", Tracer: tr, Machine: tail, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}

	path, wrote, err := fl.Trigger("wedged")
	if err != nil {
		t.Fatal(err)
	}
	if !wrote || path == "" {
		t.Fatal("first trigger must write a dump")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d flightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Schema != FlightSchema {
		t.Errorf("schema = %q, want %q", d.Schema, FlightSchema)
	}
	if d.Reason != "wedged" || d.Label != "cell-0" || d.Seq != 1 {
		t.Errorf("header = %+v", d)
	}
	// begin + retry + wait + end + in-flight begin = 5 span events.
	if len(d.Events) != 5 {
		t.Errorf("got %d events, want 5", len(d.Events))
	}
	kinds := map[string]int{}
	for _, e := range d.Events {
		kinds[e.Kind]++
	}
	if kinds["begin"] != 2 || kinds["retry"] != 1 || kinds["wait"] != 1 || kinds["end"] != 1 {
		t.Errorf("kind histogram = %v", kinds)
	}
	if len(d.MachineTail) != 2 || d.MachineTail[0].Op != "RLL" || d.MachineTail[1].Op != "RSC" {
		t.Errorf("machine tail = %+v", d.MachineTail)
	}
	if d.MachineDropped != 5 {
		t.Errorf("machine_dropped = %d, want 5", d.MachineDropped)
	}
	if d.Counters["flight_dumps"] != 0 {
		// The counter snapshot is taken before the increment: dump N
		// reports N-1 prior dumps.
		t.Errorf("counters in dump 1 report %d flight_dumps, want 0", d.Counters["flight_dumps"])
	}
	if met.Snapshot().Get(obs.CtrFlightDumps) != 1 {
		t.Error("flight_dumps counter not incremented")
	}

	// Chrome sidecar exists, validates, and carries the open "B" span.
	chrome, err := os.ReadFile(strings.TrimSuffix(path, ".json") + ".chrome.json")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateChrome(chrome); err != nil || n == 0 {
		t.Fatalf("chrome sidecar invalid: n=%d err=%v", n, err)
	}
	if !strings.Contains(string(chrome), `"ph": "B"`) {
		t.Error("chrome export missing open begin for in-flight span")
	}
}

func TestFlightDedupeAndCap(t *testing.T) {
	dir := t.TempDir()
	tr := MustNew(Config{Procs: 1, EventsPerProc: 16})
	fl, err := NewFlight(FlightConfig{Dir: dir, Tracer: tr, MaxDumps: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Same reason twice: exactly one dump.
	if _, wrote, _ := fl.Trigger("wedged"); !wrote {
		t.Fatal("first wedged trigger must write")
	}
	if _, wrote, _ := fl.Trigger("wedged"); wrote {
		t.Error("second wedged trigger must be deduplicated")
	}
	if len(fl.Dumps()) != 1 {
		t.Fatalf("dumps = %v, want exactly 1", fl.Dumps())
	}

	// Distinct reasons write until the cap.
	if _, wrote, _ := fl.Trigger("linearizability"); !wrote {
		t.Error("distinct reason must write")
	}
	if _, wrote, _ := fl.Trigger("conservation"); wrote {
		t.Error("MaxDumps=2 must refuse a third dump")
	}
	if got := len(fl.Dumps()); got != 2 {
		t.Errorf("dumps = %d, want 2", got)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 2 dumps × (json + chrome sidecar).
	if len(entries) != 4 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("dir has %v, want 4 files", names)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var fl *Flight
	if path, wrote, err := fl.Trigger("wedged"); path != "" || wrote || err != nil {
		t.Error("nil flight Trigger must be a no-op")
	}
	if fl.Dumps() != nil {
		t.Error("nil flight Dumps must be nil")
	}
	if _, err := NewFlight(FlightConfig{}); err == nil {
		t.Error("NewFlight must require Dir")
	}
}

func TestFlightSanitizesReason(t *testing.T) {
	dir := t.TempDir()
	tr := MustNew(Config{Procs: 1, EventsPerProc: 16})
	fl, err := NewFlight(FlightConfig{Dir: dir, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	path, wrote, err := fl.Trigger("lin check: round 3/5")
	if err != nil || !wrote {
		t.Fatalf("trigger: wrote=%v err=%v", wrote, err)
	}
	base := filepath.Base(path)
	if strings.ContainsAny(base, ":/ ") {
		t.Errorf("unsanitized dump name %q", base)
	}
}
