package trace

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/machine"
)

func TestChromeTraceSpans(t *testing.T) {
	tr := MustNew(Config{Procs: 2, EventsPerProc: 64})
	done := tr.Begin(0, OpSC)
	done.Retry(CauseSpurious)
	done.AddWait(2 * time.Microsecond)
	done.End(true)
	open := tr.Begin(1, OpCAS)
	_ = open
	tr.Transition(Ambient, KindWedge)

	raw, err := ChromeTrace(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	// X for ended span, X for wait, i for retry, B for in-flight,
	// i (global) for the wedge; the ended span's begin is folded away.
	byPh := map[string][]chromeEvent{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph] = append(byPh[e.Ph], e)
	}
	if len(byPh["X"]) != 2 {
		t.Errorf("got %d X events, want 2 (span + wait)", len(byPh["X"]))
	}
	if len(byPh["B"]) != 1 || byPh["B"][0].Name != "cas (in flight)" || byPh["B"][0].Tid != 1 {
		t.Errorf("B events = %+v", byPh["B"])
	}
	if len(byPh["i"]) != 2 {
		t.Errorf("got %d instants, want 2 (retry + wedge)", len(byPh["i"]))
	}
	for _, e := range byPh["i"] {
		if e.Name == "wedge" {
			if e.S != "g" || e.Tid != ambientTid {
				t.Errorf("wedge instant = %+v, want global scope on ambient tid", e)
			}
		}
	}
	for _, e := range doc.TraceEvents {
		if e.Ts < 0 {
			t.Errorf("negative ts in %+v", e)
		}
	}
}

func TestMachineChromeTrace(t *testing.T) {
	events := []machine.Event{
		{Seq: 1, Proc: 0, Op: machine.OpRLL, Word: 3, Val: 10},
		{Seq: 2, Proc: 1, Op: machine.OpCAS, Word: 3, Old: 10, Val: 11, OK: true},
		{Seq: 3, Proc: 0, Op: machine.OpRSC, Word: 3, Val: 12, OK: false, Spurious: true},
		{Seq: 4, Proc: 0, Op: machine.OpCrash, Val: 1},
	}
	raw, err := MachineChromeTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(raw)
	if err != nil || n != 4 {
		t.Fatalf("validate: n=%d err=%v", n, err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents[1].Name != "CAS" || doc.TraceEvents[1].Args["ok"] != true {
		t.Errorf("CAS event = %+v", doc.TraceEvents[1])
	}
	if doc.TraceEvents[2].Args["spurious"] != true {
		t.Errorf("RSC event lost spurious flag: %+v", doc.TraceEvents[2])
	}
	if doc.TraceEvents[0].Ts != 1 || doc.TraceEvents[3].Ts != 4 {
		t.Error("machine events must use Seq as the timebase")
	}
}

func TestValidateChromeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", `{"traceEvents": [`},
		{"missing name", `{"traceEvents": [{"ph": "X", "ts": 1}]}`},
		{"bad phase", `{"traceEvents": [{"name": "x", "ph": "Z", "ts": 1}]}`},
		{"negative ts", `{"traceEvents": [{"name": "x", "ph": "X", "ts": -1}]}`},
	}
	for _, c := range cases {
		if _, err := ValidateChrome([]byte(c.data)); err == nil {
			t.Errorf("%s: ValidateChrome accepted %q", c.name, c.data)
		}
	}
	if n, err := ValidateChrome([]byte(`{"traceEvents": []}`)); err != nil || n != 0 {
		t.Errorf("empty document must validate: n=%d err=%v", n, err)
	}
}

func TestMachineObserverMapsLifecycle(t *testing.T) {
	tr := MustNew(Config{Procs: 2, EventsPerProc: 16})
	ob := tr.MachineObserver()
	ob(machine.Event{Proc: 0, Op: machine.OpCrash, Val: 1})
	ob(machine.Event{Proc: 0, Op: machine.OpRestart, Val: 2})
	ob(machine.Event{Proc: 1, Op: machine.OpRSC, Word: 0, Val: 5}) // ignored
	events := tr.Snapshot()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (SC must be ignored)", len(events))
	}
	if events[0].Kind != KindCrash || events[1].Kind != KindRestart {
		t.Errorf("kinds = %v, %v", events[0].Kind, events[1].Kind)
	}
	var nilTr *Tracer
	if nilTr.MachineObserver() != nil {
		t.Error("nil tracer must yield nil observer")
	}
}
