package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/machine"
)

// Chrome trace-event export: the dump format chrome://tracing, Perfetto,
// and speedscope all load. We emit the JSON-object form
// {"traceEvents": [...]} with "X" complete events for ended spans, "B"
// begin events for spans still in flight at snapshot time (the viewer
// renders them open-ended — exactly the stalled-operation signal), and
// "i" instant events for retries, waits, helps, and lifecycle
// transitions. Timestamps and durations are microseconds (float), the
// unit the format requires; pid is always 0 and tid is the process id
// (ambient events use tid ambientTid so they stay visible on their own
// row rather than vanishing at a negative tid).

// ambientTid is the Chrome thread id used for Ambient (-1) events.
const ambientTid = 9999

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the enclosing JSON object.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit,omitempty"`
}

func chromeTid(proc int32) int {
	if proc < 0 {
		return ambientTid
	}
	return int(proc)
}

const usPerNs = 1.0 / 1e3

// chromeEvents converts span-layer events. Ended spans become "X"
// complete events spanning [end-dur, end]; begins whose span id never
// ends in the snapshot become open "B" events; everything else becomes
// an instant.
func chromeEvents(events []Event) []chromeEvent {
	ended := make(map[uint64]bool)
	for _, e := range events {
		if e.Kind == KindEnd {
			ended[e.Span] = true
		}
	}
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{Pid: 0, Tid: chromeTid(e.Proc)}
		switch e.Kind {
		case KindBegin:
			if ended[e.Span] {
				continue // covered by the End's "X" event
			}
			ce.Name = e.Op.String() + " (in flight)"
			ce.Ph = "B"
			ce.Ts = float64(e.T) * usPerNs
			ce.Args = map[string]any{"span": e.Span}
		case KindEnd:
			ce.Name = e.Op.String()
			ce.Ph = "X"
			ce.Ts = float64(e.T-e.Dur) * usPerNs
			ce.Dur = float64(e.Dur) * usPerNs
			ce.Args = map[string]any{"span": e.Span, "ok": e.OK}
		case KindRetry:
			ce.Name = "retry/" + e.Cause.String()
			ce.Ph = "i"
			ce.Ts = float64(e.T) * usPerNs
			ce.S = "t"
			ce.Args = map[string]any{"span": e.Span, "dur_ns": e.Dur}
		case KindWait:
			ce.Name = "wait"
			ce.Ph = "X"
			ce.Ts = float64(e.T-e.Dur) * usPerNs
			ce.Dur = float64(e.Dur) * usPerNs
			ce.Args = map[string]any{"span": e.Span}
		case KindHelp:
			ce.Name = "help"
			ce.Ph = "i"
			ce.Ts = float64(e.T) * usPerNs
			ce.S = "t"
			ce.Args = map[string]any{"span": e.Span, "units": e.Arg, "dur_ns": e.Dur}
		case KindCrash, KindRestart, KindWedge:
			ce.Name = e.Kind.String()
			ce.Ph = "i"
			ce.Ts = float64(e.T) * usPerNs
			ce.S = "g" // global scope: lifecycle transitions span the view
		default:
			ce.Name = e.Kind.String()
			ce.Ph = "i"
			ce.Ts = float64(e.T) * usPerNs
			ce.S = "t"
		}
		out = append(out, ce)
	}
	return out
}

// ChromeTrace renders span-layer events as a validated Chrome
// trace-event JSON document.
func ChromeTrace(events []Event) ([]byte, error) {
	raw, err := json.MarshalIndent(chromeDoc{TraceEvents: chromeEvents(events), DisplayUnit: "ms"}, "", " ")
	if err != nil {
		return nil, err
	}
	if _, err := ValidateChrome(raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// WriteChrome writes span-layer events as Chrome trace-event JSON.
func WriteChrome(w io.Writer, events []Event) error {
	raw, err := ChromeTrace(events)
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// MachineChromeTrace renders a raw machine-event stream (the
// internal/trace.Recorder payload) as a validated Chrome trace-event
// document. Machine events carry a logical sequence number, not wall
// time, so each event becomes a 1-"µs" complete event at ts = Seq: the
// viewer then shows the exact interleaving with one tick per
// shared-memory operation, which is the right timebase for a
// deterministic simulation.
func MachineChromeTrace(events []machine.Event) ([]byte, error) {
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		name := e.Op.String()
		args := map[string]any{"word": e.Word, "val": e.Val}
		switch e.Op {
		case machine.OpCAS:
			args["old"] = e.Old
			args["ok"] = e.OK
		case machine.OpRSC:
			args["ok"] = e.OK
			if e.Spurious {
				args["spurious"] = true
			}
		}
		out = append(out, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   float64(e.Seq),
			Dur:  1,
			Pid:  0,
			Tid:  chromeTid(int32(e.Proc)),
			Args: args,
		})
	}
	raw, err := json.MarshalIndent(chromeDoc{TraceEvents: out}, "", " ")
	if err != nil {
		return nil, err
	}
	if _, err := ValidateChrome(raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// WriteMachineChrome writes machine events as Chrome trace-event JSON.
func WriteMachineChrome(w io.Writer, events []machine.Event) error {
	raw, err := MachineChromeTrace(events)
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// MachineObserver returns a machine.Config.Observer callback mapping
// the machine's lifecycle events (OpCrash, OpRestart) to trace
// transitions; other machine events are ignored — the raw operation
// stream belongs in internal/trace.Recorder. Tee it beside a metrics
// observer with obs.TeeObservers. Returns nil on a nil tracer, which
// TeeObservers filters out.
func (t *Tracer) MachineObserver() func(machine.Event) {
	if t == nil {
		return nil
	}
	return func(e machine.Event) {
		switch e.Op {
		case machine.OpCrash:
			t.Transition(e.Proc, KindCrash)
		case machine.OpRestart:
			t.Transition(e.Proc, KindRestart)
		}
	}
}

// ValidateChrome parses data as a Chrome trace-event document and
// returns the event count. It checks the structural invariants the
// viewers rely on: a traceEvents array whose entries all carry a name, a
// known phase, and a non-negative timestamp. make trace-smoke and the
// flight recorder run every export through this before shipping it.
func ValidateChrome(data []byte) (int, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("trace: chrome export is not valid JSON: %w", err)
	}
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return 0, fmt.Errorf("trace: chrome event %d has no name", i)
		}
		switch e.Ph {
		case "X", "B", "E", "i", "M":
		default:
			return 0, fmt.Errorf("trace: chrome event %d has unknown phase %q", i, e.Ph)
		}
		if e.Ts < 0 {
			return 0, fmt.Errorf("trace: chrome event %d has negative ts %v", i, e.Ts)
		}
	}
	return len(doc.TraceEvents), nil
}
