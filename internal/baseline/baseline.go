// Package baseline implements the constructions the paper positions itself
// against, for use in the comparison experiments (E5, E7, E8):
//
//   - MutexLLSC: lock-based LL/VL/SC — footnote 1's "straightforward"
//     implementation that "defeats the purpose of the non-blocking
//     algorithms that use them". It is blocking: a stalled lock-holder
//     stalls everyone.
//   - PerVarBounded: the "naive generalization" of a single-variable
//     bounded-tag construction to T variables (Section 4): one full
//     instance of the Figure 7 machinery per variable, costing Θ(N²)
//     space per variable and hence Θ(N²T) total — the space behaviour of
//     Anderson–Moir [2] that Figure 7's shared announce array eliminates.
//   - CyclicTag: an ablation, not a published algorithm — bounded tags
//     cycled without the paper's feedback mechanism. It is intentionally
//     unsound: experiment E7 uses it to show the feedback machinery is
//     load-bearing, not decorative.
//   - IsraeliRappoport: a valid-bits-in-the-word construction in the
//     style of Israeli & Rappoport [10], which needs N bits of every
//     word — the "unrealistic assumptions about the size of machine
//     words" the paper criticizes (it caps the process count and
//     squeezes the data field).
package baseline

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/word"
)

// MutexLLSC is a lock-based LL/VL/SC variable (footnote 1's baseline).
type MutexLLSC struct {
	mu    sync.Mutex
	val   uint64
	valid []bool
}

// NewMutexLLSC creates a lock-based variable for n processes.
func NewMutexLLSC(n int, initial uint64) (*MutexLLSC, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: process count must be at least 1, got %d", n)
	}
	return &MutexLLSC{val: initial, valid: make([]bool, n)}, nil
}

// Read returns the current value.
func (v *MutexLLSC) Read() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.val
}

// LL performs process p's load-linked.
func (v *MutexLLSC) LL(p int) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.valid[p] = true
	return v.val
}

// VL reports whether process p's last LL is still valid.
func (v *MutexLLSC) VL(p int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.valid[p]
}

// SC attempts process p's store-conditional.
func (v *MutexLLSC) SC(p int, newval uint64) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.valid[p] {
		return false
	}
	v.val = newval
	for i := range v.valid {
		v.valid[i] = false
	}
	return true
}

// FootprintWords reports the per-variable storage in 64-bit words
// (approximating the mutex as one word, as a futex-based lock would be).
func (v *MutexLLSC) FootprintWords() int { return 2 + len(v.valid) }

// LockForDemo seizes the variable's lock, closes held, and releases only
// when release is closed. It exists for the stalled-process demonstration
// (experiment E8b): a stalled lock-holder blocks every other process,
// which is precisely the failure mode non-blocking algorithms avoid.
func (v *MutexLLSC) LockForDemo(held chan<- struct{}, release <-chan struct{}) {
	v.mu.Lock()
	defer v.mu.Unlock()
	close(held)
	<-release
}

// PerVarBounded instantiates the full Figure 7 machinery once per
// variable (with k=1), reproducing the Θ(N²T) space behaviour of applying
// a single-variable bounded-tag construction to T variables.
type PerVarBounded struct {
	n int
}

// NewPerVarBounded returns a factory for per-variable bounded-tag
// variables over n processes.
func NewPerVarBounded(n int) (*PerVarBounded, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: process count must be at least 1, got %d", n)
	}
	return &PerVarBounded{n: n}, nil
}

// PerVarBoundedVar is one variable with its own private Figure 7 instance.
type PerVarBoundedVar struct {
	family *core.BoundedFamily
	v      *core.BoundedVar
}

// NewVar creates a variable with a dedicated bounded-tag family.
func (b *PerVarBounded) NewVar(initial uint64) (*PerVarBoundedVar, error) {
	family, err := core.NewBoundedFamily(core.BoundedConfig{Procs: b.n, K: 1})
	if err != nil {
		return nil, err
	}
	v, err := family.NewVar(initial)
	if err != nil {
		return nil, err
	}
	return &PerVarBoundedVar{family: family, v: v}, nil
}

// Read returns the current value.
func (pv *PerVarBoundedVar) Read() uint64 { return pv.v.Read() }

// LL performs process p's load-linked.
func (pv *PerVarBoundedVar) LL(p int) (uint64, core.BKeep, error) {
	proc, err := pv.family.Proc(p)
	if err != nil {
		return 0, core.BKeep{}, err
	}
	return pv.v.LL(proc)
}

// VL validates process p's sequence.
func (pv *PerVarBoundedVar) VL(p int, keep core.BKeep) bool {
	proc, err := pv.family.Proc(p)
	if err != nil {
		return false
	}
	return pv.v.VL(proc, keep)
}

// SC attempts process p's store-conditional.
func (pv *PerVarBoundedVar) SC(p int, keep core.BKeep, newval uint64) bool {
	proc, err := pv.family.Proc(p)
	if err != nil {
		return false
	}
	return pv.v.SC(proc, keep, newval)
}

// FootprintWords reports the per-variable storage in 64-bit words,
// counting the private announce array (N·k), the variable word and its
// counter array (1+N), and each process's private tag queue: N processes
// × (2Nk+1) queue nodes (a next+prev pair packs into one word). With k=1
// this is Θ(N²) per variable — the cost Figure 7's sharing removes.
func (pv *PerVarBoundedVar) FootprintWords() int {
	n := pv.family.Procs()
	k := pv.family.K()
	queueWords := n * (2*n*k + 1)
	return n*k + (1 + n) + queueWords
}

// CyclicTag is the unsound ablation: record{tag, val} words with the tag
// cycled modulo a small bound and NO feedback. A stale SC can succeed as
// soon as the tag space wraps during one LL-SC sequence. Exported only so
// experiment E7 can demonstrate the failure; never use it for real
// synchronization.
type CyclicTag struct {
	w      atomic.Uint64
	layout word.Layout
	mod    uint64
}

// CyclicKeep is the keep token for CyclicTag.
type CyclicKeep struct {
	word uint64
}

// NewCyclicTag creates a variable whose tags cycle through tagCount
// values (tagCount ≥ 2) with no reuse protection.
func NewCyclicTag(tagCount uint64, initial uint64) (*CyclicTag, error) {
	if tagCount < 2 {
		return nil, fmt.Errorf("baseline: tagCount must be at least 2, got %d", tagCount)
	}
	layout, err := word.NewLayout(word.BitsFor(tagCount - 1))
	if err != nil {
		return nil, err
	}
	if initial > layout.MaxVal() {
		return nil, fmt.Errorf("baseline: initial value %d exceeds value field", initial)
	}
	v := &CyclicTag{layout: layout, mod: tagCount}
	v.w.Store(layout.Pack(0, initial))
	return v, nil
}

// Read returns the current value.
func (v *CyclicTag) Read() uint64 { return v.layout.Val(v.w.Load()) }

// LL snapshots the variable.
func (v *CyclicTag) LL() (uint64, CyclicKeep) {
	k := CyclicKeep{word: v.w.Load()}
	return v.layout.Val(k.word), k
}

// VL reports whether the word is bit-identical to the snapshot — which,
// after a tag wrap, may hold even though the variable changed.
func (v *CyclicTag) VL(keep CyclicKeep) bool {
	return v.w.Load() == keep.word
}

// SC attempts the store-conditional with the next cyclic tag.
func (v *CyclicTag) SC(keep CyclicKeep, newval uint64) bool {
	if newval > v.layout.MaxVal() {
		panic(fmt.Sprintf("baseline: SC value %d exceeds value field", newval))
	}
	tag := word.AddMod(v.layout.Tag(keep.word), 1, v.mod)
	return v.w.CompareAndSwap(keep.word, v.layout.Pack(tag, newval))
}

// IsraeliRappoport is a valid-bits construction in the style of [10]:
// each word carries one valid bit per process plus the data value. LL
// sets the caller's bit with a CAS loop; a successful SC clears all bits.
// It needs N bits of every word, so N is capped by the word size — the
// unrealistic-word-size assumption the paper criticizes — and LL is only
// lock-free, not wait-free, under contention.
type IsraeliRappoport struct {
	w      atomic.Uint64
	n      int
	fields word.Fields // validmask | val
}

// IRKeep is the keep token for IsraeliRappoport (the interface here is
// modified in the spirit of the paper even though [10] predates it).
type IRKeep struct {
	val uint64
}

// NewIsraeliRappoport creates a variable for n processes (n ≤ 32 so that
// at least 32 data bits remain).
func NewIsraeliRappoport(n int, initial uint64) (*IsraeliRappoport, error) {
	if n < 1 || n > 32 {
		return nil, fmt.Errorf("baseline: process count must be in [1,32], got %d (valid bits must fit the word)", n)
	}
	fields, err := word.NewFields(uint(n), uint(word.WordBits-n))
	if err != nil {
		return nil, err
	}
	v := &IsraeliRappoport{n: n, fields: fields}
	if initial > fields.Max(1) {
		return nil, fmt.Errorf("baseline: initial value %d exceeds %d-bit value field", initial, word.WordBits-n)
	}
	v.w.Store(fields.Pack(0, initial))
	return v, nil
}

// Read returns the current value.
func (v *IsraeliRappoport) Read() uint64 {
	return v.fields.Get(v.w.Load(), 1)
}

// LL sets process p's valid bit and returns the value (lock-free: the
// CAS loop retries only when the word changes, i.e. the system makes
// progress).
func (v *IsraeliRappoport) LL(p int) (uint64, IRKeep) {
	bit := uint64(1) << uint(p)
	for {
		w := v.w.Load()
		mask := v.fields.Get(w, 0)
		nw := v.fields.Pack(mask|bit, v.fields.Get(w, 1))
		if w == nw || v.w.CompareAndSwap(w, nw) {
			val := v.fields.Get(w, 1)
			return val, IRKeep{val: val}
		}
	}
}

// VL reports whether process p's valid bit is still set.
func (v *IsraeliRappoport) VL(p int) bool {
	return v.fields.Get(v.w.Load(), 0)&(1<<uint(p)) != 0
}

// SC attempts process p's store-conditional: it succeeds iff p's valid
// bit is still set, atomically storing the value and clearing every valid
// bit.
func (v *IsraeliRappoport) SC(p int, newval uint64) bool {
	if newval > v.fields.Max(1) {
		panic(fmt.Sprintf("baseline: SC value %d exceeds value field", newval))
	}
	bit := uint64(1) << uint(p)
	for {
		w := v.w.Load()
		if v.fields.Get(w, 0)&bit == 0 {
			return false
		}
		if v.w.CompareAndSwap(w, v.fields.Pack(0, newval)) {
			return true
		}
	}
}

// FootprintWords reports per-variable storage: a single word.
func (v *IsraeliRappoport) FootprintWords() int { return 1 }
