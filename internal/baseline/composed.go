package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/word"
)

// Composed implements LL/VL/SC from RLL/RSC by layering Figure 4 on top of
// Figure 3 — the straightforward composition the paper describes and then
// improves upon with Figure 5. Each word carries TWO tags: an inner tag
// consumed by the CAS emulation (Figure 3) and an outer tag consumed by
// the LL/SC emulation (Figure 4), so the bits available for data — and the
// headroom before either tag wraps — are substantially reduced. Experiment
// E3 compares this against the fused single-tag Figure 5.
type Composed struct {
	inner *core.CASVar
	outer word.Layout // splits the CAS value field into outerTag | data
}

// ComposedKeep is the keep token for Composed.
type ComposedKeep struct {
	word uint64 // the CAS-level value field: outerTag | data
}

// NewComposed allocates a composed variable on machine m. innerTagBits and
// outerTagBits are the Figure 3 and Figure 4 tag widths; the data field
// gets the remaining 64 - innerTagBits - outerTagBits bits.
func NewComposed(m *machine.Machine, innerTagBits, outerTagBits uint, initial uint64) (*Composed, error) {
	if innerTagBits+outerTagBits >= word.WordBits {
		return nil, fmt.Errorf("baseline: inner %d + outer %d tag bits leave no data room", innerTagBits, outerTagBits)
	}
	innerLayout, err := word.NewLayout(innerTagBits)
	if err != nil {
		return nil, err
	}
	// The outer layout lives inside the inner value field.
	outerValBits := word.WordBits - innerTagBits - outerTagBits
	outer := word.Layout{TagBits: outerTagBits, ValBits: outerValBits}
	if initial > outer.MaxVal() {
		return nil, fmt.Errorf("baseline: initial value %d exceeds %d-bit data field", initial, outerValBits)
	}
	inner, err := core.NewCASVar(m, innerLayout, outer.Pack(0, initial))
	if err != nil {
		return nil, err
	}
	return &Composed{inner: inner, outer: outer}, nil
}

// DataBits returns the width of the data field after both tags.
func (v *Composed) DataBits() uint { return v.outer.ValBits }

// Read returns the current value.
func (v *Composed) Read(p *machine.Proc) uint64 {
	return v.outer.Val(v.inner.Read(p))
}

// LL snapshots the variable (Figure 4's line 1 over the emulated CAS word).
func (v *Composed) LL(p *machine.Proc) (uint64, ComposedKeep) {
	w := v.inner.Read(p)
	return v.outer.Val(w), ComposedKeep{word: w}
}

// VL reports whether the variable is unchanged since the LL.
func (v *Composed) VL(p *machine.Proc, keep ComposedKeep) bool {
	return v.inner.Read(p) == keep.word
}

// SC attempts the store-conditional via the emulated CAS (Figure 4's
// line 4 over Figure 3).
func (v *Composed) SC(p *machine.Proc, keep ComposedKeep, newval uint64) bool {
	if newval > v.outer.MaxVal() {
		panic(fmt.Sprintf("baseline: SC value %d exceeds %d-bit data field", newval, v.outer.ValBits))
	}
	return v.inner.CompareAndSwap(p, keep.word, v.outer.Bump(keep.word, newval))
}
