package baseline

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
)

func coreBKeepZero() core.BKeep { return core.BKeep{} }

func newComposedMachine(t *testing.T) *machine.Machine {
	t.Helper()
	return machine.MustNew(machine.Config{Procs: 1})
}

func TestPerVarBoundedValidationAndRead(t *testing.T) {
	if _, err := NewPerVarBounded(0); err == nil {
		t.Error("zero procs accepted")
	}
	b, err := NewPerVarBounded(2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.NewVar(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Read(); got != 7 {
		t.Errorf("Read = %d, want 7", got)
	}
	if got := v.FootprintWords(); got <= 0 {
		t.Errorf("FootprintWords = %d", got)
	}
	// Out-of-range process ids degrade safely.
	if _, _, err := v.LL(5); err == nil {
		t.Error("out-of-range LL accepted")
	}
	if v.VL(5, coreBKeepZero()) {
		t.Error("out-of-range VL returned true")
	}
	if v.SC(5, coreBKeepZero(), 1) {
		t.Error("out-of-range SC succeeded")
	}
}

func TestIsraeliRappoportFootprint(t *testing.T) {
	v, err := NewIsraeliRappoport(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.FootprintWords(); got != 1 {
		t.Errorf("FootprintWords = %d, want 1", got)
	}
}

func TestLockForDemoBlocksOthers(t *testing.T) {
	v, err := NewMutexLLSC(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	held := make(chan struct{})
	release := make(chan struct{})
	go v.LockForDemo(held, release)
	<-held

	acquired := make(chan struct{})
	go func() {
		v.LL(1) // blocks on the held lock
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("LL proceeded while LockForDemo held the lock")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("LL never proceeded after release")
	}
}

func TestComposedSCPanicsOnOversized(t *testing.T) {
	m := newComposedMachine(t)
	v, err := NewComposed(m, 24, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	_, k := v.LL(p)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized SC did not panic")
		}
	}()
	v.SC(p, k, 1<<20)
}
