package baseline

import (
	"sync"
	"testing"

	"repro/internal/machine"
)

func TestComposedValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	if _, err := NewComposed(m, 32, 32, 0); err == nil {
		t.Error("no-data-room layout accepted")
	}
	if _, err := NewComposed(m, 24, 24, 1<<17); err == nil {
		t.Error("oversized initial accepted")
	}
	v, err := NewComposed(m, 24, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.DataBits(); got != 16 {
		t.Errorf("DataBits = %d, want 16", got)
	}
}

func TestComposedSemantics(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	v, err := NewComposed(m, 24, 24, 10)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := m.Proc(0), m.Proc(1)

	val, k0 := v.LL(p0)
	if val != 10 {
		t.Fatalf("LL = %d, want 10", val)
	}
	if !v.VL(p0, k0) {
		t.Fatal("VL false after LL")
	}
	_, k1 := v.LL(p1)
	if !v.SC(p1, k1, 20) {
		t.Fatal("p1 SC failed")
	}
	if v.VL(p0, k0) {
		t.Error("p0 VL true after p1's SC")
	}
	if v.SC(p0, k0, 30) {
		t.Error("p0 stale SC succeeded")
	}
	if got := v.Read(p0); got != 20 {
		t.Errorf("Read = %d, want 20", got)
	}
}

func TestComposedABACycle(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	v, err := NewComposed(m, 24, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := m.Proc(0), m.Proc(1)
	_, stale := v.LL(p0)
	for _, x := range []uint64{9, 7} {
		_, k := v.LL(p1)
		if !v.SC(p1, k, x) {
			t.Fatalf("SC to %d failed", x)
		}
	}
	if v.SC(p0, stale, 8) {
		t.Error("stale SC succeeded across ABA cycle")
	}
}

func TestComposedConcurrentCounter(t *testing.T) {
	const procs = 4
	const rounds = 1500
	m := machine.MustNew(machine.Config{Procs: procs, SpuriousFailProb: 0.02, Seed: 21})
	v, err := NewComposed(m, 24, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(p *machine.Proc) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					val, k := v.LL(p)
					if v.SC(p, k, (val+1)&((1<<16)-1)) {
						break
					}
				}
			}
		}(m.Proc(i))
	}
	wg.Wait()
	if got := v.Read(m.Proc(0)); got != procs*rounds {
		t.Errorf("final = %d, want %d", got, procs*rounds)
	}
}
