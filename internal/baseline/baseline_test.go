package baseline

import (
	"sync"
	"testing"
)

func TestMutexLLSCValidation(t *testing.T) {
	if _, err := NewMutexLLSC(0, 0); err == nil {
		t.Error("NewMutexLLSC(0) should error")
	}
}

func TestMutexLLSCSemantics(t *testing.T) {
	v, err := NewMutexLLSC(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.LL(0); got != 10 {
		t.Fatalf("LL = %d, want 10", got)
	}
	if !v.VL(0) {
		t.Fatal("VL false after LL")
	}
	v.LL(1)
	if !v.SC(1, 20) {
		t.Fatal("p1 SC failed")
	}
	if v.VL(0) {
		t.Error("p0 VL true after p1's SC")
	}
	if v.SC(0, 30) {
		t.Error("p0 stale SC succeeded")
	}
	if got := v.Read(); got != 20 {
		t.Errorf("Read = %d, want 20", got)
	}
	if got := v.FootprintWords(); got != 4 {
		t.Errorf("FootprintWords = %d, want 4", got)
	}
}

func TestMutexLLSCConcurrentCounter(t *testing.T) {
	const procs = 8
	const rounds = 2000
	v, err := NewMutexLLSC(procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for {
					x := v.LL(p)
					if v.SC(p, x+1) {
						break
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if got := v.Read(); got != procs*rounds {
		t.Errorf("final = %d, want %d", got, procs*rounds)
	}
}

func TestPerVarBoundedSemantics(t *testing.T) {
	b, err := NewPerVarBounded(4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.NewVar(5)
	if err != nil {
		t.Fatal(err)
	}
	val, keep, err := v.LL(0)
	if err != nil {
		t.Fatal(err)
	}
	if val != 5 {
		t.Fatalf("LL = %d, want 5", val)
	}
	if !v.VL(0, keep) {
		t.Fatal("VL false after LL")
	}
	if !v.SC(0, keep, 6) {
		t.Fatal("SC failed")
	}
	if got := v.Read(); got != 6 {
		t.Errorf("Read = %d, want 6", got)
	}
}

func TestPerVarBoundedQuadraticSpace(t *testing.T) {
	// The whole point of this baseline: per-variable space grows
	// quadratically with N, while Figure 7's shared family does not.
	b4, _ := NewPerVarBounded(4)
	b8, _ := NewPerVarBounded(8)
	v4, err := b4.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	v8, err := b8.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	f4, f8 := v4.FootprintWords(), v8.FootprintWords()
	// Doubling N should roughly quadruple the footprint (ratio > 3).
	if ratio := float64(f8) / float64(f4); ratio < 3 {
		t.Errorf("footprint ratio N=8/N=4 is %.2f (=%d/%d), want ≥3 (quadratic growth)", ratio, f8, f4)
	}
}

func TestPerVarBoundedConcurrent(t *testing.T) {
	const procs = 4
	const rounds = 1000
	b, err := NewPerVarBounded(procs)
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for {
					val, keep, err := v.LL(p)
					if err != nil {
						t.Error(err)
						return
					}
					if v.SC(p, keep, val+1) {
						break
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if got := v.Read(); got != procs*rounds {
		t.Errorf("final = %d, want %d", got, procs*rounds)
	}
}

func TestCyclicTagIsUnsound(t *testing.T) {
	// The ablation must exhibit exactly the failure Figure 7 prevents:
	// after tagCount intervening SCs restoring the value, a stale SC
	// succeeds.
	v, err := NewCyclicTag(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, stale := v.LL()
	for i := 0; i < 4; i++ {
		_, k := v.LL()
		if !v.SC(k, 7) {
			t.Fatalf("intervening SC %d failed", i)
		}
	}
	if !v.VL(stale) {
		t.Fatal("expected stale VL to be fooled after tag wrap")
	}
	if !v.SC(stale, 99) {
		t.Fatal("expected stale SC to (erroneously) succeed after tag wrap")
	}
}

func TestCyclicTagNormalOperation(t *testing.T) {
	v, err := NewCyclicTag(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		val, k := v.LL()
		if val != i {
			t.Fatalf("LL = %d, want %d", val, i)
		}
		if !v.SC(k, i+1) {
			t.Fatalf("SC %d failed", i)
		}
	}
}

func TestCyclicTagValidation(t *testing.T) {
	if _, err := NewCyclicTag(1, 0); err == nil {
		t.Error("tagCount=1 accepted")
	}
	if _, err := NewCyclicTag(4, 1<<63); err == nil {
		t.Error("oversized initial accepted")
	}
}

func TestIsraeliRappoportSemantics(t *testing.T) {
	v, err := NewIsraeliRappoport(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	val, _ := v.LL(0)
	if val != 10 {
		t.Fatalf("LL = %d, want 10", val)
	}
	if !v.VL(0) {
		t.Fatal("VL false after LL")
	}
	v.LL(1)
	if !v.SC(1, 20) {
		t.Fatal("p1 SC failed")
	}
	if v.VL(0) {
		t.Error("p0 VL true after p1 SC")
	}
	if v.SC(0, 30) {
		t.Error("p0 stale SC succeeded")
	}
	if got := v.Read(); got != 20 {
		t.Errorf("Read = %d, want 20", got)
	}
}

func TestIsraeliRappoportABAImmune(t *testing.T) {
	// Valid bits are cleared by every successful SC, so an A→B→A value
	// cycle still fails the stale SC.
	v, err := NewIsraeliRappoport(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	v.LL(0)
	v.LL(1)
	if !v.SC(1, 9) {
		t.Fatal("SC to 9 failed")
	}
	v.LL(1)
	if !v.SC(1, 7) {
		t.Fatal("SC back to 7 failed")
	}
	if v.SC(0, 8) {
		t.Error("stale SC succeeded across ABA cycle")
	}
}

func TestIsraeliRappoportCapsProcs(t *testing.T) {
	// The word-size restriction the paper criticizes: N is capped.
	if _, err := NewIsraeliRappoport(33, 0); err == nil {
		t.Error("N=33 accepted; valid bits cannot fit")
	}
	if _, err := NewIsraeliRappoport(0, 0); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestIsraeliRappoportConcurrentCounter(t *testing.T) {
	const procs = 8
	const rounds = 2000
	v, err := NewIsraeliRappoport(procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for {
					val, _ := v.LL(p)
					if v.SC(p, val+1) {
						break
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if got := v.Read(); got != procs*rounds {
		t.Errorf("final = %d, want %d", got, procs*rounds)
	}
}
