package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/machine"
)

// --- RLargeFamily (Figure 6 over RLL/RSC) -------------------------------

func TestRLargeBasic(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	f, err := NewRLargeFamily(m, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar([]uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	dst := make([]uint64, 3)
	keep, res := v.WLL(p, dst)
	if res != Succ {
		t.Fatalf("WLL = %d", res)
	}
	if dst[0] != 1 || dst[2] != 3 {
		t.Fatalf("dst = %v", dst)
	}
	if !v.VL(p, keep) {
		t.Fatal("VL false")
	}
	if !v.SC(p, keep, []uint64{4, 5, 6}) {
		t.Fatal("SC failed")
	}
	v.Read(p, dst)
	if dst[0] != 4 || dst[1] != 5 || dst[2] != 6 {
		t.Fatalf("after SC: %v", dst)
	}
}

func TestRLargeValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	if _, err := NewRLargeFamily(m, 0, 0); err == nil {
		t.Error("zero words accepted")
	}
	if _, err := NewRLargeFamily(m, 1, 64); err == nil {
		t.Error("tag too wide accepted")
	}
	f, err := NewRLargeFamily(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.NewVar([]uint64{1}); err == nil {
		t.Error("wrong-length initial accepted")
	}
	if _, err := f.NewVar([]uint64{0, f.MaxSegmentValue() + 1}); err == nil {
		t.Error("oversized initial accepted")
	}
	if f.OverheadWords() != 2*2 {
		t.Errorf("overhead = %d, want 4", f.OverheadWords())
	}
}

func TestRLargeStaleSCFails(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	f, err := NewRLargeFamily(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar([]uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := m.Proc(0), m.Proc(1)
	dst := make([]uint64, 2)
	k0, _ := v.WLL(p0, dst)
	k1, _ := v.WLL(p1, dst)
	if !v.SC(p1, k1, []uint64{5, 6}) {
		t.Fatal("p1 SC failed")
	}
	if v.VL(p0, k0) {
		t.Error("stale VL true")
	}
	if v.SC(p0, k0, []uint64{7, 8}) {
		t.Error("stale SC succeeded")
	}
}

func TestRLargeSpuriousFailureTolerance(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1, SpuriousFailProb: 0.4, Seed: 9})
	f, err := NewRLargeFamily(m, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar(make([]uint64, 4))
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	dst := make([]uint64, 4)
	val := make([]uint64, 4)
	for i := uint64(1); i <= 300; i++ {
		keep, res := v.WLL(p, dst)
		if res != Succ {
			t.Fatalf("WLL %d failed with no contention", i)
		}
		x := i & f.MaxSegmentValue()
		for j := range val {
			val[j] = x
		}
		if !v.SC(p, keep, val) {
			t.Fatalf("SC %d failed with no contention", i)
		}
	}
	if st := m.Stats(); st.RSCSpurious == 0 {
		t.Error("expected spurious failures at p=0.4")
	}
}

func TestRLargeConcurrentConsistency(t *testing.T) {
	// Writers store replicated vectors {x,x,x}; readers must never see a
	// torn mix — even on the RLL/RSC substrate with spurious failures.
	const procs = 4
	const rounds = 800
	const w = 3
	m := machine.MustNew(machine.Config{Procs: procs, SpuriousFailProb: 0.05, Seed: 31})
	f, err := NewRLargeFamily(m, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar(make([]uint64, w))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := m.Proc(id)
			cur := make([]uint64, w)
			next := make([]uint64, w)
			for r := 0; r < rounds; r++ {
				for {
					keep, res := v.WLL(p, cur)
					if res != Succ {
						continue
					}
					for j := 1; j < w; j++ {
						if cur[j] != cur[0] {
							t.Errorf("torn WLL snapshot: %v", cur)
							return
						}
					}
					x := (cur[0] + 1) & f.MaxSegmentValue()
					for j := range next {
						next[j] = x
					}
					if v.SC(p, keep, next) {
						break
					}
				}
			}
		}(id)
	}
	wg.Wait()
	p := m.Proc(0)
	final := make([]uint64, w)
	v.Read(p, final)
	want := uint64(procs*rounds) & f.MaxSegmentValue()
	if final[0] != want {
		t.Errorf("final = %v, want all %d", final, want)
	}
}

// --- RBoundedFamily (Figure 7 over RLL/RSC) ------------------------------

func TestRBoundedBasic(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	f, err := NewRBoundedFamily(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar(10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	val, keep, err := v.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	if val != 10 {
		t.Fatalf("LL = %d", val)
	}
	if !v.VL(p, keep) {
		t.Fatal("VL false")
	}
	if !v.SC(p, keep, 11) {
		t.Fatal("SC failed")
	}
	if got := v.Read(p); got != 11 {
		t.Errorf("Read = %d, want 11", got)
	}
}

func TestRBoundedValidation(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	if _, err := NewRBoundedFamily(m, 0); err == nil {
		t.Error("k=0 accepted")
	}
	f, err := NewRBoundedFamily(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Proc(5); err == nil {
		t.Error("out-of-range pid accepted")
	}
	if _, err := f.NewVar(f.MaxVal() + 1); err == nil {
		t.Error("oversized initial accepted")
	}
	if f.TagBits() == 0 || f.OverheadWords() != 4 {
		t.Errorf("TagBits=%d OverheadWords=%d", f.TagBits(), f.OverheadWords())
	}
}

func TestRBoundedSlotManagement(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	f, err := NewRBoundedFamily(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := f.NewVar(1)
	v2, _ := f.NewVar(2)
	v3, _ := f.NewVar(3)
	p, _ := f.Proc(0)

	_, k1, err := v1.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = v2.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v3.LL(p); !errors.Is(err, ErrTooManySequences) {
		t.Fatalf("third LL error = %v", err)
	}
	v1.CL(p, k1)
	if p.FreeSlots() != 1 {
		t.Errorf("FreeSlots = %d, want 1", p.FreeSlots())
	}
}

func TestRBoundedNoPrematureTagReuse(t *testing.T) {
	// The Figure 7 adversarial scenario on the RLL/RSC substrate with
	// spurious failures layered on top.
	m := machine.MustNew(machine.Config{Procs: 2, SpuriousFailProb: 0.1, Seed: 77})
	f, err := NewRBoundedFamily(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := f.Proc(0)
	p1, _ := f.Proc(1)

	_, k, err := v.LL(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SC(p1, k, 7) {
		t.Fatal("seed SC failed")
	}
	_, stale, err := v.LL(p0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		_, k, err := v.LL(p1)
		if err != nil {
			t.Fatal(err)
		}
		if !v.SC(p1, k, 7) {
			t.Fatalf("iteration %d: uncontended SC failed", i)
		}
		if v.VL(p0, stale) {
			t.Fatalf("iteration %d: stale VL true — tag reuse on RLL/RSC substrate", i)
		}
	}
	if v.SC(p0, stale, 99) {
		t.Fatal("stale SC succeeded")
	}
}

func TestRBoundedConcurrentCounter(t *testing.T) {
	const procs = 4
	const rounds = 1500
	m := machine.MustNew(machine.Config{Procs: procs, SpuriousFailProb: 0.05, Seed: 13})
	f, err := NewRBoundedFamily(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for id := 0; id < procs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := f.Proc(id)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				for {
					val, k, err := v.LL(p)
					if err != nil {
						t.Error(err)
						return
					}
					if v.SC(p, k, (val+1)&f.MaxVal()) {
						break
					}
				}
			}
		}(id)
	}
	wg.Wait()
	p, _ := f.Proc(0)
	if got := v.Read(p); got != procs*rounds {
		t.Errorf("final = %d, want %d", got, procs*rounds)
	}
}
