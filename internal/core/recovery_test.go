package core

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestTagQueueValidate(t *testing.T) {
	q := newTagQueue(7)
	for _, tag := range []uint64{3, 0, 6, 3, 5} {
		q.moveToBack(tag)
	}
	q.rotate()
	if err := q.validate(); err != nil {
		t.Fatalf("healthy queue failed validation: %v", err)
	}
	// Corrupt it: point a next link back at the head, duplicating a tag.
	q.next[q.head] = q.head
	if err := q.validate(); err == nil {
		t.Fatal("corrupt queue passed validation")
	}
}

func TestBoundedRecoverReclaims(t *testing.T) {
	f := MustNewBoundedFamily(BoundedConfig{Procs: 2, K: 2})
	v, err := f.NewVar(1)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := f.Proc(0)
	p1, _ := f.Proc(1)

	// p0 opens two sequences and "crashes" holding both slots.
	if _, _, err := v.LL(p0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.LL(p0); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckConservation(); err == nil {
		t.Fatal("conservation check missed two leaked slots")
	}

	st, err := f.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.SlotsReclaimed != 2 {
		t.Fatalf("SlotsReclaimed = %d, want 2", st.SlotsReclaimed)
	}
	if st.TagsRequeued < 1 {
		t.Fatalf("TagsRequeued = %d, want at least the announced tag", st.TagsRequeued)
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("conservation after recovery: %v", err)
	}
	if p0.FreeSlots() != 2 {
		t.Fatalf("FreeSlots = %d after recovery, want 2", p0.FreeSlots())
	}

	// The recovered process and its peer both still work.
	for i, p := range []*BoundedProc{p0, p1} {
		_, keep, err := v.LL(p)
		if err != nil {
			t.Fatal(err)
		}
		if !v.SC(p, keep, uint64(10+i)) {
			t.Fatalf("sequential SC by proc %d failed after recovery", p.ID())
		}
	}
	if got := v.Read(); got != 11 {
		t.Fatalf("Read = %d, want 11", got)
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("conservation after post-recovery traffic: %v", err)
	}
}

func TestBoundedRecoverOutOfRange(t *testing.T) {
	f := MustNewBoundedFamily(BoundedConfig{Procs: 2, K: 1})
	if _, err := f.Recover(2); err == nil {
		t.Fatal("Recover(2) out of range must fail")
	}
}

func TestBoundedTagOverride(t *testing.T) {
	if _, err := NewBoundedFamily(BoundedConfig{Procs: 2, K: 1, TagOverride: 4}); err == nil {
		t.Fatal("tag space below 2Nk+1 must be rejected")
	} else if !strings.Contains(err.Error(), "ABA") {
		t.Fatalf("rejection should name the ABA hazard, got: %v", err)
	}
	f, err := NewBoundedFamily(BoundedConfig{Procs: 2, K: 1, TagOverride: 5})
	if err != nil {
		t.Fatalf("minimum legal tag space rejected: %v", err)
	}
	if f.TagCount() != 5 {
		t.Fatalf("TagCount = %d, want 5", f.TagCount())
	}
	f, err = NewBoundedFamily(BoundedConfig{Procs: 2, K: 1, TagOverride: 64})
	if err != nil {
		t.Fatal(err)
	}
	if f.TagCount() != 64 {
		t.Fatalf("TagCount = %d, want 64", f.TagCount())
	}
}

// TestBoundedTagWraparoundABAImpossible is the §5 wraparound regression at
// the tightest legal tag space (N=2, k=1: five tags, three counter values).
// Process b announces a read of the initial word and then stalls; process a
// drives enough successful SCs to wrap both the tag queue and the counter
// space many times over. If the feedback scheme ever let the variable
// return to the exact announced bit pattern, b's stale SC could succeed —
// classic ABA. The test pins that the pattern never recurs and the stale
// SC fails.
func TestBoundedTagWraparoundABAImpossible(t *testing.T) {
	f := MustNewBoundedFamily(BoundedConfig{Procs: 2, K: 1})
	if f.TagCount() != 5 {
		t.Fatalf("TagCount = %d, want the minimal 5", f.TagCount())
	}
	v, err := f.NewVar(1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Proc(0)
	b, _ := f.Proc(1)

	_, keepB, err := v.LL(b)
	if err != nil {
		t.Fatal(err)
	}
	iters := 20 * int(f.tagCount) * int(f.cntCount)
	for i := 0; i < iters; i++ {
		_, keepA, err := v.LL(a)
		if err != nil {
			t.Fatal(err)
		}
		if !v.SC(a, keepA, uint64(i%2)) { // value 1 recurs, matching the announced word's value field
			t.Fatalf("uncontended SC %d failed", i)
		}
		if v.word.Load() == keepB.word {
			t.Fatalf("ABA: after %d SCs the variable returned to the bit pattern announced by b", i+1)
		}
	}
	if v.SC(b, keepB, 42) {
		t.Fatal("stale SC succeeded after full tag/counter wraparound: ABA")
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("conservation after wraparound: %v", err)
	}
}

func TestLargeRecoverCompletesOrphan(t *testing.T) {
	f := MustNewLargeFamily(LargeConfig{Procs: 2, Words: 3})
	v, err := f.NewVar([]uint64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := f.Proc(0)
	p1, _ := f.Proc(1)

	buf := make([]uint64, 3)
	keep, res := v.WLL(p0, buf)
	if res != Succ {
		t.Fatalf("uncontended WLL returned %d", res)
	}
	// Crash p0 between its header CAS and its Copy: the header names p0
	// but every segment is still one generation behind.
	f.stallHook = func(int) { panic("crash mid-SC") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("stall hook did not fire")
			}
		}()
		v.SC(p0, keep, []uint64{7, 8, 9})
	}()
	f.stallHook = nil

	if err := f.CheckConservation(); err == nil {
		t.Fatal("conservation check missed the orphaned copy")
	}
	completed, err := f.Recover(p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if completed != 1 {
		t.Fatalf("Recover completed %d copies, want 1", completed)
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("conservation after recovery: %v", err)
	}
	v.Read(p1, buf)
	if buf[0] != 7 || buf[1] != 8 || buf[2] != 9 {
		t.Fatalf("Read = %v after recovered copy, want [7 8 9]", buf)
	}
	// Idempotent: the header no longer names a stale copy.
	if completed, _ = f.Recover(p1, 0); completed != 0 {
		t.Fatalf("second Recover completed %d copies, want 0", completed)
	}
}

// crashAfterFirstRSC crashes the victim once, at its first operation after
// its first RSC — for a Figure 6 SC, immediately after the header install
// and before any copy work. Later incarnations run unharmed.
type crashAfterFirstRSC struct {
	victim int
	sawRSC bool
	fired  bool
}

func (c *crashAfterFirstRSC) BeforeOp(proc int, op machine.OpKind, word uint64) machine.FaultInjection {
	if proc != c.victim || c.fired {
		return machine.FaultInjection{}
	}
	if c.sawRSC {
		c.fired = true
		return machine.FaultInjection{Crash: true}
	}
	if op == machine.OpRSC {
		c.sawRSC = true
	}
	return machine.FaultInjection{}
}

func TestRLargeRecoverAfterMachineCrash(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2, FaultPlan: &crashAfterFirstRSC{victim: 0}})
	f, err := NewRLargeFamily(m, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar([]uint64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p0 := m.Proc(0)
	p1 := m.Proc(1)

	buf := make([]uint64, 2)
	keep, res := v.WLL(p0, buf)
	if res != Succ {
		t.Fatalf("uncontended WLL returned %d", res)
	}
	func() {
		defer func() {
			if _, ok := recover().(machine.CrashPanic); !ok {
				t.Fatal("expected CrashPanic mid-SC")
			}
		}()
		v.SC(p0, keep, []uint64{5, 6})
	}()

	if err := f.CheckConservation(p1); err == nil {
		t.Fatal("conservation check missed the orphaned copy")
	}
	if _, err := m.Restart(0); err != nil {
		t.Fatal(err)
	}
	completed, err := f.Recover(p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if completed != 1 {
		t.Fatalf("Recover completed %d copies, want 1", completed)
	}
	if err := f.CheckConservation(p1); err != nil {
		t.Fatalf("conservation after recovery: %v", err)
	}
	v.Read(p1, buf)
	if buf[0] != 5 || buf[1] != 6 {
		t.Fatalf("Read = %v after recovered copy, want [5 6]", buf)
	}
	// The restarted incarnation can drive new SCs.
	np := m.Proc(0)
	keep, res = v.WLL(np, buf)
	if res != Succ {
		t.Fatalf("restarted WLL returned %d", res)
	}
	if !v.SC(np, keep, []uint64{8, 8}) {
		t.Fatal("restarted incarnation's SC failed uncontended")
	}
}

func TestRBoundedRecoverRefreshesHandle(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	f, err := NewRBoundedFamily(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar(3)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := f.Proc(0)
	p1, _ := f.Proc(1)

	// p0 crashes holding its only announce slot.
	if _, _, err := v.LL(p0); err != nil {
		t.Fatal(err)
	}
	m.Proc(0).Crash()
	if _, err := f.Recover(0); err == nil {
		t.Fatal("Recover before machine.Restart must refuse a crashed processor")
	}
	if _, err := m.Restart(0); err != nil {
		t.Fatal(err)
	}
	st, err := f.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.SlotsReclaimed != 1 {
		t.Fatalf("SlotsReclaimed = %d, want 1", st.SlotsReclaimed)
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatalf("conservation after recovery: %v", err)
	}

	// The same family handle now drives the fresh incarnation.
	_, keep, err := v.LL(p0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SC(p0, keep, 9) {
		t.Fatal("recovered handle's SC failed uncontended")
	}
	if got := v.Read(p1); got != 9 {
		t.Fatalf("Read = %d, want 9", got)
	}
}
