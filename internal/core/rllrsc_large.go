package core

import (
	"fmt"
	"sync"

	"repro/internal/contention"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/word"
)

// RLargeFamily is Figure 6 realized on a machine that provides only the
// restricted RLL/RSC pair — the paper's remark that "in each case, the
// technique in Figure 3 can be used to acquire the same result using RLL
// and RSC". Every CAS of the CAS-based construction becomes a tight
// RLL/RSC retry pair (see rcas); because the header and segment words
// already carry monotonically advancing tags, no additional tag field is
// needed, mirroring the Figure 5 fusion.
//
// Complexity matches Theorem 4 — Θ(W) WLL/SC, Θ(1) VL, Θ(NW) space — and
// each operation terminates provided only finitely many spurious failures
// occur during it, in Θ(W) steps after the last spurious failure.
type RLargeFamily struct {
	m   *machine.Machine
	n   int
	w   int
	seg word.Layout
	hdr word.Fields
	a   []*machine.Word
	obs *obs.Metrics
	cm  *contention.Policy

	// vars registers every variable for crash-recovery scans and quiescent
	// conservation checks, mirroring LargeFamily.
	varsMu sync.Mutex //llsc:allow nakedatomic(guards the crash-recovery registry only, never the algorithm hot path)
	vars   []*RLargeVar
}

// NewRLargeFamily builds a Figure 6 family over machine m. The machine's
// processor count fixes N.
func NewRLargeFamily(m *machine.Machine, words int, tagBits uint) (*RLargeFamily, error) {
	n := m.NumProcs()
	if words < 1 {
		return nil, fmt.Errorf("core: Words must be at least 1, got %d", words)
	}
	pidBits := word.BitsFor(uint64(n - 1))
	if tagBits == 0 {
		tagBits = 48
		if tagBits+pidBits > word.WordBits {
			tagBits = word.WordBits - pidBits
		}
	}
	if tagBits+pidBits > word.WordBits {
		return nil, fmt.Errorf("core: tag width %d plus pid width %d exceeds the %d-bit word",
			tagBits, pidBits, word.WordBits)
	}
	seg, err := word.NewLayout(tagBits)
	if err != nil {
		return nil, fmt.Errorf("core: invalid tag width: %w", err)
	}
	hdr, err := word.NewFields(tagBits, pidBits)
	if err != nil {
		return nil, fmt.Errorf("core: building header layout: %w", err)
	}
	f := &RLargeFamily{m: m, n: n, w: words, seg: seg, hdr: hdr, a: make([]*machine.Word, n*words)}
	for i := range f.a {
		f.a[i] = m.NewWord(0)
	}
	return f, nil
}

// SetMetrics attaches an optional metrics sink to the family (nil
// disables). Pair it with Metrics.MachineObserver on the machine for the
// RSC-level spurious/interference split.
func (f *RLargeFamily) SetMetrics(m *obs.Metrics) { f.obs = m }

// SetContention attaches a contention-management policy governing the
// family's retry loops: the spurious-failure loops inside each rcas and
// the interference-driven WLL retries of Read. Set before sharing.
func (f *RLargeFamily) SetContention(p *contention.Policy) { f.cm = p }

// Words returns W.
func (f *RLargeFamily) Words() int { return f.w }

// MaxSegmentValue returns the largest value one segment can hold.
func (f *RLargeFamily) MaxSegmentValue() uint64 { return f.seg.MaxVal() }

// OverheadWords returns the Θ(NW) announce-array overhead.
func (f *RLargeFamily) OverheadWords() int { return len(f.a) }

func (f *RLargeFamily) announce(pid, i int) *machine.Word {
	return f.a[pid*f.w+i]
}

// rcas is the Figure 3 technique specialized to words whose full contents
// never recur during an operation (the tags are monotonic): atomically
// replace old with new, failing if the word differs from old. RSC's
// write-sensitivity makes it immune to ABA outright. Extra loop
// iterations — caused only by spurious RSC failures — are counted as CAS
// retries against m (nil disables).
func rcas(m *obs.Metrics, cm *contention.Policy, p *machine.Proc, w *machine.Word, old, new uint64) bool {
	m.IncProc(p.ID(), obs.CtrCASAttempt)
	var cw contention.Waiter
	for i := 0; ; i++ {
		if i > 0 {
			m.IncProc(p.ID(), obs.CtrCASRetry)
		}
		if p.RLL(w) != old {
			return false
		}
		if p.RSC(w, new) {
			return true
		}
		cw.Wait(cm, p.ID(), contention.Spurious)
	}
}

// RLargeVar is one W-word variable of an RLargeFamily.
type RLargeVar struct {
	f    *RLargeFamily
	hdr  *machine.Word
	data []*machine.Word
}

// NewVar creates a variable initialized to the W-vector initial.
func (f *RLargeFamily) NewVar(initial []uint64) (*RLargeVar, error) {
	if len(initial) != f.w {
		return nil, fmt.Errorf("core: initial value has %d words, want %d", len(initial), f.w)
	}
	v := &RLargeVar{f: f, hdr: f.m.NewWord(f.hdr.Pack(0, 0)), data: make([]*machine.Word, f.w)}
	for i, x := range initial {
		if x > f.seg.MaxVal() {
			return nil, fmt.Errorf("core: initial[%d] = %d exceeds %d-bit segment value field",
				i, x, f.seg.ValBits)
		}
		v.data[i] = f.m.NewWord(f.seg.Pack(0, x))
	}
	f.varsMu.Lock()
	f.vars = append(f.vars, v)
	f.varsMu.Unlock()
	return v, nil
}

// copyVal is Figure 6's Copy over RLL/RSC words.
func (v *RLargeVar) copyVal(p *machine.Proc, hdr uint64, save []uint64) int {
	f := v.f
	hdrTag := f.hdr.Get(hdr, 0)
	prevTag := f.seg.DecTag(hdrTag)
	pid := int(f.hdr.Get(hdr, 1))
	for i := 0; i < f.w; i++ {
		f.obs.IncProc(p.ID(), obs.CtrCopyWords)
		y := p.Load(v.data[i])
		if f.seg.Tag(y) == prevTag {
			f.obs.IncProc(p.ID(), obs.CtrCopyFixes)
			z := f.seg.Pack(hdrTag, p.Load(f.announce(pid, i)))
			rcas(f.obs, f.cm, p, v.data[i], y, z)
			y = z
		}
		if h := p.Load(v.hdr); h != hdr {
			return int(f.hdr.Get(h, 1))
		}
		if save != nil {
			save[i] = f.seg.Val(y)
		}
	}
	return Succ
}

// WLL is Figure 6's weak LL over RLL/RSC (see LargeVar.WLL).
func (v *RLargeVar) WLL(p *machine.Proc, dst []uint64) (LKeep, int) {
	if len(dst) != v.f.w {
		panic(fmt.Sprintf("core: WLL destination has %d words, want %d", len(dst), v.f.w))
	}
	v.f.obs.IncProc(p.ID(), obs.CtrLL)
	x := p.Load(v.hdr)
	keep := LKeep{tag: v.f.hdr.Get(x, 0)}
	return keep, v.copyVal(p, x, dst)
}

// VL reports whether no successful SC intervened since the WLL. Θ(1).
func (v *RLargeVar) VL(p *machine.Proc, keep LKeep) bool {
	v.f.obs.IncProc(p.ID(), obs.CtrVL)
	return v.f.hdr.Get(p.Load(v.hdr), 0) == keep.tag
}

// SC attempts to store the W-vector newval (Figure 6, lines 14-21, with
// the header CAS realized by an RLL/RSC pair).
func (v *RLargeVar) SC(p *machine.Proc, keep LKeep, newval []uint64) bool {
	f := v.f
	if len(newval) != f.w {
		panic(fmt.Sprintf("core: SC value has %d words, want %d", len(newval), f.w))
	}
	f.obs.IncProc(p.ID(), obs.CtrSC)
	oldhdr := p.Load(v.hdr)
	if f.hdr.Get(oldhdr, 0) != keep.tag {
		f.obs.IncProc(p.ID(), obs.CtrSCFailInterference)
		return false
	}
	for i, x := range newval {
		if x > f.seg.MaxVal() {
			panic(fmt.Sprintf("core: SC value[%d] = %d exceeds %d-bit segment value field",
				i, x, f.seg.ValBits))
		}
		p.Store(f.announce(p.ID(), i), x)
	}
	newhdr := f.hdr.Pack(f.seg.IncTag(keep.tag), uint64(p.ID()))
	if !rcas(f.obs, f.cm, p, v.hdr, oldhdr, newhdr) {
		f.obs.IncProc(p.ID(), obs.CtrSCFailInterference)
		return false
	}
	v.copyVal(p, newhdr, nil)
	return true
}

// Read fills dst with a consistent snapshot, retrying WLL until success.
func (v *RLargeVar) Read(p *machine.Proc, dst []uint64) {
	var w contention.Waiter
	for {
		if _, res := v.WLL(p, dst); res == Succ {
			return
		}
		w.Wait(v.f.cm, p.ID(), contention.Interference)
	}
}
