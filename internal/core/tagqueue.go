package core

import "fmt"

// tagQueue is the private per-process queue Q of Figure 7: it always holds
// a permutation of the tags {0, ..., size-1}. The paper requires
// constant-time delete(t)+enqueue(t) (move a given tag to the back, line
// 10) and dequeue()+enqueue(t) (rotate the front to the back, line 12);
// "by maintaining Q as a doubly-linked list, and by having a static index
// table with pointers to each tag, the operations on Q can also be
// implemented in constant time."
//
// Here the doubly-linked list is intrusive over two index arrays, and the
// "index table" is the array position itself: node t lives at next[t] /
// prev[t]. All operations are O(1); the structure never allocates after
// construction.
type tagQueue struct {
	next []uint32
	prev []uint32
	head uint32
	tail uint32
}

// newTagQueue builds a queue holding 0..size-1 in ascending order.
// size must be at least 1 and fit in uint32.
func newTagQueue(size int) *tagQueue {
	q := &tagQueue{
		next: make([]uint32, size),
		prev: make([]uint32, size),
		head: 0,
		tail: uint32(size - 1),
	}
	for i := 0; i < size; i++ {
		if i+1 < size {
			q.next[i] = uint32(i + 1)
		}
		if i > 0 {
			q.prev[i] = uint32(i - 1)
		}
	}
	return q
}

// size returns the number of tags (constant for a queue's lifetime).
func (q *tagQueue) size() int { return len(q.next) }

// front returns the tag at the head of the queue.
func (q *tagQueue) front() uint64 { return uint64(q.head) }

// moveToBack is Figure 7's delete(Q,t); enqueue(Q,t): it relocates tag t
// to the tail in O(1). Tags are always members, so no absence case exists.
func (q *tagQueue) moveToBack(t uint64) {
	n := uint32(t)
	if q.tail == n {
		return
	}
	// Unlink n.
	if q.head == n {
		q.head = q.next[n]
	} else {
		q.next[q.prev[n]] = q.next[n]
		q.prev[q.next[n]] = q.prev[n]
	}
	// Append n.
	q.next[q.tail] = n
	q.prev[n] = q.tail
	q.tail = n
}

// rotate is Figure 7's t := dequeue(Q); enqueue(Q,t): it moves the front
// tag to the back and returns it, in O(1).
func (q *tagQueue) rotate() uint64 {
	t := q.head
	q.moveToBack(uint64(t))
	return uint64(t)
}

// validate checks the queue's structural invariant — it holds every tag
// 0..size-1 exactly once, with consistent next/prev links — and returns a
// descriptive error on the first violation. The invariant is what makes
// Figure 7's wraparound argument go through (every tag eventually reaches
// the front, and no tag is duplicated), so conservation checks call this
// after crash-recovery rebuilds a queue.
func (q *tagQueue) validate() error {
	size := len(q.next)
	seen := make([]bool, size)
	n := q.head
	for i := 0; i < size; i++ {
		if int(n) >= size {
			return fmt.Errorf("core: tag queue link to out-of-range tag %d", n)
		}
		if seen[n] {
			return fmt.Errorf("core: tag %d appears twice in tag queue", n)
		}
		seen[n] = true
		if i > 0 && int(q.prev[n]) < size && !seen[q.prev[n]] {
			return fmt.Errorf("core: tag queue prev link of %d points at unvisited tag %d", n, q.prev[n])
		}
		if i == size-1 {
			if n != q.tail {
				return fmt.Errorf("core: tag queue tail is %d, want %d", q.tail, n)
			}
			return nil
		}
		prev := n
		n = q.next[n]
		if int(n) < size && q.prev[n] != prev {
			return fmt.Errorf("core: tag queue prev link of %d is %d, want %d", n, q.prev[n], prev)
		}
	}
	return fmt.Errorf("core: tag queue traversal did not cover all %d tags", size)
}

// slotStack is the private per-process stack S of Figure 7, managing the k
// announce slots. Plain LIFO over a fixed array; O(1) push/pop, no
// allocation after construction.
type slotStack struct {
	slots []int
	top   int
}

// newSlotStack builds a stack holding slots 0..k-1 (all free).
func newSlotStack(k int) *slotStack {
	s := &slotStack{slots: make([]int, k), top: k}
	for i := 0; i < k; i++ {
		s.slots[i] = k - 1 - i // pop order 0,1,...,k-1 for readability
	}
	return s
}

// pop removes and returns a free slot; ok is false if none remain (the
// process has exceeded its k concurrent LL-SC sequences).
func (s *slotStack) pop() (slot int, ok bool) {
	if s.top == 0 {
		return 0, false
	}
	s.top--
	return s.slots[s.top], true
}

// push returns a slot to the free pool.
func (s *slotStack) push(slot int) {
	s.slots[s.top] = slot
	s.top++
}

// free returns the number of free slots (used by tests and diagnostics).
func (s *slotStack) free() int { return s.top }
