package core

import (
	"fmt"
	"sync/atomic" //llsc:allow nakedatomic(this file builds LL/SC from the native CAS itself; machine.Word underneath it would be circular)

	"repro/internal/contention"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/word"
)

// Var is the paper's Figure 4: LL/VL/SC operations for small variables
// implemented from CAS. On modern hardware CAS is exactly what
// sync/atomic.CompareAndSwapUint64 compiles to, so — unlike Figures 3 and
// 5 — this implementation runs on the real machine, not the simulator, and
// is directly usable by applications.
//
// Each word holds record{tag, val}. LL copies the whole word into a
// private Keep token; VL and SC compare the current word against the
// token. A successful SC installs (tag ⊕ 1, new), so any intervening
// successful SC changes the tag and causes stale VL/SC to fail.
//
// The operations are constant-time and the variable carries no space
// overhead beyond the tag bits inside the word itself (Theorem 2).
// Processes (goroutines) may run arbitrarily many LL-SC sequences
// concurrently, on the same or different variables — the restriction
// Figure 1 shows hardware cannot support.
type Var struct {
	w      atomic.Uint64
	layout word.Layout
	obs    *obs.Metrics
	cm     *contention.Policy
	tr     *trace.Tracer
	stall  func()
}

// Keep is the private word the paper's modified interface threads from LL
// to VL/SC. It is an opaque snapshot of the variable at LL time.
type Keep struct {
	word uint64
}

// NewVar creates a variable holding initial with the given layout.
func NewVar(layout word.Layout, initial uint64) (*Var, error) {
	if initial > layout.MaxVal() {
		return nil, fmt.Errorf("core: initial value %d exceeds %d-bit value field", initial, layout.ValBits)
	}
	v := &Var{layout: layout}
	v.w.Store(layout.Pack(0, initial))
	return v, nil
}

// Init (re)initializes a zero Var in place, for Vars embedded in arrays or
// structs (e.g. per-node link fields in lock-free containers). It must be
// called before the Var is shared between goroutines.
func (v *Var) Init(layout word.Layout, initial uint64) error {
	if initial > layout.MaxVal() {
		return fmt.Errorf("core: initial value %d exceeds %d-bit value field", initial, layout.ValBits)
	}
	v.layout = layout
	v.w.Store(layout.Pack(0, initial))
	return nil
}

// MustNewVar is NewVar for statically valid arguments; it panics on error.
func MustNewVar(layout word.Layout, initial uint64) *Var {
	v, err := NewVar(layout, initial)
	if err != nil {
		panic(err)
	}
	return v
}

// Layout returns the variable's tag|value layout.
func (v *Var) Layout() word.Layout { return v.layout }

// SetMetrics attaches an optional metrics sink (nil disables, the
// default). Like machine.Config.Observer for the simulator, this is how
// the production-path primitives report retry and contention behaviour;
// the instrumented paths stay lock- and allocation-free. Set it before
// the Var is shared between goroutines.
func (v *Var) SetMetrics(m *obs.Metrics) { v.obs = m }

// SetContention attaches a contention-management policy governing this
// Var's own retry loops (Store, CompareAndSwap). Nil (the default) means
// retry immediately. Like SetMetrics, set it before the Var is shared.
// Callers running their own LL/SC loops (the data structures) consult
// their own policies; this one covers only the loops Var owns.
func (v *Var) SetContention(p *contention.Policy) { v.cm = p }

// SetTracer attaches an optional span tracer (nil disables, the default)
// covering the retry loops this Var owns (Store, CompareAndSwap): each
// invocation becomes one span with its retries and waits attributed.
// Spans record as Ambient — the hardware path has no paper-style process
// id. Set before the Var is shared; the disabled path stays a single
// branch with zero allocations (alloc_test.go).
func (v *Var) SetTracer(t *trace.Tracer) { v.tr = t }

// SetStallHook installs a function called inside the LL-SC window, right
// after LL's load. Production code leaves it nil; benchmarks and tests
// install runtime.Gosched (or a fault-plan stall) to widen the window so
// that contention — which on a single processor is otherwise nearly
// unobservable — actually occurs. Mirrors the simulator's fault plans and
// the stall hook of LargeVar. Set before the Var is shared.
func (v *Var) SetStallHook(f func()) { v.stall = f }

// Read returns the current value; it linearizes at the underlying load.
func (v *Var) Read() uint64 {
	v.obs.Inc(obs.CtrRead)
	return v.layout.Val(v.w.Load())
}

// LL performs a load-linked: it snapshots the variable (Figure 4, line 1:
// *keep := *addr) and returns the data value along with the Keep token for
// the subsequent VL/SC.
func (v *Var) LL() (uint64, Keep) {
	v.obs.Inc(obs.CtrLL)
	k := Keep{word: v.w.Load()} // line 1
	if v.stall != nil {
		v.stall()
	}
	return v.layout.Val(k.word), k // line 2
}

// VL reports whether the variable is unchanged since the LL that produced
// keep (Figure 4, line 3: keep = *addr).
func (v *Var) VL(keep Keep) bool {
	v.obs.Inc(obs.CtrVL)
	return keep.word == v.w.Load()
}

// SC attempts to store new, succeeding iff no successful SC intervened
// since the LL that produced keep (Figure 4, line 4:
// CAS(addr, keep, (keep.tag ⊕ 1, new))). Oversized values panic, as they
// are programming errors rather than legitimate contention failures.
//
// A false return always means interference — on CAS hardware there are no
// spurious failures (Theorem 2) — so the metrics attribute every failure
// to CtrSCFailInterference.
func (v *Var) SC(keep Keep, new uint64) bool {
	if new > v.layout.MaxVal() {
		panic(fmt.Sprintf("core: SC value %d exceeds %d-bit value field", new, v.layout.ValBits))
	}
	v.obs.Inc(obs.CtrSC)
	if v.w.CompareAndSwap(keep.word, v.layout.Bump(keep.word, new)) {
		return true
	}
	v.obs.Inc(obs.CtrSCFailInterference)
	return false
}

// Tag exposes the tag of the snapshot held by a Keep. It exists for
// wraparound experiments (E7) and white-box tests; applications do not
// need it.
func (v *Var) Tag(keep Keep) uint64 {
	return v.layout.Tag(keep.word)
}

// Store atomically writes val via an LL/SC loop, advancing the tag like
// any other successful SC — a plain overwrite of the packed word would
// break the tag protection every outstanding Keep relies on. Lock-free:
// a retry implies another SC succeeded.
func (v *Var) Store(val uint64) {
	if val > v.layout.MaxVal() {
		panic(fmt.Sprintf("core: Store value %d exceeds %d-bit value field", val, v.layout.ValBits))
	}
	sp := v.tr.Begin(trace.Ambient, trace.OpStore)
	var w contention.Waiter
	for {
		_, keep := v.LL()
		if v.SC(keep, val) {
			sp.End(true)
			return
		}
		// Failure here is always interference (Theorem 2: CAS hardware
		// has no spurious failures).
		sp.Retry(trace.CauseInterference)
		if sp.Active() {
			sp.AddWait(w.WaitTimed(v.cm, contention.Ambient, contention.Interference))
		} else {
			w.Wait(v.cm, contention.Ambient, contention.Interference)
		}
	}
}

// CompareAndSwap implements CAS from LL/SC (the direction opposite to
// Figure 4, included for API completeness): atomically replace old with
// new iff the current value equals old. A no-op CAS (old == new)
// linearizes at the LL's read, exactly as in Figure 3's argument.
// Lock-free.
func (v *Var) CompareAndSwap(old, new uint64) bool {
	v.obs.Inc(obs.CtrCASAttempt)
	sp := v.tr.Begin(trace.Ambient, trace.OpCAS)
	var w contention.Waiter
	for i := 0; ; i++ {
		if i > 0 {
			v.obs.Inc(obs.CtrCASRetry)
		}
		val, keep := v.LL()
		if val != old {
			sp.End(false)
			return false
		}
		if old == new {
			sp.End(true)
			return true
		}
		if v.SC(keep, new) {
			sp.End(true)
			return true
		}
		sp.Retry(trace.CauseInterference)
		if sp.Active() {
			sp.AddWait(w.WaitTimed(v.cm, contention.Ambient, contention.Interference))
		} else {
			w.Wait(v.cm, contention.Ambient, contention.Interference)
		}
	}
}
