package core

import (
	"math/rand"
	"testing"
)

// collect drains the queue order non-destructively by walking the links.
func (q *tagQueue) order() []uint64 {
	out := make([]uint64, 0, q.size())
	for n := q.head; ; n = q.next[n] {
		out = append(out, uint64(n))
		if n == q.tail {
			break
		}
	}
	return out
}

func TestTagQueueInitialOrder(t *testing.T) {
	q := newTagQueue(5)
	want := []uint64{0, 1, 2, 3, 4}
	got := q.order()
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTagQueueMoveToBack(t *testing.T) {
	q := newTagQueue(5)
	q.moveToBack(2)
	got := q.order()
	want := []uint64{0, 1, 3, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after moveToBack(2): %v, want %v", got, want)
		}
	}
	// Moving the head.
	q.moveToBack(0)
	if q.front() != 1 {
		t.Errorf("front = %d, want 1", q.front())
	}
	// Moving the tail is a no-op.
	tail := q.order()[q.size()-1]
	q.moveToBack(tail)
	if got := q.order()[q.size()-1]; got != tail {
		t.Errorf("tail changed from %d to %d", tail, got)
	}
}

func TestTagQueueRotate(t *testing.T) {
	q := newTagQueue(3)
	if got := q.rotate(); got != 0 {
		t.Errorf("rotate = %d, want 0", got)
	}
	if got := q.rotate(); got != 1 {
		t.Errorf("rotate = %d, want 1", got)
	}
	if got := q.rotate(); got != 2 {
		t.Errorf("rotate = %d, want 2", got)
	}
	if got := q.rotate(); got != 0 {
		t.Errorf("rotate = %d, want 0 (full cycle)", got)
	}
}

func TestTagQueueSingleton(t *testing.T) {
	q := newTagQueue(1)
	if got := q.rotate(); got != 0 {
		t.Errorf("rotate = %d, want 0", got)
	}
	q.moveToBack(0)
	if q.front() != 0 {
		t.Errorf("front = %d, want 0", q.front())
	}
}

func TestTagQueuePermutationInvariant(t *testing.T) {
	// Property: after any sequence of moveToBack/rotate operations the
	// queue still holds exactly the tags 0..size-1, each once, and the
	// prev links mirror the next links.
	const size = 9
	q := newTagQueue(size)
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 10000; step++ {
		if rng.Intn(2) == 0 {
			q.moveToBack(uint64(rng.Intn(size)))
		} else {
			q.rotate()
		}
		if step%500 != 0 {
			continue
		}
		got := q.order()
		if len(got) != size {
			t.Fatalf("step %d: queue has %d elements, want %d: %v", step, len(got), size, got)
		}
		seen := make(map[uint64]bool, size)
		for _, x := range got {
			if seen[x] {
				t.Fatalf("step %d: duplicate tag %d in %v", step, x, got)
			}
			seen[x] = true
		}
		// prev-link symmetry
		for n := q.head; n != q.tail; n = q.next[n] {
			if q.prev[q.next[n]] != n {
				t.Fatalf("step %d: broken prev link at node %d", step, n)
			}
		}
	}
}

func TestTagQueueFeedbackGuarantee(t *testing.T) {
	// The property Figure 7 relies on: if a tag is re-announced (moved to
	// back) at least once every m rotations, and the queue has > m
	// elements, that tag is never returned by rotate.
	const size = 5 // 2Nk+1 with Nk=2
	const protected = 3
	q := newTagQueue(size)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 { // re-announce every other operation (m=2 < size-1)
			q.moveToBack(protected)
		}
		if got := q.rotate(); got == protected {
			t.Fatalf("iteration %d: protected tag %d escaped the feedback mechanism", i, protected)
		}
	}
}

func TestSlotStackBasic(t *testing.T) {
	s := newSlotStack(3)
	if s.free() != 3 {
		t.Fatalf("free = %d, want 3", s.free())
	}
	a, ok := s.pop()
	if !ok || a != 0 {
		t.Fatalf("pop = (%d,%v), want (0,true)", a, ok)
	}
	b, _ := s.pop()
	c, _ := s.pop()
	if b != 1 || c != 2 {
		t.Fatalf("pops = %d,%d want 1,2", b, c)
	}
	if _, ok := s.pop(); ok {
		t.Fatal("pop on empty stack succeeded")
	}
	s.push(b)
	if s.free() != 1 {
		t.Fatalf("free = %d, want 1", s.free())
	}
	got, ok := s.pop()
	if !ok || got != b {
		t.Fatalf("pop after push = (%d,%v), want (%d,true)", got, ok, b)
	}
}

func TestSlotStackLIFO(t *testing.T) {
	s := newSlotStack(4)
	var popped []int
	for {
		x, ok := s.pop()
		if !ok {
			break
		}
		popped = append(popped, x)
	}
	for i := len(popped) - 1; i >= 0; i-- {
		s.push(popped[i])
	}
	// Last pushed was popped[0], so pops must return popped in order.
	for i := 0; i < len(popped); i++ {
		x, ok := s.pop()
		if !ok || x != popped[i] {
			t.Fatalf("LIFO violated: got %d, want %d", x, popped[i])
		}
	}
}
