package core

import (
	"fmt"
	"sync"
	"sync/atomic" //llsc:allow nakedatomic(Figure 6 targets native hardware: the header word and data segments are the raw cells the construction is made of)
	"time"

	"repro/internal/contention"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/word"
)

// LargeFamily is the shared context for the paper's Figure 6: WLL/VL/SC
// operations on W-word variables, implemented from CAS.
//
// A variable consists of a header word record{tag, pid} and W segment
// words record{tag, val}. A SC installs a new header (tag ⊕ 1, p) with
// CAS and then copies its announced value into the segments; because the
// SC'er may stall mid-copy, all processes help complete the copy (the
// Copy procedure) using the announce array A, which holds each process's
// in-flight SC value.
//
// A is shared by every variable created from the family, which is the
// paper's key space improvement over Anderson–Moir [2]: Θ(NW) overhead
// total, regardless of how many variables exist (Theorem 4). WLL and SC
// take Θ(W) time, VL Θ(1).
type LargeFamily struct {
	n, w int
	seg  word.Layout // tag | value-part, shared tag domain with the header
	hdr  word.Fields // tag | pid
	a    []atomic.Uint64
	obs  *obs.Metrics
	cm   *contention.Policy
	tr   *trace.Tracer
	help *obs.Hist

	// vars registers every variable created from the family so
	// crash-recovery can scan for orphaned copies (Recover) and quiescent
	// conservation checks can audit every segment (CheckConservation).
	varsMu sync.Mutex //llsc:allow nakedatomic(guards the crash-recovery registry only, never the algorithm hot path)
	vars   []*LargeVar

	// stallHook, when non-nil, is invoked by SC between the header CAS
	// and the subsequent Copy. Tests use it to stall an SC'er mid-update
	// and prove that helpers complete the copy. Never set in production.
	stallHook func(pid int)
}

// LargeConfig parametrizes a LargeFamily.
type LargeConfig struct {
	// Procs is the number of processes N. Each process drives at most one
	// operation at a time through its LargeProc handle.
	Procs int
	// Words is W, the number of segment words per variable.
	Words int
	// TagBits is the width of the tag field in both the header and each
	// segment (they share a tag domain). The remaining header bits hold
	// the process id; the remaining segment bits hold data. Zero selects
	// a default that leaves 16 data bits per segment, i.e. 48, shrunk if
	// necessary to fit the pid field.
	TagBits uint
}

// NewLargeFamily validates cfg and builds the family.
func NewLargeFamily(cfg LargeConfig) (*LargeFamily, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("core: Procs must be at least 1, got %d", cfg.Procs)
	}
	if cfg.Words < 1 {
		return nil, fmt.Errorf("core: Words must be at least 1, got %d", cfg.Words)
	}
	pidBits := word.BitsFor(uint64(cfg.Procs - 1))
	tagBits := cfg.TagBits
	if tagBits == 0 {
		tagBits = 48
		if tagBits+pidBits > word.WordBits {
			tagBits = word.WordBits - pidBits
		}
	}
	if tagBits+pidBits > word.WordBits {
		return nil, fmt.Errorf("core: tag width %d plus pid width %d exceeds the %d-bit word",
			tagBits, pidBits, word.WordBits)
	}
	seg, err := word.NewLayout(tagBits)
	if err != nil {
		return nil, fmt.Errorf("core: invalid tag width: %w", err)
	}
	hdr, err := word.NewFields(tagBits, pidBits)
	if err != nil {
		return nil, fmt.Errorf("core: building header layout: %w", err)
	}
	return &LargeFamily{
		n:   cfg.Procs,
		w:   cfg.Words,
		seg: seg,
		hdr: hdr,
		a:   make([]atomic.Uint64, cfg.Procs*cfg.Words),
	}, nil
}

// MustNewLargeFamily is NewLargeFamily for statically valid configs.
func MustNewLargeFamily(cfg LargeConfig) *LargeFamily {
	f, err := NewLargeFamily(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// SetMetrics attaches an optional metrics sink to the family (nil
// disables); every variable created from the family reports through it.
// CopyWords/CopyFixes expose Figure 6's Θ(W) copy-and-help work.
func (f *LargeFamily) SetMetrics(m *obs.Metrics) { f.obs = m }

// SetContention attaches a contention-management policy governing the
// retry loops of this family's variables (Read). Nil (the default) means
// retry immediately. Set before the family is shared.
func (f *LargeFamily) SetContention(p *contention.Policy) { f.cm = p }

// SetTracer attaches an optional span tracer (nil disables): every
// Figure 6 copy fix — a stale segment repaired on behalf of the SC'er —
// is emitted as a help event under the *helped* process's id, with its
// wall-clock duration. Set before the family is shared.
func (f *LargeFamily) SetTracer(t *trace.Tracer) { f.tr = t }

// SetHelpHist attaches an optional histogram recording the wall-clock
// nanoseconds of each copy fix (the help_ns latency attribution of bench
// records). Recording costs two clock reads per fix; nil (the default)
// disables. Set before the family is shared.
func (f *LargeFamily) SetHelpHist(h *obs.Hist) { f.help = h }

// Procs returns N.
func (f *LargeFamily) Procs() int { return f.n }

// Words returns W.
func (f *LargeFamily) Words() int { return f.w }

// MaxSegmentValue returns the largest value storable in one segment; a
// variable's full value is a W-vector of such segment values.
func (f *LargeFamily) MaxSegmentValue() uint64 { return f.seg.MaxVal() }

// OverheadWords returns the family's space overhead in 64-bit words — the
// announce array A, Θ(NW), shared by all variables (Theorem 4).
func (f *LargeFamily) OverheadWords() int { return len(f.a) }

// announce returns the announce word A[pid][i].
func (f *LargeFamily) announce(pid, i int) *atomic.Uint64 {
	return &f.a[pid*f.w+i]
}

// Proc returns the handle for process id. Figure 6 needs only the
// identity, so handles are stateless and may be created freely, but each
// must be used by one goroutine at a time.
func (f *LargeFamily) Proc(id int) (*LargeProc, error) {
	if id < 0 || id >= f.n {
		return nil, fmt.Errorf("core: process id %d out of range [0,%d)", id, f.n)
	}
	return &LargeProc{f: f, id: id}, nil
}

// LargeProc is a per-process handle for Figure 6 operations.
type LargeProc struct {
	f  *LargeFamily
	id int
}

// ID returns the process identifier.
func (p *LargeProc) ID() int { return p.id }

// LargeVar is one W-word variable of a LargeFamily.
type LargeVar struct {
	f    *LargeFamily
	hdr  atomic.Uint64
	data []atomic.Uint64
}

// LKeep is the private word of the modified WLL interface: the header tag
// observed by the WLL, threaded to VL and SC.
type LKeep struct {
	tag uint64
}

// NewVar creates a variable initialized to the W-vector initial. Each
// element must fit the segment value field.
func (f *LargeFamily) NewVar(initial []uint64) (*LargeVar, error) {
	if len(initial) != f.w {
		return nil, fmt.Errorf("core: initial value has %d words, want %d", len(initial), f.w)
	}
	v := &LargeVar{f: f, data: make([]atomic.Uint64, f.w)}
	for i, x := range initial {
		if x > f.seg.MaxVal() {
			return nil, fmt.Errorf("core: initial[%d] = %d exceeds %d-bit segment value field",
				i, x, f.seg.ValBits)
		}
		v.data[i].Store(f.seg.Pack(0, x))
	}
	v.hdr.Store(f.hdr.Pack(0, 0))
	f.varsMu.Lock()
	f.vars = append(f.vars, v)
	f.varsMu.Unlock()
	return v, nil
}

// WordsPerValue returns W for this variable's family.
func (v *LargeVar) WordsPerValue() int { return v.f.w }

// FootprintWords returns the per-variable storage in 64-bit words: one
// header plus W segments (the paper counts these as "the words to be
// accessed", not overhead).
func (v *LargeVar) FootprintWords() int { return 1 + v.f.w }

// Succ is the WLL/Copy result indicating success: a consistent value was
// read. Any other result is the id of a process that completed a
// successful SC during the operation.
const Succ = -1

// copyVal is the paper's Copy procedure (Figure 6, lines 1-9). It ensures
// every segment carries the value announced by the SC that installed hdr,
// and, when save is non-nil, collects a consistent snapshot into save. It
// returns Succ, or the pid of a process whose SC overtook the copy.
func (v *LargeVar) copyVal(hdr uint64, save []uint64) int {
	f := v.f
	hdrTag := f.hdr.Get(hdr, 0)
	prevTag := f.seg.DecTag(hdrTag)
	pid := int(f.hdr.Get(hdr, 1))
	for i := 0; i < f.w; i++ {
		f.obs.IncProc(pid, obs.CtrCopyWords)
		y := v.data[i].Load()        // line 2
		if f.seg.Tag(y) == prevTag { // line 3
			f.obs.IncProc(pid, obs.CtrCopyFixes)
			if f.tr != nil || f.help != nil {
				t0 := time.Now()
				z := f.seg.Pack(hdrTag, f.announce(pid, i).Load()) // line 4
				v.data[i].CompareAndSwap(y, z)                     // line 5
				y = z                                              // line 6
				d := time.Since(t0)
				f.help.ObserveDuration(d)
				f.tr.Emit(pid, trace.KindHelp, trace.OpNone, d, 1)
			} else {
				z := f.seg.Pack(hdrTag, f.announce(pid, i).Load()) // line 4
				v.data[i].CompareAndSwap(y, z)                     // line 5
				y = z                                              // line 6
			}
		}
		if h := v.hdr.Load(); h != hdr { // line 7
			return int(f.hdr.Get(h, 1))
		}
		if save != nil {
			save[i] = f.seg.Val(y) // line 8
		}
	}
	return Succ // line 9
}

// WLL is the weak load-linked of Figure 6 (lines 10-12). On success it
// fills dst (which must have length W) with a consistent value of the
// variable and returns (keep, Succ). If a successful SC intervenes, it
// returns the winner's process id instead, dst holds no consistent value,
// and a subsequent SC with the returned keep is certain to fail — the
// caller can skip its wasted computation, which is WLL's purpose.
func (v *LargeVar) WLL(p *LargeProc, dst []uint64) (LKeep, int) {
	if len(dst) != v.f.w {
		panic(fmt.Sprintf("core: WLL destination has %d words, want %d", len(dst), v.f.w))
	}
	v.f.obs.IncProc(p.id, obs.CtrLL)
	x := v.hdr.Load()                     // line 10
	keep := LKeep{tag: v.f.hdr.Get(x, 0)} // line 11
	return keep, v.copyVal(x, dst)        // line 12
}

// VL reports whether no successful SC has occurred since the WLL that
// produced keep (Figure 6, line 13). Θ(1).
func (v *LargeVar) VL(p *LargeProc, keep LKeep) bool {
	v.f.obs.IncProc(p.id, obs.CtrVL)
	return v.f.hdr.Get(v.hdr.Load(), 0) == keep.tag
}

// SC attempts to store the W-vector newval (Figure 6, lines 14-21). It
// succeeds iff no successful SC intervened since the WLL that produced
// keep. Values exceeding the segment field panic (programming error).
func (v *LargeVar) SC(p *LargeProc, keep LKeep, newval []uint64) bool {
	f := v.f
	if len(newval) != f.w {
		panic(fmt.Sprintf("core: SC value has %d words, want %d", len(newval), f.w))
	}
	f.obs.IncProc(p.id, obs.CtrSC)
	oldhdr := v.hdr.Load()                // line 14
	if f.hdr.Get(oldhdr, 0) != keep.tag { // line 15
		f.obs.IncProc(p.id, obs.CtrSCFailInterference)
		return false
	}
	for i, x := range newval { // lines 16-17: announce the new value
		if x > f.seg.MaxVal() {
			panic(fmt.Sprintf("core: SC value[%d] = %d exceeds %d-bit segment value field",
				i, x, f.seg.ValBits))
		}
		f.announce(p.id, i).Store(x)
	}
	newhdr := f.hdr.Pack(f.seg.IncTag(keep.tag), uint64(p.id)) // line 18
	if !v.hdr.CompareAndSwap(oldhdr, newhdr) {                 // line 19
		f.obs.IncProc(p.id, obs.CtrSCFailInterference)
		return false
	}
	if f.stallHook != nil {
		f.stallHook(p.id)
	}
	v.copyVal(newhdr, nil) // line 20: p may need A[p] for its next SC
	return true            // line 21
}

// Read returns a consistent snapshot of the variable into dst, retrying
// WLL until it succeeds. It is lock-free: a retry implies some SC
// succeeded, i.e. the system made progress.
func (v *LargeVar) Read(p *LargeProc, dst []uint64) {
	var w contention.Waiter
	for {
		if _, res := v.WLL(p, dst); res == Succ {
			return
		}
		// A failed WLL means another process's SC succeeded mid-copy.
		w.Wait(v.f.cm, p.id, contention.Interference)
	}
}

// ReadSegment returns the value part of segment i in a single atomic
// load, without the consistency guarantee of WLL: the value belongs to
// the current committed generation or to the immediately preceding one
// (segments are never more than one generation behind). Callers that
// maintain monotone or single-writer-stable slots — such as the wait-free
// universal construction's per-process result slots — can rely on this
// for wait-free reads of one segment. For multi-segment consistency use
// WLL or Read.
func (v *LargeVar) ReadSegment(i int) uint64 {
	return v.f.seg.Val(v.data[i].Load())
}
