package core

import (
	"sync"
	"testing"

	"repro/internal/word"
)

func TestVarStore(t *testing.T) {
	v := MustNewVar(word.MustLayout(32), 5)
	_, stale := v.LL()
	v.Store(9)
	if got := v.Read(); got != 9 {
		t.Fatalf("Read = %d, want 9", got)
	}
	// Store advances the tag: outstanding sequences must fail.
	if v.VL(stale) {
		t.Error("VL true across a Store")
	}
	if v.SC(stale, 1) {
		t.Error("stale SC succeeded across a Store")
	}
}

func TestVarStorePanicsOnOversized(t *testing.T) {
	v := MustNewVar(word.MustLayout(60), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Store did not panic")
		}
	}()
	v.Store(16)
}

func TestVarCompareAndSwap(t *testing.T) {
	v := MustNewVar(word.MustLayout(32), 5)
	if !v.CompareAndSwap(5, 6) {
		t.Error("matching CAS failed")
	}
	if v.CompareAndSwap(5, 7) {
		t.Error("stale CAS succeeded")
	}
	if !v.CompareAndSwap(6, 6) {
		t.Error("no-op CAS failed")
	}
	if got := v.Read(); got != 6 {
		t.Errorf("Read = %d, want 6", got)
	}
}

func TestVarNoOpCASDoesNotInvalidate(t *testing.T) {
	// Per Figure 3's linearization argument, CAS(v, v) is a read and must
	// not invalidate outstanding LL-SC sequences.
	v := MustNewVar(word.MustLayout(32), 4)
	_, keep := v.LL()
	if !v.CompareAndSwap(4, 4) {
		t.Fatal("no-op CAS failed")
	}
	if !v.VL(keep) {
		t.Error("VL false after no-op CAS")
	}
	if !v.SC(keep, 5) {
		t.Error("SC failed after no-op CAS")
	}
}

func TestVarCASConcurrentCounter(t *testing.T) {
	const workers = 8
	const rounds = 5000
	v := MustNewVar(word.MustLayout(32), 0)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					old := v.Read()
					if v.CompareAndSwap(old, old+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := v.Read(); got != workers*rounds {
		t.Errorf("counter = %d, want %d", got, workers*rounds)
	}
}

func TestVarStoreConcurrentWithSC(t *testing.T) {
	// Stores and SC-increments interleave; the final value must reflect
	// all increments applied after the last store, and no operation may
	// tear. We check a weaker but decisive invariant: the value is always
	// one that some operation actually wrote.
	v := MustNewVar(word.MustLayout(32), 0)
	const rounds = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			v.Store(1_000_000) // distinctive base
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			for {
				val, keep := v.LL()
				if v.SC(keep, val+1) {
					break
				}
			}
		}
	}()
	wg.Wait()
	got := v.Read()
	if got < 1_000_000 || got > 1_000_000+rounds {
		t.Errorf("final value %d outside the reachable range", got)
	}
}
