package core

import (
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/word"
)

// The metrics hooks must not change the primitives' cost model: with a
// nil sink the hot paths stay allocation-free (asserted alongside the
// plain assertions in alloc_test.go by virtue of nil being the default),
// and with a live sink they must STILL be allocation-free — counting must
// never introduce a hidden allocation, lock, or GC assist.

func TestVarOpsAllocationFreeWithMetrics(t *testing.T) {
	v := MustNewVar(word.MustLayout(32), 0)
	v.SetMetrics(obs.New())
	if n := testing.AllocsPerRun(1000, func() {
		val, keep := v.LL()
		if !v.VL(keep) {
			t.Fatal("VL failed")
		}
		if !v.SC(keep, val+1) {
			t.Fatal("SC failed")
		}
		v.Read()
		v.CompareAndSwap(val+1, val+2)
	}); n != 0 {
		t.Errorf("metrics-enabled Var ops allocate %.1f objects per op, want 0", n)
	}
}

func TestBoundedOpsAllocationFreeWithMetrics(t *testing.T) {
	f := MustNewBoundedFamily(BoundedConfig{Procs: 2, K: 2})
	f.SetMetrics(obs.New())
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		val, keep, err := v.LL(p)
		if err != nil {
			t.Fatal(err)
		}
		if !v.SC(p, keep, (val+1)&f.MaxVal()) {
			t.Fatal("SC failed")
		}
	}); n != 0 {
		t.Errorf("metrics-enabled BoundedVar LL/SC allocates %.1f objects per op, want 0", n)
	}
}

func TestLargeOpsAllocationFreeWithMetrics(t *testing.T) {
	f := MustNewLargeFamily(LargeConfig{Procs: 2, Words: 4})
	f.SetMetrics(obs.New())
	v, err := f.NewVar(make([]uint64, 4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 4)
	val := make([]uint64, 4)
	if n := testing.AllocsPerRun(1000, func() {
		keep, res := v.WLL(p, dst)
		if res != Succ {
			t.Fatal("WLL failed")
		}
		val[0] = (val[0] + 1) & f.MaxSegmentValue()
		if !v.SC(p, keep, val) {
			t.Fatal("SC failed")
		}
	}); n != 0 {
		t.Errorf("metrics-enabled LargeVar WLL/SC allocates %.1f objects per op, want 0", n)
	}
}

// TestVarMetricsCountsExact checks the counter semantics on a known
// sequential workload: attempts, failures by cause, and reads all land in
// the right counters with exact totals.
func TestVarMetricsCountsExact(t *testing.T) {
	m := obs.NewWithStripes(2)
	v := MustNewVar(word.MustLayout(32), 0)
	v.SetMetrics(m)

	const n = 100
	for i := 0; i < n; i++ {
		val, keep := v.LL()
		if !v.SC(keep, val+1) {
			t.Fatal("uncontended SC failed")
		}
	}
	// One guaranteed interference failure: stale keep after an SC.
	_, stale := v.LL()
	val, keep := v.LL()
	if !v.SC(keep, val+1) {
		t.Fatal("uncontended SC failed")
	}
	if v.SC(stale, 0) {
		t.Fatal("stale SC succeeded")
	}
	v.Read()

	s := m.Snapshot()
	if got := s.Get(obs.CtrLL); got != n+2 {
		t.Errorf("ll = %d, want %d", got, n+2)
	}
	if got := s.Get(obs.CtrSC); got != n+2 {
		t.Errorf("sc = %d, want %d", got, n+2)
	}
	if got := s.Get(obs.CtrSCFailInterference); got != 1 {
		t.Errorf("sc_fail_interference = %d, want 1", got)
	}
	if got := s.Get(obs.CtrSCFailSpurious); got != 0 {
		t.Errorf("sc_fail_spurious = %d, want 0 (real CAS hardware never fails spuriously)", got)
	}
	if got := s.Get(obs.CtrRead); got != 1 {
		t.Errorf("read = %d, want 1", got)
	}
}

// TestBoundedMetricsCountTagRecycles checks Figure 7's distinguishing
// counter: every successful-path SC rotates one tag through the queue.
func TestBoundedMetricsCountTagRecycles(t *testing.T) {
	m := obs.NewWithStripes(1)
	f := MustNewBoundedFamily(BoundedConfig{Procs: 1, K: 1})
	f.SetMetrics(m)
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		val, keep, err := v.LL(p)
		if err != nil {
			t.Fatal(err)
		}
		if !v.SC(p, keep, (val+1)&f.MaxVal()) {
			t.Fatal("uncontended SC failed")
		}
	}
	s := m.Snapshot()
	if got := s.Get(obs.CtrTagRecycle); got != n {
		t.Errorf("tag_recycle = %d, want %d", got, n)
	}
	if got := s.Get(obs.CtrSCFailInterference); got != 0 {
		t.Errorf("sc_fail_interference = %d, want 0 sequentially", got)
	}
}

// TestRVarMetricsSpuriousSplit checks that, with the machine observer
// attached, spurious RSC failures are attributed to sc_fail_spurious and
// surface as sc_retry loops, while the SC itself still succeeds.
func TestRVarMetricsSpuriousSplit(t *testing.T) {
	mx := obs.NewWithStripes(1)
	m := machine.MustNew(machine.Config{Procs: 1, Observer: mx.MachineObserver()})
	v, err := NewRVar(m, word.MustLayout(32), 0)
	if err != nil {
		t.Fatal(err)
	}
	v.SetMetrics(mx)
	p := m.Proc(0)

	val, keep := v.LL(p)
	p.FailNext(3) // three injected spurious RSC failures
	if !v.SC(p, keep, val+1) {
		t.Fatal("SC should survive spurious failures")
	}

	s := mx.Snapshot()
	if got := s.Get(obs.CtrSCFailSpurious); got != 3 {
		t.Errorf("sc_fail_spurious = %d, want 3", got)
	}
	if got := s.Get(obs.CtrSCRetry); got != 3 {
		t.Errorf("sc_retry = %d, want 3 (one extra loop per spurious failure)", got)
	}
	if got := s.Get(obs.CtrSCFailInterference); got != 0 {
		t.Errorf("sc_fail_interference = %d, want 0 (no other writer)", got)
	}
	if got := s.Get(obs.CtrSC); got != 1 {
		t.Errorf("sc = %d, want 1", got)
	}
}

// TestVarMetricsConcurrent exercises the instrumented hot path from many
// goroutines under the race detector and checks the counters stay exact:
// every SC either succeeds (total increments = final value) or is
// counted as an interference failure.
func TestVarMetricsConcurrent(t *testing.T) {
	m := obs.New()
	v := MustNewVar(word.MustLayout(32), 0)
	v.SetMetrics(m)

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for {
					val, keep := v.LL()
					if v.SC(keep, val+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()

	s := m.Snapshot()
	const want = workers * perWorker
	if got := v.Read(); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := s.Get(obs.CtrSC) - s.Get(obs.CtrSCFailInterference); got != want {
		t.Errorf("sc - sc_fail_interference = %d, want %d (every SC succeeds or is counted failed)",
			got, want)
	}
	if got := s.Get(obs.CtrLL); got != s.Get(obs.CtrSC) {
		t.Errorf("ll = %d != sc = %d on an LL+SC-paired workload", got, s.Get(obs.CtrSC))
	}
}
