package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/spec"
	"repro/internal/word"
)

// Sequential differential property tests: arbitrary well-formed operation
// sequences must produce exactly the oracle's results, op for op. (The
// concurrent analogue lives in internal/conformance and cmd/llscfuzz;
// these run on every `go test`.)

func TestVarQuickAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := MustNewVar(word.MustLayout(48), 1)
		oracle := spec.MustNewRegister(1, 1)
		var keep Keep
		haveLL := false
		for i := 0; i < 300; i++ {
			switch rng.Intn(5) {
			case 0:
				if v.Read() != oracle.Read() {
					return false
				}
			case 1:
				val, k := v.LL()
				keep = k
				haveLL = true
				if val != oracle.LL(0) {
					return false
				}
			case 2:
				if !haveLL {
					continue
				}
				if v.VL(keep) != oracle.VL(0) {
					return false
				}
			case 3:
				if !haveLL {
					continue
				}
				nv := uint64(rng.Intn(16))
				if v.SC(keep, nv) != oracle.SC(0, nv) {
					return false
				}
				haveLL = false
			default:
				old, nv := uint64(rng.Intn(16)), uint64(rng.Intn(16))
				if v.CompareAndSwap(old, nv) != oracle.CAS(old, nv) {
					return false
				}
			}
		}
		return v.Read() == oracle.Read()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundedQuickAgainstOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fam := MustNewBoundedFamily(BoundedConfig{Procs: 1, K: 1})
		v, err := fam.NewVar(1)
		if err != nil {
			return false
		}
		p, err := fam.Proc(0)
		if err != nil {
			return false
		}
		oracle := spec.MustNewRegister(1, 1)
		var keep BKeep
		haveLL := false
		for i := 0; i < 300; i++ {
			switch rng.Intn(5) {
			case 0:
				if v.Read() != oracle.Read() {
					return false
				}
			case 1:
				if haveLL {
					v.CL(p, keep) // k=1: release before a fresh sequence
					// CL has no shared effect; the oracle's valid bit for a
					// replaced LL is simply overwritten by the next LL.
				}
				val, k, err := v.LL(p)
				if err != nil {
					return false
				}
				keep = k
				haveLL = true
				if val != oracle.LL(0) {
					return false
				}
			case 2:
				if !haveLL {
					continue
				}
				if v.VL(p, keep) != oracle.VL(0) {
					return false
				}
			case 3:
				if !haveLL {
					continue
				}
				nv := uint64(rng.Intn(16))
				if v.SC(p, keep, nv) != oracle.SC(0, nv) {
					return false
				}
				haveLL = false
			default:
				// Bounded variant has no CAS; extra read instead.
				if v.Read() != oracle.Read() {
					return false
				}
			}
		}
		return v.Read() == oracle.Read()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
