package core

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/word"
)

// RVar is the paper's Figure 5: LL/VL/SC implemented directly from the
// restricted RLL/RSC instructions, using a single tag per word.
//
// Composing Figure 4 over Figure 3 would also yield LL/VL/SC from RLL/RSC,
// but each word would then carry two tags (one consumed by the CAS
// emulation, one by the LL/SC emulation), halving the bits available and
// substantially shortening the time to wraparound. Figure 5 fuses the two
// constructions so one tag serves both purposes (Theorem 3). Benchmark E3
// measures both the step-count and the tag-headroom advantage.
type RVar struct {
	w      *machine.Word
	layout word.Layout
	obs    *obs.Metrics
	cm     *contention.Policy
	tr     *trace.Tracer
}

// NewRVar allocates a variable on machine m holding initial.
func NewRVar(m *machine.Machine, layout word.Layout, initial uint64) (*RVar, error) {
	if initial > layout.MaxVal() {
		return nil, fmt.Errorf("core: initial value %d exceeds %d-bit value field", initial, layout.ValBits)
	}
	return &RVar{w: m.NewWord(layout.Pack(0, initial)), layout: layout}, nil
}

// Layout returns the variable's tag|value layout.
func (v *RVar) Layout() word.Layout { return v.layout }

// SetMetrics attaches an optional metrics sink (nil disables). Pair it
// with Metrics.MachineObserver on the machine for the RSC-level
// spurious/interference split.
func (v *RVar) SetMetrics(m *obs.Metrics) { v.obs = m }

// SetContention attaches a contention-management policy for SC's internal
// RLL/RSC loop. Extra iterations there stem only from spurious RSC
// failures (interference makes SC return false instead), so the policy is
// consulted with cause Spurious. Set before the Var is shared.
func (v *RVar) SetContention(p *contention.Policy) { v.cm = p }

// SetTracer attaches an optional span tracer (nil disables) covering SC:
// each SC invocation becomes one span recording its spurious-failure
// retries and waits under the caller's process id. Set before the Var is
// shared.
func (v *RVar) SetTracer(t *trace.Tracer) { v.tr = t }

// Read returns the current value; it linearizes at the underlying load.
func (v *RVar) Read(p *machine.Proc) uint64 {
	v.obs.IncProc(p.ID(), obs.CtrRead)
	return v.layout.Val(p.Load(v.w))
}

// LL snapshots the variable (Figure 5, lines 1-2) and returns the value
// with the Keep token for the subsequent VL/SC. Note that LL is a plain
// load — it does not consume the processor's reservation, so a process may
// interleave LL-SC sequences on many variables; only the final SC needs
// the (single) reservation, and only briefly.
func (v *RVar) LL(p *machine.Proc) (uint64, Keep) {
	v.obs.IncProc(p.ID(), obs.CtrLL)
	k := Keep{word: p.Load(v.w)}   // line 1
	return v.layout.Val(k.word), k // line 2
}

// VL reports whether the variable is unchanged since the LL that produced
// keep (Figure 5, line 3).
func (v *RVar) VL(p *machine.Proc, keep Keep) bool {
	v.obs.IncProc(p.ID(), obs.CtrVL)
	return keep.word == p.Load(v.w)
}

// SC attempts to store new (Figure 5, lines 4-7). It fails iff a
// successful SC intervened since the LL that produced keep; it is
// wait-free provided only finitely many spurious RSC failures occur during
// one invocation, and completes in constant time after the last spurious
// failure.
func (v *RVar) SC(p *machine.Proc, keep Keep, new uint64) bool {
	if new > v.layout.MaxVal() {
		panic(fmt.Sprintf("core: SC value %d exceeds %d-bit value field", new, v.layout.ValBits))
	}
	v.obs.IncProc(p.ID(), obs.CtrSC)
	sp := v.tr.Begin(p.ID(), trace.OpSC)
	oldword := keep.word                   // line 4
	newword := v.layout.Bump(oldword, new) // line 5: (keep.tag ⊕ 1, newval)
	var cw contention.Waiter
	for i := 0; ; i++ {
		if i > 0 {
			// An extra loop is caused only by a spurious RSC failure —
			// the bounded extra work of Theorem 3.
			v.obs.IncProc(p.ID(), obs.CtrSCRetry)
		}
		if p.RLL(v.w) != oldword { // line 6
			v.obs.IncProc(p.ID(), obs.CtrSCFailInterference)
			sp.End(false)
			return false
		}
		if p.RSC(v.w, newword) { // line 7
			sp.End(true)
			return true
		}
		sp.Retry(trace.CauseSpurious)
		if sp.Active() {
			sp.AddWait(cw.WaitTimed(v.cm, p.ID(), contention.Spurious))
		} else {
			cw.Wait(v.cm, p.ID(), contention.Spurious)
		}
	}
}
