package core

import (
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/word"
)

func TestRVarBasic(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	v, err := NewRVar(m, word.DefaultLayout, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	val, keep := v.LL(p)
	if val != 10 {
		t.Fatalf("LL = %d, want 10", val)
	}
	if !v.VL(p, keep) {
		t.Fatal("VL false right after LL")
	}
	if !v.SC(p, keep, 11) {
		t.Fatal("uncontended SC failed")
	}
	if got := v.Read(p); got != 11 {
		t.Errorf("Read = %d, want 11", got)
	}
}

func TestRVarStaleSCFails(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	v, err := NewRVar(m, word.DefaultLayout, 0)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := m.Proc(0), m.Proc(1)
	_, k0 := v.LL(p0)
	_, k1 := v.LL(p1)
	if !v.SC(p1, k1, 5) {
		t.Fatal("p1 SC failed")
	}
	if v.VL(p0, k0) {
		t.Error("p0 VL true after p1's SC")
	}
	if v.SC(p0, k0, 6) {
		t.Error("p0 stale SC succeeded")
	}
}

func TestRVarABACycleFailsStaleSC(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 2})
	v, err := NewRVar(m, word.DefaultLayout, 7)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := m.Proc(0), m.Proc(1)
	_, stale := v.LL(p0)

	_, k := v.LL(p1)
	if !v.SC(p1, k, 9) {
		t.Fatal("SC to 9 failed")
	}
	_, k = v.LL(p1)
	if !v.SC(p1, k, 7) {
		t.Fatal("SC back to 7 failed")
	}

	if v.VL(p0, stale) {
		t.Error("VL true across ABA cycle")
	}
	if v.SC(p0, stale, 8) {
		t.Error("stale SC succeeded across ABA cycle")
	}
}

func TestRVarConcurrentSequencesOneReservation(t *testing.T) {
	// The key win over raw RLL/RSC: a single process can interleave LL-SC
	// sequences on several variables (Figure 1(a)) even though the
	// underlying machine has only one reservation per processor.
	m := machine.MustNew(machine.Config{Procs: 1})
	x, err := NewRVar(m, word.DefaultLayout, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := NewRVar(m, word.DefaultLayout, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)

	_, kx := x.LL(p)
	_, ky := y.LL(p)
	if !x.VL(p, kx) {
		t.Fatal("VL(x) failed mid-sequence")
	}
	if !y.SC(p, ky, 20) {
		t.Fatal("SC(y) failed")
	}
	if !x.SC(p, kx, 10) {
		t.Fatal("SC(x) failed after SC(y)")
	}
	if x.Read(p) != 10 || y.Read(p) != 20 {
		t.Errorf("values = (%d,%d), want (10,20)", x.Read(p), y.Read(p))
	}
}

func TestRVarStrictMode(t *testing.T) {
	// Figure 5's RLL/RSC pairs are tight, so strict mode must not break
	// them — but note LL itself is a plain load, which in strict mode
	// clears reservations; the algorithm never relies on a reservation
	// surviving an LL, so all is well.
	m := machine.MustNew(machine.Config{Procs: 1, Strict: true})
	v, err := NewRVar(m, word.DefaultLayout, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	for i := uint64(0); i < 100; i++ {
		val, k := v.LL(p)
		if val != i {
			t.Fatalf("LL = %d, want %d", val, i)
		}
		if !v.SC(p, k, i+1) {
			t.Fatalf("SC %d failed in strict mode", i)
		}
	}
}

func TestRVarSpuriousFailureTolerance(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1, SpuriousFailProb: 0.5, Seed: 13})
	v, err := NewRVar(m, word.DefaultLayout, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	for i := uint64(0); i < 500; i++ {
		_, k := v.LL(p)
		if !v.SC(p, k, i+1) {
			t.Fatalf("SC %d failed", i)
		}
	}
	if got := v.Read(p); got != 500 {
		t.Errorf("final = %d, want 500", got)
	}
}

func TestRVarConstantTimeAfterLastSpuriousFailure(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	v, err := NewRVar(m, word.DefaultLayout, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	_, k := v.LL(p)
	p.FailNext(7)
	if !v.SC(p, k, 1) {
		t.Fatal("SC failed")
	}
	st := m.Stats()
	if st.RLLs != 8 {
		t.Errorf("RLLs = %d, want 8 (7 spurious retries + 1 success)", st.RLLs)
	}
}

func TestRVarConcurrentCounter(t *testing.T) {
	const procs = 8
	const rounds = 2000
	m := machine.MustNew(machine.Config{Procs: procs, SpuriousFailProb: 0.02, Seed: 5})
	v, err := NewRVar(m, word.MustLayout(32), 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(p *machine.Proc) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					val, k := v.LL(p)
					if v.SC(p, k, val+1) {
						break
					}
				}
			}
		}(m.Proc(i))
	}
	wg.Wait()
	if got := v.Read(m.Proc(0)); got != procs*rounds {
		t.Errorf("final counter = %d, want %d", got, procs*rounds)
	}
}

func TestRVarRejectsOversized(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	layout := word.MustLayout(60)
	if _, err := NewRVar(m, layout, 16); err == nil {
		t.Error("oversized initial accepted")
	}
	v, err := NewRVar(m, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	_, k := v.LL(p)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized SC value did not panic")
		}
	}()
	v.SC(p, k, 16)
}
