package core

import "testing"

// Figure 7's SC executes exactly one moveToBack and one rotate per call;
// these benches pin their constant-time cost.

func BenchmarkTagQueueMoveToBack(b *testing.B) {
	q := newTagQueue(129) // 2Nk+1 for N=16, k=4
	for i := 0; i < b.N; i++ {
		q.moveToBack(uint64(i % 129))
	}
}

func BenchmarkTagQueueRotate(b *testing.B) {
	q := newTagQueue(129)
	for i := 0; i < b.N; i++ {
		q.rotate()
	}
}

func BenchmarkSlotStackPushPop(b *testing.B) {
	s := newSlotStack(4)
	for i := 0; i < b.N; i++ {
		slot, _ := s.pop()
		s.push(slot)
	}
}
