package core

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/word"
)

// RBoundedFamily is Figure 7 realized on a machine that provides only the
// restricted RLL/RSC pair (the paper's Figure 3 technique applied to
// Figure 7's single CAS, line 15). Bounded tags and RLL/RSC compose
// cleanly: the word's (tag, cnt, pid) triple never recurs while any
// process could compare against it, so the rcas retry pair linearizes
// exactly like the CAS it replaces — and RSC's write-sensitivity is
// immune to ABA regardless.
//
// Complexity matches Theorem 5 (constant time, Θ(N(k+T)) space), with
// termination guaranteed provided only finitely many spurious failures
// occur per SC.
type RBoundedFamily struct {
	m        *machine.Machine
	n, k     int
	nk       int
	tagCount uint64
	cntCount uint64
	fields   word.Fields
	a        []*machine.Word
	procs    []*RBoundedProc
	obs      *obs.Metrics
	cm       *contention.Policy
}

// NewRBoundedFamily builds a Figure 7 family over machine m with
// per-process sequence bound k. The machine's processor count fixes N.
func NewRBoundedFamily(m *machine.Machine, k int) (*RBoundedFamily, error) {
	n := m.NumProcs()
	if k < 1 {
		return nil, fmt.Errorf("core: K must be at least 1, got %d", k)
	}
	nk := n * k
	tagCount := uint64(2*nk + 1)
	cntCount := uint64(nk + 1)
	tagBits := word.BitsFor(tagCount - 1)
	cntBits := word.BitsFor(cntCount - 1)
	pidBits := word.BitsFor(uint64(n - 1))
	if tagBits+cntBits+pidBits >= word.WordBits {
		return nil, fmt.Errorf("core: tag+cnt+pid fields leave no room for data (reduce Procs or K)")
	}
	fields, err := word.NewFields(tagBits, cntBits, pidBits, word.WordBits-tagBits-cntBits-pidBits)
	if err != nil {
		return nil, fmt.Errorf("core: building word layout: %w", err)
	}
	f := &RBoundedFamily{
		m: m, n: n, k: k, nk: nk,
		tagCount: tagCount, cntCount: cntCount, fields: fields,
		a:     make([]*machine.Word, nk),
		procs: make([]*RBoundedProc, n),
	}
	for i := range f.a {
		f.a[i] = m.NewWord(0)
	}
	for i := range f.procs {
		f.procs[i] = &RBoundedProc{
			f: f, p: m.Proc(i),
			s: newSlotStack(k),
			q: newTagQueue(int(tagCount)),
		}
	}
	return f, nil
}

// SetMetrics attaches an optional metrics sink to the family (nil
// disables). Pair it with Metrics.MachineObserver on the machine for the
// RSC-level spurious/interference split.
func (f *RBoundedFamily) SetMetrics(m *obs.Metrics) { f.obs = m }

// SetContention attaches a contention-management policy for the
// spurious-failure retry loop inside SC's rcas (Figure 7 line 15 realized
// over RLL/RSC). Set before the family is shared.
func (f *RBoundedFamily) SetContention(p *contention.Policy) { f.cm = p }

// MaxVal returns the largest data value the layout leaves room for.
func (f *RBoundedFamily) MaxVal() uint64 { return f.fields.Max(bfVal) }

// TagBits returns the width of the bounded tag field.
func (f *RBoundedFamily) TagBits() uint { return f.fields.Width(bfTag) }

// OverheadWords returns the Θ(Nk) announce-array overhead.
func (f *RBoundedFamily) OverheadWords() int { return len(f.a) }

// Proc returns the stable per-process handle for processor id.
func (f *RBoundedFamily) Proc(id int) (*RBoundedProc, error) {
	if id < 0 || id >= f.n {
		return nil, fmt.Errorf("core: process id %d out of range [0,%d)", id, f.n)
	}
	return f.procs[id], nil
}

// RBoundedProc carries the private per-process state (slot stack, tag
// queue, scan index) plus the simulated processor.
type RBoundedProc struct {
	f *RBoundedFamily
	p *machine.Proc
	s *slotStack
	q *tagQueue
	j int
}

// FreeSlots returns how many more LL-SC sequences this process may open.
func (p *RBoundedProc) FreeSlots() int { return p.s.free() }

// RBoundedVar is one small variable of an RBoundedFamily.
type RBoundedVar struct {
	f    *RBoundedFamily
	word *machine.Word
	last []*machine.Word
}

// NewVar creates a variable holding initial.
func (f *RBoundedFamily) NewVar(initial uint64) (*RBoundedVar, error) {
	if initial > f.MaxVal() {
		return nil, fmt.Errorf("core: initial value %d exceeds %d-bit value field",
			initial, f.fields.Width(bfVal))
	}
	v := &RBoundedVar{f: f, word: f.m.NewWord(f.fields.Pack(0, 0, 0, initial)), last: make([]*machine.Word, f.n)}
	for i := range v.last {
		v.last[i] = f.m.NewWord(0)
	}
	return v, nil
}

// Read returns the current value.
func (v *RBoundedVar) Read(p *RBoundedProc) uint64 {
	v.f.obs.IncProc(p.p.ID(), obs.CtrRead)
	return v.f.fields.Get(p.p.Load(v.word), bfVal)
}

// LL performs the load-linked (Figure 7, lines 1-5).
func (v *RBoundedVar) LL(p *RBoundedProc) (uint64, BKeep, error) {
	v.f.obs.IncProc(p.p.ID(), obs.CtrLL)
	slot, ok := p.s.pop()
	if !ok {
		return 0, BKeep{}, ErrTooManySequences
	}
	old := p.p.Load(v.word)
	p.p.Store(v.f.a[p.p.ID()*v.f.k+slot], old)
	fail := p.p.Load(v.word) != old
	return v.f.fields.Get(old, bfVal), BKeep{slot: slot, fail: fail, word: old}, nil
}

// VL reports whether the variable is unchanged since the LL.
func (v *RBoundedVar) VL(p *RBoundedProc, keep BKeep) bool {
	v.f.obs.IncProc(p.p.ID(), obs.CtrVL)
	return !keep.fail && p.p.Load(v.word) == keep.word
}

// CL aborts the sequence, returning the announce slot.
func (v *RBoundedVar) CL(p *RBoundedProc, keep BKeep) {
	v.f.obs.IncProc(p.p.ID(), obs.CtrCL)
	p.s.push(keep.slot)
}

// SC attempts the store-conditional (Figure 7, lines 8-15, with the CAS
// realized by an RLL/RSC pair).
func (v *RBoundedVar) SC(p *RBoundedProc, keep BKeep, newval uint64) bool {
	f := v.f
	if newval > f.MaxVal() {
		p.s.push(keep.slot)
		panic(fmt.Sprintf("core: SC value %d exceeds %d-bit value field", newval, f.fields.Width(bfVal)))
	}
	f.obs.IncProc(p.p.ID(), obs.CtrSC)
	p.s.push(keep.slot)
	if keep.fail {
		f.obs.IncProc(p.p.ID(), obs.CtrSCFailInterference)
		return false
	}
	t := f.fields.Get(p.p.Load(f.a[p.j]), bfTag)
	p.q.moveToBack(t)
	p.j++
	if p.j == f.nk {
		p.j = 0
	}
	t = p.q.rotate()
	f.obs.IncProc(p.p.ID(), obs.CtrTagRecycle)
	cnt := word.AddMod(p.p.Load(v.last[p.p.ID()]), 1, f.cntCount)
	p.p.Store(v.last[p.p.ID()], cnt)
	if rcas(f.obs, f.cm, p.p, v.word, keep.word, f.fields.Pack(t, cnt, uint64(p.p.ID()), newval)) {
		return true
	}
	f.obs.IncProc(p.p.ID(), obs.CtrSCFailInterference)
	return false
}
