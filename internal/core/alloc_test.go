package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/obs/trace"
	"repro/internal/word"
)

// The one-word primitives must be allocation-free on every path: they are
// meant to sit on the hottest paths of non-blocking algorithms, and a
// hidden allocation would mean hidden locks (GC assists) and hidden
// latency.

func TestVarOpsAllocationFree(t *testing.T) {
	v := MustNewVar(word.MustLayout(32), 0)
	if n := testing.AllocsPerRun(1000, func() {
		val, keep := v.LL()
		if !v.VL(keep) {
			t.Fatal("VL failed")
		}
		if !v.SC(keep, val+1) {
			t.Fatal("SC failed")
		}
		v.Read()
	}); n != 0 {
		t.Errorf("Var LL/VL/SC/Read allocates %.1f objects per op, want 0", n)
	}
}

func TestBoundedOpsAllocationFree(t *testing.T) {
	f := MustNewBoundedFamily(BoundedConfig{Procs: 2, K: 2})
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		val, keep, err := v.LL(p)
		if err != nil {
			t.Fatal(err)
		}
		if !v.SC(p, keep, (val+1)&f.MaxVal()) {
			t.Fatal("SC failed")
		}
	}); n != 0 {
		t.Errorf("BoundedVar LL/SC allocates %.1f objects per op, want 0", n)
	}
}

func TestLargeOpsAllocationFree(t *testing.T) {
	// With caller-provided buffers, WLL/SC/VL allocate nothing.
	f := MustNewLargeFamily(LargeConfig{Procs: 2, Words: 4})
	v, err := f.NewVar(make([]uint64, 4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Proc(0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 4)
	val := make([]uint64, 4)
	if n := testing.AllocsPerRun(1000, func() {
		keep, res := v.WLL(p, dst)
		if res != Succ {
			t.Fatal("WLL failed")
		}
		if !v.VL(p, keep) {
			t.Fatal("VL failed")
		}
		val[0]++
		val[0] &= f.MaxSegmentValue()
		if !v.SC(p, keep, val) {
			t.Fatal("SC failed")
		}
	}); n != 0 {
		t.Errorf("LargeVar WLL/VL/SC allocates %.1f objects per op, want 0", n)
	}
}

func TestRVarOpsDoNotAllocateBeyondMachineCells(t *testing.T) {
	// The simulated machine allocates one immutable cell per write (that
	// IS the simulation: pointer identity models cache invalidation), so
	// the RLL/RSC algorithms cost exactly one allocation per successful
	// store and nothing more.
	m := machine.MustNew(machine.Config{Procs: 1})
	v, err := NewRVar(m, word.MustLayout(32), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	if n := testing.AllocsPerRun(1000, func() {
		val, keep := v.LL(p)
		if !v.SC(p, keep, val+1) {
			t.Fatal("SC failed")
		}
	}); n > 1 {
		t.Errorf("RVar LL/SC allocates %.1f objects per op, want ≤ 1 (the machine cell)", n)
	}
}

// The span-tracing hooks must preserve the allocation guarantees above.
// Disabled (no SetTracer call): the hot paths cross a single nil check and
// allocate nothing. Enabled: recording goes into pre-allocated rings, so
// the only allocations are the machine's simulation cells, same as before.

func TestVarTracedPathsAllocationFree(t *testing.T) {
	v := MustNewVar(word.MustLayout(32), 0)
	// Disabled tracing: Store and CompareAndSwap stay 0-alloc.
	if n := testing.AllocsPerRun(1000, func() {
		v.Store(7)
		if !v.CompareAndSwap(7, 8) {
			t.Fatal("CAS failed")
		}
		v.Store(7)
	}); n != 0 {
		t.Errorf("untraced Var Store/CAS allocates %.1f objects per op, want 0", n)
	}
	// Enabled tracing: ring recording is allocation-free too.
	v.SetTracer(trace.MustNew(trace.Config{Procs: 1, EventsPerProc: 256}))
	if n := testing.AllocsPerRun(1000, func() {
		v.Store(7)
		if !v.CompareAndSwap(7, 8) {
			t.Fatal("CAS failed")
		}
		v.Store(7)
	}); n != 0 {
		t.Errorf("traced Var Store/CAS allocates %.1f objects per op, want 0", n)
	}
}

func TestRVarTracedSCDoesNotAllocateBeyondMachineCells(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	v, err := NewRVar(m, word.MustLayout(32), 0)
	if err != nil {
		t.Fatal(err)
	}
	v.SetTracer(trace.MustNew(trace.Config{Procs: 1, EventsPerProc: 256}))
	p := m.Proc(0)
	if n := testing.AllocsPerRun(1000, func() {
		val, keep := v.LL(p)
		if !v.SC(p, keep, val+1) {
			t.Fatal("SC failed")
		}
	}); n > 1 {
		t.Errorf("traced RVar LL/SC allocates %.1f objects per op, want ≤ 1 (the machine cell)", n)
	}
}
