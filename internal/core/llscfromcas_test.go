package core

import (
	"sync"
	"testing"

	"repro/internal/word"
)

func TestVarBasicLLSC(t *testing.T) {
	v := MustNewVar(word.DefaultLayout, 10)
	val, keep := v.LL()
	if val != 10 {
		t.Fatalf("LL = %d, want 10", val)
	}
	if !v.VL(keep) {
		t.Fatal("VL false right after LL")
	}
	if !v.SC(keep, 11) {
		t.Fatal("uncontended SC failed")
	}
	if got := v.Read(); got != 11 {
		t.Errorf("Read = %d, want 11", got)
	}
}

func TestVarSCFailsAfterInterveningSC(t *testing.T) {
	v := MustNewVar(word.DefaultLayout, 0)
	_, keepA := v.LL()
	_, keepB := v.LL()
	if !v.SC(keepB, 5) {
		t.Fatal("first SC failed")
	}
	if v.VL(keepA) {
		t.Error("VL true after intervening SC")
	}
	if v.SC(keepA, 6) {
		t.Error("stale SC succeeded")
	}
	if got := v.Read(); got != 5 {
		t.Errorf("Read = %d, want 5", got)
	}
}

func TestVarSCFailsEvenIfValueRestored(t *testing.T) {
	// The tag makes SC sensitive to writes, not values: an A→B→A value
	// cycle must still fail a stale SC. (This is what plain CAS gets
	// wrong — the ABA problem — and why the tag exists.)
	v := MustNewVar(word.DefaultLayout, 7)
	_, stale := v.LL()

	_, k := v.LL()
	if !v.SC(k, 9) {
		t.Fatal("SC to 9 failed")
	}
	_, k = v.LL()
	if !v.SC(k, 7) { // restore original value
		t.Fatal("SC back to 7 failed")
	}

	if v.VL(stale) {
		t.Error("VL true across ABA cycle")
	}
	if v.SC(stale, 8) {
		t.Error("stale SC succeeded across ABA cycle")
	}
}

func TestVarConcurrentSequencesOnDistinctVars(t *testing.T) {
	// The Figure 1(a) pattern that raw hardware LL/SC cannot express:
	// two interleaved LL-SC sequences plus a VL in the middle.
	x := MustNewVar(word.DefaultLayout, 1)
	y := MustNewVar(word.DefaultLayout, 2)

	_, kx := x.LL()
	_, ky := y.LL()
	if !x.VL(kx) {
		t.Fatal("VL(x) failed mid-sequence")
	}
	if !y.SC(ky, 20) {
		t.Fatal("SC(y) failed")
	}
	if !x.SC(kx, 10) {
		t.Fatal("SC(x) failed after SC(y)")
	}
	if x.Read() != 10 || y.Read() != 20 {
		t.Errorf("values = (%d,%d), want (10,20)", x.Read(), y.Read())
	}
}

func TestVarNestedSequencesOnSameVar(t *testing.T) {
	// Multiple outstanding LLs on the same variable by the same process:
	// the one that SCs first wins; the other must fail.
	v := MustNewVar(word.DefaultLayout, 0)
	_, k1 := v.LL()
	_, k2 := v.LL()
	if !v.SC(k1, 1) {
		t.Fatal("first SC failed")
	}
	if v.SC(k2, 2) {
		t.Error("second SC succeeded after first")
	}
}

func TestVarRejectsOversized(t *testing.T) {
	layout := word.MustLayout(60) // 4-bit values
	if _, err := NewVar(layout, 16); err == nil {
		t.Error("oversized initial accepted")
	}
	v := MustNewVar(layout, 15)
	_, k := v.LL()
	defer func() {
		if recover() == nil {
			t.Fatal("oversized SC value did not panic")
		}
	}()
	v.SC(k, 16)
}

func TestMustNewVarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewVar with oversized initial did not panic")
		}
	}()
	MustNewVar(word.MustLayout(60), 1<<10)
}

func TestVarTagIncrementsPerSC(t *testing.T) {
	v := MustNewVar(word.DefaultLayout, 0)
	for i := uint64(0); i < 10; i++ {
		val, k := v.LL()
		if val != i {
			t.Fatalf("LL = %d, want %d", val, i)
		}
		if got := v.Tag(k); got != i {
			t.Fatalf("tag = %d, want %d", got, i)
		}
		if !v.SC(k, i+1) {
			t.Fatalf("SC %d failed", i)
		}
	}
}

func TestVarConcurrentCounter(t *testing.T) {
	const workers = 8
	const rounds = 5000
	v := MustNewVar(word.MustLayout(32), 0) // 32-bit values
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					val, k := v.LL()
					if v.SC(k, val+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := v.Read(); got != workers*rounds {
		t.Errorf("final counter = %d, want %d", got, workers*rounds)
	}
}

func TestVarConcurrentMixedLLVLSC(t *testing.T) {
	// Writers increment; readers use LL+VL to obtain consistent snapshots.
	// A VL-validated read must never observe a value that was never
	// current (trivially true for a single word, but the VL result itself
	// must be consistent: if VL says valid, the value read is current at
	// the VL's linearization point).
	const writers = 4
	const readers = 4
	const rounds = 3000
	v := MustNewVar(word.MustLayout(32), 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					val, k := v.LL()
					if v.SC(k, val+1) {
						break
					}
				}
			}
		}()
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				val, k := v.LL()
				if v.VL(k) {
					// The counter is monotonic; validated reads must be too
					// relative to this reader's previous validated read.
					if val < last {
						t.Errorf("validated read went backwards: %d then %d", last, val)
						return
					}
					last = val
				}
			}
		}()
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	// Writers finish first; signal readers once the counter is final.
	for v.Read() != writers*rounds {
		// spin; bounded by writer progress
	}
	close(stop)
	<-done
}
