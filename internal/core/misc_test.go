package core

import (
	"sync"
	"testing"

	"repro/internal/word"
)

func TestVarInit(t *testing.T) {
	// Init supports Vars embedded in arrays (the container packages rely
	// on it).
	vars := make([]Var, 4)
	for i := range vars {
		if err := vars[i].Init(word.MustLayout(40), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := range vars {
		if got := vars[i].Read(); got != uint64(i) {
			t.Errorf("vars[%d] = %d, want %d", i, got, i)
		}
		val, k := vars[i].LL()
		if !vars[i].SC(k, val+100) {
			t.Errorf("SC on embedded var %d failed", i)
		}
	}
	// Oversized initial is rejected.
	var v Var
	if err := v.Init(word.MustLayout(60), 1<<10); err == nil {
		t.Error("oversized Init accepted")
	}
}

func TestVarInitIsolation(t *testing.T) {
	// Embedded Vars are fully independent.
	vars := make([]Var, 2)
	for i := range vars {
		if err := vars[i].Init(word.MustLayout(32), 0); err != nil {
			t.Fatal(err)
		}
	}
	_, k0 := vars[0].LL()
	val1, k1 := vars[1].LL()
	if !vars[1].SC(k1, val1+1) {
		t.Fatal("SC on vars[1] failed")
	}
	if !vars[0].VL(k0) {
		t.Error("SC on vars[1] invalidated vars[0]'s sequence")
	}
}

func TestLargeVarReadSegment(t *testing.T) {
	f := MustNewLargeFamily(LargeConfig{Procs: 2, Words: 3, TagBits: 32})
	v, err := f.NewVar([]uint64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{10, 20, 30} {
		if got := v.ReadSegment(i); got != want {
			t.Errorf("ReadSegment(%d) = %d, want %d", i, got, want)
		}
	}
	// After an SC, segments converge to the new values.
	p, _ := f.Proc(0)
	dst := make([]uint64, 3)
	keep, _ := v.WLL(p, dst)
	if !v.SC(p, keep, []uint64{11, 21, 31}) {
		t.Fatal("SC failed")
	}
	for i, want := range []uint64{11, 21, 31} {
		if got := v.ReadSegment(i); got != want {
			t.Errorf("post-SC ReadSegment(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestLargeVarReadSegmentAtMostOneGenerationBehind(t *testing.T) {
	// Under concurrent SCs of replicated vectors {x,x}, a segment read
	// returns the current or previous generation's value — never anything
	// older. With a monotone counter this means segment reads are
	// monotone up to one step.
	f := MustNewLargeFamily(LargeConfig{Procs: 2, Words: 2, TagBits: 32})
	v, err := f.NewVar([]uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		p, _ := f.Proc(0)
		cur := make([]uint64, 2)
		next := make([]uint64, 2)
		for i := 0; i < 20000; i++ {
			for {
				keep, res := v.WLL(p, cur)
				if res != Succ {
					continue
				}
				next[0], next[1] = cur[0]+1, cur[0]+1
				if v.SC(p, keep, next) {
					break
				}
			}
		}
	}()
	var last uint64
	for {
		select {
		case <-stop:
		default:
		}
		got := v.ReadSegment(0)
		if got < last {
			t.Fatalf("segment read went backwards: %d after %d", got, last)
		}
		last = got
		if got == 20000 {
			break
		}
	}
	wg.Wait()
}
