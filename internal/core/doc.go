// Package core implements the five algorithms of Moir, "Practical
// Implementations of Non-Blocking Synchronization Primitives" (PODC 1997):
//
//   - CASVar (Figure 3): a wait-free CAS for small variables built from the
//     restricted RLL/RSC instructions real hardware provides. Constant time
//     after the last spurious failure, zero space overhead (Theorem 1).
//   - Var (Figure 4): LL/VL/SC for small variables built from CAS
//     (sync/atomic on real hardware). Constant time, zero space overhead,
//     supports unboundedly many concurrent LL-SC sequences (Theorem 2).
//   - RVar (Figure 5): LL/VL/SC built directly from RLL/RSC with a single
//     tag, rather than composing Figures 3 and 4 and paying for two tags
//     per word (Theorem 3).
//   - LargeFamily/LargeVar (Figure 6): WLL/VL/SC on W-word variables from
//     CAS, with Θ(W) WLL/SC, Θ(1) VL, and Θ(NW) space overhead shared by
//     arbitrarily many variables (Theorem 4).
//   - BoundedFamily/BoundedVar (Figure 7): LL/VL/CL/SC for small variables
//     with bounded tags — no wraparound failure is possible, ever — in
//     constant time and Θ(N(k+T)) space for T variables and at most k
//     concurrent LL-SC sequences per process (Theorem 5).
//
// Interface adaptation: the paper modifies the classical LL/VL/SC interface
// so that LL writes bookkeeping into a private word supplied by the caller,
// which the caller then passes to VL and SC. In Go the idiomatic rendering
// returns that private word as an opaque token (Keep, LKeep, BKeep) from LL
// and accepts it in VL/SC. The token is a value on the caller's stack —
// exactly the paper's "one word per LL-SC sequence ... ordinarily stored on
// the execution stack", so the space and time properties carry over
// verbatim.
//
// A note on "processes": algorithms whose pseudocode is written "for
// process p" receive the process identity either through a machine.Proc
// (Figures 3 and 5, which run on the simulated RLL/RSC machine) or through
// a per-process handle created by the family (Figures 6 and 7). A handle
// must be used by one goroutine at a time. Figure 4 needs no process
// identity at all and may be called from any goroutine freely.
package core
