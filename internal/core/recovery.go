package core

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/obs"
)

// This file holds the crash-recovery and resource-conservation paths for
// the paper's per-process-state constructions. A crashed process leaks
// three kinds of resources:
//
//   - Figure 7 (bounded tags): the announce slots it held and, more
//     subtly, the ordering knowledge in its private tag queue Q — the
//     queue is what guarantees a tag is not reused while an in-flight SC
//     can still compare against it.
//   - Figure 6 (large variables): an in-flight SC that installed its
//     header but died mid-Copy leaves every segment one generation stale
//     until some other operation's Copy helps it forward.
//   - The universal construction: an announced-but-unapplied operation
//     (handled in internal/universal; peers apply it by construction).
//
// Recovery rebuilds the private state conservatively. For Figure 7 the
// paper's safety argument is that over any Nk consecutive SCs a process
// observes every announce slot (line 10's rotating scan), so a tag sits
// behind at least Nk others before reuse. A restarted process has lost
// its scan position and queue order, so Recover performs the whole scan
// at once: it reads all N·k announce slots and moves every announced tag
// to the back of a fresh queue. That is at least as protective as any
// state the dead incarnation could have had — every tag that any process
// could still compare against (it can only compare against a tag it has
// announced) is behind tagCount-Nk ≥ Nk+1 cold tags. The per-variable
// last[p] counters live in shared memory and survive the crash untouched,
// so the (tag, cnt, pid) triple of the successor's first SC still differs
// from every triple the dead incarnation installed.
//
// For Figure 6 no private state needs rebuilding (handles are stateless);
// Recover instead completes orphaned copies: any variable whose current
// header still names the dead process gets its Copy driven to completion
// by the helper, validating each segment against the header's tag
// ownership exactly as ordinary helping does. This is safe from any
// process at any time — Copy is idempotent and CAS-guarded.

// BoundedRecoveryStats reports what one Figure 7 recovery reclaimed.
type BoundedRecoveryStats struct {
	// SlotsReclaimed is how many announce slots the dead incarnation held
	// (LLs it never balanced with SC/CL), now returned to the free pool.
	SlotsReclaimed int
	// TagsRequeued is how many tags the recovery scan found announced and
	// conservatively moved to the back of the fresh queue.
	TagsRequeued int
}

// recoverBounded is the shared Figure 7 recovery: build a fresh queue,
// move every tag announced in a[...] (read via load) to its back, and
// count the dead incarnation's leaked slots.
func recoverBounded(tagCount uint64, k int, nk int, getTag func(i int) uint64, s **slotStack, q **tagQueue, j *int) BoundedRecoveryStats {
	st := BoundedRecoveryStats{SlotsReclaimed: k - (*s).free()}
	fresh := newTagQueue(int(tagCount))
	seen := make(map[uint64]bool, nk)
	for i := 0; i < nk; i++ {
		t := getTag(i)
		fresh.moveToBack(t)
		if !seen[t] {
			seen[t] = true
			st.TagsRequeued++
		}
	}
	*s = newSlotStack(k)
	*q = fresh
	*j = 0
	return st
}

// Recover rebuilds process pid's private Figure 7 state after a crash:
// fresh slot stack (reclaiming any announce slots the dead incarnation
// held), fresh tag queue ordered by a full announce-array scan (see the
// file comment for why that is safe), and scan index reset. It must be
// called only while pid itself is not running an operation; other
// processes may run concurrently (the scan reads the announce array
// atomically, and everything written is pid-private).
func (f *BoundedFamily) Recover(pid int) (BoundedRecoveryStats, error) {
	if pid < 0 || pid >= f.n {
		return BoundedRecoveryStats{}, fmt.Errorf("core: process id %d out of range [0,%d)", pid, f.n)
	}
	p := f.procs[pid]
	st := recoverBounded(f.tagCount, f.k, f.nk,
		func(i int) uint64 { return f.fields.Get(f.a[i].Load(), bfTag) },
		&p.s, &p.q, &p.j)
	f.obs.AddProc(pid, obs.CtrRecoverySlotsReclaimed, uint64(st.SlotsReclaimed))
	f.obs.AddProc(pid, obs.CtrRecoveryTagsRequeued, uint64(st.TagsRequeued))
	return st, nil
}

// CheckConservation audits the family at quiescence (no operation in
// flight anywhere): every process must hold all k announce slots free
// (each LL balanced by SC or CL) and a tag queue that is a permutation of
// the full tag space. A failure means a resource leaked — the invariant
// the soak harness re-checks after every round.
func (f *BoundedFamily) CheckConservation() error {
	for pid, p := range f.procs {
		if got := p.s.free(); got != f.k {
			return fmt.Errorf("core: process %d leaked %d announce slot(s): %d of %d free at quiescence", pid, f.k-got, got, f.k)
		}
		if err := p.q.validate(); err != nil {
			return fmt.Errorf("core: process %d tag queue corrupt: %w", pid, err)
		}
	}
	return nil
}

// Recover rebuilds process pid's private state after a machine-level
// crash-restart (see BoundedFamily.Recover for the reclamation argument).
// It additionally refreshes the handle's machine processor to the current
// incarnation — the dead incarnation's *machine.Proc panics on use — so
// it must be called after machine.Restart(pid) and before the handle is
// driven again. The announce scan runs on the restarted processor and is
// counted against it.
func (f *RBoundedFamily) Recover(pid int) (BoundedRecoveryStats, error) {
	if pid < 0 || pid >= f.n {
		return BoundedRecoveryStats{}, fmt.Errorf("core: process id %d out of range [0,%d)", pid, f.n)
	}
	p := f.procs[pid]
	mp := f.m.Proc(pid)
	if mp.Crashed() {
		return BoundedRecoveryStats{}, fmt.Errorf("core: processor %d is still crashed; call machine.Restart first", pid)
	}
	p.p = mp
	st := recoverBounded(f.tagCount, f.k, f.nk,
		func(i int) uint64 { return f.fields.Get(mp.Load(f.a[i]), bfTag) },
		&p.s, &p.q, &p.j)
	f.obs.AddProc(pid, obs.CtrRecoverySlotsReclaimed, uint64(st.SlotsReclaimed))
	f.obs.AddProc(pid, obs.CtrRecoveryTagsRequeued, uint64(st.TagsRequeued))
	return st, nil
}

// CheckConservation audits the family at quiescence; see
// BoundedFamily.CheckConservation.
func (f *RBoundedFamily) CheckConservation() error {
	for pid, p := range f.procs {
		if got := p.s.free(); got != f.k {
			return fmt.Errorf("core: process %d leaked %d announce slot(s): %d of %d free at quiescence", pid, f.k-got, got, f.k)
		}
		if err := p.q.validate(); err != nil {
			return fmt.Errorf("core: process %d tag queue corrupt: %w", pid, err)
		}
	}
	return nil
}

// Recover completes orphaned copies left by crashed process pid: every
// family variable whose current header still names pid has its Copy
// driven to completion on pid's behalf by helper (any live process). It
// returns how many variables needed completing. Figure 6 needs no private
// state rebuilt — handles are stateless, and a restarted pid's own next
// WLL would complete the copy before its SC could overwrite A[pid] — so
// this is reclamation in the "heal now, not on next touch" sense: after
// Recover returns (with all processes quiescent), no segment anywhere
// still depends on the dead incarnation's announce words.
func (f *LargeFamily) Recover(helper *LargeProc, pid int) (completed int, err error) {
	if pid < 0 || pid >= f.n {
		return 0, fmt.Errorf("core: process id %d out of range [0,%d)", pid, f.n)
	}
	f.varsMu.Lock()
	vars := append([]*LargeVar(nil), f.vars...)
	f.varsMu.Unlock()
	for _, v := range vars {
		hdr := v.hdr.Load()
		if int(f.hdr.Get(hdr, 1)) != pid || !v.copyIncomplete(hdr) {
			continue
		}
		v.copyVal(hdr, nil)
		completed++
	}
	f.obs.AddProc(helper.id, obs.CtrRecoveryCopiesCompleted, uint64(completed))
	return completed, nil
}

// copyIncomplete reports whether some segment is still a generation behind
// hdr — the signature of an orphaned (or merely in-progress) Copy.
func (v *LargeVar) copyIncomplete(hdr uint64) bool {
	hdrTag := v.f.hdr.Get(hdr, 0)
	for i := 0; i < v.f.w; i++ {
		if v.f.seg.Tag(v.data[i].Load()) != hdrTag {
			return true
		}
	}
	return false
}

// CheckConservation audits the family at quiescence: every segment of
// every variable must carry the current header's tag — i.e. every
// installed SC's Copy ran to completion and no BUF slot is still feeding
// a half-copied generation. The header's next generation would overwrite
// prevTag segments, so a stale segment here means a leaked copy.
func (f *LargeFamily) CheckConservation() error {
	f.varsMu.Lock()
	defer f.varsMu.Unlock()
	for vi, v := range f.vars {
		hdrTag := f.hdr.Get(v.hdr.Load(), 0)
		for i := 0; i < f.w; i++ {
			if got := f.seg.Tag(v.data[i].Load()); got != hdrTag {
				return fmt.Errorf("core: variable %d segment %d carries tag %d, header tag is %d: copy incomplete at quiescence", vi, i, got, hdrTag)
			}
		}
	}
	return nil
}

// Recover completes orphaned copies left by crashed process pid, driven
// by the live machine processor helper; see LargeFamily.Recover.
func (f *RLargeFamily) Recover(helper *machine.Proc, pid int) (completed int, err error) {
	if pid < 0 || pid >= f.n {
		return 0, fmt.Errorf("core: process id %d out of range [0,%d)", pid, f.n)
	}
	f.varsMu.Lock()
	vars := append([]*RLargeVar(nil), f.vars...)
	f.varsMu.Unlock()
	for _, v := range vars {
		hdr := helper.Load(v.hdr)
		if int(f.hdr.Get(hdr, 1)) != pid || !v.copyIncomplete(helper, hdr) {
			continue
		}
		v.copyVal(helper, hdr, nil)
		completed++
	}
	f.obs.AddProc(helper.ID(), obs.CtrRecoveryCopiesCompleted, uint64(completed))
	return completed, nil
}

// copyIncomplete reports whether some segment is still a generation behind
// hdr; see LargeVar.copyIncomplete.
func (v *RLargeVar) copyIncomplete(p *machine.Proc, hdr uint64) bool {
	hdrTag := v.f.hdr.Get(hdr, 0)
	for i := 0; i < v.f.w; i++ {
		if v.f.seg.Tag(p.Load(v.data[i])) != hdrTag {
			return true
		}
	}
	return false
}

// CheckConservation audits the family at quiescence through processor p;
// see LargeFamily.CheckConservation. The audit's loads count as p's
// machine operations.
func (f *RLargeFamily) CheckConservation(p *machine.Proc) error {
	f.varsMu.Lock()
	defer f.varsMu.Unlock()
	for vi, v := range f.vars {
		hdrTag := f.hdr.Get(p.Load(v.hdr), 0)
		for i := 0; i < f.w; i++ {
			if got := f.seg.Tag(p.Load(v.data[i])); got != hdrTag {
				return fmt.Errorf("core: variable %d segment %d carries tag %d, header tag is %d: copy incomplete at quiescence", vi, i, got, hdrTag)
			}
		}
	}
	return nil
}
