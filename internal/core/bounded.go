package core

import (
	"errors"
	"fmt"
	"sync/atomic" //llsc:allow nakedatomic(Figure 7 targets native hardware: announce slots and tag words are the raw cells the construction is made of)

	"repro/internal/contention"
	"repro/internal/obs"
	"repro/internal/word"
)

// ErrTooManySequences is returned by BoundedVar.LL when a process already
// has k LL-SC sequences outstanding. Figure 7 assumes a bound k on the
// number of LL-SC sequences executed concurrently by any process; exceed
// it and there is no announce slot left to record the read.
var ErrTooManySequences = errors.New("core: process exceeded its k concurrent LL-SC sequences (use CL to abort abandoned sequences)")

// BoundedFamily is the shared context for the paper's Figure 7: LL/VL/CL/SC
// for small variables with bounded tags, implemented from CAS.
//
// Unlike the unbounded-tag algorithms, no tag ever wraps "prematurely":
// the feedback mechanism — announce array A, per-process tag queue Q, and
// per-word per-process counters — guarantees that a (tag, cnt, pid) triple
// is never reused while any process could still compare against it, so a
// CAS never succeeds when it should fail. Tags are drawn from the small
// range 0..2Nk and counters from 0..Nk, leaving the rest of the word for
// data.
//
// Space overhead is Θ(N(k+T)) for T variables: the announce array A (N·k
// words, shared by all variables) plus one N-entry counter array per
// variable (Theorem 5). Every operation is constant-time.
type BoundedFamily struct {
	n, k     int
	nk       int    // N·k
	tagCount uint64 // 2Nk + 1 distinct tags
	cntCount uint64 // Nk + 1 distinct counters
	fields   word.Fields
	a        []atomic.Uint64
	procs    []*BoundedProc
	obs      *obs.Metrics
	cm       *contention.Policy
}

// Field indices of Figure 7's wordtype = record tag; cnt; pid; val end.
const (
	bfTag = iota
	bfCnt
	bfPid
	bfVal
)

// BoundedConfig parametrizes a BoundedFamily.
type BoundedConfig struct {
	// Procs is the number of processes N.
	Procs int
	// K bounds the number of LL-SC sequences any one process may have
	// outstanding concurrently.
	K int
	// TagOverride, when non-zero, sets the number of distinct tags instead
	// of the default minimum 2Nk+1. Values below 2Nk+1 are rejected: the
	// paper's §5 wraparound analysis needs at least Nk tags that are "old
	// enough" plus Nk possibly-announced ones plus the one in the variable,
	// and with fewer a tag could be reused while an in-flight SC can still
	// compare against it — exactly the ABA the construction exists to
	// prevent. Tests use the knob to pin that the floor is enforced and to
	// exercise wraparound at the tightest legal tag width.
	TagOverride int
}

// NewBoundedFamily validates cfg, computes the tag|cnt|pid|val word layout,
// and builds the family with its N process handles.
func NewBoundedFamily(cfg BoundedConfig) (*BoundedFamily, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("core: Procs must be at least 1, got %d", cfg.Procs)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("core: K must be at least 1, got %d", cfg.K)
	}
	nk := cfg.Procs * cfg.K
	tagCount := uint64(2*nk + 1)
	if cfg.TagOverride != 0 {
		if cfg.TagOverride < 2*nk+1 {
			return nil, fmt.Errorf("core: %d tags admit ABA under wraparound: Figure 7 needs at least 2Nk+1 = %d (N=%d, k=%d)",
				cfg.TagOverride, 2*nk+1, cfg.Procs, cfg.K)
		}
		tagCount = uint64(cfg.TagOverride)
	}
	cntCount := uint64(nk + 1)
	tagBits := word.BitsFor(tagCount - 1)
	cntBits := word.BitsFor(cntCount - 1)
	pidBits := word.BitsFor(uint64(cfg.Procs - 1))
	used := tagBits + cntBits + pidBits
	if used >= word.WordBits {
		return nil, fmt.Errorf("core: tag+cnt+pid fields need %d bits, leaving no room for data (reduce Procs or K)", used)
	}
	valBits := word.WordBits - used
	fields, err := word.NewFields(tagBits, cntBits, pidBits, valBits)
	if err != nil {
		return nil, fmt.Errorf("core: building word layout: %w", err)
	}
	f := &BoundedFamily{
		n:        cfg.Procs,
		k:        cfg.K,
		nk:       nk,
		tagCount: tagCount,
		cntCount: cntCount,
		fields:   fields,
		a:        make([]atomic.Uint64, nk),
		procs:    make([]*BoundedProc, cfg.Procs),
	}
	for i := range f.procs {
		f.procs[i] = &BoundedProc{
			f:  f,
			id: i,
			s:  newSlotStack(cfg.K),
			q:  newTagQueue(int(tagCount)),
		}
	}
	return f, nil
}

// MustNewBoundedFamily is NewBoundedFamily for statically valid configs.
func MustNewBoundedFamily(cfg BoundedConfig) *BoundedFamily {
	f, err := NewBoundedFamily(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// SetMetrics attaches an optional metrics sink to the family (nil
// disables); every variable created from the family reports through it.
// TagRecycle exposes Figure 7's bounded-tag feedback work.
func (f *BoundedFamily) SetMetrics(m *obs.Metrics) { f.obs = m }

// SetContention attaches a contention-management policy. Figure 7's SC is
// a single CAS with no internal retry loop (the tag queue absorbs the
// bookkeeping), so the family itself never waits; the policy is exposed
// through Contention for the LL/SC retry loops of the family's consumers,
// keeping one knob per family like SetMetrics. Set before sharing.
func (f *BoundedFamily) SetContention(p *contention.Policy) { f.cm = p }

// Contention returns the policy attached via SetContention (nil if none).
func (f *BoundedFamily) Contention() *contention.Policy { return f.cm }

// Procs returns N.
func (f *BoundedFamily) Procs() int { return f.n }

// K returns the per-process concurrent-sequence bound k.
func (f *BoundedFamily) K() int { return f.k }

// MaxVal returns the largest data value the layout leaves room for.
func (f *BoundedFamily) MaxVal() uint64 { return f.fields.Max(bfVal) }

// TagBits returns the width of the (bounded) tag field — the point of the
// construction is that this is small: ceil(log2(2Nk+1)).
func (f *BoundedFamily) TagBits() uint { return f.fields.Width(bfTag) }

// TagCount returns the number of distinct tags in the bounded space
// (2Nk+1 unless overridden upward via BoundedConfig.TagOverride).
func (f *BoundedFamily) TagCount() uint64 { return f.tagCount }

// OverheadWords returns the family-level space overhead in words: the
// announce array A of N·k words. Per-variable overhead is reported by
// BoundedVar.FootprintWords; the total for T variables is Θ(N(k+T)).
func (f *BoundedFamily) OverheadWords() int { return len(f.a) }

// announce returns A[pid][slot].
func (f *BoundedFamily) announce(pid, slot int) *atomic.Uint64 {
	return &f.a[pid*f.k+slot]
}

// Proc returns the (stable) handle for process id. A handle must be driven
// by one goroutine at a time: its tag queue and slot stack are private
// sequential state, exactly the paper's "private variable" declarations.
func (f *BoundedFamily) Proc(id int) (*BoundedProc, error) {
	if id < 0 || id >= f.n {
		return nil, fmt.Errorf("core: process id %d out of range [0,%d)", id, f.n)
	}
	return f.procs[id], nil
}

// BoundedProc carries Figure 7's private per-process state.
type BoundedProc struct {
	f  *BoundedFamily
	id int
	s  *slotStack
	q  *tagQueue
	j  int // private index 0..Nk-1 cycling over the announce array
}

// ID returns the process identifier.
func (p *BoundedProc) ID() int { return p.id }

// FreeSlots returns how many more LL-SC sequences this process may open.
func (p *BoundedProc) FreeSlots() int { return p.s.free() }

// BoundedVar is one small variable of a BoundedFamily.
type BoundedVar struct {
	f    *BoundedFamily
	word atomic.Uint64
	last []atomic.Uint64 // last[i]: counter most recently written by process i
}

// BKeep is the private keep word of Figure 7: the announce slot in use and
// the failure flag set by LL's re-read, plus (as an optimization the paper
// permits — A[p] is written only by p) a private copy of the announced
// word so VL/SC need not re-read A.
type BKeep struct {
	slot int
	fail bool
	word uint64
}

// NewVar creates a variable holding initial.
func (f *BoundedFamily) NewVar(initial uint64) (*BoundedVar, error) {
	if initial > f.MaxVal() {
		return nil, fmt.Errorf("core: initial value %d exceeds %d-bit value field", initial, f.fields.Width(bfVal))
	}
	v := &BoundedVar{f: f, last: make([]atomic.Uint64, f.n)}
	v.word.Store(f.fields.Pack(0, 0, 0, initial)) // X.word = (0,0,0,initial)
	return v, nil
}

// FootprintWords returns the per-variable storage in words: the value word
// plus the N-entry last counter array.
func (v *BoundedVar) FootprintWords() int { return 1 + v.f.n }

// Read returns the current value; it linearizes at the underlying load.
func (v *BoundedVar) Read() uint64 {
	v.f.obs.Inc(obs.CtrRead)
	return v.f.fields.Get(v.word.Load(), bfVal)
}

// LL performs a load-linked for process p (Figure 7, lines 1-5). It
// returns ErrTooManySequences if p already has k sequences outstanding;
// every successful LL must be balanced by exactly one SC or CL, which
// releases the slot.
func (v *BoundedVar) LL(p *BoundedProc) (uint64, BKeep, error) {
	p.f.obs.IncProc(p.id, obs.CtrLL)
	slot, ok := p.s.pop() // line 1
	if !ok {
		return 0, BKeep{}, ErrTooManySequences
	}
	old := v.word.Load()                                                             // line 2
	p.f.announce(p.id, slot).Store(old)                                              // line 3: announce the tag read
	fail := v.word.Load() != old                                                     // line 4: reread; if changed, SC must fail
	return v.f.fields.Get(old, bfVal), BKeep{slot: slot, fail: fail, word: old}, nil // line 5
}

// VL reports whether the variable is unchanged since the LL that produced
// keep (Figure 7, line 6).
func (v *BoundedVar) VL(p *BoundedProc, keep BKeep) bool {
	p.f.obs.IncProc(p.id, obs.CtrVL)
	return !keep.fail && v.word.Load() == keep.word
}

// CL aborts the LL-SC sequence without attempting an SC (Figure 7,
// line 7), returning the announce slot to the free pool. Required when a
// sequence is abandoned, since each process may hold only k slots.
func (v *BoundedVar) CL(p *BoundedProc, keep BKeep) {
	p.f.obs.IncProc(p.id, obs.CtrCL)
	p.s.push(keep.slot)
}

// SC attempts process p's store-conditional of newval (Figure 7, lines
// 8-15). It succeeds iff no successful SC intervened since the LL that
// produced keep; the bounded tag-cnt-pid feedback scheme makes the
// underlying CAS immune to wraparound errors.
func (v *BoundedVar) SC(p *BoundedProc, keep BKeep, newval uint64) bool {
	f := v.f
	if newval > f.MaxVal() {
		p.s.push(keep.slot) // keep slot accounting consistent before panicking
		panic(fmt.Sprintf("core: SC value %d exceeds %d-bit value field", newval, f.fields.Width(bfVal)))
	}
	f.obs.IncProc(p.id, obs.CtrSC)
	p.s.push(keep.slot) // line 8
	if keep.fail {      // line 9
		// The LL's re-read saw an intervening write: interference.
		f.obs.IncProc(p.id, obs.CtrSCFailInterference)
		return false
	}
	// Line 10: read one announce slot and retire its tag to the back of
	// the queue, so that over any Nk consecutive SCs every announcement is
	// observed before a tag is reused.
	t := f.fields.Get(f.a[p.j].Load(), bfTag)
	p.q.moveToBack(t)
	p.j++ // line 11 (j ⊕ 1 over 0..Nk-1)
	if p.j == f.nk {
		p.j = 0
	}
	t = p.q.rotate() // line 12: take the least-recently-seen tag
	f.obs.IncProc(p.id, obs.CtrTagRecycle)
	cnt := word.AddMod(v.last[p.id].Load(), 1, f.cntCount)                             // line 13
	v.last[p.id].Store(cnt)                                                            // line 14
	if v.word.CompareAndSwap(keep.word, f.fields.Pack(t, cnt, uint64(p.id), newval)) { // line 15
		return true
	}
	f.obs.IncProc(p.id, obs.CtrSCFailInterference)
	return false
}
