package core

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/word"
)

// CASVar is the paper's Figure 3: a compare-and-swap operation for small
// variables implemented from the restricted RLL/RSC pair. Each machine word
// holds record{tag, val}; the tag detects intervening writes so that the
// CAS linearizes correctly even though RSC may fail spuriously and RLL/RSC
// must be used in tight pairs.
//
// The implementation is wait-free provided only finitely many spurious
// failures occur during one CAS, terminates in constant time after the last
// spurious failure, and has no space overhead (Theorem 1).
type CASVar struct {
	w      *machine.Word
	layout word.Layout
	obs    *obs.Metrics
	cm     *contention.Policy
	tr     *trace.Tracer
}

// NewCASVar allocates a variable on machine m holding initial, using the
// given tag|value layout. The initial value must fit the layout's value
// field.
func NewCASVar(m *machine.Machine, layout word.Layout, initial uint64) (*CASVar, error) {
	if initial > layout.MaxVal() {
		return nil, fmt.Errorf("core: initial value %d exceeds %d-bit value field", initial, layout.ValBits)
	}
	return &CASVar{w: m.NewWord(layout.Pack(0, initial)), layout: layout}, nil
}

// Layout returns the variable's tag|value layout.
func (v *CASVar) Layout() word.Layout { return v.layout }

// SetMetrics attaches an optional metrics sink (nil disables). It records
// algorithm-level counts (CAS attempts, retry loops); pair it with
// Metrics.MachineObserver on the machine for instruction-level counts and
// the spurious/interference failure split.
func (v *CASVar) SetMetrics(m *obs.Metrics) { v.obs = m }

// SetContention attaches a contention-management policy for the internal
// RLL/RSC retry loop. Retries there are caused only by spurious RSC
// failures, so the policy is consulted with cause Spurious — Adaptive
// will never back off here, by design. Set before the Var is shared.
func (v *CASVar) SetContention(p *contention.Policy) { v.cm = p }

// SetTracer attaches an optional span tracer (nil disables) covering
// CompareAndSwap: each invocation becomes one span recording its
// spurious-failure retries and waits under the caller's process id. Set
// before the Var is shared.
func (v *CASVar) SetTracer(t *trace.Tracer) { v.tr = t }

// Read returns the current value. It linearizes at the underlying load.
func (v *CASVar) Read(p *machine.Proc) uint64 {
	v.obs.IncProc(p.ID(), obs.CtrRead)
	return v.layout.Val(p.Load(v.w))
}

// CompareAndSwap is Figure 3's CAS(addr, old, new), executed by processor
// p. It atomically compares the variable's value with old and, if equal,
// replaces it with new, returning whether it succeeded.
//
// New must fit the value field; oversized values are rejected as a failed
// CAS would be confusing, so they panic (a programming error, like passing
// a misaligned address to hardware CAS).
func (v *CASVar) CompareAndSwap(p *machine.Proc, old, new uint64) bool {
	if new > v.layout.MaxVal() {
		panic(fmt.Sprintf("core: CAS new value %d exceeds %d-bit value field", new, v.layout.ValBits))
	}
	v.obs.IncProc(p.ID(), obs.CtrCASAttempt)
	sp := v.tr.Begin(p.ID(), trace.OpCAS)
	oldword := p.Load(v.w)            // line 1
	if v.layout.Val(oldword) != old { // line 2
		sp.End(false)
		return false
	}
	if old == new { // line 3: no-op CAS linearizes at the read in line 1
		sp.End(true)
		return true
	}
	newword := v.layout.Bump(oldword, new) // line 4: (tag ⊕ 1, new)
	var cw contention.Waiter
	for i := 0; ; i++ {
		if i > 0 {
			// Extra RLL/RSC loops are caused only by spurious RSC
			// failures — Theorem 1's "constant time after the last
			// spurious failure" quantity.
			v.obs.IncProc(p.ID(), obs.CtrCASRetry)
		}
		if p.RLL(v.w) != oldword { // line 5
			sp.End(false)
			return false
		}
		if p.RSC(v.w, newword) { // line 6
			sp.End(true)
			return true
		}
		sp.Retry(trace.CauseSpurious)
		if sp.Active() {
			sp.AddWait(cw.WaitTimed(v.cm, p.ID(), contention.Spurious))
		} else {
			cw.Wait(v.cm, p.ID(), contention.Spurious)
		}
	}
}
