package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/word"
)

func newBoundedFamily(t *testing.T, n, k int) *BoundedFamily {
	t.Helper()
	f, err := NewBoundedFamily(BoundedConfig{Procs: n, K: k})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func boundedProc(t *testing.T, f *BoundedFamily, id int) *BoundedProc {
	t.Helper()
	p, err := f.Proc(id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewBoundedFamilyValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     BoundedConfig
		wantErr bool
	}{
		{"ok", BoundedConfig{Procs: 4, K: 2}, false},
		{"minimal", BoundedConfig{Procs: 1, K: 1}, false},
		{"zero procs", BoundedConfig{Procs: 0, K: 1}, true},
		{"zero k", BoundedConfig{Procs: 1, K: 0}, true},
		{"huge", BoundedConfig{Procs: 1 << 20, K: 1 << 20}, true}, // fields exceed the word
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewBoundedFamily(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewBoundedFamily(%+v) error = %v, wantErr %v", tt.cfg, err, tt.wantErr)
			}
		})
	}
}

func TestBoundedLayoutSizes(t *testing.T) {
	// N=16, k=4: tags 0..128 need 8 bits, cnt 0..64 needs 7, pid 4,
	// leaving 45 bits of data — the "relatively small tags leave more
	// room for data" selling point.
	f := newBoundedFamily(t, 16, 4)
	if got := f.TagBits(); got != 8 {
		t.Errorf("TagBits = %d, want 8", got)
	}
	if got := f.MaxVal(); got != (1<<45)-1 {
		t.Errorf("MaxVal = %#x, want 45 bits", got)
	}
	if f.Procs() != 16 || f.K() != 4 {
		t.Errorf("accessors = (%d,%d), want (16,4)", f.Procs(), f.K())
	}
}

func TestBoundedBasicLLSC(t *testing.T) {
	f := newBoundedFamily(t, 2, 1)
	v, err := f.NewVar(10)
	if err != nil {
		t.Fatal(err)
	}
	p := boundedProc(t, f, 0)
	val, keep, err := v.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	if val != 10 {
		t.Fatalf("LL = %d, want 10", val)
	}
	if !v.VL(p, keep) {
		t.Fatal("VL false right after LL")
	}
	if !v.SC(p, keep, 11) {
		t.Fatal("uncontended SC failed")
	}
	if got := v.Read(); got != 11 {
		t.Errorf("Read = %d, want 11", got)
	}
}

func TestBoundedStaleSCFails(t *testing.T) {
	f := newBoundedFamily(t, 2, 1)
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := boundedProc(t, f, 0), boundedProc(t, f, 1)
	_, k0, err := v.LL(p0)
	if err != nil {
		t.Fatal(err)
	}
	_, k1, err := v.LL(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SC(p1, k1, 5) {
		t.Fatal("p1 SC failed")
	}
	if v.VL(p0, k0) {
		t.Error("p0 VL true after p1's SC")
	}
	if v.SC(p0, k0, 6) {
		t.Error("p0 stale SC succeeded")
	}
	if got := v.Read(); got != 5 {
		t.Errorf("Read = %d, want 5", got)
	}
}

func TestBoundedSlotExhaustionAndCL(t *testing.T) {
	f := newBoundedFamily(t, 1, 2)
	v1, _ := f.NewVar(1)
	v2, _ := f.NewVar(2)
	v3, _ := f.NewVar(3)
	p := boundedProc(t, f, 0)

	_, k1, err := v1.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := v2.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeSlots() != 0 {
		t.Fatalf("FreeSlots = %d, want 0", p.FreeSlots())
	}
	// Third concurrent sequence exceeds k=2.
	if _, _, err := v3.LL(p); !errors.Is(err, ErrTooManySequences) {
		t.Fatalf("third LL error = %v, want ErrTooManySequences", err)
	}
	// CL releases a slot; a new sequence becomes possible.
	v1.CL(p, k1)
	if p.FreeSlots() != 1 {
		t.Fatalf("FreeSlots after CL = %d, want 1", p.FreeSlots())
	}
	_, k3, err := v3.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	if !v3.SC(p, k3, 30) {
		t.Error("SC after CL failed")
	}
	if !v2.SC(p, k2, 20) {
		t.Error("interleaved SC on v2 failed")
	}
	if p.FreeSlots() != 2 {
		t.Errorf("FreeSlots at end = %d, want 2", p.FreeSlots())
	}
}

func TestBoundedConcurrentSequences(t *testing.T) {
	// The Figure 1(a) pattern under the bounded-tag implementation.
	f := newBoundedFamily(t, 1, 2)
	x, _ := f.NewVar(1)
	y, _ := f.NewVar(2)
	p := boundedProc(t, f, 0)

	_, kx, err := x.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	_, ky, err := y.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	if !x.VL(p, kx) {
		t.Fatal("VL(x) failed mid-sequence")
	}
	if !y.SC(p, ky, 20) {
		t.Fatal("SC(y) failed")
	}
	if !x.SC(p, kx, 10) {
		t.Fatal("SC(x) failed after SC(y)")
	}
	if x.Read() != 10 || y.Read() != 20 {
		t.Errorf("values = (%d,%d), want (10,20)", x.Read(), y.Read())
	}
}

func TestBoundedRejectsOversized(t *testing.T) {
	f := newBoundedFamily(t, 2, 1)
	if _, err := f.NewVar(f.MaxVal() + 1); err == nil {
		t.Error("oversized initial accepted")
	}
	v, _ := f.NewVar(0)
	p := boundedProc(t, f, 0)
	_, k, err := v.LL(p)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("oversized SC value did not panic")
			}
		}()
		v.SC(p, k, f.MaxVal()+1)
	}()
	// The slot must have been released even though SC panicked.
	if p.FreeSlots() != f.K() {
		t.Errorf("FreeSlots after panicking SC = %d, want %d", p.FreeSlots(), f.K())
	}
}

func TestBoundedConcurrentCounter(t *testing.T) {
	const procs = 8
	const rounds = 3000
	f := newBoundedFamily(t, procs, 2)
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := f.Proc(id)
			if err != nil {
				t.Error(err)
				return
			}
			for r := 0; r < rounds; r++ {
				for {
					val, k, err := v.LL(p)
					if err != nil {
						t.Error(err)
						return
					}
					if v.SC(p, k, val+1) {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := v.Read(); got != procs*rounds {
		t.Errorf("final counter = %d, want %d (tag reuse would lose updates)", got, procs*rounds)
	}
}

func TestBoundedManyVariables(t *testing.T) {
	// T variables share one announce array; per-variable overhead is the
	// N-entry counter array: total Θ(N(k+T)).
	f := newBoundedFamily(t, 4, 2)
	if got := f.OverheadWords(); got != 8 {
		t.Fatalf("family overhead = %d, want N·k = 8", got)
	}
	const T = 50
	vars := make([]*BoundedVar, T)
	for i := range vars {
		v, err := f.NewVar(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		vars[i] = v
		if got := v.FootprintWords(); got != 1+4 {
			t.Fatalf("var footprint = %d, want 5", got)
		}
	}
	if got := f.OverheadWords(); got != 8 {
		t.Errorf("family overhead grew with T: %d", got)
	}
	// Exercise all of them from all processes.
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, _ := f.Proc(id)
			for r := 0; r < 500; r++ {
				v := vars[(id*500+r)%T]
				for {
					val, k, err := v.LL(p)
					if err != nil {
						t.Error(err)
						return
					}
					if v.SC(p, k, (val+1)&f.MaxVal()) {
						break
					}
				}
			}
		}(id)
	}
	wg.Wait()
	var total uint64
	for _, v := range vars {
		total += v.Read()
	}
	// Initial values sum to 0+1+...+T-1; we added 4*500 increments.
	want := uint64(T*(T-1)/2 + 4*500)
	if total != want {
		t.Errorf("sum over variables = %d, want %d", total, want)
	}
}

func TestBoundedNoPrematureTagReuse(t *testing.T) {
	// The adversarial scenario for tag reuse: p0 opens an LL-SC sequence
	// whose keep word was written by p1 and stalls; p1 performs thousands
	// of SCs cycling through a handful of values (so the same val field
	// recurs constantly). If the feedback mechanism ever let p1 reuse the
	// exact (tag,cnt,pid) triple of p0's keep while restoring the same
	// value, p0's stale SC would erroneously succeed. It must always fail.
	f := newBoundedFamily(t, 2, 1)
	v, err := f.NewVar(0)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := boundedProc(t, f, 0), boundedProc(t, f, 1)

	// p1 writes value 7 so that the word p0 reads carries pid=1 — the
	// adversary must forge its own past word, not the initial one.
	_, k, err := v.LL(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.SC(p1, k, 7) {
		t.Fatal("setup SC failed")
	}

	_, stale, err := v.LL(p0) // p0 now holds a keep with pid=1, val=7
	if err != nil {
		t.Fatal(err)
	}

	// p1 hammers the variable, frequently rewriting value 7. The tag
	// space is tiny (2Nk+1 = 5 tags, cnt 0..2), so without feedback the
	// triple would recur within a few iterations.
	for i := 0; i < 10000; i++ {
		val, k, err := v.LL(p1)
		if err != nil {
			t.Fatal(err)
		}
		next := uint64(7)
		if i%3 == 1 {
			next = val + 1
		}
		if !v.SC(p1, k, next) {
			t.Fatalf("iteration %d: p1's SC failed with no contention", i)
		}
		if v.VL(p0, stale) {
			t.Fatalf("iteration %d: p0's stale VL returned true — tag reuse!", i)
		}
	}
	if v.SC(p0, stale, 99) {
		t.Fatal("p0's stale SC succeeded after 10000 intervening SCs — bounded tags failed")
	}
	if p0.FreeSlots() != 1 || p1.FreeSlots() != 1 {
		t.Errorf("slot leak: free = (%d,%d), want (1,1)", p0.FreeSlots(), p1.FreeSlots())
	}
}

func TestBoundedContrastUnboundedTagsDoWrap(t *testing.T) {
	// The same adversarial scenario defeats Figure 4 when its tag is as
	// small as Figure 7's: with a 3-bit tag (8 values ≥ the 5 bounded
	// tags), eight intervening SCs restore the exact word and the stale
	// SC erroneously succeeds. This is experiment E7's core contrast.
	v := MustNewVar(word.MustLayout(3), 7)
	_, stale := v.LL()

	for i := 0; i < 8; i++ { // exactly wraps the 3-bit tag
		_, k := v.LL()
		if !v.SC(k, 7) {
			t.Fatal("intervening SC failed")
		}
	}
	// The word is bit-identical to the stale keep: the unbounded-tag
	// algorithm is fooled. (This is the documented failure mode, not a
	// bug in the implementation.)
	if !v.SC(stale, 99) {
		t.Fatal("expected the wrapped stale SC to (erroneously) succeed, demonstrating the hazard Figure 7 eliminates")
	}
}
