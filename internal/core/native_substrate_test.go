package core

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/contention"
	"repro/internal/machine"
	"repro/internal/word"
)

// This file is the native-substrate stress matrix: every machine-backed
// figure (3, 5, 7) driven by free-running goroutines on hardware
// sync/atomic, swept across GOMAXPROCS 1/2/4 so the race detector sees
// the fully serialized, the barely parallel, and the oversubscribed
// schedules. `make race` and the CI race job run it under -race; the
// assertions are termination (a hung retry loop fails the test timeout),
// exactness of the final value, and — for the bounded family —
// conservation of the tag/slot population at quiescence.

// gomaxprocsSweep runs fn under each GOMAXPROCS setting, restoring the
// previous value afterwards.
func gomaxprocsSweep(t *testing.T, fn func(t *testing.T)) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(n)
		t.Run(map[int]string{1: "gomaxprocs=1", 2: "gomaxprocs=2", 4: "gomaxprocs=4"}[n], fn)
	}
}

func newNativeCoreMachine(t *testing.T, procs int) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{Procs: procs, Substrate: machine.SubstrateNative})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestNativeRaceStressCASVar hammers Figure 3's CAS on the native
// substrate: P processors each land ops increments exactly once.
func TestNativeRaceStressCASVar(t *testing.T) {
	const procs, ops = 4, 1500
	gomaxprocsSweep(t, func(t *testing.T) {
		m := newNativeCoreMachine(t, procs)
		v, err := NewCASVar(m, word.MustLayout(32), 0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(p *machine.Proc) {
				defer wg.Done()
				for k := 0; k < ops; k++ {
					for {
						old := v.Read(p)
						if v.CompareAndSwap(p, old, old+1) {
							break
						}
					}
				}
			}(m.Proc(i))
		}
		wg.Wait()
		if got := v.Read(m.Proc(0)); got != procs*ops {
			t.Errorf("final value = %d, want %d", got, procs*ops)
		}
	})
}

// TestNativeRaceStressRVar hammers Figure 5's LL/SC on the native
// substrate.
func TestNativeRaceStressRVar(t *testing.T) {
	const procs, ops = 4, 1500
	gomaxprocsSweep(t, func(t *testing.T) {
		m := newNativeCoreMachine(t, procs)
		v, err := NewRVar(m, word.MustLayout(32), 0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(p *machine.Proc) {
				defer wg.Done()
				for k := 0; k < ops; k++ {
					for {
						val, keep := v.LL(p)
						if v.SC(p, keep, val+1) {
							break
						}
					}
				}
			}(m.Proc(i))
		}
		wg.Wait()
		if got := v.Read(m.Proc(0)); got != procs*ops {
			t.Errorf("final value = %d, want %d", got, procs*ops)
		}
	})
}

// TestNativeRaceStressBounded hammers Figure 7 (bounded tags over
// RLL/RSC) on the native substrate, then audits tag/slot conservation:
// after a quiescent bounded run, every announce slot must be free and
// every tag queue intact — the reclamation invariant the chaos soak
// checks on the simulation, here proven to survive real hardware
// schedules under the race detector.
func TestNativeRaceStressBounded(t *testing.T) {
	const procs, ops, k = 4, 800, 2
	gomaxprocsSweep(t, func(t *testing.T) {
		m := newNativeCoreMachine(t, procs)
		f, err := NewRBoundedFamily(m, k)
		if err != nil {
			t.Fatal(err)
		}
		v, err := f.NewVar(0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			bp, err := f.Proc(i)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := 0; n < ops; n++ {
					for {
						val, keep, err := v.LL(bp)
						if err != nil {
							t.Errorf("LL: %v", err)
							return
						}
						if v.SC(bp, keep, val+1) {
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		if got := v.Read(mustBoundedProc(t, f, 0)); got != procs*ops {
			t.Errorf("final value = %d, want %d", got, procs*ops)
		}
		if err := f.CheckConservation(); err != nil {
			t.Errorf("conservation after native stress: %v", err)
		}
	})
}

// TestNativeContentionPolicies pins that the contention-management
// policies work unchanged on the native substrate: an adaptive and an
// exponential-backoff policy each carry a CASVar through a deterministic
// spurious burst (Proc.FailNext is the one injection both substrates
// honor) and through real interference.
func TestNativeContentionPolicies(t *testing.T) {
	for _, pol := range []*contention.Policy{
		contention.None(),
		contention.ExponentialBackoff(2, 64).WithSeed(3),
		contention.Adaptive(2, 64).WithSeed(3),
	} {
		t.Run(pol.Name(), func(t *testing.T) {
			m := newNativeCoreMachine(t, 2)
			v, err := NewCASVar(m, word.MustLayout(32), 0)
			if err != nil {
				t.Fatal(err)
			}
			v.SetContention(pol)
			p := m.Proc(0)
			p.FailNext(4)
			if !v.CompareAndSwap(p, 0, 1) {
				t.Fatal("CAS failed through a spurious burst")
			}
			if got := v.Read(p); got != 1 {
				t.Errorf("value = %d, want 1", got)
			}
		})
	}
}

func mustBoundedProc(t *testing.T, f *RBoundedFamily, id int) *RBoundedProc {
	t.Helper()
	p, err := f.Proc(id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
