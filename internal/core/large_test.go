package core

import (
	"sync"
	"testing"
)

func newLargeFamily(t *testing.T, procs, words int) *LargeFamily {
	t.Helper()
	f, err := NewLargeFamily(LargeConfig{Procs: procs, Words: words})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func largeProc(t *testing.T, f *LargeFamily, id int) *LargeProc {
	t.Helper()
	p, err := f.Proc(id)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewLargeFamilyValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     LargeConfig
		wantErr bool
	}{
		{"ok", LargeConfig{Procs: 4, Words: 4}, false},
		{"one word", LargeConfig{Procs: 1, Words: 1}, false},
		{"zero procs", LargeConfig{Procs: 0, Words: 1}, true},
		{"zero words", LargeConfig{Procs: 1, Words: 0}, true},
		{"tag too wide for pid", LargeConfig{Procs: 1024, Words: 1, TagBits: 60}, true},
		{"explicit tag", LargeConfig{Procs: 4, Words: 2, TagBits: 32}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewLargeFamily(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewLargeFamily(%+v) error = %v, wantErr %v", tt.cfg, err, tt.wantErr)
			}
		})
	}
}

func TestLargeFamilyDefaultTagShrinksForPid(t *testing.T) {
	// With many processes the default 48-bit tag must shrink so pid fits.
	f, err := NewLargeFamily(LargeConfig{Procs: 1 << 20, Words: 1})
	if err != nil {
		t.Fatalf("default layout should adapt: %v", err)
	}
	if f.MaxSegmentValue() == 0 {
		t.Error("no value bits left")
	}
}

func TestLargeVarInitialValue(t *testing.T) {
	f := newLargeFamily(t, 2, 4)
	v, err := f.NewVar([]uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	p := largeProc(t, f, 0)
	dst := make([]uint64, 4)
	keep, res := v.WLL(p, dst)
	if res != Succ {
		t.Fatalf("WLL on quiescent variable returned %d", res)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if dst[i] != want {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
	if !v.VL(p, keep) {
		t.Error("VL false on quiescent variable")
	}
}

func TestLargeVarValidationErrors(t *testing.T) {
	f := newLargeFamily(t, 2, 2)
	if _, err := f.NewVar([]uint64{1}); err == nil {
		t.Error("wrong-length initial accepted")
	}
	if _, err := f.NewVar([]uint64{1, f.MaxSegmentValue() + 1}); err == nil {
		t.Error("oversized initial accepted")
	}
	if _, err := f.Proc(-1); err == nil {
		t.Error("negative pid accepted")
	}
	if _, err := f.Proc(2); err == nil {
		t.Error("out-of-range pid accepted")
	}
}

func TestLargeVarWLLPanicsOnShortDst(t *testing.T) {
	f := newLargeFamily(t, 1, 3)
	v, err := f.NewVar([]uint64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p := largeProc(t, f, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	v.WLL(p, make([]uint64, 2))
}

func TestLargeVarSCBasic(t *testing.T) {
	f := newLargeFamily(t, 2, 3)
	v, err := f.NewVar([]uint64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p := largeProc(t, f, 0)
	dst := make([]uint64, 3)
	keep, res := v.WLL(p, dst)
	if res != Succ {
		t.Fatal("WLL failed")
	}
	if !v.SC(p, keep, []uint64{10, 20, 30}) {
		t.Fatal("uncontended SC failed")
	}
	v.Read(p, dst)
	for i, want := range []uint64{10, 20, 30} {
		if dst[i] != want {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

func TestLargeVarStaleSCFails(t *testing.T) {
	f := newLargeFamily(t, 2, 2)
	v, err := f.NewVar([]uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := largeProc(t, f, 0), largeProc(t, f, 1)
	dst := make([]uint64, 2)
	k0, _ := v.WLL(p0, dst)
	k1, _ := v.WLL(p1, dst)
	if !v.SC(p1, k1, []uint64{5, 6}) {
		t.Fatal("p1 SC failed")
	}
	if v.VL(p0, k0) {
		t.Error("p0 VL true after p1's SC")
	}
	if v.SC(p0, k0, []uint64{7, 8}) {
		t.Error("p0 stale SC succeeded")
	}
}

func TestLargeVarWLLReturnsWinnerDuringStall(t *testing.T) {
	// Stall an SC'er after its header CAS; a concurrent WLL must either
	// help and return a consistent NEW value, and if overtaken must
	// return the winner's pid.
	f := newLargeFamily(t, 2, 4)
	v, err := f.NewVar([]uint64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := largeProc(t, f, 0), largeProc(t, f, 1)

	stalled := make(chan struct{})
	release := make(chan struct{})
	f.stallHook = func(pid int) {
		if pid == 0 {
			close(stalled)
			<-release
		}
	}
	defer func() { f.stallHook = nil }()

	dst := make([]uint64, 4)
	keep, res := v.WLL(p0, dst)
	if res != Succ {
		t.Fatal("initial WLL failed")
	}

	done := make(chan bool)
	go func() {
		done <- v.SC(p0, keep, []uint64{9, 9, 9, 9})
	}()
	<-stalled

	// p0's header CAS has landed but its copy has not run. A WLL by p1
	// must help: it returns the complete new value.
	got := make([]uint64, 4)
	k1, res1 := v.WLL(p1, got)
	if res1 != Succ {
		t.Fatalf("helping WLL returned %d, want Succ", res1)
	}
	for i := range got {
		if got[i] != 9 {
			t.Errorf("helped value[%d] = %d, want 9 (helper must complete the copy)", i, got[i])
		}
	}
	if !v.VL(p1, k1) {
		t.Error("VL false after helping WLL with no further SC")
	}

	close(release)
	if !<-done {
		t.Error("stalled SC reported failure")
	}
}

func TestLargeVarHelpersAllowProgressPastStalledSC(t *testing.T) {
	// The non-blocking property the paper motivates: a process that stalls
	// forever mid-SC must not block others. p0 stalls inside SC; p1 keeps
	// reading and SC'ing successfully.
	f := newLargeFamily(t, 2, 2)
	v, err := f.NewVar([]uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := largeProc(t, f, 0), largeProc(t, f, 1)

	stalled := make(chan struct{})
	release := make(chan struct{})
	f.stallHook = func(pid int) {
		if pid == 0 {
			close(stalled)
			<-release
		}
	}
	defer func() { f.stallHook = nil }()

	dst := make([]uint64, 2)
	keep, _ := v.WLL(p0, dst)
	go v.SC(p0, keep, []uint64{100, 200})
	<-stalled

	// p1 makes progress indefinitely while p0 is stalled.
	for i := uint64(1); i <= 50; i++ {
		got := make([]uint64, 2)
		k, res := v.WLL(p1, got)
		if res != Succ {
			// p0 is stalled, no other SC'er exists; must succeed.
			t.Fatalf("round %d: WLL returned %d", i, res)
		}
		if !v.SC(p1, k, []uint64{i, i}) {
			t.Fatalf("round %d: SC failed with no contention", i)
		}
	}
	close(release)
}

func TestLargeVarConcurrentTransfers(t *testing.T) {
	// W-word invariant preservation: the vector always sums to zero
	// (mod 2^16 per segment): each SC moves amount from one slot to
	// another. Any torn read or lost update breaks the invariant.
	const procs = 4
	const rounds = 2000
	const w = 4
	f := newLargeFamily(t, procs, w)
	v, err := f.NewVar(make([]uint64, w))
	if err != nil {
		t.Fatal(err)
	}
	maxVal := f.MaxSegmentValue()

	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, err := f.Proc(id)
			if err != nil {
				t.Error(err)
				return
			}
			cur := make([]uint64, w)
			next := make([]uint64, w)
			for r := 0; r < rounds; r++ {
				for {
					keep, res := v.WLL(p, cur)
					if res != Succ {
						continue
					}
					copy(next, cur)
					from := (id + r) % w
					to := (id + r + 1) % w
					next[from] = (next[from] - 1) & maxVal
					next[to] = (next[to] + 1) & maxVal
					if v.SC(p, keep, next) {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()

	p0 := largeProc(t, f, 0)
	final := make([]uint64, w)
	v.Read(p0, final)
	var sum uint64
	for _, x := range final {
		sum = (sum + x) & maxVal
	}
	if sum != 0 {
		t.Errorf("invariant violated: segments %v sum to %d (mod), want 0", final, sum)
	}
}

func TestLargeVarSnapshotsAreConsistent(t *testing.T) {
	// Writers always store vectors of the form {x, x, x, x}. Readers must
	// never observe a mixed vector — that would be a torn (unlinearizable)
	// read.
	const w = 4
	const writers = 2
	const readers = 2
	const rounds = 3000
	f := newLargeFamily(t, writers+readers, w)
	v, err := f.NewVar(make([]uint64, w))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p, _ := f.Proc(id)
			cur := make([]uint64, w)
			val := make([]uint64, w)
			for r := 0; r < rounds; r++ {
				for {
					keep, res := v.WLL(p, cur)
					if res != Succ {
						continue
					}
					x := uint64(id*rounds+r) & f.MaxSegmentValue()
					for j := range val {
						val[j] = x
					}
					if v.SC(p, keep, val) {
						break
					}
				}
			}
		}(i)
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func(id int) {
			defer readerWG.Done()
			p, _ := f.Proc(writers + id)
			dst := make([]uint64, w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, res := v.WLL(p, dst); res != Succ {
					continue
				}
				for j := 1; j < w; j++ {
					if dst[j] != dst[0] {
						t.Errorf("torn read: %v", dst)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
}

func TestLargeVarManyVarsShareOverhead(t *testing.T) {
	// Theorem 4: space overhead is Θ(NW) regardless of the number of
	// variables implemented.
	f := newLargeFamily(t, 8, 4)
	before := f.OverheadWords()
	if before != 8*4 {
		t.Fatalf("overhead = %d words, want %d", before, 8*4)
	}
	vars := make([]*LargeVar, 100)
	for i := range vars {
		v, err := f.NewVar(make([]uint64, 4))
		if err != nil {
			t.Fatal(err)
		}
		vars[i] = v
	}
	if f.OverheadWords() != before {
		t.Errorf("overhead grew with variable count: %d -> %d", before, f.OverheadWords())
	}
	// And the variables are independent.
	p := largeProc(t, f, 0)
	dst := make([]uint64, 4)
	k, _ := vars[0].WLL(p, dst)
	if !vars[0].SC(p, k, []uint64{1, 2, 3, 4}) {
		t.Fatal("SC on vars[0] failed")
	}
	vars[1].Read(p, dst)
	for _, x := range dst {
		if x != 0 {
			t.Errorf("vars[1] disturbed by SC on vars[0]: %v", dst)
			break
		}
	}
}

func TestLargeVarCrossVariableAnnounceReuse(t *testing.T) {
	// The same process SCs on two variables back to back; the announce
	// row A[p] is reused. The first variable must retain its value.
	f := newLargeFamily(t, 2, 2)
	v1, _ := f.NewVar([]uint64{0, 0})
	v2, _ := f.NewVar([]uint64{0, 0})
	p := largeProc(t, f, 0)
	dst := make([]uint64, 2)

	k, _ := v1.WLL(p, dst)
	if !v1.SC(p, k, []uint64{11, 12}) {
		t.Fatal("SC on v1 failed")
	}
	k, _ = v2.WLL(p, dst)
	if !v2.SC(p, k, []uint64{21, 22}) {
		t.Fatal("SC on v2 failed")
	}

	v1.Read(p, dst)
	if dst[0] != 11 || dst[1] != 12 {
		t.Errorf("v1 = %v, want [11 12]", dst)
	}
	v2.Read(p, dst)
	if dst[0] != 21 || dst[1] != 22 {
		t.Errorf("v2 = %v, want [21 22]", dst)
	}
}

func TestLargeVarWithTinyTags(t *testing.T) {
	// Small tag space exercises wraparound of the tag domain in long
	// runs; with one writer at a time correctness is preserved as long as
	// no LL-SC sequence spans a full wrap (unbounded-tag assumption).
	f, err := NewLargeFamily(LargeConfig{Procs: 2, Words: 2, TagBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.NewVar([]uint64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	p := largeProc(t, f, 0)
	dst := make([]uint64, 2)
	for i := uint64(1); i <= 1000; i++ { // wraps the 8-bit tag ~4 times
		k, res := v.WLL(p, dst)
		if res != Succ {
			t.Fatalf("WLL %d failed", i)
		}
		x := i & f.MaxSegmentValue()
		if !v.SC(p, k, []uint64{x, x}) {
			t.Fatalf("SC %d failed", i)
		}
	}
	v.Read(p, dst)
	want := uint64(1000) & f.MaxSegmentValue()
	if dst[0] != want || dst[1] != want {
		t.Errorf("final = %v, want [%d %d]", dst, want, want)
	}
}

func TestLargeFamilyMaxSegmentValue(t *testing.T) {
	f, err := NewLargeFamily(LargeConfig{Procs: 2, Words: 1, TagBits: 48})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.MaxSegmentValue(); got != (1<<16)-1 {
		t.Errorf("MaxSegmentValue = %d, want %d", got, (1<<16)-1)
	}
	if f.Procs() != 2 || f.Words() != 1 {
		t.Errorf("accessors = (%d,%d), want (2,1)", f.Procs(), f.Words())
	}
}

func TestLargeVarFootprint(t *testing.T) {
	f := newLargeFamily(t, 2, 8)
	v, err := f.NewVar(make([]uint64, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got := v.FootprintWords(); got != 9 {
		t.Errorf("FootprintWords = %d, want 9", got)
	}
	if got := v.WordsPerValue(); got != 8 {
		t.Errorf("WordsPerValue = %d, want 8", got)
	}
}

func TestLargeVarWideValues(t *testing.T) {
	// A 256-bit value in 8 segments of 32 bits each (32-bit tags).
	f, err := NewLargeFamily(LargeConfig{Procs: 2, Words: 8, TagBits: 32})
	if err != nil {
		t.Fatal(err)
	}
	init := []uint64{0xDEADBEEF, 0xCAFEBABE, 0x12345678, 0x9ABCDEF0, 1, 2, 3, 4}
	v, err := f.NewVar(init)
	if err != nil {
		t.Fatal(err)
	}
	p := largeProc(t, f, 0)
	dst := make([]uint64, 8)
	v.Read(p, dst)
	for i := range init {
		if dst[i] != init[i] {
			t.Errorf("dst[%d] = %#x, want %#x", i, dst[i], init[i])
		}
	}
}

func BenchmarkLargeVarWLLByWidth(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(benchName("W", w), func(b *testing.B) {
			f := MustNewLargeFamily(LargeConfig{Procs: 1, Words: w})
			v, err := f.NewVar(make([]uint64, w))
			if err != nil {
				b.Fatal(err)
			}
			p, _ := f.Proc(0)
			dst := make([]uint64, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.WLL(p, dst)
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
