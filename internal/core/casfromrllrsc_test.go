package core

import (
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/word"
)

func TestCASVarBasic(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	v, err := NewCASVar(m, word.DefaultLayout, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	if got := v.Read(p); got != 5 {
		t.Errorf("Read = %d, want 5", got)
	}
	if !v.CompareAndSwap(p, 5, 6) {
		t.Error("matching CAS failed")
	}
	if v.CompareAndSwap(p, 5, 7) {
		t.Error("stale CAS succeeded")
	}
	if got := v.Read(p); got != 6 {
		t.Errorf("Read = %d, want 6", got)
	}
}

func TestCASVarNoOp(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	v, err := NewCASVar(m, word.DefaultLayout, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	if !v.CompareAndSwap(p, 3, 3) {
		t.Error("no-op CAS failed")
	}
	if got := v.Read(p); got != 3 {
		t.Errorf("Read = %d, want 3", got)
	}
}

func TestCASVarRejectsOversizedInitial(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	layout := word.MustLayout(56) // 8-bit values
	if _, err := NewCASVar(m, layout, 256); err == nil {
		t.Error("oversized initial value accepted")
	}
}

func TestCASVarPanicsOnOversizedNew(t *testing.T) {
	m := machine.MustNew(machine.Config{Procs: 1})
	layout := word.MustLayout(56)
	v, err := NewCASVar(m, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized SC value did not panic")
		}
	}()
	v.CompareAndSwap(m.Proc(0), 0, 1<<9)
}

func TestCASVarRespectsStrictMode(t *testing.T) {
	// Figure 3 performs no memory access between RLL and RSC, so it must
	// work even on a machine that enforces the R4000 restriction.
	m := machine.MustNew(machine.Config{Procs: 1, Strict: true})
	v, err := NewCASVar(m, word.DefaultLayout, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	for i := uint64(0); i < 100; i++ {
		if !v.CompareAndSwap(p, i, i+1) {
			t.Fatalf("CAS %d failed in strict mode", i)
		}
	}
}

func TestCASVarSurvivesSpuriousFailures(t *testing.T) {
	// Theorem 1: wait-free provided finitely many spurious failures per
	// operation. With p=0.5 every CAS still terminates.
	m := machine.MustNew(machine.Config{Procs: 1, SpuriousFailProb: 0.5, Seed: 7})
	v, err := NewCASVar(m, word.DefaultLayout, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	for i := uint64(0); i < 1000; i++ {
		if !v.CompareAndSwap(p, i, i+1) {
			t.Fatalf("CAS %d failed", i)
		}
	}
	if got := v.Read(p); got != 1000 {
		t.Errorf("final value = %d, want 1000", got)
	}
	if st := m.Stats(); st.RSCSpurious == 0 {
		t.Error("expected spurious failures at p=0.5")
	}
}

func TestCASVarDeterministicInjection(t *testing.T) {
	// A burst of forced spurious failures must not change the outcome,
	// only the step count — and the operation completes in constant time
	// after the last injected failure (one more RLL/RSC pair).
	m := machine.MustNew(machine.Config{Procs: 1})
	v, err := NewCASVar(m, word.DefaultLayout, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	p.FailNext(5)
	if !v.CompareAndSwap(p, 0, 1) {
		t.Fatal("CAS failed despite intact value")
	}
	st := m.Stats()
	if st.RSCSpurious != 5 {
		t.Errorf("spurious = %d, want 5", st.RSCSpurious)
	}
	if st.RSCSuccess != 1 {
		t.Errorf("success = %d, want 1", st.RSCSuccess)
	}
	// Constant time after last spurious failure: exactly one extra pair.
	if st.RLLs != 6 {
		t.Errorf("RLLs = %d, want 6 (5 failed pairs + 1 success)", st.RLLs)
	}
}

func TestCASVarConcurrentCounter(t *testing.T) {
	const procs = 8
	const rounds = 2000
	m := machine.MustNew(machine.Config{Procs: procs, SpuriousFailProb: 0.05, Seed: 11})
	v, err := NewCASVar(m, word.DefaultLayout, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(p *machine.Proc) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					old := v.Read(p)
					if v.CompareAndSwap(p, old, (old+1)&v.Layout().MaxVal()) {
						break
					}
				}
			}
		}(m.Proc(i))
	}
	wg.Wait()
	want := uint64(procs*rounds) & v.Layout().MaxVal()
	if got := v.Read(m.Proc(0)); got != want {
		t.Errorf("final counter = %d, want %d", got, want)
	}
}

func TestCASVarAgainstOracle(t *testing.T) {
	// Randomized cross-check: run the same operation sequence against the
	// Figure 2 oracle; since the sequence is deterministic per process and
	// we compare per-operation results under a per-variable mutex-free
	// regime, we instead check sequentially: single proc, random ops.
	m := machine.MustNew(machine.Config{Procs: 1, SpuriousFailProb: 0.3, Seed: 3})
	v, err := NewCASVar(m, word.MustLayout(48), 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle := spec.MustNewRegister(1, 0)
	p := m.Proc(0)
	seq := []struct{ old, new uint64 }{
		{0, 1}, {1, 2}, {5, 9}, {2, 2}, {2, 3}, {3, 0}, {0, 0}, {0, 65535},
	}
	for i, op := range seq {
		got := v.CompareAndSwap(p, op.old, op.new)
		want := oracle.CAS(op.old, op.new)
		if got != want {
			t.Fatalf("op %d CAS(%d,%d): impl=%v oracle=%v", i, op.old, op.new, got, want)
		}
		if gv, wv := v.Read(p), oracle.Read(); gv != wv {
			t.Fatalf("op %d value: impl=%d oracle=%d", i, gv, wv)
		}
	}
}
