package analysis

import (
	"go/ast"
)

// CtxDeadline enforces the PR 9 service-layer discipline: a retry loop
// that waits on the contention layer (contention.Waiter.Wait/WaitTimed
// or resilience.Retrier.Do) must consult its context deadline on the
// retry path. A loop that keeps waiting after the caller's deadline has
// passed does work nobody will collect — and, worse, the shedder's
// vitals (inflight, latency quantiles) keep counting it as live load,
// so admission control sheds new requests to protect work that is
// already dead. Checking ctx.Done()/ctx.Err()/ctx.Deadline() anywhere on
// the retry path (directly or one call deep into a same-package helper)
// keeps the vitals honest.
//
// Retrier.Do checks ctx.Err() at the top of every attempt, so a call to
// Do is both a wait and a deadline consultation: loops built on the Do
// closure idiom satisfy the check transitively, while loops built on raw
// Waiter.Wait calls must check the context themselves.
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc: "check that service-layer retry loops that wait on contention (Waiter.Wait/WaitTimed\n" +
		"or Retrier.Do) consult ctx.Done()/ctx.Err()/ctx.Deadline() on the retry path. A loop\n" +
		"waiting past its caller's deadline inflates the shedder's vitals with dead work.",
	Run: runCtxDeadline,
}

func runCtxDeadline(pass *Pass) error {
	if !isServicePkg(pass.Pkg.Path()) {
		return nil
	}
	sums := pass.summaries()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var clauses []ast.Node
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
				for _, c := range []ast.Node{loop.Init, loop.Cond, loop.Post} {
					if c != nil {
						clauses = append(clauses, c)
					}
				}
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			nodes := append(clauses, body)
			if !loopWaitsOnContention(pass, sums, body) {
				return true
			}
			if loopConsultsDeadline(pass, sums, nodes...) {
				return true
			}
			pass.Reportf(n.Pos(),
				"retry loop waits on contention without consulting the context deadline: check ctx.Err()/ctx.Done() on the retry path so the shedder's vitals stay honest, or suppress with //llsc:allow ctxdeadline(reason)")
			return true
		})
	}
	return nil
}

// loopWaitsOnContention reports whether the loop body waits on the
// contention layer in its own retry context (nested loops and function
// literals wait for their own iterations, not this loop's), directly or
// one call deep through a same-package helper.
func loopWaitsOnContention(pass *Pass, sums *pkgSummaries, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // separate retry context
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWaiterCall(pass.Info, call) || isRetrierDo(pass.Info, call) {
			found = true
			return false
		}
		if callee := staticCallee(pass.Info, call); callee != nil {
			if sum, ok := sums.funcs[callee]; ok && sum.waits {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopConsultsDeadline reports whether any of the nodes consults a
// context deadline anywhere (nested constructs included: a deadline
// check on any retry path services the enclosing loop), directly or one
// call deep through a same-package helper.
func loopConsultsDeadline(pass *Pass, sums *pkgSummaries, nodes ...ast.Node) bool {
	found := false
	for _, node := range nodes {
		ast.Inspect(node, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isCtxConsult(pass.Info, call) || isRetrierDo(pass.Info, call) {
				found = true
				return false
			}
			if callee := staticCallee(pass.Info, call); callee != nil {
				if sum, ok := sums.funcs[callee]; ok && sum.ctxConsult {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}
