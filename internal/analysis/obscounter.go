package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

//go:generate go run ./gen -out registry_gen.go

// ObsCounter checks every string literal used as an obs counter name
// against the canonical registry generated from the internal/obs
// taxonomy (registry_gen.go; regenerate with `go generate` after adding a
// counter). Counter names cross the string boundary in exactly one
// place — indexing the name → value maps produced by obs.Snapshot.Map /
// NonZero and carried by the llsc-bench/llsc-stress/llsc-soak JSON
// records' Counters fields — and a typo there does not fail, it reads a
// silent zero. The same registry is what the docs-sync test holds
// docs/OBSERVABILITY.md's counter table to, so code, docs, and schema
// cannot drift apart independently.
var ObsCounter = &Analyzer{
	Name: "obscounter",
	Doc: "check string-literal counter names against the registry generated from the\n" +
		"internal/obs taxonomy: indexing a counters map with an unregistered name reads a\n" +
		"silent zero instead of failing, the classic observability typo.",
	Run: runObsCounter,
}

func runObsCounter(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(idx.Index).(*ast.BasicLit)
			if !ok || lit.Kind.String() != "STRING" {
				return true
			}
			if !isCounterMapExpr(pass.Info, idx.X) {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !obsCounterRegistry[name] {
				pass.Reportf(lit.Pos(),
					"unknown obs counter %q: not in the registry generated from the internal/obs taxonomy (misspelled names read a silent zero; see docs/OBSERVABILITY.md)",
					name)
			}
			return true
		})
	}
	return nil
}

// isCounterMapExpr reports whether e is a counters map: a
// map[string]uint64 that is either a field/variable named Counters (the
// JSON record convention) or the direct result of obs.Snapshot.Map or
// NonZero.
func isCounterMapExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	tv, ok := info.Types[e]
	if !ok || !isMapStringUint64(tv.Type) {
		return false
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name == "Counters"
	case *ast.Ident:
		return e.Name == "Counters" || e.Name == "counters"
	case *ast.CallExpr:
		fn := methodCallee(info, e)
		if fn == nil {
			return false
		}
		return (fn.Name() == "Map" || fn.Name() == "NonZero") &&
			recvMatches(fn, "internal/obs", "Snapshot")
	}
	return false
}

func isMapStringUint64(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	k, kOK := m.Key().Underlying().(*types.Basic)
	v, vOK := m.Elem().Underlying().(*types.Basic)
	return kOK && vOK && k.Kind() == types.String && v.Kind() == types.Uint64
}
