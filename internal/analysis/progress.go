package analysis

import (
	"go/ast"
	"go/token"
)

// Progress enforces the shape the lock-freedom arguments assume: every
// unbounded retry loop in a protocol package makes a machine-visible
// attempt on each iteration. Moir's proofs (and Herlihy's helping
// constructions the universal package builds on) show that *some*
// processor completes because every failed SC implies another processor
// succeeded; a loop that spins without touching the machine — no SC/CAS
// attempt, no helping Load, no channel handoff — is a livelock those
// arguments say nothing about, and the contention layer never sees it
// either (no wait, no backoff_waits counter, no soak-harness signal).
//
// The attempt vocabulary is deliberately broad: any machine.Proc
// operation, a sync/atomic call, a method on a protocol-package type
// (algorithm-level SC/CAS and helping routines), a channel operation
// (blocking handoffs are the scheduler's problem, not a livelock), or a
// same-package helper whose one-level summary performs any of these.
var Progress = &Analyzer{
	Name: "progress",
	Doc: "check that unbounded for-loops in protocol packages contain an SC/CAS attempt or a\n" +
		"helping call on every iteration: a spin that never touches the machine is a livelock\n" +
		"outside the lock-freedom proofs. Bounded loops (with a condition or range clause) are\n" +
		"exempt; justified spins carry //llsc:allow progress(reason).",
	Run: runProgress,
}

func runProgress(pass *Pass) error {
	if !isProtocolPkg(pass.Pkg.Path()) {
		return nil
	}
	sums := pass.summaries()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true // bounded by its condition
			}
			if loopMakesProgress(pass, sums, loop) {
				return true
			}
			pass.Reportf(loop.Pos(),
				"unbounded retry loop with no SC/CAS attempt or helping call: a spin that never touches the machine is a livelock the lock-freedom argument does not cover; attempt an operation, bound the loop, or suppress with //llsc:allow progress(reason)")
			return true
		})
	}
	return nil
}

// loopMakesProgress reports whether the loop performs a machine-visible
// attempt: a machine.Proc op, sync/atomic call, protocol-package method
// call, channel operation, or a same-package helper summarized to do any
// of these. Nested function literals are excluded (they only run if
// something calls them), but nested loops count — an inner loop that
// attempts keeps the outer iteration honest.
func loopMakesProgress(pass *Pass, sums *pkgSummaries, loop *ast.ForStmt) bool {
	found := false
	var nodes []ast.Node
	for _, c := range []ast.Node{loop.Init, loop.Post, loop.Body} {
		if c != nil {
			nodes = append(nodes, c)
		}
	}
	for _, node := range nodes {
		ast.Inspect(node, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt, *ast.SelectStmt:
				found = true
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW { // channel receive
					found = true
					return false
				}
				return true
			case *ast.RangeStmt:
				// Ranging over a channel blocks; anything else is a
				// bounded scan whose body may still attempt.
				return true
			case *ast.CallExpr:
				if _, ok := classifyMemOp(pass.Info, n); ok {
					found = true
					return false
				}
				if isAtomicCall(pass.Info, n) || protocolMethodCallee(pass.Info, n) != nil {
					found = true
					return false
				}
				if callee := staticCallee(pass.Info, n); callee != nil {
					if sum, ok := sums.funcs[callee]; ok && sum.machineProgress() {
						found = true
						return false
					}
				}
				return true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
