package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody wraps body in a function, parses it, and returns the CFG of
// the function body.
func parseBody(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	decl := file.Decls[0].(*ast.FuncDecl)
	return buildCFG(decl.Body)
}

// TestCFGShapes pins the graph topology for every control construct the
// builder handles. Succs are rendered sorted, so the strings are stable.
func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{
			name: "if/else",
			body: "x := 1\nif x > 0 { x = 2 } else { x = 3 }\nx = 4",
			want: "b0 -> [b2 b3]; b1 -> [b4]; b2 -> [b1]; b3 -> [b1]; b4 -> []",
		},
		{
			name: "for with cond and post",
			body: "for i := 0; i < 3; i++ { work() }\ndone()",
			want: "b0 -> [b1]; b1 -> [b2 b3]; b2 -> [b4]; b3 -> [b5]; b4 -> [b1]; b5 -> []",
		},
		{
			name: "infinite loop with break",
			body: "for { if c() { break } }\nrest()",
			want: "b0 -> [b1]; b1 -> [b2]; b2 -> [b4 b5]; b3 -> [b6]; b4 -> [b1]; b5 -> [b3]; b6 -> []",
		},
		{
			name: "switch with fallthrough and default",
			body: "switch x {\ncase 1:\n\ta()\n\tfallthrough\ncase 2:\n\tb()\ndefault:\n\tc()\n}",
			want: "b0 -> [b2 b3 b4]; b1 -> [b5]; b2 -> [b3]; b3 -> [b1]; b4 -> [b1]; b5 -> []",
		},
		{
			name: "select",
			body: "select {\ncase v := <-ch:\n\tuse(v)\ncase ch2 <- 1:\n\tb()\n}",
			want: "b0 -> [b2 b3]; b1 -> [b4]; b2 -> [b1]; b3 -> [b1]; b4 -> []",
		},
		{
			name: "defer and early return",
			body: "defer cleanup()\nif c() { return }\nmid()",
			want: "b0 -> [b1 b2]; b1 -> [b3]; b2 -> [b3]; b3 -> []",
		},
		{
			name: "goto back-edge",
			body: "i := 0\nloop:\ni++\nif i < 3 { goto loop }\ndone()",
			want: "b0 -> [b1]; b1 -> [b2 b3]; b2 -> [b4]; b3 -> [b1]; b4 -> []",
		},
		{
			name: "range loop",
			body: "for _, v := range xs { use(v) }\nend()",
			want: "b0 -> [b1]; b1 -> [b2 b3]; b2 -> [b1]; b3 -> [b4]; b4 -> []",
		},
		{
			name: "labeled break from nested loop",
			body: "outer:\nfor {\n\tfor {\n\t\tbreak outer\n\t}\n}\nr()",
			want: "b0 -> [b1]; b1 -> [b2]; b2 -> [b3]; b3 -> [b5]; b4 -> [b8]; b5 -> [b6]; b6 -> [b4]; b7 -> [b2]; b8 -> []",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			if got := g.String(); got != tc.want {
				t.Errorf("CFG mismatch\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// TestCFGDeferredOnExit checks that deferred calls are replayed on the
// Exit block (in reverse registration order), so every return path sees
// them.
func TestCFGDeferredOnExit(t *testing.T) {
	g := parseBody(t, "defer first()\ndefer second()\nif c() { return }\nmid()")
	if len(g.Exit.Nodes) != 2 {
		t.Fatalf("Exit has %d nodes, want the 2 deferred calls", len(g.Exit.Nodes))
	}
	name := func(n ast.Node) string {
		return n.(*ast.CallExpr).Fun.(*ast.Ident).Name
	}
	if name(g.Exit.Nodes[0]) != "second" || name(g.Exit.Nodes[1]) != "first" {
		t.Errorf("deferred replay order = [%s %s], want [second first]",
			name(g.Exit.Nodes[0]), name(g.Exit.Nodes[1]))
	}
}

// TestReversePostorder checks the iteration order the dataflow solver
// relies on: entry first, every block present exactly once, and each
// loop head before its body.
func TestReversePostorder(t *testing.T) {
	g := parseBody(t, "for i := 0; i < 3; i++ { work() }\ndone()")
	rpo := g.ReversePostorder()
	if len(rpo) != len(g.Blocks) {
		t.Fatalf("reverse postorder has %d blocks, want %d", len(rpo), len(g.Blocks))
	}
	if rpo[0] != g.Entry {
		t.Errorf("reverse postorder starts at b%d, want entry b%d", rpo[0].Index, g.Entry.Index)
	}
	order := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		if _, dup := order[b]; dup {
			t.Fatalf("block b%d appears twice in reverse postorder", b.Index)
		}
		order[b] = i
	}
	head, body := g.Blocks[1], g.Blocks[2]
	if order[head] >= order[body] {
		t.Errorf("loop head b%d ordered after its body b%d", head.Index, body.Index)
	}
}
