package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestRegistrySync holds the generated obscounter registry to the
// internal/obs taxonomy, the single source of truth: a new counter
// without `go generate ./internal/analysis` fails here, not at some
// later llscvet run.
func TestRegistrySync(t *testing.T) {
	names := obs.CounterNames()
	for _, n := range names {
		if !obsCounterRegistry[n] {
			t.Errorf("counter %q is in the obs taxonomy but not in registry_gen.go; run go generate ./internal/analysis", n)
		}
	}
	if len(names) != len(obsCounterRegistry) {
		t.Errorf("registry has %d names, taxonomy has %d; run go generate ./internal/analysis",
			len(obsCounterRegistry), len(names))
	}
}

// docCounterRE matches one backticked counter name.
var docCounterRE = regexp.MustCompile("`([a-z][a-z0-9_]*)`")

// TestObservabilityDocsSync holds the docs/OBSERVABILITY.md counter table
// to the same taxonomy: every counter must be documented, and the docs
// must not document counters that do not exist. Only the first table
// column counts — the meaning column may reference other counters freely.
func TestObservabilityDocsSync(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	inTaxonomy := false
	documented := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			inTaxonomy = strings.HasPrefix(line, "## Counter taxonomy")
			continue
		}
		if !inTaxonomy || !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.SplitN(line, "|", 3)
		if len(cells) < 3 {
			continue
		}
		for _, m := range docCounterRE.FindAllStringSubmatch(cells[1], -1) {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("no counter rows found under '## Counter taxonomy' in docs/OBSERVABILITY.md")
	}
	for _, n := range obs.CounterNames() {
		if !documented[n] {
			t.Errorf("counter %q is missing from the docs/OBSERVABILITY.md counter table", n)
		}
	}
	for n := range documented {
		if !obsCounterRegistry[n] {
			t.Errorf("docs/OBSERVABILITY.md documents counter %q, which is not in the obs taxonomy", n)
		}
	}
}

// TestRepoVetsClean is the self-gate: the full repository must produce no
// unsuppressed findings, and every suppression must carry a reason. This
// is the same bar `make vet` and the CI llscvet job enforce.
func TestRepoVetsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repository")
	}
	loader := &Loader{Dir: filepath.Join("..", "..")}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("unsuppressed finding: %s", d)
		} else if d.Reason == "" {
			t.Errorf("suppression without a reason at %s", d.Pos)
		}
	}
}
