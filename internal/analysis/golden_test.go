package analysis

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// testLoader builds a Loader whose overlay maps every package directory
// under testdata/src to its slash-relative import path, mirroring the
// golang.org/x/tools analysistest layout. Stub dependencies
// (llscvet.test/internal/...) resolve through the same overlay.
func testLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	overlay := make(map[string]string)
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil || !d.IsDir() {
			return walkErr
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, p)
				if err != nil {
					return err
				}
				overlay[filepath.ToSlash(rel)] = p
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Loader{Overlay: overlay}
}

// wantArgRE extracts the quoted regexps of one `// want "re" ...` comment.
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// checkGolden loads one testdata package, runs a single analyzer over it,
// and matches the unsuppressed diagnostics against the package's
// `// want "regexp"` comments: every finding needs a want on its line and
// every want needs a finding. wantSuppressed pins the number of findings
// neutralized by //llsc:allow clauses, so the golden file proves both that
// the check fires and that the escape hatch works.
func checkGolden(t *testing.T, a *Analyzer, pkgPath string, wantSuppressed int) {
	t.Helper()
	loader := testLoader(t)
	pkgs, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(pkgs), pkgPath)
	}
	diags, err := Run(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type wantEntry struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*wantEntry) // file:line -> expectations
	pkg := pkgs[0]
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				key := lineKey(pkg.Fset.Position(c.Pos()))
				for _, m := range wantArgRE.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &wantEntry{re: re})
				}
			}
		}
	}

	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if d.Reason == "" {
				t.Errorf("suppressed finding at %s has no reason recorded", d.Pos)
			}
			continue
		}
		matched := false
		for _, w := range wants[lineKey(d.Position())] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for key, entries := range wants {
		for _, w := range entries {
			if !w.matched {
				t.Errorf("no finding matched want %q at %s", w.re, key)
			}
		}
	}
	if suppressed != wantSuppressed {
		t.Errorf("suppressed findings = %d, want %d", suppressed, wantSuppressed)
	}
}

func TestReservedPairGolden(t *testing.T) {
	checkGolden(t, ReservedPair, "llscvet.test/reservedpair", 1)
}

func TestStrictAccessGolden(t *testing.T) {
	checkGolden(t, StrictAccess, "llscvet.test/strictaccess", 1)
}

func TestNakedAtomicGolden(t *testing.T) {
	checkGolden(t, NakedAtomic, "llscvet.test/nakedatomic/internal/core", 1)
}

func TestNakedAtomicIgnoresNonProtocolPackages(t *testing.T) {
	checkGolden(t, NakedAtomic, "llscvet.test/nakedclean", 0)
}

// TestNakedAtomicMachineGolden pins the substrate fence: internal/machine
// is a protocol package too, so an unsuppressed sync/atomic import there
// fires, while the audited //llsc:allow clause on the substrate files'
// import is the one sanctioned escape.
func TestNakedAtomicMachineGolden(t *testing.T) {
	checkGolden(t, NakedAtomic, "llscvet.test/nakedatomic/internal/machine", 1)
}

func TestRetryPolicyGolden(t *testing.T) {
	checkGolden(t, RetryPolicy, "llscvet.test/retrypolicy/internal/structures", 1)
}

func TestResEscapeGolden(t *testing.T) {
	checkGolden(t, ResEscape, "llscvet.test/resescape", 1)
}

func TestCtxDeadlineGolden(t *testing.T) {
	checkGolden(t, CtxDeadline, "llscvet.test/ctxdeadline/internal/service", 1)
}

func TestProgressGolden(t *testing.T) {
	checkGolden(t, Progress, "llscvet.test/progress/internal/core", 1)
}

func TestObsCounterGolden(t *testing.T) {
	checkGolden(t, ObsCounter, "llscvet.test/obscounter", 1)
}

// TestSuppressionDirectiveErrors checks that the directive scanner turns
// unusable suppressions into findings of their own: a directive with no
// clause, and a clause with an empty reason.
func TestSuppressionDirectiveErrors(t *testing.T) {
	loader := testLoader(t)
	pkgs, err := loader.Load("llscvet.test/suppress")
	if err != nil {
		t.Fatal(err)
	}
	// Any analyzer will do: the directive scan runs per package
	// regardless of which checks are selected.
	diags, err := Run(pkgs, []*Analyzer{NakedAtomic})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "malformed llsc:allow comment") {
		t.Errorf("first diagnostic = %q, want malformed-directive finding", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "missing a reason") {
		t.Errorf("second diagnostic = %q, want missing-reason finding", diags[1].Message)
	}
	for _, d := range diags {
		if d.Suppressed {
			t.Errorf("directive finding at %s must not be suppressible by itself", d.Pos)
		}
	}
}

// TestRunAuditedFlagsStaleClause pins the drift audit: the suppress
// package carries one well-formed //llsc:allow clause whose check runs
// and finds nothing there, so the audit must flag exactly that clause
// (and not the malformed ones, which are findings in their own right).
func TestRunAuditedFlagsStaleClause(t *testing.T) {
	loader := testLoader(t)
	pkgs, err := loader.Load("llscvet.test/suppress")
	if err != nil {
		t.Fatal(err)
	}
	_, unused, err := RunAudited(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(unused) != 1 {
		t.Fatalf("got %d unused suppressions, want 1: %v", len(unused), unused)
	}
	u := unused[0]
	if u.Check != "retrypolicy" || u.Reason != "bounded scan over a frozen snapshot" {
		t.Errorf("unused clause = %s(%s), want retrypolicy(bounded scan over a frozen snapshot)", u.Check, u.Reason)
	}
	if !strings.Contains(u.String(), "unused suppression") {
		t.Errorf("String() = %q, want it to name the clause as an unused suppression", u.String())
	}
}

// TestRunAuditedLiveClausesStayQuiet runs the audit over a golden
// package whose every clause suppresses a live finding: no drift.
func TestRunAuditedLiveClausesStayQuiet(t *testing.T) {
	loader := testLoader(t)
	pkgs, err := loader.Load("llscvet.test/reservedpair")
	if err != nil {
		t.Fatal(err)
	}
	_, unused, err := RunAudited(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(unused) != 0 {
		t.Errorf("got %d unused suppressions, want 0: %v", len(unused), unused)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v; want %d, nil", len(all), err, len(All()))
	}
	two, err := ByName("reservedpair, obscounter")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(reservedpair, obscounter) = %v, %v; want 2 analyzers", two, err)
	}
	if _, err := ByName("nosuchcheck"); err == nil {
		t.Fatal("ByName(nosuchcheck) succeeded, want error (llscvet exits 2 on it)")
	}
}
