package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// This file is a deliberately small, dependency-free stand-in for
// golang.org/x/tools/go/packages, which this repository does not vendor:
// `go list -deps -json` supplies the file sets and the import graph in
// dependency order, and go/parser + go/types do the rest. Dependencies are
// type-checked with IgnoreFuncBodies (their exported API is all the
// analyzers need); packages under analysis get full types.Info.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string // source import path -> resolved path (stdlib vendoring)
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *listPkgError
}

// listPkgError mirrors go list's load.PackageError JSON shape.
type listPkgError struct {
	Err string
}

// Package is one fully type-checked package under analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages. The zero value is ready to use;
// one Loader may serve several Load calls and shares its package cache
// between them.
type Loader struct {
	// Dir is the working directory for go list invocations — any directory
	// inside the target module. Empty means the current directory.
	Dir string

	// Overlay maps an import path to a directory whose non-test .go files
	// satisfy it instead of whatever go list would resolve. Analyzer tests
	// use it to substitute stub dependencies and to load golden packages
	// that live under testdata (which the go tool refuses to list).
	Overlay map[string]string

	fset *token.FileSet
	meta map[string]*listPkg
	pkgs map[string]*loaded
}

// loaded is one cache entry: the types are always present, the syntax and
// Info only when the package was checked as an analysis root.
type loaded struct {
	types *types.Package
	full  *Package
}

func (l *Loader) init() {
	if l.fset == nil {
		l.fset = token.NewFileSet()
		l.meta = make(map[string]*listPkg)
		l.pkgs = make(map[string]*loaded)
	}
}

// Load resolves patterns (go list package patterns, or keys of Overlay)
// and returns the matched packages fully type-checked, in dependency
// order. Any parse, type, or load error aborts the whole load: analyzers
// must never run over partial type information.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	l.init()
	var roots, listPats []string
	for _, p := range patterns {
		if _, ok := l.Overlay[p]; ok {
			roots = append(roots, p)
		} else {
			listPats = append(listPats, p)
		}
	}
	if len(listPats) > 0 {
		pkgs, err := l.goList(listPats...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if _, ok := l.meta[p.ImportPath]; !ok {
				l.meta[p.ImportPath] = p
			}
			if !p.DepOnly {
				if p.Error != nil {
					return nil, fmt.Errorf("analysis: loading %s: %s", p.ImportPath, p.Error.Err)
				}
				roots = append(roots, p.ImportPath)
			}
		}
	}
	seen := make(map[string]bool)
	out := make([]*Package, 0, len(roots))
	for _, path := range roots {
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.checkFull(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// goList runs `go list -e -deps -json` on the given patterns and decodes
// the JSON stream. CGO is disabled so every package resolves to its
// pure-Go file set, which go/types can check from source.
func (l *Loader) goList(patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,GoFiles,ImportMap,Standard,DepOnly,Incomplete,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ensureMeta makes go list metadata available for path (and, transitively,
// its dependencies). Overlay roots pull their real imports in through
// here, one batched go list call per unknown frontier.
func (l *Loader) ensureMeta(path string) (*listPkg, error) {
	if m, ok := l.meta[path]; ok {
		return m, nil
	}
	pkgs, err := l.goList(path)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if _, ok := l.meta[p.ImportPath]; !ok {
			l.meta[p.ImportPath] = p
		}
	}
	m, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("analysis: go list did not resolve %q", path)
	}
	return m, nil
}

// sourceFiles returns the compiled .go files for path: from the overlay
// directory when one is registered, otherwise from go list metadata. meta
// is nil for overlay packages.
func (l *Loader) sourceFiles(path string) (dir string, files []string, meta *listPkg, err error) {
	if dir, ok := l.Overlay[path]; ok {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return "", nil, nil, fmt.Errorf("analysis: overlay for %s: %v", path, err)
		}
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				files = append(files, name)
			}
		}
		sort.Strings(files)
		if len(files) == 0 {
			return "", nil, nil, fmt.Errorf("analysis: overlay dir %s for %s has no .go files", dir, path)
		}
		return dir, files, nil, nil
	}
	m, err := l.ensureMeta(path)
	if err != nil {
		return "", nil, nil, err
	}
	if m.Error != nil {
		return "", nil, nil, fmt.Errorf("analysis: loading %s: %s", path, m.Error.Err)
	}
	if len(m.GoFiles) == 0 {
		return "", nil, nil, fmt.Errorf("analysis: %s has no Go files (CGO-only or empty package)", path)
	}
	return m.Dir, m.GoFiles, m, nil
}

// importerFor builds the importer seen by one package under check: source
// import paths are first translated through the package's ImportMap (the
// standard library's vendored golang.org/x dependencies resolve this
// way), then loaded as dependencies.
func (l *Loader) importerFor(meta *listPkg) types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if meta != nil {
			if mapped, ok := meta.ImportMap[path]; ok {
				path = mapped
			}
		}
		return l.checkDep(path)
	})
}

// parse parses the package's files. Comments are kept only for full
// checks, where the suppression scanner and analyzers need them.
func (l *Loader) parse(dir string, files []string, comments bool) ([]*ast.File, error) {
	mode := parser.SkipObjectResolution
	if comments {
		mode |= parser.ParseComments
	}
	out := make([]*ast.File, 0, len(files))
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// importerFunc adapts a closure to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// checkDep type-checks path for import: declarations only, no function
// bodies, no Info. Cached.
func (l *Loader) checkDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if c, ok := l.pkgs[path]; ok {
		return c.types, nil
	}
	dir, files, meta, err := l.sourceFiles(path)
	if err != nil {
		return nil, err
	}
	syntax, err := l.parse(dir, files, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         l.importerFor(meta),
		IgnoreFuncBodies: true,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, syntax, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking dependency %s: %v", path, err)
	}
	l.pkgs[path] = &loaded{types: tpkg}
	return tpkg, nil
}

// checkFull type-checks path as an analysis root: comments retained, full
// types.Info recorded.
func (l *Loader) checkFull(path string) (*Package, error) {
	if c, ok := l.pkgs[path]; ok && c.full != nil {
		return c.full, nil
	}
	dir, files, meta, err := l.sourceFiles(path)
	if err != nil {
		return nil, err
	}
	syntax, err := l.parse(dir, files, true)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l.importerFor(meta),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: syntax, Types: tpkg, Info: info}
	l.pkgs[path] = &loaded{types: tpkg, full: pkg}
	return pkg, nil
}
