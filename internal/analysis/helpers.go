package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Analyzers match types by package-path suffix rather than by the literal
// module path so that analysistest stubs (loaded under synthetic import
// paths) and the real packages are treated identically.

// protocolPkgSuffixes are the packages bound to the machine.Word
// discipline: all shared state through the simulated machine, all retry
// loops through internal/contention. internal/machine is itself on the
// list so that nakedatomic audits the substrate implementations: the
// sim and native backends are the only code allowed to touch sync/atomic,
// and each such import must carry an //llsc:allow nakedatomic(...) clause
// documenting why.
var protocolPkgSuffixes = []string{
	"internal/core",
	"internal/structures",
	"internal/universal",
	"internal/stm",
	"internal/machine",
}

// isProtocolPkg reports whether path is one of the protocol packages.
func isProtocolPkg(path string) bool {
	for _, s := range protocolPkgSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// servicePkgSuffixes are the deadline-disciplined packages of the PR 9
// service layer: every retry loop that waits on contention must observe
// its context deadline, or the shedder's vitals report latency the
// caller has already given up on.
var servicePkgSuffixes = []string{
	"internal/service",
	"internal/resilience",
	"cmd/llscd",
}

// isServicePkg reports whether path is one of the service-layer packages.
func isServicePkg(path string) bool {
	for _, s := range servicePkgSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// pkgPathHasSuffix reports whether the package path equals suffix or ends
// with "/"+suffix.
func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == suffix || strings.HasSuffix(pkg.Path(), "/"+suffix)
}

// namedDecl unwraps pointers and returns the named type's name and
// declaring package, or ok=false for unnamed types.
func namedDecl(t types.Type) (name string, pkg *types.Package, ok bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed {
		return "", nil, false
	}
	return n.Obj().Name(), n.Obj().Pkg(), true
}

// methodCallee resolves a call expression to the method it invokes, or
// nil when the call is not a method call (or not resolved).
func methodCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return nil
	}
	return fn
}

// recvMatches reports whether fn's receiver is the named type typeName
// declared in a package whose path ends in pkgSuffix.
func recvMatches(fn *types.Func, pkgSuffix, typeName string) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	name, pkg, ok := namedDecl(recv.Type())
	return ok && name == typeName && pkgPathHasSuffix(pkg, pkgSuffix)
}

// recvInPkgSuffix reports whether fn's receiver type is declared in a
// package whose path ends in suffix, regardless of the type's name.
func recvInPkgSuffix(fn *types.Func, suffix string) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	_, pkg, ok := namedDecl(recv.Type())
	return ok && pkgPathHasSuffix(pkg, suffix)
}

// isProcMethod reports whether call invokes machine.Proc's method name.
func isProcMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := methodCallee(info, call)
	return fn != nil && fn.Name() == name && recvMatches(fn, "internal/machine", "Proc")
}

// exprKey renders an expression as a canonical identity key: identifiers
// resolve to their declaring object, selectors and constant indexes
// compose structurally. ok is false for expressions whose identity cannot
// be decided syntactically (calls, non-constant indexes); callers must
// treat two unkeyable expressions as possibly-distinct and stay quiet
// rather than guess.
func exprKey(info *types.Info, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("obj@%d", obj.Pos()), true
	case *ast.ParenExpr:
		return exprKey(info, e.X)
	case *ast.SelectorExpr:
		k, ok := exprKey(info, e.X)
		if !ok {
			return "", false
		}
		return k + "." + e.Sel.Name, true
	case *ast.IndexExpr:
		k, ok := exprKey(info, e.X)
		if !ok {
			return "", false
		}
		if tv, found := info.Types[e.Index]; found && tv.Value != nil {
			return k + "[" + tv.Value.String() + "]", true
		}
		return "", false
	case *ast.UnaryExpr:
		k, ok := exprKey(info, e.X)
		if !ok {
			return "", false
		}
		return e.Op.String() + k, true
	case *ast.StarExpr:
		k, ok := exprKey(info, e.X)
		if !ok {
			return "", false
		}
		return "*" + k, true
	}
	return "", false
}

// rootIdentObj returns the object of the leftmost identifier of e (the
// base of a selector/index chain), or nil.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcScope is one function body treated as an independent protocol
// scope: a declaration or a function literal. Reservations do not cross
// scope boundaries in the analysis (the machine would carry them, but an
// analyzer cannot see through arbitrary call graphs; helpers that receive
// a live reservation are the documented escape hatch).
type funcScope struct {
	name string
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
}

// funcScopes yields every function body in the file.
func funcScopes(f *ast.File) []funcScope {
	var scopes []funcScope
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				scopes = append(scopes, funcScope{name: n.Name.Name, node: n, body: n.Body})
			}
		case *ast.FuncLit:
			scopes = append(scopes, funcScope{name: "func literal", node: n, body: n.Body})
		}
		return true
	})
	return scopes
}

// isWordParam reports whether obj is a *machine.Word parameter of the
// scope — the signature of a helper that is handed an already-reserved
// word by its caller, the one indirection reservedpair tolerates.
func isWordParam(scope funcScope, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	name, pkg, named := namedDecl(v.Type())
	if !named || name != "Word" || !pkgPathHasSuffix(pkg, "internal/machine") {
		return false
	}
	var params *ast.FieldList
	switch n := scope.node.(type) {
	case *ast.FuncDecl:
		params = n.Type.Params
	case *ast.FuncLit:
		params = n.Type.Params
	}
	if params == nil {
		return false
	}
	return obj.Pos() >= params.Pos() && obj.Pos() <= params.End()
}
