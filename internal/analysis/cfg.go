package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// This file is the control-flow half of the analysis engine: an
// intraprocedural CFG over go/ast statements, built without any
// x/tools dependency. Basic blocks hold statement- and expression-level
// nodes in execution order; edges cover if/else, for and range loops
// (including the back-edge), switch/type-switch (with fallthrough),
// select, labeled break/continue, goto, return, and defer (deferred
// calls run on the exit block). The forward-dataflow solver in
// dataflow.go iterates this graph to a fixpoint; the protocol checks
// then replay each block's transfer function node by node to obtain the
// machine state in effect immediately before every operation.
//
// Granularity: a block's Nodes are whole statements, except that the
// controlling expression of a branch (if/for condition, switch tag) is
// appended to the block that evaluates it before the split, so facts
// established inside a condition — `if p.RLL(w) != old { return }` is
// the repository's idiom — flow into the correct arm. Function literals
// are opaque at this level: each literal body is its own funcScope with
// its own CFG.

// A Block is one basic block: nodes executed in order, then a jump to
// one of Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A CFG is the control-flow graph of one function body. Entry is
// Blocks[0]; Exit is the distinguished return-collector block, which
// also holds the deferred calls (they run after any return or
// fall-off-the-end path).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// String renders the graph topology for tests and debugging:
// "b0 -> [b1 b2]; b1 -> [b3]; ...".
func (g *CFG) String() string {
	var parts []string
	for _, b := range g.Blocks {
		succs := make([]string, len(b.Succs))
		for i, s := range b.Succs {
			succs[i] = fmt.Sprintf("b%d", s.Index)
		}
		sort.Strings(succs)
		parts = append(parts, fmt.Sprintf("b%d -> [%s]", b.Index, strings.Join(succs, " ")))
	}
	return strings.Join(parts, "; ")
}

// ReversePostorder returns the blocks in reverse postorder from Entry —
// the canonical iteration order for a forward dataflow pass. Blocks
// unreachable from Entry (dead code, the after-block of an infinite
// loop) are appended at the end so per-block state maps stay total.
func (g *CFG) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
		post = append(post, b)
	}
	visit(g.Entry)
	out := make([]*Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = &Block{} // indexed last, in finish
	b.cur = b.g.Entry
	b.labels = make(map[string]*Block)
	b.stmtList(body.List)
	return b.finish()
}

// branchTarget is one enclosing breakable/continuable construct.
type branchTarget struct {
	label string // of the enclosing LabeledStmt, or ""
	brk   *Block // break target (after-block); nil for none
	cont  *Block // continue target (post/head); nil for switch/select
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	g       *CFG
	cur     *Block // nil after a terminator (return/break/goto/...)
	targets []branchTarget
	labels  map[string]*Block
	gotos   []pendingGoto
	defers  []ast.Node // deferred calls, in source order
	// fallthroughTo is the next case body while building a switch case.
	fallthroughTo *Block
	// pendingLabel names the LabeledStmt wrapping the next loop/switch,
	// so `break L` / `continue L` resolve to the right target.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block; a nil current block means
// the statement is unreachable (code after return), which still gets a
// fresh block so goto labels inside it remain wirable.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// jumpTo ends the current block with an edge to target.
func (b *cfgBuilder) jumpTo(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = nil
}

// takeLabel consumes the pending label for the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue to its enclosing construct.
func (b *cfgBuilder) findTarget(label string, needCont bool) *branchTarget {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == "" || t.label == label {
			return t
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.buildIf(s)
	case *ast.ForStmt:
		b.buildFor(s)
	case *ast.RangeStmt:
		b.buildRange(s)
	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.buildCases(s.Body, nil)
	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.buildCases(s.Body, s.Assign)
	case *ast.SelectStmt:
		b.buildSelect(s)
	case *ast.LabeledStmt:
		b.buildLabeled(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.g.Exit)
	case *ast.BranchStmt:
		b.buildBranch(s)
	case *ast.DeferStmt:
		// Argument evaluation happens here; the call itself runs at
		// function exit, so it is replayed on the Exit block.
		b.add(s)
		b.defers = append(b.defers, s.Call)
	default:
		// Straight-line statements: expressions, assignments,
		// declarations, sends, go statements, inc/dec, empty.
		b.add(s)
	}
}

func (b *cfgBuilder) buildIf(s *ast.IfStmt) {
	b.add(s.Init)
	b.add(s.Cond)
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	cond := b.cur
	after := b.newBlock()
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.jumpTo(after)
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.jumpTo(after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) buildFor(s *ast.ForStmt) {
	label := b.takeLabel()
	b.add(s.Init)
	head := b.newBlock()
	b.jumpTo(head)
	b.cur = head
	b.add(s.Cond)
	head = b.cur // cond evaluation may not allocate, but stay safe

	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.targets = append(b.targets, branchTarget{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmtList(s.Body.List)
	b.jumpTo(cont)
	b.targets = b.targets[:len(b.targets)-1]
	if post != nil {
		b.cur = post
		b.add(s.Post)
		b.jumpTo(head)
	}
	b.cur = after
}

func (b *cfgBuilder) buildRange(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.jumpTo(head)
	// The RangeStmt node stands for the per-iteration work in the head:
	// evaluating X (once, in reality) and assigning Key/Value.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock()
	after := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)
	b.targets = append(b.targets, branchTarget{label: label, brk: after, cont: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.jumpTo(head)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

// buildCases handles switch and type-switch bodies: the dispatching
// block branches to every case (and to after when there is no default);
// fallthrough jumps to the next case body in source order.
func (b *cfgBuilder) buildCases(body *ast.BlockStmt, assign ast.Stmt) {
	label := b.takeLabel()
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	dispatch := b.cur
	after := b.newBlock()
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(dispatch, caseBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.targets = append(b.targets, branchTarget{label: label, brk: after})
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		if assign != nil {
			b.add(assign)
		}
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(clauses) {
			b.fallthroughTo = caseBlocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(cc.Body)
		b.jumpTo(after)
	}
	b.fallthroughTo = nil
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *cfgBuilder) buildSelect(s *ast.SelectStmt) {
	label := b.takeLabel()
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	dispatch := b.cur
	after := b.newBlock()
	b.targets = append(b.targets, branchTarget{label: label, brk: after})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock()
		b.edge(dispatch, cb)
		b.cur = cb
		b.add(cc.Comm)
		b.stmtList(cc.Body)
		b.jumpTo(after)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = after
}

func (b *cfgBuilder) buildLabeled(s *ast.LabeledStmt) {
	lb := b.newBlock()
	b.jumpTo(lb)
	b.cur = lb
	b.labels[s.Label.Name] = lb
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = s.Label.Name
	}
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *cfgBuilder) buildBranch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := b.findTarget(label, false); t != nil {
			b.jumpTo(t.brk)
			return
		}
	case "continue":
		if t := b.findTarget(label, true); t != nil {
			b.jumpTo(t.cont)
			return
		}
	case "goto":
		from := b.cur
		if from == nil {
			from = b.newBlock()
		}
		b.gotos = append(b.gotos, pendingGoto{from: from, label: label})
		b.cur = nil
		return
	case "fallthrough":
		if b.fallthroughTo != nil {
			b.jumpTo(b.fallthroughTo)
			return
		}
	}
	// Unresolvable branch (malformed code survived type-check only in
	// tests): terminate the block conservatively.
	b.cur = nil
}

func (b *cfgBuilder) finish() *CFG {
	b.jumpTo(b.g.Exit) // falling off the end reaches Exit
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		}
	}
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	// Deferred calls run after every path into Exit, in reverse
	// registration order (the approximation: each dynamic defer runs at
	// most once here, which is all a may-analysis needs).
	for i := len(b.defers) - 1; i >= 0; i-- {
		b.g.Exit.Nodes = append(b.g.Exit.Nodes, b.defers[i])
	}
	return b.g
}
