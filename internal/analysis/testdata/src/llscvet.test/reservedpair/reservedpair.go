// Golden cases for the reservedpair analyzer.
package reservedpair

import "llscvet.test/internal/machine"

// shared is deliberately not a parameter: an RSC on it with no preceding
// RLL is a protocol violation, not a continuation helper.
var shared *machine.Word

func noReservation(p *machine.Proc) {
	p.RSC(shared, 1) // want "RSC without a dominating RLL"
}

func displaced(p *machine.Proc, x, y *machine.Word) {
	p.RLL(x)
	p.RLL(y)
	p.RSC(x, 1) // want "reservation was displaced"
}

func wrongProc(p0, p1 *machine.Proc) {
	p0.RLL(shared)
	p1.RSC(shared, 1) // want "RSC without a dominating RLL"
}

func good(p *machine.Proc, x *machine.Word) {
	p.RLL(x)
	p.RSC(x, p.Load(shared)+1)
}

// continuationHelper performs no RLL of its own and stores through a
// *machine.Word parameter: the caller holds the reservation, so the
// analyzer stays quiet (the documented one-indirection tolerance).
func continuationHelper(p *machine.Proc, w *machine.Word) bool {
	return p.RSC(w, 2)
}

func suppressedCase(p *machine.Proc) {
	//llsc:allow reservedpair(golden suppression case)
	p.RSC(shared, 3)
}
