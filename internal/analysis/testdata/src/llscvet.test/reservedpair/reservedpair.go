// Golden cases for the reservedpair analyzer.
package reservedpair

import "llscvet.test/internal/machine"

// shared is deliberately not a parameter: an RSC on it with no preceding
// RLL is a protocol violation, not a continuation helper.
var shared *machine.Word

func noReservation(p *machine.Proc) {
	p.RSC(shared, 1) // want "RSC without a dominating RLL"
}

func displaced(p *machine.Proc, x, y *machine.Word) {
	p.RLL(x)
	p.RLL(y)
	p.RSC(x, 1) // want "reservation was displaced"
}

func wrongProc(p0, p1 *machine.Proc) {
	p0.RLL(shared)
	p1.RSC(shared, 1) // want "RSC without a dominating RLL"
}

func good(p *machine.Proc, x *machine.Word) {
	p.RLL(x)
	p.RSC(x, p.Load(shared)+1)
}

// continuationHelper performs no RLL of its own and stores through a
// *machine.Word parameter: the caller holds the reservation, so the
// analyzer stays quiet (the documented one-indirection tolerance).
func continuationHelper(p *machine.Proc, w *machine.Word) bool {
	return p.RSC(w, 2)
}

func suppressedCase(p *machine.Proc) {
	//llsc:allow reservedpair(golden suppression case)
	p.RSC(shared, 3)
}

// somePath is the path-sensitive case: the RLL happens on only one
// branch, so a path with no reservation reaches the RSC.
func somePath(p *machine.Proc, x *machine.Word, c bool) {
	if c {
		p.RLL(x)
	}
	p.RSC(x, 1) // want "RSC reachable on a path with no dominating RLL"
}

// backEdge re-enters the RSC over the loop back-edge after the first
// iteration already consumed the reservation.
func backEdge(p *machine.Proc, x *machine.Word) {
	p.RLL(x)
	for i := 0; i < 2; i++ {
		p.RSC(x, uint64(i)) // want "RSC reachable on a path with no dominating RLL"
	}
}

// earlyReturn leaves the window unconsumed on one path; only paths that
// actually reach the RSC need a dominating RLL.
func earlyReturn(p *machine.Proc, x *machine.Word, c bool) {
	p.RLL(x)
	if c {
		return
	}
	p.RSC(x, 1)
}

// retryShape is the canonical loop: every iteration re-reserves before
// its RSC, so the back-edge carries no stale state.
func retryShape(p *machine.Proc, x *machine.Word) {
	for {
		p.RLL(x)
		if p.RSC(x, 1) {
			return
		}
	}
}

// badHelperCall reaches continuationHelper's RSC with no reservation
// held: the interprocedural summary pins the violation to the call site.
func badHelperCall(p *machine.Proc, w *machine.Word) {
	continuationHelper(p, w) // want "RSC without a dominating RLL"
}

// goodHelperCall holds the reservation the helper consumes.
func goodHelperCall(p *machine.Proc, w *machine.Word) {
	p.RLL(w)
	continuationHelper(p, w)
}
