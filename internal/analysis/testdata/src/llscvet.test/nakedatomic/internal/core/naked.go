// Golden cases for the nakedatomic analyzer: this package's import path
// ends in internal/core, so it is a protocol package.
package core

import (
	"sync"
	"sync/atomic" // want "direct sync/atomic use in protocol package"
)

var cell atomic.Uint64

var mu sync.Mutex // want "sync.Mutex in protocol package"

//llsc:allow nakedatomic(golden suppression case)
var justified sync.RWMutex

func use() uint64 {
	mu.Lock()
	defer mu.Unlock()
	justified.RLock()
	defer justified.RUnlock()
	return cell.Load()
}
