package machine

// A substrate file that imports sync/atomic without an audit clause must
// still fire: the fence is what keeps the trusted base from widening
// silently.

import (
	"sync/atomic" // want "direct sync/atomic use in protocol package"
)

var leaked atomic.Int64

func bump() int64 { return leaked.Add(1) }
