// Golden cases for the nakedatomic analyzer over the substrate package
// itself: this package's import path ends in internal/machine, so it is
// fenced like the protocol packages. The suppressed import in this file
// models the real substrate files (machine.go, native.go), whose raw
// atomics are the audited trusted base.
package machine

import (
	"sync/atomic" //llsc:allow nakedatomic(golden suppression case: the substrate is built from raw atomics by definition)
)

// Word models a substrate word backed directly by a hardware atomic.
type Word struct {
	nat atomic.Uint64
}

// Load reads the word through the native backend.
func (w *Word) Load() uint64 { return w.nat.Load() }
