// Golden cases for the suppression-directive scanner itself: a directive
// with no clause, and a clause with no reason, are both findings.
package suppress

//llsc:allow this is not a clause
var malformed int

//llsc:allow reservedpair()
var missingReason int

//llsc:allow retrypolicy(bounded scan over a frozen snapshot)
var wellFormed int
