// Package nakedclean is not a protocol package, so its direct
// sync/atomic use is out of the nakedatomic analyzer's scope: zero
// findings expected.
package nakedclean

import "sync/atomic"

var counter atomic.Uint64

func bump() uint64 { return counter.Add(1) }
