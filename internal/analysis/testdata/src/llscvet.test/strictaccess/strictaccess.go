// Golden cases for the strictaccess analyzer.
package strictaccess

import "llscvet.test/internal/machine"

func intervening(p *machine.Proc, x, y *machine.Word) {
	p.RLL(x)
	p.Load(y) // want "Load between RLL"
	p.RSC(x, 1)
}

func interveningStore(p *machine.Proc, x, y *machine.Word) {
	p.RLL(x)
	p.Store(y, 2) // want "Store between RLL"
	p.RSC(x, 1)
}

// interference is another processor's access inside the window: ordinary
// contention the algorithms tolerate, not a protocol violation.
func interference(p0, p1 *machine.Proc, x, y *machine.Word) {
	p0.RLL(x)
	p1.Store(y, 2)
	p0.RSC(x, 1)
}

// outsideWindow keeps the RLL..RSC span empty; accesses before and after
// are fine.
func outsideWindow(p *machine.Proc, x, y *machine.Word) {
	p.Load(y)
	p.RLL(x)
	p.RSC(x, 1)
	p.Store(y, 2)
}

func suppressedCase(p *machine.Proc, x, y *machine.Word) {
	p.RLL(x)
	//llsc:allow strictaccess(golden suppression case)
	p.CAS(y, 0, 1)
	p.RSC(x, 1)
}

func helperLoad(p *machine.Proc, y *machine.Word) uint64 {
	return p.Load(y)
}

// throughHelper hides the access one call down, but the helper summary
// sees the Load and the call passes the reserving processor.
func throughHelper(p *machine.Proc, x, y *machine.Word) {
	p.RLL(x)
	helperLoad(p, y) // want "passes the reserving processor"
	p.RSC(x, 1)
}

// otherProcHelper passes a processor with no live reservation: the
// helper's access is ordinary interference.
func otherProcHelper(p0, p1 *machine.Proc, x, y *machine.Word) {
	p0.RLL(x)
	helperLoad(p1, y)
	p0.RSC(x, 1)
}

// restart keeps an access in the span, but a fresh RLL re-establishes
// the reservation before the consuming RSC, so the access is harmless.
func restart(p *machine.Proc, x, y *machine.Word) {
	p.RLL(x)
	p.Load(y)
	p.RLL(x)
	p.RSC(x, 1)
}
