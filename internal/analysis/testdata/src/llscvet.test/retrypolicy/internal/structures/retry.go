// Golden cases for the retrypolicy analyzer: this package's import path
// ends in internal/structures, so it is a protocol package.
package structures

import (
	"context"

	"llscvet.test/internal/contention"
	"llscvet.test/internal/core"
	"llscvet.test/internal/resilience"
)

func bare(w *core.Word) {
	for { // want "SC/CAS retry loop without consulting the contention policy"
		v, k := w.LL()
		if w.SC(k, v+1) {
			return
		}
	}
}

func waitsInBody(w *core.Word, cm *contention.Policy) {
	var wt contention.Waiter
	for {
		v, k := w.LL()
		if w.SC(k, v+1) {
			return
		}
		wt.Wait(cm)
	}
}

// waitsInPost is the repository's idiom: the wait lives in the for
// statement's post clause, so it runs only on the retry path.
func waitsInPost(w *core.Word, cm *contention.Policy) {
	var wt contention.Waiter
	for ; ; wt.Wait(cm) {
		v, k := w.LL()
		if w.SC(k, v+1) {
			return
		}
	}
}

func suppressedCase(w *core.Word) {
	//llsc:allow retrypolicy(golden suppression case)
	for {
		v, k := w.LL()
		if w.SC(k, v+1) {
			return
		}
	}
}

// doIdiom consults the policy through resilience.Retrier.Do: the Do
// closure idiom wraps every attempt in the contention layer's wait, so
// the loop needs no inline Waiter of its own.
func doIdiom(ctx context.Context, r *resilience.Retrier, w *core.Word) {
	for {
		if r.Do(ctx, 0, func() error { return nil }) != nil {
			return
		}
		v, k := w.LL()
		if w.SC(k, v+1) {
			return
		}
	}
}

// literalScope exercises the false-positive guard for helper
// indirection: the SC lives in a nested function literal, which is its
// own retry context, so the enclosing loop is not a retry loop.
func literalScope(w *core.Word) {
	for i := 0; i < 3; i++ {
		attempt := func() bool {
			v, k := w.LL()
			return w.SC(k, v+1)
		}
		if attempt() {
			return
		}
	}
}
