// Golden cases for the obscounter analyzer. Registered names come from
// the registry generated out of the real internal/obs taxonomy.
package obscounter

import "llscvet.test/internal/obs"

// record mirrors the JSON-record convention: a field named Counters of
// type map[string]uint64 holds counter values by canonical name.
type record struct {
	Counters map[string]uint64
}

func reads(r record, s obs.Snapshot) uint64 {
	good := r.Counters["sc_fail_interference"]
	bad := r.Counters["sc_fail_interferance"] // want "unknown obs counter"
	viaMap := s.Map()["rll"]
	viaMapBad := s.NonZero()["rl"] // want "unknown obs counter"

	counters := map[string]uint64{}
	localBad := counters["not_a_counter"] // want "unknown obs counter"

	// A map[string]uint64 under any other name is not a counters map:
	// arbitrary string keys are fine.
	other := map[string]uint64{}
	unrelated := other["whatever"]

	//llsc:allow obscounter(golden suppression case)
	justified := r.Counters["bespoke_counter"]

	return good + bad + viaMap + viaMapBad + localBad + unrelated + justified
}
