// Golden cases for the progress analyzer: this package's import path
// ends in internal/core, so it is a protocol package.
package core

import "llscvet.test/internal/machine"

var ready bool

// pureSpin never touches the machine: a livelock outside the
// lock-freedom proofs, invisible to the contention layer.
func pureSpin() {
	for { // want "livelock"
		if ready {
			return
		}
	}
}

func scAttempt(p *machine.Proc, w *machine.Word) {
	for {
		if p.RLL(w) != 0 {
			return
		}
		if p.RSC(w, 1) {
			return
		}
	}
}

// channelLoop blocks on channel operations: the scheduler's problem,
// not a livelock.
func channelLoop(ch chan int) {
	for {
		select {
		case <-ch:
			return
		default:
		}
	}
}

// helpingCall attempts through a same-package helper; the one-level
// summary sees the CAS inside.
func helpingCall(p *machine.Proc, w *machine.Word) {
	for {
		if help(p, w) {
			return
		}
	}
}

func help(p *machine.Proc, w *machine.Word) bool { return p.CAS(w, 0, 1) }

// bounded loops are exempt: their condition bounds the spin.
func bounded() {
	for i := 0; i < 8; i++ {
		_ = i
	}
}

func suppressedCase() {
	//llsc:allow progress(golden suppression case)
	for {
		if ready {
			return
		}
	}
}
