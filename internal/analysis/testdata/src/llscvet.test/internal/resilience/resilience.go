// Package resilience is the analysistest stub for
// repro/internal/resilience (matched by package-path suffix). Retrier.Do
// is the closure idiom the retrypolicy and ctxdeadline analyzers accept
// as policy- and deadline-consulting: the real implementation wraps
// every attempt in contention.Waiter.Wait and checks ctx.Err().
package resilience

import "context"

// Retrier drives retries under a policy, budget, and deadline.
type Retrier struct{ _ int }

// Do runs op until it succeeds, waiting on contention and checking the
// context between attempts.
func (r *Retrier) Do(ctx context.Context, proc int, op func() error) error { return nil }
