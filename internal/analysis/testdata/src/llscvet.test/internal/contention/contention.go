// Package contention is the analysistest stub for
// repro/internal/contention (matched by package-path suffix).
package contention

// Policy is the contention-management policy handle.
type Policy struct{ _ int }

// Waiter is the per-call-site wait state.
type Waiter struct{ _ int }

// Wait is what the retrypolicy analyzer looks for on SC/CAS retry paths.
func (w *Waiter) Wait(p *Policy) {}
