// Package obs is the analysistest stub for repro/internal/obs: the
// Snapshot accessors whose results the obscounter analyzer treats as
// counter-name → value maps.
package obs

// Snapshot is a point-in-time counter snapshot.
type Snapshot struct{ _ int }

func (s Snapshot) Map() map[string]uint64     { return nil }
func (s Snapshot) NonZero() map[string]uint64 { return nil }
