// Package machine is the analysistest stub for repro/internal/machine:
// just enough API surface for the protocol analyzers, which match types
// by package-path suffix ("internal/machine") and so treat this stub and
// the real package identically.
package machine

// Word is one simulated shared-memory cell.
type Word struct{ _ uint64 }

// Proc is one simulated processor.
type Proc struct{ _ int }

func (p *Proc) RLL(w *Word) uint64            { return 0 }
func (p *Proc) RSC(w *Word, v uint64) bool    { return false }
func (p *Proc) Load(w *Word) uint64           { return 0 }
func (p *Proc) Store(w *Word, v uint64)       {}
func (p *Proc) CAS(w *Word, o, n uint64) bool { return false }
