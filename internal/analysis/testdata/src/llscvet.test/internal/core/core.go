// Package core is the analysistest stub for repro/internal/core: an
// LL/SC variable whose SC method the retrypolicy analyzer treats as a
// retry primitive (receiver declared in a package with suffix
// "internal/core").
package core

// Keep is the opaque LL receipt.
type Keep struct{ _ uint64 }

// Word is one LL/SC variable.
type Word struct{ _ uint64 }

func (w *Word) LL() (uint64, Keep)       { return 0, Keep{} }
func (w *Word) SC(k Keep, v uint64) bool { return false }
