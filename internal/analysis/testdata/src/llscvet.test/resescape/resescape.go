// Golden cases for the resescape analyzer.
package resescape

import "llscvet.test/internal/machine"

// deferred models a struct that stores callbacks for later invocation —
// possibly on another goroutine.
type deferred struct {
	fn func()
}

func worker(p *machine.Proc, w *machine.Word) {}

// goroutineEscape hands the reserving processor (and the reserved word)
// to a new goroutine mid-window: the RSC may then execute on a different
// goroutine than the RLL, which the substrate cannot detect.
func goroutineEscape(p *machine.Proc, w *machine.Word) {
	p.RLL(w)
	go worker(p, w) // want "escapes into a goroutine"
	p.RSC(w, 1)
}

func channelEscape(p *machine.Proc, w *machine.Word, ch chan *machine.Word) {
	p.RLL(w)
	ch <- w // want "escapes via channel send"
	p.RSC(w, 1)
}

func closureEscape(p *machine.Proc, w *machine.Word, d *deferred) {
	p.RLL(w)
	d.fn = func() { p.RSC(w, 1) } // want "closure stored to a field"
}

// afterWindow hands the processor and word around only after the RSC
// consumed the reservation: nothing live escapes.
func afterWindow(p *machine.Proc, w *machine.Word, ch chan *machine.Word) {
	p.RLL(w)
	p.RSC(w, 1)
	ch <- w
	go worker(p, w)
}

// unrelated sends a word that is neither reserved nor the reserving
// processor while a window is open: ordinary data movement, not an
// escape.
func unrelated(p *machine.Proc, w, v *machine.Word, ch chan *machine.Word) {
	p.RLL(w)
	ch <- v
	p.RSC(w, 1)
}

func suppressedCase(p *machine.Proc, w *machine.Word, ch chan *machine.Word) {
	p.RLL(w)
	//llsc:allow resescape(golden suppression case)
	ch <- w
	p.RSC(w, 1)
}
