// Golden cases for the ctxdeadline analyzer: this package's import path
// ends in internal/service, so it is a service-layer package.
package service

import (
	"context"

	"llscvet.test/internal/contention"
	"llscvet.test/internal/resilience"
)

func attempt() bool { return true }

// bareWait retries through the contention layer but never looks at any
// deadline: the loop outlives its caller's patience invisibly.
func bareWait(w *contention.Waiter, pol *contention.Policy) {
	for { // want "without consulting the context deadline"
		if attempt() {
			return
		}
		w.Wait(pol)
	}
}

func checksDeadline(ctx context.Context, w *contention.Waiter, pol *contention.Policy) {
	for {
		if ctx.Err() != nil {
			return
		}
		if attempt() {
			return
		}
		w.Wait(pol)
	}
}

// doIdiom needs no separate deadline check: resilience.Retrier.Do
// consults ctx.Err() before every attempt internally.
func doIdiom(ctx context.Context, r *resilience.Retrier) {
	for {
		if r.Do(ctx, 0, func() error { return nil }) == nil {
			return
		}
	}
}

// helperWait waits one call down; the one-level call-graph summary
// attributes backoff's wait to the loop, which still lacks a deadline
// check.
func helperWait(w *contention.Waiter, pol *contention.Policy) {
	for { // want "without consulting the context deadline"
		if attempt() {
			return
		}
		backoff(w, pol)
	}
}

func backoff(w *contention.Waiter, pol *contention.Policy) { w.Wait(pol) }

// helperChecks both waits and consults the deadline one call down: the
// summary carries both facts, so the loop is clean.
func helperChecks(ctx context.Context, w *contention.Waiter, pol *contention.Policy) {
	for {
		if attempt() {
			return
		}
		waitUnless(ctx, w, pol)
	}
}

func waitUnless(ctx context.Context, w *contention.Waiter, pol *contention.Policy) {
	if ctx.Err() != nil {
		return
	}
	w.Wait(pol)
}

// noWait loops without touching the contention layer: out of scope for
// this check regardless of deadlines.
func noWait() {
	for {
		if attempt() {
			return
		}
	}
}

func suppressedCase(w *contention.Waiter, pol *contention.Policy) {
	//llsc:allow ctxdeadline(golden suppression case)
	for {
		if attempt() {
			return
		}
		w.Wait(pol)
	}
}
