package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// NakedAtomic keeps shared state in the protocol packages on the
// machine.Word path. Those packages carry the repository's verification
// story: every shared-memory operation through machine.Word is visible to
// the fault injector (internal/fault), the trace recorder
// (internal/trace), the deterministic schedulers (internal/sched), and
// the chaos soak harness (internal/stress). A raw sync/atomic operation
// or a sync.Mutex in internal/core, internal/structures,
// internal/universal, or internal/stm silently bypasses all four layers:
// the code still works, but the adversarial test matrix no longer
// exercises it.
//
// The production-path implementations that intentionally run on native
// hardware atomics (the paper's point is that the constructions compile
// down to real CAS) carry //llsc:allow nakedatomic(...) suppressions whose
// reasons document exactly that trade.
//
// internal/machine is also fenced: the substrates (simulated cells, the
// native sync/atomic backend) are by definition built from raw atomics,
// so every sync/atomic import there must carry an audited //llsc:allow
// clause. That keeps the substrate the one place raw atomics may live and
// makes any new unsuppressed import a vet failure rather than a silent
// widening of the trusted base.
var NakedAtomic = &Analyzer{
	Name: "nakedatomic",
	Doc: "forbid direct sync/atomic and sync.Mutex/RWMutex use in the protocol packages\n" +
		"(internal/core, internal/structures, internal/universal, internal/stm, and the\n" +
		"internal/machine substrate itself): shared state must go through machine.Word or\n" +
		"fault injection, tracing, deterministic scheduling, and the soak harness are\n" +
		"silently bypassed; substrate-internal atomics need audited //llsc:allow clauses.",
	Run: runNakedAtomic,
}

func runNakedAtomic(pass *Pass) error {
	if !isProtocolPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync/atomic" {
				pass.Reportf(imp.Pos(),
					"direct sync/atomic use in protocol package %s: route shared state through machine.Word so fault injection, tracing, and the soak harness see it",
					pass.Pkg.Name())
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tn, ok := pass.Info.Uses[sel.Sel].(*types.TypeName)
			if !ok || tn.Pkg() == nil || tn.Pkg().Path() != "sync" {
				return true
			}
			switch tn.Name() {
			case "Mutex", "RWMutex":
				pass.Reportf(sel.Pos(),
					"sync.%s in protocol package %s: the constructions are non-blocking by design; protect shared state with machine.Word (or justify with //llsc:allow)",
					tn.Name(), pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
