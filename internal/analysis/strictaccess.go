package analysis

import (
	"go/ast"
	"go/token"
)

// StrictAccess enforces the R4000 restriction that the LL/SC algorithms
// in this repository are written against: a processor must not perform
// any other shared-memory access between its RLL and the matching RSC.
// On real R4000-class hardware an intervening access can evict the
// reserved cache line and clear the LLBit; the simulator models it as
// machine.Config.Strict, which clears the reservation on any Load, Store,
// or CAS by the reserving processor — but only at runtime, and only on
// executions that a test happens to drive. This analyzer makes the window
// discipline a compile-time property.
//
// The window is flow-sensitive: an access is inside it when the
// reservation lattice proves the accessing processor may hold a live
// reservation at the access and an RSC by that processor is still
// reachable ahead in the CFG. Accesses by *other* processors inside the
// window are fine (that is ordinary interference, which the algorithms
// tolerate). The window also extends through same-package helper calls:
// a call that passes the reserving processor to a helper whose summary
// performs a Load/Store/CAS clears the reservation just as surely as an
// inline access.
var StrictAccess = &Analyzer{
	Name: "strictaccess",
	Doc: "check that no Load/Store/CAS by the reserving processor occurs between RLL and RSC,\n" +
		"directly or through a same-package helper call. Under machine.Config.Strict (the R4000\n" +
		"model) such an access clears the reservation and the RSC always fails; algorithms from\n" +
		"the paper keep the window empty.",
	Run: runStrictAccess,
}

func runStrictAccess(pass *Pass) error {
	sums := pass.summaries()
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			checkStrictAccess(pass, sums, scope)
		}
	}
	return nil
}

// rscSite is one RLL or RSC occurrence (direct or continuation-helper
// call) used for the "RSC still ahead" half of the window test.
type rscSite struct {
	kind   memOpKind // opRLL or opRSC
	pos    token.Pos
	proc   string
	procOK bool
}

func checkStrictAccess(pass *Pass, sums *pkgSummaries, scope funcScope) {
	// First pass over the solved CFG: index every RSC site per block.
	rscs := make(map[*Block][]rscSite)
	w := &resWalker{
		pass: pass,
		sums: sums,
		onEvent: func(_ resState, ev resEvent, b *Block) {
			op := ev.op
			if op == nil {
				if hop, ok := ev.helperWordOp(); ok {
					op = hop
				} else {
					return
				}
			}
			if op.kind == opRSC || op.kind == opRLL {
				rscs[b] = append(rscs[b], rscSite{kind: op.kind, pos: op.pos, proc: op.proc, procOK: op.procOK})
			}
		},
	}
	w.walk(scope)

	// Second pass: at every access inside a live window with an RSC
	// ahead, report.
	w.onEvent = func(st resState, ev resEvent, b *Block) {
		switch {
		case ev.op != nil:
			switch ev.op.kind {
			case opLoad, opStore, opCAS:
			default:
				return
			}
			if !ev.op.procOK {
				return // can't attribute the access to a processor
			}
			rll, live := liveReservation(st, ev.op.proc)
			if !live {
				return
			}
			rsc, ahead := rscAhead(rscs, b, ev.op.pos, ev.op.proc)
			if !ahead {
				return
			}
			pass.Reportf(ev.op.pos,
				"%s between RLL (line %d) and RSC (line %d) by the reserving processor clears the reservation under machine.Config.Strict (R4000 rule): move it before the RLL or after the RSC",
				ev.op.kind, pass.Fset.Position(rll).Line, pass.Fset.Position(rsc).Line)
		case ev.helper != nil && ev.helper.cont == nil:
			kind, accesses := ev.helper.performsAccess()
			if !accesses {
				return
			}
			proc, ok := callPassesReservingProc(pass, ev.call, st)
			if !ok {
				return
			}
			rll, _ := liveReservation(st, proc)
			rsc, ahead := rscAhead(rscs, b, ev.call.Pos(), proc)
			if !ahead {
				return
			}
			pass.Reportf(ev.call.Pos(),
				"call to %s (which performs a %s) between RLL (line %d) and RSC (line %d) passes the reserving processor: the helper's access clears the reservation under machine.Config.Strict (R4000 rule)",
				ev.helper.name, kind, pass.Fset.Position(rll).Line, pass.Fset.Position(rsc).Line)
		}
	}
	w.walk(scope)
}

// liveReservation reports whether the keyed processor may hold a live
// reservation in st, returning the establishing RLL's position.
func liveReservation(st resState, proc string) (token.Pos, bool) {
	facts, ok := st[proc]
	if !ok {
		return token.NoPos, false
	}
	var best token.Pos
	for k, pos := range facts {
		if k != resNone && pos > best {
			best = pos
		}
	}
	return best, best != token.NoPos
}

// rscAhead reports whether an RSC attributable to proc is reachable from
// position pos in block b with no intervening RLL re-establishing the
// reservation — only then does the access at pos actually break the
// window. It returns the consuming site's position. The scan is
// conservative toward silence: an RLL whose processor cannot be keyed is
// treated as re-establishing.
func rscAhead(rscs map[*Block][]rscSite, b *Block, pos token.Pos, proc string) (token.Pos, bool) {
	// scan returns the first decisive site after `after`: an RSC that may
	// be proc's (found), or an RLL that may re-establish (blocked).
	scan := func(blk *Block, after token.Pos) (token.Pos, bool, bool) {
		for _, s := range rscs[blk] {
			if s.pos <= after {
				continue
			}
			mayBeProc := !s.procOK || s.proc == proc
			if !mayBeProc {
				continue
			}
			if s.kind == opRSC {
				return s.pos, true, true
			}
			return token.NoPos, false, true // RLL: window restarts here
		}
		return token.NoPos, false, false
	}
	if p, found, decided := scan(b, pos); decided {
		return p, found
	}
	seen := map[*Block]bool{b: true}
	queue := append([]*Block(nil), b.Succs...)
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		if p, found, decided := scan(blk, token.NoPos); decided {
			if found {
				return p, true
			}
			continue // path re-reserves before consuming: stop here
		}
		queue = append(queue, blk.Succs...)
	}
	return token.NoPos, false
}

// callPassesReservingProc reports whether the call hands a processor
// that holds a live reservation to the callee — as an argument or as the
// method receiver — returning that processor's key.
func callPassesReservingProc(pass *Pass, call *ast.CallExpr, st resState) (string, bool) {
	exprs := append([]ast.Expr(nil), call.Args...)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		exprs = append(exprs, sel.X)
	}
	for _, e := range exprs {
		k, ok := exprKey(pass.Info, e)
		if !ok {
			continue
		}
		if _, live := liveReservation(st, k); live {
			return k, true
		}
	}
	return "", false
}
