package analysis

// StrictAccess enforces the R4000 restriction that the LL/SC algorithms
// in this repository are written against: a processor must not perform
// any other shared-memory access between its RLL and the matching RSC.
// On real R4000-class hardware an intervening access can evict the
// reserved cache line and clear the LLBit; the simulator models it as
// machine.Config.Strict, which clears the reservation on any Load, Store,
// or CAS by the reserving processor — but only at runtime, and only on
// executions that a test happens to drive. This analyzer makes the window
// discipline a compile-time property.
//
// The window is the source-order span from an RLL to the nearest
// following RSC by the same processor on the same word, within one
// function body. Accesses by *other* processors inside the window are
// fine (that is ordinary interference, which the algorithms tolerate);
// only the reserving processor's own accesses are flagged.
var StrictAccess = &Analyzer{
	Name: "strictaccess",
	Doc: "check that no Load/Store/CAS by the reserving processor occurs between RLL and RSC.\n" +
		"Under machine.Config.Strict (the R4000 model) such an access clears the reservation\n" +
		"and the RSC always fails; algorithms from the paper keep the window empty.",
	Run: runStrictAccess,
}

func runStrictAccess(pass *Pass) error {
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			checkStrictAccess(pass, scope)
		}
	}
	return nil
}

func checkStrictAccess(pass *Pass, scope funcScope) {
	ops := collectMemOps(pass, scope)
	for i, op := range ops {
		if op.kind != opRSC {
			continue
		}
		last := -1
		for j := i - 1; j >= 0; j-- {
			if ops[j].kind == opRLL && sameProc(ops[j], op) {
				last = j
				break
			}
		}
		if last < 0 {
			continue // reservedpair's finding, not ours
		}
		rll := ops[last]
		if op.wordOK && rll.wordOK && op.wordK != rll.wordK {
			continue // displaced reservation: also reservedpair's finding
		}
		for k := last + 1; k < i; k++ {
			between := ops[k]
			switch between.kind {
			case opLoad, opStore, opCAS:
				if !between.procOK || !rll.procOK || between.proc != rll.proc {
					continue // another processor's access: plain interference
				}
				pass.Reportf(between.pos,
					"%s between RLL (line %d) and RSC (line %d) by the reserving processor clears the reservation under machine.Config.Strict (R4000 rule): move it before the RLL or after the RSC",
					between.kind, pass.Fset.Position(rll.pos).Line, pass.Fset.Position(op.pos).Line)
			}
		}
	}
}
