package analysis

import (
	"go/ast"
)

// RetryPolicy enforces the PR 3 convention that every SC/CAS retry loop
// in the protocol packages consults the contention-management layer: a
// loop that retries a store-conditional (or an algorithm-level CAS) on
// failure must contain a contention.Waiter.Wait call, so that the
// adaptive policies — and the backoff_waits observability counter — see
// every contention event. A hot loop that spins bare reintroduces exactly
// the contention meltdown the paper's Figure 5 retry-structure discussion
// warns about, and does it invisibly: the policy layer reports nothing
// for iterations it never saw.
//
// The resilience.Retrier.Do closure idiom from PR 9 wraps every attempt
// in Waiter.Wait internally, so a Do call anywhere on the retry path
// counts as consulting the policy — service-layer loops built on Do need
// no per-call-site suppression. Loops whose retries are intentionally
// policy-free (e.g. bounded helper scans) carry
// //llsc:allow retrypolicy(reason) on the for statement.
var RetryPolicy = &Analyzer{
	Name: "retrypolicy",
	Doc: "check that SC/CAS retry loops in the protocol and service packages consult the\n" +
		"contention policy: a for loop that directly retries RSC/CAS (machine level) or\n" +
		"SC/CompareAndSwap (algorithm level) must contain a contention.Waiter.Wait or\n" +
		"resilience.Retrier.Do call, or an explicit //llsc:allow retrypolicy(reason)\n" +
		"suppression.",
	Run: runRetryPolicy,
}

// retryMethodNames are the primitive operations whose in-loop retry
// constitutes a contention event. The receiver must be declared in one of
// the LL/SC packages (or be machine.Proc itself) so that unrelated
// methods that happen to share a name stay out of scope.
var retryMethodNames = map[string]bool{
	"SC":             true,
	"CompareAndSwap": true,
	"RSC":            true,
	"CAS":            true,
}

// retryRecvSuffixes are the packages whose types' SC/CAS-shaped methods
// count as retry primitives.
var retryRecvSuffixes = []string{
	"internal/machine",
	"internal/core",
	"internal/structures",
	"internal/universal",
	"internal/stm",
}

func runRetryPolicy(pass *Pass) error {
	if !isProtocolPkg(pass.Pkg.Path()) && !isServicePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			// The wait may live in the loop body or in the for statement's
			// clauses — `for ; ; w.Wait(...)` is the repository's idiom for
			// wait-on-retry-only loops.
			var clauses []ast.Node
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
				for _, c := range []ast.Node{loop.Init, loop.Cond, loop.Post} {
					if c != nil {
						clauses = append(clauses, c)
					}
				}
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !loopRetriesPrimitive(pass, body) {
				return true
			}
			if loopConsultsWaiter(pass, append(clauses, body)...) {
				return true
			}
			pass.Reportf(n.Pos(),
				"SC/CAS retry loop without consulting the contention policy: add a contention.Waiter.Wait call on the retry path (docs/CONTENTION.md) or suppress with //llsc:allow retrypolicy(reason)")
			return true
		})
	}
	return nil
}

// loopRetriesPrimitive reports whether the loop body directly (not inside
// a nested loop or function literal, which form their own retry contexts)
// calls a retry primitive.
func loopRetriesPrimitive(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false // separate retry context
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := methodCallee(pass.Info, call)
		if fn == nil || !retryMethodNames[fn.Name()] {
			return true
		}
		for _, suffix := range retryRecvSuffixes {
			if recvInPkgSuffix(fn, suffix) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// loopConsultsWaiter reports whether any of the nodes contains a call to
// contention.Waiter.Wait or WaitTimed, or to resilience.Retrier.Do
// (which waits internally on every attempt), anywhere — nested blocks
// and loops included: a wait taken on any retry path services the
// enclosing loop; WaitTimed is the traced variant used by
// span-instrumented loops.
func loopConsultsWaiter(pass *Pass, nodes ...ast.Node) bool {
	found := false
	for _, node := range nodes {
		ast.Inspect(node, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isWaiterCall(pass.Info, call) || isRetrierDo(pass.Info, call) {
				found = true
				return false
			}
			return true
		})
	}
	return found
}
