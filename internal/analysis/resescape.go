package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
)

// ResEscape enforces that a live reservation stays on the goroutine that
// established it. machine.Proc reservations model the R4000 LLBit: a
// per-processor register with no cross-processor visibility. If code
// holding a reservation hands the reserving processor — or the reserved
// word — to another goroutine (a `go` statement, a channel send, or a
// closure stored to a field for later invocation), the RSC may execute
// on a different goroutine than the RLL. The native substrate cannot
// detect this: the one-reservation-per-processor contract is broken
// silently and the SC fails (or worse, succeeds against a stale
// reservation under the sim's relaxed mode). The analyzer flags the
// escape point while the window is open; handing processors around
// *outside* a reservation window is ordinary and stays quiet.
var ResEscape = &Analyzer{
	Name: "resescape",
	Doc: "check that a live reservation does not escape its goroutine: between RLL and RSC,\n" +
		"the reserving processor and the reserved word must not be captured by a go statement,\n" +
		"sent on a channel, or closed over in a closure stored to a field. A cross-goroutine\n" +
		"RSC breaks the one-reservation-per-processor contract invisibly.",
	Run: runResEscape,
}

func runResEscape(pass *Pass) error {
	sums := pass.summaries()
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			checkResEscape(pass, sums, scope)
		}
	}
	return nil
}

// objKeyRE extracts the root object tokens from an expression key:
// "obj@123.field" names the object declared at position 123.
var objKeyRE = regexp.MustCompile(`obj@\d+`)

// liveRoots collects the root object tokens of every keyed processor
// holding a live reservation and of every word it has reserved, along
// with the establishing RLL position (for the report).
func liveRoots(st resState) (map[string]token.Pos, bool) {
	roots := make(map[string]token.Pos)
	for proc, facts := range st {
		if proc == procUnknown {
			continue
		}
		for word, pos := range facts {
			if word == resNone {
				continue
			}
			for _, r := range objKeyRE.FindAllString(proc, -1) {
				roots[r] = pos
			}
			if word != resUnknownWord {
				for _, r := range objKeyRE.FindAllString(word, -1) {
					roots[r] = pos
				}
			}
		}
	}
	return roots, len(roots) > 0
}

// capturedRoot reports whether the subtree references any of the root
// objects, returning the match's RLL position.
func capturedRoot(pass *Pass, n ast.Node, roots map[string]token.Pos) (token.Pos, bool) {
	var rll token.Pos
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if pos, hit := roots[fmt.Sprintf("obj@%d", obj.Pos())]; hit {
			rll, found = pos, true
			return false
		}
		return true
	})
	return rll, found
}

func checkResEscape(pass *Pass, sums *pkgSummaries, scope funcScope) {
	w := &resWalker{
		pass: pass,
		sums: sums,
		onNode: func(st resState, n ast.Node, _ *Block) {
			roots, any := liveRoots(st)
			if !any {
				return
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				if rll, hit := capturedRoot(pass, n.Call, roots); hit {
					pass.Reportf(n.Pos(),
						"reservation established by the RLL at line %d escapes into a goroutine: an RSC on another goroutine breaks the one-reservation-per-processor contract (complete the RLL/RSC pair first)",
						pass.Fset.Position(rll).Line)
				}
			case *ast.SendStmt:
				if rll, hit := capturedRoot(pass, n.Value, roots); hit {
					pass.Reportf(n.Pos(),
						"reservation established by the RLL at line %d escapes via channel send: the receiver may RSC on another goroutine, breaking the one-reservation-per-processor contract",
						pass.Fset.Position(rll).Line)
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if _, ok := ast.Unparen(lhs).(*ast.SelectorExpr); !ok {
						continue
					}
					if i >= len(n.Rhs) {
						break
					}
					lit, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit)
					if !ok {
						continue
					}
					if rll, hit := capturedRoot(pass, lit.Body, roots); hit {
						pass.Reportf(n.Pos(),
							"reservation established by the RLL at line %d escapes into a closure stored to a field: a deferred RSC may run on another goroutine, breaking the one-reservation-per-processor contract",
							pass.Fset.Position(rll).Line)
					}
				}
			}
		},
	}
	w.walk(scope)
}
