// Package analysis statically enforces the LL/SC usage protocol and the
// repository's instrumentation conventions. Moir's constructions are
// correct only under a strict discipline — at most one reservation per
// processor, SC only after a matching LL on the same variable, and (on
// R4000-style machines) no shared-memory access between RLL and RSC — yet
// until this package the discipline was checked only by runtime failure
// under the fault injector. The eight analyzers here turn it into a
// compile-time gate:
//
//	reservedpair  RSC must be dominated by an RLL on the same word along
//	              every path; a later RLL displaces the reservation (one
//	              per processor).
//	strictaccess  no Load/Store/CAS by the reserving processor between its
//	              RLL and RSC (the machine.Config.Strict R4000 rule).
//	resescape     a live reservation must not escape its goroutine: no
//	              goroutine spawn, channel send, or closure stored to a
//	              field may capture the reserving processor mid-window.
//	progress      unbounded retry loops in protocol packages must contain
//	              an SC/CAS attempt or helping call (no pure spins).
//	nakedatomic   protocol packages must route shared state through
//	              machine.Word, not raw sync/atomic or sync.Mutex.
//	retrypolicy   SC/CAS retry loops in protocol packages must consult the
//	              internal/contention policy (a Waiter.Wait call).
//	ctxdeadline   retry loops in the service layer that wait on contention
//	              or Retrier.Do must consult the context deadline.
//	obscounter    string-literal counter names must be in the registry
//	              generated from the internal/obs taxonomy.
//
// The flow-sensitive checks run on a shared engine: a basic-block CFG
// over go/ast (cfg.go), a forward dataflow framework with a reservation
// lattice (dataflow.go), and one-level call-graph summaries so facts
// cross same-package function calls (summary.go).
//
// Findings can be suppressed with a comment on (or immediately above) the
// offending line:
//
//	//llsc:allow <check>(<reason>)
//
// The reason is mandatory; an empty one is itself a finding, and a clause
// that no longer suppresses any live finding is reported by the
// suppression-drift audit (RunAudited, llscvet -audit-suppressions). See
// docs/STATIC_ANALYSIS.md for each check's paper justification and the
// known approximations.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Reportf, analysistest-style golden files) but
// is implemented entirely on the standard library so the repository stays
// dependency-free.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check.
type Analyzer struct {
	// Name identifies the check in findings, -checks selections, and
	// //llsc:allow suppressions.
	Name string

	// Doc is a one-paragraph description shown by llscvet -list.
	Doc string

	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass connects one analyzer to one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(token.Pos, string)
	sums   *pkgSummaries // shared engine state, built on first use
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Diagnostic is one finding, in the shape serialized into the llsc-vet/v1
// report.
type Diagnostic struct {
	Analyzer   string `json:"analyzer"`
	Pos        string `json:"pos"` // file:line:col
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"suppress_reason,omitempty"`

	position token.Position
}

// Position returns the finding's resolved source position.
func (d Diagnostic) Position() token.Position { return d.position }

// String renders the finding in go vet style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ReservedPair, StrictAccess, ResEscape, Progress,
		NakedAtomic, RetryPolicy, CtxDeadline, ObsCounter,
	}
}

// ByName resolves a comma-separated check selection against the suite.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" || names == "all" {
		return All(), nil
	}
	index := make(map[string]*Analyzer)
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := index[n]
		if !ok {
			known := make([]string, 0, len(index))
			for _, a := range All() {
				known = append(known, a.Name)
			}
			return nil, fmt.Errorf("unknown check %q (want one of %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// allowRE matches one `check(reason)` clause after the llsc:allow marker;
// several clauses may share a comment.
var allowRE = regexp.MustCompile(`([a-z][a-z0-9]*)\(([^)]*)\)`)

// suppression is one parsed //llsc:allow clause. used flips when the
// clause suppresses a live finding; the drift audit reports clauses that
// stay unused.
type suppression struct {
	check  string
	reason string
	pos    token.Position
	used   bool
}

// suppressionIndex maps file:line to the clauses that govern that line. A
// clause governs its own line and the line below it, so both trailing
// comments and comments on the line above the construct work.
type suppressionIndex map[string][]*suppression

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// scanSuppressions builds the index for one package, returning both the
// line index and the flat clause list (for the drift audit), and reports
// malformed clauses (missing reason) as findings in their own right: a
// suppression that does not say why is documentation debt, not an
// exemption.
func scanSuppressions(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) (suppressionIndex, []*suppression) {
	idx := make(suppressionIndex)
	var all []*suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Only directive-style comments count: //llsc:allow with no
				// space, like //go:generate. Prose mentions are ignored.
				text, ok := strings.CutPrefix(c.Text, "//llsc:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				clauses := allowRE.FindAllStringSubmatch(text, -1)
				if len(clauses) == 0 {
					report(Diagnostic{
						Analyzer: "llscvet",
						Pos:      pos.String(),
						Message:  "malformed llsc:allow comment: want //llsc:allow <check>(<reason>)",
						position: pos,
					})
					continue
				}
				for _, m := range clauses {
					s := &suppression{check: m[1], reason: strings.TrimSpace(m[2]), pos: pos}
					if s.reason == "" {
						report(Diagnostic{
							Analyzer: s.check,
							Pos:      pos.String(),
							Message:  fmt.Sprintf("suppression llsc:allow %s() is missing a reason; justify the exemption", s.check),
							position: pos,
						})
						continue
					}
					all = append(all, s)
					for _, key := range []string{
						lineKey(pos),
						fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1),
					} {
						idx[key] = append(idx[key], s)
					}
				}
			}
		}
	}
	return idx, all
}

// lookup returns the reason suppressing check at pos, if any, marking the
// winning clause as used.
func (idx suppressionIndex) lookup(pos token.Position, check string) (string, bool) {
	for _, s := range idx[lineKey(pos)] {
		if s.check == check {
			s.used = true
			return s.reason, true
		}
	}
	return "", false
}

// UnusedSuppression is one //llsc:allow clause that no longer suppresses
// any live finding — either the code it excused changed, or the clause
// names a check that does not exist.
type UnusedSuppression struct {
	Check  string `json:"check"`
	Reason string `json:"reason"`
	Pos    string `json:"pos"` // file:line:col

	position token.Position
}

// Position returns the clause's resolved source position.
func (u UnusedSuppression) Position() token.Position { return u.position }

// String renders the stale clause in go vet style.
func (u UnusedSuppression) String() string {
	return fmt.Sprintf("%s: unused suppression llsc:allow %s(%s): no live finding is suppressed here; remove the clause",
		u.Pos, u.Check, u.Reason)
}

// Run applies the analyzers to every package and returns all diagnostics,
// suppressed ones included (the report separates them), ordered by
// position. A non-nil error means the analysis itself failed and no
// verdict was reached.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAudited(pkgs, analyzers)
	return diags, err
}

// RunAudited is Run plus the suppression-drift audit: the second result
// lists every //llsc:allow clause that suppressed nothing. A clause is
// only auditable when its check actually ran (or names no known check at
// all — a typo is always dead), so the audit is meaningful only with the
// full suite; cmd/llscvet enforces -checks=all for -audit-suppressions.
func RunAudited(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []UnusedSuppression, error) {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}

	var diags []Diagnostic
	var unused []UnusedSuppression
	for _, pkg := range pkgs {
		idx, clauses := scanSuppressions(pkg.Fset, pkg.Files, func(d Diagnostic) {
			diags = append(diags, d)
		})
		// One engine state per package, shared by every analyzer pass:
		// CFGs, summaries, and event streams are analyzer-independent.
		sums := computeSummaries(&Pass{
			Fset:  pkg.Fset,
			Files: pkg.Files,
			Pkg:   pkg.Types,
			Info:  pkg.Info,
		})
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				sums:     sums,
			}
			pass.report = func(pos token.Pos, msg string) {
				position := pkg.Fset.Position(pos)
				d := Diagnostic{
					Analyzer: a.Name,
					Pos:      position.String(),
					Message:  msg,
					position: position,
				}
				if reason, ok := idx.lookup(position, a.Name); ok {
					d.Suppressed = true
					d.Reason = reason
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
		for _, s := range clauses {
			if s.used || (known[s.check] && !ran[s.check]) {
				continue
			}
			unused = append(unused, UnusedSuppression{
				Check:    s.check,
				Reason:   s.reason,
				Pos:      s.pos.String(),
				position: s.pos,
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := diags[i].position, diags[j].position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	sort.Slice(unused, func(i, j int) bool {
		pi, pj := unused[i].position, unused[j].position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return unused[i].Check < unused[j].Check
	})
	return diags, unused, nil
}
