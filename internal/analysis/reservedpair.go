package analysis

import (
	"go/ast"
	"go/token"
)

// memOpKind classifies the machine.Proc shared-memory operations the
// protocol analyzers track.
type memOpKind int

const (
	opRLL memOpKind = iota
	opRSC
	opLoad
	opStore
	opCAS
)

var memOpNames = map[string]memOpKind{
	"RLL":   opRLL,
	"RSC":   opRSC,
	"Load":  opLoad,
	"Store": opStore,
	"CAS":   opCAS,
}

func (k memOpKind) String() string {
	for n, kk := range memOpNames {
		if kk == k {
			return n
		}
	}
	return "?"
}

// memOp is one machine.Proc operation call site.
type memOp struct {
	kind memOpKind
	pos  token.Pos

	proc   string // identity key of the receiver expression
	procOK bool

	word   ast.Expr // first argument: the target word
	wordK  string
	wordOK bool
}

// collectMemOps gathers scope's machine.Proc operations in source order,
// excluding nested function literals (each literal is its own scope).
func collectMemOps(pass *Pass, scope funcScope) []memOp {
	var ops []memOp
	ast.Inspect(scope.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != scope.node {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := methodCallee(pass.Info, call)
		if fn == nil || !recvMatches(fn, "internal/machine", "Proc") {
			return true
		}
		kind, tracked := memOpNames[fn.Name()]
		if !tracked || len(call.Args) < 1 {
			return true
		}
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		op := memOp{kind: kind, pos: call.Pos(), word: call.Args[0]}
		op.proc, op.procOK = exprKey(pass.Info, sel.X)
		op.wordK, op.wordOK = exprKey(pass.Info, call.Args[0])
		ops = append(ops, op)
		return true
	})
	return ops
}

// sameProc reports whether two operations are executed by the same
// processor expression, as far as the analysis can tell. Unkeyable
// receivers compare as possibly-equal (the analyzers stay quiet rather
// than guess in strictaccess, and pair conservatively in reservedpair).
func sameProc(a, b memOp) bool {
	if !a.procOK || !b.procOK {
		return true
	}
	return a.proc == b.proc
}

// ReservedPair enforces the reservation half of the usage protocol
// (Moir 1997 §2): every RSC must be dominated by an RLL on the same word
// by the same processor, and no later RLL may have displaced the
// reservation — a processor holds at most one (the R4000 LLBit).
//
// The check is intraprocedural and uses source order within a function
// body as its dominance approximation, which is exact for the paper's
// tight RLL/RSC pairs. One indirection is tolerated: a function that
// performs no RLL of its own and whose RSC targets a *machine.Word
// parameter is treated as a continuation helper whose caller holds the
// reservation; such helpers are checked at their call sites by
// inspection, or suppressed explicitly.
var ReservedPair = &Analyzer{
	Name: "reservedpair",
	Doc: "check that every RSC is dominated by an RLL on the same word (one reservation per processor).\n" +
		"An RSC with no RLL before it in the same function, or with a later RLL on a different\n" +
		"word in between (which displaces the single per-processor reservation), always fails at\n" +
		"runtime; the fault injector only finds these paths if a test happens to execute them.",
	Run: runReservedPair,
}

func runReservedPair(pass *Pass) error {
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			checkReservedPair(pass, scope)
		}
	}
	return nil
}

func checkReservedPair(pass *Pass, scope funcScope) {
	ops := collectMemOps(pass, scope)
	hasRLL := false
	for _, op := range ops {
		if op.kind == opRLL {
			hasRLL = true
			break
		}
	}
	for i, op := range ops {
		if op.kind != opRSC {
			continue
		}
		// The nearest preceding RLL by the same processor holds the live
		// reservation at this point (a processor has exactly one LLBit).
		last := -1
		for j := i - 1; j >= 0; j-- {
			if ops[j].kind == opRLL && sameProc(ops[j], op) {
				last = j
				break
			}
		}
		if last < 0 {
			if !hasRLL && isWordParam(scope, rootIdentObj(pass.Info, op.word)) {
				// Continuation helper: the word (and its reservation)
				// came from the caller.
				continue
			}
			pass.Reportf(op.pos,
				"RSC without a dominating RLL in %s: the store-conditional can never succeed (reservation protocol, Moir §2)",
				scope.name)
			continue
		}
		rll := ops[last]
		if op.wordOK && rll.wordOK && op.wordK != rll.wordK {
			pass.Reportf(op.pos,
				"RSC on a word whose reservation was displaced: the nearest RLL (line %d) targets a different word, and a processor holds only one reservation",
				pass.Fset.Position(rll.pos).Line)
		}
	}
}
