package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// memOpKind classifies the machine.Proc shared-memory operations the
// protocol analyzers track.
type memOpKind int

const (
	opRLL memOpKind = iota
	opRSC
	opLoad
	opStore
	opCAS
)

var memOpNames = map[string]memOpKind{
	"RLL":   opRLL,
	"RSC":   opRSC,
	"Load":  opLoad,
	"Store": opStore,
	"CAS":   opCAS,
}

func (k memOpKind) String() string {
	for n, kk := range memOpNames {
		if kk == k {
			return n
		}
	}
	return "?"
}

// memOp is one machine.Proc operation call site.
type memOp struct {
	kind memOpKind
	pos  token.Pos

	recv   ast.Expr // receiver expression: the processor
	proc   string   // identity key of the receiver expression
	procOK bool

	word   ast.Expr // first argument: the target word
	wordK  string
	wordOK bool
}

// classifyMemOp recognizes a machine.Proc operation call site.
func classifyMemOp(info *types.Info, call *ast.CallExpr) (memOp, bool) {
	fn := methodCallee(info, call)
	if fn == nil || !recvMatches(fn, "internal/machine", "Proc") {
		return memOp{}, false
	}
	kind, tracked := memOpNames[fn.Name()]
	if !tracked || len(call.Args) < 1 {
		return memOp{}, false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	op := memOp{kind: kind, pos: call.Pos(), recv: sel.X, word: call.Args[0]}
	op.proc, op.procOK = exprKey(info, sel.X)
	op.wordK, op.wordOK = exprKey(info, call.Args[0])
	return op, true
}

// collectMemOps gathers scope's machine.Proc operations in source order,
// excluding nested function literals (each literal is its own scope).
func collectMemOps(pass *Pass, scope funcScope) []memOp {
	var ops []memOp
	ast.Inspect(scope.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != scope.node {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := classifyMemOp(pass.Info, call); ok {
			ops = append(ops, op)
		}
		return true
	})
	return ops
}

// sameProc reports whether two operations are executed by the same
// processor expression, as far as the analysis can tell. Unkeyable
// receivers compare as possibly-equal (the analyzers stay quiet rather
// than guess in strictaccess, and pair conservatively in reservedpair).
func sameProc(a, b memOp) bool {
	if !a.procOK || !b.procOK {
		return true
	}
	return a.proc == b.proc
}

// ReservedPair enforces the reservation half of the usage protocol
// (Moir 1997 §2): every RSC must be dominated by an RLL on the same word
// by the same processor, and no later RLL may have displaced the
// reservation — a processor holds at most one (the R4000 LLBit).
//
// The check is path-sensitive: the reservation lattice (dataflow.go) is
// solved over the function's CFG, so early returns, branches that skip
// the RLL, and loop back-edges that re-execute an RSC after its
// reservation was consumed are all visible. An RSC consumes the
// reservation whether or not the store succeeds (machine.Proc.RSC clears
// it unconditionally, as the R4000 does), so a second RSC without an
// intervening RLL is flagged on the back-edge path.
//
// Continuation helpers — functions with no RLL of their own whose RSC
// targets a *machine.Word parameter — are no longer silently tolerated:
// the helper's entry state is seeded with the caller-held reservation
// (entrySeed), and every call site of such a helper is treated as an RSC
// performed on the caller's behalf, requiring a live reservation on the
// word passed in.
var ReservedPair = &Analyzer{
	Name: "reservedpair",
	Doc: "check that every RSC is dominated by an RLL on the same word along every path\n" +
		"(one reservation per processor). An RSC reachable on a path with no RLL, or whose\n" +
		"reservation a later RLL on a different word displaced, always fails at runtime; the\n" +
		"fault injector only finds these paths if a test happens to execute them. Calls to\n" +
		"continuation helpers (no own RLL, RSC on a *machine.Word parameter) are checked as\n" +
		"RSCs at the call site.",
	Run: runReservedPair,
}

func runReservedPair(pass *Pass) error {
	sums := pass.summaries()
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			scope := scope
			w := &resWalker{
				pass: pass,
				sums: sums,
				onEvent: func(st resState, ev resEvent, _ *Block) {
					op := ev.op
					if op == nil {
						hop, ok := ev.helperWordOp()
						if !ok {
							return
						}
						op = hop
					}
					if op.kind != opRSC {
						return
					}
					checkRSCState(pass, scope, st, op)
				},
			}
			w.walk(scope)
		}
	}
	return nil
}

// checkRSCState inspects the reservation facts in force immediately
// before one RSC (or continuation-helper call) and reports the protocol
// violations the state proves.
func checkRSCState(pass *Pass, scope funcScope, st resState, op *memOp) {
	facts := factsFor(st, op)
	_, hasNone := facts[resNone]
	words := reservedWords(facts)

	if !op.wordOK {
		// Unkeyable target word: only a definitely-empty reservation
		// state is safe to flag.
		if hasNone && len(words) == 0 {
			pass.Reportf(op.pos,
				"RSC without a dominating RLL in %s: the store-conditional can never succeed (reservation protocol, Moir §2)",
				scope.name)
		}
		return
	}

	_, matched := words[op.wordK]
	if _, unk := words[resUnknownWord]; unk {
		matched = true // an unkeyable RLL target may be this word
	}
	others := make([]token.Pos, 0, len(words))
	for k, pos := range words {
		if k != op.wordK && k != resUnknownWord {
			others = append(others, pos)
		}
	}

	switch {
	case matched && !hasNone:
		// Every path reaches this RSC holding a reservation that may be
		// on this word: protocol satisfied (as far as keys can tell).
	case matched && hasNone:
		pass.Reportf(op.pos,
			"RSC reachable on a path with no dominating RLL in %s: the store-conditional fails on that path (reservation protocol, Moir §2)",
			scope.name)
	case len(others) > 0:
		latest := others[0]
		for _, p := range others[1:] {
			if p > latest {
				latest = p
			}
		}
		pass.Reportf(op.pos,
			"RSC on a word whose reservation was displaced: the RLL at line %d reserved a different word, and a processor holds only one reservation",
			pass.Fset.Position(latest).Line)
	default:
		pass.Reportf(op.pos,
			"RSC without a dominating RLL in %s: the store-conditional can never succeed (reservation protocol, Moir §2)",
			scope.name)
	}
}
