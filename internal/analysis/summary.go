package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the interprocedural half of the analysis engine: a
// one-level call-graph summary pass over one package. Each function
// declaration gets a conservative "may" summary of the facts the checks
// care about — which machine.Proc operations it can perform, whether it
// touches sync/atomic or calls into protocol-package methods, whether
// it consults the contention policy or a context deadline — folded one
// level across same-package direct calls. Deeper recursion is
// deliberately out of scope (the summaries would stop being readable as
// specifications); docs/STATIC_ANALYSIS.md lists the limit.
//
// The special summary is the continuation helper: a function that
// performs an RSC on a *machine.Word parameter and no RLL of its own
// consumes a reservation its caller holds. PR 5's analyzers tolerated
// such helpers by staying quiet; with summaries the tolerance becomes a
// contract that is enforced at every call site — the caller must hold a
// live reservation on the word it passes, exactly as if it executed the
// RSC itself.

// contInfo identifies a continuation helper's parameters: flattened
// indexes of the processor and reserved-word arguments (-1 when the
// processor is not a parameter, e.g. a method receiver).
type contInfo struct {
	procParam int
	wordParam int
}

// funcSummary is one function's folded facts.
type funcSummary struct {
	name string
	decl *ast.FuncDecl

	ops        map[memOpKind]bool // machine.Proc operations it may perform
	atomic     bool               // may call into sync/atomic
	protoCall  bool               // may call a protocol-package method
	waits      bool               // may consult contention.Waiter / Retrier.Do
	ctxConsult bool               // may consult ctx.Done/Err/Deadline

	cont *contInfo // non-nil: continuation helper
}

// performsAccess reports whether the summary includes a plain shared
// access (Load/Store/CAS) — the operations strictaccess forbids inside
// a reservation window.
func (s *funcSummary) performsAccess() (memOpKind, bool) {
	for _, k := range []memOpKind{opLoad, opStore, opCAS} {
		if s.ops[k] {
			return k, true
		}
	}
	return 0, false
}

// machineProgress reports whether the summary includes anything the
// progress check accepts as an attempt: a machine.Proc op, a raw atomic
// op, or a call into a protocol-package method.
func (s *funcSummary) machineProgress() bool {
	return len(s.ops) > 0 || s.atomic || s.protoCall
}

// resEvent is one state-relevant occurrence inside a CFG node: a
// machine.Proc operation, or a call to a summarized same-package
// function.
type resEvent struct {
	op     *memOp        // non-nil for machine.Proc operations
	call   *ast.CallExpr // the call expression (set for both kinds)
	helper *funcSummary  // non-nil for same-package calls with a summary

	pass *Pass
}

// helperProcKey returns the expression key of the processor argument
// handed to a continuation helper.
func (ev resEvent) helperProcKey() (string, bool) {
	if ev.helper == nil || ev.helper.cont == nil {
		return "", false
	}
	i := ev.helper.cont.procParam
	if i < 0 || i >= len(ev.call.Args) {
		return "", false
	}
	return exprKey(ev.pass.Info, ev.call.Args[i])
}

// helperWordOp synthesizes the RSC-shaped memOp a continuation-helper
// call performs on its caller's behalf, so the reservation checks can
// treat the call site exactly like an RSC.
func (ev resEvent) helperWordOp() (*memOp, bool) {
	if ev.helper == nil || ev.helper.cont == nil {
		return nil, false
	}
	i := ev.helper.cont.wordParam
	if i < 0 || i >= len(ev.call.Args) {
		return nil, false
	}
	op := &memOp{kind: opRSC, pos: ev.call.Pos(), word: ev.call.Args[i]}
	op.wordK, op.wordOK = exprKey(ev.pass.Info, ev.call.Args[i])
	op.proc, op.procOK = ev.helperProcKey()
	return op, true
}

// pkgSummaries carries the per-package engine state shared by every
// analyzer pass over that package: function summaries, CFGs, and the
// per-node event streams (cached because the solver replays them on
// every fixpoint iteration).
type pkgSummaries struct {
	funcs      map[*types.Func]*funcSummary
	cfgs       map[ast.Node]*CFG
	nodeEvents map[ast.Node][]resEvent
}

// summaries returns (building on first use) the package engine state.
func (p *Pass) summaries() *pkgSummaries {
	if p.sums == nil {
		p.sums = computeSummaries(p)
	}
	return p.sums
}

// cfg returns the (cached) control-flow graph of one function scope.
func (s *pkgSummaries) cfg(scope funcScope) *CFG {
	if g, ok := s.cfgs[scope.node]; ok {
		return g
	}
	g := buildCFG(scope.body)
	s.cfgs[scope.node] = g
	return g
}

// directFacts is the pre-fold view of one declaration, kept only while
// building the package summaries.
type directFacts struct {
	sum     *funcSummary
	callees []*types.Func
}

func computeSummaries(pass *Pass) *pkgSummaries {
	s := &pkgSummaries{
		funcs:      make(map[*types.Func]*funcSummary),
		cfgs:       make(map[ast.Node]*CFG),
		nodeEvents: make(map[ast.Node][]resEvent),
	}
	var facts []*directFacts
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			df := scanDecl(pass, decl)
			s.funcs[obj] = df.sum
			facts = append(facts, df)
		}
	}
	// Fold one level: a function inherits the direct facts of the
	// same-package functions it calls directly. Snapshot the direct
	// facts first so the fold is exactly one level deep regardless of
	// declaration order.
	type snapshot struct {
		ops                                  map[memOpKind]bool
		atomic, protoCall, waits, ctxConsult bool
	}
	snap := make(map[*types.Func]snapshot, len(s.funcs))
	for obj, sum := range s.funcs {
		ops := make(map[memOpKind]bool, len(sum.ops))
		for k := range sum.ops {
			ops[k] = true
		}
		snap[obj] = snapshot{ops, sum.atomic, sum.protoCall, sum.waits, sum.ctxConsult}
	}
	for _, df := range facts {
		for _, callee := range df.callees {
			sn, ok := snap[callee]
			if !ok {
				continue
			}
			for k := range sn.ops {
				df.sum.ops[k] = true
			}
			df.sum.atomic = df.sum.atomic || sn.atomic
			df.sum.protoCall = df.sum.protoCall || sn.protoCall
			df.sum.waits = df.sum.waits || sn.waits
			df.sum.ctxConsult = df.sum.ctxConsult || sn.ctxConsult
		}
	}
	return s
}

// scanDecl collects one declaration's direct facts.
func scanDecl(pass *Pass, decl *ast.FuncDecl) *directFacts {
	sum := &funcSummary{name: decl.Name.Name, decl: decl, ops: make(map[memOpKind]bool)}
	df := &directFacts{sum: sum}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := classifyMemOp(pass.Info, call); ok {
			sum.ops[op.kind] = true
			return true
		}
		if isAtomicCall(pass.Info, call) {
			sum.atomic = true
		}
		if isWaiterCall(pass.Info, call) {
			sum.waits = true
		}
		if isRetrierDo(pass.Info, call) {
			// Do waits on contention AND checks ctx.Err() every attempt.
			sum.waits = true
			sum.ctxConsult = true
		}
		if isCtxConsult(pass.Info, call) {
			sum.ctxConsult = true
		}
		if fn := protocolMethodCallee(pass.Info, call); fn != nil {
			sum.protoCall = true
		}
		if callee := staticCallee(pass.Info, call); callee != nil && callee.Pkg() == pass.Pkg {
			df.callees = append(df.callees, callee)
		}
		return true
	})
	// Continuation-helper detection uses the same-scope op stream the
	// PR 5 checks used: nested literals are their own scopes.
	scope := funcScope{name: decl.Name.Name, node: decl, body: decl.Body}
	ops := collectMemOps(pass, scope)
	hasRLL := false
	for _, op := range ops {
		if op.kind == opRLL {
			hasRLL = true
		}
	}
	if !hasRLL {
		for i := range ops {
			op := &ops[i]
			if op.kind != opRSC {
				continue
			}
			wordObj := rootIdentObj(pass.Info, op.word)
			if !isWordParam(scope, wordObj) {
				continue
			}
			ci := &contInfo{procParam: -1, wordParam: paramIndex(pass, decl, wordObj)}
			if procObj := rootIdentObj(pass.Info, op.recv); procObj != nil {
				ci.procParam = paramIndex(pass, decl, procObj)
			}
			if ci.wordParam >= 0 {
				sum.cont = ci
				break
			}
		}
	}
	return df
}

// paramIndex returns the flattened parameter index of obj in decl, or
// -1 when obj is not a parameter of decl.
func paramIndex(pass *Pass, decl *ast.FuncDecl, obj types.Object) int {
	if obj == nil || decl.Type.Params == nil {
		return -1
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if pass.Info.Defs[name] == obj {
				return i
			}
			i++
		}
	}
	return -1
}

// entrySeed computes the reservation state a scope starts with: empty
// for ordinary functions, and — for continuation helpers, declaration
// or literal — the caller-held reservation on each *machine.Word
// parameter that an own-RLL-free RSC targets.
func (s *pkgSummaries) entrySeed(pass *Pass, scope funcScope) resState {
	ops := collectMemOps(pass, scope)
	for _, op := range ops {
		if op.kind == opRLL {
			return nil // establishes its own reservations; no seed
		}
	}
	seed := make(resState)
	for _, op := range ops {
		if op.kind != opRSC || !op.wordOK {
			continue
		}
		if !isWordParam(scope, rootIdentObj(pass.Info, op.word)) {
			continue
		}
		seed[procKeyOf(&op)] = resFacts{op.wordK: scope.body.Pos()}
	}
	if len(seed) == 0 {
		return nil
	}
	return seed
}

// events extracts (and caches) the state-relevant occurrences inside
// one CFG node, in preorder, with nested function literals excluded —
// each literal is its own scope with its own CFG and events.
func (s *pkgSummaries) events(pass *Pass, n ast.Node) []resEvent {
	if evs, ok := s.nodeEvents[n]; ok {
		return evs
	}
	var evs []resEvent
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := classifyMemOp(pass.Info, call); ok {
			opCopy := op
			evs = append(evs, resEvent{op: &opCopy, call: call, pass: pass})
			return true
		}
		if callee := staticCallee(pass.Info, call); callee != nil {
			if sum, ok := s.funcs[callee]; ok {
				evs = append(evs, resEvent{call: call, helper: sum, pass: pass})
			}
		}
		return true
	})
	s.nodeEvents[n] = evs
	return evs
}

// staticCallee resolves a call to the *types.Func it statically
// invokes: a plain function, a package-qualified function, or a method.
// Interface dispatch and function values return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// protocolMethodCallee returns the method a call invokes when its
// receiver type is declared in a protocol package, else nil.
func protocolMethodCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := methodCallee(info, call)
	if fn == nil {
		return nil
	}
	for _, suffix := range protocolPkgSuffixes {
		if recvInPkgSuffix(fn, suffix) {
			return fn
		}
	}
	return nil
}

// isAtomicCall reports whether call is a direct sync/atomic package
// call or a method on a sync/atomic type (atomic.Uint64 and friends).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if pn, ok := info.Uses[x].(*types.PkgName); ok {
			return pn.Imported().Path() == "sync/atomic"
		}
	}
	if fn := methodCallee(info, call); fn != nil {
		recv := fn.Type().(*types.Signature).Recv()
		if _, pkg, ok := namedDecl(recv.Type()); ok && pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	return false
}

// isWaiterCall reports whether call consults the contention policy:
// contention.Waiter.Wait or WaitTimed.
func isWaiterCall(info *types.Info, call *ast.CallExpr) bool {
	fn := methodCallee(info, call)
	return fn != nil && (fn.Name() == "Wait" || fn.Name() == "WaitTimed") &&
		recvMatches(fn, "internal/contention", "Waiter")
}

// isRetrierDo reports whether call is resilience.Retrier.Do — a retry
// loop that consults both the contention policy and the context
// deadline internally, so call sites inherit both properties.
func isRetrierDo(info *types.Info, call *ast.CallExpr) bool {
	fn := methodCallee(info, call)
	return fn != nil && fn.Name() == "Do" && recvMatches(fn, "internal/resilience", "Retrier")
}

// isCtxConsult reports whether call consults a context deadline:
// Done/Err/Deadline on a context.Context value.
func isCtxConsult(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Done", "Err", "Deadline":
	default:
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	name, pkg, ok := namedDecl(tv.Type)
	return ok && name == "Context" && pkg != nil && pkg.Path() == "context"
}
