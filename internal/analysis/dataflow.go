package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

// This file is the dataflow half of the analysis engine: a small
// forward "may" framework over the CFG in cfg.go, and the one lattice
// the protocol checks share — the per-processor reservation state of
// Moir's usage discipline. A state maps each processor expression to
// the set of reservation facts that can hold on some path reaching a
// program point: "no reservation", or "reserved word w (established by
// the RLL at pos)". Transfer functions interpret machine.Proc calls and
// one-level summaries of same-package helpers (summary.go); the solver
// iterates to a fixpoint; checks then replay each block's transfer
// node by node to see the state immediately before every operation.

// A lattice drives one forward dataflow pass: entry produces the state
// at function entry, join merges a predecessor's out-state into a
// block's in-state (reporting whether anything changed), clone
// duplicates a state for independent mutation, and transfer applies
// one CFG node's effect in place.
type lattice[T any] interface {
	entry() T
	clone(T) T
	join(dst, src T) bool
	transfer(n ast.Node, st T)
}

// solve runs a forward pass to fixpoint and returns each reachable
// block's in-state. Unreachable blocks are absent from the map.
func solve[T any](g *CFG, lat lattice[T]) map[*Block]T {
	rpo := g.ReversePostorder()
	order := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	in := make(map[*Block]T, len(g.Blocks))
	in[g.Entry] = lat.entry()
	work := []*Block{g.Entry}
	inWork := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		sort.Slice(work, func(i, j int) bool { return order[work[i]] < order[work[j]] })
		b := work[0]
		work = work[1:]
		inWork[b] = false
		out := lat.clone(in[b])
		for _, n := range b.Nodes {
			lat.transfer(n, out)
		}
		for _, s := range b.Succs {
			st, ok := in[s]
			if !ok {
				in[s] = lat.clone(out)
			} else if !lat.join(st, out) {
				continue
			}
			if !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return in
}

// --- The reservation lattice ---

// resNone is the fact key for "this processor holds no reservation";
// resUnknownWord stands for a reservation on a word the analysis cannot
// key (call results, computed indexes).
const (
	resNone        = ""
	resUnknownWord = "?"
	procUnknown    = "?"
)

// resFacts is the set of reservation facts that may hold for one
// processor, each mapped to the position of the RLL that established it
// (NoPos for resNone).
type resFacts map[string]token.Pos

// resState maps a processor key (exprKey of the receiver, or
// procUnknown) to its possible facts. A processor absent from the map
// is in the entry condition: no reservation on any path.
type resState map[string]resFacts

// resLattice interprets machine.Proc operations and continuation-helper
// calls. seed is the entry state (non-empty only for continuation
// helpers, whose caller hands them a live reservation).
type resLattice struct {
	pass *Pass
	sums *pkgSummaries
	seed resState
}

func (l *resLattice) entry() resState {
	st := make(resState, len(l.seed))
	for p, facts := range l.seed {
		st[p] = cloneFacts(facts)
	}
	return st
}

func cloneFacts(f resFacts) resFacts {
	out := make(resFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func (l *resLattice) clone(st resState) resState {
	out := make(resState, len(st))
	for p, facts := range st {
		out[p] = cloneFacts(facts)
	}
	return out
}

func (l *resLattice) join(dst, src resState) bool {
	changed := false
	for p, facts := range src {
		df, ok := dst[p]
		if !ok {
			// Absent means {resNone}: materialize before merging so the
			// path that never touched p keeps contributing "none".
			df = resFacts{resNone: token.NoPos}
			dst[p] = df
			if _, had := facts[resNone]; !had || len(facts) > 1 {
				changed = true
			}
		}
		for k, pos := range facts {
			if _, ok := df[k]; !ok {
				df[k] = pos
				changed = true
			}
		}
	}
	for p := range dst {
		if _, ok := src[p]; !ok {
			// src never touched p: its contribution is {resNone}.
			if _, had := dst[p][resNone]; !had {
				dst[p][resNone] = token.NoPos
				changed = true
			}
		}
	}
	return changed
}

func (l *resLattice) transfer(n ast.Node, st resState) {
	for _, ev := range l.sums.events(l.pass, n) {
		applyResEvent(ev, st)
	}
}

// applyResEvent updates the state for one event: RLL establishes (and
// displaces) the processor's single reservation; RSC consumes it
// unconditionally (the machine clears the reservation whether or not
// the store succeeds); a continuation-helper call is an RSC performed
// on the caller's behalf.
func applyResEvent(ev resEvent, st resState) {
	switch {
	case ev.op != nil && ev.op.kind == opRLL:
		wk := resUnknownWord
		if ev.op.wordOK {
			wk = ev.op.wordK
		}
		st[procKeyOf(ev.op)] = resFacts{wk: ev.op.pos}
	case ev.op != nil && ev.op.kind == opRSC:
		st[procKeyOf(ev.op)] = resFacts{resNone: token.NoPos}
	case ev.helper != nil && ev.helper.cont != nil:
		pk := procUnknown
		if k, ok := ev.helperProcKey(); ok {
			pk = k
		}
		st[pk] = resFacts{resNone: token.NoPos}
	}
}

func procKeyOf(op *memOp) string {
	if op.procOK {
		return op.proc
	}
	return procUnknown
}

// factsFor returns the facts that may hold for the processor of op at a
// program point: the processor's own entry, plus anything established
// by unkeyable processors (which may alias it), plus — for an unkeyable
// processor — everything.
func factsFor(st resState, op *memOp) resFacts {
	merged := make(resFacts)
	take := func(f resFacts) {
		for k, v := range f {
			if _, ok := merged[k]; !ok {
				merged[k] = v
			}
		}
	}
	if op.procOK {
		if f, ok := st[op.proc]; ok {
			take(f)
		} else {
			merged[resNone] = token.NoPos
		}
		if f, ok := st[procUnknown]; ok {
			// An unkeyable processor may be this one: its reserved
			// words (but not its "none") could apply here.
			for k, v := range f {
				if k != resNone {
					if _, ok := merged[k]; !ok {
						merged[k] = v
					}
				}
			}
		}
		return merged
	}
	// Unkeyable processor: any tracked processor may be it.
	for _, f := range st {
		take(f)
	}
	if len(merged) == 0 {
		merged[resNone] = token.NoPos
	}
	return merged
}

// reservedWords returns the non-none facts in f.
func reservedWords(f resFacts) resFacts {
	out := make(resFacts)
	for k, v := range f {
		if k != resNone {
			out[k] = v
		}
	}
	return out
}

// --- Replaying states for checks ---

// resWalker replays the solved reservation states of one function body
// node by node. onNode (if set) fires with the state in effect at the
// start of each CFG node; onEvent (if set) fires with the state in
// effect immediately before each tracked event. block identifies the
// node's basic block, for reachability queries.
type resWalker struct {
	pass    *Pass
	sums    *pkgSummaries
	onNode  func(st resState, n ast.Node, block *Block)
	onEvent func(st resState, ev resEvent, block *Block)
}

// walk solves the lattice for scope and replays it. It returns the CFG
// so callers can run reachability queries against the same graph.
func (w *resWalker) walk(scope funcScope) *CFG {
	g := w.sums.cfg(scope)
	lat := &resLattice{pass: w.pass, sums: w.sums, seed: w.sums.entrySeed(w.pass, scope)}
	in := solve(g, lat)
	for _, b := range g.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable
		}
		st = lat.clone(st)
		for _, n := range b.Nodes {
			if w.onNode != nil {
				w.onNode(st, n, b)
			}
			for _, ev := range w.sums.events(w.pass, n) {
				if w.onEvent != nil {
					w.onEvent(st, ev, b)
				}
				applyResEvent(ev, st)
			}
		}
	}
	return g
}

// reachableFrom computes, for every block, whether a block satisfying
// pred is reachable (inclusive of the block itself).
func reachableFrom(g *CFG, pred func(*Block) bool) map[*Block]bool {
	can := make(map[*Block]bool, len(g.Blocks))
	// Iterate to fixpoint backwards along edges; the graph is small.
	for {
		changed := false
		for _, b := range g.Blocks {
			if can[b] {
				continue
			}
			ok := pred(b)
			for _, s := range b.Succs {
				if can[s] {
					ok = true
					break
				}
			}
			if ok {
				can[b] = true
				changed = true
			}
		}
		if !changed {
			return can
		}
	}
}
