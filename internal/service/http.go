package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// opKind enumerates the service operations.
type opKind uint8

const (
	opCounterInc opKind = iota
	opCounterGet
	opKVPut
	opKVGet
	opKVDel
	opQueueEnq
	opQueueDeq
)

func (k opKind) class() resilience.Class {
	switch k {
	case opCounterGet, opKVGet:
		return resilience.ClassRead
	default:
		// Mutations — and queue dequeue, which consumes state — are
		// writes for admission-control purposes.
		return resilience.ClassWrite
	}
}

// opReq is one operation submitted to the worker pool. The reply channel
// carries the commit receipt: a worker sends exactly one opResp, and
// only after the structure operation committed (or conclusively failed).
type opReq struct {
	kind  opKind
	key   uint64
	val   uint64
	ctx   context.Context
	reply chan opResp

	// Result fields, written by the worker before the reply.
	out   uint64
	found bool
}

type opResp struct {
	req *opReq
	err error
}

func (r *opReq) ok()            { r.reply <- opResp{req: r} }
func (r *opReq) fail(err error) { r.reply <- opResp{req: r, err: err} }

// submit pushes an operation through admission control, the dispatch
// queue, and the deadline, returning the completed request or an error
// plus the HTTP status that classifies it.
func (s *Server) submit(parent context.Context, kind opKind, key, val uint64) (*opReq, int, error) {
	if err := s.shedder.Admit(kind.class()); err != nil {
		return nil, http.StatusServiceUnavailable, err
	}
	ctx, cancel := context.WithTimeout(parent, s.cfg.Timeout)
	defer cancel()
	req := &opReq{kind: kind, key: key, val: val, ctx: ctx, reply: make(chan opResp, 1)}
	select {
	case s.dispatch <- req:
	default:
		// Dispatch queue full: shed at the door rather than queueing an
		// operation we cannot serve inside its deadline.
		if kind.class() == resilience.ClassWrite {
			s.mets.Inc(obs.CtrLoadShedWrites)
		} else {
			s.mets.Inc(obs.CtrLoadShedReads)
		}
		return nil, http.StatusServiceUnavailable, fmt.Errorf("service: dispatch queue full: %w", resilience.ErrShed)
	}
	select {
	case resp := <-req.reply:
		if resp.err != nil {
			return nil, statusFor(resp.err), resp.err
		}
		return req, http.StatusOK, nil
	case <-ctx.Done():
		// The deadline fired while the operation was queued or running.
		// The worker may still commit it (and will find the buffered
		// reply channel ready, so it never blocks): the operation is NOT
		// acknowledged, and the ledger treats it as an abandoned attempt.
		s.mets.Inc(obs.CtrResDeadlineExceeded)
		return nil, http.StatusGatewayTimeout, fmt.Errorf("service: deadline exceeded before commit: %w", ctx.Err())
	}
}

// statusFor maps an operation error to its HTTP status.
func statusFor(err error) int {
	switch {
	case errors.Is(err, resilience.ErrShed):
		return http.StatusServiceUnavailable
	case errors.Is(err, resilience.ErrBudgetExhausted):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, resilience.ErrTransient), errors.Is(err, resilience.ErrInjected):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// jsonOut writes v as the JSON response body.
func jsonOut(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck
}

func jsonErr(w http.ResponseWriter, status int, err error) {
	jsonOut(w, status, map[string]string{"error": err.Error()})
}

// qUint parses a required uint64 query parameter.
func qUint(r *http.Request, name string) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad query parameter %q: %v", name, err)
	}
	return v, nil
}

// qUintDefault parses an optional uint64 query parameter.
func qUintDefault(r *http.Request, name string, def uint64) (uint64, error) {
	if r.URL.Query().Get(name) == "" {
		return def, nil
	}
	return qUint(r, name)
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/counter/inc", s.handleCounterInc)
	mux.HandleFunc("/v1/counter/get", s.handleCounterGet)
	mux.HandleFunc("/v1/kv/put", s.handleKVPut)
	mux.HandleFunc("/v1/kv/get", s.handleKVGet)
	mux.HandleFunc("/v1/kv/del", s.handleKVDel)
	mux.HandleFunc("/v1/queue/enq", s.handleQueueEnq)
	mux.HandleFunc("/v1/queue/deq", s.handleQueueDeq)
	mux.HandleFunc("/v1/audit", s.handleAudit)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleCounterInc(w http.ResponseWriter, r *http.Request) {
	d, err := qUintDefault(r, "d", 1)
	if err != nil {
		jsonErr(w, http.StatusBadRequest, err)
		return
	}
	if _, status, err := s.submit(r.Context(), opCounterInc, 0, d); err != nil {
		jsonErr(w, status, err)
		return
	}
	jsonOut(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleCounterGet(w http.ResponseWriter, r *http.Request) {
	req, status, err := s.submit(r.Context(), opCounterGet, 0, 0)
	if err != nil {
		jsonErr(w, status, err)
		return
	}
	jsonOut(w, http.StatusOK, map[string]any{"value": req.out})
}

func (s *Server) handleKVPut(w http.ResponseWriter, r *http.Request) {
	k, err := qUint(r, "k")
	if err != nil {
		jsonErr(w, http.StatusBadRequest, err)
		return
	}
	v, err := qUint(r, "v")
	if err != nil {
		jsonErr(w, http.StatusBadRequest, err)
		return
	}
	if _, status, err := s.submit(r.Context(), opKVPut, k, v); err != nil {
		jsonErr(w, status, err)
		return
	}
	jsonOut(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleKVGet(w http.ResponseWriter, r *http.Request) {
	k, err := qUint(r, "k")
	if err != nil {
		jsonErr(w, http.StatusBadRequest, err)
		return
	}
	req, status, err := s.submit(r.Context(), opKVGet, k, 0)
	if err != nil {
		jsonErr(w, status, err)
		return
	}
	jsonOut(w, http.StatusOK, map[string]any{"found": req.found, "value": req.out})
}

func (s *Server) handleKVDel(w http.ResponseWriter, r *http.Request) {
	k, err := qUint(r, "k")
	if err != nil {
		jsonErr(w, http.StatusBadRequest, err)
		return
	}
	req, status, err := s.submit(r.Context(), opKVDel, k, 0)
	if err != nil {
		jsonErr(w, status, err)
		return
	}
	jsonOut(w, http.StatusOK, map[string]any{"deleted": req.found})
}

func (s *Server) handleQueueEnq(w http.ResponseWriter, r *http.Request) {
	v, err := qUint(r, "v")
	if err != nil {
		jsonErr(w, http.StatusBadRequest, err)
		return
	}
	if _, status, err := s.submit(r.Context(), opQueueEnq, 0, v); err != nil {
		jsonErr(w, status, err)
		return
	}
	jsonOut(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleQueueDeq(w http.ResponseWriter, r *http.Request) {
	req, status, err := s.submit(r.Context(), opQueueDeq, 0, 0)
	if err != nil {
		jsonErr(w, status, err)
		return
	}
	jsonOut(w, http.StatusOK, map[string]any{"found": req.found, "value": req.out})
}

// Audit is the end-of-run state report the load driver's ledger checks
// against. It is produced at quiescence (dispatch paused and drained),
// after one final recovery sweep, so the numbers are exact.
type Audit struct {
	// Counter is the sharded counter's value.
	Counter uint64 `json:"counter"`
	// KVLen is the number of live hashmap keys.
	KVLen int `json:"kv_len"`
	// QueueLen is the number of elements in the FIFO.
	QueueLen int `json:"queue_len"`
	// QueueLeaked is the leak count from the final conservation audit
	// (0 after a successful recovery sweep).
	QueueLeaked int `json:"queue_leaked"`
	// Reclaimed is the cumulative count of pool nodes swept back by
	// recovery epochs.
	Reclaimed uint64 `json:"reclaimed"`
	// RecoveryEpochs is how many recovery epochs have run.
	RecoveryEpochs uint64 `json:"recovery_epochs"`
	// Conservation is "ok" or the conservation failure message.
	Conservation string `json:"conservation"`
	// Incarnations maps worker slot → current incarnation number; any
	// value above 1 records a chaos kill or wedge on that slot.
	Incarnations []uint64 `json:"incarnations"`
	// WedgedLive is the number of fenced incarnations still blocked
	// inside the chaos plan (their slots have fresh incarnations).
	WedgedLive int `json:"wedged_live"`
	// Mode is the admission-control mode at audit time.
	Mode string `json:"mode"`
}

// AuditState pauses the workers, drains in-flight operations, runs a
// final recovery sweep, and returns the exact server state.
func (s *Server) AuditState() (Audit, error) {
	// Hold the epoch lock across both the recovery sweep and the reads,
	// so a concurrent supervisor epoch cannot unpark workers mid-audit.
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.epochLocked()

	s.pause.Store(true)
	defer s.pause.Store(false)
	stats, err := s.queue.Audit()
	if err != nil {
		return Audit{}, fmt.Errorf("service: queue audit: %w", err)
	}
	a := Audit{
		Counter:     s.counter.Load(),
		KVLen:       s.kv.Len(),
		QueueLen:    stats.Reachable - 1, // minus the M&S dummy node
		QueueLeaked: stats.Leaked,
		Mode:        s.shedder.Mode().String(),
	}
	s.mu.Lock()
	a.Reclaimed = s.reclaimed
	a.RecoveryEpochs = s.epochs
	a.WedgedLive = len(s.wedged)
	if s.consErr != nil {
		a.Conservation = s.consErr.Error()
	} else {
		a.Conservation = "ok"
	}
	s.mu.Unlock()
	a.Incarnations = make([]uint64, s.cfg.Workers)
	for i := range a.Incarnations {
		a.Incarnations[i] = s.reg.Incarnation(i)
	}
	return a, err
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	a, err := s.AuditState()
	if err != nil {
		jsonErr(w, http.StatusInternalServerError, err)
		return
	}
	jsonOut(w, http.StatusOK, a)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	mode := s.shedder.Mode()
	status := http.StatusOK
	if mode == resilience.ModeShedAll {
		status = http.StatusServiceUnavailable
	}
	jsonOut(w, status, map[string]any{
		"mode":        mode.String(),
		"live":        s.reg.Live(),
		"workers":     s.cfg.Workers,
		"queue_depth": len(s.dispatch) + int(s.inflight.Load()),
		"uptime_ok":   true,
		"time":        time.Now().UTC().Format(time.RFC3339Nano),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WritePrometheus(w) //nolint:errcheck
}
