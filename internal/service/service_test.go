package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic" //llsc:allow nakedatomic(test-side ledger accounting)
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/resilience"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s (%q): %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestServiceBasicEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	_ = s

	for i := 0; i < 5; i++ {
		if code := getJSON(t, ts.URL+"/v1/counter/inc?d=3", nil); code != http.StatusOK {
			t.Fatalf("counter/inc: status %d", code)
		}
	}
	var cv struct {
		Value uint64 `json:"value"`
	}
	if code := getJSON(t, ts.URL+"/v1/counter/get", &cv); code != http.StatusOK || cv.Value != 15 {
		t.Fatalf("counter/get: status %d value %d, want 200/15", code, cv.Value)
	}

	if code := getJSON(t, ts.URL+"/v1/kv/put?k=7&v=42", nil); code != http.StatusOK {
		t.Fatalf("kv/put: status %d", code)
	}
	var kv struct {
		Found bool   `json:"found"`
		Value uint64 `json:"value"`
	}
	if code := getJSON(t, ts.URL+"/v1/kv/get?k=7", &kv); code != http.StatusOK || !kv.Found || kv.Value != 42 {
		t.Fatalf("kv/get: status %d %+v, want found 42", code, kv)
	}
	var del struct {
		Deleted bool `json:"deleted"`
	}
	if code := getJSON(t, ts.URL+"/v1/kv/del?k=7", &del); code != http.StatusOK || !del.Deleted {
		t.Fatalf("kv/del: status %d %+v", code, del)
	}
	if getJSON(t, ts.URL+"/v1/kv/get?k=7", &kv); kv.Found {
		t.Fatalf("kv/get after delete: still found")
	}

	if code := getJSON(t, ts.URL+"/v1/queue/enq?v=11", nil); code != http.StatusOK {
		t.Fatalf("queue/enq: status %d", code)
	}
	var dq struct {
		Found bool   `json:"found"`
		Value uint64 `json:"value"`
	}
	if code := getJSON(t, ts.URL+"/v1/queue/deq", &dq); code != http.StatusOK || !dq.Found || dq.Value != 11 {
		t.Fatalf("queue/deq: status %d %+v, want found 11", code, dq)
	}
	if getJSON(t, ts.URL+"/v1/queue/deq", &dq); dq.Found {
		t.Fatalf("queue/deq on empty queue: found")
	}

	// Malformed input is rejected at the door, not by a worker.
	if code := getJSON(t, ts.URL+"/v1/kv/put?k=abc&v=1", nil); code != http.StatusBadRequest {
		t.Fatalf("kv/put bad key: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/kv/put?v=1", nil); code != http.StatusBadRequest {
		t.Fatalf("kv/put missing key: status %d, want 400", code)
	}

	var hz struct {
		Mode string `json:"mode"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK || hz.Mode != "healthy" {
		t.Fatalf("healthz: status %d mode %q", code, hz.Mode)
	}

	var audit Audit
	if code := getJSON(t, ts.URL+"/v1/audit", &audit); code != http.StatusOK {
		t.Fatalf("audit: status %d", code)
	}
	if audit.Counter != 15 || audit.KVLen != 0 || audit.QueueLen != 0 {
		t.Fatalf("audit state: %+v, want counter 15, empty kv and queue", audit)
	}
	if audit.Conservation != "ok" || audit.QueueLeaked != 0 {
		t.Fatalf("audit conservation: %+v", audit)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	promText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(promText), "llsc_load_admitted_total") {
		t.Fatalf("metrics exposition missing load_admitted series")
	}
}

// TestServiceChaosKillZeroAckedLoss is the headline robustness run: a
// deterministic chaos plan (spurious bursts on worker 0, budgeted
// fail-stop kills of worker 3 — including mid-enqueue kills through the
// stall hook) while a client-side ledger tracks every acknowledged
// operation. At the end, the server's audit must account for every acked
// op: kills may lose un-acknowledged work, never acknowledged work.
func TestServiceChaosKillZeroAckedLoss(t *testing.T) {
	const workers = 4
	plan, err := fault.ParsePlan("burst∘kill", fault.PlanParams{
		Procs: workers, BurstLen: 4, CrashAt: 3, KillBudget: 2,
	})
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	s, ts := newTestServer(t, Config{
		Workers:        workers,
		Chaos:          plan,
		Timeout:        5 * time.Second,
		SupervisorTick: time.Millisecond,
	})

	var (
		ackedInc, erroredInc      atomic.Uint64 // units of counter delta
		ackedEnq, erroredEnq      atomic.Uint64
		ackedDeqFound, erroredDeq atomic.Uint64
		ackedPut, erroredPut      atomic.Uint64
		nextKey                   atomic.Uint64
	)

	const clients = 4
	const opsPerClient = 400
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				switch i % 4 {
				case 0:
					code := getJSON(t, ts.URL+"/v1/counter/inc?d=1", nil)
					if code == http.StatusOK {
						ackedInc.Add(1)
					} else {
						erroredInc.Add(1)
					}
				case 1:
					code := getJSON(t, ts.URL+"/v1/queue/enq?v=9", nil)
					if code == http.StatusOK {
						ackedEnq.Add(1)
					} else {
						erroredEnq.Add(1)
					}
				case 2:
					var dq struct {
						Found bool `json:"found"`
					}
					code := getJSON(t, ts.URL+"/v1/queue/deq", &dq)
					if code == http.StatusOK {
						if dq.Found {
							ackedDeqFound.Add(1)
						}
					} else {
						erroredDeq.Add(1)
					}
				case 3:
					k := nextKey.Add(1)
					code := getJSON(t, ts.URL+fmt.Sprintf("/v1/kv/put?k=%d&v=%d", k, k+1), nil)
					if code == http.StatusOK {
						ackedPut.Add(1)
					} else {
						erroredPut.Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	var audit Audit
	if code := getJSON(t, ts.URL+"/v1/audit", &audit); code != http.StatusOK {
		t.Fatalf("audit: status %d", code)
	}

	// Counter: every acked increment must be present; errored increments
	// may or may not have committed before their kill.
	if audit.Counter < ackedInc.Load() || audit.Counter > ackedInc.Load()+erroredInc.Load() {
		t.Fatalf("counter %d outside acked-loss bounds [%d, %d]",
			audit.Counter, ackedInc.Load(), ackedInc.Load()+erroredInc.Load())
	}
	// KV: distinct keys, no deletes — live keys bracketed the same way.
	if uint64(audit.KVLen) < ackedPut.Load() || uint64(audit.KVLen) > ackedPut.Load()+erroredPut.Load() {
		t.Fatalf("kv len %d outside acked-loss bounds [%d, %d]",
			audit.KVLen, ackedPut.Load(), ackedPut.Load()+erroredPut.Load())
	}
	// Queue: committed enqueues ∈ [acked, acked+errored]; committed
	// consuming dequeues ∈ [ackedFound, ackedFound+errored].
	lo := int64(ackedEnq.Load()) - int64(ackedDeqFound.Load()) - int64(erroredDeq.Load())
	hi := int64(ackedEnq.Load()) + int64(erroredEnq.Load()) - int64(ackedDeqFound.Load())
	if int64(audit.QueueLen) < lo || int64(audit.QueueLen) > hi {
		t.Fatalf("queue len %d outside acked-loss bounds [%d, %d]", audit.QueueLen, lo, hi)
	}

	// The kills really happened, and recovery healed the pool.
	snap := s.Metrics().Snapshot()
	if kills := snap.Get(obs.CtrResChaosKills); kills != 2 {
		t.Fatalf("chaos kills = %d, want the full budget of 2", kills)
	}
	if audit.Incarnations[workers-1] < 2 {
		t.Fatalf("victim slot incarnation %d, want >= 2 after kills", audit.Incarnations[workers-1])
	}
	if audit.RecoveryEpochs < 2 {
		t.Fatalf("recovery epochs = %d, want >= 2 (one per kill)", audit.RecoveryEpochs)
	}
	if audit.Conservation != "ok" || audit.QueueLeaked != 0 {
		t.Fatalf("conservation after kills: %+v", audit)
	}
	if spurious := snap.Get(obs.CtrResChaosSpurious); spurious == 0 {
		t.Fatalf("burst component injected nothing")
	}
	if retries := snap.Get(obs.CtrResRetries); retries == 0 {
		t.Fatalf("spurious injections produced no retries")
	}
}

// TestServiceWedgeFlightDump wedges a worker with a chaos crash
// component (it blocks forever inside the plan, mid-operation) and
// checks the full detection pipeline: watchdog Wedged → exactly one
// flight dump for that wedge → lease fenced → slot reincarnated → state
// reclaimed, with the wedged goroutine drained at Close.
func TestServiceWedgeFlightDump(t *testing.T) {
	const workers = 2
	plan, err := fault.ParsePlan("crash", fault.PlanParams{Procs: workers, CrashAt: 5})
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers:        workers,
		Chaos:          plan,
		FlightDir:      dir,
		LeaseTTL:       400,
		WedgeK:         200,
		Timeout:        5 * time.Second,
		SupervisorTick: time.Millisecond,
	})

	// Drive single-unit increments until the supervisor has fenced the
	// wedged incarnation. Each request advances the attempt clock, which
	// is what both the watchdog and the lease TTL are denominated in.
	deadline := time.Now().Add(30 * time.Second)
	var acked uint64
	for s.Metrics().Snapshot().Get(obs.CtrResWedgeKills) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("supervisor never fenced the wedged worker")
		}
		if code := getJSON(t, ts.URL+"/v1/counter/inc?d=1", nil); code == http.StatusOK {
			acked++
		}
	}

	var audit Audit
	if code := getJSON(t, ts.URL+"/v1/audit", &audit); code != http.StatusOK {
		t.Fatalf("audit: status %d", code)
	}
	if audit.Counter < acked {
		t.Fatalf("counter %d < %d acked increments across the wedge", audit.Counter, acked)
	}
	if audit.Incarnations[workers-1] < 2 {
		t.Fatalf("wedged slot incarnation %d, want a successor (>= 2)", audit.Incarnations[workers-1])
	}
	if audit.WedgedLive == 0 {
		t.Fatalf("fenced incarnation should still be blocked inside the plan")
	}
	if audit.Conservation != "ok" {
		t.Fatalf("conservation after wedge recovery: %q", audit.Conservation)
	}

	// Every wedge produces exactly one dump: the first wedged
	// incarnation (slot 1, inc 1) must have exactly one, and each
	// further dump must belong to a distinct later incarnation (the
	// crash plan re-wedges the successor if it picks up a queued op
	// before the fence) — never a duplicate for the same wedge.
	var wedgeDumps, firstWedge int
	seen := map[string]int{}
	for _, d := range s.FlightDumps() {
		if !strings.Contains(d, "wedge") {
			continue
		}
		wedgeDumps++
		for inc := uint64(1); inc <= audit.Incarnations[1]; inc++ {
			key := fmt.Sprintf("wedge-slot1-inc%d", inc)
			if strings.Contains(d, key) {
				seen[key]++
				if inc == 1 {
					firstWedge++
				}
			}
		}
	}
	if firstWedge != 1 {
		t.Fatalf("first wedge produced %d dumps (%v), want exactly 1", firstWedge, s.FlightDumps())
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("wedge %s produced %d dumps, want exactly 1 per wedge", key, n)
		}
	}
	if wedgeDumps > int(audit.Incarnations[1]) {
		t.Fatalf("%d wedge dumps for at most %d wedged incarnations (%v)",
			wedgeDumps, audit.Incarnations[1], s.FlightDumps())
	}

	// Close must release the goroutine still blocked inside the chaos
	// plan; the test deadlocks here if it does not (t.Cleanup order:
	// httptest first, then s.Close).
}

// TestServiceDispatchFullSheds fills the dispatch queue (no workers can
// drain it: single worker wedged immediately) and checks that overload
// is refused at the door with 503 and counted as shed load.
func TestServiceDispatchFullSheds(t *testing.T) {
	plan, err := fault.ParsePlan("crash", fault.PlanParams{Procs: 1, CrashAt: 0})
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	s, err := New(Config{
		Workers:       1,
		DispatchDepth: 2,
		Chaos:         plan,
		Timeout:       50 * time.Millisecond,
		// A huge TTL so the supervisor does not fence the wedged worker
		// mid-test; this test is about the door, not recovery.
		LeaseTTL: 1 << 40,
		WedgeK:   1 << 40,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First op wedges the worker (CrashAt 0). Subsequent ops fill the
	// 2-deep dispatch queue and then shed. All of them time out or shed;
	// none are acknowledged.
	sawShed := false
	for i := 0; i < 8; i++ {
		code := getJSON(t, ts.URL+"/v1/counter/inc?d=1", nil)
		if code == http.StatusOK {
			t.Fatalf("increment %d acknowledged by a wedged service", i)
		}
		if code == http.StatusServiceUnavailable {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatalf("dispatch overflow never shed with 503")
	}
	snap := s.Metrics().Snapshot()
	if snap.Get(obs.CtrLoadShedWrites) == 0 {
		t.Fatalf("no shed writes counted")
	}
	if snap.Get(obs.CtrResDeadlineExceeded) == 0 {
		t.Fatalf("no deadline expiries counted")
	}
}

// TestServiceModeSurfacesInHealthz drives the shedder directly (via its
// config thresholds and the vitals the server computes) far enough to
// verify the mode string surfaces; the decision-path logic itself is
// covered deterministically in internal/resilience.
func TestServiceModeSurfacesInHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var hz struct {
		Mode    string `json:"mode"`
		Live    int    `json:"live"`
		Workers int    `json:"workers"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Mode != resilience.ModeHealthy.String() || hz.Live != 1 || hz.Workers != 1 {
		t.Fatalf("healthz payload %+v", hz)
	}
	_ = s
}
