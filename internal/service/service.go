// Package service is llscd's engine: an HTTP key-value + counter + queue
// server whose entire shared state lives in the repo's non-blocking
// structures on the native substrate, wrapped in the internal/resilience
// robustness contract — every request has a deadline, a retry budget, an
// overload response, and a crash-recovery story.
//
// Architecture: HTTP handlers are thin. After admission control they
// submit operations to a bounded dispatch queue served by a fixed pool
// of worker goroutines. Each worker holds a fenced lease in a
// recovery.Registry whose clock is the global attempt counter (the
// native substrate has no step clock, so attempted work is the monotone
// "time" the liveness argument runs on) and heartbeats it once per
// attempt. A per-worker recovery.Watchdog distinguishes Live / Idle /
// Wedged on the same clock. The supervisor goroutine polls watchdogs,
// sweeps the lease registry, reassesses admission control, and — when a
// worker dies (chaos kill) or wedges (chaos crash) — fences its lease,
// runs a stop-the-world recovery epoch (Queue.Recover +
// CheckConservation at quiescence), and reincarnates the slot.
//
// The acknowledgement protocol is the zero-acked-loss argument: a worker
// replies only AFTER the structure operation committed, so an
// acknowledged operation is by construction in the server state; a
// worker killed mid-operation leaves an unacknowledged request (the
// client sees an error and may retry) and at worst a leaked pool node,
// which the recovery epoch reclaims. The audit endpoint exposes the
// final state so a load driver's read-your-writes ledger can verify the
// inequalities end to end.
package service

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contention"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/recovery"
	"repro/internal/resilience"
	"repro/internal/structures"
)

// Config parameterizes a Server. Zero values select the defaults noted
// on each field.
type Config struct {
	// Workers is the worker-pool size (default 4). Chaos plans address
	// workers as processors: the crash/kill victim is worker Workers-1.
	Workers int
	// DispatchDepth bounds the dispatch queue (default 256); a full
	// queue sheds at the door, and the depth feeds the shedder's vitals.
	DispatchDepth int
	// KVCapacity sizes the hashmap (default 1<<16 buckets).
	KVCapacity int
	// QueueCapacity sizes the pool-backed FIFO (default 1<<14 elements).
	QueueCapacity int
	// CounterStripes sizes the sharded counter (default 8).
	CounterStripes int
	// Timeout is the per-request deadline (default 2s). Handlers derive
	// each operation's context from it; the retry loop stops at the line.
	Timeout time.Duration
	// Policy is the backoff policy for server-side retries (default
	// adaptive — gated on the spurious/interference cause split).
	Policy *contention.Policy
	// RetryBase and RetryRatio parameterize the retry budget (defaults
	// 32 and 0.25: retries may add at most 25% load amplification).
	RetryBase uint64
	// RetryRatio is the steady-state retry fraction (see RetryBase).
	RetryRatio float64
	// MaxAttempts caps attempts per operation (default 8).
	MaxAttempts int
	// Shed overrides the shedder thresholds (zero →
	// resilience.DefaultShedderConfig(DispatchDepth)).
	Shed resilience.ShedderConfig
	// Chaos is the fault plan replayed at the operation boundary (nil =
	// off); build it with fault.ParsePlan.
	Chaos fault.Plan
	// FlightDir enables the flight recorder, writing dumps there on
	// wedge and shed-storm triggers ("" = disabled).
	FlightDir string
	// LeaseTTL is the worker lease TTL in attempt-clock units (default
	// 4096).
	LeaseTTL uint64
	// WedgeK is the watchdog threshold in attempt-clock units (default
	// = LeaseTTL).
	WedgeK uint64
	// SupervisorTick is the supervision poll interval (default 2ms).
	SupervisorTick time.Duration
	// Metrics is the counter sink (default: a fresh obs.New()).
	Metrics *obs.Metrics
	// Tracer is an optional span tracer attached to watchdogs and the
	// flight recorder.
	Tracer *trace.Tracer
}

func (c *Config) fillDefaults() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.DispatchDepth == 0 {
		c.DispatchDepth = 256
	}
	if c.KVCapacity == 0 {
		c.KVCapacity = 1 << 16
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 1 << 14
	}
	if c.CounterStripes == 0 {
		c.CounterStripes = 8
	}
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Policy == nil {
		c.Policy = contention.Adaptive(0, 0)
	}
	if c.RetryBase == 0 {
		c.RetryBase = 32
	}
	if c.RetryRatio == 0 {
		c.RetryRatio = 0.25
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.Shed == (resilience.ShedderConfig{}) {
		c.Shed = resilience.DefaultShedderConfig(c.DispatchDepth)
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 4096
	}
	if c.WedgeK == 0 {
		c.WedgeK = c.LeaseTTL
	}
	if c.SupervisorTick == 0 {
		c.SupervisorTick = 2 * time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = obs.New()
	}
}

// Server is the llscd engine. Create with New, serve s.Handler(), stop
// with Close.
type Server struct {
	cfg  Config
	mets *obs.Metrics

	counter *structures.ShardedCounter
	kv      *structures.Map
	queue   *structures.Queue

	reg     *recovery.Registry
	chaos   *resilience.Chaos
	shedder *resilience.Shedder
	retrier *resilience.Retrier
	budget  *resilience.Budget
	flight  *trace.Flight

	attempts atomic.Uint64 // the global monotone clock (attempted ops)
	inflight atomic.Int64  // operations currently executing in workers
	killArm  atomic.Bool   // chaos: kill the next worker through the stall hook
	pause    atomic.Bool   // recovery epoch: workers park between ops

	opLatency obs.Hist // per-op server-side latency (ns), feeds p99 drift

	dispatch chan *opReq
	deaths   chan death
	stop     chan struct{}
	done     sync.WaitGroup // supervisor + workers

	epochMu                   sync.Mutex // serializes recovery epochs (supervisor vs audit)
	mu                        sync.Mutex
	completions               []atomic.Uint64 // per-slot progress clocks (never reset)
	dogs                      []*recovery.Watchdog
	wedged                    map[int]recovery.Token // fenced-but-blocked incarnations
	epochs                    uint64                 // recovery epochs run
	reclaimed                 uint64                 // pool nodes swept back
	consErr                   error                  // last conservation verdict
	p99Baseline               uint64                 // first stable p99, drift denominator
	lastAdmitted, lastRetries uint64                 // previous vitals sample (windowed retry rate)
	closed                    bool
}

type death struct {
	slot int
	tok  recovery.Token
	// wedgeRelease: the incarnation was fenced while blocked and has now
	// unblocked and exited — clear its wedge bookkeeping.
	wedgeRelease bool
}

// killPanic is the chaos fail-stop sentinel thrown through a worker.
type killPanic struct{ slot int }

// New builds a Server and starts its workers and supervisor.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, mets: cfg.Metrics}

	var err error
	if s.counter, err = structures.NewShardedCounter(0, cfg.CounterStripes); err != nil {
		return nil, err
	}
	if s.kv, err = structures.NewMap(cfg.KVCapacity); err != nil {
		return nil, err
	}
	if s.queue, err = structures.NewQueue(cfg.QueueCapacity); err != nil {
		return nil, err
	}
	for _, set := range []func(*contention.Policy){s.counter.SetContention, s.kv.SetContention, s.queue.SetContention} {
		set(cfg.Policy)
	}
	s.counter.SetMetrics(s.mets)
	s.kv.SetMetrics(s.mets)

	// The chaos mid-operation kill: a worker that drew a Kill injection
	// arms this hook and proceeds into its queue operation; the hook
	// fires inside the LL window after the pool alloc — the exact
	// leak window the recovery epoch exists to heal.
	s.queue.SetStallHook(func() {
		if s.killArm.CompareAndSwap(true, false) {
			panic(killPanic{})
		}
	})

	if s.reg, err = recovery.NewRegistry(cfg.Workers, s.attempts.Load, cfg.LeaseTTL); err != nil {
		return nil, err
	}
	s.reg.SetMetrics(s.mets)

	s.chaos = resilience.NewChaos(cfg.Chaos)
	s.chaos.SetMetrics(s.mets)

	if s.budget, err = resilience.NewBudget(cfg.RetryBase, cfg.RetryRatio); err != nil {
		return nil, err
	}
	s.retrier = &resilience.Retrier{Policy: cfg.Policy, Budget: s.budget, MaxAttempts: cfg.MaxAttempts}
	s.retrier.SetMetrics(s.mets)

	if s.shedder, err = resilience.NewShedder(s.vitals, cfg.Shed); err != nil {
		return nil, err
	}
	s.shedder.SetMetrics(s.mets)

	if cfg.FlightDir != "" {
		if s.flight, err = trace.NewFlight(trace.FlightConfig{
			Dir: cfg.FlightDir, Label: "llscd", Tracer: cfg.Tracer, Metrics: s.mets,
		}); err != nil {
			return nil, err
		}
		s.shedder.OnTransition(func(from, to resilience.Mode, v resilience.Vitals) {
			if to == resilience.ModeShedAll {
				s.flight.Trigger(fmt.Sprintf("shed-storm:depth%d", v.QueueDepth)) //nolint:errcheck
			}
		})
	}

	s.completions = make([]atomic.Uint64, cfg.Workers)
	s.dogs = make([]*recovery.Watchdog, cfg.Workers)
	for i := range s.dogs {
		slot := i
		dog, err := recovery.NewWatchdogClock(s.attempts.Load, s.completions[slot].Load, cfg.WedgeK)
		if err != nil {
			return nil, err
		}
		dog.SetMetrics(s.mets)
		dog.SetTracer(cfg.Tracer)
		s.dogs[i] = dog
	}
	s.wedged = make(map[int]recovery.Token)

	s.dispatch = make(chan *opReq, cfg.DispatchDepth)
	s.deaths = make(chan death, 4*cfg.Workers)
	s.stop = make(chan struct{})

	// Expose the service through the shared exporters; re-publishing
	// replaces, so successive test servers stay well-defined.
	obs.Publish("llscd", s.mets)
	obs.PublishHist("llscd", "service_op_latency_ns", &s.opLatency)

	for slot := 0; slot < cfg.Workers; slot++ {
		s.done.Add(1)
		go s.runWorker(slot)
	}
	s.done.Add(1)
	go s.supervise()
	return s, nil
}

// Close stops the supervisor and workers, releasing any chaos-wedged
// goroutines. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.chaos.Release() // unblock crash-wedged workers so they can exit
	s.pause.Store(false)
	s.done.Wait()
}

// Metrics returns the server's counter sink.
func (s *Server) Metrics() *obs.Metrics { return s.mets }

// FlightDumps lists the flight-recorder dumps written so far.
func (s *Server) FlightDumps() []string {
	if s.flight == nil {
		return nil
	}
	return s.flight.Dumps()
}

// vitals samples the live signals admission control keys on. The retry
// rate is WINDOWED — retries and admissions since the previous sample —
// not cumulative: a cumulative ratio can never decay while the shedder
// is refusing traffic (nothing gets admitted, so the denominator
// freezes), which would wedge the service in degraded mode forever. The
// window denominator is floored so a handful of retries against a
// near-empty window cannot fake a storm.
func (s *Server) vitals() resilience.Vitals {
	snap := s.mets.Snapshot()
	admitted := snap.Get(obs.CtrLoadAdmitted)
	retries := snap.Get(obs.CtrResRetries)
	s.mu.Lock()
	dAdmitted := admitted - s.lastAdmitted
	dRetries := retries - s.lastRetries
	s.lastAdmitted, s.lastRetries = admitted, retries
	base := s.p99Baseline
	s.mu.Unlock()
	const minWindow = 16
	den := dAdmitted
	if den < minWindow {
		den = minWindow
	}
	drift := 1.0
	if base > 0 {
		if p99 := s.opLatency.Quantile(0.99); p99 > 0 {
			drift = float64(p99) / float64(base)
		}
	}
	return resilience.Vitals{
		QueueDepth: len(s.dispatch) + int(s.inflight.Load()),
		RetryRate:  float64(dRetries) / float64(den),
		P99Drift:   drift,
	}
}

// runWorker is one worker slot's incarnation loop: join (minting a fresh
// fencing token), serve operations until killed, fenced, or stopped.
func (s *Server) runWorker(slot int) {
	defer s.done.Done()
	tok, err := s.reg.Join(slot)
	if err != nil {
		// The slot's lease is still live (a fenced predecessor has not
		// been expired yet) — the supervisor will respawn us after it
		// fences; give the slot back.
		return
	}
	for {
		if s.pause.Load() {
			// Recovery epoch: park between operations.
			select {
			case <-s.stop:
				s.reg.Leave(tok) //nolint:errcheck
				return
			case <-time.After(100 * time.Microsecond):
			}
			continue
		}
		select {
		case <-s.stop:
			s.reg.Leave(tok) //nolint:errcheck
			return
		case req := <-s.dispatch:
			alive := s.execute(slot, tok, req)
			if !alive {
				return
			}
		case <-time.After(200 * time.Microsecond):
			// Idle tick: renew the lease and bump the progress clock, so
			// a merely-idle worker is never mistaken for a wedged one
			// while busier workers advance the global attempt clock. A
			// refused renewal means this incarnation was fenced (e.g. it
			// starved past the TTL under extreme load) — a successor
			// already owns the slot, so exit quietly.
			if err := s.reg.Heartbeat(tok); err != nil {
				s.deaths <- death{slot: slot, tok: tok, wedgeRelease: true}
				return
			}
			s.completions[slot].Add(1)
		}
	}
}

// execute runs one operation on a worker, under the full resilience
// contract. Returns false when this incarnation must exit (chaos kill or
// fenced lease).
func (s *Server) execute(slot int, tok recovery.Token, req *opReq) (alive bool) {
	s.inflight.Add(1)
	start := time.Now()
	fenced := false
	defer func() {
		s.inflight.Add(-1)
		if r := recover(); r != nil {
			if _, ok := r.(killPanic); !ok {
				panic(r) // a real bug, not chaos — do not swallow it
			}
			// Chaos kill mid-operation: the request is NOT acknowledged.
			req.fail(fmt.Errorf("worker %d killed mid-operation (incarnation %d): %w", slot, tok.Incarnation, resilience.ErrTransient))
			s.deaths <- death{slot: slot, tok: tok}
			alive = false
			return
		}
		s.completions[slot].Add(1)
		s.opLatency.ObserveDuration(time.Since(start))
		if fenced {
			s.deaths <- death{slot: slot, tok: tok, wedgeRelease: true}
			alive = false
			return
		}
		alive = true
	}()

	err := s.retrier.Do(req.ctx, slot, func() error {
		s.attempts.Add(1)
		inj := s.chaos.Inject(slot) // a crash component blocks here: the wedge
		if hbErr := s.reg.Heartbeat(tok); hbErr != nil {
			// Fenced: a successor owns this slot. Abandon the work
			// without touching shared state.
			fenced = true
			return fmt.Errorf("worker %d incarnation %d fenced: %w", slot, tok.Incarnation, hbErr)
		}
		if inj.Kill {
			if req.kind == opQueueEnq {
				// Die inside the enqueue's alloc-to-link window so the
				// kill exercises the pool-leak recovery path.
				s.killArm.Store(true)
			} else {
				panic(killPanic{slot: slot})
			}
		}
		if inj.Spurious {
			return resilience.ErrInjected
		}
		if inj.Interfere {
			return fmt.Errorf("chaos interference: %w", resilience.ErrTransient)
		}
		return s.apply(req)
	})
	// Reply after the operation committed (or conclusively failed): the
	// acknowledgement IS the commit receipt.
	if err != nil {
		req.fail(err)
	} else {
		req.ok()
	}
	return true
}

// apply runs the structure operation for req and stores results on it.
func (s *Server) apply(req *opReq) error {
	switch req.kind {
	case opCounterInc:
		s.counter.Add(req.val)
	case opCounterGet:
		req.out = s.counter.Load()
		req.found = true
	case opKVPut:
		if err := s.kv.Put(req.key, req.val); err != nil {
			if err == structures.ErrFull {
				return fmt.Errorf("kv full: %w", resilience.ErrTransient)
			}
			return err // reserved value / key range: permanent
		}
	case opKVGet:
		req.out, req.found = s.kv.Get(req.key)
	case opKVDel:
		req.found = s.kv.Delete(req.key)
	case opQueueEnq:
		if err := s.queue.Enqueue(req.val); err != nil {
			if err == structures.ErrFull {
				return fmt.Errorf("queue full: %w", resilience.ErrTransient)
			}
			return err
		}
	case opQueueDeq:
		req.out, req.found = s.queue.Dequeue()
	default:
		return fmt.Errorf("service: unknown op kind %d", req.kind)
	}
	return nil
}

// supervise is the supervisor loop: admission reassessment, watchdog
// verdicts, lease sweeps, death handling, recovery epochs, respawns.
func (s *Server) supervise() {
	defer s.done.Done()
	tick := time.NewTicker(s.cfg.SupervisorTick)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case d := <-s.deaths:
			s.handleDeath(d)
		case <-tick.C:
			s.shedder.Reassess()
			s.refreshBaseline()
			s.sweep()
		}
	}
}

// refreshBaseline captures the p99 drift denominator once the latency
// histogram has enough samples, while the system is still healthy.
func (s *Server) refreshBaseline() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.p99Baseline == 0 && s.opLatency.Count() >= 64 && s.shedder.Mode() == resilience.ModeHealthy {
		s.p99Baseline = s.opLatency.Quantile(0.99)
	}
}

// sweep polls watchdogs and the lease registry: a Wedged verdict arms a
// flight dump; an expired lease is a dead-or-wedged incarnation that
// must be fenced, reclaimed after, and its slot reincarnated.
func (s *Server) sweep() {
	for slot, dog := range s.dogs {
		if dog.Check() == recovery.Wedged {
			if s.flight != nil {
				s.flight.Trigger(fmt.Sprintf("wedge:slot%d:inc%d", slot, s.reg.Incarnation(slot))) //nolint:errcheck
			}
		}
	}
	expired := s.reg.ExpireStale()
	for _, tok := range expired {
		s.mets.IncProc(tok.ID, obs.CtrResWedgeKills)
		s.mu.Lock()
		s.wedged[tok.ID] = tok
		s.mu.Unlock()
	}
	if len(expired) > 0 {
		s.recoveryEpoch()
		for _, tok := range expired {
			s.respawn(tok.ID)
		}
	}
}

// handleDeath processes a worker's death note: fence (idempotent),
// reclaim, reincarnate.
func (s *Server) handleDeath(d death) {
	if d.wedgeRelease {
		// A fenced incarnation unblocked and exited cleanly; its slot
		// was already respawned when it was fenced.
		s.mu.Lock()
		if w, ok := s.wedged[d.slot]; ok && w == d.tok {
			delete(s.wedged, d.slot)
		}
		s.mu.Unlock()
		return
	}
	s.reg.Expire(d.tok) //nolint:errcheck
	s.recoveryEpoch()
	s.respawn(d.slot)
}

// respawn starts a fresh incarnation for slot.
func (s *Server) respawn(slot int) {
	select {
	case <-s.stop:
		return
	default:
	}
	s.done.Add(1)
	go s.runWorker(slot)
}

// recoveryEpoch runs figure-level reclamation at quiescence: pause
// dispatch, wait for in-flight work to drain (fenced-but-blocked
// incarnations hold no allocations — the chaos gate wedges before the
// structure op — so they do not block quiescence), sweep leaked pool
// nodes, audit conservation.
func (s *Server) recoveryEpoch() {
	// Serialize epochs: the supervisor and an audit request may both ask
	// for one, and overlapping pause windows would unpark workers under
	// a live sweep.
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	s.epochLocked()
}

// epochLocked is the epoch body; callers hold epochMu.
func (s *Server) epochLocked() {
	s.pause.Store(true)
	defer s.pause.Store(false)

	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		blocked := int64(len(s.wedged))
		s.mu.Unlock()
		if s.inflight.Load() <= blocked {
			break
		}
		if time.Now().After(deadline) {
			// Could not reach quiescence; reclaiming now would be
			// unsound. Skip the sweep — the next epoch retries.
			return
		}
		time.Sleep(50 * time.Microsecond)
	}

	reclaimed, err := s.queue.Recover()
	if err == nil {
		err = s.queue.CheckConservation()
	}
	s.mets.Inc(obs.CtrResRecoveryEpochs)
	s.mu.Lock()
	s.epochs++
	s.reclaimed += uint64(reclaimed)
	s.consErr = err
	s.mu.Unlock()
	if err != nil && s.flight != nil {
		s.flight.Trigger(fmt.Sprintf("conservation:%v", err)) //nolint:errcheck
	}
}

// Handler returns the server's HTTP handler (see http.go for routes).
func (s *Server) Handler() http.Handler { return s.routes() }
