// Package trace records the simulated machine's operation stream into a
// bounded ring buffer for post-mortem analysis: wire a Recorder into
// machine.Config.Observer, run a (possibly schedule-controlled) workload,
// and Dump the tail of the execution when an invariant breaks. Combined
// with internal/sched's replayable seeds this gives a full
// failure-reproduction workflow: re-run the failing seed with tracing on
// and read the exact operation interleaving.
package trace

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/machine"
)

// Recorder is a bounded ring buffer of machine events. It is safe for
// concurrent use by all simulated processors.
type Recorder struct {
	mu      sync.Mutex
	events  []machine.Event
	next    int
	dropped uint64
}

// NewRecorder creates a recorder holding the most recent capacity events.
func NewRecorder(capacity int) (*Recorder, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("trace: capacity must be at least 1, got %d", capacity)
	}
	return &Recorder{events: make([]machine.Event, 0, capacity)}, nil
}

// MustNewRecorder is NewRecorder for statically valid capacities.
func MustNewRecorder(capacity int) *Recorder {
	r, err := NewRecorder(capacity)
	if err != nil {
		panic(err)
	}
	return r
}

// Observe implements the machine.Config.Observer callback; pass the
// method value: machine.Config{Observer: rec.Observe}.
func (r *Recorder) Observe(e machine.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, e)
		return
	}
	r.events[r.next] = e
	r.next++
	if r.next == cap(r.events) {
		r.next = 0
	}
	r.dropped++
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events were overwritten by newer ones.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns the retained events in arrival order (oldest first).
func (r *Recorder) Events() []machine.Event {
	events, _ := r.snapshot()
	return events
}

// snapshot returns the retained events (oldest first) and the dropped
// count as one consistent pair, under a single lock acquisition.
func (r *Recorder) snapshot() ([]machine.Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]machine.Event, 0, len(r.events))
	if len(r.events) == cap(r.events) {
		out = append(out, r.events[r.next:]...)
		out = append(out, r.events[:r.next]...)
	} else {
		out = append(out, r.events...)
	}
	return out, r.dropped
}

// Reset discards all retained events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
	r.next = 0
	r.dropped = 0
}

// Filter returns the retained events for which keep returns true.
func (r *Recorder) Filter(keep func(machine.Event) bool) []machine.Event {
	all := r.Events()
	out := all[:0]
	for _, e := range all {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes a human-readable listing of the retained events, prefixed
// by the dropped-event count when the ring has overflowed. The events and
// the count come from one consistent snapshot, so the listing never
// claims drops its events don't reflect (or vice versa) even while
// processors are still recording.
func (r *Recorder) Dump(w io.Writer) error {
	events, dropped := r.snapshot()
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d earlier events dropped ...\n", dropped); err != nil {
			return err
		}
	}
	for _, e := range events {
		if _, err := fmt.Fprintln(w, Format(e)); err != nil {
			return err
		}
	}
	return nil
}

// Format renders one event as a fixed-shape line.
func Format(e machine.Event) string {
	switch e.Op {
	case machine.OpLoad:
		return fmt.Sprintf("%6d p%-2d LOAD  w%-3d -> %#x", e.Seq, e.Proc, e.Word, e.Val)
	case machine.OpStore:
		return fmt.Sprintf("%6d p%-2d STORE w%-3d <- %#x", e.Seq, e.Proc, e.Word, e.Val)
	case machine.OpCAS:
		return fmt.Sprintf("%6d p%-2d CAS   w%-3d %#x -> %#x : %v", e.Seq, e.Proc, e.Word, e.Old, e.Val, e.OK)
	case machine.OpRLL:
		return fmt.Sprintf("%6d p%-2d RLL   w%-3d -> %#x", e.Seq, e.Proc, e.Word, e.Val)
	case machine.OpRSC:
		suffix := ""
		if e.Spurious {
			suffix = " (spurious)"
		}
		return fmt.Sprintf("%6d p%-2d RSC   w%-3d <- %#x : %v%s", e.Seq, e.Proc, e.Word, e.Val, e.OK, suffix)
	case machine.OpCrash:
		return fmt.Sprintf("%6d p%-2d CRASH   gen %d died", e.Seq, e.Proc, e.Val)
	case machine.OpRestart:
		return fmt.Sprintf("%6d p%-2d RESTART gen %d up", e.Seq, e.Proc, e.Val)
	default:
		return fmt.Sprintf("%6d p%-2d %v w%-3d", e.Seq, e.Proc, e.Op, e.Word)
	}
}
