package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/word"
)

func TestNewRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewRecorder(0) did not panic")
		}
	}()
	MustNewRecorder(0)
}

func TestRecorderCapturesOps(t *testing.T) {
	rec := MustNewRecorder(64)
	m := machine.MustNew(machine.Config{Procs: 1, Observer: rec.Observe})
	w := m.NewWord(5)
	p := m.Proc(0)

	p.Load(w)
	p.Store(w, 7)
	p.CAS(w, 7, 8)
	p.RLL(w)
	p.RSC(w, 9)

	events := rec.Events()
	if len(events) != 5 {
		t.Fatalf("captured %d events, want 5", len(events))
	}
	wantOps := []machine.OpKind{machine.OpLoad, machine.OpStore, machine.OpCAS, machine.OpRLL, machine.OpRSC}
	for i, e := range events {
		if e.Op != wantOps[i] {
			t.Errorf("event %d op = %v, want %v", i, e.Op, wantOps[i])
		}
		if e.Proc != 0 {
			t.Errorf("event %d proc = %d", i, e.Proc)
		}
		if e.Word != w.ID() {
			t.Errorf("event %d word = %d, want %d", i, e.Word, w.ID())
		}
	}
	// Sequence stamps are strictly increasing.
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Errorf("seq not increasing: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
	if !events[2].OK {
		t.Error("CAS event not marked successful")
	}
	if !events[4].OK {
		t.Error("RSC event not marked successful")
	}
}

func TestRecorderMarksSpuriousRSC(t *testing.T) {
	rec := MustNewRecorder(16)
	m := machine.MustNew(machine.Config{Procs: 1, Observer: rec.Observe})
	w := m.NewWord(0)
	p := m.Proc(0)
	p.RLL(w)
	p.FailNext(1)
	p.RSC(w, 1)
	events := rec.Events()
	last := events[len(events)-1]
	if last.Op != machine.OpRSC || last.OK || !last.Spurious {
		t.Errorf("spurious RSC event = %+v", last)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	rec := MustNewRecorder(4)
	m := machine.MustNew(machine.Config{Procs: 1, Observer: rec.Observe})
	w := m.NewWord(0)
	p := m.Proc(0)
	for i := uint64(0); i < 10; i++ {
		p.Store(w, i)
	}
	events := rec.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	if rec.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", rec.Dropped())
	}
	// The retained events are the most recent four, in order.
	for i, e := range events {
		if want := uint64(6 + i); e.Val != want {
			t.Errorf("event %d val = %d, want %d", i, e.Val, want)
		}
	}
}

func TestRecorderFilterAndReset(t *testing.T) {
	rec := MustNewRecorder(32)
	m := machine.MustNew(machine.Config{Procs: 2, Observer: rec.Observe})
	w := m.NewWord(0)
	m.Proc(0).Load(w)
	m.Proc(1).Store(w, 1)
	m.Proc(0).Load(w)

	p0 := rec.Filter(func(e machine.Event) bool { return e.Proc == 0 })
	if len(p0) != 2 {
		t.Errorf("filter proc0: %d events, want 2", len(p0))
	}
	rec.Reset()
	if rec.Len() != 0 || rec.Dropped() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestDumpFormat(t *testing.T) {
	rec := MustNewRecorder(16)
	m := machine.MustNew(machine.Config{Procs: 1, Observer: rec.Observe})
	w := m.NewWord(0)
	p := m.Proc(0)
	p.CAS(w, 0, 5)
	p.RLL(w)
	p.FailNext(1)
	p.RSC(w, 6)

	var sb strings.Builder
	if err := rec.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"CAS", "RLL", "RSC", "(spurious)", "p0"} {
		if !strings.Contains(out, frag) {
			t.Errorf("dump missing %q:\n%s", frag, out)
		}
	}
}

func TestTraceOfFigure3Operation(t *testing.T) {
	// End-to-end: trace a Figure 3 CAS and verify the paper's step
	// structure is visible — a Load (line 1) followed by RLL/RSC pairs
	// (lines 5-6).
	rec := MustNewRecorder(64)
	m := machine.MustNew(machine.Config{Procs: 1, Observer: rec.Observe})
	v, err := core.NewCASVar(m, word.DefaultLayout, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	p.FailNext(2)
	if !v.CompareAndSwap(p, 3, 4) {
		t.Fatal("CAS failed")
	}
	events := rec.Events()
	// Expect: LOAD, then (RLL,RSC)×3 — two spurious failures + success.
	wantOps := []machine.OpKind{
		machine.OpLoad,
		machine.OpRLL, machine.OpRSC,
		machine.OpRLL, machine.OpRSC,
		machine.OpRLL, machine.OpRSC,
	}
	if len(events) != len(wantOps) {
		t.Fatalf("got %d events, want %d:\n%v", len(events), len(wantOps), events)
	}
	for i, e := range events {
		if e.Op != wantOps[i] {
			t.Errorf("event %d = %v, want %v", i, e.Op, wantOps[i])
		}
	}
	if !events[6].OK || events[6].Spurious {
		t.Error("final RSC should be a clean success")
	}
	if events[2].OK || !events[2].Spurious {
		t.Error("first RSC should be a spurious failure")
	}
}

func TestDumpReportsDroppedCount(t *testing.T) {
	rec := MustNewRecorder(4)
	m := machine.MustNew(machine.Config{Procs: 1, Observer: rec.Observe})
	w := m.NewWord(0)
	p := m.Proc(0)
	for i := 0; i < 10; i++ {
		p.Load(w)
	}

	var sb strings.Builder
	if err := rec.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "... 6 earlier events dropped ...") {
		t.Errorf("dump missing dropped-count line (want 6 = 10 events - 4 capacity):\n%s", out)
	}
	// The 4 retained events survive the drop line.
	if got := strings.Count(out, "LOAD"); got != 4 {
		t.Errorf("dump has %d LOAD lines, want 4:\n%s", got, out)
	}

	// No drops → no dropped line.
	rec.Reset()
	p.Load(w)
	sb.Reset()
	if err := rec.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "dropped") {
		t.Errorf("dump mentions drops without overflow:\n%s", sb.String())
	}
}
