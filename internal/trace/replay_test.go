package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/word"
)

// TestSameSeedSameTrace is the failure-reproduction contract end to end:
// running the same workload under the same schedule seed must produce a
// bit-identical operation trace.
func TestSameSeedSameTrace(t *testing.T) {
	run := func(seed int64) []machine.Event {
		rec := MustNewRecorder(4096)
		ctrl := sched.NewController(3, sched.NewRandom(seed))
		m := machine.MustNew(machine.Config{
			Procs:            3,
			Scheduler:        ctrl,
			Observer:         rec.Observe,
			SpuriousFailProb: 0.2,
			Seed:             seed,
		})
		v, err := core.NewRVar(m, word.MustLayout(32), 0)
		if err != nil {
			t.Fatal(err)
		}
		sched.RunUnder(ctrl, 3, func(proc int) {
			p := m.Proc(proc)
			for r := 0; r < 5; r++ {
				for {
					val, keep := v.LL(p)
					if v.SC(p, keep, val+1) {
						break
					}
				}
			}
		})
		return rec.Events()
	}

	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at event %d:\n  %s\n  %s", i, Format(a[i]), Format(b[i]))
		}
	}

	// And a different seed gives a different interleaving (sanity).
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces (suspicious)")
	}
}

// TestTraceOrderMatchesSchedule verifies the recorder's sequence stamps
// respect the serialized schedule: under a controller, at most one
// processor operates at a time, so events are totally ordered with no
// interleaved stamps.
func TestTraceOrderMatchesSchedule(t *testing.T) {
	rec := MustNewRecorder(4096)
	ctrl := sched.NewController(2, &sched.RoundRobin{})
	m := machine.MustNew(machine.Config{Procs: 2, Scheduler: ctrl, Observer: rec.Observe})
	w := m.NewWord(0)
	sched.RunUnder(ctrl, 2, func(proc int) {
		p := m.Proc(proc)
		for i := 0; i < 10; i++ {
			p.Store(w, uint64(i))
		}
	})
	events := rec.Events()
	if len(events) != 20 {
		t.Fatalf("captured %d events, want 20", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap at %d: %d then %d (events raced despite serialization)",
				i, events[i-1].Seq, events[i].Seq)
		}
	}
}
