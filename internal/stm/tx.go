package stm

import (
	"errors"
	"fmt"
	"sort"
)

// ErrConflict signals that a transaction observed state that changed
// under it. Transaction bodies that receive it from Tx.Read should return
// it unchanged; RunTx then restarts the body on fresh state. RunTx never
// returns ErrConflict to its caller.
var ErrConflict = errors.New("stm: transaction conflict, will retry")

// Tx is a dynamic transaction: unlike the static MCAS interface, the
// address set need not be declared up front — reads and writes are
// tracked as they happen and the commit validates the whole read set
// while applying the write set atomically (via MCAS).
//
// Reads are opaque: every Read revalidates the prior read set, so a
// transaction body never observes two reads from different committed
// states (it gets ErrConflict instead of garbage).
type Tx struct {
	m      *Memory
	reads  map[int]uint64
	writes map[int]uint64
	order  []int // read/write addresses in first-touch order, for diagnostics
}

// Read returns the value of address a as of the transaction's snapshot,
// recording it in the read set. It returns ErrConflict if the snapshot
// has been invalidated by a concurrent commit.
func (tx *Tx) Read(a int) (uint64, error) {
	if v, ok := tx.writes[a]; ok {
		return v, nil // read-your-writes
	}
	if v, ok := tx.reads[a]; ok {
		return v, nil
	}
	v, err := tx.m.Read(a)
	if err != nil {
		return 0, err
	}
	// Opacity: the new read must belong to the same committed state as
	// every earlier read.
	for addr, seen := range tx.reads {
		cur, err := tx.m.Read(addr)
		if err != nil {
			return 0, err
		}
		if cur != seen {
			return 0, ErrConflict
		}
	}
	tx.reads[a] = v
	tx.order = append(tx.order, a)
	return v, nil
}

// Write buffers a store of v to address a; it takes effect atomically at
// commit. Values must fit MaxValue.
func (tx *Tx) Write(a int, v uint64) error {
	if a < 0 || a >= len(tx.m.vals) {
		return ErrBadAddress
	}
	if v > MaxValue {
		return ErrBadValue
	}
	if _, seen := tx.writes[a]; !seen {
		if _, read := tx.reads[a]; !read {
			tx.order = append(tx.order, a)
		}
	}
	tx.writes[a] = v
	return nil
}

// Footprint returns the addresses the transaction has touched, in
// first-touch order (diagnostics and tests).
func (tx *Tx) Footprint() []int {
	return append([]int(nil), tx.order...)
}

// RunTx executes fn transactionally: fn's reads all come from one
// committed state and its writes apply atomically, or fn is re-run. If fn
// returns a non-nil error other than ErrConflict, the transaction aborts
// with no effect and RunTx returns that error. Lock-free in the same
// sense as MCAS.
func (m *Memory) RunTx(fn func(tx *Tx) error) error {
	for {
		tx := &Tx{m: m, reads: make(map[int]uint64), writes: make(map[int]uint64)}
		err := fn(tx)
		if errors.Is(err, ErrConflict) {
			continue
		}
		if err != nil {
			return err
		}
		if len(tx.writes) == 0 {
			// Read-only: the opacity checks in Read already guarantee the
			// reads form a consistent snapshot... of the state as of the
			// LAST read. Validate once more so the snapshot is current at
			// the linearization point.
			if tx.validateReads() {
				return nil
			}
			continue
		}
		ok, err := tx.commit()
		if err != nil {
			return fmt.Errorf("stm: commit: %w", err)
		}
		if ok {
			return nil
		}
	}
}

// validateReads re-reads the read set and reports whether it is unchanged.
func (tx *Tx) validateReads() bool {
	for addr, seen := range tx.reads {
		cur, err := tx.m.Read(addr)
		if err != nil || cur != seen {
			return false
		}
	}
	return true
}

// commit validates the read set and applies the write set atomically.
func (tx *Tx) commit() (bool, error) {
	addrs := make([]int, 0, len(tx.reads)+len(tx.writes))
	for a := range tx.reads {
		addrs = append(addrs, a)
	}
	for a := range tx.writes {
		if _, alsoRead := tx.reads[a]; !alsoRead {
			addrs = append(addrs, a)
		}
	}
	sort.Ints(addrs)
	expected := make([]uint64, len(addrs))
	newvals := make([]uint64, len(addrs))
	for i, a := range addrs {
		if v, ok := tx.reads[a]; ok {
			expected[i] = v
		} else {
			// Blind write: expect whatever is there right now; if it
			// moves before the MCAS lands, the MCAS fails and we retry.
			v, err := tx.m.Read(a)
			if err != nil {
				return false, err
			}
			expected[i] = v
		}
		if v, ok := tx.writes[a]; ok {
			newvals[i] = v
		} else {
			newvals[i] = expected[i] // read-only address: validate, keep
		}
	}
	return tx.m.MCAS(addrs, expected, newvals)
}
