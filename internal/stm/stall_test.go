package stm

import (
	"testing"
	"time"
)

// TestReaderCompletesDecidedStalledTransaction freezes a transaction in
// the decided-but-unwritten state and shows a Read helps it to completion
// rather than returning the stale pre-commit value.
func TestReaderCompletesDecidedStalledTransaction(t *testing.T) {
	m := MustNew(2)
	if err := m.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, 2); err != nil {
		t.Fatal(err)
	}

	stalled := make(chan struct{})
	release := make(chan struct{})
	m.stallAfterDecide = func(d *txn) {
		m.stallAfterDecide = nil // only the first transaction stalls
		close(stalled)
		<-release
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		ok, err := m.MCAS([]int{0, 1}, []uint64{1, 2}, []uint64{10, 20})
		if err != nil || !ok {
			t.Errorf("stalled MCAS = (%v,%v)", ok, err)
		}
	}()
	<-stalled

	// The transaction has decided Succeeded but written nothing. A Read
	// must complete it and return the NEW values.
	if v, err := m.Read(0); err != nil || v != 10 {
		t.Errorf("Read(0) during stall = (%d,%v), want (10,nil)", v, err)
	}
	if v, err := m.Read(1); err != nil || v != 20 {
		t.Errorf("Read(1) during stall = (%d,%v), want (20,nil)", v, err)
	}

	close(release)
	<-done
	if v, _ := m.Read(0); v != 10 {
		t.Errorf("Read(0) after release = %d, want 10", v)
	}
}

// TestContenderCompletesDecidedStalledTransaction shows a conflicting
// MCAS (not just a Read) completes a decided-but-stalled transaction and
// then proceeds against the committed values.
func TestContenderCompletesDecidedStalledTransaction(t *testing.T) {
	m := MustNew(2)

	stalled := make(chan struct{})
	release := make(chan struct{})
	m.stallAfterDecide = func(d *txn) {
		m.stallAfterDecide = nil
		close(stalled)
		<-release
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		ok, err := m.MCAS([]int{0, 1}, []uint64{0, 0}, []uint64{5, 6})
		if err != nil || !ok {
			t.Errorf("stalled MCAS = (%v,%v)", ok, err)
		}
	}()
	<-stalled

	// Conflicting MCAS from the main goroutine: must help, then succeed
	// against the new values.
	ok, err := m.MCAS([]int{0, 1}, []uint64{5, 6}, []uint64{7, 8})
	if err != nil || !ok {
		t.Fatalf("contending MCAS = (%v,%v), want (true,nil)", ok, err)
	}
	close(release)
	<-done
	if v, _ := m.Read(0); v != 7 {
		t.Errorf("final mem[0] = %d, want 7", v)
	}
}

// TestContenderAbortsActiveStalledTransaction stalls a transaction
// mid-acquire (Active, holding one of its two addresses) and shows a
// contender forcibly aborts it and proceeds; the stalled transaction then
// retries and also completes.
func TestContenderAbortsActiveStalledTransaction(t *testing.T) {
	m := MustNew(2)

	stalled := make(chan struct{})
	release := make(chan struct{})
	first := true
	m.stallMidAcquire = func(d *txn) {
		if !first {
			return
		}
		first = false
		close(stalled)
		<-release
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Increments both words; will be aborted once, then retried by
		// MCAS's internal loop... MCAS retries only on Aborted status, so
		// the final state must reflect BOTH transactions.
		ok, err := m.MCAS([]int{0, 1}, []uint64{0, 0}, []uint64{1, 1})
		if err != nil {
			t.Errorf("stalled MCAS error: %v", err)
			return
		}
		// After the abort it retries; the contender changed word 1 only,
		// so the retry sees {0, 100} and reports a clean mismatch.
		if ok {
			t.Error("stalled MCAS reported success despite the contender's conflicting commit")
		}
	}()
	<-stalled

	// The stalled transaction owns word 0 (Active). A contender on word 1
	// must NOT be blocked... word 1 is free, but a contender on word 0
	// must abort the stalled owner within its spin budget.
	start := time.Now()
	ok, err := m.MCAS([]int{1}, []uint64{0}, []uint64{100})
	if err != nil || !ok {
		t.Fatalf("disjoint MCAS = (%v,%v)", ok, err)
	}
	ok, err = m.MCAS([]int{0}, []uint64{0}, []uint64{200})
	if err != nil || !ok {
		t.Fatalf("conflicting MCAS = (%v,%v) after %v", ok, err, time.Since(start))
	}

	close(release)
	<-done
	if v, _ := m.Read(0); v != 200 {
		t.Errorf("mem[0] = %d, want 200", v)
	}
	if v, _ := m.Read(1); v != 100 {
		t.Errorf("mem[1] = %d, want 100", v)
	}
}
