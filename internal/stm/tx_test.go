package stm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestTxBasicReadWrite(t *testing.T) {
	m := MustNew(4)
	err := m.RunTx(func(tx *Tx) error {
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		return tx.Write(1, v+10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read(1); v != 10 {
		t.Errorf("mem[1] = %d, want 10", v)
	}
}

func TestTxReadYourWrites(t *testing.T) {
	m := MustNew(2)
	err := m.RunTx(func(tx *Tx) error {
		if err := tx.Write(0, 7); err != nil {
			return err
		}
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		if v != 7 {
			t.Errorf("read-your-writes: got %d, want 7", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTxAbortHasNoEffect(t *testing.T) {
	m := MustNew(2)
	sentinel := errors.New("user abort")
	err := m.RunTx(func(tx *Tx) error {
		if err := tx.Write(0, 99); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunTx error = %v, want sentinel", err)
	}
	if v, _ := m.Read(0); v != 0 {
		t.Errorf("aborted write leaked: mem[0] = %d", v)
	}
}

func TestTxValidationErrors(t *testing.T) {
	m := MustNew(2)
	err := m.RunTx(func(tx *Tx) error {
		return tx.Write(5, 1)
	})
	if !errors.Is(err, ErrBadAddress) {
		t.Errorf("out-of-range Write error = %v, want ErrBadAddress", err)
	}
	err = m.RunTx(func(tx *Tx) error {
		return tx.Write(0, MaxValue+1)
	})
	if !errors.Is(err, ErrBadValue) {
		t.Errorf("oversized Write error = %v, want ErrBadValue", err)
	}
}

func TestTxFootprint(t *testing.T) {
	m := MustNew(8)
	_ = m.RunTx(func(tx *Tx) error {
		tx.Read(3)
		tx.Write(1, 5)
		tx.Read(3) // repeat: no new footprint entry
		fp := tx.Footprint()
		if len(fp) != 2 || fp[0] != 3 || fp[1] != 1 {
			t.Errorf("Footprint = %v, want [3 1]", fp)
		}
		return nil
	})
}

func TestTxBlindWrite(t *testing.T) {
	m := MustNew(2)
	if err := m.Write(0, 5); err != nil {
		t.Fatal(err)
	}
	err := m.RunTx(func(tx *Tx) error {
		return tx.Write(0, 42) // no read first
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read(0); v != 42 {
		t.Errorf("mem[0] = %d, want 42", v)
	}
}

func TestTxConcurrentTransfersConserve(t *testing.T) {
	const accounts = 8
	const workers = 6
	const transfers = 600
	m := MustNew(accounts)
	for a := 0; a < accounts; a++ {
		if err := m.Write(a, 100); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				err := m.RunTx(func(tx *Tx) error {
					fv, err := tx.Read(from)
					if err != nil {
						return err
					}
					tv, err := tx.Read(to)
					if err != nil {
						return err
					}
					if fv == 0 {
						return nil // insufficient funds; commit nothing
					}
					if err := tx.Write(from, fv-1); err != nil {
						return err
					}
					return tx.Write(to, tv+1)
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for a := 0; a < accounts; a++ {
		v, _ := m.Read(a)
		total += v
	}
	if total != accounts*100 {
		t.Errorf("total = %d, want %d", total, accounts*100)
	}
}

func TestTxOpaqueReads(t *testing.T) {
	// Writers keep the pair {x, x}; a transaction that reads both words
	// must never see a mixed pair — Tx.Read's revalidation converts the
	// inconsistency into ErrConflict and RunTx retries.
	m := MustNew(2)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if ok, err := m.MCAS([]int{0, 1}, []uint64{i - 1, i - 1}, []uint64{i, i}); err != nil || !ok {
				t.Errorf("writer round %d: (%v,%v)", i, ok, err)
				return
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		err := m.RunTx(func(tx *Tx) error {
			a, err := tx.Read(0)
			if err != nil {
				return err
			}
			b, err := tx.Read(1)
			if err != nil {
				return err
			}
			if a != b {
				t.Errorf("torn transactional read: %d vs %d", a, b)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("read tx: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTxReadOnlySnapshotIsCurrent(t *testing.T) {
	m := MustNew(1)
	if err := m.Write(0, 3); err != nil {
		t.Fatal(err)
	}
	var got uint64
	err := m.RunTx(func(tx *Tx) error {
		v, err := tx.Read(0)
		got = v
		return err
	})
	if err != nil || got != 3 {
		t.Fatalf("read-only tx = (%d, %v), want (3, nil)", got, err)
	}
}
