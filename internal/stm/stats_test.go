package stm

import (
	"sync"
	"testing"
)

func TestStatsCountsCommitsAndMismatches(t *testing.T) {
	m := MustNew(2)
	if ok, _ := m.MCAS([]int{0}, []uint64{0}, []uint64{1}); !ok {
		t.Fatal("commit failed")
	}
	if ok, _ := m.MCAS([]int{0}, []uint64{0}, []uint64{2}); ok {
		t.Fatal("stale MCAS succeeded")
	}
	st := m.Stats()
	if st.Commits != 1 {
		t.Errorf("Commits = %d, want 1", st.Commits)
	}
	if st.Mismatches != 1 {
		t.Errorf("Mismatches = %d, want 1", st.Mismatches)
	}
	if st.ForcedAborts != 0 || st.Helps != 0 {
		t.Errorf("unexpected aborts/helps: %+v", st)
	}
}

func TestStatsCountsHelpsAndAborts(t *testing.T) {
	m := MustNew(2)

	// Force a help: stall a decided transaction; a Read completes it.
	stalled := make(chan struct{})
	release := make(chan struct{})
	m.stallAfterDecide = func(d *txn) {
		m.stallAfterDecide = nil
		close(stalled)
		<-release
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.MCAS([]int{0, 1}, []uint64{0, 0}, []uint64{1, 2})
	}()
	<-stalled
	if _, err := m.Read(0); err != nil {
		t.Fatal(err)
	}
	close(release)
	<-done
	if st := m.Stats(); st.Helps == 0 {
		t.Errorf("Helps = 0 after a reader completed a stalled transaction")
	}

	// Force an abort: stall an Active transaction mid-acquire; a
	// conflicting MCAS aborts it.
	stalled2 := make(chan struct{})
	release2 := make(chan struct{})
	first := true
	m.stallMidAcquire = func(d *txn) {
		if !first {
			return
		}
		first = false
		close(stalled2)
		<-release2
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.MCAS([]int{0, 1}, []uint64{1, 2}, []uint64{3, 4})
	}()
	<-stalled2
	if ok, err := m.MCAS([]int{0}, []uint64{1}, []uint64{9}); err != nil || !ok {
		t.Fatalf("contending MCAS = (%v,%v)", ok, err)
	}
	close(release2)
	wg.Wait()
	if st := m.Stats(); st.ForcedAborts == 0 {
		t.Errorf("ForcedAborts = 0 after a contender aborted a stalled transaction")
	}
}
