package stm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero-word memory accepted")
	}
	m, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Words() != 4 {
		t.Errorf("Words = %d, want 4", m.Words())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestReadWrite(t *testing.T) {
	m := MustNew(4)
	v, err := m.Read(2)
	if err != nil || v != 0 {
		t.Fatalf("Read = (%d,%v), want (0,nil)", v, err)
	}
	if err := m.Write(2, 77); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Read(2); v != 77 {
		t.Errorf("Read = %d, want 77", v)
	}
	if _, err := m.Read(-1); !errors.Is(err, ErrBadAddress) {
		t.Errorf("Read(-1) error = %v, want ErrBadAddress", err)
	}
	if _, err := m.Read(4); !errors.Is(err, ErrBadAddress) {
		t.Errorf("Read(4) error = %v, want ErrBadAddress", err)
	}
}

func TestMCASBasic(t *testing.T) {
	m := MustNew(8)
	ok, err := m.MCAS([]int{1, 3, 5}, []uint64{0, 0, 0}, []uint64{10, 30, 50})
	if err != nil || !ok {
		t.Fatalf("MCAS = (%v,%v), want (true,nil)", ok, err)
	}
	for a, want := range map[int]uint64{1: 10, 3: 30, 5: 50, 0: 0, 2: 0} {
		if v, _ := m.Read(a); v != want {
			t.Errorf("mem[%d] = %d, want %d", a, v, want)
		}
	}
	// Mismatch on one word fails the whole MCAS and writes nothing.
	ok, err = m.MCAS([]int{1, 3}, []uint64{10, 99}, []uint64{11, 31})
	if err != nil || ok {
		t.Fatalf("mismatching MCAS = (%v,%v), want (false,nil)", ok, err)
	}
	if v, _ := m.Read(1); v != 10 {
		t.Errorf("mem[1] = %d after failed MCAS, want 10 (partial write!)", v)
	}
}

func TestMCASValidation(t *testing.T) {
	m := MustNew(4)
	if _, err := m.MCAS([]int{0, 0}, []uint64{0, 0}, []uint64{1, 1}); !errors.Is(err, ErrBadAddress) {
		t.Errorf("duplicate address error = %v, want ErrBadAddress", err)
	}
	if _, err := m.MCAS([]int{9}, []uint64{0}, []uint64{1}); !errors.Is(err, ErrBadAddress) {
		t.Errorf("out-of-range error = %v, want ErrBadAddress", err)
	}
	if _, err := m.MCAS([]int{0}, []uint64{0}, []uint64{MaxValue + 1}); !errors.Is(err, ErrBadValue) {
		t.Errorf("oversized value error = %v, want ErrBadValue", err)
	}
	if _, err := m.MCAS([]int{0, 1}, []uint64{0}, []uint64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("length mismatch error = %v, want ErrLengthMismatch", err)
	}
	if ok, err := m.MCAS(nil, nil, nil); err != nil || !ok {
		t.Errorf("empty MCAS = (%v,%v), want (true,nil)", ok, err)
	}
}

func TestMCASUnsortedInput(t *testing.T) {
	// Callers need not sort; the implementation does.
	m := MustNew(8)
	ok, err := m.MCAS([]int{5, 1, 3}, []uint64{0, 0, 0}, []uint64{55, 11, 33})
	if err != nil || !ok {
		t.Fatalf("MCAS = (%v,%v)", ok, err)
	}
	for a, want := range map[int]uint64{1: 11, 3: 33, 5: 55} {
		if v, _ := m.Read(a); v != want {
			t.Errorf("mem[%d] = %d, want %d", a, v, want)
		}
	}
}

func TestDCAS(t *testing.T) {
	m := MustNew(2)
	ok, err := m.DCAS(0, 1, 0, 0, 5, 6)
	if err != nil || !ok {
		t.Fatalf("DCAS = (%v,%v)", ok, err)
	}
	ok, err = m.DCAS(0, 1, 5, 7, 8, 9) // second expected wrong
	if err != nil || ok {
		t.Fatalf("mismatching DCAS = (%v,%v), want (false,nil)", ok, err)
	}
	if v0, _ := m.Read(0); v0 != 5 {
		t.Errorf("mem[0] = %d, want 5", v0)
	}
}

func TestAtomicallyBasic(t *testing.T) {
	m := MustNew(4)
	snap, err := m.Atomically([]int{0, 1}, func(cur, next []uint64) {
		next[0] = cur[0] + 1
		next[1] = cur[1] + 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap[0] != 0 || snap[1] != 0 {
		t.Errorf("snapshot = %v, want [0 0]", snap)
	}
	if v, _ := m.Read(0); v != 1 {
		t.Errorf("mem[0] = %d, want 1", v)
	}
	if v, _ := m.Read(1); v != 2 {
		t.Errorf("mem[1] = %d, want 2", v)
	}
}

func TestConcurrentDisjointMCAS(t *testing.T) {
	// Transactions on disjoint address sets must all succeed — the
	// disjoint-access-parallel case.
	const workers = 8
	const rounds = 500
	m := MustNew(workers * 2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a1, a2 := 2*w, 2*w+1
			for i := uint64(0); i < rounds; i++ {
				ok, err := m.MCAS([]int{a1, a2}, []uint64{i, i}, []uint64{i + 1, i + 1})
				if err != nil || !ok {
					t.Errorf("worker %d round %d: MCAS = (%v,%v)", w, i, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for _, a := range []int{2 * w, 2*w + 1} {
			if v, _ := m.Read(a); v != rounds {
				t.Errorf("mem[%d] = %d, want %d", a, v, rounds)
			}
		}
	}
}

func TestConcurrentBankTransfersConserveTotal(t *testing.T) {
	// The canonical STM demo: transfers between random account pairs must
	// conserve the total. Overlapping address sets exercise the abort and
	// helping paths hard.
	const accounts = 8
	const workers = 8
	const transfers = 800
	const initialBalance = 1000
	m := MustNew(accounts)
	for a := 0; a < accounts; a++ {
		if err := m.Write(a, initialBalance); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < transfers; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := uint64(rng.Intn(5) + 1)
				_, err := m.Atomically([]int{from, to}, func(cur, next []uint64) {
					next[0], next[1] = cur[0], cur[1]
					if cur[0] >= amount {
						next[0] = cur[0] - amount
						next[1] = cur[1] + amount
					}
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for a := 0; a < accounts; a++ {
		v, err := m.Read(a)
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	if total != accounts*initialBalance {
		t.Errorf("total = %d, want %d (transactions tore)", total, accounts*initialBalance)
	}
}

func TestReadNeverSeesTornState(t *testing.T) {
	// A writer MCASes {x, x} pairs; readers must never see mixed pairs.
	const pairs = 1
	const rounds = 4000
	m := MustNew(2)
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := m.Atomically([]int{0, 1}, func(cur, next []uint64) {
					next[0], next[1] = cur[0], cur[1] // read-only transaction
				})
				if err != nil {
					t.Errorf("read tx: %v", err)
					return
				}
				if snap[0] != snap[1] {
					t.Errorf("torn read: %v", snap)
					return
				}
			}
		}()
	}
	for i := uint64(0); i < rounds; i++ {
		ok, err := m.MCAS([]int{0, 1}, []uint64{i, i}, []uint64{i + 1, i + 1})
		if err != nil || !ok {
			t.Fatalf("writer round %d: (%v,%v)", i, ok, err)
		}
	}
	close(stop)
	readerWG.Wait()
	_ = pairs
}

func TestOverlappingChainsConserve(t *testing.T) {
	// Workers transact over overlapping windows [i, i+1, i+2] of a ring,
	// rotating values; the multiset of values must be preserved modulo
	// the known increments. Simplified check: the sum is preserved.
	const size = 6
	const workers = 6
	const rounds = 400
	m := MustNew(size)
	for a := 0; a < size; a++ {
		if err := m.Write(a, 100); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			addrs := []int{w % size, (w + 1) % size, (w + 2) % size}
			for i := 0; i < rounds; i++ {
				_, err := m.Atomically(addrs, func(cur, next []uint64) {
					// rotate the three values
					next[0], next[1], next[2] = cur[2], cur[0], cur[1]
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	for a := 0; a < size; a++ {
		v, _ := m.Read(a)
		total += v
	}
	if total != size*100 {
		t.Errorf("total = %d, want %d", total, size*100)
	}
}

func TestAbortedBlockerRetriesAndCompletes(t *testing.T) {
	// Heavy same-address contention: every MCAS targets word 0. All must
	// eventually complete with the counter exact (forced aborts retry).
	const workers = 8
	const rounds = 500
	m := MustNew(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				for {
					v, err := m.Read(0)
					if err != nil {
						t.Error(err)
						return
					}
					ok, err := m.MCAS([]int{0}, []uint64{v}, []uint64{v + 1})
					if err != nil {
						t.Error(err)
						return
					}
					if ok {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if v, _ := m.Read(0); v != workers*rounds {
		t.Errorf("counter = %d, want %d", v, workers*rounds)
	}
}
