// Package stm implements a static software transactional memory in the
// spirit of Shavit & Touitou [14], built on the paper's LL/VL/SC primitive
// (internal/core.Var, Figure 4). It substantiates the paper's Section 5
// claim — contra Greenwald & Cheriton — that "STM can be implemented in
// existing systems": everything below compiles to plain 64-bit CAS.
//
// Architecture. Each memory word is an LL/SC variable (a core.Var), and
// each word has an ownership slot pointing at the descriptor of the
// transaction that currently owns it. A transaction acquires ownership of
// its (sorted) address set, validates expected values, decides by a single
// atomic status transition — the linearization point — then writes its new
// values and releases. Descriptors are allocated per transaction; Go's GC
// plays the role that Shavit–Touitou's memory-management assumptions play
// in [14], guaranteeing a descriptor is never recycled while a helper
// still holds it (the subtle race that breaks naive slot-reuse schemes).
//
// Non-blockingness. Only the owning process installs its own descriptor
// (so an install can never chase its own release), but ANY process that
// encounters a decided transaction completes it — committed values are
// never stranded. A process blocked by an Active transaction first spins
// briefly, then forcibly aborts it; the aborted transaction retries. This
// makes the memory obstruction-free with bounded-blocking (no stalled
// process can block others for more than the spin budget), the same
// practical progress regime as modern OSTMs; transactions acquire in
// global address order, so blocking chains are acyclic and short.
//
// The package exposes the general MCAS (CASn), the DCAS the paper
// discusses, a linearizable Read, and an optimistic Atomically combinator.
package stm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic" //llsc:allow nakedatomic(ownership pointers and transaction status are native cells by design; word.Word carries the transactional data)

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/word"
)

// stmLayout is the tag|value layout of the data words: 40-bit tags,
// 24-bit values.
var stmLayout = word.MustLayout(40)

// MaxValue is the largest value a memory word can hold (24 bits).
const MaxValue = 1<<24 - 1

// spinBudget is how many times a blocked process re-examines an Active
// blocker before forcibly aborting it.
const spinBudget = 64

// Transaction status values. The status field transitions exactly once,
// from statusActive to one of the terminal states.
const (
	statusActive int32 = iota
	statusSucceeded
	statusMismatch // an expected value did not match: the MCAS reports false
	statusAborted  // forcibly aborted by a blocked process: the MCAS retries
)

var (
	// ErrBadAddress is returned for out-of-range or duplicate addresses.
	ErrBadAddress = errors.New("stm: address out of range or duplicated")
	// ErrBadValue is returned when a value exceeds MaxValue.
	ErrBadValue = errors.New("stm: value exceeds the 24-bit value field")
	// ErrLengthMismatch is returned when MCAS slice lengths differ.
	ErrLengthMismatch = errors.New("stm: addrs, expected, and new slices must have equal length")
)

// txn is one transaction descriptor. addrs/expected/newvals are immutable
// after construction; only status changes, monotonically.
type txn struct {
	status   atomic.Int32
	addrs    []int
	expected []uint64
	newvals  []uint64
}

// Memory is a word-addressed transactional memory.
type Memory struct {
	vals []core.Var
	own  []atomic.Pointer[txn]
	obs  *obs.Metrics

	stats struct {
		commits  atomic.Uint64
		mismatch atomic.Uint64
		aborts   atomic.Uint64
		helps    atomic.Uint64
	}

	// stallAfterDecide, when non-nil, is invoked by run between the
	// decision and complete. Tests use it to freeze a transaction in the
	// decided-but-unwritten state and prove that readers and contenders
	// complete it. Never set in production.
	stallAfterDecide func(d *txn)
	// stallMidAcquire, when non-nil, is invoked by run after acquiring
	// the first address of a multi-address transaction, before the rest.
	stallMidAcquire func(d *txn)
}

// Stats is a snapshot of a Memory's transaction counters.
type Stats struct {
	// Commits counts transactions that decided Succeeded.
	Commits uint64
	// Mismatches counts MCAS attempts that failed expected-value checks.
	Mismatches uint64
	// ForcedAborts counts transactions aborted by contenders (each is
	// retried internally by MCAS).
	ForcedAborts uint64
	// Helps counts completions of OTHER processes' decided transactions.
	Helps uint64
}

// Stats returns the memory's cumulative transaction counters.
func (m *Memory) Stats() Stats {
	return Stats{
		Commits:      m.stats.commits.Load(),
		Mismatches:   m.stats.mismatch.Load(),
		ForcedAborts: m.stats.aborts.Load(),
		Helps:        m.stats.helps.Load(),
	}
}

// SetMetrics attaches an optional metrics sink (nil disables) to the
// memory and every underlying LL/SC word, so a single sink sees both the
// transaction outcomes (tx_commit, tx_mismatch, tx_abort, tx_help —
// mirroring Stats) and the word-level LL/SC traffic they generate. Set it
// before the memory is shared between goroutines.
func (m *Memory) SetMetrics(mx *obs.Metrics) {
	m.obs = mx
	for i := range m.vals {
		m.vals[i].SetMetrics(mx)
	}
}

// New creates a Memory of the given number of words, all zero.
func New(words int) (*Memory, error) {
	if words < 1 {
		return nil, fmt.Errorf("stm: memory size must be at least 1 word, got %d", words)
	}
	m := &Memory{
		vals: make([]core.Var, words),
		own:  make([]atomic.Pointer[txn], words),
	}
	for i := range m.vals {
		if err := m.vals[i].Init(stmLayout, 0); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MustNew is New for statically valid sizes.
func MustNew(words int) *Memory {
	m, err := New(words)
	if err != nil {
		panic(err)
	}
	return m
}

// Words returns the memory size in words.
func (m *Memory) Words() int { return len(m.vals) }

// Read returns the value of address a at a linearizable point. If a is
// owned by a decided transaction, Read completes it first, so it never
// observes a committed-but-unwritten state; values under an Active
// transaction read as the pre-transaction state (the transaction has not
// linearized yet).
func (m *Memory) Read(a int) (uint64, error) {
	if a < 0 || a >= len(m.vals) {
		return 0, ErrBadAddress
	}
	for {
		v, kv := m.vals[a].LL()
		if e := m.own[a].Load(); e != nil {
			if e.status.Load() != statusActive {
				m.stats.helps.Add(1)
				m.obs.Inc(obs.CtrTxHelp)
				m.complete(e)
				continue
			}
			// Active owner: it has not decided, so the current word is
			// still the last committed value.
		}
		if m.vals[a].VL(kv) {
			return v, nil
		}
	}
}

// Write stores v to address a as a one-word transaction.
func (m *Memory) Write(a int, v uint64) error {
	for {
		cur, err := m.Read(a)
		if err != nil {
			return err
		}
		ok, err := m.MCAS([]int{a}, []uint64{cur}, []uint64{v})
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
}

// MCAS atomically compares the words named by addrs against expected and,
// if all match, replaces them with newvals, returning whether it
// committed. The slices must have equal length; addresses must be
// distinct and in range; values must fit MaxValue. Safe for concurrent
// use from any goroutine.
func (m *Memory) MCAS(addrs []int, expected, newvals []uint64) (bool, error) {
	n := len(addrs)
	if len(expected) != n || len(newvals) != n {
		return false, ErrLengthMismatch
	}
	if n == 0 {
		return true, nil
	}
	// Sort a private copy of the triple by address: the global
	// acquisition order keeps blocking chains acyclic.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return addrs[idx[i]] < addrs[idx[j]] })
	sa := make([]int, n)
	se := make([]uint64, n)
	sn := make([]uint64, n)
	prev := -1
	for i, k := range idx {
		a := addrs[k]
		if a < 0 || a >= len(m.vals) || a == prev {
			return false, ErrBadAddress
		}
		if expected[k] > MaxValue || newvals[k] > MaxValue {
			return false, ErrBadValue
		}
		prev = a
		sa[i], se[i], sn[i] = a, expected[k], newvals[k]
	}

	for attempt := 0; ; attempt++ {
		d := &txn{addrs: sa, expected: se, newvals: sn}
		m.run(d)
		switch d.status.Load() {
		case statusSucceeded:
			m.stats.commits.Add(1)
			m.obs.Inc(obs.CtrTxCommit)
			return true, nil
		case statusMismatch:
			m.stats.mismatch.Add(1)
			m.obs.Inc(obs.CtrTxMismatch)
			return false, nil
		case statusAborted:
			m.stats.aborts.Add(1)
			m.obs.Inc(obs.CtrTxAbort)
			// Forcibly aborted by a contender; back off and retry.
			for i := 0; i < attempt && i < 32; i++ {
				runtime.Gosched()
			}
		}
	}
}

// DCAS is the double compare-and-swap of the paper's Section 5 discussion
// (Greenwald & Cheriton's primitive), derived from MCAS with n = 2.
func (m *Memory) DCAS(a1, a2 int, e1, e2, n1, n2 uint64) (bool, error) {
	return m.MCAS([]int{a1, a2}, []uint64{e1, e2}, []uint64{n1, n2})
}

// Atomically runs f as a transaction over addrs: f receives the current
// values in cur and fills next; the update commits iff the read values
// are unchanged at commit time, otherwise f re-runs on fresh values. f
// must be pure (it may run many times; losing runs are discarded). It
// returns the snapshot the committing run observed.
func (m *Memory) Atomically(addrs []int, f func(cur, next []uint64)) ([]uint64, error) {
	n := len(addrs)
	cur := make([]uint64, n)
	next := make([]uint64, n)
	for {
		for i, a := range addrs {
			v, err := m.Read(a)
			if err != nil {
				return nil, err
			}
			cur[i] = v
		}
		f(cur, next)
		ok, err := m.MCAS(addrs, cur, next)
		if err != nil {
			return nil, err
		}
		if ok {
			return cur, nil
		}
	}
}

// run drives a fresh transaction d owned by the calling goroutine:
// acquire in address order, validate, decide, complete. Only the owner
// installs d into ownership slots; everyone may complete a decided d.
func (m *Memory) run(d *txn) {
	for ai, a := range d.addrs {
		if ai == 1 && m.stallMidAcquire != nil {
			m.stallMidAcquire(d)
		}
		spins := 0
		for {
			if d.status.Load() != statusActive {
				goto decided // aborted by a contender mid-acquire
			}
			e := m.own[a].Load()
			if e == d {
				break // already installed (we retried after a spurious failure)
			}
			if e == nil {
				if m.own[a].CompareAndSwap(nil, d) {
					break
				}
				continue
			}
			if e.status.Load() != statusActive {
				m.stats.helps.Add(1)
				m.obs.Inc(obs.CtrTxHelp)
				m.complete(e) // finish the decided blocker, freeing the slot
				continue
			}
			// Active blocker. Spin briefly — it is probably mid-flight —
			// then abort it so a stalled process cannot block us forever.
			spins++
			if spins <= spinBudget {
				runtime.Gosched()
				continue
			}
			e.status.CompareAndSwap(statusActive, statusAborted)
		}
	}

	// Validation: we own every address, so the data words are stable
	// (writers must own, and helpers write only after a decision).
	for i, a := range d.addrs {
		v, _ := m.vals[a].LL()
		if d.status.Load() != statusActive {
			goto decided
		}
		if v != d.expected[i] {
			d.status.CompareAndSwap(statusActive, statusMismatch)
			goto decided
		}
	}
	d.status.CompareAndSwap(statusActive, statusSucceeded)

decided:
	if m.stallAfterDecide != nil {
		m.stallAfterDecide(d)
	}
	m.complete(d)
}

// complete finishes a decided transaction: on success it writes the new
// values into the still-owned words, then releases the ownership slots.
// It is idempotent and may be executed concurrently by any number of
// processes; every write is either a pointer CAS keyed to d's identity or
// an SC keyed to an LL taken under a verified own==d, so stale completers
// cannot disturb later transactions.
func (m *Memory) complete(d *txn) {
	st := d.status.Load()
	if st == statusActive {
		return // defensive; callers pass decided transactions only
	}
	for i, a := range d.addrs {
		//llsc:allow retrypolicy(lock-free helping loop: every retry means another completer already advanced d, so backing off only delays the release)
		for {
			if m.own[a].Load() != d {
				break // released (value already final for this address)
			}
			if st == statusSucceeded {
				v, kv := m.vals[a].LL()
				if m.own[a].Load() != d {
					break
				}
				if v != d.newvals[i] {
					if !m.vals[a].SC(kv, d.newvals[i]) {
						continue
					}
				}
			}
			m.own[a].CompareAndSwap(d, nil)
		}
	}
}
