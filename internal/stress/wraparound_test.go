package stress

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
)

// newFig7K1 is fig7 at the tightest legal configuration — k=1, so with two
// processors the whole tag space is 2Nk+1 = 5 tags and the counter space
// Nk+1 = 3 values.
func newFig7K1(m *machine.Machine, met *obs.Metrics) (Register, error) {
	f, err := core.NewRBoundedFamily(m, 1)
	if err != nil {
		return nil, err
	}
	f.SetMetrics(met)
	v, err := f.NewVar(0)
	if err != nil {
		return nil, err
	}
	n := m.NumProcs()
	r := &fig7{v: v, keeps: make([]core.BKeep, n), has: make([]bool, n)}
	r.ps = make([]*core.RBoundedProc, n)
	for i := range r.ps {
		h, err := f.Proc(i)
		if err != nil {
			return nil, err
		}
		r.ps[i] = h
	}
	return r, nil
}

// TestTagWraparoundTinyTags is the concurrent half of the §5 wraparound
// regression (the deterministic half lives in internal/core): Figure 7 at
// the minimal 5-tag space, hammered by the tagpressure adversary for long
// enough that the tag queue and counters wrap many times, must still
// produce exactly linearizable histories — the bounded feedback makes ABA
// impossible rather than merely unlikely.
func TestTagWraparoundTinyTags(t *testing.T) {
	spec := RegisterSpec{Name: "fig7k1", New: newFig7K1}
	plan := PlanSpec{Name: "tagpressure", New: func(Config) fault.Plan { return fault.NewTagPressure(2, 2000) }}
	cfg := Config{Procs: 2, Rounds: 25, OpsPerProc: 30, Seed: 42}
	res, err := RunCell(spec, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok {
		t.Fatalf("tiny-tag history not linearizable: %s", res.Violation)
	}
	// tag_recycle counts queue rotations; far more rotations than tags
	// proves the space actually wrapped (repeatedly) under pressure.
	if rec := res.Counters["tag_recycle"]; rec < 100 {
		t.Fatalf("tag_recycle = %d; the 5-tag space barely wrapped", rec)
	}
}
