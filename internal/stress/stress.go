// Package stress is the adversarial linearizability harness: it drives
// each of the paper's five figure implementations (Figures 3-7), all
// realized over the simulated machine, under a matrix of fault plans from
// internal/fault — no faults, spurious-failure bursts, targeted
// reservation interference, a processor crash, and bounded-tag pressure —
// records every operation with internal/history, and checks the recorded
// histories against the Figure 2 register specification with
// internal/linearizability.
//
// Two properties are asserted, matching the paper's claims:
//
//   - Safety: every history is linearizable under every plan. Faults may
//     slow operations down (extra loops, Theorems 1-5) but never corrupt
//     them.
//   - Progress: when a processor crashes mid-operation, the survivors
//     still complete their full workload (the implementations are
//     non-blocking), which the lock-based baseline provably cannot do
//     (footnote 1) — that contrast is asserted by this package's tests.
//
// Histories are structured as rounds separated by full barriers, so round
// boundaries are quiescent cuts and long runs are checked exactly via
// linearizability.CheckWindowsFrom. Crash runs cannot barrier (the victim
// never arrives), so they use a single bounded burst and handle the
// victim's in-flight operation as pending: the history is accepted if it
// linearizes either without the pending operation or with it completed
// successfully at some point after its invocation.
package stress

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/history"
	"repro/internal/linearizability"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Config parametrizes one stress run (shared by every cell of a matrix).
type Config struct {
	// Procs is the number of processors driving the register.
	Procs int
	// Rounds is the number of barrier-separated rounds (quiescent windows).
	Rounds int
	// OpsPerProc is the operation target per processor per round. A round
	// records at most Procs*(OpsPerProc+2) operations, which must fit the
	// checker's window limit.
	OpsPerProc int
	// Seed makes the drivers' operation mix deterministic. Interleaving on
	// a free-running machine is still up to the Go scheduler; the seed
	// fixes what each processor attempts, not when.
	Seed int64
	// Timeout bounds how long a crash cell waits for the survivors.
	// Defaults to 10s.
	Timeout time.Duration
}

func (cfg Config) validate() error {
	if cfg.Procs < 2 {
		return fmt.Errorf("stress: Procs must be at least 2, got %d", cfg.Procs)
	}
	if cfg.Rounds < 1 || cfg.OpsPerProc < 1 {
		return fmt.Errorf("stress: Rounds and OpsPerProc must be positive, got %d and %d", cfg.Rounds, cfg.OpsPerProc)
	}
	if w := cfg.window(); w > linearizability.MaxOps {
		return fmt.Errorf("stress: a round may record %d ops, checker windows cap at %d (reduce Procs or OpsPerProc)",
			w, linearizability.MaxOps)
	}
	return nil
}

// window is the worst-case operation count of one round: each driver
// iteration records at most 3 ops, so a proc overshoots its target by at
// most 2.
func (cfg Config) window() int { return cfg.Procs * (cfg.OpsPerProc + 2) }

func (cfg Config) timeout() time.Duration {
	if cfg.Timeout > 0 {
		return cfg.Timeout
	}
	return 10 * time.Second
}

// PlanSpec names one fault plan and knows how to build a fresh instance
// for a cell. New may return nil for the no-fault control cell.
type PlanSpec struct {
	Name string
	New  func(cfg Config) fault.Plan
}

// DefaultPlans returns the standard adversary matrix:
//
//	none          control, no injected faults
//	burst         every RSC of processor 0 fails spuriously for 50 attempts
//	interference  every 3rd RSC machine-wide draws a reservation-stealing
//	              write, 400-failure budget
//	crash         the highest-numbered processor stops dead at its 12th
//	              machine operation — mid-critical-sequence
//	tagpressure   interference tuned hot (every 2nd RSC) to churn
//	              Figure 7's bounded tag space
func DefaultPlans() []PlanSpec {
	return []PlanSpec{
		{"none", func(Config) fault.Plan { return nil }},
		{"burst", func(Config) fault.Plan { return fault.NewBurst(0, 0, 50) }},
		{"interference", func(Config) fault.Plan { return fault.NewInterference(fault.AnyProc, 3, 400) }},
		{"crash", func(cfg Config) fault.Plan { return fault.NewCrash(cfg.Procs-1, 12) }},
		{"tagpressure", func(Config) fault.Plan { return fault.NewTagPressure(2, 400) }},
	}
}

// CellResult is the outcome of one (register, plan) cell.
type CellResult struct {
	Register  string `json:"register"`
	Plan      string `json:"plan"`
	Ok        bool   `json:"ok"`
	Violation string `json:"violation,omitempty"`
	// Ops counts completed recorded operations; Pending counts in-flight
	// operations of a crashed processor (0 or 1).
	Ops     int `json:"ops"`
	Pending int `json:"pending,omitempty"`
	// Windows is how many quiescent windows the checker cut the history
	// into (0 for crash cells, which are checked as one burst).
	Windows int `json:"windows,omitempty"`
	// Crashed reports that the plan wedged its victim as intended.
	Crashed bool `json:"crashed,omitempty"`
	// CompletedOps counts completed operations per processor — the crash
	// cells' progress evidence.
	CompletedOps []int `json:"completed_ops"`
	// Counters is the cell's full observability snapshot (fault_inj_*
	// records how much adversity was injected).
	Counters map[string]uint64 `json:"counters"`
}

// lane is one processor's recording lane: completed ops plus the op
// currently in flight, mutex-guarded so a crash cell can harvest while
// the victim is still wedged inside its pending operation.
type lane struct {
	mu      sync.Mutex
	ops     []history.Op
	pending *history.Op
}

type recorder struct {
	clock     atomic.Int64
	completed atomic.Uint64
	lanes     []lane
}

// do records one operation around invoke. The pending slot is filled
// before the call so a wedged operation is observable from outside.
func (r *recorder) do(p int, kind history.Kind, arg1, arg2 uint64, invoke func() (uint64, bool)) (uint64, bool) {
	op := history.Op{Proc: p, Kind: kind, Arg1: arg1, Arg2: arg2, Call: r.clock.Add(1)}
	l := &r.lanes[p]
	l.mu.Lock()
	l.pending = &op
	l.mu.Unlock()
	rv, rb := invoke()
	l.mu.Lock()
	op.RetVal, op.RetBool, op.Return = rv, rb, r.clock.Add(1)
	l.ops = append(l.ops, op)
	l.pending = nil
	l.mu.Unlock()
	r.completed.Add(1)
	return rv, rb
}

// takePending removes and returns processor p's in-flight operation, if
// any. The soak harness harvests a dead incarnation's orphaned op this way
// before relaunching the lane, so the op survives as checker input instead
// of being overwritten by the next incarnation's first do.
func (r *recorder) takePending(p int) *history.Op {
	l := &r.lanes[p]
	l.mu.Lock()
	defer l.mu.Unlock()
	op := l.pending
	l.pending = nil
	return op
}

// reset clears all completed-op lanes (pending slots are untouched) so the
// next round records a fresh history. The completed counter keeps running:
// it is the watchdog's monotone progress clock.
func (r *recorder) reset() {
	for i := range r.lanes {
		l := &r.lanes[i]
		l.mu.Lock()
		l.ops = nil
		l.mu.Unlock()
	}
}

// harvest snapshots all lanes: completed ops sorted by call time, plus any
// in-flight ops. Safe while drivers run; exact once they are quiescent or
// wedged.
func (r *recorder) harvest() (ops, pending []history.Op, perProc []int) {
	perProc = make([]int, len(r.lanes))
	for i := range r.lanes {
		l := &r.lanes[i]
		l.mu.Lock()
		ops = append(ops, l.ops...)
		perProc[i] = len(l.ops)
		if l.pending != nil {
			pending = append(pending, *l.pending)
		}
		l.mu.Unlock()
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Call < ops[j].Call })
	return ops, pending, perProc
}

// runProc performs ~target operations of a seeded random mix on reg as
// processor p. The mix: occasional plain reads and standalone validates,
// otherwise an LL (-> maybe VL) -> SC-or-CL critical sequence; for the
// CAS-shaped Figure 3, read -> CAS pairs.
func runProc(reg Register, rec *recorder, p int, target int, rng *rand.Rand) {
	done := 0
	for done < target {
		done += stepOnce(reg, rec, p, rng)
	}
}

// stepOnce performs one seeded step of the driver mix — one to three
// recorded operations — and reports how many it recorded. The soak harness
// drives this directly so it can interleave heartbeats and survive a
// mid-step CrashPanic with an accurate completed-op count.
func stepOnce(reg Register, rec *recorder, p int, rng *rand.Rand) int {
	maxv := reg.MaxVal()
	newval := func() uint64 { return rng.Uint64() % (maxv + 1) }
	read := func() {
		rec.do(p, history.KindRead, 0, 0, func() (uint64, bool) { return reg.Read(p), false })
	}
	switch r := reg.(type) {
	case LLSC:
		switch x := rng.Intn(8); {
		case x == 0:
			read()
			return 1
		case x == 1:
			if res, ok := r.VL(p); ok {
				rec.do(p, history.KindVL, 0, 0, func() (uint64, bool) { return 0, res })
			} else {
				read()
			}
			return 1
		default:
			n := 1
			rec.do(p, history.KindLL, 0, 0, func() (uint64, bool) { return r.LL(p), false })
			if rng.Intn(4) == 0 {
				if res, ok := r.VL(p); ok {
					rec.do(p, history.KindVL, 0, 0, func() (uint64, bool) { return 0, res })
					n++
				}
			}
			if rng.Intn(8) == 0 && r.Abort(p) {
				return n // CL-then-never-SC: the reservation dies silently
			}
			v := newval()
			rec.do(p, history.KindSC, v, 0, func() (uint64, bool) { return 0, r.SC(p, v) })
			return n + 1
		}
	case CASer:
		if rng.Intn(4) == 0 {
			read()
			return 1
		}
		old, _ := rec.do(p, history.KindRead, 0, 0, func() (uint64, bool) { return reg.Read(p), false })
		v := newval()
		rec.do(p, history.KindCAS, old, v, func() (uint64, bool) { return 0, r.CAS(p, old, v) })
		return 2
	default:
		panic(fmt.Sprintf("stress: register %s implements neither LLSC nor CASer", reg.Name()))
	}
}

// RunCell runs one (register, plan) cell and checks its history.
func RunCell(spec RegisterSpec, plan PlanSpec, cfg Config) (CellResult, error) {
	if err := cfg.validate(); err != nil {
		return CellResult{}, err
	}
	res := CellResult{Register: spec.Name, Plan: plan.Name}
	fp := plan.New(cfg)
	met := obs.NewWithStripes(cfg.Procs)
	if fp != nil {
		fp.SetMetrics(met)
	}
	mcfg := machine.Config{Procs: cfg.Procs, Observer: met.MachineObserver()}
	if fp != nil {
		mcfg.FaultPlan = fp
	}
	m, err := machine.New(mcfg)
	if err != nil {
		return CellResult{}, err
	}
	reg, err := spec.New(m, met)
	if err != nil {
		return CellResult{}, err
	}
	rec := &recorder{lanes: make([]lane, cfg.Procs)}

	crash, isCrash := fp.(*fault.Crash)
	if isCrash {
		err = runCrashCell(reg, rec, crash, cfg, &res)
	} else {
		err = runRoundsCell(reg, rec, cfg, &res)
	}
	if err != nil {
		return CellResult{}, err
	}
	res.Counters = met.Snapshot().Map()
	return res, nil
}

// runRoundsCell runs barrier-separated rounds and checks the history via
// quiescent windows.
func runRoundsCell(reg Register, rec *recorder, cfg Config, res *CellResult) error {
	for round := 0; round < cfg.Rounds; round++ {
		var wg sync.WaitGroup
		for p := 0; p < cfg.Procs; p++ {
			wg.Add(1)
			go func(p, round int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(round)*1009 + int64(p)))
				runProc(reg, rec, p, cfg.OpsPerProc, rng)
			}(p, round)
		}
		wg.Wait()
	}
	ops, pending, perProc := rec.harvest()
	if len(pending) != 0 {
		return fmt.Errorf("stress: %d pending ops after quiescence", len(pending))
	}
	res.Ops, res.CompletedOps = len(ops), perProc
	wres, err := linearizability.CheckWindowsFrom(ops, []linearizability.State{{}}, cfg.window())
	if err != nil {
		return err
	}
	res.Ok = wres.Ok
	res.Windows = wres.Windows
	if !wres.Ok {
		res.Violation = fmt.Sprintf("history not linearizable (window %d of %d)", wres.FailedWindow, wres.Windows)
	}
	return nil
}

// runCrashCell runs one bounded burst during which the plan wedges its
// victim, waits for the survivors, and checks the harvested history with
// the victim's in-flight op as pending.
func runCrashCell(reg Register, rec *recorder, crash *fault.Crash, cfg Config, res *CellResult) error {
	// One burst, sized so completed ops + 1 pending fit the checker.
	target := (linearizability.MaxOps - 1) / cfg.Procs
	var wg sync.WaitGroup
	finished := make(chan int, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(p)))
			runProc(reg, rec, p, target, rng)
			finished <- p
		}(p)
	}
	deadline := time.After(cfg.timeout())
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	doneCount := 0
wait:
	for doneCount < cfg.Procs {
		// Done early when only the victim is missing and it is wedged —
		// it will never arrive, and waiting out the timeout is pure cost.
		if doneCount >= cfg.Procs-1 && crash.Crashed() {
			break
		}
		select {
		case <-finished:
			doneCount++
		case <-tick.C:
		case <-deadline:
			break wait
		}
	}
	// Release the victim no matter how checking goes, so the cell never
	// leaks a wedged goroutine.
	defer func() {
		crash.Release()
		wg.Wait()
	}()
	if doneCount < cfg.Procs && !crash.Crashed() {
		return fmt.Errorf("stress: %d/%d processors wedged without the crash plan engaging", cfg.Procs-doneCount, cfg.Procs)
	}
	res.Crashed = crash.Crashed()

	ops, pending, perProc := rec.harvest()
	res.Ops, res.CompletedOps, res.Pending = len(ops), perProc, len(pending)
	ok, violation, err := checkWithPending(ops, pending)
	if err != nil {
		return err
	}
	res.Ok, res.Violation = ok, violation
	return nil
}

// checkWithPending checks a burst history that may carry in-flight
// operations of crashed processors. A pending Read, VL, or LL cannot
// affect any other processor's results (LL only sets the crashed caller's
// own valid bit), so dropping it is complete. A pending SC, CAS, or Write
// may or may not have taken effect — for Figure 6 in particular, an SC's
// header CAS can land before the crash hits mid-Copy and survivors then
// help it complete — so the history must be accepted if it linearizes
// either without the op or with the op completed successfully at any
// point after its invocation (Return = +inf).
// Histories with several pending mutators (a soak round in which the
// victim crashed more than once) are checked against every subset of the
// candidates having taken effect — exponential in the number of pending
// mutators, which crash budgets keep tiny.
func checkWithPending(ops, pending []history.Op) (bool, string, error) {
	var cands []history.Op
	for _, op := range pending {
		switch op.Kind {
		case history.KindSC, history.KindCAS, history.KindWrite:
			op.RetBool = true
			op.Return = math.MaxInt64
			cands = append(cands, op)
		}
	}
	if len(cands) > 10 {
		return false, "", fmt.Errorf("stress: %d pending mutators; subset check capped at 10", len(cands))
	}
	tried := 0
	for mask := 0; mask < 1<<len(cands); mask++ {
		withOps := ops
		if mask != 0 {
			withOps = append([]history.Op(nil), ops...)
			for i, op := range cands {
				if mask&(1<<i) != 0 {
					withOps = append(withOps, op)
				}
			}
		}
		res, err := linearizability.Check(withOps, linearizability.State{})
		if err != nil {
			return false, "", err
		}
		tried++
		if res.Ok {
			return true, "", nil
		}
	}
	return false, fmt.Sprintf("burst history not linearizable under %d pending-op variant(s)", tried), nil
}

// RunMatrix runs every (register, plan) cell and aggregates a Report.
func RunMatrix(cfg Config, regs []RegisterSpec, plans []PlanSpec) (*Report, error) {
	rep := &Report{Schema: ReportSchema, Seed: cfg.Seed,
		Procs: cfg.Procs, Rounds: cfg.Rounds, OpsPerProc: cfg.OpsPerProc}
	for _, reg := range regs {
		for _, plan := range plans {
			cell, err := RunCell(reg, plan, cfg)
			if err != nil {
				return nil, fmt.Errorf("stress: cell %s/%s: %w", reg.Name, plan.Name, err)
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}
