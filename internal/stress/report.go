package stress

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ReportSchema identifies the stress report JSON format. Bump only on
// incompatible changes; additive fields keep the version.
const ReportSchema = "llsc-stress/v1"

// Report is the JSON-serializable outcome of a full stress matrix, the
// artifact CI uploads from the stress-smoke job.
type Report struct {
	Schema     string       `json:"schema"`
	Seed       int64        `json:"seed"`
	Procs      int          `json:"procs"`
	Rounds     int          `json:"rounds"`
	OpsPerProc int          `json:"ops_per_proc"`
	Cells      []CellResult `json:"cells"`
}

// Violations returns the cells whose histories failed linearizability.
func (r *Report) Violations() []CellResult {
	var out []CellResult
	for _, c := range r.Cells {
		if !c.Ok {
			out = append(out, c)
		}
	}
	return out
}

// WriteFile writes the report as indented JSON, atomically (temp file +
// rename), so a half-written artifact is never observed.
func (r *Report) WriteFile(path string) error { return writeJSONAtomic(path, r) }

// writeJSONAtomic writes v as indented JSON via temp file + rename.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("stress: marshaling report: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".stress-*.json")
	if err != nil {
		return fmt.Errorf("stress: writing report: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("stress: writing report: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stress: writing report: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("stress: writing report: %w", err)
	}
	return nil
}
